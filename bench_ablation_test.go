package repro

import (
	"testing"

	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/cpa"
	"repro/internal/monitor"
	"repro/internal/rte"
	"repro/internal/scenario"
	"repro/internal/sensors"
	"repro/internal/sim"
	"repro/internal/skills"
)

// ---------------------------------------------------------------------
// Ablations: the design choices DESIGN.md calls out, each isolated.
// ---------------------------------------------------------------------

// BenchmarkAblation_Aggregation compares the ability-graph aggregation
// functions: conservative min, graceful weighted mean, and redundant max,
// under a 50%-degraded environment sensor. The choice decides how much
// root-level performance a partial degradation costs.
func BenchmarkAblation_Aggregation(b *testing.B) {
	aggs := map[string]skills.Aggregate{
		"min":       skills.MinAggregate,
		"weighted":  skills.WeightedAggregate,
		"redundant": skills.RedundantAggregate,
	}
	// Extend the ACC graph with a second, redundant perception source so
	// the aggregates actually differ: one of two sensors degrades to 0.5.
	build := func() (*skills.AbilityGraph, error) {
		g, err := skills.BuildACC()
		if err != nil {
			return nil, err
		}
		if err := g.AddSource("lidar"); err != nil {
			return nil, err
		}
		if err := g.Depend(skills.PerceiveObjects, "lidar"); err != nil {
			return nil, err
		}
		return skills.Instantiate(g)
	}
	want := map[string]skills.Level{"min": 0.5, "weighted": 0.75, "redundant": 1.0}
	for name, agg := range aggs {
		name, agg := name, agg
		b.Run(name, func(b *testing.B) {
			var root skills.Level
			for i := 0; i < b.N; i++ {
				ag, err := build()
				if err != nil {
					b.Fatal(err)
				}
				if err := ag.SetAggregate(skills.PerceiveObjects, agg); err != nil {
					b.Fatal(err)
				}
				if err := ag.SetHealth(skills.SrcEnvSensors, 0.5); err != nil {
					b.Fatal(err)
				}
				root = ag.Level(skills.ACCDriving)
			}
			b.ReportMetric(float64(root), "root-level")
			if root != want[name] {
				b.Fatalf("root level %v, want %v", root, want[name])
			}
		})
	}
}

// BenchmarkAblation_Coordination isolates the paper's central claim: the
// same layer stack with and without the first-handler-wins protocol. The
// uncoordinated variant produces conflicting claims on vehicle motion.
func BenchmarkAblation_Coordination(b *testing.B) {
	run := func(uncoordinated bool) (conflicts int) {
		c := core.NewCoordinator(nil)
		c.Uncoordinated = uncoordinated
		must := func(err error) {
			if err != nil {
				b.Fatal(err)
			}
		}
		must(c.RegisterLayer(core.LayerSafety, func(p *core.Problem, ctx *core.Context) (core.Resolution, bool) {
			return core.Resolution{Action: "standby-takeover", Claims: []string{"vehicle-motion"}, FunctionalityRetained: 1, SafeState: true}, true
		}, core.LayerAbility))
		must(c.RegisterLayer(core.LayerAbility, func(p *core.Problem, ctx *core.Context) (core.Resolution, bool) {
			return core.Resolution{Action: "derate-speed", Claims: []string{"vehicle-motion"}, FunctionalityRetained: 0.7, SafeState: true}, true
		}, core.LayerObjective))
		must(c.RegisterLayer(core.LayerObjective, func(p *core.Problem, ctx *core.Context) (core.Resolution, bool) {
			return core.Resolution{Action: "safe-stop", Claims: []string{"vehicle-motion"}, FunctionalityRetained: 0.05, SafeState: true}, true
		}, ""))
		if _, err := c.Report(&core.Problem{Kind: "component-lost", Origin: core.LayerSafety}); err != nil {
			b.Fatal(err)
		}
		return len(c.Conflicts())
	}
	b.Run("coordinated", func(b *testing.B) {
		var conflicts int
		for i := 0; i < b.N; i++ {
			conflicts = run(false)
		}
		b.ReportMetric(float64(conflicts), "conflicts")
		if conflicts != 0 {
			b.Fatal("coordinated run conflicted")
		}
	})
	b.Run("uncoordinated", func(b *testing.B) {
		var conflicts int
		for i := 0; i < b.N; i++ {
			conflicts = run(true)
		}
		b.ReportMetric(float64(conflicts), "conflicts")
		if conflicts == 0 {
			b.Fatal("uncoordinated run did not conflict")
		}
	})
}

// BenchmarkAblation_RateEnforcement compares detect-only and enforcing
// rate monitors against a flooding source: enforcement caps the admitted
// event rate at the contracted one.
func BenchmarkAblation_RateEnforcement(b *testing.B) {
	run := func(enforce bool) (admitted int) {
		m := monitor.NewRateMonitor("src", 10*sim.Millisecond, 0, enforce)
		// 10x contracted rate for one second.
		for t := sim.Time(0); t < sim.Second; t += sim.Millisecond {
			if m.Arrival(t) {
				admitted++
			}
		}
		return admitted
	}
	b.Run("detect-only", func(b *testing.B) {
		var admitted int
		for i := 0; i < b.N; i++ {
			admitted = run(false)
		}
		b.ReportMetric(float64(admitted), "admitted/s")
	})
	b.Run("enforce", func(b *testing.B) {
		var admitted int
		for i := 0; i < b.N; i++ {
			admitted = run(true)
		}
		b.ReportMetric(float64(admitted), "admitted/s")
		if admitted > 105 {
			b.Fatalf("enforcement admitted %d events against a 100/s contract", admitted)
		}
	})
}

// BenchmarkAblation_PlausibilityCheck shows that the sensor's own quality
// self-assessment misses a freeze fault while the plausibility cross-check
// catches it — the argument for layered monitoring (Section IV vs the
// RACE/SAFER baselines).
func BenchmarkAblation_PlausibilityCheck(b *testing.B) {
	run := func(useChecker bool) (detected bool) {
		rng := sim.NewRNG(11)
		s := sensors.NewObjectSensor(rng)
		c := sensors.NewPlausibilityChecker(80, 200)
		// Warm up, then freeze.
		for i := 0; i < 10; i++ {
			m, _ := s.Measure(50-float64(i), -5, sim.Time(i)*100*sim.Millisecond)
			c.Check(m)
		}
		s.InjectFault(sensors.FaultFreeze, 0)
		for i := 10; i < 60; i++ {
			m, ok := s.Measure(50-float64(i), -5, sim.Time(i)*100*sim.Millisecond)
			if !ok {
				continue
			}
			if useChecker {
				c.Check(m)
			}
		}
		health := s.Quality()
		if useChecker {
			health *= c.TrustScore()
		}
		return health < 0.8
	}
	b.Run("self-assessment-only", func(b *testing.B) {
		var detected bool
		for i := 0; i < b.N; i++ {
			detected = run(false)
		}
		if detected {
			b.Fatal("self-assessment alone detected the freeze (should be blind)")
		}
		b.ReportMetric(0, "detected")
	})
	b.Run("with-plausibility", func(b *testing.B) {
		var detected bool
		for i := 0; i < b.N; i++ {
			detected = run(true)
		}
		if !detected {
			b.Fatal("plausibility check missed the freeze")
		}
		b.ReportMetric(1, "detected")
	})
}

// BenchmarkAblation_ThermalGovernorThreshold ablates the E6 design note
// that the DVFS governor must trigger *below* the silicon throttle onset:
// reactive-late (Hi=95) lets hardware throttling strike first.
func BenchmarkAblation_ThermalGovernorThreshold(b *testing.B) {
	// Reuse the cross-layer policy but compare against dvfs-only, whose
	// governor reacts at the same proactive threshold; the "none" policy
	// is the fully-late baseline.
	var rs []scenario.ThermalResult
	for i := 0; i < b.N; i++ {
		r, err := scenario.RunThermalComparison()
		if err != nil {
			b.Fatal(err)
		}
		rs = r
	}
	for _, r := range rs {
		b.ReportMetric(100*r.TotalMissRate(), "miss%-"+string(r.Config.Policy))
	}
}

// ---------------------------------------------------------------------
// Substrate microbenchmarks: the hot paths of the simulators.
// ---------------------------------------------------------------------

// BenchmarkKernel_EventThroughput measures raw event scheduling/dispatch.
func BenchmarkKernel_EventThroughput(b *testing.B) {
	s := sim.New()
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(sim.Time(i), func() { n++ })
	}
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	if n != b.N {
		b.Fatalf("fired %d/%d", n, b.N)
	}
}

// BenchmarkKernel_CANFrames measures simulated CAN frame throughput.
func BenchmarkKernel_CANFrames(b *testing.B) {
	s := sim.New()
	bus := can.NewBus(s, 1_000_000)
	tx := bus.Attach("tx")
	bus.Attach("rx")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Send(can.Frame{ID: uint32(i % 2048), Data: make([]byte, 8)}, nil); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernel_Scheduler measures scheduled job throughput (three-task
// preemptive set over one simulated second per iteration unit).
func BenchmarkKernel_Scheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New()
		p := rte.NewProc(s, "cpu", 1.0)
		specs := []rte.TaskSpec{
			{Name: "a", Priority: 1, Period: sim.Millisecond, WCET: 200 * sim.Microsecond},
			{Name: "b", Priority: 2, Period: 5 * sim.Millisecond, WCET: 1500 * sim.Microsecond},
			{Name: "c", Priority: 3, Period: 20 * sim.Millisecond, WCET: 5 * sim.Millisecond},
		}
		for _, spec := range specs {
			if err := p.AddTask(spec); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.RunFor(sim.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPAIncremental ablates the cpa.Analyzer memoization that the
// incremental MCC timing engine is built on. full-reanalysis is the seed
// behavior (busy-window fixed point every call); cache-hit re-analyzes an
// unchanged task set through the Analyzer, which must be O(digest + map
// lookup); invalidated changes one task's WCET every call, so every call
// digests to a fresh key and pays the full analysis plus the cache fill.
func BenchmarkCPAIncremental(b *testing.B) {
	mkTasks := func() []cpa.Task {
		var tasks []cpa.Task
		for i := 0; i < 24; i++ {
			tasks = append(tasks, cpa.Task{
				Name:       benchName("t", i),
				Priority:   i + 1,
				WCETUS:     int64(100 + 40*i),
				Event:      cpa.EventModel{PeriodUS: int64(5000 * (i + 1)), JitterUS: int64(1000 * (i % 5))},
				DeadlineUS: int64(5000 * (i + 1)),
			})
		}
		return tasks
	}
	b.Run("full-reanalysis", func(b *testing.B) {
		tasks := mkTasks()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cpa.AnalyzeSPP(tasks); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache-hit", func(b *testing.B) {
		tasks := mkTasks()
		a := cpa.NewAnalyzer()
		if _, err := a.AnalyzeSPP(tasks); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.AnalyzeSPP(tasks); err != nil {
				b.Fatal(err)
			}
		}
		st := a.Stats()
		if st.Hits < int64(b.N) {
			b.Fatalf("cache hits %d < %d iterations: unchanged task set was re-analyzed", st.Hits, b.N)
		}
		b.ReportMetric(float64(st.Hits), "cache-hits")
	})
	b.Run("invalidated", func(b *testing.B) {
		tasks := mkTasks()
		a := cpa.NewAnalyzer()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh deadline each call changes the digest (cache miss
			// every iteration) without changing the fixed-point workload
			// or pushing the set into overload.
			tasks[0].DeadlineUS = int64(5000 + i)
			if _, err := a.AnalyzeSPP(tasks); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKernel_CPA measures the busy-window analysis on a 20-task set.
func BenchmarkKernel_CPA(b *testing.B) {
	var tasks []cpa.Task
	for i := 0; i < 20; i++ {
		tasks = append(tasks, cpa.Task{
			Name:       benchName("t", i),
			Priority:   i + 1,
			WCETUS:     int64(100 + 40*i),
			Event:      cpa.EventModel{PeriodUS: int64(5000 * (i + 1))},
			DeadlineUS: int64(5000 * (i + 1)),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpa.AnalyzeSPP(tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernel_AbilityPropagation measures one full propagate pass of
// the ACC ability graph.
func BenchmarkKernel_AbilityPropagation(b *testing.B) {
	ag, err := skills.InstantiateACC()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ag.SetHealth(skills.SrcEnvSensors, skills.Level(float64(i%100)/100)); err != nil {
			b.Fatal(err)
		}
	}
}
