// Package repro's root-level benchmarks regenerate every experiment of
// EXPERIMENTS.md (E1-E10). Each benchmark reports the experiment's headline
// numbers as custom metrics and logs the full table once, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper-shaped results end to end.
package repro

import (
	"runtime"
	"testing"

	"repro/internal/canvirt"
	"repro/internal/scenario"
)

// BenchmarkE1_CANRoundTrip measures the virtualized CAN controller's added
// round-trip latency versus native access (Section III: ≈7-11 µs).
func BenchmarkE1_CANRoundTrip(b *testing.B) {
	for _, vms := range []int{1, 4, 8, 12} {
		vms := vms
		b.Run(benchName("vms", vms), func(b *testing.B) {
			var added float64
			for i := 0; i < b.N; i++ {
				d, err := canvirt.AddedLatency(vms, 20, 8)
				if err != nil {
					b.Fatal(err)
				}
				added = d.Micros()
			}
			b.ReportMetric(added, "added-us/rtt")
			if added < 7 || added > 11 {
				b.Fatalf("added latency %.2fus outside the published 7-11us band", added)
			}
		})
	}
}

// BenchmarkE2_ResourceModel evaluates the FPGA resource break-even
// (Section III: break-even with stand-alone controllers at four VMs).
func BenchmarkE2_ResourceModel(b *testing.B) {
	var breakEven int
	for i := 0; i < b.N; i++ {
		breakEven = canvirt.BreakEvenVFs()
	}
	b.ReportMetric(float64(breakEven), "break-even-VMs")
	b.ReportMetric(float64(canvirt.VirtualizedController(8).LUT), "LUT-virt-8VF")
	b.ReportMetric(float64(canvirt.StandaloneController().Scale(8).LUT), "LUT-standalone-x8")
	if breakEven != 4 {
		b.Fatalf("break-even at %d VMs, want 4", breakEven)
	}
}

// BenchmarkE3_MCCIntegration runs the MCC in-field update stream
// (Section II.A): feasible updates accepted, infeasible rejected at the
// correct pipeline stage.
func BenchmarkE3_MCCIntegration(b *testing.B) {
	var res scenario.MCCStreamResult
	for i := 0; i < b.N; i++ {
		r, err := scenario.RunMCCStream(scenario.DefaultMCCStreamConfig())
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(float64(res.Accepted), "accepted")
	b.ReportMetric(float64(res.Rejected), "rejected")
	b.ReportMetric(float64(res.WorstWCRTUS), "worst-WCRT-us")
	logRows(b, res.Rows())
}

// BenchmarkMCCThroughput measures the MCC's change-request throughput on
// the fleet-scale E12 stream under the five integration strategies. The
// serial sub-benchmark is the seed baseline (per-change integration, every
// stage from scratch, one worker); parallel adds the incremental timing
// engine (PR 1); batched coalesces change windows on top of it;
// full-incremental makes every pre-timing stage incremental too (scoped
// validation, warm-started mapping, partial synthesis, diff-proportional
// timing jobs and monitor splicing) and must beat the parallel mode's
// changes/s; stream-parallel runs the change stream through the
// mcc.StreamScheduler, fanning the deferred busy-window analyses of each
// optimistic window out over all cores — on >= 2 cores it must beat
// full-incremental (run with -cpu 1,2,4 for the sweep; on a single core
// the two are expected to tie, so the comparison is only logged there).
func BenchmarkMCCThroughput(b *testing.B) {
	changesPerSec := make(map[scenario.MCCThroughputMode]float64)
	for _, mode := range scenario.ThroughputModes() {
		mode := mode
		b.Run(string(mode), func(b *testing.B) {
			cfg := scenario.DefaultMCCThroughputConfig()
			cfg.Mode = mode
			var res scenario.MCCThroughputResult
			for i := 0; i < b.N; i++ {
				r, err := scenario.RunMCCThroughput(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			if res.Accepted+res.Rejected != cfg.Updates {
				b.Fatalf("decided %d/%d changes", res.Accepted+res.Rejected, cfg.Updates)
			}
			cps := float64(cfg.Updates) * float64(b.N) / b.Elapsed().Seconds()
			changesPerSec[mode] = cps
			b.ReportMetric(cps, "changes/s")
			b.ReportMetric(float64(res.Evaluations), "evaluations")
			b.ReportMetric(float64(res.CacheHits), "cache-hits")
			b.ReportMetric(float64(res.TimingScans), "timing-scans")
			logRows(b, res.Rows())
		})
	}
	if full, stream := changesPerSec[scenario.ThroughputFull], changesPerSec[scenario.ThroughputStream]; full > 0 && stream > 0 {
		b.Logf("stream-parallel/full-incremental changes/s ratio at GOMAXPROCS=%d: %.2f",
			runtime.GOMAXPROCS(0), stream/full)
	}
}

// BenchmarkE4_AbilityPropagation runs the ACC closed loop with a sensor
// fault (Section IV): detection via ability-graph propagation, graceful
// degradation instead of failure.
func BenchmarkE4_AbilityPropagation(b *testing.B) {
	var res scenario.ACCResult
	for i := 0; i < b.N; i++ {
		r, err := scenario.RunACC(scenario.DefaultACCConfig())
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.DetectionS, "detect-s")
	b.ReportMetric(res.MinGap, "min-gap-m")
	b.ReportMetric(res.SpeedCap, "speed-cap-mps")
	if res.Collision {
		b.Fatal("collision despite graceful degradation")
	}
	logRows(b, res.Rows())
}

// BenchmarkE5_IntrusionResponse compares the rear-brake intrusion response
// strategies (Section V): cross-layer keeps the driving objective alive.
func BenchmarkE5_IntrusionResponse(b *testing.B) {
	var rs []scenario.IntrusionResult
	for i := 0; i < b.N; i++ {
		r, err := scenario.RunIntrusionComparison()
		if err != nil {
			b.Fatal(err)
		}
		rs = r
	}
	for _, r := range rs {
		switch r.Config.Strategy {
		case scenario.StrategyCrossLayer:
			b.ReportMetric(r.FunctionalityRetained, "func-cross-layer")
		case scenario.StrategySafetyOnly:
			b.ReportMetric(r.FunctionalityRetained, "func-safety-only")
		case scenario.StrategyUncoordinated:
			b.ReportMetric(float64(r.Conflicts), "conflicts-uncoordinated")
		}
		logRows(b, r.Rows())
	}
}

// BenchmarkE6_ThermalStress compares thermal awareness policies
// (Section V): cross-layer ≺ dvfs-only ≺ none in deadline misses.
func BenchmarkE6_ThermalStress(b *testing.B) {
	var rs []scenario.ThermalResult
	for i := 0; i < b.N; i++ {
		r, err := scenario.RunThermalComparison()
		if err != nil {
			b.Fatal(err)
		}
		rs = r
	}
	for _, r := range rs {
		switch r.Config.Policy {
		case scenario.PolicyNone:
			b.ReportMetric(100*r.TotalMissRate(), "miss%-none")
		case scenario.PolicyDVFS:
			b.ReportMetric(100*r.TotalMissRate(), "miss%-dvfs")
		case scenario.PolicyCrossLayer:
			b.ReportMetric(100*r.TotalMissRate(), "miss%-crosslayer")
		}
		logRows(b, r.Rows())
	}
}

// BenchmarkE7_PlatoonConsensus measures byzantine-tolerant velocity
// agreement and the fog membership benefit (Section V).
func BenchmarkE7_PlatoonConsensus(b *testing.B) {
	var res scenario.PlatoonResult
	for i := 0; i < b.N; i++ {
		r, err := scenario.RunPlatoon(scenario.DefaultPlatoonConfig())
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.MaxAgreementError, "max-err-mps")
	b.ReportMetric(res.SoloSpeed, "fog-solo-mps")
	b.ReportMetric(res.PlatoonSpeed, "fog-platoon-mps")
	logRows(b, res.Rows())
}

// BenchmarkE8_WeatherRouting sweeps the degradation-aversion weight over
// the alpine-pass scenario (Section V) and locates the crossover.
func BenchmarkE8_WeatherRouting(b *testing.B) {
	var res scenario.RoutingResult
	for i := 0; i < b.N; i++ {
		r, err := scenario.RunRouting(scenario.DefaultRoutingConfig())
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Crossover, "crossover-weight")
	logRows(b, res.Rows())
}

// BenchmarkE9_MonitorOverhead quantifies the run-time monitoring cost
// (Section II.B: "very little interference").
func BenchmarkE9_MonitorOverhead(b *testing.B) {
	var res scenario.OverheadResult
	for i := 0; i < b.N; i++ {
		r, err := scenario.RunMonitorOverhead()
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.OverheadPct, "overhead-%")
	logRows(b, res.Rows())
}

// BenchmarkE10_DependencyAnalysis compares automated cross-layer
// dependency analysis with the manual per-layer FMEA baseline (Section V).
func BenchmarkE10_DependencyAnalysis(b *testing.B) {
	var res scenario.DepsResult
	for i := 0; i < b.N; i++ {
		r, err := scenario.RunDependencyAnalysis()
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	var worstMissed float64
	for _, row := range res.RowsData {
		if row.MissedPct > worstMissed {
			worstMissed = row.MissedPct
		}
	}
	b.ReportMetric(worstMissed, "manual-missed-%")
	b.ReportMetric(float64(res.ChainsToObjective), "effect-chains")
	logRows(b, res.Rows())
}

// BenchmarkE11_Mission runs the capstone end-to-end mission: weather
// degradation plus a mid-mission intrusion, comparing coordinated
// cross-layer handling against the naive stop.
func BenchmarkE11_Mission(b *testing.B) {
	var rs []scenario.MissionResult
	for i := 0; i < b.N; i++ {
		r, err := scenario.RunMissionComparison()
		if err != nil {
			b.Fatal(err)
		}
		rs = r
	}
	for _, r := range rs {
		key := "km-naive"
		if r.Config.CrossLayer {
			key = "km-crosslayer"
		}
		b.ReportMetric(r.DistanceM/1000, key)
		logRows(b, r.Rows())
	}
}

func logRows(b *testing.B, rows []string) {
	b.Helper()
	for _, r := range rows {
		b.Log(r)
	}
}

func benchName(prefix string, n int) string {
	digits := ""
	if n == 0 {
		digits = "0"
	}
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return prefix + "=" + digits
}
