// Command skillgraph works with the ACC skill graph of Section IV: it
// prints the graph (or its run-time ability instantiation) as Graphviz DOT
// and runs the development-process analyses — single points of failure,
// redundancy proposals, error propagation.
//
// Usage:
//
//	skillgraph -dot                 # the skill graph as DOT
//	skillgraph -dot -degrade environment-sensors=0.4
//	skillgraph -analyze             # SPOFs + redundancy proposals
//	skillgraph -propagate braking-system
//	skillgraph -depgraph            # the cross-layer dependency graph as DOT
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/scenario"
	"repro/internal/skills"
)

func main() {
	log.SetFlags(0)
	dot := flag.Bool("dot", false, "emit Graphviz DOT")
	analyze := flag.Bool("analyze", false, "run development-process analyses")
	degrade := flag.String("degrade", "", "node=health pairs, comma separated (with -dot: colour by level)")
	propagate := flag.String("propagate", "", "show error propagation from this node")
	depgraph := flag.Bool("depgraph", false, "emit the vehicle cross-layer dependency graph as DOT")
	flag.Parse()

	if *depgraph {
		dg, err := scenario.BuildVehicleDependencyGraph()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(dg.ToDOT("vehicle_dependencies"))
		return
	}

	g, err := skills.BuildACC()
	if err != nil {
		log.Fatal(err)
	}

	if *propagate != "" {
		affected := g.ErrorPropagation(*propagate)
		if affected == nil {
			fmt.Fprintf(os.Stderr, "unknown node %q\n", *propagate)
			os.Exit(2)
		}
		fmt.Printf("failure of %q propagates to:\n", *propagate)
		for _, n := range affected {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	if *analyze {
		for _, root := range g.Roots() {
			fmt.Printf("main skill: %s\n", root)
			spofs := g.SinglePointsOfFailure(root)
			if len(spofs) == 0 {
				fmt.Println("  no single points of failure (structural redundancy present)")
			}
			for _, p := range g.ProposeRedundancies(root) {
				fmt.Printf("  SPOF: %-30s kind=%-6s affects %d chain(s) -> add a redundant %s\n",
					p.Node, p.Kind, p.AffectedChains, p.Kind)
			}
			// Per-subskill view.
			for _, n := range g.Nodes() {
				if k, _ := g.Kind(n); k != skills.Skill || n == root {
					continue
				}
				if sp := g.SinglePointsOfFailure(n); len(sp) > 0 {
					fmt.Printf("  %s depends critically on: %s\n", n, strings.Join(sp, ", "))
				}
			}
		}
		return
	}

	if *dot {
		if *degrade == "" {
			fmt.Print(g.ToDOT("acc_skill_graph"))
			return
		}
		ag, err := skills.Instantiate(g)
		if err != nil {
			log.Fatal(err)
		}
		for _, pair := range strings.Split(*degrade, ",") {
			kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
			if len(kv) != 2 {
				fmt.Fprintf(os.Stderr, "bad -degrade entry %q (want node=health)\n", pair)
				os.Exit(2)
			}
			h, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad health %q: %v\n", kv[1], err)
				os.Exit(2)
			}
			if err := ag.SetHealth(kv[0], skills.Level(h)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		fmt.Print(ag.ToDOTWithLevels("acc_ability_graph"))
		return
	}

	flag.Usage()
}
