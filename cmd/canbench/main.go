// Command canbench runs the virtualized-CAN-controller experiments of
// Section III: E1 (added round-trip latency vs native across VM counts and
// payload sizes) and E2 (FPGA resource break-even vs stand-alone
// controllers).
//
// Usage:
//
//	canbench -experiment e1 [-probes 200]
//	canbench -experiment e2 [-maxvf 16]
//	canbench -experiment all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/canvirt"
)

func main() {
	log.SetFlags(0)
	experiment := flag.String("experiment", "all", "which experiment to run: e1, e2, all")
	probes := flag.Int("probes", 100, "round trips per E1 configuration")
	maxVF := flag.Int("maxvf", 16, "largest VM count for the sweeps")
	flag.Parse()

	switch *experiment {
	case "e1":
		runE1(*probes, *maxVF)
	case "e2":
		runE2(*maxVF)
	case "all":
		runE1(*probes, *maxVF)
		fmt.Println()
		runE2(*maxVF)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func runE1(probes, maxVF int) {
	fmt.Println("E1: virtualized CAN controller round-trip latency (paper: +7-11us added)")
	fmt.Println("VMs  payload  native-RTT   virt-RTT    added")
	for _, vms := range []int{1, 2, 4, 8, 12, maxVF} {
		for _, payload := range []int{0, 4, 8} {
			base := canvirt.ProbeConfig{Probes: probes, PayloadBytes: payload}
			nat, err := canvirt.MeasureNative(base)
			if err != nil {
				log.Fatalf("native: %v", err)
			}
			cfg := base
			cfg.VMs = vms
			virt, err := canvirt.MeasureVirtualized(cfg)
			if err != nil {
				log.Fatalf("virtualized: %v", err)
			}
			fmt.Printf("%3d  %5dB  %9.2fus  %9.2fus  %+6.2fus\n",
				vms, payload, nat.Mean().Micros(), virt.Mean().Micros(),
				(virt.Mean() - nat.Mean()).Micros())
		}
	}
}

func runE2(maxVF int) {
	fmt.Println("E2: FPGA resource model (paper: break-even with stand-alone controllers at four VMs)")
	fmt.Println("VMs  standalone-LUT  virtualized-LUT  virtualized-cheaper")
	for n := 1; n <= maxVF; n++ {
		sa := canvirt.StandaloneController().Scale(n)
		v := canvirt.VirtualizedController(n)
		fmt.Printf("%3d  %14d  %15d  %v\n", n, sa.LUT, v.LUT, v.LUT <= sa.LUT)
	}
	fmt.Printf("break-even at %d VMs\n", canvirt.BreakEvenVFs())
}
