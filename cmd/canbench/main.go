// Command canbench runs the virtualized-CAN-controller experiments of
// Section III: E1 (added round-trip latency vs native across VM counts and
// payload sizes) and E2 (FPGA resource break-even vs stand-alone
// controllers).
//
// Usage:
//
//	canbench -experiment e1 [-probes 200]
//	canbench -experiment e2 [-maxvf 16]
//	canbench -experiment all
//	canbench -experiment all -json   # machine-readable, for BENCH_*.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/canvirt"
)

// e1Row is one E1 configuration's latency measurement.
type e1Row struct {
	VMs          int     `json:"vms"`
	PayloadBytes int     `json:"payload_bytes"`
	NativeUS     float64 `json:"native_rtt_us"`
	VirtUS       float64 `json:"virt_rtt_us"`
	AddedUS      float64 `json:"added_us"`
}

// e2Row is one E2 resource-model point.
type e2Row struct {
	VMs            int  `json:"vms"`
	StandaloneLUT  int  `json:"standalone_lut"`
	VirtualizedLUT int  `json:"virtualized_lut"`
	VirtCheaper    bool `json:"virtualized_cheaper"`
}

// benchReport is the -json output document.
type benchReport struct {
	E1        []e1Row `json:"e1,omitempty"`
	E2        []e2Row `json:"e2,omitempty"`
	BreakEven int     `json:"e2_break_even_vms,omitempty"`
}

func main() {
	log.SetFlags(0)
	experiment := flag.String("experiment", "all", "which experiment to run: e1, e2, all")
	probes := flag.Int("probes", 100, "round trips per E1 configuration")
	maxVF := flag.Int("maxvf", 16, "largest VM count for the sweeps")
	asJSON := flag.Bool("json", false, "emit results as JSON on stdout")
	flag.Parse()

	var rep benchReport
	runE1 := *experiment == "e1" || *experiment == "all"
	runE2 := *experiment == "e2" || *experiment == "all"
	if !runE1 && !runE2 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if runE1 {
		rows, err := measureE1(*probes, *maxVF)
		if err != nil {
			log.Fatal(err)
		}
		rep.E1 = rows
	}
	if runE2 {
		rep.E2 = measureE2(*maxVF)
		rep.BreakEven = canvirt.BreakEvenVFs()
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	if runE1 {
		printE1(rep.E1)
	}
	if runE1 && runE2 {
		fmt.Println()
	}
	if runE2 {
		printE2(rep.E2, rep.BreakEven)
	}
}

func measureE1(probes, maxVF int) ([]e1Row, error) {
	var rows []e1Row
	for _, vms := range []int{1, 2, 4, 8, 12, maxVF} {
		for _, payload := range []int{0, 4, 8} {
			base := canvirt.ProbeConfig{Probes: probes, PayloadBytes: payload}
			nat, err := canvirt.MeasureNative(base)
			if err != nil {
				return nil, fmt.Errorf("native: %w", err)
			}
			cfg := base
			cfg.VMs = vms
			virt, err := canvirt.MeasureVirtualized(cfg)
			if err != nil {
				return nil, fmt.Errorf("virtualized: %w", err)
			}
			rows = append(rows, e1Row{
				VMs:          vms,
				PayloadBytes: payload,
				NativeUS:     nat.Mean().Micros(),
				VirtUS:       virt.Mean().Micros(),
				AddedUS:      (virt.Mean() - nat.Mean()).Micros(),
			})
		}
	}
	return rows, nil
}

func measureE2(maxVF int) []e2Row {
	var rows []e2Row
	for n := 1; n <= maxVF; n++ {
		sa := canvirt.StandaloneController().Scale(n)
		v := canvirt.VirtualizedController(n)
		rows = append(rows, e2Row{
			VMs:            n,
			StandaloneLUT:  sa.LUT,
			VirtualizedLUT: v.LUT,
			VirtCheaper:    v.LUT <= sa.LUT,
		})
	}
	return rows
}

func printE1(rows []e1Row) {
	fmt.Println("E1: virtualized CAN controller round-trip latency (paper: +7-11us added)")
	fmt.Println("VMs  payload  native-RTT   virt-RTT    added")
	for _, r := range rows {
		fmt.Printf("%3d  %5dB  %9.2fus  %9.2fus  %+6.2fus\n",
			r.VMs, r.PayloadBytes, r.NativeUS, r.VirtUS, r.AddedUS)
	}
}

func printE2(rows []e2Row, breakEven int) {
	fmt.Println("E2: FPGA resource model (paper: break-even with stand-alone controllers at four VMs)")
	fmt.Println("VMs  standalone-LUT  virtualized-LUT  virtualized-cheaper")
	for _, r := range rows {
		fmt.Printf("%3d  %14d  %15d  %v\n", r.VMs, r.StandaloneLUT, r.VirtualizedLUT, r.VirtCheaper)
	}
	fmt.Printf("break-even at %d VMs\n", breakEven)
}
