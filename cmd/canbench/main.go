// Command canbench runs the virtualized-CAN-controller experiments of
// Section III — E1 (added round-trip latency vs native across VM counts
// and payload sizes) and E2 (FPGA resource break-even vs stand-alone
// controllers) — plus E12, the MCC change-stream throughput comparison
// across the integration strategies of the staged acceptance pipeline.
//
// Usage:
//
//	canbench -experiment e1 [-probes 200]
//	canbench -experiment e2 [-maxvf 16]
//	canbench -experiment e12 [-changes 64]
//	canbench -experiment e12 -cores 1,0        # GOMAXPROCS sweep (0 = all cores)
//	canbench -experiment e12 -cache mcc.cache  # persistent timing-analyzer memo
//	canbench -experiment e13 [-procs 32,128,512] [-scale-changes 32]
//	canbench -experiment e14 [-chaos-procs 32] [-chaos-changes 24]
//	canbench -experiment e15 [-fleet-vehicles 6] [-fleet-archetypes 2] [-fleet-procs 8] [-fleet-changes 12]
//	canbench -experiment e16 [-shard-procs 128,512,1024] [-shard-changes 1024] [-shard-reps 3]
//	canbench -experiment all
//	canbench -experiment all -json   # machine-readable, for BENCH_*.json
//
// E13 is the fleet-scale stress tier: the E12 throughput measurement on
// generated platforms of growing processor counts, publishing the
// scans-per-change curve that proves the accept path is diff-proportional
// (flat for the incremental modes, linear in the platform for serial).
//
// E14 is the chaos tier: the generated-fleet change stream driven under a
// deterministic fault matrix (injected analyzer errors, worker panics,
// cache corruption, stage stalls racing the proposal deadline, journal
// undo failures), publishing per-fault availability, recovery telemetry,
// and the parity verdict against the clean serial oracle.
//
// E15 is the multi-tenant availability tier: M vehicles hosted by one
// fleet.Server, driven concurrently under per-tenant injected faults,
// publishing sustained throughput, decision-latency percentiles, shed
// rate, and the blast-radius verdict (healthy vehicles bit-identical to
// their standalone oracles while one tenant is killed, stalled, or shed).
//
// E16 is the shard-scaling tier: the single-window-sequence stream
// scheduler against the sharded one (one window pipeline per platform
// partition) on the generated fleets, whose procs/16 disjoint CAN
// segments give the sharded scheduler that many concurrent sequences.
// The rows carry shards/global-window telemetry so the benchgate check
// can verify the partition engaged rather than silently falling back.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/canvirt"
	"repro/internal/cpa"
	"repro/internal/scenario"
)

// e1Row is one E1 configuration's latency measurement.
type e1Row struct {
	VMs          int     `json:"vms"`
	PayloadBytes int     `json:"payload_bytes"`
	NativeUS     float64 `json:"native_rtt_us"`
	VirtUS       float64 `json:"virt_rtt_us"`
	AddedUS      float64 `json:"added_us"`
}

// e2Row is one E2 resource-model point.
type e2Row struct {
	VMs            int  `json:"vms"`
	StandaloneLUT  int  `json:"standalone_lut"`
	VirtualizedLUT int  `json:"virtualized_lut"`
	VirtCheaper    bool `json:"virtualized_cheaper"`
}

// e13Row is one E13 scale-tier point: one integration strategy on one
// generated platform size.
type e13Row struct {
	Procs           int              `json:"procs"`
	Resources       int              `json:"resources"`
	Mode            string           `json:"mode"`
	Changes         int              `json:"changes"`
	Accepted        int              `json:"accepted"`
	Rejected        int              `json:"rejected"`
	Evaluations     int              `json:"evaluations"`
	CacheHits       int64            `json:"cache_hits"`
	CacheMisses     int64            `json:"cache_misses"`
	TimingScans     int              `json:"timing_scans"`
	ScansPerChange  float64          `json:"scans_per_change"`
	SecurityChecks  int              `json:"security_checks"`
	SafetyChecks    int              `json:"safety_checks"`
	ChecksPerChange float64          `json:"checks_per_change"`
	WallUS          int64            `json:"wall_us"`
	ChangesPerSec   float64          `json:"changes_per_sec"`
	StageWallUS     map[string]int64 `json:"stage_wall_us"`
}

// e16Row is one E16 shard-scaling point: one stream scheduler (single
// window sequence vs sharded) on one generated platform size, with the
// sharding telemetry that proves the partition actually engaged.
type e16Row struct {
	Procs           int     `json:"procs"`
	Resources       int     `json:"resources"`
	Mode            string  `json:"mode"`
	Changes         int     `json:"changes"`
	Accepted        int     `json:"accepted"`
	Rejected        int     `json:"rejected"`
	Shards          int     `json:"shards"`
	Windows         int     `json:"windows"`
	GlobalWindows   int     `json:"global_windows"`
	Speculated      int     `json:"speculated"`
	Replays         int     `json:"replays"`
	Conflicts       int     `json:"conflicts"`
	DiscardedPasses int     `json:"discarded_passes"`
	Prefetched      int     `json:"prefetched"`
	WallUS          int64   `json:"wall_us"`
	ChangesPerSec   float64 `json:"changes_per_sec"`
}

// e14Row is one E14 chaos-tier point: one fault spec driven through one
// integration strategy, with the oracle-parity verdict.
type e14Row struct {
	Spec            string  `json:"spec"`
	Mode            string  `json:"mode"`
	Procs           int     `json:"procs"`
	Changes         int     `json:"changes"`
	Accepted        int     `json:"accepted"`
	Rejected        int     `json:"rejected"`
	Degraded        int     `json:"degraded"`
	DeadlineExpired int     `json:"deadline_expired"`
	PanicsRecovered int     `json:"panics_recovered"`
	RetriedAnalyses int     `json:"retried_analyses"`
	FaultsInjected  int     `json:"faults_injected"`
	Mismatches      int     `json:"mismatches"`
	ParityOK        bool    `json:"parity_ok"`
	AvailabilityPct float64 `json:"availability_pct"`
	MeanLatencyUS   int64   `json:"mean_latency_us"`
	P99LatencyUS    int64   `json:"p99_latency_us,omitempty"`
	MaxLatencyUS    int64   `json:"max_latency_us,omitempty"`
	RecoveryUS      int64   `json:"recovery_us,omitempty"`
	WallUS          int64   `json:"wall_us"`
}

// e15Row is one E15 availability-tier point: one fault spec on the
// multi-tenant fleet server, with the blast-radius verdict.
type e15Row struct {
	Spec              string  `json:"spec"`
	Vehicles          int     `json:"vehicles"`
	Archetypes        int     `json:"archetypes"`
	Procs             int     `json:"procs"`
	ChangesPerVehicle int     `json:"changes_per_vehicle"`
	Offered           int64   `json:"offered"`
	Decided           int64   `json:"decided"`
	Accepted          int64   `json:"accepted"`
	Rejected          int64   `json:"rejected"`
	Shed              int64   `json:"shed"`
	ShedRatePct       float64 `json:"shed_rate_pct"`
	Crashes           int64   `json:"crashes"`
	Restarts          int64   `json:"restarts"`
	Parked            int     `json:"parked"`
	FaultedVehicle    string  `json:"faulted_vehicle,omitempty"`
	FaultedLost       int     `json:"faulted_lost"`
	ParityChecked     bool    `json:"parity_checked"`
	HealthyLost       int     `json:"healthy_lost"`
	HealthyMismatches int     `json:"healthy_mismatches"`
	BlastRadiusOK     bool    `json:"blast_radius_ok"`
	FaultsInjected    int     `json:"faults_injected"`
	MeanLatencyUS     int64   `json:"mean_latency_us"`
	P99LatencyUS      int64   `json:"p99_latency_us"`
	MaxLatencyUS      int64   `json:"max_latency_us"`
	ChangesPerSec     float64 `json:"changes_per_sec"`
	WallUS            int64   `json:"wall_us"`
	CacheHits         int64   `json:"cache_hits"`
	CacheMisses       int64   `json:"cache_misses"`
	FlightWaits       int64   `json:"flight_waits"`
}

// e12Row is one E12 integration strategy's throughput measurement.
type e12Row struct {
	Mode           string           `json:"mode"`
	Cores          int              `json:"cores"`
	Changes        int              `json:"changes"`
	Accepted       int              `json:"accepted"`
	Rejected       int              `json:"rejected"`
	Evaluations    int              `json:"evaluations"`
	CacheHits      int64            `json:"cache_hits"`
	CacheMisses    int64            `json:"cache_misses"`
	TimingScans    int              `json:"timing_scans"`
	SecurityChecks int              `json:"security_checks"`
	SafetyChecks   int              `json:"safety_checks"`
	WallUS         int64            `json:"wall_us"`
	ChangesPerSec  float64          `json:"changes_per_sec"`
	StageWallUS    map[string]int64 `json:"stage_wall_us"`
}

// benchReport is the -json output document.
type benchReport struct {
	E1        []e1Row  `json:"e1,omitempty"`
	E2        []e2Row  `json:"e2,omitempty"`
	BreakEven int      `json:"e2_break_even_vms,omitempty"`
	E12       []e12Row `json:"e12,omitempty"`
	E13       []e13Row `json:"e13,omitempty"`
	E14       []e14Row `json:"e14,omitempty"`
	E15       []e15Row `json:"e15,omitempty"`
	E16       []e16Row `json:"e16,omitempty"`
}

func main() {
	log.SetFlags(0)
	experiment := flag.String("experiment", "all", "which experiment to run: e1, e2, e12, e13, all")
	probes := flag.Int("probes", 100, "round trips per E1 configuration")
	maxVF := flag.Int("maxvf", 16, "largest VM count for the sweeps")
	changes := flag.Int("changes", 64, "streamed change requests per E12 strategy")
	cores := flag.String("cores", "0", "comma-separated GOMAXPROCS values for the E12 sweep (0 = all cores)")
	procs := flag.String("procs", "32,128,512,2048", "comma-separated platform sizes for the E13 scale sweep")
	scaleChanges := flag.Int("scale-changes", 32, "streamed change requests per E13 point")
	scaleModes := flag.String("scale-modes", "", "comma-separated E13 integration strategies (default serial,full-incremental,stream-parallel); the CI flatness gate selects the incremental modes only, the 2048p serial run costs seconds per point")
	chaosProcs := flag.Int("chaos-procs", 32, "platform size for the E14 chaos tier")
	chaosChanges := flag.Int("chaos-changes", 24, "streamed change requests per E14 run")
	shardProcs := flag.String("shard-procs", "128,512,1024", "comma-separated platform sizes for the E16 shard-scaling sweep")
	shardChanges := flag.Int("shard-changes", 1024, "streamed change requests per E16 point")
	shardReps := flag.Int("shard-reps", 3, "repetitions per E16 point; the median wall clock wins (the points take milliseconds, so single shots measure scheduler jitter, not the scheduler)")
	fleetVehicles := flag.Int("fleet-vehicles", 6, "tenant count for the E15 availability tier")
	fleetArchetypes := flag.Int("fleet-archetypes", 2, "distinct platform archetypes across the E15 tenants")
	fleetProcs := flag.Int("fleet-procs", 8, "platform size per E15 archetype")
	fleetChanges := flag.Int("fleet-changes", 12, "streamed change requests per E15 vehicle")
	cachePath := flag.String("cache", "", "persistent timing-analyzer memo table for E12: loaded before the runs, saved back after (warm-starts the busy-window analyses across sessions)")
	asJSON := flag.Bool("json", false, "emit results as JSON on stdout")
	flag.Parse()

	var rep benchReport
	runE1 := *experiment == "e1" || *experiment == "all"
	runE2 := *experiment == "e2" || *experiment == "all"
	runE12 := *experiment == "e12" || *experiment == "all"
	runE13 := *experiment == "e13" || *experiment == "e13-scale" || *experiment == "all"
	runE14 := *experiment == "e14" || *experiment == "all"
	runE15 := *experiment == "e15" || *experiment == "all"
	runE16 := *experiment == "e16" || *experiment == "all"
	if !runE1 && !runE2 && !runE12 && !runE13 && !runE14 && !runE15 && !runE16 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if runE1 {
		rows, err := measureE1(*probes, *maxVF)
		if err != nil {
			log.Fatal(err)
		}
		rep.E1 = rows
	}
	if runE2 {
		rep.E2 = measureE2(*maxVF)
		rep.BreakEven = canvirt.BreakEvenVFs()
	}
	if runE12 {
		coreList, err := parseIntList("-cores", *cores)
		if err != nil {
			log.Fatal(err)
		}
		var cache *e12Cache
		if *cachePath != "" {
			if cache, err = loadE12Cache(*cachePath); err != nil {
				log.Fatal(err)
			}
		}
		rows, err := measureE12(*changes, coreList, cache)
		if err != nil {
			log.Fatal(err)
		}
		rep.E12 = rows
		if cache != nil {
			if err := cpa.SaveCacheFile(cache.master, *cachePath); err != nil {
				log.Fatal(err)
			}
		}
	}
	if runE13 {
		procList, err := parseIntList("-procs", *procs)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := measureE13(procList, *scaleChanges, *scaleModes)
		if err != nil {
			log.Fatal(err)
		}
		rep.E13 = rows
	}
	if runE14 {
		rows, err := measureE14(*chaosProcs, *chaosChanges)
		if err != nil {
			log.Fatal(err)
		}
		rep.E14 = rows
	}
	if runE15 {
		rows, err := measureE15(*fleetVehicles, *fleetArchetypes, *fleetProcs, *fleetChanges)
		if err != nil {
			log.Fatal(err)
		}
		rep.E15 = rows
	}
	if runE16 {
		procList, err := parseIntList("-shard-procs", *shardProcs)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := measureE16(procList, *shardChanges, *shardReps)
		if err != nil {
			log.Fatal(err)
		}
		rep.E16 = rows
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	if runE1 {
		printE1(rep.E1)
	}
	if runE1 && runE2 {
		fmt.Println()
	}
	if runE2 {
		printE2(rep.E2, rep.BreakEven)
	}
	if runE12 {
		if runE1 || runE2 {
			fmt.Println()
		}
		printE12(rep.E12)
	}
	if runE13 {
		if runE1 || runE2 || runE12 {
			fmt.Println()
		}
		printE13(rep.E13)
	}
	if runE14 {
		if runE1 || runE2 || runE12 || runE13 {
			fmt.Println()
		}
		printE14(rep.E14)
	}
	if runE15 {
		if runE1 || runE2 || runE12 || runE13 || runE14 {
			fmt.Println()
		}
		printE15(rep.E15)
	}
	if runE16 {
		if runE1 || runE2 || runE12 || runE13 || runE14 || runE15 {
			fmt.Println()
		}
		printE16(rep.E16)
	}
}

// measureE16 sweeps the two stream schedulers (single window sequence vs
// sharded) across the generated platform sizes and flattens the scenario
// rows into the JSON format. The sharding telemetry rides along so the
// gate can verify the partition engaged instead of silently falling back
// to the single sequence. Every point is run reps times and the median
// wall clock wins: the points are a few milliseconds each and fleet
// generation is deterministic, so the repetitions differ only by OS
// scheduling noise — which the median strips out in both directions
// (a minimum would instead crown the occasional lucky run).
func measureE16(procList []int, changes, reps int) ([]e16Row, error) {
	for _, p := range procList {
		if p < 2 {
			return nil, fmt.Errorf("invalid -shard-procs entry %d", p)
		}
	}
	if reps < 1 {
		reps = 1
	}
	cfg := scenario.DefaultMCCShardScaleConfig()
	cfg.Procs = procList
	cfg.Updates = changes
	samples := make([][]scenario.MCCScaleRow, 0, reps)
	for rep := 0; rep < reps; rep++ {
		again, err := scenario.RunMCCScale(cfg)
		if err != nil {
			return nil, err
		}
		samples = append(samples, again)
	}
	rows := samples[0]
	for i := range rows {
		walls := make([]time.Duration, 0, reps)
		for _, s := range samples {
			walls = append(walls, s[i].Result.StreamWall)
		}
		sort.Slice(walls, func(a, b int) bool { return walls[a] < walls[b] })
		median := walls[len(walls)/2]
		for _, s := range samples {
			if s[i].Result.StreamWall == median {
				rows[i] = s[i]
				break
			}
		}
	}
	out := make([]e16Row, 0, len(rows))
	for _, r := range rows {
		res := r.Result
		st := res.Stream
		out = append(out, e16Row{
			Procs:           r.Procs,
			Resources:       r.Resources,
			Mode:            string(res.Config.Mode),
			Changes:         res.Config.Updates,
			Accepted:        res.Accepted,
			Rejected:        res.Rejected,
			Shards:          st.Shards,
			Windows:         st.Windows,
			GlobalWindows:   st.GlobalWindows,
			Speculated:      st.Speculated,
			Replays:         st.Replays,
			Conflicts:       st.Conflicts,
			DiscardedPasses: st.DiscardedPasses,
			Prefetched:      st.Prefetched,
			WallUS:          res.StreamWall.Microseconds(),
			ChangesPerSec:   float64(res.Config.Updates) / res.StreamWall.Seconds(),
		})
	}
	return out, nil
}

func printE16(rows []e16Row) {
	fmt.Println("E16: sharded stream scheduler vs single window sequence across platform sizes (shard-scaling tier)")
	fmt.Println("procs  mode              changes  acc  rej  shards  windows  global  spec  repl  conf      wall  changes/s")
	for _, r := range rows {
		fmt.Printf("%5d  %-17s %7d  %3d  %3d  %6d  %7d  %6d  %4d  %4d  %4d  %8dus  %9.0f\n",
			r.Procs, r.Mode, r.Changes, r.Accepted, r.Rejected, r.Shards, r.Windows,
			r.GlobalWindows, r.Speculated, r.Replays, r.Conflicts, r.WallUS, r.ChangesPerSec)
	}
}

// measureE15 runs the multi-tenant availability tier and flattens the
// rows into the JSON format. A non-zero blast radius on a parity-checked
// row is a robustness regression, so it fails the command, not just the
// row.
func measureE15(vehicles, archetypes, procs, changes int) ([]e15Row, error) {
	cfg := scenario.DefaultFleetAvailConfig()
	cfg.Vehicles = vehicles
	cfg.Archetypes = archetypes
	cfg.Procs = procs
	cfg.Updates = changes
	rows, err := scenario.RunFleetAvail(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]e15Row, 0, len(rows))
	for _, r := range rows {
		if !r.BlastRadiusOK {
			return nil, fmt.Errorf("e15 %s: blast radius not zero: %d healthy decision(s) lost, %d mismatched: %s",
				r.Spec, r.HealthyLost, r.HealthyMismatches, r.FirstMismatch)
		}
		out = append(out, e15Row{
			Spec:              r.Spec,
			Vehicles:          r.Vehicles,
			Archetypes:        r.Archetypes,
			Procs:             r.Procs,
			ChangesPerVehicle: r.ChangesPerVehicle,
			Offered:           r.Offered,
			Decided:           r.Decided,
			Accepted:          r.Accepted,
			Rejected:          r.Rejected,
			Shed:              r.Shed,
			ShedRatePct:       r.ShedRatePct,
			Crashes:           r.Crashes,
			Restarts:          r.Restarts,
			Parked:            r.Parked,
			FaultedVehicle:    r.FaultedVehicle,
			FaultedLost:       r.FaultedLost,
			ParityChecked:     r.ParityChecked,
			HealthyLost:       r.HealthyLost,
			HealthyMismatches: r.HealthyMismatches,
			BlastRadiusOK:     r.BlastRadiusOK,
			FaultsInjected:    r.FaultsInjected,
			MeanLatencyUS:     r.MeanLatencyUS,
			P99LatencyUS:      r.P99LatencyUS,
			MaxLatencyUS:      r.MaxLatencyUS,
			ChangesPerSec:     r.ChangesPerSec,
			WallUS:            r.WallUS,
			CacheHits:         r.CacheHits,
			CacheMisses:       r.CacheMisses,
			FlightWaits:       r.FlightWaits,
		})
	}
	return out, nil
}

func printE15(rows []e15Row) {
	fmt.Println("E15: multi-tenant fleet availability under per-tenant faults (blast radius must be zero)")
	fmt.Println("spec             vehicles  offered  decided  acc  rej  shed  shed%  crash  restart  park  h-lost  h-mism  blast-ok  mean-lat   p99-lat  changes/s")
	for _, r := range rows {
		blast := "skip"
		if r.ParityChecked {
			blast = fmt.Sprintf("%v", r.BlastRadiusOK)
		}
		fmt.Printf("%-16s %8d  %7d  %7d  %3d  %3d  %4d  %4.1f%%  %5d  %7d  %4d  %6d  %6d  %8s  %6dus  %6dus  %9.0f\n",
			r.Spec, r.Vehicles, r.Offered, r.Decided, r.Accepted, r.Rejected, r.Shed, r.ShedRatePct,
			r.Crashes, r.Restarts, r.Parked, r.HealthyLost, r.HealthyMismatches, blast,
			r.MeanLatencyUS, r.P99LatencyUS, r.ChangesPerSec)
	}
}

// measureE14 runs the chaos tier and flattens the rows into the JSON
// format. Any parity failure is a robustness regression, so it fails the
// command, not just the row.
func measureE14(procs, changes int) ([]e14Row, error) {
	cfg := scenario.DefaultMCCChaosConfig()
	cfg.Procs = procs
	cfg.Updates = changes
	rows, err := scenario.RunMCCChaos(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]e14Row, 0, len(rows))
	for _, r := range rows {
		if !r.ParityOK {
			return nil, fmt.Errorf("e14 %s/%s: %d decision(s) diverged from the clean oracle: %s",
				r.Spec, r.Mode, r.Mismatches, r.FirstMismatch)
		}
		out = append(out, e14Row{
			Spec:            r.Spec,
			Mode:            string(r.Mode),
			Procs:           r.Procs,
			Changes:         r.Changes,
			Accepted:        r.Accepted,
			Rejected:        r.Rejected,
			Degraded:        r.Degraded,
			DeadlineExpired: r.DeadlineExpired,
			PanicsRecovered: r.PanicsRecovered,
			RetriedAnalyses: r.RetriedAnalyses,
			FaultsInjected:  r.FaultsInjected,
			Mismatches:      r.Mismatches,
			ParityOK:        r.ParityOK,
			AvailabilityPct: r.AvailabilityPct,
			MeanLatencyUS:   r.MeanLatencyUS,
			P99LatencyUS:    r.P99LatencyUS,
			MaxLatencyUS:    r.MaxLatencyUS,
			RecoveryUS:      r.RecoveryUS,
			WallUS:          r.WallUS,
		})
	}
	return out, nil
}

func printE14(rows []e14Row) {
	fmt.Println("E14: MCC decision parity and availability under the injected-fault matrix (chaos tier)")
	fmt.Println("spec                  mode              changes  acc  rej  degr  ddl  panics  retries  faults  parity  avail%   mean-lat   p99-lat  recovery")
	for _, r := range rows {
		fmt.Printf("%-21s %-17s %7d  %3d  %3d  %4d  %3d  %6d  %7d  %6d  %6v  %5.1f%%  %7dus  %7dus  %6dus\n",
			r.Spec, r.Mode, r.Changes, r.Accepted, r.Rejected, r.Degraded, r.DeadlineExpired,
			r.PanicsRecovered, r.RetriedAnalyses, r.FaultsInjected, r.ParityOK,
			r.AvailabilityPct, r.MeanLatencyUS, r.P99LatencyUS, r.RecoveryUS)
	}
}

// measureE13 sweeps the generated fleet platforms through the E13 scale
// tier and flattens the scenario rows into the JSON trajectory format.
// The headline column is scans_per_change: flat across platform sizes for
// the incremental modes, proportional to the resource count for serial.
func measureE13(procList []int, changes int, modes string) ([]e13Row, error) {
	for _, p := range procList {
		if p < 2 {
			return nil, fmt.Errorf("invalid -procs entry %d", p)
		}
	}
	cfg := scenario.DefaultMCCScaleConfig()
	cfg.Procs = procList
	cfg.Updates = changes
	if modes != "" {
		cfg.Modes = cfg.Modes[:0]
		for _, m := range strings.Split(modes, ",") {
			// Unknown names surface as RunMCCScale errors.
			cfg.Modes = append(cfg.Modes, scenario.MCCThroughputMode(strings.TrimSpace(m)))
		}
	}
	rows, err := scenario.RunMCCScale(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]e13Row, 0, len(rows))
	for _, r := range rows {
		res := r.Result
		row := e13Row{
			Procs:           r.Procs,
			Resources:       r.Resources,
			Mode:            string(res.Config.Mode),
			Changes:         res.Config.Updates,
			Accepted:        res.Accepted,
			Rejected:        res.Rejected,
			Evaluations:     res.Evaluations,
			CacheHits:       res.CacheHits,
			CacheMisses:     res.CacheMisses,
			TimingScans:     res.TimingScans,
			ScansPerChange:  r.ScansPerChange(),
			SecurityChecks:  res.SecurityChecks,
			SafetyChecks:    res.SafetyChecks,
			ChecksPerChange: r.ChecksPerChange(),
			WallUS:          res.StreamWall.Microseconds(),
			ChangesPerSec:   float64(res.Config.Updates) / res.StreamWall.Seconds(),
			StageWallUS:     make(map[string]int64, len(res.StageWall)),
		}
		for st, d := range res.StageWall {
			row.StageWallUS[string(st)] = d.Microseconds()
		}
		out = append(out, row)
	}
	return out, nil
}

func printE13(rows []e13Row) {
	fmt.Println("E13: MCC change-stream throughput vs platform size (scale tier)")
	fmt.Println("procs  resources  mode              changes  acc  rej  scans  scans/change  checks/change      wall  changes/s")
	for _, r := range rows {
		fmt.Printf("%5d  %9d  %-17s %7d  %3d  %3d  %5d  %12.2f  %13.2f  %8dus  %9.0f\n",
			r.Procs, r.Resources, r.Mode, r.Changes, r.Accepted, r.Rejected,
			r.TimingScans, r.ScansPerChange, r.ChecksPerChange, r.WallUS, r.ChangesPerSec)
	}
}

// e12Cache carries the persistent busy-window memo across the E12 sweep.
// Every run gets its own analyzer warm-loaded from the session-start
// snapshot — never from the preceding runs — so the cross-mode and
// cross-core wall-clock ratios measure the strategies, not accumulated
// cache warmth; each run's new entries are merged into master, which is
// what gets saved back for the next session.
type e12Cache struct {
	seed   []byte
	master *cpa.Analyzer
}

// loadE12Cache reads the cache file; a missing file yields an empty seed.
func loadE12Cache(path string) (*e12Cache, error) {
	c := &e12Cache{master: cpa.NewAnalyzer()}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	c.seed = data
	if err := cpa.LoadCache(c.master, bytes.NewReader(data)); err != nil {
		return nil, err
	}
	return c, nil
}

// analyzerForRun returns a fresh analyzer warmed from the session-start
// snapshot only.
func (c *e12Cache) analyzerForRun() (*cpa.Analyzer, error) {
	a := cpa.NewAnalyzer()
	if len(c.seed) > 0 {
		if err := cpa.LoadCache(a, bytes.NewReader(c.seed)); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// absorb merges one run's memo table into the master.
func (c *e12Cache) absorb(a *cpa.Analyzer) {
	cpa.MergeCache(c.master, a)
}

// parseIntList parses a comma-separated sweep list for the named flag
// (-cores, where 0 means "all cores", or -procs).
func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("invalid %s entry %q", flagName, part)
		}
		out = append(out, n)
	}
	return out, nil
}

// measureE12 streams the fleet-scale change requests through every MCC
// integration strategy — at every requested GOMAXPROCS value — and
// records throughput plus the per-stage wall clock, so the BENCH_*.json
// trajectory tracks which pipeline stages each optimization step actually
// removes and how the worker pool scales with cores. The persistent
// cache (from -cache) warm-starts every run from the previous session's
// memo, isolated per run so the ratios stay fair.
func measureE12(changes int, coreList []int, cache *e12Cache) ([]e12Row, error) {
	var rows []e12Row
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, cores := range coreList {
		n := cores
		if n == 0 {
			n = runtime.NumCPU()
		}
		runtime.GOMAXPROCS(n)
		for _, mode := range scenario.ThroughputModes() {
			cfg := scenario.DefaultMCCThroughputConfig()
			cfg.Mode = mode
			cfg.Updates = changes
			if cache != nil {
				a, err := cache.analyzerForRun()
				if err != nil {
					return nil, err
				}
				cfg.Analyzer = a
			}
			res, err := scenario.RunMCCThroughput(cfg)
			if err != nil {
				return nil, fmt.Errorf("e12 %s: %w", mode, err)
			}
			if cache != nil {
				cache.absorb(cfg.Analyzer)
			}
			// StreamWall excludes the fleet-baseline deployment every mode
			// pays identically, so the per-mode ratios are honest.
			elapsed := res.StreamWall
			row := e12Row{
				Mode:           string(mode),
				Cores:          n,
				Changes:        cfg.Updates,
				Accepted:       res.Accepted,
				Rejected:       res.Rejected,
				Evaluations:    res.Evaluations,
				CacheHits:      res.CacheHits,
				CacheMisses:    res.CacheMisses,
				TimingScans:    res.TimingScans,
				SecurityChecks: res.SecurityChecks,
				SafetyChecks:   res.SafetyChecks,
				WallUS:         elapsed.Microseconds(),
				ChangesPerSec:  float64(cfg.Updates) / elapsed.Seconds(),
				StageWallUS:    make(map[string]int64, len(res.StageWall)),
			}
			for st, d := range res.StageWall {
				row.StageWallUS[string(st)] = d.Microseconds()
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func measureE1(probes, maxVF int) ([]e1Row, error) {
	var rows []e1Row
	for _, vms := range []int{1, 2, 4, 8, 12, maxVF} {
		for _, payload := range []int{0, 4, 8} {
			base := canvirt.ProbeConfig{Probes: probes, PayloadBytes: payload}
			nat, err := canvirt.MeasureNative(base)
			if err != nil {
				return nil, fmt.Errorf("native: %w", err)
			}
			cfg := base
			cfg.VMs = vms
			virt, err := canvirt.MeasureVirtualized(cfg)
			if err != nil {
				return nil, fmt.Errorf("virtualized: %w", err)
			}
			rows = append(rows, e1Row{
				VMs:          vms,
				PayloadBytes: payload,
				NativeUS:     nat.Mean().Micros(),
				VirtUS:       virt.Mean().Micros(),
				AddedUS:      (virt.Mean() - nat.Mean()).Micros(),
			})
		}
	}
	return rows, nil
}

func measureE2(maxVF int) []e2Row {
	var rows []e2Row
	for n := 1; n <= maxVF; n++ {
		sa := canvirt.StandaloneController().Scale(n)
		v := canvirt.VirtualizedController(n)
		rows = append(rows, e2Row{
			VMs:            n,
			StandaloneLUT:  sa.LUT,
			VirtualizedLUT: v.LUT,
			VirtCheaper:    v.LUT <= sa.LUT,
		})
	}
	return rows
}

func printE1(rows []e1Row) {
	fmt.Println("E1: virtualized CAN controller round-trip latency (paper: +7-11us added)")
	fmt.Println("VMs  payload  native-RTT   virt-RTT    added")
	for _, r := range rows {
		fmt.Printf("%3d  %5dB  %9.2fus  %9.2fus  %+6.2fus\n",
			r.VMs, r.PayloadBytes, r.NativeUS, r.VirtUS, r.AddedUS)
	}
}

func printE2(rows []e2Row, breakEven int) {
	fmt.Println("E2: FPGA resource model (paper: break-even with stand-alone controllers at four VMs)")
	fmt.Println("VMs  standalone-LUT  virtualized-LUT  virtualized-cheaper")
	for _, r := range rows {
		fmt.Printf("%3d  %14d  %15d  %v\n", r.VMs, r.StandaloneLUT, r.VirtualizedLUT, r.VirtCheaper)
	}
	fmt.Printf("break-even at %d VMs\n", breakEven)
}

func printE12(rows []e12Row) {
	fmt.Println("E12: MCC change-stream throughput across integration strategies")
	fmt.Println("mode              cores  changes  acc  rej  evals  cache-hits  scans   wall       changes/s")
	for _, r := range rows {
		fmt.Printf("%-17s %5d  %7d  %3d  %3d  %5d  %10d  %5d  %8dus  %9.0f\n",
			r.Mode, r.Cores, r.Changes, r.Accepted, r.Rejected, r.Evaluations, r.CacheHits, r.TimingScans, r.WallUS, r.ChangesPerSec)
	}
}
