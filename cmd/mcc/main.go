// Command mcc runs the Multi-Change Controller integration process
// (Section II.A, experiment E3).
//
// With -model it loads a JSON system model (model.SystemModel: platform +
// functional architecture), integrates it, and prints the acceptance
// report including the WCRT tables and the planned monitors. Without
// -model it runs the built-in E3 update stream on the reference platform.
//
// Usage:
//
//	mcc                      # built-in E3 update stream
//	mcc -model system.json   # integrate a system model from disk
//	mcc -updates 48          # longer built-in stream
//	mcc -throughput -mode stream-parallel   # fleet-scale E12 throughput run
//	mcc -throughput -cache mcc.cache        # warm-start timing analyses across sessions
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/cpa"
	"repro/internal/mcc"
	"repro/internal/model"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	modelPath := flag.String("model", "", "path to a JSON system model")
	updates := flag.Int("updates", 24, "number of proposals in the built-in stream")
	throughput := flag.Bool("throughput", false, "run the fleet-scale E12 throughput scenario instead of E3")
	mode := flag.String("mode", string(scenario.ThroughputBatched), "E12 integration strategy: serial, parallel, batched, full-incremental, stream-parallel")
	batch := flag.Int("batch", 0, "E12 coalescing window (0 = default)")
	cachePath := flag.String("cache", "", "persistent timing-analyzer memo table: loaded before integrating, saved back after (warm-starts busy-window analyses across sessions)")
	flag.Parse()

	analyzer, saveCache := loadCache(*cachePath)
	if *modelPath != "" {
		integrateFile(*modelPath, analyzer)
		saveCache()
		return
	}

	if *throughput {
		cfg := scenario.DefaultMCCThroughputConfig()
		cfg.Mode = scenario.MCCThroughputMode(*mode)
		cfg.Analyzer = analyzer
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "updates" {
				cfg.Updates = *updates
			}
		})
		if *batch > 0 {
			cfg.BatchSize = *batch
		}
		res, err := scenario.RunMCCThroughput(cfg)
		if err != nil {
			log.Fatal(err)
		}
		saveCache()
		fmt.Println("E12: MCC fleet-scale change-stream throughput")
		for _, row := range res.Rows() {
			fmt.Println(row)
		}
		fmt.Printf("  stream wall time: %v (%.0f changes/s)\n",
			res.StreamWall.Round(time.Microsecond), float64(cfg.Updates)/res.StreamWall.Seconds())
		return
	}

	res, err := scenario.RunMCCStream(scenario.MCCStreamConfig{Updates: *updates, Analyzer: analyzer})
	if err != nil {
		log.Fatal(err)
	}
	saveCache()
	fmt.Println("E3: MCC in-field update stream")
	for _, row := range res.Rows() {
		fmt.Println(row)
	}
}

// loadCache prepares the persistent analyzer memo table: a nil analyzer
// (and a no-op save) when no -cache path was given.
func loadCache(path string) (*cpa.Analyzer, func()) {
	if path == "" {
		return nil, func() {}
	}
	analyzer := cpa.NewAnalyzer()
	if err := cpa.LoadCacheFile(analyzer, path); err != nil && !os.IsNotExist(err) {
		log.Fatal(err)
	}
	return analyzer, func() {
		if err := cpa.SaveCacheFile(analyzer, path); err != nil {
			log.Fatal(err)
		}
	}
}

func integrateFile(path string, analyzer *cpa.Analyzer) {
	rep, err := loadAndIntegrate(path, analyzer)
	if err != nil {
		log.Fatal(err)
	}
	printReport(rep)
	if !rep.Accepted {
		os.Exit(1)
	}
}

// loadAndIntegrate parses a JSON system model and runs it through a fresh
// MCC, returning the integration report.
func loadAndIntegrate(path string, analyzer *cpa.Analyzer) (*mcc.Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sm model.SystemModel
	if err := json.Unmarshal(raw, &sm); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if err := sm.Validate(); err != nil {
		return nil, fmt.Errorf("invalid model: %w", err)
	}
	m, err := mcc.New(sm.Platform, mcc.WithAnalyzer(analyzer))
	if err != nil {
		return nil, err
	}
	return m.ProposeArchitecture(sm.Functional), nil
}

func printReport(rep *mcc.Report) {
	if rep.Accepted {
		fmt.Println("ACCEPTED")
	} else {
		fmt.Printf("REJECTED at stage %q\n", rep.RejectedAt)
		for _, f := range rep.Findings {
			fmt.Printf("  - %s\n", f)
		}
	}
	if len(rep.Stages) > 0 {
		fmt.Println("pipeline stages:")
		for _, tr := range rep.Stages {
			line := fmt.Sprintf("  %-10s %10v", tr.Stage, tr.Wall.Round(time.Microsecond))
			if tr.Note != "" {
				line += "  (" + tr.Note + ")"
			}
			fmt.Println(line)
		}
	}
	if rep.Impl != nil {
		fmt.Printf("tasks: %d, messages: %d, connections: %d\n",
			len(rep.Impl.Tasks), len(rep.Impl.Messages), len(rep.Impl.Connections))
	}
	// Whole-platform views, materialized on demand from the committed
	// tables the accepted report is bound to (a rejected report shows the
	// tables its attempt actually computed).
	for _, tr := range rep.FullTiming() {
		fmt.Printf("timing on %s:\n", tr.Resource)
		for _, r := range tr.Results {
			status := "OK"
			if !r.Schedulable {
				status = "MISS"
			}
			fmt.Printf("  %-24s WCRT %8dus  deadline %8dus  %s\n", r.Name, r.WCRTUS, r.DeadlineUS, status)
		}
	}
	if monitors := rep.FullMonitors(); len(monitors) > 0 {
		fmt.Printf("monitor plan: %d monitors\n", len(monitors))
		for _, ms := range monitors {
			fmt.Printf("  %-6s %-24s period %8dus\n", ms.Kind, ms.Target, ms.PeriodUS)
		}
	}
	if rep.Accepted && rep.Impl != nil {
		if order, err := mcc.StartupOrder(rep.Impl); err == nil {
			fmt.Printf("startup order: %v\n", order)
		}
	}
}
