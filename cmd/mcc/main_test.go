package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadAndIntegrateTestdata(t *testing.T) {
	rep, err := loadAndIntegrate(filepath.Join("testdata", "system.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("rejected at %s: %v", rep.RejectedAt, rep.Findings)
	}
	// brake-ctl is fail-operational with 2 replicas: 4 tasks total.
	if len(rep.Impl.Tasks) != 4 {
		t.Fatalf("tasks = %d", len(rep.Impl.Tasks))
	}
	// Flows cross processors (perception on perf, consumers on lockstep):
	// at least one CAN message synthesized.
	if len(rep.Impl.Messages) == 0 {
		t.Fatal("no CAN messages synthesized")
	}
	if len(rep.Monitors) == 0 {
		t.Fatal("no monitors planned")
	}
}

func TestLoadAndIntegrateMissingFile(t *testing.T) {
	if _, err := loadAndIntegrate("testdata/nonexistent.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadAndIntegrateGarbage(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadAndIntegrate(p); err == nil {
		t.Fatal("garbage accepted")
	}
	p2 := filepath.Join(dir, "invalid.json")
	if err := os.WriteFile(p2, []byte(`{"platform":{"processors":[]},"functional":{"functions":[]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Structurally-empty model: validates (no processors is fine for an
	// empty architecture), so integration reports acceptance of nothing,
	// or validation rejects; either way no panic.
	if _, err := loadAndIntegrate(p2); err != nil {
		t.Logf("empty model: %v", err)
	}
}
