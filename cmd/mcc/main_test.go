package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cpa"
)

func TestLoadAndIntegrateTestdata(t *testing.T) {
	rep, err := loadAndIntegrate(filepath.Join("testdata", "system.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("rejected at %s: %v", rep.RejectedAt, rep.Findings)
	}
	// brake-ctl is fail-operational with 2 replicas: 4 tasks total.
	if len(rep.Impl.Tasks) != 4 {
		t.Fatalf("tasks = %d", len(rep.Impl.Tasks))
	}
	// Flows cross processors (perception on perf, consumers on lockstep):
	// at least one CAN message synthesized.
	if len(rep.Impl.Messages) == 0 {
		t.Fatal("no CAN messages synthesized")
	}
	if len(rep.FullMonitors()) == 0 {
		t.Fatal("no monitors planned")
	}
}

func TestPersistentCacheWarmStartsSecondSession(t *testing.T) {
	// Two "sessions" integrating the same model through a cache file: the
	// second must answer every busy-window analysis from the loaded memo.
	model := filepath.Join("testdata", "system.json")
	cache := filepath.Join(t.TempDir(), "mcc.cache")

	first := cpa.NewAnalyzer()
	if err := cpa.LoadCacheFile(first, cache); !os.IsNotExist(err) {
		t.Fatalf("fresh cache load: %v", err)
	}
	if _, err := loadAndIntegrate(model, first); err != nil {
		t.Fatal(err)
	}
	if st := first.Stats(); st.Misses == 0 {
		t.Fatalf("first session stats = %+v, want cold misses", st)
	}
	if err := cpa.SaveCacheFile(first, cache); err != nil {
		t.Fatal(err)
	}

	second := cpa.NewAnalyzer()
	if err := cpa.LoadCacheFile(second, cache); err != nil {
		t.Fatal(err)
	}
	if _, err := loadAndIntegrate(model, second); err != nil {
		t.Fatal(err)
	}
	if st := second.Stats(); st.Misses != 0 || st.Hits == 0 {
		t.Fatalf("second session stats = %+v, want all hits", st)
	}
}

func TestLoadAndIntegrateMissingFile(t *testing.T) {
	if _, err := loadAndIntegrate("testdata/nonexistent.json", nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadAndIntegrateGarbage(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadAndIntegrate(p, nil); err == nil {
		t.Fatal("garbage accepted")
	}
	p2 := filepath.Join(dir, "invalid.json")
	if err := os.WriteFile(p2, []byte(`{"platform":{"processors":[]},"functional":{"functions":[]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Structurally-empty model: validates (no processors is fine for an
	// empty architecture), so integration reports acceptance of nothing,
	// or validation rejects; either way no panic.
	if _, err := loadAndIntegrate(p2, nil); err != nil {
		t.Logf("empty model: %v", err)
	}
}
