// Command vehiclesim runs the closed-loop ACC simulation with
// ability-graph monitoring (Section IV, experiment E4): a sensor fault is
// injected mid-run, the ability graph detects the degradation, and a
// graceful-degradation tactic caps the speed.
//
// Usage:
//
//	vehiclesim                        # default noisy-sensor fault
//	vehiclesim -fault dropout -mag 0.7
//	vehiclesim -fault none            # nominal run
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/scenario"
	"repro/internal/sensors"
)

func main() {
	log.SetFlags(0)
	fault := flag.String("fault", "noisy", "fault to inject: none, dropout, bias, freeze, noisy")
	mag := flag.Float64("mag", 6, "fault magnitude (dropout prob, bias m, noise factor)")
	at := flag.Float64("at", 60, "injection time (s)")
	duration := flag.Float64("duration", 120, "simulated time (s)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	cfg := scenario.DefaultACCConfig()
	cfg.Seed = *seed
	cfg.DurationS = *duration
	cfg.FaultAtS = *at
	cfg.FaultMagnitude = *mag
	switch *fault {
	case "none":
		cfg.FaultAtS = 0
	case "dropout":
		cfg.Fault = sensors.FaultDropout
	case "bias":
		cfg.Fault = sensors.FaultBias
	case "freeze":
		cfg.Fault = sensors.FaultFreeze
	case "noisy":
		cfg.Fault = sensors.FaultNoisy
	default:
		fmt.Fprintf(os.Stderr, "unknown fault %q\n", *fault)
		os.Exit(2)
	}

	res, err := scenario.RunACC(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("E4: ACC ability-graph monitoring")
	for _, row := range res.Rows() {
		fmt.Println(row)
	}
	if res.Collision {
		os.Exit(1)
	}
}
