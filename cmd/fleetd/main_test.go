package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/model"
)

func testPlatform() *model.Platform {
	return &model.Platform{
		Processors: []model.Processor{
			{Name: "ecu-safe", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "ecu-perf", Policy: model.SPP, SpeedFactor: 2.0, RAMKiB: 8192, MaxSafety: model.ASILB},
		},
		Networks: []model.Network{
			{Name: "can0", BitsPerSec: 500_000, Attached: []string{"ecu-safe", "ecu-perf"}, Kind: "can"},
		},
	}
}

func testBaseline() *model.FunctionalArchitecture {
	return &model.FunctionalArchitecture{
		Functions: []model.Function{{
			Name: "brake",
			Contract: model.Contract{
				Safety:    model.ASILD,
				RealTime:  model.RealTimeContract{PeriodUS: 5000, WCETUS: 500},
				Resources: model.ResourceContract{RAMKiB: 128},
			},
		}},
	}
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// The HTTP surface end to end: register, propose (accept and reject),
// stats, explicit verdict statuses, and post-drain behavior.
func TestFleetdHTTPLifecycle(t *testing.T) {
	srv, err := fleet.New(fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newMux(srv))
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/vehicles", registerRequest{
		ID: "v0", Platform: testPlatform(), Baseline: testBaseline(),
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Duplicate registration conflicts.
	resp = postJSON(t, ts, "/v1/vehicles", registerRequest{
		ID: "v0", Platform: testPlatform(), Baseline: testBaseline(),
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	good := model.Function{
		Name: "telem",
		Contract: model.Contract{
			Safety:    model.QM,
			RealTime:  model.RealTimeContract{PeriodUS: 100000, WCETUS: 800},
			Resources: model.ResourceContract{RAMKiB: 64},
		},
	}
	resp = postJSON(t, ts, "/v1/propose", proposeRequest{Vehicle: "v0", Update: &good})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("propose status = %d", resp.StatusCode)
	}
	if d := decode[proposeResponse](t, resp); d.Verdict != string(fleet.Accepted) || d.Report == nil {
		t.Fatalf("propose reply = %+v", d)
	}

	bad := good
	bad.Name = "broken"
	bad.Contract.RealTime = model.RealTimeContract{PeriodUS: 1000, WCETUS: 5000}
	resp = postJSON(t, ts, "/v1/propose", proposeRequest{Vehicle: "v0", Update: &bad})
	if d := decode[proposeResponse](t, resp); d.Verdict != string(fleet.Rejected) {
		t.Fatalf("broken contract verdict = %s", d.Verdict)
	}

	resp = postJSON(t, ts, "/v1/propose", proposeRequest{Vehicle: "ghost", Update: &good})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown vehicle status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed: neither update nor remove.
	resp = postJSON(t, ts, "/v1/propose", proposeRequest{Vehicle: "v0"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty proposal status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, ts, "/v1/propose", proposeRequest{Vehicle: "v0", Remove: "telem"})
	if d := decode[proposeResponse](t, resp); d.Verdict != string(fleet.Accepted) {
		t.Fatalf("removal verdict = %s", d.Verdict)
	}

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[fleet.Stats](t, statsResp)
	if st.Decided != 3 || st.Accepted != 2 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want 3 decided (2 accepted, 1 rejected)", st)
	}

	vehResp, err := http.Get(ts.URL + "/v1/vehicles")
	if err != nil {
		t.Fatal(err)
	}
	if ids := decode[[]string](t, vehResp); len(ids) != 1 || ids[0] != "v0" {
		t.Fatalf("vehicles = %v", ids)
	}

	// After a drain the API answers with explicit unavailability.
	srv.Drain()
	resp = postJSON(t, ts, "/v1/propose", proposeRequest{Vehicle: "v0", Update: &good})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain propose status = %d", resp.StatusCode)
	}
	if d := decode[proposeResponse](t, resp); d.Verdict != string(fleet.RejectedDraining) {
		t.Fatalf("post-drain verdict = %s", d.Verdict)
	}
	resp = postJSON(t, ts, "/v1/vehicles", registerRequest{
		ID: "late", Platform: testPlatform(), Baseline: testBaseline(),
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-drain register status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestFleetdRejectsWrongMethod(t *testing.T) {
	srv, err := fleet.New(fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(newMux(srv))
	defer ts.Close()

	// GET on the POST-only endpoint and POST on a GET-only one: the
	// method-qualified mux patterns must answer 405 with an Allow header.
	resp, err := http.Get(ts.URL + "/v1/propose")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/propose status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "POST" {
		t.Fatalf("GET /v1/propose Allow = %q, want POST", allow)
	}

	resp = postJSON(t, ts, "/v1/stats", map[string]string{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
		t.Fatalf("POST /v1/stats Allow = %q, want GET, HEAD", allow)
	}
}

func TestFleetdBoundsRequestBodies(t *testing.T) {
	srv, err := fleet.New(fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(newMux(srv))
	defer ts.Close()

	// A proposal body beyond the bound is refused as oversized, not
	// buffered: a decoder reading an unbounded body would be a trivial
	// memory DoS against the long-lived server.
	huge := proposeRequest{Vehicle: "v0", Update: &model.Function{
		Name: strings.Repeat("x", maxProposeBytes+1),
	}}
	resp := postJSON(t, ts, "/v1/propose", huge)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized propose status = %d, want 413", resp.StatusCode)
	}

	hugeReg := registerRequest{ID: strings.Repeat("x", maxRegisterBytes+1)}
	resp = postJSON(t, ts, "/v1/vehicles", hugeReg)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized register status = %d, want 413", resp.StatusCode)
	}

	// A bounded-but-malformed body is still a plain 400.
	r, err := http.Post(ts.URL+"/v1/propose", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed propose status = %d, want 400", r.StatusCode)
	}
}

func TestSeedFleetRegistersArchetypeVehicles(t *testing.T) {
	srv, err := fleet.New(fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	if err := seedFleet(srv, 4, 2, 4); err != nil {
		t.Fatal(err)
	}
	ids := srv.Vehicles()
	if len(ids) != 4 || ids[0] != "a0-v00" || ids[3] != "a1-v03" {
		t.Fatalf("seeded vehicles = %v", ids)
	}
}
