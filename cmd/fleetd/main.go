// Command fleetd is the long-lived multi-tenant MCC server: it hosts one
// fleet.Server (per-vehicle bulkheads behind a supervised bounded
// scheduler, one shared content-addressed timing analyzer) and exposes a
// small JSON HTTP API:
//
//	POST /v1/vehicles  {"id","platform","baseline"}     register a vehicle
//	POST /v1/propose   {"vehicle","update"|"remove"}    decide one change
//	GET  /v1/vehicles                                   list registered IDs
//	GET  /v1/stats                                      server counters
//
// Propose never hangs: overload, draining, parked, and unknown-vehicle
// conditions come back as explicit verdicts, and -deadline bounds every
// admitted decision (the HTTP request context propagates too, so a
// disconnected client stops paying for its proposal).
//
// SIGTERM/SIGINT triggers a graceful drain: intake closes, queued and
// in-flight proposals are flushed to replies, the analyzer cache is
// persisted to -cache, the commit journal is synced, and the drain
// report is logged. A restarted fleetd warm-starts from -cache and
// rebuilds every vehicle's committed state from -journal.
//
// -seed-vehicles pre-registers a generated fleet (scenario archetypes)
// so a demo instance serves traffic immediately.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/mcc"
	"repro/internal/model"
	"repro/internal/scenario"
)

// registerRequest is the POST /v1/vehicles body.
type registerRequest struct {
	ID       string                        `json:"id"`
	Platform *model.Platform               `json:"platform"`
	Baseline *model.FunctionalArchitecture `json:"baseline"`
}

// proposeRequest is the POST /v1/propose body: exactly one of Update
// (a new/updated function contract) or Remove (a function name).
type proposeRequest struct {
	Vehicle string          `json:"vehicle"`
	Update  *model.Function `json:"update,omitempty"`
	Remove  string          `json:"remove,omitempty"`
}

// proposeResponse is the decision reply.
type proposeResponse struct {
	Vehicle string      `json:"vehicle"`
	Verdict string      `json:"verdict"`
	Report  *reportView `json:"report,omitempty"`
}

// reportView is the JSON projection of an integration report: the
// verdict, the findings, and the O(change) timing/monitor deltas — not
// the implementation model (shared with the vehicle's committed state)
// and not the whole-platform tables (the delta contract keeps replies
// proportional to the change, not the platform).
type reportView struct {
	Accepted        bool               `json:"accepted"`
	RejectedAt      string             `json:"rejected_at,omitempty"`
	Findings        []string           `json:"findings,omitempty"`
	TimingDelta     []mcc.TimingResult `json:"timing_delta,omitempty"`
	MonitorDelta    []mcc.MonitorSpec  `json:"monitor_delta,omitempty"`
	Passes          int                `json:"passes,omitempty"`
	Degraded        bool               `json:"degraded,omitempty"`
	DegradedReasons []string           `json:"degraded_reasons,omitempty"`
}

func viewOf(rep *mcc.Report) *reportView {
	if rep == nil {
		return nil
	}
	return &reportView{
		Accepted:        rep.Accepted,
		RejectedAt:      string(rep.RejectedAt),
		Findings:        rep.Findings,
		TimingDelta:     rep.TimingDelta,
		MonitorDelta:    rep.MonitorDelta,
		Passes:          rep.Passes,
		Degraded:        rep.Degraded,
		DegradedReasons: rep.DegradedReasons,
	}
}

// Request-body bounds: a registration carries a whole platform +
// baseline architecture, a proposal one function contract.
const (
	maxRegisterBytes = 8 << 20
	maxProposeBytes  = 1 << 20
)

// decodeBody decodes a bounded JSON request body, distinguishing
// oversized bodies (413) from malformed ones (400).
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, err)
		return false
	}
	return true
}

// newMux builds the HTTP API over a fleet server. The method-qualified
// patterns make the mux answer wrong-method requests with 405 and an
// Allow header on its own.
func newMux(srv *fleet.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/vehicles", func(w http.ResponseWriter, r *http.Request) {
		var req registerRequest
		if !decodeBody(w, r, maxRegisterBytes, &req) {
			return
		}
		if req.Platform == nil || req.Baseline == nil {
			httpError(w, http.StatusBadRequest, errors.New("platform and baseline are required"))
			return
		}
		if err := srv.AddVehicle(req.ID, req.Platform, req.Baseline); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
	})
	mux.HandleFunc("POST /v1/propose", func(w http.ResponseWriter, r *http.Request) {
		var req proposeRequest
		if !decodeBody(w, r, maxProposeBytes, &req) {
			return
		}
		if (req.Update == nil) == (req.Remove == "") {
			httpError(w, http.StatusBadRequest, errors.New("exactly one of update or remove is required"))
			return
		}
		d := srv.Propose(r.Context(), req.Vehicle, mcc.Change{Update: req.Update, Remove: req.Remove})
		status := http.StatusOK
		switch d.Verdict {
		case fleet.RejectedUnknown:
			status = http.StatusNotFound
		case fleet.RejectedOverload:
			status = http.StatusTooManyRequests
		case fleet.RejectedDraining, fleet.RejectedParked:
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, proposeResponse{Vehicle: d.Vehicle, Verdict: string(d.Verdict), Report: viewOf(d.Report)})
	})
	mux.HandleFunc("GET /v1/vehicles", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Vehicles())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Stats())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is not our error
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// seedFleet pre-registers vehicles generated from scenario archetypes.
func seedFleet(srv *fleet.Server, vehicles, archetypes, procs int) error {
	if archetypes < 1 {
		archetypes = 1
	}
	if archetypes > vehicles {
		archetypes = vehicles
	}
	archs := make([]*scenario.Fleet, archetypes)
	for k := range archs {
		spec := scenario.DefaultFleetSpec(procs)
		spec.Seed = int64(k + 1)
		archs[k] = scenario.GenFleet(spec)
	}
	for i := 0; i < vehicles; i++ {
		arch := archs[i%archetypes]
		id := fmt.Sprintf("a%d-v%02d", i%archetypes, i)
		if err := srv.AddVehicle(id, arch.Platform, arch.Baseline); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	listen := flag.String("listen", ":8080", "HTTP listen address")
	queueDepth := flag.Int("queue-depth", 16, "per-vehicle proposal mailbox bound")
	maxInFlight := flag.Int("max-inflight", 256, "global admitted-but-undecided budget; beyond it proposals shed")
	maxRestarts := flag.Int("max-restarts", 3, "per-vehicle crash budget before the vehicle is parked")
	deadline := flag.Duration("deadline", 2*time.Second, "per-proposal decision deadline (0 disables)")
	cachePath := flag.String("cache", "", "analyzer cache file: warm-started at boot, persisted on drain")
	journalPath := flag.String("journal", "", "commit journal file: replayed at boot to rebuild committed state")
	seedVehicles := flag.Int("seed-vehicles", 0, "pre-register this many generated vehicles (0 disables)")
	seedArchetypes := flag.Int("seed-archetypes", 2, "archetype count for -seed-vehicles")
	seedProcs := flag.Int("seed-procs", 8, "platform size for -seed-vehicles archetypes")
	flag.Parse()

	srv, err := fleet.New(fleet.Config{
		QueueDepth:       *queueDepth,
		MaxInFlight:      *maxInFlight,
		MaxRestarts:      *maxRestarts,
		ProposalDeadline: *deadline,
		CachePath:        *cachePath,
		JournalPath:      *journalPath,
	})
	if err != nil {
		log.Fatal("fleetd: ", err)
	}
	if srv.WarmStarted() {
		log.Printf("fleetd: warm-started analyzer cache from %s", *cachePath)
	}
	if n := len(srv.Vehicles()); n > 0 {
		log.Printf("fleetd: recovered %d vehicle(s) from %s", n, *journalPath)
	}
	if *seedVehicles > 0 {
		if err := seedFleet(srv, *seedVehicles, *seedArchetypes, *seedProcs); err != nil {
			log.Fatal("fleetd: seed fleet: ", err)
		}
		log.Printf("fleetd: seeded %d generated vehicle(s)", *seedVehicles)
	}

	httpSrv := &http.Server{Addr: *listen, Handler: newMux(srv)}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("fleetd: serving %d vehicle(s) on %s", len(srv.Vehicles()), *listen)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		log.Printf("fleetd: %s: draining", sig)
	case err := <-errCh:
		log.Fatal("fleetd: ", err)
	}

	// Drain first so requests still arriving over open connections get
	// explicit RejectedDraining replies; then stop the listener.
	rep := srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx) //nolint:errcheck // drain already flushed all work
	log.Printf("fleetd: drained: flushed=%d shed=%d parked=%d cache_saved=%v",
		rep.Flushed, rep.Shed, rep.Parked, rep.CacheSaved)
}
