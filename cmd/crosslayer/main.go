// Command crosslayer runs the Section V cross-layer self-awareness
// scenarios: the rear-brake intrusion response comparison (E5), the
// thermal-stress policy comparison (E6), platooning under byzantine
// members plus the fog use case (E7), weather-aware routing (E8), the
// monitoring-overhead check (E9), and the cross-layer dependency analysis
// versus the manual FMEA baseline (E10).
//
// Usage:
//
//	crosslayer -scenario intrusion
//	crosslayer -scenario thermal
//	crosslayer -scenario platoon
//	crosslayer -scenario routing
//	crosslayer -scenario overhead
//	crosslayer -scenario deps
//	crosslayer -scenario mission
//	crosslayer -scenario all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	which := flag.String("scenario", "all", "intrusion, thermal, platoon, routing, overhead, deps, mission, all")
	flag.Parse()

	runners := map[string]func() error{
		"mission":   runMission,
		"intrusion": runIntrusion,
		"thermal":   runThermal,
		"platoon":   runPlatoon,
		"routing":   runRouting,
		"overhead":  runOverhead,
		"deps":      runDeps,
	}
	if *which == "all" {
		for _, name := range []string{"intrusion", "thermal", "platoon", "routing", "overhead", "deps", "mission"} {
			if err := runners[name](); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[*which]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *which)
		os.Exit(2)
	}
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func runMission() error {
	fmt.Println("E11: end-to-end mission (weather + intrusion, cross-layer vs naive)")
	rs, err := scenario.RunMissionComparison()
	if err != nil {
		return err
	}
	for _, r := range rs {
		for _, row := range r.Rows() {
			fmt.Println(row)
		}
		fmt.Println()
	}
	return nil
}

func runIntrusion() error {
	fmt.Println("E5: rear-brake intrusion response (single-layer vs cross-layer)")
	rs, err := scenario.RunIntrusionComparison()
	if err != nil {
		return err
	}
	for _, r := range rs {
		for _, row := range r.Rows() {
			fmt.Println(row)
		}
		fmt.Println()
	}
	return nil
}

func runThermal() error {
	fmt.Println("E6: thermal stress (none vs dvfs-only vs cross-layer)")
	rs, err := scenario.RunThermalComparison()
	if err != nil {
		return err
	}
	for _, r := range rs {
		for _, row := range r.Rows() {
			fmt.Println(row)
		}
		fmt.Println()
	}
	return nil
}

func runPlatoon() error {
	fmt.Println("E7: platoon agreement with byzantine members + fog membership")
	r, err := scenario.RunPlatoon(scenario.DefaultPlatoonConfig())
	if err != nil {
		return err
	}
	for _, row := range r.Rows() {
		fmt.Println(row)
	}
	return nil
}

func runRouting() error {
	fmt.Println("E8: weather-aware routing (alpine pass vs detour)")
	r, err := scenario.RunRouting(scenario.DefaultRoutingConfig())
	if err != nil {
		return err
	}
	for _, row := range r.Rows() {
		fmt.Println(row)
	}
	return nil
}

func runOverhead() error {
	fmt.Println("E9: run-time monitoring overhead")
	r, err := scenario.RunMonitorOverhead()
	if err != nil {
		return err
	}
	for _, row := range r.Rows() {
		fmt.Println(row)
	}
	return nil
}

func runDeps() error {
	fmt.Println("E10: cross-layer dependency analysis vs manual FMEA baseline")
	r, err := scenario.RunDependencyAnalysis()
	if err != nil {
		return err
	}
	for _, row := range r.Rows() {
		fmt.Println(row)
	}
	return nil
}
