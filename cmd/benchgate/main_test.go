package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rows(scansBig, checksBig, cpsSmall, cpsBig float64) benchFile {
	var bf benchFile
	for _, mode := range incrementalModes {
		bf.E13 = append(bf.E13,
			e13Point{Procs: 32, Mode: mode, ScansPerChange: 0.94, ChecksPerChange: 2.0, ChangesPerSec: cpsSmall},
			e13Point{Procs: 2048, Mode: mode, ScansPerChange: scansBig, ChecksPerChange: checksBig, ChangesPerSec: cpsBig},
		)
	}
	// A collapsing serial baseline must never trip the gate.
	bf.E13 = append(bf.E13,
		e13Point{Procs: 32, Mode: "serial", ScansPerChange: 32, ChecksPerChange: 128, ChangesPerSec: 1500},
		e13Point{Procs: 2048, Mode: "serial", ScansPerChange: 2048, ChecksPerChange: 7688, ChangesPerSec: 3},
	)
	return bf
}

func TestGatePassesOnCommittedShape(t *testing.T) {
	baseline := rows(0.94, 2.0, 16000, 350) // ~46x collapse, flat work
	current := rows(0.95, 2.1, 8000, 200)   // slower machine, 40x collapse
	if fails := gate(baseline, current, 2.0, 2.0); len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails)
	}
}

func TestGateFailsOnScanGrowth(t *testing.T) {
	baseline := rows(0.94, 2.0, 16000, 350)
	current := rows(4.0, 2.0, 16000, 350) // scans/change no longer flat
	fails := gate(baseline, current, 2.0, 2.0)
	if len(fails) == 0 || !strings.Contains(fails[0], "scans/change grew") {
		t.Fatalf("want scans-growth failure, got %v", fails)
	}
}

func TestGateFailsOnCollapseDegradation(t *testing.T) {
	baseline := rows(0.94, 2.0, 16000, 350) // ~46x committed collapse
	current := rows(0.94, 2.0, 16000, 120)  // ~133x > 2 * 46x
	fails := gate(baseline, current, 2.0, 2.0)
	if len(fails) == 0 || !strings.Contains(fails[0], "changes/s collapse") {
		t.Fatalf("want collapse failure, got %v", fails)
	}
}

func e15Rows() []e15Point {
	return []e15Point{
		{Spec: "none", ParityChecked: true, BlastRadiusOK: true},
		{Spec: "tenant-panic", ParityChecked: true, BlastRadiusOK: true},
		{Spec: "overload", ParityChecked: false, HealthyLost: 9, BlastRadiusOK: true},
	}
}

func TestGateE15PassesOnZeroBlastRadius(t *testing.T) {
	if fails := gateE15(e15Rows()); len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails)
	}
}

func TestGateE15FailsOnHealthyLoss(t *testing.T) {
	rows := e15Rows()
	rows[1].HealthyLost = 1
	rows[1].BlastRadiusOK = false
	fails := gateE15(rows)
	if len(fails) == 0 || !strings.Contains(fails[0], "blast radius not zero") {
		t.Fatalf("want blast-radius failure, got %v", fails)
	}
}

func TestGateE15FailsOnMismatch(t *testing.T) {
	rows := e15Rows()
	rows[0].HealthyMismatches = 2
	fails := gateE15(rows)
	if len(fails) == 0 || !strings.Contains(fails[0], "2 diverged") {
		t.Fatalf("want mismatch failure, got %v", fails)
	}
}

func TestGateE15FailsWithoutParityRows(t *testing.T) {
	fails := gateE15([]e15Point{{Spec: "overload", ParityChecked: false}})
	if len(fails) == 0 || !strings.Contains(fails[0], "no parity-checked rows") {
		t.Fatalf("want no-rows failure, got %v", fails)
	}
}

func TestDiscoverBaselinePicksNewestE13Sweep(t *testing.T) {
	dir := t.TempDir()
	write := func(name, payload string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(payload), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	e13 := `{"e13":[{"procs":32,"mode":"full-incremental","changes_per_sec":100}]}`
	write("BENCH_PR5.json", e13)
	write("BENCH_PR7.json", e13)
	// Higher-numbered points without a usable E13 sweep must not shadow
	// the newest sweep-carrying one.
	write("BENCH_PR9.json", `{"e15":[{"spec":"none"}]}`)
	write("BENCH_PR11.json", `{not json`)
	// Non-matching names are ignored outright.
	write("BENCH_PR8_notes.json", e13)
	write("BENCH.json", e13)

	got, err := discoverBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_PR7.json"); got != want {
		t.Fatalf("discovered %s, want %s", got, want)
	}

	// Double-digit numbering beats single-digit numerically, not
	// lexically.
	write("BENCH_PR10.json", e13)
	if got, err = discoverBaseline(dir); err != nil || got != filepath.Join(dir, "BENCH_PR10.json") {
		t.Fatalf("discovered %s (err %v), want BENCH_PR10.json", got, err)
	}
}

func TestDiscoverBaselineErrorsWithoutCandidates(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_PR3.json"), []byte(`{"e15":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := discoverBaseline(dir); err == nil {
		t.Fatalf("discovered %s from a dir without e13 sweeps", got)
	}
}

func TestGateFailsOnMissingBaselineTier(t *testing.T) {
	baseline := rows(0.94, 2.0, 16000, 350)
	// Baseline lacks the 1024p tier the current sweep measured.
	current := rows(0.94, 2.0, 16000, 350)
	for i := range current.E13 {
		if current.E13[i].Procs == 2048 {
			current.E13[i].Procs = 1024
		}
	}
	fails := gate(baseline, current, 2.0, 2.0)
	if len(fails) == 0 || !strings.Contains(fails[0], "baseline has no") {
		t.Fatalf("want missing-baseline failure, got %v", fails)
	}
}
