// Command benchgate is the CI flatness gate of the E13 scale tier: it
// compares a freshly measured E13 sweep (the CI smoke) against the
// committed BENCH_PR*.json trajectory point and fails when the
// incremental engines regress.
//
// Two properties are gated, both machine-independent:
//
//   - Admission-work flatness, absolute: scans-per-change and
//     checks-per-change of the incremental modes must stay flat from the
//     smallest to the largest platform of the sweep (bounded by
//     -max-growth, default 2x). These count stage-internal work — timing
//     analyses, safety/security verdict checks — and are the paper's
//     O(diff) claim in its directly measurable form.
//
//   - Throughput-collapse ratio, relative to the committed baseline: the
//     changes/s ratio between the smallest and largest platform may not
//     exceed the committed ratio by more than -max-degrade (default 2x).
//     The ratio within one run cancels the speed of the machine, so the
//     gate holds on any CI runner; absolute changes/s comparisons across
//     machines would not. Under the delta-report contract an accepted
//     proposal materializes only its change footprint (Report.TimingDelta
//     and MonitorDelta; whole tables are copy-on-read views of the
//     committed state), so the committed collapse ratio is close to flat
//     and the gate keeps it there. See README "admission cost model".
//
// With -e15 the command additionally (or instead, when -current is
// omitted) gates the E15 availability tier: every parity-checked fault
// row must report a zero blast radius — no decision lost and no decision
// diverging from the standalone oracle on any healthy vehicle while one
// tenant is faulted. This is absolute, not baseline-relative: a single
// lost healthy decision is a bulkhead regression.
//
// With -e16 the command additionally (or instead) gates the E16
// shard-scaling tier: at every swept platform size the sharded stream
// scheduler must have actually formed more than one shard, exercised the
// cross-partition global-window drain, and stayed at or above the single
// window sequence's throughput within -e16-min-ratio. The ratio is
// within one run on one machine, so it is machine-independent like the
// collapse gate above.
//
// Without -baseline the gate compares against the newest committed
// trajectory point: the highest-numbered BENCH_PR<N>.json in the working
// directory that carries an E13 sweep.
//
// Usage: benchgate -current smoke.json [-baseline BENCH_PR9.json] [-e15 e15.json] [-e16 e16.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

// e13Point is the subset of the canbench e13 row the gate consumes.
type e13Point struct {
	Procs           int     `json:"procs"`
	Mode            string  `json:"mode"`
	ScansPerChange  float64 `json:"scans_per_change"`
	ChecksPerChange float64 `json:"checks_per_change"`
	ChangesPerSec   float64 `json:"changes_per_sec"`
}

// e16Point is the subset of the canbench e16 row the gate consumes.
type e16Point struct {
	Procs         int     `json:"procs"`
	Mode          string  `json:"mode"`
	Shards        int     `json:"shards"`
	GlobalWindows int     `json:"global_windows"`
	ChangesPerSec float64 `json:"changes_per_sec"`
}

// e15Point is the subset of the canbench e15 row the gate consumes.
type e15Point struct {
	Spec              string `json:"spec"`
	ParityChecked     bool   `json:"parity_checked"`
	HealthyLost       int    `json:"healthy_lost"`
	HealthyMismatches int    `json:"healthy_mismatches"`
	BlastRadiusOK     bool   `json:"blast_radius_ok"`
}

type benchFile struct {
	E13 []e13Point `json:"e13"`
	E15 []e15Point `json:"e15"`
	E16 []e16Point `json:"e16"`
}

// incrementalModes are the engines whose flatness the gate enforces; the
// serial baseline is expected to collapse with platform size.
var incrementalModes = []string{"full-incremental", "stream-parallel"}

func load(path string) (benchFile, error) {
	var bf benchFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return bf, err
	}
	if err := json.Unmarshal(raw, &bf); err != nil {
		return bf, fmt.Errorf("%s: %w", path, err)
	}
	if len(bf.E13) == 0 {
		return bf, fmt.Errorf("%s: no e13 rows", path)
	}
	return bf, nil
}

// discoverBaseline picks the default committed trajectory point: the
// highest-numbered BENCH_PR<N>.json in dir whose payload carries an E13
// sweep. Files that fail to parse or lack E13 rows are skipped, so a
// committed point that only recorded another tier never shadows the
// newest usable sweep. An explicit -baseline always wins over discovery.
func discoverBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_PR%d.json", &n); err != nil || fmt.Sprintf("BENCH_PR%d.json", n) != e.Name() {
			continue
		}
		if n <= bestN {
			continue
		}
		path := filepath.Join(dir, e.Name())
		if _, err := load(path); err != nil {
			continue
		}
		best, bestN = path, n
	}
	if best == "" {
		return "", fmt.Errorf("%s: no BENCH_PR*.json with an e13 sweep", dir)
	}
	return best, nil
}

func point(rows []e13Point, procs int, mode string) (e13Point, bool) {
	for _, r := range rows {
		if r.Procs == procs && r.Mode == mode {
			return r, true
		}
	}
	return e13Point{}, false
}

// span returns the smallest and largest platform size present for mode.
func span(rows []e13Point, mode string) (lo, hi int, ok bool) {
	for _, r := range rows {
		if r.Mode != mode {
			continue
		}
		if !ok {
			lo, hi, ok = r.Procs, r.Procs, true
			continue
		}
		if r.Procs < lo {
			lo = r.Procs
		}
		if r.Procs > hi {
			hi = r.Procs
		}
	}
	return lo, hi, ok
}

// gate applies both checks and returns the human-readable failures.
func gate(baseline, current benchFile, maxGrowth, maxDegrade float64) []string {
	var fails []string
	for _, mode := range incrementalModes {
		lo, hi, ok := span(current.E13, mode)
		if !ok || lo == hi {
			fails = append(fails, fmt.Sprintf("%s: current sweep needs at least two platform sizes", mode))
			continue
		}
		small, ok1 := point(current.E13, lo, mode)
		big, ok2 := point(current.E13, hi, mode)
		if !ok1 || !ok2 {
			fails = append(fails, fmt.Sprintf("%s: missing sweep endpoints", mode))
			continue
		}

		if small.ScansPerChange > 0 {
			if g := big.ScansPerChange / small.ScansPerChange; g > maxGrowth {
				fails = append(fails, fmt.Sprintf(
					"%s: scans/change grew %.2fx from %dp to %dp (%.2f -> %.2f, max %.1fx)",
					mode, g, lo, hi, small.ScansPerChange, big.ScansPerChange, maxGrowth))
			}
		}
		if small.ChecksPerChange > 0 {
			if g := big.ChecksPerChange / small.ChecksPerChange; g > maxGrowth {
				fails = append(fails, fmt.Sprintf(
					"%s: checks/change grew %.2fx from %dp to %dp (%.2f -> %.2f, max %.1fx)",
					mode, g, lo, hi, small.ChecksPerChange, big.ChecksPerChange, maxGrowth))
			}
		}

		baseSmall, ok1 := point(baseline.E13, lo, mode)
		baseBig, ok2 := point(baseline.E13, hi, mode)
		if !ok1 || !ok2 {
			fails = append(fails, fmt.Sprintf(
				"%s: baseline has no %dp/%dp rows to compare against", mode, lo, hi))
			continue
		}
		if big.ChangesPerSec <= 0 || baseBig.ChangesPerSec <= 0 {
			fails = append(fails, fmt.Sprintf("%s: non-positive changes/s", mode))
			continue
		}
		baseRatio := baseSmall.ChangesPerSec / baseBig.ChangesPerSec
		curRatio := small.ChangesPerSec / big.ChangesPerSec
		fmt.Printf("%-17s %dp->%dp collapse: current %.1fx, committed %.1fx (budget %.1fx)\n",
			mode, lo, hi, curRatio, baseRatio, baseRatio*maxDegrade)
		if curRatio > baseRatio*maxDegrade {
			fails = append(fails, fmt.Sprintf(
				"%s: changes/s collapse %dp->%dp is %.1fx, committed trajectory is %.1fx (max degradation %.1fx)",
				mode, lo, hi, curRatio, baseRatio, maxDegrade))
		}
	}
	return fails
}

// gateE15 enforces the blast-radius property on every parity-checked
// fault row. Rows with ParityChecked=false (the overload column, whose
// healthy vehicles shed by design) are exempt.
func gateE15(rows []e15Point) []string {
	var fails []string
	checked := 0
	for _, r := range rows {
		if !r.ParityChecked {
			continue
		}
		checked++
		if r.HealthyLost != 0 || r.HealthyMismatches != 0 || !r.BlastRadiusOK {
			fails = append(fails, fmt.Sprintf(
				"e15 %s: blast radius not zero: %d healthy decision(s) lost, %d diverged from the oracle",
				r.Spec, r.HealthyLost, r.HealthyMismatches))
		}
	}
	if checked == 0 {
		fails = append(fails, "e15: no parity-checked rows to gate")
	}
	return fails
}

// gateE16 enforces the shard-scaling property on the E16 sweep: at every
// swept platform size the sharded scheduler must actually shard (more
// than one partition, and global windows exercised by the change mix's
// removals — a zero there means the drain path silently stopped being
// measured) and must not fall below the single window sequence's
// throughput beyond minRatio. The ratio is within one run on one
// machine, so the gate holds on any CI runner; minRatio below 1.0
// absorbs wall-clock jitter on small shared runners, where the two
// schedulers measure at parity once per-shard occupancy drops (the
// sharded win there is epoch batching; prefetch overlap needs cores).
func gateE16(rows []e16Point, minRatio float64) []string {
	var fails []string
	sizes := 0
	for _, r := range rows {
		if r.Mode != "sharded" {
			continue
		}
		sizes++
		base, ok := e16At(rows, r.Procs, "stream-parallel")
		if !ok {
			fails = append(fails, fmt.Sprintf("e16 %dp: no stream-parallel row to compare against", r.Procs))
			continue
		}
		if r.Shards <= 1 {
			fails = append(fails, fmt.Sprintf("e16 %dp: sharded run formed %d shard(s) — partition fell back to the single sequence", r.Procs, r.Shards))
		}
		if r.GlobalWindows == 0 {
			fails = append(fails, fmt.Sprintf("e16 %dp: sharded run decided no global windows — the cross-partition drain path went unmeasured", r.Procs))
		}
		if base.ChangesPerSec <= 0 || r.ChangesPerSec <= 0 {
			fails = append(fails, fmt.Sprintf("e16 %dp: non-positive changes/s", r.Procs))
			continue
		}
		ratio := r.ChangesPerSec / base.ChangesPerSec
		fmt.Printf("e16 %5dp sharded/stream-parallel throughput: %.2fx (floor %.2fx, %d shards, %d global windows)\n",
			r.Procs, ratio, minRatio, r.Shards, r.GlobalWindows)
		if ratio < minRatio {
			fails = append(fails, fmt.Sprintf(
				"e16 %dp: sharded throughput is %.2fx of stream-parallel (floor %.2fx)",
				r.Procs, ratio, minRatio))
		}
	}
	if sizes == 0 {
		fails = append(fails, "e16: no sharded rows to gate")
	}
	return fails
}

func e16At(rows []e16Point, procs int, mode string) (e16Point, bool) {
	for _, r := range rows {
		if r.Procs == procs && r.Mode == mode {
			return r, true
		}
	}
	return e16Point{}, false
}

func main() {
	baselinePath := flag.String("baseline", "", "committed E13 trajectory point (default: newest BENCH_PR*.json carrying an e13 sweep)")
	currentPath := flag.String("current", "", "freshly measured E13 sweep (canbench -experiment e13 -json)")
	e15Path := flag.String("e15", "", "freshly measured E15 availability tier (canbench -experiment e15 -json); gated for a zero blast radius")
	e16Path := flag.String("e16", "", "freshly measured E16 shard-scaling tier (canbench -experiment e16 -json); gated for engaged sharding and the throughput floor")
	maxGrowth := flag.Float64("max-growth", 2.0, "max small->large growth of scans/change and checks/change")
	maxDegrade := flag.Float64("max-degrade", 2.0, "max worsening of the changes/s collapse ratio vs the baseline")
	e16MinRatio := flag.Float64("e16-min-ratio", 0.8, "min sharded/stream-parallel changes/s ratio at every E16 size (below 1.0 to absorb single-core wall-clock jitter)")
	flag.Parse()
	if *currentPath == "" && *e15Path == "" && *e16Path == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current, -e15, or -e16 is required")
		os.Exit(2)
	}
	var fails []string
	gated := ""
	if *currentPath != "" {
		if *baselinePath == "" {
			found, err := discoverBaseline(".")
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchgate:", err)
				os.Exit(2)
			}
			*baselinePath = found
			fmt.Printf("benchgate: baseline %s (auto-discovered)\n", found)
		}
		baseline, err := load(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		current, err := load(*currentPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fails = append(fails, gate(baseline, current, *maxGrowth, *maxDegrade)...)
		gated = "E13 flatness"
	}
	if *e15Path != "" {
		raw, err := os.ReadFile(*e15Path)
		var bf benchFile
		if err == nil {
			err = json.Unmarshal(raw, &bf)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fails = append(fails, gateE15(bf.E15)...)
		if gated != "" {
			gated += " + "
		}
		gated += "E15 blast-radius"
	}
	if *e16Path != "" {
		raw, err := os.ReadFile(*e16Path)
		var bf benchFile
		if err == nil {
			err = json.Unmarshal(raw, &bf)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fails = append(fails, gateE16(bf.E16, *e16MinRatio)...)
		if gated != "" {
			gated += " + "
		}
		gated += "E16 shard-scaling"
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %s gate passed\n", gated)
}
