package model

import (
	"reflect"
	"testing"
)

func TestFunctionEqual(t *testing.T) {
	base := Function{
		Name:     "f",
		Version:  2,
		Provides: []string{"a"},
		Requires: []string{"b"},
		Replicas: 2,
		Contract: Contract{
			Safety:          ASILB,
			RealTime:        RealTimeContract{PeriodUS: 1000, WCETUS: 100, JitterUS: 10, DeadlineUS: 900},
			Resources:       ResourceContract{RAMKiB: 64, CPUShare: 0.5, NetBytesPerSec: 100},
			Domain:          "drive",
			AllowedPeers:    []string{"a"},
			FailOperational: true,
		},
	}
	if !base.Equal(base) {
		t.Fatal("function not equal to itself")
	}
	// nil and empty slices are the same contract.
	empty := base
	empty.Provides = []string{}
	base2 := base
	base2.Provides = nil
	if !empty.Equal(base2) {
		t.Fatal("nil vs empty slice reported unequal")
	}

	mutations := []func(*Function){
		func(f *Function) { f.Name = "g" },
		func(f *Function) { f.Version++ },
		func(f *Function) { f.Provides = []string{"a", "x"} },
		func(f *Function) { f.Requires = []string{"x"} },
		func(f *Function) { f.Replicas = 3 },
		func(f *Function) { f.Contract.Safety = ASILD },
		func(f *Function) { f.Contract.RealTime.WCETUS++ },
		func(f *Function) { f.Contract.RealTime.PeriodUS++ },
		func(f *Function) { f.Contract.Resources.RAMKiB++ },
		func(f *Function) { f.Contract.Resources.CPUShare = 0.7 },
		func(f *Function) { f.Contract.Domain = "infotainment" },
		func(f *Function) { f.Contract.AllowedPeers = nil },
		func(f *Function) { f.Contract.FailOperational = false },
	}
	for i, mutate := range mutations {
		m := base
		// Value copy shares slice backing arrays; re-slice before mutating.
		m.Provides = append([]string(nil), base.Provides...)
		m.Requires = append([]string(nil), base.Requires...)
		m.Contract.AllowedPeers = append([]string(nil), base.Contract.AllowedPeers...)
		mutate(&m)
		if base.Equal(m) {
			t.Fatalf("mutation %d not detected by Equal", i)
		}
	}
}

// TestFunctionEqualCoversAllFields is the drift alarm for Function.Equal:
// it enumerates the fields of Function and Contract by reflection and
// fails when a field exists that the hand-written comparison was not
// updated for. Adding a field? Extend Equal, then extend these lists.
func TestFunctionEqualCoversAllFields(t *testing.T) {
	check := func(typ reflect.Type, covered []string) {
		t.Helper()
		want := make(map[string]bool, len(covered))
		for _, f := range covered {
			want[f] = true
		}
		for i := 0; i < typ.NumField(); i++ {
			name := typ.Field(i).Name
			if !want[name] {
				t.Errorf("%s.%s is not covered by Function.Equal — update the comparison and this list", typ.Name(), name)
			}
			delete(want, name)
		}
		for name := range want {
			t.Errorf("%s.%s listed as covered but no longer exists", typ.Name(), name)
		}
	}
	check(reflect.TypeOf(Function{}), []string{
		"Name", "Version", "Provides", "Requires", "Contract", "Replicas",
	})
	check(reflect.TypeOf(Contract{}), []string{
		"Safety", "RealTime", "Resources", "Domain", "AllowedPeers", "FailOperational",
	})
}
