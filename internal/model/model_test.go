package model

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func validArch() *FunctionalArchitecture {
	return &FunctionalArchitecture{
		Functions: []Function{
			{
				Name:     "radar",
				Provides: []string{"objects"},
				Contract: Contract{
					Safety:   ASILB,
					RealTime: RealTimeContract{PeriodUS: 20000, WCETUS: 2000},
				},
			},
			{
				Name:     "acc",
				Requires: []string{"objects"},
				Provides: []string{"accel_cmd"},
				Contract: Contract{
					Safety:   ASILC,
					RealTime: RealTimeContract{PeriodUS: 10000, WCETUS: 1500},
				},
			},
			{
				Name:     "brake",
				Requires: []string{"accel_cmd"},
				Contract: Contract{
					Safety:          ASILD,
					RealTime:        RealTimeContract{PeriodUS: 5000, WCETUS: 500},
					FailOperational: true,
				},
				Replicas: 2,
			},
		},
		Flows: []Flow{
			{From: "radar", To: "acc", Service: "objects", MsgBytes: 64, PeriodUS: 20000},
			{From: "acc", To: "brake", Service: "accel_cmd", MsgBytes: 8, PeriodUS: 10000},
		},
	}
}

func validPlatform() *Platform {
	return &Platform{
		Processors: []Processor{
			{Name: "ecu1", Policy: SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: ASILD},
			{Name: "ecu2", Policy: SPP, SpeedFactor: 0.5, RAMKiB: 2048, MaxSafety: ASILB},
		},
		Networks: []Network{
			{Name: "can0", BitsPerSec: 500000, Attached: []string{"ecu1", "ecu2"}, Kind: "can"},
		},
	}
}

func TestParseSafetyLevel(t *testing.T) {
	cases := map[string]SafetyLevel{
		"QM": QM, "qm": QM,
		"ASIL-A": ASILA, "ASILA": ASILA, "a": ASILA,
		"ASIL-B": ASILB, "ASIL-C": ASILC,
		"asil-d": ASILD, "D": ASILD,
	}
	for in, want := range cases {
		got, err := ParseSafetyLevel(in)
		if err != nil {
			t.Fatalf("ParseSafetyLevel(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseSafetyLevel(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseSafetyLevel("ASIL-E"); err == nil {
		t.Fatal("expected error for ASIL-E")
	}
}

func TestSafetyLevelJSONRoundTrip(t *testing.T) {
	for l := QM; l <= ASILD; l++ {
		b, err := json.Marshal(l)
		if err != nil {
			t.Fatal(err)
		}
		var back SafetyLevel
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != l {
			t.Fatalf("round trip %v -> %s -> %v", l, b, back)
		}
	}
	var fromInt SafetyLevel
	if err := json.Unmarshal([]byte("3"), &fromInt); err != nil || fromInt != ASILC {
		t.Fatalf("int decode: %v %v", fromInt, err)
	}
	if err := json.Unmarshal([]byte("9"), &fromInt); err == nil {
		t.Fatal("expected range error for 9")
	}
}

func TestSafetyLevelOrdering(t *testing.T) {
	if !(QM < ASILA && ASILA < ASILB && ASILB < ASILC && ASILC < ASILD) {
		t.Fatal("safety level ordering broken")
	}
	if ASILD.String() != "ASIL-D" || QM.String() != "QM" {
		t.Fatalf("names: %s %s", ASILD, QM)
	}
}

func TestRealTimeContractValidate(t *testing.T) {
	ok := RealTimeContract{PeriodUS: 1000, WCETUS: 100}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.EffectiveDeadlineUS() != 1000 {
		t.Fatalf("implicit deadline = %d", ok.EffectiveDeadlineUS())
	}
	bad := RealTimeContract{PeriodUS: 1000, WCETUS: 2000}
	if err := bad.Validate(); err == nil {
		t.Fatal("WCET > deadline accepted")
	}
	noWCET := RealTimeContract{PeriodUS: 1000}
	if err := noWCET.Validate(); err == nil {
		t.Fatal("periodic without WCET accepted")
	}
	neg := RealTimeContract{PeriodUS: -1}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative period accepted")
	}
}

func TestResourceContractValidate(t *testing.T) {
	if err := (ResourceContract{RAMKiB: 100, CPUShare: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (ResourceContract{CPUShare: 1.5}).Validate(); err == nil {
		t.Fatal("CPU share > 1 accepted")
	}
	if err := (ResourceContract{RAMKiB: -1}).Validate(); err == nil {
		t.Fatal("negative RAM accepted")
	}
}

func TestContractMergeStricter(t *testing.T) {
	a := Contract{
		Safety:    ASILB,
		RealTime:  RealTimeContract{PeriodUS: 10000, WCETUS: 1000},
		Resources: ResourceContract{RAMKiB: 512},
	}
	b := Contract{
		Safety:          ASILD,
		RealTime:        RealTimeContract{PeriodUS: 5000, WCETUS: 800},
		Resources:       ResourceContract{RAMKiB: 256, CPUShare: 0.3},
		FailOperational: true,
	}
	m := a.MergeStricter(b)
	if m.Safety != ASILD {
		t.Fatalf("merged safety = %v", m.Safety)
	}
	if m.RealTime.PeriodUS != 5000 {
		t.Fatalf("merged period = %d, want stricter 5000", m.RealTime.PeriodUS)
	}
	if m.Resources.RAMKiB != 512 {
		t.Fatalf("merged RAM = %d, want max 512", m.Resources.RAMKiB)
	}
	if m.Resources.CPUShare != 0.3 {
		t.Fatalf("merged CPU share = %v", m.Resources.CPUShare)
	}
	if !m.FailOperational {
		t.Fatal("merged lost fail-operational")
	}
}

// Property: MergeStricter is idempotent and commutative on safety level.
func TestPropMergeStricterSafety(t *testing.T) {
	f := func(x, y uint8) bool {
		a := Contract{Safety: SafetyLevel(x % 5)}
		b := Contract{Safety: SafetyLevel(y % 5)}
		ab := a.MergeStricter(b)
		ba := b.MergeStricter(a)
		if ab.Safety != ba.Safety {
			return false
		}
		return ab.MergeStricter(b).Safety == ab.Safety
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionalArchitectureValidate(t *testing.T) {
	a := validArch()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDuplicateFunction(t *testing.T) {
	a := validArch()
	a.Functions = append(a.Functions, Function{Name: "radar"})
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateUnprovidedService(t *testing.T) {
	a := validArch()
	a.Functions[1].Requires = append(a.Functions[1].Requires, "lidar_points")
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "unprovided") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateFlowEndpoints(t *testing.T) {
	a := validArch()
	a.Flows = append(a.Flows, Flow{From: "ghost", To: "acc", Service: "objects"})
	if err := a.Validate(); err == nil {
		t.Fatal("flow from unknown function accepted")
	}
	a = validArch()
	a.Flows = append(a.Flows, Flow{From: "acc", To: "brake", Service: "objects"})
	if err := a.Validate(); err == nil {
		t.Fatal("flow with unprovided service accepted")
	}
}

func TestProviders(t *testing.T) {
	a := validArch()
	p := a.Providers("objects")
	if len(p) != 1 || p[0] != "radar" {
		t.Fatalf("Providers = %v", p)
	}
	if len(a.Providers("nonexistent")) != 0 {
		t.Fatal("Providers of unknown service non-empty")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := validArch()
	c := a.Clone()
	c.Functions[0].Name = "mutated"
	c.Functions[0].Provides[0] = "mutated"
	c.Flows[0].From = "mutated"
	if a.Functions[0].Name != "radar" || a.Functions[0].Provides[0] != "objects" || a.Flows[0].From != "radar" {
		t.Fatal("Clone shares memory with original")
	}
}

func TestWithFunctionReplacesOrAppends(t *testing.T) {
	a := validArch()
	upd := a.Functions[1]
	upd.Version = 2
	b := a.WithFunction(upd)
	if got := b.FunctionByName("acc").Version; got != 2 {
		t.Fatalf("replace failed, version = %d", got)
	}
	if a.FunctionByName("acc").Version != 0 {
		t.Fatal("WithFunction mutated original")
	}
	c := a.WithFunction(Function{Name: "lane_keep", Contract: Contract{}})
	if c.FunctionByName("lane_keep") == nil {
		t.Fatal("append failed")
	}
	if len(c.Functions) != len(a.Functions)+1 {
		t.Fatal("append count wrong")
	}
}

func TestWithoutFunction(t *testing.T) {
	a := validArch()
	b := a.WithoutFunction("radar")
	if b.FunctionByName("radar") != nil {
		t.Fatal("function not removed")
	}
	for _, fl := range b.Flows {
		if fl.From == "radar" || fl.To == "radar" {
			t.Fatal("flow touching removed function kept")
		}
	}
	if a.FunctionByName("radar") == nil {
		t.Fatal("WithoutFunction mutated original")
	}
}

func TestPlatformValidate(t *testing.T) {
	p := validPlatform()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := validPlatform()
	bad.Processors[0].SpeedFactor = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero speed factor accepted")
	}
	bad = validPlatform()
	bad.Networks[0].Attached = append(bad.Networks[0].Attached, "ghost")
	if err := bad.Validate(); err == nil {
		t.Fatal("network attaching unknown processor accepted")
	}
	bad = validPlatform()
	bad.Processors[0].Policy = "edf"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPlatformConnecting(t *testing.T) {
	p := validPlatform()
	if n := p.Connecting("ecu1", "ecu2"); n == nil || n.Name != "can0" {
		t.Fatalf("Connecting = %v", n)
	}
	if p.Connecting("ecu1", "ghost") != nil {
		t.Fatal("Connecting to unknown processor non-nil")
	}
}

func TestTechnicalArchitectureValidate(t *testing.T) {
	ta := &TechnicalArchitecture{
		Platform: validPlatform(),
		Func:     validArch(),
		Instances: []Instance{
			{Function: "radar", Replica: 0, Processor: "ecu2"},
			{Function: "acc", Replica: 0, Processor: "ecu1"},
			{Function: "brake", Replica: 0, Processor: "ecu1"},
			{Function: "brake", Replica: 1, Processor: "ecu2"},
		},
	}
	if err := ta.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := ta.InstancesOn("ecu1"); len(got) != 2 {
		t.Fatalf("InstancesOn(ecu1) = %v", got)
	}
	if got := ta.InstancesOf("brake"); len(got) != 2 || got[0].Replica != 0 {
		t.Fatalf("InstancesOf(brake) = %v", got)
	}

	// Missing a brake replica must fail.
	ta.Instances = ta.Instances[:3]
	if err := ta.Validate(); err == nil {
		t.Fatal("missing replica accepted")
	}
}

func TestImplementationModelValidate(t *testing.T) {
	ta := &TechnicalArchitecture{
		Platform: validPlatform(),
		Func:     validArch(),
		Instances: []Instance{
			{Function: "radar", Replica: 0, Processor: "ecu2"},
			{Function: "acc", Replica: 0, Processor: "ecu1"},
			{Function: "brake", Replica: 0, Processor: "ecu1"},
			{Function: "brake", Replica: 1, Processor: "ecu2"},
		},
	}
	im := &ImplementationModel{
		Tech: ta,
		Tasks: []Task{
			{Name: "brake#0", Processor: "ecu1", Priority: 1, PeriodUS: 5000, WCETUS: 500, DeadlineUS: 5000},
			{Name: "acc#0", Processor: "ecu1", Priority: 2, PeriodUS: 10000, WCETUS: 1500, DeadlineUS: 10000},
		},
		Messages: []Message{
			{Name: "objects", Network: "can0", Priority: 10, Bytes: 8, PeriodUS: 20000},
		},
		Connections: []Connection{
			{Client: "acc#0", Server: "radar#0", Service: "objects"},
		},
	}
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}

	dup := *im
	dup.Tasks = append(dup.Tasks, Task{Name: "x", Processor: "ecu1", Priority: 1, PeriodUS: 100, WCETUS: 10})
	if err := dup.Validate(); err == nil || !strings.Contains(err.Error(), "share priority") {
		t.Fatalf("duplicate priority accepted: %v", err)
	}
}

func TestTasksOnSortedByPriority(t *testing.T) {
	im := &ImplementationModel{
		Tasks: []Task{
			{Name: "c", Processor: "p", Priority: 3},
			{Name: "a", Processor: "p", Priority: 1},
			{Name: "b", Processor: "p", Priority: 2},
			{Name: "other", Processor: "q", Priority: 1},
		},
	}
	got := im.TasksOn("p")
	if len(got) != 3 || got[0].Name != "a" || got[2].Name != "c" {
		t.Fatalf("TasksOn = %v", got)
	}
}

func TestMessagesOnSorted(t *testing.T) {
	im := &ImplementationModel{
		Messages: []Message{
			{Name: "m2", Network: "n", Priority: 2},
			{Name: "m1", Network: "n", Priority: 1},
		},
	}
	got := im.MessagesOn("n")
	if len(got) != 2 || got[0].Name != "m1" {
		t.Fatalf("MessagesOn = %v", got)
	}
}

func TestSystemModelJSONRoundTrip(t *testing.T) {
	sm := &SystemModel{Platform: validPlatform(), Functional: validArch()}
	if err := sm.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(sm, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back SystemModel
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(back.Functional.Functions) != 3 || back.Functional.Functions[2].Contract.Safety != ASILD {
		t.Fatalf("round trip lost data: %+v", back.Functional)
	}
}

func TestInstanceID(t *testing.T) {
	in := Instance{Function: "acc", Replica: 1}
	if in.ID() != "acc#1" {
		t.Fatalf("ID = %q", in.ID())
	}
}
