// Package model defines the system models used by the CCC model domain:
// the contracting language (per-component requirements and guarantees over
// several viewpoints), the platform-independent functional architecture,
// the platform model, and the mapped technical/implementation architecture
// that the Multi-Change Controller (MCC) refines during integration.
//
// The shapes follow Section II.A of the paper: "The requirements for these
// viewpoints – e.g. a safety-level requirement or a real-time constraint –
// are collected for each component in a so-called contracting language,
// which serves as an input to the MCC."
package model

import (
	"encoding/json"
	"fmt"
	"strings"
)

// SafetyLevel is an automotive safety integrity level (ISO 26262 ASIL).
type SafetyLevel int

// Safety integrity levels in increasing criticality.
const (
	QM SafetyLevel = iota // quality managed, no safety requirement
	ASILA
	ASILB
	ASILC
	ASILD
)

var safetyNames = [...]string{"QM", "ASIL-A", "ASIL-B", "ASIL-C", "ASIL-D"}

func (l SafetyLevel) String() string {
	if l < QM || int(l) >= len(safetyNames) {
		return fmt.Sprintf("SafetyLevel(%d)", int(l))
	}
	return safetyNames[l]
}

// MarshalJSON encodes the level as its symbolic name.
func (l SafetyLevel) MarshalJSON() ([]byte, error) {
	return json.Marshal(l.String())
}

// UnmarshalJSON accepts either the symbolic name or an integer.
func (l *SafetyLevel) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := ParseSafetyLevel(s)
		if err != nil {
			return err
		}
		*l = v
		return nil
	}
	var n int
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("model: invalid safety level %s", string(b))
	}
	if n < int(QM) || n > int(ASILD) {
		return fmt.Errorf("model: safety level %d out of range", n)
	}
	*l = SafetyLevel(n)
	return nil
}

// ParseSafetyLevel parses "QM", "ASIL-A" ... "ASIL-D" (case-insensitive,
// the dash is optional).
func ParseSafetyLevel(s string) (SafetyLevel, error) {
	norm := strings.ToUpper(strings.ReplaceAll(strings.TrimSpace(s), "-", ""))
	switch norm {
	case "QM":
		return QM, nil
	case "ASILA", "A":
		return ASILA, nil
	case "ASILB", "B":
		return ASILB, nil
	case "ASILC", "C":
		return ASILC, nil
	case "ASILD", "D":
		return ASILD, nil
	}
	return QM, fmt.Errorf("model: unknown safety level %q", s)
}

// SecurityDomain labels a confidentiality/integrity compartment. Components
// may only communicate within a domain unless an explicit cross-domain
// permission exists (checked by the security viewpoint analysis).
type SecurityDomain string

// RealTimeContract captures the timing requirements of a component's main
// task in the terms used by compositional performance analysis: a periodic
// activation with jitter, a worst-case execution time demand, and a deadline.
type RealTimeContract struct {
	// PeriodUS is the activation period in microseconds. 0 means the
	// component is not time-triggered (event-driven only).
	PeriodUS int64 `json:"period_us"`
	// JitterUS is the maximum activation jitter in microseconds.
	JitterUS int64 `json:"jitter_us,omitempty"`
	// WCETUS is the worst-case execution time demand per activation in
	// microseconds, on the reference platform speed (speed factor 1.0).
	WCETUS int64 `json:"wcet_us"`
	// DeadlineUS is the relative deadline in microseconds; 0 means
	// deadline = period (implicit deadline).
	DeadlineUS int64 `json:"deadline_us,omitempty"`
}

// HasTiming reports whether the contract carries any real-time requirement.
func (c RealTimeContract) HasTiming() bool { return c.PeriodUS > 0 }

// EffectiveDeadlineUS returns the relative deadline, defaulting to the period.
func (c RealTimeContract) EffectiveDeadlineUS() int64 {
	if c.DeadlineUS > 0 {
		return c.DeadlineUS
	}
	return c.PeriodUS
}

// Validate checks internal consistency of the timing contract.
func (c RealTimeContract) Validate() error {
	if c.PeriodUS < 0 || c.JitterUS < 0 || c.WCETUS < 0 || c.DeadlineUS < 0 {
		return fmt.Errorf("model: negative field in real-time contract %+v", c)
	}
	if c.PeriodUS > 0 {
		if c.WCETUS == 0 {
			return fmt.Errorf("model: periodic contract without WCET")
		}
		if c.WCETUS > c.EffectiveDeadlineUS() {
			return fmt.Errorf("model: WCET %dus exceeds deadline %dus", c.WCETUS, c.EffectiveDeadlineUS())
		}
	}
	return nil
}

// ResourceContract captures platform resource budgets a component needs.
type ResourceContract struct {
	// RAMKiB is the memory budget in KiB.
	RAMKiB int64 `json:"ram_kib"`
	// CPUShare is the guaranteed utilization share in [0,1] on the mapped
	// processor; derived from timing if zero.
	CPUShare float64 `json:"cpu_share,omitempty"`
	// NetBytesPerSec is the bandwidth demand on the mapped network.
	NetBytesPerSec int64 `json:"net_bytes_per_sec,omitempty"`
}

// Validate checks bounds on the resource contract.
func (c ResourceContract) Validate() error {
	if c.RAMKiB < 0 || c.NetBytesPerSec < 0 {
		return fmt.Errorf("model: negative resource budget %+v", c)
	}
	if c.CPUShare < 0 || c.CPUShare > 1 {
		return fmt.Errorf("model: CPU share %v out of [0,1]", c.CPUShare)
	}
	return nil
}

// Contract is the per-component requirement record of the contracting
// language. It aggregates the viewpoint-specific requirements the MCC
// checks during integration.
type Contract struct {
	// Safety is the integrity level the component must be integrated at.
	Safety SafetyLevel `json:"safety"`
	// RealTime carries the timing requirement of the component's task.
	RealTime RealTimeContract `json:"real_time"`
	// Resources carries memory/CPU/network budgets.
	Resources ResourceContract `json:"resources"`
	// Domain is the security domain the component belongs to.
	Domain SecurityDomain `json:"domain,omitempty"`
	// AllowedPeers lists services (by name) this component may talk to
	// across domain boundaries; within its own domain no entry is needed.
	AllowedPeers []string `json:"allowed_peers,omitempty"`
	// FailOperational marks components whose service must survive a single
	// fault (drives the redundancy check in the safety viewpoint).
	FailOperational bool `json:"fail_operational,omitempty"`
}

// Validate checks the contract's internal consistency.
func (c Contract) Validate() error {
	if c.Safety < QM || c.Safety > ASILD {
		return fmt.Errorf("model: safety level %d out of range", c.Safety)
	}
	if err := c.RealTime.Validate(); err != nil {
		return err
	}
	if err := c.Resources.Validate(); err != nil {
		return err
	}
	return nil
}

// MergeStricter returns a contract combining c with o, taking the stricter
// requirement field-by-field. Used when an update evolves a contract: the
// MCC accepts the evolved contract only if the system still passes all
// acceptance tests under the merged (stricter) view.
func (c Contract) MergeStricter(o Contract) Contract {
	out := c
	if o.Safety > out.Safety {
		out.Safety = o.Safety
	}
	if o.RealTime.HasTiming() {
		if !out.RealTime.HasTiming() || o.RealTime.EffectiveDeadlineUS() < out.RealTime.EffectiveDeadlineUS() {
			out.RealTime = o.RealTime
		}
	}
	if o.Resources.RAMKiB > out.Resources.RAMKiB {
		out.Resources.RAMKiB = o.Resources.RAMKiB
	}
	if o.Resources.CPUShare > out.Resources.CPUShare {
		out.Resources.CPUShare = o.Resources.CPUShare
	}
	if o.Resources.NetBytesPerSec > out.Resources.NetBytesPerSec {
		out.Resources.NetBytesPerSec = o.Resources.NetBytesPerSec
	}
	if o.FailOperational {
		out.FailOperational = true
	}
	return out
}
