package model

import "fmt"

// SchedulingPolicy names the dispatching discipline of a processing resource.
type SchedulingPolicy string

// Supported scheduling policies.
const (
	// SPP is static-priority preemptive scheduling (typical RTOS).
	SPP SchedulingPolicy = "spp"
	// SPNP is static-priority non-preemptive scheduling (e.g. CAN bus
	// arbitration behaves like SPNP at frame granularity).
	SPNP SchedulingPolicy = "spnp"
)

// Processor models a processing resource of the target platform.
type Processor struct {
	// Name uniquely identifies the processor.
	Name string `json:"name"`
	// Policy is the scheduling discipline.
	Policy SchedulingPolicy `json:"policy"`
	// SpeedFactor scales execution times: a task with WCET w runs in
	// w / SpeedFactor on this processor. 1.0 is the reference speed.
	SpeedFactor float64 `json:"speed_factor"`
	// RAMKiB is the memory capacity.
	RAMKiB int64 `json:"ram_kib"`
	// MaxSafety is the highest safety level certifiable on this
	// processor (e.g. a lockstep core supports ASIL-D, a plain core QM/A).
	MaxSafety SafetyLevel `json:"max_safety"`
}

// Network models a communication resource (a CAN bus, an Ethernet link).
type Network struct {
	// Name uniquely identifies the network.
	Name string `json:"name"`
	// BitsPerSec is the raw bandwidth.
	BitsPerSec int64 `json:"bits_per_sec"`
	// Attached lists processors on this network.
	Attached []string `json:"attached"`
	// Kind is a free-form label ("can", "ethernet") used by viewpoint
	// analyses to select the right latency model.
	Kind string `json:"kind"`
}

// Platform is the technical resource model: processors and the networks
// connecting them.
type Platform struct {
	Processors []Processor `json:"processors"`
	Networks   []Network   `json:"networks"`
}

// ProcessorByName returns the named processor, or nil.
func (p *Platform) ProcessorByName(name string) *Processor {
	for i := range p.Processors {
		if p.Processors[i].Name == name {
			return &p.Processors[i]
		}
	}
	return nil
}

// NetworkByName returns the named network, or nil.
func (p *Platform) NetworkByName(name string) *Network {
	for i := range p.Networks {
		if p.Networks[i].Name == name {
			return &p.Networks[i]
		}
	}
	return nil
}

// Connecting returns the first network that attaches both processors,
// or nil if they share none.
func (p *Platform) Connecting(a, b string) *Network {
	for i := range p.Networks {
		n := &p.Networks[i]
		if contains(n.Attached, a) && contains(n.Attached, b) {
			return n
		}
	}
	return nil
}

// Validate checks structural consistency of the platform model.
func (p *Platform) Validate() error {
	seen := make(map[string]bool)
	for i := range p.Processors {
		pr := &p.Processors[i]
		if pr.Name == "" {
			return fmt.Errorf("model: processor %d has empty name", i)
		}
		if seen[pr.Name] {
			return fmt.Errorf("model: duplicate processor %q", pr.Name)
		}
		seen[pr.Name] = true
		if pr.SpeedFactor <= 0 {
			return fmt.Errorf("model: processor %q has non-positive speed factor", pr.Name)
		}
		if pr.RAMKiB < 0 {
			return fmt.Errorf("model: processor %q has negative RAM", pr.Name)
		}
		switch pr.Policy {
		case SPP, SPNP:
		default:
			return fmt.Errorf("model: processor %q has unknown policy %q", pr.Name, pr.Policy)
		}
	}
	netSeen := make(map[string]bool)
	for i := range p.Networks {
		n := &p.Networks[i]
		if n.Name == "" {
			return fmt.Errorf("model: network %d has empty name", i)
		}
		if netSeen[n.Name] {
			return fmt.Errorf("model: duplicate network %q", n.Name)
		}
		netSeen[n.Name] = true
		if n.BitsPerSec <= 0 {
			return fmt.Errorf("model: network %q has non-positive bandwidth", n.Name)
		}
		for _, a := range n.Attached {
			if !seen[a] {
				return fmt.Errorf("model: network %q attaches unknown processor %q", n.Name, a)
			}
		}
	}
	return nil
}
