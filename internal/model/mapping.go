package model

import (
	"fmt"
	"sort"
	"strconv"
)

// Instance is one deployed replica of a function.
type Instance struct {
	// Function is the name of the function this instance realizes.
	Function string `json:"function"`
	// Replica is the replica index (0-based).
	Replica int `json:"replica"`
	// Processor is the processing resource the instance is mapped to.
	Processor string `json:"processor"`
}

// ID returns a unique identifier for the instance ("name#replica"). It is
// called inside sort comparators on the MCC hot path, so it avoids the
// fmt machinery.
func (i Instance) ID() string { return i.Function + "#" + strconv.Itoa(i.Replica) }

// Less is the canonical deterministic instance order: by function name,
// then numeric replica index. Replicas order numerically (2 before 10),
// unlike lexicographic ordering of ID() strings; every sort of instances
// must go through this one comparator so the order stays consistent
// across mapping, synthesis, and analysis.
func (i Instance) Less(j Instance) bool {
	if i.Function != j.Function {
		return i.Function < j.Function
	}
	return i.Replica < j.Replica
}

// TechnicalArchitecture is the result of the first integration step:
// "fitting this functionality to the target platform" (Section II.A) —
// every function replica is assigned to a processor.
type TechnicalArchitecture struct {
	Platform  *Platform               `json:"platform"`
	Func      *FunctionalArchitecture `json:"functional"`
	Instances []Instance              `json:"instances"`
}

// InstancesOn returns the instances mapped to the given processor,
// in deterministic order.
func (t *TechnicalArchitecture) InstancesOn(proc string) []Instance {
	var out []Instance
	for _, in := range t.Instances {
		if in.Processor == proc {
			out = append(out, in)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// InstancesOf returns all replicas of the named function.
func (t *TechnicalArchitecture) InstancesOf(fn string) []Instance {
	var out []Instance
	for _, in := range t.Instances {
		if in.Function == fn {
			out = append(out, in)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Replica < out[j].Replica })
	return out
}

// Validate checks that every instance references existing entities and that
// replica counts match the functional architecture.
func (t *TechnicalArchitecture) Validate() error {
	if t.Platform == nil || t.Func == nil {
		return fmt.Errorf("model: technical architecture missing platform or functional model")
	}
	if err := t.Platform.Validate(); err != nil {
		return err
	}
	if err := t.Func.Validate(); err != nil {
		return err
	}
	fnNames := make(map[string]bool, len(t.Func.Functions))
	for i := range t.Func.Functions {
		fnNames[t.Func.Functions[i].Name] = true
	}
	procNames := make(map[string]bool, len(t.Platform.Processors))
	for i := range t.Platform.Processors {
		procNames[t.Platform.Processors[i].Name] = true
	}
	count := make(map[string]int)
	for _, in := range t.Instances {
		if !fnNames[in.Function] {
			return fmt.Errorf("model: instance of unknown function %q", in.Function)
		}
		if !procNames[in.Processor] {
			return fmt.Errorf("model: instance %s mapped to unknown processor %q", in.ID(), in.Processor)
		}
		count[in.Function]++
	}
	for i := range t.Func.Functions {
		f := &t.Func.Functions[i]
		if got, want := count[f.Name], f.EffectiveReplicas(); got != want {
			return fmt.Errorf("model: function %q deployed %d times, contract wants %d", f.Name, got, want)
		}
	}
	return nil
}

// Task is a schedulable entity in the implementation model, derived from a
// function instance, ready for timing analysis.
type Task struct {
	// Name is the instance ID it realizes.
	Name string `json:"name"`
	// Processor is the resource the task executes on.
	Processor string `json:"processor"`
	// Priority is the static priority (lower number = higher priority).
	Priority int `json:"priority"`
	// PeriodUS, JitterUS, WCETUS, DeadlineUS mirror the contract, with
	// WCET already scaled by the processor speed factor.
	PeriodUS   int64 `json:"period_us"`
	JitterUS   int64 `json:"jitter_us"`
	WCETUS     int64 `json:"wcet_us"`
	DeadlineUS int64 `json:"deadline_us"`
	// Safety is the integrity level inherited from the contract.
	Safety SafetyLevel `json:"safety"`
}

// Validate checks the task's own shape invariants (cross-task checks like
// priority uniqueness and platform checks live in
// ImplementationModel.Validate). Incremental synthesis applies it to the
// task sets it rebuilds, so the rule set cannot drift from the full
// validation.
func (t Task) Validate() error {
	if t.WCETUS <= 0 && t.PeriodUS > 0 {
		return fmt.Errorf("model: periodic task %q without WCET", t.Name)
	}
	return nil
}

// Message is a periodic network message in the implementation model.
type Message struct {
	// Name identifies the message (derived from the flow).
	Name string `json:"name"`
	// Network carries the message.
	Network string `json:"network"`
	// Priority is the arbitration priority (lower = higher priority;
	// for CAN this is the identifier).
	Priority int `json:"priority"`
	// Bytes is the payload size.
	Bytes int `json:"bytes"`
	// PeriodUS is the transmission period.
	PeriodUS int64 `json:"period_us"`
	// DeadlineUS is the latency bound (0 = period).
	DeadlineUS int64 `json:"deadline_us"`
}

// Connection is a client/server session in the component-based execution
// domain: "micro servers provide services that can be granted to other
// components that require these services" (Section II.B).
type Connection struct {
	// Client and Server are instance IDs.
	Client string `json:"client"`
	Server string `json:"server"`
	// Service names the granted service.
	Service string `json:"service"`
	// CrossDomain marks connections spanning security domains; these
	// require an explicit AllowedPeers entry in the client contract.
	CrossDomain bool `json:"cross_domain,omitempty"`
}

// ImplementationModel is the fully refined configuration the MCC hands to
// the execution domain: tasks with priorities, network messages, and the
// session/capability wiring.
type ImplementationModel struct {
	Tech        *TechnicalArchitecture `json:"tech"`
	Tasks       []Task                 `json:"tasks"`
	Messages    []Message              `json:"messages"`
	Connections []Connection           `json:"connections"`
}

// TasksOn returns the tasks on a processor sorted by priority (highest,
// i.e. numerically lowest, first).
func (m *ImplementationModel) TasksOn(proc string) []Task {
	var out []Task
	for _, t := range m.Tasks {
		if t.Processor == proc {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority < out[j].Priority
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// MessagesOn returns messages on a network sorted by priority.
func (m *ImplementationModel) MessagesOn(net string) []Message {
	var out []Message
	for _, msg := range m.Messages {
		if msg.Network == net {
			out = append(out, msg)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority < out[j].Priority
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Validate checks structural consistency of the implementation model.
func (m *ImplementationModel) Validate() error {
	if m.Tech == nil {
		return fmt.Errorf("model: implementation model without technical architecture")
	}
	if err := m.Tech.Validate(); err != nil {
		return err
	}
	prioSeen := make(map[string]map[int]string) // processor -> priority -> task
	for _, t := range m.Tasks {
		if m.Tech.Platform.ProcessorByName(t.Processor) == nil {
			return fmt.Errorf("model: task %q on unknown processor %q", t.Name, t.Processor)
		}
		if err := t.Validate(); err != nil {
			return err
		}
		byPrio := prioSeen[t.Processor]
		if byPrio == nil {
			byPrio = make(map[int]string)
			prioSeen[t.Processor] = byPrio
		}
		if other, dup := byPrio[t.Priority]; dup {
			return fmt.Errorf("model: tasks %q and %q share priority %d on %q", other, t.Name, t.Priority, t.Processor)
		}
		byPrio[t.Priority] = t.Name
	}
	for _, msg := range m.Messages {
		if m.Tech.Platform.NetworkByName(msg.Network) == nil {
			return fmt.Errorf("model: message %q on unknown network %q", msg.Name, msg.Network)
		}
		if msg.Bytes < 0 || msg.PeriodUS <= 0 {
			return fmt.Errorf("model: message %q has invalid size/period", msg.Name)
		}
	}
	ids := make(map[string]bool)
	for _, in := range m.Tech.Instances {
		ids[in.ID()] = true
	}
	for _, c := range m.Connections {
		if !ids[c.Client] || !ids[c.Server] {
			return fmt.Errorf("model: connection %s -> %s references unknown instance", c.Client, c.Server)
		}
	}
	return nil
}

// SystemModel bundles the deployed configuration for (de)serialization;
// this is the on-disk format consumed by cmd/mcc.
type SystemModel struct {
	Platform   *Platform               `json:"platform"`
	Functional *FunctionalArchitecture `json:"functional"`
}

// Validate checks both halves of the system model.
func (s *SystemModel) Validate() error {
	if s.Platform == nil || s.Functional == nil {
		return fmt.Errorf("model: system model missing platform or functional architecture")
	}
	if err := s.Platform.Validate(); err != nil {
		return err
	}
	return s.Functional.Validate()
}
