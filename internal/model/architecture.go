package model

import (
	"fmt"
	"slices"
	"sort"
)

// Function is a node of the platform-independent functional (logical)
// architecture: "a change to a system can be the addition of a new
// functionality that is modeled in a logical or functional system
// architecture in a platform-independent way" (Section II.A).
type Function struct {
	// Name uniquely identifies the function in the architecture.
	Name string `json:"name"`
	// Version distinguishes updates of the same function.
	Version int `json:"version"`
	// Provides lists service names the function offers to others.
	Provides []string `json:"provides,omitempty"`
	// Requires lists service names the function consumes.
	Requires []string `json:"requires,omitempty"`
	// Contract carries the viewpoint requirements.
	Contract Contract `json:"contract"`
	// Replicas > 1 requests redundant instantiation (safety viewpoint
	// uses this for fail-operational functions). 0 means 1.
	Replicas int `json:"replicas,omitempty"`
}

// EffectiveReplicas returns the number of instances to deploy (minimum 1).
func (f Function) EffectiveReplicas() int {
	if f.Replicas < 1 {
		return 1
	}
	return f.Replicas
}

// Equal reports whether two functions are identical in every field that
// the MCC's incremental integration may depend on — i.e. all of them.
// Slice-valued fields are compared element-wise (nil and empty are
// equal); everything else by value, without reflection, since this runs
// once per deployed function on every proposal. A unit test enumerates
// the Function/Contract fields by reflection so a newly added field
// cannot silently escape this comparison.
func (f Function) Equal(g Function) bool {
	return f.Name == g.Name &&
		f.Version == g.Version &&
		f.Replicas == g.Replicas &&
		slices.Equal(f.Provides, g.Provides) &&
		slices.Equal(f.Requires, g.Requires) &&
		f.Contract.Safety == g.Contract.Safety &&
		f.Contract.RealTime == g.Contract.RealTime &&
		f.Contract.Resources == g.Contract.Resources &&
		f.Contract.Domain == g.Contract.Domain &&
		slices.Equal(f.Contract.AllowedPeers, g.Contract.AllowedPeers) &&
		f.Contract.FailOperational == g.Contract.FailOperational
}

// Flow is a directed data flow between two functions in the functional
// architecture, realized over a service connection.
type Flow struct {
	// From and To name the producing and consuming functions.
	From string `json:"from"`
	To   string `json:"to"`
	// Service is the service name carrying the flow; must be provided by
	// From and required by To.
	Service string `json:"service"`
	// MsgBytes is the per-message payload size.
	MsgBytes int `json:"msg_bytes,omitempty"`
	// PeriodUS is the message period in microseconds (0 = sporadic).
	PeriodUS int64 `json:"period_us,omitempty"`
}

// FunctionalArchitecture is the platform-independent model of what the
// vehicle does: a set of functions and the data flows between them.
type FunctionalArchitecture struct {
	Functions []Function `json:"functions"`
	Flows     []Flow     `json:"flows,omitempty"`
}

// FunctionByName returns the function with the given name, or nil.
func (a *FunctionalArchitecture) FunctionByName(name string) *Function {
	for i := range a.Functions {
		if a.Functions[i].Name == name {
			return &a.Functions[i]
		}
	}
	return nil
}

// Providers returns the names of functions providing the given service,
// sorted for determinism.
func (a *FunctionalArchitecture) Providers(service string) []string {
	var out []string
	for i := range a.Functions {
		for _, p := range a.Functions[i].Provides {
			if p == service {
				out = append(out, a.Functions[i].Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks structural consistency: unique names, resolvable service
// requirements, well-formed contracts, and flow endpoints that exist.
func (a *FunctionalArchitecture) Validate() error {
	return a.ValidateScoped(nil, nil)
}

// ValidateScoped checks the same invariants as Validate, restricting the
// per-function contract checks and the per-flow checks to the given
// scopes (nil = everything). The global invariants — unique non-empty
// names and resolvable service requirements — are always checked in full,
// since a change anywhere can break them. Incremental integration uses
// this with the diff neighborhood as the scope, so the rule set lives in
// exactly one place and a scoped pass can never accept what the full pass
// rejects within its scope.
func (a *FunctionalArchitecture) ValidateScoped(fnScope func(name string) bool, flowScope func(Flow) bool) error {
	byName := make(map[string]*Function, len(a.Functions))
	provided := make(map[string]bool)
	for i := range a.Functions {
		f := &a.Functions[i]
		if f.Name == "" {
			return fmt.Errorf("model: function %d has empty name", i)
		}
		if byName[f.Name] != nil {
			return fmt.Errorf("model: duplicate function %q", f.Name)
		}
		byName[f.Name] = f
		if fnScope == nil || fnScope(f.Name) {
			if err := f.Contract.Validate(); err != nil {
				return fmt.Errorf("model: function %q: %w", f.Name, err)
			}
		}
		for _, p := range f.Provides {
			provided[p] = true
		}
	}
	for i := range a.Functions {
		f := &a.Functions[i]
		for _, r := range f.Requires {
			if !provided[r] {
				return fmt.Errorf("model: function %q requires unprovided service %q", f.Name, r)
			}
		}
	}
	for i, fl := range a.Flows {
		if flowScope != nil && !flowScope(fl) {
			continue
		}
		from := byName[fl.From]
		to := byName[fl.To]
		if from == nil || to == nil {
			return fmt.Errorf("model: flow %d references unknown function (%q -> %q)", i, fl.From, fl.To)
		}
		if !contains(from.Provides, fl.Service) {
			return fmt.Errorf("model: flow %d: %q does not provide %q", i, fl.From, fl.Service)
		}
		if !contains(to.Requires, fl.Service) {
			return fmt.Errorf("model: flow %d: %q does not require %q", i, fl.To, fl.Service)
		}
		if fl.MsgBytes < 0 || fl.PeriodUS < 0 {
			return fmt.Errorf("model: flow %d has negative size/period", i)
		}
	}
	return nil
}

// Clone returns a deep copy of the architecture, so the MCC can refine a
// candidate configuration without mutating the deployed one.
func (a *FunctionalArchitecture) Clone() *FunctionalArchitecture {
	out := &FunctionalArchitecture{
		Functions: make([]Function, len(a.Functions)),
		Flows:     make([]Flow, len(a.Flows)),
	}
	copy(out.Flows, a.Flows)
	for i, f := range a.Functions {
		nf := f
		nf.Provides = append([]string(nil), f.Provides...)
		nf.Requires = append([]string(nil), f.Requires...)
		nf.Contract.AllowedPeers = append([]string(nil), f.Contract.AllowedPeers...)
		out.Functions[i] = nf
	}
	return out
}

// WithFunction returns a copy of the architecture where fn replaces any
// existing function of the same name (an in-field update), or is appended
// (a new functionality).
func (a *FunctionalArchitecture) WithFunction(fn Function) *FunctionalArchitecture {
	out := a.Clone()
	for i := range out.Functions {
		if out.Functions[i].Name == fn.Name {
			out.Functions[i] = fn
			return out
		}
	}
	out.Functions = append(out.Functions, fn)
	return out
}

// WithoutFunction returns a copy of the architecture with the named function
// and all flows touching it removed.
func (a *FunctionalArchitecture) WithoutFunction(name string) *FunctionalArchitecture {
	out := a.Clone()
	kept := out.Functions[:0]
	for _, f := range out.Functions {
		if f.Name != name {
			kept = append(kept, f)
		}
	}
	out.Functions = kept
	flows := out.Flows[:0]
	for _, fl := range out.Flows {
		if fl.From != name && fl.To != name {
			flows = append(flows, fl)
		}
	}
	out.Flows = flows
	return out
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
