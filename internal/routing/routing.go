// Package routing implements weather-aware route planning under
// uncertainty (Section V): "if the system was aware, that its systems may
// degrade on a certain route due to possible weather influences, it could
// plan alternative routes which avoid weather-related degradation. In this
// case, a self-aware vehicle could determine whether it plans a (possibly
// shorter) route across an alpine pass in winter or whether it is
// advantageous to take a longer detour without risking degraded
// performance."
//
// Roads carry a weather-dependent degradation risk; the planner minimizes
// expected cost = travel time + risk-weighted degradation penalty. The
// penalty weight expresses how much the vehicle values avoiding degraded
// operation; sweeping it produces the crossover of experiment E8.
package routing

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Road is a directed edge of the road network.
type Road struct {
	From, To string
	// LengthKM is the road length.
	LengthKM float64
	// SpeedKMH is the nominal travel speed.
	SpeedKMH float64
	// DegradeProb is the probability (given current weather) that the
	// vehicle's perception/traction degrades on this road.
	DegradeProb float64
	// DegradeSlowdown is the factor by which degraded operation inflates
	// the travel time on this road (>= 1).
	DegradeSlowdown float64
}

// NominalTimeH returns the undegraded travel time in hours.
func (r Road) NominalTimeH() float64 { return r.LengthKM / r.SpeedKMH }

// ExpectedTimeH returns the expected travel time including degradation.
func (r Road) ExpectedTimeH() float64 {
	slow := r.DegradeSlowdown
	if slow < 1 {
		slow = 1
	}
	return r.NominalTimeH() * (1 + r.DegradeProb*(slow-1))
}

// Validate checks the edge parameters.
func (r Road) Validate() error {
	if r.LengthKM <= 0 || r.SpeedKMH <= 0 {
		return fmt.Errorf("routing: road %s->%s has non-positive length/speed", r.From, r.To)
	}
	if r.DegradeProb < 0 || r.DegradeProb > 1 {
		return fmt.Errorf("routing: road %s->%s degrade probability %v outside [0,1]", r.From, r.To, r.DegradeProb)
	}
	if r.DegradeSlowdown < 1 && r.DegradeSlowdown != 0 {
		return fmt.Errorf("routing: road %s->%s slowdown %v below 1", r.From, r.To, r.DegradeSlowdown)
	}
	return nil
}

// Network is the road graph.
type Network struct {
	edges map[string][]Road
	nodes map[string]bool
}

// NewNetwork returns an empty road network.
func NewNetwork() *Network {
	return &Network{edges: make(map[string][]Road), nodes: make(map[string]bool)}
}

// AddRoad inserts a directed road.
func (n *Network) AddRoad(r Road) error {
	if err := r.Validate(); err != nil {
		return err
	}
	n.edges[r.From] = append(n.edges[r.From], r)
	n.nodes[r.From] = true
	n.nodes[r.To] = true
	return nil
}

// AddBidirectional inserts the road in both directions.
func (n *Network) AddBidirectional(r Road) error {
	if err := n.AddRoad(r); err != nil {
		return err
	}
	back := r
	back.From, back.To = r.To, r.From
	return n.AddRoad(back)
}

// Nodes returns all junction names, sorted.
func (n *Network) Nodes() []string {
	out := make([]string, 0, len(n.nodes))
	for k := range n.nodes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Route is a planned path with its cost breakdown.
type Route struct {
	Nodes []string
	// TimeH is the expected travel time (hours).
	TimeH float64
	// RiskCost is the accumulated degradation penalty (hours-equivalent).
	RiskCost float64
	// ExpectedDegradations sums the per-road degradation probabilities
	// (expected number of degraded segments).
	ExpectedDegradations float64
}

// TotalCost returns TimeH + RiskCost.
func (r Route) TotalCost() float64 { return r.TimeH + r.RiskCost }

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node string
	cost float64
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].cost != q[j].cost {
		return q[i].cost < q[j].cost
	}
	return q[i].node < q[j].node
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Plan finds the minimum-cost route from src to dst where each road costs
//
//	expectedTime + riskWeight * degradeProb * nominalTime
//
// riskWeight = 0 plans purely by expected time; larger values make the
// planner increasingly degradation-averse (a self-aware vehicle that knows
// its fog performance is poor chooses a large weight).
func (n *Network) Plan(src, dst string, riskWeight float64) (Route, error) {
	if !n.nodes[src] || !n.nodes[dst] {
		return Route{}, fmt.Errorf("routing: unknown endpoint %q or %q", src, dst)
	}
	if riskWeight < 0 {
		return Route{}, fmt.Errorf("routing: negative risk weight")
	}
	dist := map[string]float64{src: 0}
	prev := map[string]string{}
	done := map[string]bool{}
	q := &pq{{node: src}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == dst {
			break
		}
		for _, e := range n.edges[it.node] {
			c := e.ExpectedTimeH() + riskWeight*e.DegradeProb*e.NominalTimeH()
			nd := it.cost + c
			if old, seen := dist[e.To]; !seen || nd < old-1e-15 {
				dist[e.To] = nd
				prev[e.To] = it.node
				heap.Push(q, pqItem{node: e.To, cost: nd})
			}
		}
	}
	if !done[dst] {
		return Route{}, fmt.Errorf("routing: no route %s -> %s", src, dst)
	}
	// Reconstruct and compute the breakdown.
	var nodes []string
	for cur := dst; ; cur = prev[cur] {
		nodes = append([]string{cur}, nodes...)
		if cur == src {
			break
		}
	}
	route := Route{Nodes: nodes}
	for i := 0; i+1 < len(nodes); i++ {
		e, err := n.edgeBetween(nodes[i], nodes[i+1], riskWeight)
		if err != nil {
			return Route{}, err
		}
		route.TimeH += e.ExpectedTimeH()
		route.RiskCost += riskWeight * e.DegradeProb * e.NominalTimeH()
		route.ExpectedDegradations += e.DegradeProb
	}
	return route, nil
}

// edgeBetween returns the cheapest edge from a to b under the weight
// (there may be parallel roads).
func (n *Network) edgeBetween(a, b string, riskWeight float64) (Road, error) {
	best := Road{}
	bestCost := math.Inf(1)
	for _, e := range n.edges[a] {
		if e.To != b {
			continue
		}
		c := e.ExpectedTimeH() + riskWeight*e.DegradeProb*e.NominalTimeH()
		if c < bestCost {
			best = e
			bestCost = c
		}
	}
	if math.IsInf(bestCost, 1) {
		return Road{}, fmt.Errorf("routing: no edge %s -> %s", a, b)
	}
	return best, nil
}

// CrossoverWeight finds the smallest risk weight (by bisection over
// [0, maxWeight]) at which the planner switches away from the route chosen
// at weight 0, or -1 if it never switches. This locates the alpine-pass /
// detour crossover of E8.
func (n *Network) CrossoverWeight(src, dst string, maxWeight float64) (float64, error) {
	base, err := n.Plan(src, dst, 0)
	if err != nil {
		return 0, err
	}
	high, err := n.Plan(src, dst, maxWeight)
	if err != nil {
		return 0, err
	}
	if samePath(base.Nodes, high.Nodes) {
		return -1, nil
	}
	lo, hi := 0.0, maxWeight
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		r, err := n.Plan(src, dst, mid)
		if err != nil {
			return 0, err
		}
		if samePath(r.Nodes, base.Nodes) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

func samePath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WeightFromSelfAssessment derives the degradation-aversion weight from
// the vehicle's self-assessed competence for the adverse condition (fog /
// winter ability level in [0,1]): a fully competent vehicle (1.0) plans
// nearly risk-neutrally; a vehicle that knows its sensors degrade in the
// condition weighs degradation heavily. This is the cross-layer link of
// Section V: the functional layer's self-assessment parameterizes the
// objective layer's route planning.
func WeightFromSelfAssessment(conditionAbility float64) float64 {
	if conditionAbility < 0 {
		conditionAbility = 0
	}
	if conditionAbility > 1 {
		conditionAbility = 1
	}
	// ability 1.0 -> 0; 0.5 -> 8; 0.0 -> 16 (scaled so the alpine
	// scenario's crossover (~4.3) falls around ability 0.73).
	return 16 * (1 - conditionAbility)
}

// AlpineScenario builds the paper's worked example: a short pass route
// with winter degradation risk versus a longer, safe valley detour.
// passRisk is the degradation probability on the pass segments.
func AlpineScenario(passRisk float64) *Network {
	n := NewNetwork()
	roads := []Road{
		// The pass: 60 km over the mountain, scenic but risky in winter.
		{From: "start", To: "pass", LengthKM: 30, SpeedKMH: 60, DegradeProb: passRisk, DegradeSlowdown: 3},
		{From: "pass", To: "goal", LengthKM: 30, SpeedKMH: 60, DegradeProb: passRisk, DegradeSlowdown: 3},
		// The detour: 120 km of valley highway, essentially risk-free.
		{From: "start", To: "valley", LengthKM: 60, SpeedKMH: 100, DegradeProb: 0.02, DegradeSlowdown: 1.5},
		{From: "valley", To: "goal", LengthKM: 60, SpeedKMH: 100, DegradeProb: 0.02, DegradeSlowdown: 1.5},
	}
	for _, r := range roads {
		if err := n.AddBidirectional(r); err != nil {
			panic(err) // static data; cannot fail
		}
	}
	return n
}
