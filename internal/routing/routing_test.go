package routing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoadValidate(t *testing.T) {
	ok := Road{From: "a", To: "b", LengthKM: 10, SpeedKMH: 50, DegradeProb: 0.1, DegradeSlowdown: 2}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ok
	bad.LengthKM = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero length accepted")
	}
	bad = ok
	bad.DegradeProb = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	bad = ok
	bad.DegradeSlowdown = 0.5
	if err := bad.Validate(); err == nil {
		t.Fatal("slowdown < 1 accepted")
	}
}

func TestExpectedTime(t *testing.T) {
	r := Road{LengthKM: 100, SpeedKMH: 50, DegradeProb: 0.5, DegradeSlowdown: 3}
	if r.NominalTimeH() != 2 {
		t.Fatalf("nominal = %v", r.NominalTimeH())
	}
	// expected = 2 * (1 + 0.5*2) = 4.
	if r.ExpectedTimeH() != 4 {
		t.Fatalf("expected = %v", r.ExpectedTimeH())
	}
}

func TestPlanShortestByTime(t *testing.T) {
	n := NewNetwork()
	for _, r := range []Road{
		{From: "a", To: "b", LengthKM: 10, SpeedKMH: 100},
		{From: "b", To: "c", LengthKM: 10, SpeedKMH: 100},
		{From: "a", To: "c", LengthKM: 50, SpeedKMH: 100},
	} {
		if err := n.AddRoad(r); err != nil {
			t.Fatal(err)
		}
	}
	route, err := n.Plan("a", "c", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(route.Nodes) != 3 || route.Nodes[1] != "b" {
		t.Fatalf("route = %v", route.Nodes)
	}
	if math.Abs(route.TimeH-0.2) > 1e-12 {
		t.Fatalf("time = %v", route.TimeH)
	}
}

func TestPlanErrors(t *testing.T) {
	n := NewNetwork()
	if err := n.AddRoad(Road{From: "a", To: "b", LengthKM: 1, SpeedKMH: 50}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Plan("a", "ghost", 0); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
	if _, err := n.Plan("b", "a", 0); err == nil {
		t.Fatal("unreachable accepted (directed)")
	}
	if _, err := n.Plan("a", "b", -1); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestAlpineCrossover(t *testing.T) {
	// Winter: pass risk 0.4.
	n := AlpineScenario(0.4)
	// Risk-neutral: the pass (1h nominal, expected 1h*(1+0.4*2)=1.8h) vs
	// detour (1.2h * (1+0.02*0.5)=1.212h) — detour is already faster in
	// expectation! Use lower risk so the pass wins at weight 0.
	n = AlpineScenario(0.05)
	fast, err := n.Plan("start", "goal", 0)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Nodes[1] != "pass" {
		t.Fatalf("risk-neutral route = %v, want pass", fast.Nodes)
	}
	// Strongly degradation-averse: takes the valley.
	safe, err := n.Plan("start", "goal", 10)
	if err != nil {
		t.Fatal(err)
	}
	if safe.Nodes[1] != "valley" {
		t.Fatalf("risk-averse route = %v, want valley", safe.Nodes)
	}
	if safe.ExpectedDegradations >= fast.ExpectedDegradations {
		t.Fatalf("safe route not actually safer: %v vs %v",
			safe.ExpectedDegradations, fast.ExpectedDegradations)
	}
	// Crossover exists and is inside (0, 10).
	w, err := n.CrossoverWeight("start", "goal", 10)
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 || w >= 10 {
		t.Fatalf("crossover = %v", w)
	}
	// Just below: pass; just above: valley.
	below, _ := n.Plan("start", "goal", w*0.9)
	above, _ := n.Plan("start", "goal", w*1.1)
	if below.Nodes[1] != "pass" || above.Nodes[1] != "valley" {
		t.Fatalf("crossover inconsistent: %v / %v", below.Nodes, above.Nodes)
	}
}

func TestHighWinterRiskFlipsAtZero(t *testing.T) {
	// With pass risk 0.4 the detour wins even risk-neutrally (expected
	// time alone): no crossover.
	n := AlpineScenario(0.4)
	r, err := n.Plan("start", "goal", 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes[1] != "valley" {
		t.Fatalf("winter route = %v, want valley", r.Nodes)
	}
	w, err := n.CrossoverWeight("start", "goal", 10)
	if err != nil {
		t.Fatal(err)
	}
	if w != -1 {
		t.Fatalf("crossover = %v, want -1 (never switches)", w)
	}
}

func TestRouteTotalCost(t *testing.T) {
	r := Route{TimeH: 1.5, RiskCost: 0.3}
	if r.TotalCost() != 1.8 {
		t.Fatalf("total = %v", r.TotalCost())
	}
}

func TestNodesSorted(t *testing.T) {
	n := AlpineScenario(0.1)
	nodes := n.Nodes()
	if len(nodes) != 4 || nodes[0] != "goal" || nodes[3] != "valley" {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestWeightFromSelfAssessment(t *testing.T) {
	if WeightFromSelfAssessment(1) != 0 {
		t.Fatal("competent vehicle not risk-neutral")
	}
	if WeightFromSelfAssessment(0) != 16 {
		t.Fatalf("incompetent weight = %v", WeightFromSelfAssessment(0))
	}
	if WeightFromSelfAssessment(-1) != 16 || WeightFromSelfAssessment(2) != 0 {
		t.Fatal("clamping failed")
	}
	// The cross-layer story: a fog-competent vehicle takes the pass, a
	// fog-blind one the detour, on the same network with the same weather.
	n := AlpineScenario(0.05)
	competent, err := n.Plan("start", "goal", WeightFromSelfAssessment(0.95))
	if err != nil {
		t.Fatal(err)
	}
	blind, err := n.Plan("start", "goal", WeightFromSelfAssessment(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if competent.Nodes[1] != "pass" {
		t.Fatalf("competent via %v", competent.Nodes)
	}
	if blind.Nodes[1] != "valley" {
		t.Fatalf("blind via %v", blind.Nodes)
	}
}

// Property: the planned route's cost is monotone non-decreasing in the
// risk weight (more aversion can only cost more in the combined metric).
func TestPropCostMonotoneInWeight(t *testing.T) {
	n := AlpineScenario(0.15)
	f := func(w1Raw, w2Raw uint8) bool {
		w1 := float64(w1Raw) / 16
		w2 := float64(w2Raw) / 16
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		r1, err1 := n.Plan("start", "goal", w1)
		r2, err2 := n.Plan("start", "goal", w2)
		if err1 != nil || err2 != nil {
			return false
		}
		// Compare achievable optimum cost at w1 evaluated with weight w1
		// vs optimum at w2 with weight w2: the latter cannot be smaller
		// than the former (weights only add cost).
		return r2.TotalCost() >= r1.TotalCost()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: expected degradations on the chosen route are monotone
// non-increasing in the risk weight.
func TestPropRiskAversionReducesDegradation(t *testing.T) {
	n := AlpineScenario(0.15)
	f := func(w1Raw, w2Raw uint8) bool {
		w1 := float64(w1Raw) / 16
		w2 := float64(w2Raw) / 16
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		r1, err1 := n.Plan("start", "goal", w1)
		r2, err2 := n.Plan("start", "goal", w2)
		if err1 != nil || err2 != nil {
			return false
		}
		return r2.ExpectedDegradations <= r1.ExpectedDegradations+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
