package skills

import (
	"fmt"
	"sort"
)

// Level grades an ability's current performance in [0, 1]:
// 1.0 full performance, 0 unavailable. The discrete bands used by decision
// making are derived via Classify.
type Level float64

// Band is a discrete ability classification for decision making.
type Band int

// Bands, in increasing availability.
const (
	Unavailable Band = iota
	Degraded
	Full
)

var bandNames = [...]string{"unavailable", "degraded", "full"}

func (b Band) String() string {
	if b < 0 || int(b) >= len(bandNames) {
		return fmt.Sprintf("Band(%d)", int(b))
	}
	return bandNames[b]
}

// Classify maps a level to a band: < 0.2 unavailable, < 0.8 degraded,
// otherwise full.
func Classify(l Level) Band {
	switch {
	case l < 0.2:
		return Unavailable
	case l < 0.8:
		return Degraded
	default:
		return Full
	}
}

// Aggregate combines a node's own health with its dependencies' levels.
// The default (MinAggregate) is conservative: an ability performs no
// better than its weakest dependency.
type Aggregate func(self Level, deps []Level) Level

// MinAggregate returns min(self, min(deps)).
func MinAggregate(self Level, deps []Level) Level {
	out := self
	for _, d := range deps {
		if d < out {
			out = d
		}
	}
	return out
}

// WeightedAggregate returns self scaled by the mean of the dependency
// levels — for abilities that degrade gracefully with partial inputs
// (e.g. object tracking quality with a subset of sensors).
func WeightedAggregate(self Level, deps []Level) Level {
	if len(deps) == 0 {
		return self
	}
	var sum Level
	for _, d := range deps {
		sum += d
	}
	return self * (sum / Level(len(deps)))
}

// RedundantAggregate returns min(self, max(deps)) — for abilities backed
// by redundant alternatives where any one dependency suffices.
func RedundantAggregate(self Level, deps []Level) Level {
	if len(deps) == 0 {
		return self
	}
	best := deps[0]
	for _, d := range deps[1:] {
		if d > best {
			best = d
		}
	}
	if self < best {
		return self
	}
	return best
}

// Tactic is a graceful degradation action registered on a skill: when the
// propagated level falls below Trigger, Apply runs (once per activation;
// it re-arms after the level recovers above Trigger). "In case of a
// reduced ability level it is possible for the system to apply graceful
// degradation tactics, e.g. by switching to different software modules or
// by performing self-reconfiguration."
type Tactic struct {
	Name    string
	Skill   string
	Trigger Level
	Apply   func(ag *AbilityGraph)
	armed   bool
	// Fired counts activations.
	Fired int
}

// LevelChange notifies observers about a band transition of an ability.
type LevelChange struct {
	Node     string
	Old, New Band
	Level    Level
}

// AbilityGraph is the run-time instantiation of a skill graph: every node
// carries its own health (set by monitors) and a propagated level.
type AbilityGraph struct {
	g         *Graph
	health    map[string]Level
	level     map[string]Level
	agg       map[string]Aggregate
	tactics   []*Tactic
	listeners []func(LevelChange)
	lastBand  map[string]Band
}

// Instantiate derives an ability graph from a validated skill graph. All
// healths start at 1.0 (full performance).
func Instantiate(g *Graph) (*AbilityGraph, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	ag := &AbilityGraph{
		g:        g,
		health:   make(map[string]Level),
		level:    make(map[string]Level),
		agg:      make(map[string]Aggregate),
		lastBand: make(map[string]Band),
	}
	for _, n := range g.Nodes() {
		ag.health[n] = 1
		ag.level[n] = 1
		ag.lastBand[n] = Full
	}
	return ag, nil
}

// Graph returns the underlying skill graph.
func (ag *AbilityGraph) Graph() *Graph { return ag.g }

// SetAggregate overrides the aggregation function of a node (default
// MinAggregate).
func (ag *AbilityGraph) SetAggregate(node string, f Aggregate) error {
	if _, ok := ag.g.Kind(node); !ok {
		return fmt.Errorf("skills: unknown node %q", node)
	}
	ag.agg[node] = f
	return nil
}

// SetHealth sets a node's own health (clamped to [0,1]) and repropagates.
// Monitors drive this: sensor data-quality assessments set source health,
// actuator diagnoses set sink health, control-performance self-assessments
// set skill health.
func (ag *AbilityGraph) SetHealth(node string, v Level) error {
	if _, ok := ag.g.Kind(node); !ok {
		return fmt.Errorf("skills: unknown node %q", node)
	}
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	ag.health[node] = v
	ag.Propagate()
	return nil
}

// Health returns a node's own health.
func (ag *AbilityGraph) Health(node string) Level { return ag.health[node] }

// Level returns a node's propagated performance level.
func (ag *AbilityGraph) Level(node string) Level { return ag.level[node] }

// BandOf returns a node's current discrete band.
func (ag *AbilityGraph) BandOf(node string) Band { return Classify(ag.level[node]) }

// OnChange registers a band-transition listener.
func (ag *AbilityGraph) OnChange(fn func(LevelChange)) {
	ag.listeners = append(ag.listeners, fn)
}

// RegisterTactic installs a degradation tactic.
func (ag *AbilityGraph) RegisterTactic(t *Tactic) error {
	if k, ok := ag.g.Kind(t.Skill); !ok || k != Skill {
		return fmt.Errorf("skills: tactic %q targets non-skill %q", t.Name, t.Skill)
	}
	if t.Trigger <= 0 || t.Trigger > 1 {
		return fmt.Errorf("skills: tactic %q trigger %v outside (0,1]", t.Name, t.Trigger)
	}
	t.armed = true
	ag.tactics = append(ag.tactics, t)
	return nil
}

// Tactics returns the registered tactics.
func (ag *AbilityGraph) Tactics() []*Tactic { return ag.tactics }

// Propagate recomputes all levels bottom-up and fires band-change
// listeners and degradation tactics.
func (ag *AbilityGraph) Propagate() {
	for _, n := range ag.g.Topo() {
		deps := ag.g.Dependencies(n)
		depLevels := make([]Level, len(deps))
		for i, d := range deps {
			depLevels[i] = ag.level[d]
		}
		f := ag.agg[n]
		if f == nil {
			f = MinAggregate
		}
		ag.level[n] = f(ag.health[n], depLevels)
	}
	// Band transitions.
	for _, n := range ag.g.Nodes() {
		nb := Classify(ag.level[n])
		if ob := ag.lastBand[n]; nb != ob {
			ag.lastBand[n] = nb
			for _, l := range ag.listeners {
				l(LevelChange{Node: n, Old: ob, New: nb, Level: ag.level[n]})
			}
		}
	}
	// Tactics.
	for _, t := range ag.tactics {
		lvl := ag.level[t.Skill]
		if t.armed && lvl < t.Trigger {
			t.armed = false
			t.Fired++
			if t.Apply != nil {
				t.Apply(ag)
			}
		} else if !t.armed && lvl >= t.Trigger {
			t.armed = true
		}
	}
}

// Snapshot returns all levels, for the self-representation.
func (ag *AbilityGraph) Snapshot() map[string]Level {
	out := make(map[string]Level, len(ag.level))
	for n, l := range ag.level {
		out[n] = l
	}
	return out
}

// WeakestChain returns, for a root skill, the grounded dependency chain
// whose own-health minimum is lowest — the bottleneck explaining the
// root's current performance (error propagation visualization). Own
// health, not the propagated level, is compared: propagated levels are
// contaminated by the bottleneck itself and would make every chain
// through the root look equally weak.
func (ag *AbilityGraph) WeakestChain(root string) []string {
	paths := ag.g.PathsToGround(root)
	if len(paths) == 0 {
		return nil
	}
	best := -1
	bestMin := Level(2)
	for i, p := range paths {
		m := Level(2)
		for _, n := range p {
			if ag.health[n] < m {
				m = ag.health[n]
			}
		}
		if m < bestMin {
			bestMin = m
			best = i
		}
	}
	return paths[best]
}

// Degraded returns all nodes currently below Full, sorted by level then
// name (worst first).
func (ag *AbilityGraph) Degraded() []string {
	var out []string
	for _, n := range ag.g.Nodes() {
		if Classify(ag.level[n]) != Full {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if ag.level[out[i]] != ag.level[out[j]] {
			return ag.level[out[i]] < ag.level[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
