// Package skills implements skill graphs and ability graphs for functional
// self-awareness (Section IV, after Reschka et al. [22]):
//
//   - A skill graph is a directed acyclic graph of skill nodes, data source
//     nodes, data sink nodes, and dependency relations — a development-time
//     model of the driving task ("a path in this DAG, starting with a main
//     skill and ending at a data source or data sink, represents a chain of
//     dependencies between abilities").
//
//   - An ability graph instantiates the skill graph for run-time
//     monitoring: every node carries a current performance level; levels
//     propagate from sources/sinks up to the main skills, and degradation
//     tactics fire when an ability drops below its required level.
//
// The package also ships the paper's worked example, the ACC skill graph
// (BuildACC), which experiment E4 exercises.
package skills

import (
	"fmt"
	"sort"
)

// NodeKind distinguishes the three node types of a skill graph.
type NodeKind int

// Node kinds.
const (
	// Skill is an abstract capability (e.g. "control distance").
	Skill NodeKind = iota
	// DataSource is an information input (e.g. environment sensors).
	DataSource
	// DataSink is an actuation output (e.g. the braking system).
	DataSink
)

var kindNames = [...]string{"skill", "source", "sink"}

func (k NodeKind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
	return kindNames[k]
}

// Graph is a skill graph: a DAG over skills, sources and sinks.
type Graph struct {
	kinds map[string]NodeKind
	// deps[s] lists the nodes skill s depends on.
	deps map[string][]string
	// parents[c] lists the skills depending on c.
	parents map[string][]string
}

// NewGraph returns an empty skill graph.
func NewGraph() *Graph {
	return &Graph{
		kinds:   make(map[string]NodeKind),
		deps:    make(map[string][]string),
		parents: make(map[string][]string),
	}
}

// AddSkill adds a skill node.
func (g *Graph) AddSkill(name string) error { return g.add(name, Skill) }

// AddSource adds a data source node.
func (g *Graph) AddSource(name string) error { return g.add(name, DataSource) }

// AddSink adds a data sink node.
func (g *Graph) AddSink(name string) error { return g.add(name, DataSink) }

func (g *Graph) add(name string, k NodeKind) error {
	if name == "" {
		return fmt.Errorf("skills: empty node name")
	}
	if _, dup := g.kinds[name]; dup {
		return fmt.Errorf("skills: duplicate node %q", name)
	}
	g.kinds[name] = k
	return nil
}

// Kind returns a node's kind and whether it exists.
func (g *Graph) Kind(name string) (NodeKind, bool) {
	k, ok := g.kinds[name]
	return k, ok
}

// Depend records that skill parent requires child (a skill, source or
// sink). Sources and sinks are terminal: they cannot depend on anything.
// Cycles are rejected.
func (g *Graph) Depend(parent, child string) error {
	pk, ok := g.kinds[parent]
	if !ok {
		return fmt.Errorf("skills: unknown node %q", parent)
	}
	if pk != Skill {
		return fmt.Errorf("skills: %s %q cannot have dependencies", pk, parent)
	}
	if _, ok := g.kinds[child]; !ok {
		return fmt.Errorf("skills: unknown node %q", child)
	}
	if parent == child {
		return fmt.Errorf("skills: self-dependency %q", parent)
	}
	for _, d := range g.deps[parent] {
		if d == child {
			return nil // idempotent
		}
	}
	if g.reaches(child, parent) {
		return fmt.Errorf("skills: dependency %q -> %q would create a cycle", parent, child)
	}
	g.deps[parent] = append(g.deps[parent], child)
	g.parents[child] = append(g.parents[child], parent)
	return nil
}

// reaches reports whether from can reach to along dependency edges.
func (g *Graph) reaches(from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range g.deps[n] {
			if d == to {
				return true
			}
			if !seen[d] {
				seen[d] = true
				stack = append(stack, d)
			}
		}
	}
	return false
}

// Dependencies returns the direct dependencies of a node, sorted.
func (g *Graph) Dependencies(name string) []string {
	out := append([]string(nil), g.deps[name]...)
	sort.Strings(out)
	return out
}

// Parents returns the skills directly depending on a node, sorted.
func (g *Graph) Parents(name string) []string {
	out := append([]string(nil), g.parents[name]...)
	sort.Strings(out)
	return out
}

// Nodes returns all node names, sorted.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.kinds))
	for n := range g.kinds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Roots returns the main skills: skill nodes no other skill depends on.
func (g *Graph) Roots() []string {
	var out []string
	for n, k := range g.kinds {
		if k == Skill && len(g.parents[n]) == 0 {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks the structural rules of a skill graph: at least one main
// skill, every skill eventually grounded in a source or sink, and sources/
// sinks actually used.
func (g *Graph) Validate() error {
	if len(g.kinds) == 0 {
		return fmt.Errorf("skills: empty graph")
	}
	if len(g.Roots()) == 0 {
		return fmt.Errorf("skills: no main skill (every skill has a parent)")
	}
	for n, k := range g.kinds {
		switch k {
		case Skill:
			if !g.grounded(n, map[string]bool{}) {
				return fmt.Errorf("skills: skill %q has no path to a data source or sink", n)
			}
		case DataSource, DataSink:
			if len(g.parents[n]) == 0 {
				return fmt.Errorf("skills: %s %q is unused", k, n)
			}
		}
	}
	return nil
}

// grounded reports whether a path from n reaches a source or sink.
func (g *Graph) grounded(n string, seen map[string]bool) bool {
	if k := g.kinds[n]; k == DataSource || k == DataSink {
		return true
	}
	seen[n] = true
	for _, d := range g.deps[n] {
		if seen[d] {
			continue
		}
		if g.grounded(d, seen) {
			return true
		}
	}
	return false
}

// Topo returns the nodes in dependency order (dependencies before
// dependents), deterministic.
func (g *Graph) Topo() []string {
	indeg := make(map[string]int, len(g.kinds))
	for n := range g.kinds {
		indeg[n] = len(g.deps[n])
	}
	var queue []string
	for n, d := range indeg {
		if d == 0 {
			queue = append(queue, n)
		}
	}
	sort.Strings(queue)
	var out []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		var next []string
		for _, p := range g.parents[n] {
			indeg[p]--
			if indeg[p] == 0 {
				next = append(next, p)
			}
		}
		sort.Strings(next)
		queue = append(queue, next...)
	}
	return out
}

// PathsToGround enumerates all dependency chains from a skill to any
// source or sink (the paper's "chain of dependencies between abilities").
func (g *Graph) PathsToGround(from string) [][]string {
	var out [][]string
	var path []string
	var rec func(n string)
	rec = func(n string) {
		path = append(path, n)
		defer func() { path = path[:len(path)-1] }()
		if k := g.kinds[n]; k == DataSource || k == DataSink {
			cp := make([]string, len(path))
			copy(cp, path)
			out = append(out, cp)
			return
		}
		deps := g.Dependencies(n)
		for _, d := range deps {
			rec(d)
		}
	}
	if _, ok := g.kinds[from]; ok {
		rec(from)
	}
	return out
}
