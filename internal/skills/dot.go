package skills

import (
	"fmt"
	"sort"
	"strings"
)

// ToDOT renders the skill graph in Graphviz DOT format: skills as boxes,
// data sources as ellipses, data sinks as inverted houses, dependency
// edges top-down. The output is deterministic.
func (g *Graph) ToDOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n")
	for _, n := range g.Nodes() {
		k, _ := g.Kind(n)
		switch k {
		case Skill:
			fmt.Fprintf(&b, "  %q [shape=box];\n", n)
		case DataSource:
			fmt.Fprintf(&b, "  %q [shape=ellipse, style=filled, fillcolor=lightblue];\n", n)
		case DataSink:
			fmt.Fprintf(&b, "  %q [shape=invhouse, style=filled, fillcolor=lightgrey];\n", n)
		}
	}
	for _, n := range g.Nodes() {
		for _, d := range g.Dependencies(n) {
			fmt.Fprintf(&b, "  %q -> %q;\n", n, d)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ToDOTWithLevels renders the ability graph with current levels: node
// labels carry the level, and fill colour encodes the band (green full,
// orange degraded, red unavailable).
func (ag *AbilityGraph) ToDOTWithLevels(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [fontname=\"Helvetica\", style=filled];\n")
	nodes := ag.g.Nodes()
	sort.Strings(nodes)
	for _, n := range nodes {
		lvl := ag.Level(n)
		color := "palegreen"
		switch Classify(lvl) {
		case Degraded:
			color = "orange"
		case Unavailable:
			color = "tomato"
		}
		k, _ := ag.g.Kind(n)
		shape := "box"
		switch k {
		case DataSource:
			shape = "ellipse"
		case DataSink:
			shape = "invhouse"
		}
		fmt.Fprintf(&b, "  %q [shape=%s, fillcolor=%s, label=\"%s\\n%.2f\"];\n", n, shape, color, n, float64(lvl))
	}
	for _, n := range nodes {
		for _, d := range ag.g.Dependencies(n) {
			fmt.Fprintf(&b, "  %q -> %q;\n", n, d)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
