package skills

// Node names of the ACC skill graph, the paper's worked example
// (Section IV): "for realizing ACC driving, the abilities to control
// distance, to control speed and to keep the vehicle controllable for the
// driver are required..."
const (
	ACCDriving        = "acc-driving"
	ControlDistance   = "control-distance"
	ControlSpeed      = "control-speed"
	KeepControllable  = "keep-vehicle-controllable"
	EstimateIntent    = "estimate-driver-intent"
	AccelDecel        = "accelerate-decelerate"
	SelectTarget      = "select-target-object"
	PerceiveObjects   = "perceive-track-objects"
	SrcEnvSensors     = "environment-sensors"
	SrcHMI            = "hmi"
	SinkPowertrain    = "powertrain"
	SinkBrakingSystem = "braking-system"
)

// BuildACC constructs the ACC skill graph exactly as described in
// Section IV:
//
//   - ACC driving is the main skill, refined into controlling distance,
//     controlling speed, and keeping the vehicle controllable.
//   - Keeping the vehicle controllable requires estimating the driver's
//     intent and being able to decelerate.
//   - Controlling distance and speed require selecting a target object,
//     estimating driver intent, and accelerating/decelerating.
//   - Target selection requires perceiving and tracking dynamic objects,
//     which depends on the environment sensors (data source).
//   - Intent estimation requires the HMI (data source).
//   - Acceleration/deceleration requires the powertrain (data sink) and
//     the braking system (data sink).
func BuildACC() (*Graph, error) {
	g := NewGraph()
	steps := []error{
		g.AddSkill(ACCDriving),
		g.AddSkill(ControlDistance),
		g.AddSkill(ControlSpeed),
		g.AddSkill(KeepControllable),
		g.AddSkill(EstimateIntent),
		g.AddSkill(AccelDecel),
		g.AddSkill(SelectTarget),
		g.AddSkill(PerceiveObjects),
		g.AddSource(SrcEnvSensors),
		g.AddSource(SrcHMI),
		g.AddSink(SinkPowertrain),
		g.AddSink(SinkBrakingSystem),

		g.Depend(ACCDriving, ControlDistance),
		g.Depend(ACCDriving, ControlSpeed),
		g.Depend(ACCDriving, KeepControllable),

		g.Depend(ControlDistance, SelectTarget),
		g.Depend(ControlDistance, EstimateIntent),
		g.Depend(ControlDistance, AccelDecel),

		g.Depend(ControlSpeed, SelectTarget),
		g.Depend(ControlSpeed, EstimateIntent),
		g.Depend(ControlSpeed, AccelDecel),

		g.Depend(KeepControllable, EstimateIntent),
		g.Depend(KeepControllable, AccelDecel),

		g.Depend(SelectTarget, PerceiveObjects),
		g.Depend(PerceiveObjects, SrcEnvSensors),
		g.Depend(EstimateIntent, SrcHMI),

		g.Depend(AccelDecel, SinkPowertrain),
		g.Depend(AccelDecel, SinkBrakingSystem),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// InstantiateACC builds the ACC ability graph ready for monitoring.
func InstantiateACC() (*AbilityGraph, error) {
	g, err := BuildACC()
	if err != nil {
		return nil, err
	}
	return Instantiate(g)
}
