package skills

import (
	"testing"
	"testing/quick"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	if err := g.AddSkill("drive"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddSkill("drive"); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := g.AddSource("sensor"); err != nil {
		t.Fatal(err)
	}
	if err := g.Depend("drive", "sensor"); err != nil {
		t.Fatal(err)
	}
	if err := g.Depend("sensor", "drive"); err == nil {
		t.Fatal("source with dependency accepted")
	}
	if err := g.Depend("drive", "drive"); err == nil {
		t.Fatal("self-dependency accepted")
	}
	if err := g.Depend("drive", "ghost"); err == nil {
		t.Fatal("unknown child accepted")
	}
	if k, ok := g.Kind("sensor"); !ok || k != DataSource {
		t.Fatalf("Kind = %v %v", k, ok)
	}
}

func TestCycleRejected(t *testing.T) {
	g := NewGraph()
	for _, n := range []string{"a", "b", "c"} {
		if err := g.AddSkill(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Depend("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.Depend("b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := g.Depend("c", "a"); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestDependIdempotent(t *testing.T) {
	g := NewGraph()
	if err := g.AddSkill("a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddSource("s"); err != nil {
		t.Fatal(err)
	}
	if err := g.Depend("a", "s"); err != nil {
		t.Fatal(err)
	}
	if err := g.Depend("a", "s"); err != nil {
		t.Fatal(err)
	}
	if len(g.Dependencies("a")) != 1 {
		t.Fatalf("deps = %v", g.Dependencies("a"))
	}
}

func TestValidate(t *testing.T) {
	g := NewGraph()
	if err := g.Validate(); err == nil {
		t.Fatal("empty graph valid")
	}
	if err := g.AddSkill("floating"); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("ungrounded skill valid")
	}
	if err := g.AddSource("unused"); err != nil {
		t.Fatal(err)
	}
	if err := g.Depend("floating", "unused"); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildACC(t *testing.T) {
	g, err := BuildACC()
	if err != nil {
		t.Fatal(err)
	}
	roots := g.Roots()
	if len(roots) != 1 || roots[0] != ACCDriving {
		t.Fatalf("roots = %v", roots)
	}
	if len(g.Nodes()) != 12 {
		t.Fatalf("nodes = %d", len(g.Nodes()))
	}
	// Paper: acceleration/deceleration requires powertrain AND braking.
	deps := g.Dependencies(AccelDecel)
	if len(deps) != 2 || deps[0] != SinkBrakingSystem || deps[1] != SinkPowertrain {
		t.Fatalf("accel-decel deps = %v", deps)
	}
	// Every grounded path from the root ends at a source or sink.
	paths := g.PathsToGround(ACCDriving)
	if len(paths) == 0 {
		t.Fatal("no grounded paths")
	}
	for _, p := range paths {
		last := p[len(p)-1]
		if k, _ := g.Kind(last); k == Skill {
			t.Fatalf("path ends on a skill: %v", p)
		}
	}
}

func TestTopoOrder(t *testing.T) {
	g, err := BuildACC()
	if err != nil {
		t.Fatal(err)
	}
	order := g.Topo()
	if len(order) != 12 {
		t.Fatalf("topo covers %d nodes", len(order))
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	// Every dependency precedes its dependent.
	for _, n := range g.Nodes() {
		for _, d := range g.Dependencies(n) {
			if pos[d] >= pos[n] {
				t.Fatalf("topo violation: %s (dep of %s) at %d >= %d", d, n, pos[d], pos[n])
			}
		}
	}
}

func TestPropagationMinAggregate(t *testing.T) {
	ag, err := InstantiateACC()
	if err != nil {
		t.Fatal(err)
	}
	if ag.Level(ACCDriving) != 1 {
		t.Fatalf("initial level = %v", ag.Level(ACCDriving))
	}
	// Degrade the environment sensors: the whole chain up to the root
	// takes the min.
	if err := ag.SetHealth(SrcEnvSensors, 0.5); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{PerceiveObjects, SelectTarget, ControlDistance, ControlSpeed, ACCDriving} {
		if ag.Level(n) != 0.5 {
			t.Fatalf("%s level = %v, want 0.5", n, ag.Level(n))
		}
	}
	// Intent estimation unaffected (separate chain).
	if ag.Level(EstimateIntent) != 1 {
		t.Fatalf("intent level = %v", ag.Level(EstimateIntent))
	}
	// KeepControllable does not depend on sensors: unaffected.
	if ag.Level(KeepControllable) != 1 {
		t.Fatalf("keep-controllable level = %v", ag.Level(KeepControllable))
	}
}

func TestBandTransitionsAndListeners(t *testing.T) {
	ag, err := InstantiateACC()
	if err != nil {
		t.Fatal(err)
	}
	var changes []LevelChange
	ag.OnChange(func(c LevelChange) { changes = append(changes, c) })
	if err := ag.SetHealth(SinkBrakingSystem, 0.5); err != nil {
		t.Fatal(err)
	}
	// braking-system, accel-decel, all three mid skills and the root
	// transition Full -> Degraded.
	if len(changes) == 0 {
		t.Fatal("no change notifications")
	}
	for _, c := range changes {
		if c.Old != Full || c.New != Degraded {
			t.Fatalf("unexpected transition: %+v", c)
		}
	}
	if ag.BandOf(ACCDriving) != Degraded {
		t.Fatalf("root band = %v", ag.BandOf(ACCDriving))
	}
	// Recovery.
	changes = nil
	if err := ag.SetHealth(SinkBrakingSystem, 1); err != nil {
		t.Fatal(err)
	}
	if ag.BandOf(ACCDriving) != Full {
		t.Fatal("root did not recover")
	}
	if len(changes) == 0 {
		t.Fatal("no recovery notifications")
	}
}

func TestClassify(t *testing.T) {
	cases := map[Level]Band{0: Unavailable, 0.19: Unavailable, 0.2: Degraded, 0.5: Degraded, 0.8: Full, 1: Full}
	for l, want := range cases {
		if got := Classify(l); got != want {
			t.Fatalf("Classify(%v) = %v, want %v", l, got, want)
		}
	}
	if Unavailable.String() != "unavailable" || Full.String() != "full" {
		t.Fatal("band names")
	}
}

func TestTacticFiresOnceAndRearms(t *testing.T) {
	ag, err := InstantiateACC()
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	tac := &Tactic{
		Name: "limit-speed", Skill: ACCDriving, Trigger: 0.8,
		Apply: func(*AbilityGraph) { fired++ },
	}
	if err := ag.RegisterTactic(tac); err != nil {
		t.Fatal(err)
	}
	if err := ag.SetHealth(SrcEnvSensors, 0.5); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// Further degradation does not re-fire while below trigger.
	if err := ag.SetHealth(SrcEnvSensors, 0.3); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d after further degradation", fired)
	}
	// Recovery re-arms; next degradation fires again.
	if err := ag.SetHealth(SrcEnvSensors, 1); err != nil {
		t.Fatal(err)
	}
	if err := ag.SetHealth(SrcEnvSensors, 0.4); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if tac.Fired != 2 {
		t.Fatalf("tactic counter = %d", tac.Fired)
	}
}

func TestTacticValidation(t *testing.T) {
	ag, err := InstantiateACC()
	if err != nil {
		t.Fatal(err)
	}
	if err := ag.RegisterTactic(&Tactic{Name: "x", Skill: SrcHMI, Trigger: 0.5}); err == nil {
		t.Fatal("tactic on source accepted")
	}
	if err := ag.RegisterTactic(&Tactic{Name: "x", Skill: ACCDriving, Trigger: 0}); err == nil {
		t.Fatal("zero trigger accepted")
	}
}

func TestRedundantAggregate(t *testing.T) {
	// Perception backed by two redundant sensors: one failing does not
	// degrade the ability.
	g := NewGraph()
	for _, e := range []error{
		g.AddSkill("perceive"), g.AddSource("radar"), g.AddSource("lidar"),
		g.Depend("perceive", "radar"), g.Depend("perceive", "lidar"),
	} {
		if e != nil {
			t.Fatal(e)
		}
	}
	ag, err := Instantiate(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ag.SetAggregate("perceive", RedundantAggregate); err != nil {
		t.Fatal(err)
	}
	if err := ag.SetHealth("radar", 0); err != nil {
		t.Fatal(err)
	}
	if ag.Level("perceive") != 1 {
		t.Fatalf("redundant perceive = %v, want 1", ag.Level("perceive"))
	}
	if err := ag.SetHealth("lidar", 0.3); err != nil {
		t.Fatal(err)
	}
	if ag.Level("perceive") != 0.3 {
		t.Fatalf("perceive = %v, want 0.3", ag.Level("perceive"))
	}
}

func TestWeightedAggregate(t *testing.T) {
	got := WeightedAggregate(1, []Level{0.5, 1})
	if got != 0.75 {
		t.Fatalf("weighted = %v", got)
	}
	if WeightedAggregate(0.8, nil) != 0.8 {
		t.Fatal("weighted with no deps")
	}
}

func TestWeakestChain(t *testing.T) {
	ag, err := InstantiateACC()
	if err != nil {
		t.Fatal(err)
	}
	if err := ag.SetHealth(SrcHMI, 0.1); err != nil {
		t.Fatal(err)
	}
	chain := ag.WeakestChain(ACCDriving)
	if len(chain) == 0 || chain[len(chain)-1] != SrcHMI {
		t.Fatalf("weakest chain = %v, want ending at hmi", chain)
	}
}

func TestDegradedSorted(t *testing.T) {
	ag, err := InstantiateACC()
	if err != nil {
		t.Fatal(err)
	}
	if err := ag.SetHealth(SrcEnvSensors, 0.1); err != nil {
		t.Fatal(err)
	}
	d := ag.Degraded()
	if len(d) == 0 {
		t.Fatal("no degraded nodes")
	}
	// Worst first.
	for i := 1; i < len(d); i++ {
		if ag.Level(d[i-1]) > ag.Level(d[i]) {
			t.Fatalf("not sorted: %v", d)
		}
	}
}

func TestSetHealthClamped(t *testing.T) {
	ag, err := InstantiateACC()
	if err != nil {
		t.Fatal(err)
	}
	if err := ag.SetHealth(SrcHMI, -5); err != nil {
		t.Fatal(err)
	}
	if ag.Health(SrcHMI) != 0 {
		t.Fatal("not clamped to 0")
	}
	if err := ag.SetHealth(SrcHMI, 7); err != nil {
		t.Fatal(err)
	}
	if ag.Health(SrcHMI) != 1 {
		t.Fatal("not clamped to 1")
	}
	if err := ag.SetHealth("ghost", 1); err == nil {
		t.Fatal("unknown node accepted")
	}
}

// Property: propagation is monotone — lowering any single node's health
// never raises any node's level.
func TestPropPropagationMonotone(t *testing.T) {
	f := func(nodeIdx uint8, healthRaw uint16) bool {
		ag, err := InstantiateACC()
		if err != nil {
			return false
		}
		nodes := ag.Graph().Nodes()
		target := nodes[int(nodeIdx)%len(nodes)]
		before := ag.Snapshot()
		h := Level(float64(healthRaw) / 65536)
		if err := ag.SetHealth(target, h); err != nil {
			return false
		}
		after := ag.Snapshot()
		for n := range before {
			if after[n] > before[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: root level always equals the min over its grounded chains'
// minimum under pure MinAggregate.
func TestPropRootEqualsWeakestChainMin(t *testing.T) {
	f := func(h1, h2, h3 uint16) bool {
		ag, err := InstantiateACC()
		if err != nil {
			return false
		}
		_ = ag.SetHealth(SrcEnvSensors, Level(float64(h1)/65536))
		_ = ag.SetHealth(SrcHMI, Level(float64(h2)/65536))
		_ = ag.SetHealth(SinkBrakingSystem, Level(float64(h3)/65536))
		chain := ag.WeakestChain(ACCDriving)
		m := Level(2)
		for _, n := range chain {
			if ag.Health(n) < m {
				m = ag.Health(n)
			}
		}
		return ag.Level(ACCDriving) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	ag, err := InstantiateACC()
	if err != nil {
		t.Fatal(err)
	}
	snap := ag.Snapshot()
	snap[ACCDriving] = 0
	if ag.Level(ACCDriving) != 1 {
		t.Fatal("snapshot aliases live levels")
	}
}
