package skills

import (
	"strings"
	"testing"
)

func TestToDOT(t *testing.T) {
	g, err := BuildACC()
	if err != nil {
		t.Fatal(err)
	}
	dot := g.ToDOT("acc")
	if !strings.HasPrefix(dot, "digraph \"acc\" {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("malformed DOT:\n%s", dot)
	}
	// All nodes and a known edge appear.
	for _, n := range g.Nodes() {
		if !strings.Contains(dot, "\""+n+"\"") {
			t.Fatalf("node %q missing", n)
		}
	}
	if !strings.Contains(dot, "\"accelerate-decelerate\" -> \"powertrain\"") {
		t.Fatal("edge missing")
	}
	// Shapes by kind.
	if !strings.Contains(dot, "\"hmi\" [shape=ellipse") {
		t.Fatal("source shape wrong")
	}
	if !strings.Contains(dot, "\"braking-system\" [shape=invhouse") {
		t.Fatal("sink shape wrong")
	}
	// Deterministic.
	if dot != g.ToDOT("acc") {
		t.Fatal("non-deterministic output")
	}
}

func TestToDOTWithLevels(t *testing.T) {
	ag, err := InstantiateACC()
	if err != nil {
		t.Fatal(err)
	}
	if err := ag.SetHealth(SrcEnvSensors, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := ag.SetHealth(SrcHMI, 0.1); err != nil {
		t.Fatal(err)
	}
	dot := ag.ToDOTWithLevels("abilities")
	if !strings.Contains(dot, "fillcolor=orange") {
		t.Fatal("no degraded colouring")
	}
	if !strings.Contains(dot, "fillcolor=tomato") {
		t.Fatal("no unavailable colouring")
	}
	if !strings.Contains(dot, "fillcolor=palegreen") {
		t.Fatal("no full colouring")
	}
	if !strings.Contains(dot, "0.50") || !strings.Contains(dot, "0.10") {
		t.Fatal("levels missing from labels")
	}
}
