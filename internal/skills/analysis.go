package skills

import "sort"

// Development-process analyses (Section IV: "skill graphs may guide the
// development process by revealing necessary redundancies in the system to
// achieve identified safety goals. It can also be employed to visualize
// error propagation and performance degradation in the system.")

// SinglePointsOfFailure returns the nodes (other than the root itself)
// that appear on *every* grounded dependency chain of the root skill.
// Under pure min-aggregation every dependency is critical; the chain-based
// notion identifies the nodes that remain critical even in the best case —
// when every skill exploits redundant alternatives (RedundantAggregate).
// These are exactly the places where adding a parallel chain (another
// sensor, another actuator, a diverse implementation) buys robustness.
func (g *Graph) SinglePointsOfFailure(root string) []string {
	paths := g.PathsToGround(root)
	if len(paths) == 0 {
		return nil
	}
	counts := make(map[string]int)
	for _, p := range paths {
		seen := make(map[string]bool, len(p))
		for _, n := range p {
			if n == root || seen[n] {
				continue
			}
			seen[n] = true
			counts[n]++
		}
	}
	var out []string
	for n, c := range counts {
		if c == len(paths) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// RedundancyProposal suggests, per single point of failure, the node to
// duplicate — the analysis a safety engineer performs on the skill graph
// during development.
type RedundancyProposal struct {
	// Node is the single point of failure.
	Node string
	// Kind is the node's kind (a redundant source means another sensor;
	// a redundant sink means another actuator; a redundant skill means a
	// diverse implementation).
	Kind NodeKind
	// AffectedChains is how many of the root's grounded chains pass
	// through the node.
	AffectedChains int
}

// ProposeRedundancies lists redundancy proposals for a root skill, most
// critical (most chains affected) first.
func (g *Graph) ProposeRedundancies(root string) []RedundancyProposal {
	paths := g.PathsToGround(root)
	spofs := g.SinglePointsOfFailure(root)
	var out []RedundancyProposal
	for _, n := range spofs {
		k, _ := g.Kind(n)
		affected := 0
		for _, p := range paths {
			for _, pn := range p {
				if pn == n {
					affected++
					break
				}
			}
		}
		out = append(out, RedundancyProposal{Node: n, Kind: k, AffectedChains: affected})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AffectedChains != out[j].AffectedChains {
			return out[i].AffectedChains > out[j].AffectedChains
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// ErrorPropagation returns, for a failing node, the set of skills whose
// level would be pulled down under pure min-aggregation — the paper's
// "visualize error propagation" use case, computed statically on the skill
// graph (no instantiation needed).
func (g *Graph) ErrorPropagation(failing string) []string {
	if _, ok := g.kinds[failing]; !ok {
		return nil
	}
	affected := map[string]bool{}
	var mark func(n string)
	mark = func(n string) {
		for _, parent := range g.parents[n] {
			if !affected[parent] {
				affected[parent] = true
				mark(parent)
			}
		}
	}
	mark(failing)
	out := make([]string, 0, len(affected))
	for n := range affected {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
