package skills

import (
	"testing"
	"testing/quick"
)

func TestSinglePointsOfFailureACC(t *testing.T) {
	g, err := BuildACC()
	if err != nil {
		t.Fatal(err)
	}
	spofs := g.SinglePointsOfFailure(ACCDriving)
	// Every grounded chain of ACC driving passes through one of the three
	// mid skills, but no single mid skill is on all chains. What *is* on
	// every chain... let's reason: chains via keep-controllable ->
	// estimate-intent -> hmi, via control-distance -> select-target ->
	// perceive -> sensors, via control-* -> accel-decel -> powertrain.
	// No shared node exists on ALL chains, so the set should be empty —
	// ACC as modeled has structural redundancy at the top level.
	if len(spofs) != 0 {
		t.Fatalf("unexpected SPOFs: %v", spofs)
	}

	// A sub-skill with a single grounding is different: every chain of
	// select-target passes through perceive-track-objects and the sensor
	// source.
	spofs = g.SinglePointsOfFailure(SelectTarget)
	if len(spofs) != 2 || spofs[0] != SrcEnvSensors || spofs[1] != PerceiveObjects {
		t.Fatalf("select-target SPOFs = %v", spofs)
	}
}

func TestSinglePointsOfFailureLinear(t *testing.T) {
	g := NewGraph()
	for _, e := range []error{
		g.AddSkill("root"), g.AddSkill("mid"), g.AddSource("s"),
		g.Depend("root", "mid"), g.Depend("mid", "s"),
	} {
		if e != nil {
			t.Fatal(e)
		}
	}
	spofs := g.SinglePointsOfFailure("root")
	if len(spofs) != 2 || spofs[0] != "mid" || spofs[1] != "s" {
		t.Fatalf("SPOFs = %v", spofs)
	}
}

func TestProposeRedundanciesOrdering(t *testing.T) {
	g, err := BuildACC()
	if err != nil {
		t.Fatal(err)
	}
	props := g.ProposeRedundancies(SelectTarget)
	if len(props) != 2 {
		t.Fatalf("proposals = %v", props)
	}
	for _, p := range props {
		if p.AffectedChains != 1 {
			t.Fatalf("affected chains = %d", p.AffectedChains)
		}
	}
	// Adding a redundant sensor removes both SPOFs? No: adding a second
	// source under perceive-track-objects removes the *source* SPOF but
	// perceive stays.
	if err := g.AddSource("lidar"); err != nil {
		t.Fatal(err)
	}
	if err := g.Depend(PerceiveObjects, "lidar"); err != nil {
		t.Fatal(err)
	}
	spofs := g.SinglePointsOfFailure(SelectTarget)
	if len(spofs) != 1 || spofs[0] != PerceiveObjects {
		t.Fatalf("SPOFs after redundancy = %v", spofs)
	}
}

func TestErrorPropagation(t *testing.T) {
	g, err := BuildACC()
	if err != nil {
		t.Fatal(err)
	}
	// Braking system failure propagates to accel-decel, all three mid
	// skills and the root.
	affected := g.ErrorPropagation(SinkBrakingSystem)
	want := map[string]bool{
		AccelDecel: true, ControlDistance: true, ControlSpeed: true,
		KeepControllable: true, ACCDriving: true,
	}
	if len(affected) != len(want) {
		t.Fatalf("affected = %v", affected)
	}
	for _, n := range affected {
		if !want[n] {
			t.Fatalf("unexpected affected node %q", n)
		}
	}
	// HMI failure does not touch target selection.
	affected = g.ErrorPropagation(SrcHMI)
	for _, n := range affected {
		if n == SelectTarget || n == PerceiveObjects {
			t.Fatalf("hmi failure propagated to %q", n)
		}
	}
	if got := g.ErrorPropagation("ghost"); got != nil {
		t.Fatalf("unknown node propagation = %v", got)
	}
}

// Property: static error propagation agrees with dynamic min-aggregation:
// zeroing a node's health drives exactly the ErrorPropagation set (plus
// the node itself) to zero level among previously-full nodes.
func TestPropStaticMatchesDynamicPropagation(t *testing.T) {
	f := func(idx uint8) bool {
		g, err := BuildACC()
		if err != nil {
			return false
		}
		nodes := g.Nodes()
		target := nodes[int(idx)%len(nodes)]
		ag, err := Instantiate(g)
		if err != nil {
			return false
		}
		if err := ag.SetHealth(target, 0); err != nil {
			return false
		}
		static := map[string]bool{target: true}
		for _, n := range g.ErrorPropagation(target) {
			static[n] = true
		}
		for _, n := range nodes {
			dynamicZero := ag.Level(n) == 0
			if dynamicZero != static[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
