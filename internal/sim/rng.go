package sim

import "math"

// RNG is a small deterministic pseudo-random source (SplitMix64 core with a
// xorshift finalizer). All stochastic behaviour in the repository — sensor
// noise, fault injection, workload jitter — must draw from an RNG seeded
// explicitly, so that every experiment is bit-reproducible.
//
// We implement the generator ourselves rather than wrapping math/rand so the
// stream is stable across Go releases.
type RNG struct {
	state uint64
	// cached spare normal deviate for Box-Muller
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed. Seed 0 is remapped to a fixed
// non-zero constant so the all-zero state cannot occur.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Split derives an independent generator from r, keyed by label, without
// perturbing r's own stream in a data-dependent way. Useful to give each
// subsystem its own stream.
func (r *RNG) Split(label uint64) *RNG {
	s := r.Uint64() ^ (label * 0xbf58476d1ce4e5b9)
	return NewRNG(s)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return mean + stddev*u*m
}

// Exp returns an exponentially distributed float64 with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("sim: Exp with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Jitter returns base scaled by a uniform factor in [1-frac, 1+frac].
func (r *RNG) Jitter(base, frac float64) float64 {
	return base * r.Uniform(1-frac, 1+frac)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
