// Package sim provides a deterministic discrete-event simulation kernel
// shared by all simulators in this repository (the run-time environment,
// the CAN bus, the vehicle dynamics loop, the thermal model, ...).
//
// The kernel is intentionally minimal: a virtual clock, a priority queue of
// events, and a deterministic random number source. All higher-level
// simulators compose these primitives. Determinism is a hard requirement —
// the experiments in EXPERIMENTS.md must be exactly reproducible — so all
// randomness must flow through RNG and event ordering is total (time, then
// insertion sequence).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
// It is deliberately distinct from time.Time: simulations never consult
// the wall clock.
type Time int64

// Common virtual durations, mirroring time package granularity.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts t to a time.Duration for printing.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the virtual time using time.Duration notation.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns t expressed in seconds as a float64.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts seconds to a virtual Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Micros returns t expressed in microseconds as a float64.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Event is a scheduled callback. The callback runs with the simulator
// clock set to the event's due time.
type Event struct {
	due    Time
	seq    uint64
	fn     func()
	index  int // heap index; -1 when not queued
	cancel bool
}

// Cancel marks the event so that its callback will not run. Cancelling an
// already-fired event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancel = true
	}
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.cancel }

// Due returns the virtual time at which the event fires.
func (e *Event) Due() Time { return e.due }

// eventQueue implements heap.Interface with (due, seq) total order.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].due != q[j].due {
		return q[i].due < q[j].due
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator owns a virtual clock and an event queue.
// The zero value is not usable; call New.
type Simulator struct {
	now    Time
	queue  eventQueue
	seq    uint64
	fired  uint64
	limit  uint64 // safety valve against runaway simulations; 0 = unlimited
	halted bool
}

// ErrEventLimit is returned by Run variants when the configured event limit
// is exceeded, which almost always indicates a scheduling loop.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// New returns an empty simulator with the clock at 0.
func New() *Simulator {
	return &Simulator{}
}

// SetEventLimit installs a safety valve: Run variants return ErrEventLimit
// after firing n events. n == 0 disables the limit.
func (s *Simulator) SetEventLimit(n uint64) { s.limit = n }

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of queued (uncancelled and cancelled) events.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule enqueues fn to run after delay. A negative delay schedules at the
// current time (events never run in the past).
func (s *Simulator) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt enqueues fn at absolute virtual time at. Times before Now are
// clamped to Now.
func (s *Simulator) ScheduleAt(at Time, fn func()) *Event {
	if fn == nil {
		panic("sim: ScheduleAt with nil callback")
	}
	if at < s.now {
		at = s.now
	}
	e := &Event{due: at, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Halt stops the current Run variant after the in-flight event completes.
func (s *Simulator) Halt() { s.halted = true }

// step fires the earliest event. Returns false when the queue is empty.
func (s *Simulator) step() (bool, error) {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		if e.due < s.now {
			return false, fmt.Errorf("sim: event due %v before now %v", e.due, s.now)
		}
		s.now = e.due
		s.fired++
		e.fn()
		if s.limit != 0 && s.fired > s.limit {
			return false, ErrEventLimit
		}
		return true, nil
	}
	return false, nil
}

// Run fires events until the queue drains or Halt is called.
func (s *Simulator) Run() error {
	s.halted = false
	for !s.halted {
		ok, err := s.step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return nil
}

// RunUntil fires events with due time <= deadline, then advances the clock
// to the deadline (if it is in the future) and returns.
func (s *Simulator) RunUntil(deadline Time) error {
	s.halted = false
	for !s.halted {
		if len(s.queue) == 0 {
			break
		}
		// Peek at the earliest live event.
		next := s.queue[0]
		if next.cancel {
			heap.Pop(&s.queue)
			continue
		}
		if next.due > deadline {
			break
		}
		if _, err := s.step(); err != nil {
			return err
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
	return nil
}

// RunFor advances the simulation by d virtual time units.
func (s *Simulator) RunFor(d Time) error {
	if d < 0 {
		d = 0
	}
	return s.RunUntil(s.now + d)
}

// Every schedules fn to run periodically with the given period, starting
// after one period. Returning false from fn stops the recurrence.
// The returned Event is the *first* occurrence; cancelling it before it
// fires stops the series.
func (s *Simulator) Every(period Time, fn func() bool) *Event {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	var ev *Event
	var tick func()
	tick = func() {
		if !fn() {
			return
		}
		ev = s.Schedule(period, tick)
	}
	ev = s.Schedule(period, tick)
	return ev
}
