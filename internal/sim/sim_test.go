package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(30, func() { got = append(got, 3) })
	s.Schedule(10, func() { got = append(got, 1) })
	s.Schedule(20, func() { got = append(got, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %v, want 30", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	e := s.Schedule(10, func() { ran = true })
	e.Cancel()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New()
	s.Schedule(100, func() {
		s.Schedule(-50, func() {
			if s.Now() != 100 {
				t.Errorf("negative delay ran at %v, want 100", s.Now())
			}
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	s.Schedule(10, func() {})
	s.Schedule(1000, func() {})
	if err := s.RunUntil(500); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 500 {
		t.Fatalf("Now = %v, want 500", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 1000 {
		t.Fatalf("Now = %v, want 1000", s.Now())
	}
}

func TestRunFor(t *testing.T) {
	s := New()
	ticks := 0
	s.Every(10, func() bool { ticks++; return true })
	if err := s.RunFor(105); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
}

func TestEveryStops(t *testing.T) {
	s := New()
	ticks := 0
	s.Every(10, func() bool {
		ticks++
		return ticks < 3
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
}

func TestEveryCancelFirst(t *testing.T) {
	s := New()
	ticks := 0
	e := s.Every(10, func() bool { ticks++; return true })
	e.Cancel()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 0 {
		t.Fatalf("ticks = %d, want 0 after cancelling first occurrence", ticks)
	}
}

func TestHalt(t *testing.T) {
	s := New()
	n := 0
	s.Every(1, func() bool {
		n++
		if n == 5 {
			s.Halt()
		}
		return true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
}

func TestEventLimit(t *testing.T) {
	s := New()
	s.SetEventLimit(100)
	s.Every(1, func() bool { return true }) // never stops
	if err := s.Run(); err != ErrEventLimit {
		t.Fatalf("err = %v, want ErrEventLimit", err)
	}
}

// Property: for any set of delays, events fire in nondecreasing time order.
func TestPropEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var fired []Time
		for _, d := range delays {
			s.Schedule(Time(d), func() { fired = append(fired, s.Now()) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: fired times equal the sorted multiset of scheduled times.
func TestPropFiredTimesMatchScheduled(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var fired []int
		for _, d := range delays {
			s.Schedule(Time(d), func() { fired = append(fired, int(s.Now())) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		want := make([]int, len(delays))
		for i, d := range delays {
			want[i] = int(d)
		}
		sort.Ints(want)
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSeedZeroRemapped(t *testing.T) {
	a := NewRNG(0)
	b := NewRNG(0)
	if a.Uint64() != b.Uint64() {
		t.Fatal("seed-0 streams differ")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) did not cover all values: %v", seen)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("mean = %v, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(0.5)
	}
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Fatalf("Exp(0.5) mean = %v, want ~2", mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(21)
	a := r.Split(1)
	b := r.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams look identical (%d/100 collisions)", same)
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRNG(23)
	if r.Bool(0) {
		t.Fatal("Bool(0) = true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) = false")
	}
}

func TestTimeHelpers(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Fatalf("Seconds = %v, want 2", got)
	}
	if got := (5 * Microsecond).Micros(); got != 5 {
		t.Fatalf("Micros = %v, want 5", got)
	}
	if (1500 * Millisecond).String() != "1.5s" {
		t.Fatalf("String = %q", (1500 * Millisecond).String())
	}
}
