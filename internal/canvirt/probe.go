package canvirt

import (
	"fmt"

	"repro/internal/can"
	"repro/internal/sim"
	"repro/internal/vm"
)

// ProbeConfig parameterizes a round-trip latency measurement (experiment
// E1): a host — native or virtualized — sends request frames to an echo
// device on the bus and timestamps the matching responses.
type ProbeConfig struct {
	// BitsPerSec is the bus bitrate (default 1 Mbit/s, as in [8]).
	BitsPerSec int64
	// VMs is the number of provisioned VFs (virtualized runs only).
	VMs int
	// Probes is the number of round trips to measure.
	Probes int
	// PayloadBytes is the request/response payload size (0..8).
	PayloadBytes int
	// EchoTurnaround is the echo device's processing time; identical in
	// native and virtualized runs so it cancels in the difference.
	EchoTurnaround sim.Time
}

func (c *ProbeConfig) defaults() {
	if c.BitsPerSec == 0 {
		c.BitsPerSec = 1_000_000
	}
	if c.VMs <= 0 {
		c.VMs = 1
	}
	if c.Probes <= 0 {
		c.Probes = 100
	}
	if c.EchoTurnaround == 0 {
		c.EchoTurnaround = 1 * sim.Microsecond
	}
}

// probe IDs: requests use a mid-priority ID, responses the next one.
const (
	probeReqID  = 0x200
	probeRespID = 0x201
)

// RTTStats summarizes a set of round-trip times.
type RTTStats struct {
	Samples []sim.Time
}

// Min returns the smallest sample (0 if empty).
func (s RTTStats) Min() sim.Time { return s.fold(func(a, b sim.Time) bool { return b < a }) }

// Max returns the largest sample (0 if empty).
func (s RTTStats) Max() sim.Time { return s.fold(func(a, b sim.Time) bool { return b > a }) }

func (s RTTStats) fold(better func(cur, cand sim.Time) bool) sim.Time {
	if len(s.Samples) == 0 {
		return 0
	}
	out := s.Samples[0]
	for _, v := range s.Samples[1:] {
		if better(out, v) {
			out = v
		}
	}
	return out
}

// Mean returns the average sample.
func (s RTTStats) Mean() sim.Time {
	if len(s.Samples) == 0 {
		return 0
	}
	var sum sim.Time
	for _, v := range s.Samples {
		sum += v
	}
	return sum / sim.Time(len(s.Samples))
}

// MeasureNative runs the echo experiment with a native controller and
// returns the round-trip statistics.
func MeasureNative(cfg ProbeConfig) (RTTStats, error) {
	cfg.defaults()
	s := sim.New()
	bus := can.NewBus(s, cfg.BitsPerSec)
	host := NewNative(s, bus, "host")
	host.SetFilter(can.MaskFilter(0x7FF, probeRespID))
	attachEcho(s, bus, cfg)

	var stats RTTStats
	var t0 sim.Time
	var sendProbe func()
	host.SetRx(func(f can.Frame, at sim.Time) {
		stats.Samples = append(stats.Samples, at-t0)
		if len(stats.Samples) < cfg.Probes {
			sendProbe()
		}
	})
	sendProbe = func() {
		t0 = s.Now()
		if err := host.Send(can.Frame{ID: probeReqID, Data: make([]byte, cfg.PayloadBytes)}, nil); err != nil {
			panic(err)
		}
	}
	sendProbe()
	if err := s.Run(); err != nil {
		return RTTStats{}, err
	}
	if len(stats.Samples) != cfg.Probes {
		return stats, fmt.Errorf("canvirt: native probe collected %d/%d samples", len(stats.Samples), cfg.Probes)
	}
	return stats, nil
}

// MeasureVirtualized runs the echo experiment with the probing guest
// behind a virtualized controller provisioned with cfg.VMs virtual
// functions, and returns the round-trip statistics.
func MeasureVirtualized(cfg ProbeConfig) (RTTStats, error) {
	cfg.defaults()
	s := sim.New()
	bus := can.NewBus(s, cfg.BitsPerSec)
	hv := vm.NewHypervisor(s, vm.DefaultCostModel(), 1<<20)
	dom0, err := hv.CreateVM("dom0", 1024, 0.1, true)
	if err != nil {
		return RTTStats{}, err
	}
	_, pf, err := New(s, hv, bus, "vcan", dom0, DefaultLayerCosts())
	if err != nil {
		return RTTStats{}, err
	}
	var probeVF *VF
	for i := 0; i < cfg.VMs; i++ {
		g, err := hv.CreateVM(fmt.Sprintf("vm%d", i), 1024, 0.05, false)
		if err != nil {
			return RTTStats{}, err
		}
		// Only VF 0 listens for probe responses; the others filter them out
		// (distinct ID ranges per VM, as the PF would configure in practice).
		filter := can.MaskFilter(0x7FF, probeRespID)
		if i != 0 {
			filter = can.MaskFilter(0x7FF, uint32(0x400+i))
		}
		vf, err := pf.ProvisionVF(g, filter)
		if err != nil {
			return RTTStats{}, err
		}
		if i == 0 {
			probeVF = vf
		}
	}
	attachEcho(s, bus, cfg)

	var stats RTTStats
	var t0 sim.Time
	var sendProbe func()
	probeVF.SetRx(func(f can.Frame, at sim.Time) {
		stats.Samples = append(stats.Samples, at-t0)
		if len(stats.Samples) < cfg.Probes {
			sendProbe()
		}
	})
	sendProbe = func() {
		t0 = s.Now()
		if err := probeVF.Send(can.Frame{ID: probeReqID, Data: make([]byte, cfg.PayloadBytes)}, nil); err != nil {
			panic(err)
		}
	}
	sendProbe()
	if err := s.Run(); err != nil {
		return RTTStats{}, err
	}
	if len(stats.Samples) != cfg.Probes {
		return stats, fmt.Errorf("canvirt: virtualized probe collected %d/%d samples", len(stats.Samples), cfg.Probes)
	}
	return stats, nil
}

// attachEcho attaches the echo device: it answers every request frame with
// a response frame of the same payload after the configured turnaround.
func attachEcho(s *sim.Simulator, bus *can.Bus, cfg ProbeConfig) {
	echo := bus.Attach("echo")
	echo.SetFilter(can.MaskFilter(0x7FF, probeReqID))
	echo.SetRx(func(f can.Frame, at sim.Time) {
		resp := can.Frame{ID: probeRespID, Data: append([]byte(nil), f.Data...)}
		s.Schedule(cfg.EchoTurnaround, func() {
			if err := echo.Send(resp, nil); err != nil {
				panic(err)
			}
		})
	})
}

// MeasureVirtualizedLoaded runs the echo experiment while every other VM
// floods the bus with lower-priority background frames. Because the
// virtualization layer preserves CAN-ID priority across VFs, the probe's
// high-priority request suffers at most one frame of blocking per leg —
// the experiment that demonstrates "CAN messages from multiple VMs are
// properly isolated and transmitted with respect to their bus priority".
// bgPeriod is each background VM's transmission period.
func MeasureVirtualizedLoaded(cfg ProbeConfig, bgPeriod sim.Time) (RTTStats, error) {
	cfg.defaults()
	if cfg.VMs < 2 {
		return RTTStats{}, fmt.Errorf("canvirt: loaded probe needs >= 2 VMs")
	}
	s := sim.New()
	bus := can.NewBus(s, cfg.BitsPerSec)
	hv := vm.NewHypervisor(s, vm.DefaultCostModel(), 1<<20)
	dom0, err := hv.CreateVM("dom0", 1024, 0.1, true)
	if err != nil {
		return RTTStats{}, err
	}
	_, pf, err := New(s, hv, bus, "vcan", dom0, DefaultLayerCosts())
	if err != nil {
		return RTTStats{}, err
	}
	var probeVF *VF
	var bgVFs []*VF
	for i := 0; i < cfg.VMs; i++ {
		g, err := hv.CreateVM(fmt.Sprintf("vm%d", i), 1024, 0.05, false)
		if err != nil {
			return RTTStats{}, err
		}
		filter := can.MaskFilter(0x7FF, probeRespID)
		if i != 0 {
			filter = can.MaskFilter(0x7FF, uint32(0x400+i))
		}
		vf, err := pf.ProvisionVF(g, filter)
		if err != nil {
			return RTTStats{}, err
		}
		if i == 0 {
			probeVF = vf
		} else {
			bgVFs = append(bgVFs, vf)
		}
	}
	attachEcho(s, bus, cfg)

	// Background flood: every other VM transmits low-priority traffic.
	for i, vf := range bgVFs {
		vf := vf
		id := uint32(0x500 + i)
		s.Every(bgPeriod, func() bool {
			_ = vf.Send(can.Frame{ID: id, Data: make([]byte, 8)}, nil)
			return true
		})
	}

	var stats RTTStats
	var t0 sim.Time
	var sendProbe func()
	probeVF.SetRx(func(f can.Frame, at sim.Time) {
		stats.Samples = append(stats.Samples, at-t0)
		if len(stats.Samples) >= cfg.Probes {
			s.Halt()
			return
		}
		sendProbe()
	})
	sendProbe = func() {
		t0 = s.Now()
		if err := probeVF.Send(can.Frame{ID: probeReqID, Data: make([]byte, cfg.PayloadBytes)}, nil); err != nil {
			panic(err)
		}
	}
	sendProbe()
	if err := s.Run(); err != nil {
		return RTTStats{}, err
	}
	if len(stats.Samples) != cfg.Probes {
		return stats, fmt.Errorf("canvirt: loaded probe collected %d/%d samples", len(stats.Samples), cfg.Probes)
	}
	return stats, nil
}

// AddedLatency runs both measurements and returns the mean added
// round-trip latency (virtualized minus native) for the given VM count.
func AddedLatency(vms, probes, payload int) (sim.Time, error) {
	base := ProbeConfig{Probes: probes, PayloadBytes: payload}
	nat, err := MeasureNative(base)
	if err != nil {
		return 0, err
	}
	virtCfg := base
	virtCfg.VMs = vms
	virt, err := MeasureVirtualized(virtCfg)
	if err != nil {
		return 0, err
	}
	return virt.Mean() - nat.Mean(), nil
}
