package canvirt

import (
	"testing"

	"repro/internal/can"
	"repro/internal/sim"
	"repro/internal/vm"
)

func newTestStack(t *testing.T, nVMs int) (*sim.Simulator, *can.Bus, *vm.Hypervisor, *Controller, *PF, []*VF) {
	t.Helper()
	s := sim.New()
	bus := can.NewBus(s, 1_000_000)
	hv := vm.NewHypervisor(s, vm.DefaultCostModel(), 1<<20)
	dom0, err := hv.CreateVM("dom0", 1024, 0.1, true)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, pf, err := New(s, hv, bus, "vcan", dom0, DefaultLayerCosts())
	if err != nil {
		t.Fatal(err)
	}
	var vfs []*VF
	for i := 0; i < nVMs; i++ {
		g, err := hv.CreateVM("guest"+string(rune('A'+i)), 512, 0.05, false)
		if err != nil {
			t.Fatal(err)
		}
		vf, err := pf.ProvisionVF(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		vfs = append(vfs, vf)
	}
	return s, bus, hv, ctrl, pf, vfs
}

func TestPFRequiresPrivilegedVM(t *testing.T) {
	s := sim.New()
	bus := can.NewBus(s, 1_000_000)
	hv := vm.NewHypervisor(s, vm.DefaultCostModel(), 1<<20)
	guest, err := hv.CreateVM("guest", 512, 0.1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := New(s, hv, bus, "vcan", guest, DefaultLayerCosts()); err != ErrNotPrivileged {
		t.Fatalf("err = %v, want ErrNotPrivileged", err)
	}
	if _, _, err := New(s, hv, bus, "vcan", nil, DefaultLayerCosts()); err != ErrNotPrivileged {
		t.Fatalf("nil owner err = %v, want ErrNotPrivileged", err)
	}
}

func TestVFSendReceive(t *testing.T) {
	s, bus, _, _, _, vfs := newTestStack(t, 2)
	peer := bus.Attach("peer")
	var peerGot []can.Frame
	peer.SetRx(func(f can.Frame, at sim.Time) { peerGot = append(peerGot, f) })

	var vf1Got []can.Frame
	vfs[1].SetRx(func(f can.Frame, at sim.Time) { vf1Got = append(vf1Got, f) })

	if err := vfs[0].Send(can.Frame{ID: 0x123, Data: []byte{1}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(peerGot) != 1 || peerGot[0].ID != 0x123 {
		t.Fatalf("peer got %v", peerGot)
	}
	// The sibling VF receives the frame too (broadcast medium), but the
	// sending VF does not hear its own frame.
	if len(vf1Got) != 1 {
		t.Fatalf("vf1 got %d frames", len(vf1Got))
	}
	if vfs[0].RxCount != 0 {
		t.Fatalf("sender received its own frame")
	}
	if vfs[0].TxCount != 1 {
		t.Fatalf("TxCount = %d", vfs[0].TxCount)
	}
}

func TestVFIsolationByFilter(t *testing.T) {
	s, bus, _, _, pf, vfs := newTestStack(t, 2)
	// VM A sees only 0x1xx, VM B only 0x2xx.
	if err := pf.SetFilter(0, can.MaskFilter(0x700, 0x100)); err != nil {
		t.Fatal(err)
	}
	if err := pf.SetFilter(1, can.MaskFilter(0x700, 0x200)); err != nil {
		t.Fatal(err)
	}
	var aGot, bGot []uint32
	vfs[0].SetRx(func(f can.Frame, at sim.Time) { aGot = append(aGot, f.ID) })
	vfs[1].SetRx(func(f can.Frame, at sim.Time) { bGot = append(bGot, f.ID) })

	ext := bus.Attach("ext")
	for _, id := range []uint32{0x110, 0x210, 0x310} {
		if err := ext.Send(can.Frame{ID: id}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(aGot) != 1 || aGot[0] != 0x110 {
		t.Fatalf("A got %#v", aGot)
	}
	if len(bGot) != 1 || bGot[0] != 0x210 {
		t.Fatalf("B got %#v", bGot)
	}
}

func TestDisabledVFDataPathCut(t *testing.T) {
	s, bus, _, _, pf, vfs := newTestStack(t, 1)
	if err := pf.EnableVF(0, false); err != nil {
		t.Fatal(err)
	}
	if err := vfs[0].Send(can.Frame{ID: 1}, nil); err != ErrVFDisabled {
		t.Fatalf("send on disabled VF: %v", err)
	}
	// RX is cut as well.
	got := 0
	vfs[0].SetRx(func(f can.Frame, at sim.Time) { got++ })
	ext := bus.Attach("ext")
	if err := ext.Send(can.Frame{ID: 2}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("disabled VF received a frame")
	}
	// Re-enable restores the path.
	if err := pf.EnableVF(0, true); err != nil {
		t.Fatal(err)
	}
	if err := ext.Send(can.Frame{ID: 3}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("re-enabled VF got %d frames", got)
	}
}

func TestPFIndexValidation(t *testing.T) {
	_, _, _, _, pf, _ := newTestStack(t, 1)
	if err := pf.EnableVF(5, false); err != ErrNoSuchVF {
		t.Fatalf("err = %v", err)
	}
	if err := pf.SetFilter(-1, nil); err != ErrNoSuchVF {
		t.Fatalf("err = %v", err)
	}
	if pf.VFCount() != 1 {
		t.Fatalf("VFCount = %d", pf.VFCount())
	}
}

func TestCrossVMPriorityPreserved(t *testing.T) {
	// Frames queued at the same instant from different VMs must reach the
	// wire in CAN-ID order: the virtualization layer preserves bus priority.
	s, bus, _, _, _, vfs := newTestStack(t, 3)
	sink := bus.Attach("sink")
	var order []uint32
	sink.SetRx(func(f can.Frame, at sim.Time) { order = append(order, f.ID) })
	if err := vfs[0].Send(can.Frame{ID: 0x300}, nil); err != nil {
		t.Fatal(err)
	}
	if err := vfs[1].Send(can.Frame{ID: 0x100}, nil); err != nil {
		t.Fatal(err)
	}
	if err := vfs[2].Send(can.Frame{ID: 0x200}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []uint32{0x100, 0x200, 0x300}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %#v, want %#v", order, want)
		}
	}
}

func TestRxQueueBuffersWithoutHandler(t *testing.T) {
	s, bus, _, _, _, vfs := newTestStack(t, 1)
	ext := bus.Attach("ext")
	for i := 0; i < 3; i++ {
		if err := ext.Send(can.Frame{ID: uint32(i + 1)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if vfs[0].RxQueueLen() != 3 {
		t.Fatalf("rx queue = %d", vfs[0].RxQueueLen())
	}
	got := vfs[0].DrainRx()
	if len(got) != 3 || vfs[0].RxQueueLen() != 0 {
		t.Fatalf("drain = %d, remaining %d", len(got), vfs[0].RxQueueLen())
	}
}

func TestTrapAccountingOnDataPath(t *testing.T) {
	s, bus, hv, _, _, vfs := newTestStack(t, 1)
	bus.Attach("peer")
	if err := vfs[0].Send(can.Frame{ID: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	g := vfs[0].VM()
	if g.TrapCount[vm.TrapMMIO] != 1 || g.TrapCount[vm.TrapDoorbell] != 1 {
		t.Fatalf("trap counts = %v", g.TrapCount)
	}
	if hv.TrapTime == 0 {
		t.Fatal("no trap time accumulated")
	}
}

// E1 shape: the added round-trip latency must land in the published
// 7-11 µs band for 1..12 provisioned VFs and grow monotonically with the
// VF count.
func TestE1AddedLatencyBand(t *testing.T) {
	var prev sim.Time
	for _, n := range []int{1, 2, 4, 8, 12} {
		added, err := AddedLatency(n, 20, 8)
		if err != nil {
			t.Fatal(err)
		}
		us := added.Micros()
		if us < 7.0 || us > 11.0 {
			t.Fatalf("added RTT with %d VFs = %.2fus, want within [7, 11]", n, us)
		}
		if added < prev {
			t.Fatalf("added RTT not monotone in VF count: %v after %v", added, prev)
		}
		prev = added
	}
}

// E1 shape: predicted overhead matches the measured difference.
func TestE1PredictionMatchesMeasurement(t *testing.T) {
	for _, n := range []int{1, 4, 8} {
		added, err := AddedLatency(n, 10, 4)
		if err != nil {
			t.Fatal(err)
		}
		pred := AddedRoundTrip(vm.DefaultCostModel(), DefaultLayerCosts(), n)
		diff := added - pred
		if diff < 0 {
			diff = -diff
		}
		// Native driver costs cancel except for sub-microsecond scheduling
		// effects; allow 1.5us slack.
		if diff > 1500*sim.Nanosecond {
			t.Fatalf("n=%d: measured %v vs predicted %v", n, added, pred)
		}
	}
}

// Near-native throughput: with a single VF the virtualized controller must
// sustain the same number of frames on a saturated wire (overheads are
// pipelined with transmission, not serialized).
func TestNearNativeThroughput(t *testing.T) {
	run := func(virt bool) int {
		s := sim.New()
		bus := can.NewBus(s, 1_000_000)
		if virt {
			hv := vm.NewHypervisor(s, vm.DefaultCostModel(), 1<<20)
			dom0, _ := hv.CreateVM("dom0", 1024, 0.1, true)
			_, pf, err := New(s, hv, bus, "vcan", dom0, DefaultLayerCosts())
			if err != nil {
				t.Fatal(err)
			}
			g, _ := hv.CreateVM("g", 512, 0.1, false)
			vf, _ := pf.ProvisionVF(g, can.MaskFilter(0x7FF, 0x7FF)) // receive nothing
			for i := 0; i < 200; i++ {
				if err := vf.Send(can.Frame{ID: uint32(i%100 + 1), Data: make([]byte, 8)}, nil); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			n := NewNative(s, bus, "host")
			for i := 0; i < 200; i++ {
				if err := n.Send(can.Frame{ID: uint32(i%100 + 1), Data: make([]byte, 8)}, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
		bus.Attach("sink")
		if err := s.RunFor(20 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		return bus.FramesOnWire
	}
	nat := run(false)
	virt := run(true)
	if nat == 0 {
		t.Fatal("no native frames")
	}
	ratio := float64(virt) / float64(nat)
	if ratio < 0.98 {
		t.Fatalf("virtualized throughput %.3f of native (nat=%d virt=%d)", ratio, nat, virt)
	}
}

// Priority preservation under load: with every other VM flooding the bus
// with lower-priority traffic, the probe's round trip grows by at most one
// blocking frame per leg (non-preemptive arbitration), not by the queueing
// the background VMs themselves suffer.
func TestLoadedProbeBoundedBlocking(t *testing.T) {
	base := ProbeConfig{Probes: 30, PayloadBytes: 8, VMs: 4}
	unloaded, err := MeasureVirtualized(base)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := MeasureVirtualizedLoaded(base, 200*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	// One 8-byte stuffed frame = 135us at 1 Mbit/s; two legs -> 270us of
	// worst-case blocking, plus scheduling slack.
	maxExtra := 2*135*sim.Microsecond + 20*sim.Microsecond
	if loaded.Max() > unloaded.Max()+maxExtra {
		t.Fatalf("loaded max RTT %v exceeds unloaded %v + blocking bound %v",
			loaded.Max(), unloaded.Max(), maxExtra)
	}
	// And the load is real: the loaded mean is strictly larger.
	if loaded.Mean() <= unloaded.Mean() {
		t.Fatalf("background load had no effect: %v <= %v", loaded.Mean(), unloaded.Mean())
	}
}

func TestLoadedProbeNeedsTwoVMs(t *testing.T) {
	if _, err := MeasureVirtualizedLoaded(ProbeConfig{VMs: 1, Probes: 1}, sim.Millisecond); err == nil {
		t.Fatal("single-VM loaded probe accepted")
	}
}

// RX interrupt coalescing: batching cuts the interrupt count roughly by
// the batch factor at the cost of added per-frame latency — the HW/SW
// trade-off discussed in [8].
func TestRxCoalescingTradeoff(t *testing.T) {
	run := func(batch int) (irqs int, rx int, lastAt sim.Time) {
		s := sim.New()
		bus := can.NewBus(s, 1_000_000)
		hv := vm.NewHypervisor(s, vm.DefaultCostModel(), 1<<20)
		dom0, _ := hv.CreateVM("dom0", 1024, 0.1, true)
		_, pf, err := New(s, hv, bus, "vcan", dom0, DefaultLayerCosts())
		if err != nil {
			t.Fatal(err)
		}
		g, _ := hv.CreateVM("g", 512, 0.1, false)
		vf, _ := pf.ProvisionVF(g, nil)
		vf.SetCoalescing(batch, 2*sim.Millisecond)
		vf.SetRx(func(f can.Frame, at sim.Time) { lastAt = at })
		ext := bus.Attach("ext")
		for i := 0; i < 20; i++ {
			if err := ext.Send(can.Frame{ID: uint32(i + 1), Data: make([]byte, 8)}, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return vf.IRQCount, vf.RxCount, lastAt
	}
	irqs1, rx1, _ := run(1)
	irqs4, rx4, _ := run(4)
	if rx1 != 20 || rx4 != 20 {
		t.Fatalf("frames delivered: %d / %d", rx1, rx4)
	}
	if irqs1 != 20 {
		t.Fatalf("uncoalesced IRQs = %d", irqs1)
	}
	if irqs4 != 5 {
		t.Fatalf("coalesced IRQs = %d, want 5", irqs4)
	}
}

func TestRxCoalescingTimeoutFlushesPartialBatch(t *testing.T) {
	s := sim.New()
	bus := can.NewBus(s, 1_000_000)
	hv := vm.NewHypervisor(s, vm.DefaultCostModel(), 1<<20)
	dom0, _ := hv.CreateVM("dom0", 1024, 0.1, true)
	_, pf, err := New(s, hv, bus, "vcan", dom0, DefaultLayerCosts())
	if err != nil {
		t.Fatal(err)
	}
	g, _ := hv.CreateVM("g", 512, 0.1, false)
	vf, _ := pf.ProvisionVF(g, nil)
	vf.SetCoalescing(8, 1*sim.Millisecond)
	var deliveredAt sim.Time
	vf.SetRx(func(f can.Frame, at sim.Time) { deliveredAt = at })
	ext := bus.Attach("ext")
	if err := ext.Send(can.Frame{ID: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if vf.RxCount != 1 || vf.IRQCount != 1 {
		t.Fatalf("rx=%d irq=%d", vf.RxCount, vf.IRQCount)
	}
	// Delivery waited for the coalescing timeout (wire ~55us + 1ms + rx path).
	if deliveredAt < sim.Millisecond {
		t.Fatalf("delivered at %v, before the timeout", deliveredAt)
	}
}

// E2 shape: break-even at four VMs and virtualized strictly cheaper beyond.
func TestE2BreakEven(t *testing.T) {
	if got := BreakEvenVFs(); got != 4 {
		t.Fatalf("break-even = %d VFs, want 4", got)
	}
	for n := 1; n < 4; n++ {
		if VirtualizedController(n).LUT <= StandaloneController().Scale(n).LUT {
			t.Fatalf("virtualized already cheaper at %d VFs", n)
		}
	}
	for n := 4; n <= 16; n++ {
		if VirtualizedController(n).LUT > StandaloneController().Scale(n).LUT {
			t.Fatalf("virtualized more expensive at %d VFs", n)
		}
	}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{LUT: 1, FF: 2, BRAM: 3}
	b := Resources{LUT: 10, FF: 20, BRAM: 30}
	if got := a.Add(b); got != (Resources{11, 22, 33}) {
		t.Fatalf("Add = %+v", got)
	}
	if got := a.Scale(3); got != (Resources{3, 6, 9}) {
		t.Fatalf("Scale = %+v", got)
	}
	if !a.LessEq(b) || b.LessEq(a) {
		t.Fatal("LessEq wrong")
	}
	if VirtualizedController(-1) != VirtualizedController(0) {
		t.Fatal("negative VF count not clamped")
	}
}

func TestRTTStats(t *testing.T) {
	s := RTTStats{Samples: []sim.Time{30, 10, 20}}
	if s.Min() != 10 || s.Max() != 30 || s.Mean() != 20 {
		t.Fatalf("stats: min=%v max=%v mean=%v", s.Min(), s.Max(), s.Mean())
	}
	var empty RTTStats
	if empty.Min() != 0 || empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty stats not zero")
	}
}

func TestControllerString(t *testing.T) {
	_, _, _, ctrl, _, _ := newTestStack(t, 2)
	if ctrl.String() != "canvirt.Controller{2 VFs}" {
		t.Fatalf("String = %q", ctrl.String())
	}
}
