// Package canvirt implements the virtualized CAN controller of Section III
// (Fig. 2): a traditional CAN protocol layer extended by a hardware
// virtualization layer that isolates the traffic of multiple VMs while
// preserving bus-priority transmission, with the controller split into a
// privileged physical function (PF) and per-VM virtual functions (VFs)
// providing data-path access only.
//
// Two models from the paper's experimental summary are reproduced here:
//
//   - A latency model calibrated so that the virtualization layer adds
//     ≈7-11 µs to a message round trip versus native access (experiment E1,
//     from the results of reference [8]).
//   - An FPGA resource model in which a single virtualized controller
//     breaks even with multiple stand-alone controllers at four VMs
//     (experiment E2).
package canvirt

// Resources is an FPGA area estimate in the units synthesis reports.
type Resources struct {
	LUT  int // look-up tables
	FF   int // flip-flops
	BRAM int // block RAM tiles
}

// Add returns the component-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{LUT: r.LUT + o.LUT, FF: r.FF + o.FF, BRAM: r.BRAM + o.BRAM}
}

// Scale returns the resources multiplied by n.
func (r Resources) Scale(n int) Resources {
	return Resources{LUT: r.LUT * n, FF: r.FF * n, BRAM: r.BRAM * n}
}

// LessEq reports whether r fits within o on every axis.
func (r Resources) LessEq(o Resources) bool {
	return r.LUT <= o.LUT && r.FF <= o.FF && r.BRAM <= o.BRAM
}

// Resource model constants, calibrated to Virtex-7-class synthesis results
// for a classical CAN controller plus an SR-IOV-style virtualization
// wrapper (cf. [8], DAC 2015). Absolute numbers are representative; the
// experiment's claim is the *break-even shape*, which depends only on the
// ratio of the per-VF increment to a stand-alone controller.
var (
	// standalone is one conventional CAN controller (protocol layer +
	// host interface).
	standalone = Resources{LUT: 1600, FF: 1100, BRAM: 1}
	// protocolLayer is the shared protocol engine inside the virtualized
	// controller (same core as a stand-alone controller).
	protocolLayer = Resources{LUT: 1600, FF: 1100, BRAM: 1}
	// virtBase is the fixed cost of the virtualization layer: PF logic,
	// arbitration among VF queues, RX demultiplexer.
	virtBase = Resources{LUT: 2000, FF: 1400, BRAM: 1}
	// perVF is the incremental cost of one VF: queue memory, doorbell
	// and filter registers.
	perVF = Resources{LUT: 500, FF: 380, BRAM: 1}
)

// StandaloneController returns the area of one conventional controller.
func StandaloneController() Resources { return standalone }

// VirtualizedController returns the area of a virtualized controller
// provisioned with n virtual functions.
func VirtualizedController(n int) Resources {
	if n < 0 {
		n = 0
	}
	return protocolLayer.Add(virtBase).Add(perVF.Scale(n))
}

// BreakEvenVFs returns the smallest number of VMs for which the
// virtualized controller uses no more LUTs than the equivalent set of
// stand-alone controllers. With the calibrated constants this is 4,
// matching the paper's "breaks even with multiple stand-alone controllers
// at four VMs".
func BreakEvenVFs() int {
	for n := 1; n < 1000; n++ {
		if VirtualizedController(n).LUT <= StandaloneController().Scale(n).LUT {
			return n
		}
	}
	return -1
}
