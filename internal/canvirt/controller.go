package canvirt

import (
	"errors"
	"fmt"

	"repro/internal/can"
	"repro/internal/sim"
	"repro/internal/vm"
)

// LayerCosts are the virtualization-layer processing costs added on the
// data path, on top of the hypervisor trap costs from package vm. The
// queue-arbitration and filter-lookup terms grow mildly with the number of
// provisioned VFs, which is what stretches the added round-trip latency
// across the 7-11 µs band as VMs are added.
type LayerCosts struct {
	// QueueArbBase is the base cost of moving a frame from a VF TX queue
	// into the protocol layer's priority mailbox.
	QueueArbBase sim.Time
	// QueueArbPerVF is the extra arbitration cost per additional
	// provisioned VF.
	QueueArbPerVF sim.Time
	// FilterBase is the RX-side filter lookup cost.
	FilterBase sim.Time
	// FilterPerVF is the extra demultiplexing cost per additional VF.
	FilterPerVF sim.Time
	// RxCopy is the cost of copying a frame into a VF RX queue.
	RxCopy sim.Time
	// GuestTxDriver and GuestRxISR are the guest-side driver costs. They
	// mirror NativeController's TxDriver/RxISR so that the E1 difference
	// isolates exactly the virtualization-layer overhead.
	GuestTxDriver sim.Time
	GuestRxISR    sim.Time
}

// DefaultLayerCosts returns the calibrated virtualization-layer costs.
// Together with vm.DefaultCostModel (MMIO 0.8µs, doorbell 2.0µs, IRQ
// injection 2.2µs) the added one-way costs are ≈3.6µs TX + ≈3.5µs RX with
// one VF, i.e. ≈7.1µs added round trip, growing to ≈10.5µs at 12 VFs.
func DefaultLayerCosts() LayerCosts {
	return LayerCosts{
		QueueArbBase:  800 * sim.Nanosecond,
		QueueArbPerVF: 250 * sim.Nanosecond,
		FilterBase:    400 * sim.Nanosecond,
		FilterPerVF:   50 * sim.Nanosecond,
		RxCopy:        900 * sim.Nanosecond,
		GuestTxDriver: 600 * sim.Nanosecond,
		GuestRxISR:    600 * sim.Nanosecond,
	}
}

// txOverhead returns the added TX-path latency with n provisioned VFs.
func txOverhead(costs vm.CostModel, lc LayerCosts, n int) sim.Time {
	extra := sim.Time(0)
	if n > 1 {
		extra = sim.Time(n-1) * lc.QueueArbPerVF
	}
	return costs.MMIOAccess + costs.Doorbell + lc.QueueArbBase + extra
}

// rxOverhead returns the added RX-path latency with n provisioned VFs.
func rxOverhead(costs vm.CostModel, lc LayerCosts, n int) sim.Time {
	extra := sim.Time(0)
	if n > 1 {
		extra = sim.Time(n-1) * lc.FilterPerVF
	}
	return lc.FilterBase + extra + lc.RxCopy + costs.IRQInject
}

// AddedRoundTrip predicts the added round-trip latency (TX + RX overhead)
// for a controller with n provisioned VFs. Exposed for the E1 shape check.
func AddedRoundTrip(costs vm.CostModel, lc LayerCosts, n int) sim.Time {
	return txOverhead(costs, lc, n) + rxOverhead(costs, lc, n)
}

// VF is a virtual function: the per-VM data-path interface of the
// virtualized controller. "The VFs provide data path functionality only"
// (Section III).
type VF struct {
	index  int
	vm     *vm.VM
	ctrl   *Controller
	filter can.AcceptanceFilter
	rx     func(f can.Frame, at sim.Time)
	rxq    []can.Frame

	enabled bool

	// RX interrupt coalescing (a HW/SW trade-off from [8]): when
	// coalesceN > 1, received frames are buffered and a single interrupt
	// delivers the batch once coalesceN frames accumulated or
	// coalesceTimeout elapsed since the first buffered frame — trading
	// per-frame latency for a proportional cut in IRQ-injection load.
	coalesceN       int
	coalesceTimeout sim.Time
	coalesceBuf     []can.Frame
	coalesceTimer   *sim.Event

	// Stats
	TxCount int
	RxCount int
	// IRQCount counts interrupts actually injected (== RxCount without
	// coalescing; fewer with).
	IRQCount int
}

// Index returns the VF number.
func (v *VF) Index() int { return v.index }

// VM returns the guest owning this VF.
func (v *VF) VM() *vm.VM { return v.vm }

// SetRx installs the guest's receive handler (its virtual ISR).
func (v *VF) SetRx(h func(f can.Frame, at sim.Time)) { v.rx = h }

// SetCoalescing configures RX interrupt coalescing: deliver after n frames
// or timeout since the first buffered frame, whichever comes first.
// n <= 1 disables coalescing.
func (v *VF) SetCoalescing(n int, timeout sim.Time) {
	if n < 1 {
		n = 1
	}
	v.coalesceN = n
	v.coalesceTimeout = timeout
}

// RxQueueLen returns the number of frames waiting in the VF RX queue
// (frames delivered with no handler installed).
func (v *VF) RxQueueLen() int { return len(v.rxq) }

// DrainRx returns and clears the buffered RX frames.
func (v *VF) DrainRx() []can.Frame {
	out := v.rxq
	v.rxq = nil
	return out
}

// Errors of the data and control paths.
var (
	ErrVFDisabled    = errors.New("canvirt: VF disabled")
	ErrNotPrivileged = errors.New("canvirt: PF access requires a privileged VM")
	ErrNoSuchVF      = errors.New("canvirt: no such VF")
)

// Send transmits a frame through the VF: the guest performs an MMIO write
// and rings the doorbell; the virtualization layer arbitrates the frame
// into the protocol layer's priority mailbox; the protocol layer contends
// on the bus as usual. onSent runs at end of frame on the wire.
func (v *VF) Send(f can.Frame, onSent func(at sim.Time)) error {
	if !v.enabled {
		return ErrVFDisabled
	}
	if err := f.Validate(); err != nil {
		return err
	}
	c := v.ctrl
	// Guest driver entry, then MMIO write plus doorbell trap, then the
	// virtualization layer's queue arbitration; only after that total
	// latency does the frame reach the protocol layer's mailbox.
	c.hv.Trap(v.vm, vm.TrapMMIO, nil)
	c.hv.Trap(v.vm, vm.TrapDoorbell, nil)
	delay := c.layer.GuestTxDriver + txOverhead(c.hv.Costs(), c.layer, len(c.vfs))
	v.TxCount++
	c.sim.Schedule(delay, func() {
		// The protocol layer's TX mailbox is priority ordered across all
		// VFs, preserving CAN arbitration semantics between VMs. Sibling
		// VFs behind the same controller hear the frame via the internal
		// loopback of the virtualization layer once it is on the wire.
		wrapped := func(at sim.Time) {
			c.deliver(f, v)
			if onSent != nil {
				onSent(at)
			}
		}
		if err := c.node.Send(f, wrapped); err != nil && c.onError != nil {
			c.onError(err)
		}
	})
	return nil
}

// PF is the physical function: the privileged management interface.
// Only a privileged VM (the one hosting the MCC) may obtain it.
type PF struct {
	ctrl *Controller
}

// ProvisionVF creates a VF bound to guest g with the given acceptance
// filter (nil accepts all frames).
func (p *PF) ProvisionVF(g *vm.VM, filter can.AcceptanceFilter) (*VF, error) {
	c := p.ctrl
	v := &VF{index: len(c.vfs), vm: g, ctrl: c, filter: filter, enabled: true}
	c.vfs = append(c.vfs, v)
	return v, nil
}

// SetFilter updates a VF's acceptance filter (a privileged operation:
// guests must not widen their own RX visibility).
func (p *PF) SetFilter(index int, filter can.AcceptanceFilter) error {
	if index < 0 || index >= len(p.ctrl.vfs) {
		return ErrNoSuchVF
	}
	p.ctrl.vfs[index].filter = filter
	return nil
}

// EnableVF sets a VF's enabled state. Disabling a VF cuts its data path —
// this is the mechanism the cross-layer intrusion scenario uses to contain
// a compromised VM's communication.
func (p *PF) EnableVF(index int, enabled bool) error {
	if index < 0 || index >= len(p.ctrl.vfs) {
		return ErrNoSuchVF
	}
	p.ctrl.vfs[index].enabled = enabled
	return nil
}

// VFCount returns the number of provisioned VFs.
func (p *PF) VFCount() int { return len(p.ctrl.vfs) }

// Controller is the virtualized CAN controller: one attachment to the
// physical bus (the protocol layer), multiplexed among VFs by the
// virtualization layer.
type Controller struct {
	sim   *sim.Simulator
	hv    *vm.Hypervisor
	node  *can.Node
	layer LayerCosts
	vfs   []*VF

	onError func(error)
}

// New attaches a virtualized controller to the bus. The returned PF is
// handed out only if owner is privileged.
func New(s *sim.Simulator, hv *vm.Hypervisor, bus *can.Bus, name string, owner *vm.VM, layer LayerCosts) (*Controller, *PF, error) {
	if owner == nil || !owner.Privileged() {
		return nil, nil, ErrNotPrivileged
	}
	c := &Controller{sim: s, hv: hv, node: bus.Attach(name), layer: layer}
	c.node.SetRx(c.receive)
	return c, &PF{ctrl: c}, nil
}

// SetErrorHandler installs a callback for asynchronous data-path errors.
func (c *Controller) SetErrorHandler(h func(error)) { c.onError = h }

// receive demultiplexes a bus frame to all matching, enabled VFs.
func (c *Controller) receive(f can.Frame, at sim.Time) {
	c.deliver(f, nil)
}

// deliver pushes a frame through the RX demultiplexer to every matching,
// enabled VF except exclude (the sending VF on internal loopback).
func (c *Controller) deliver(f can.Frame, exclude *VF) {
	delay := rxOverhead(c.hv.Costs(), c.layer, len(c.vfs)) + c.layer.GuestRxISR
	for _, v := range c.vfs {
		if v == exclude || !v.enabled {
			continue
		}
		if v.filter != nil && !v.filter(f) {
			continue
		}
		v := v
		fc := f.Clone()
		if v.coalesceN <= 1 {
			c.hv.Trap(v.vm, vm.TrapIRQInject, nil)
			v.IRQCount++
			c.sim.Schedule(delay, func() { v.receiveOne(fc) })
			continue
		}
		// Coalescing: buffer, flush on batch-full or timeout.
		v.coalesceBuf = append(v.coalesceBuf, fc)
		if len(v.coalesceBuf) >= v.coalesceN {
			c.flushVF(v, delay)
		} else if v.coalesceTimer == nil {
			v.coalesceTimer = c.sim.Schedule(v.coalesceTimeout, func() {
				v.coalesceTimer = nil
				c.flushVF(v, delay)
			})
		}
	}
}

// flushVF delivers a VF's coalesced batch with a single interrupt.
func (c *Controller) flushVF(v *VF, delay sim.Time) {
	if v.coalesceTimer != nil {
		v.coalesceTimer.Cancel()
		v.coalesceTimer = nil
	}
	if len(v.coalesceBuf) == 0 {
		return
	}
	batch := v.coalesceBuf
	v.coalesceBuf = nil
	c.hv.Trap(v.vm, vm.TrapIRQInject, nil)
	v.IRQCount++
	c.sim.Schedule(delay, func() {
		for _, fc := range batch {
			v.receiveOne(fc)
		}
	})
}

// receiveOne hands one frame to the guest (or its RX queue).
func (v *VF) receiveOne(fc can.Frame) {
	v.RxCount++
	if v.rx != nil {
		v.rx(fc, v.ctrl.sim.Now())
	} else {
		v.rxq = append(v.rxq, fc)
	}
}

// NativeController is the baseline: a conventional controller owned by a
// single OS with direct (non-virtualized) register access. Driver entry
// and ISR costs are retained so that the E1 comparison isolates exactly
// the virtualization overhead.
type NativeController struct {
	sim  *sim.Simulator
	node *can.Node
	rx   func(f can.Frame, at sim.Time)

	// TxDriver and RxISR are the native driver costs.
	TxDriver sim.Time
	RxISR    sim.Time

	TxCount int
	RxCount int
}

// NewNative attaches a native controller to the bus.
func NewNative(s *sim.Simulator, bus *can.Bus, name string) *NativeController {
	n := &NativeController{
		sim:      s,
		node:     bus.Attach(name),
		TxDriver: 600 * sim.Nanosecond,
		RxISR:    600 * sim.Nanosecond,
	}
	n.node.SetRx(func(f can.Frame, at sim.Time) {
		s.Schedule(n.RxISR, func() {
			n.RxCount++
			if n.rx != nil {
				n.rx(f, s.Now())
			}
		})
	})
	return n
}

// SetRx installs the receive handler.
func (n *NativeController) SetRx(h func(f can.Frame, at sim.Time)) { n.rx = h }

// SetFilter installs an acceptance filter on the underlying node.
func (n *NativeController) SetFilter(f can.AcceptanceFilter) { n.node.SetFilter(f) }

// Send transmits a frame with native driver cost.
func (n *NativeController) Send(f can.Frame, onSent func(at sim.Time)) error {
	if err := f.Validate(); err != nil {
		return err
	}
	n.TxCount++
	n.sim.Schedule(n.TxDriver, func() {
		// The frame was validated above; node.Send cannot fail.
		_ = n.node.Send(f, onSent)
	})
	return nil
}

// String describes the controller.
func (c *Controller) String() string {
	return fmt.Sprintf("canvirt.Controller{%d VFs}", len(c.vfs))
}
