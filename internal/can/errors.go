package can

import (
	"fmt"

	"repro/internal/sim"
)

// Fault confinement after the CAN specification: every node carries a
// transmit error counter (TEC) and a receive error counter (REC). Errors
// increment them (TX errors by 8, RX errors by 1), successful operations
// decrement. A node whose TEC exceeds 127 goes error-passive; beyond 255
// it goes bus-off and stops participating until reset.
//
// The simulation does not model bit-level corruption on the wire; instead,
// error injection (CorruptNextTx, InjectRxError) drives the counters so
// platform monitors and the self-representation can observe a degrading
// communication substrate — the "platform reliability" effect of
// Section V.

// ErrorState is a node's fault-confinement state.
type ErrorState int

// Error states in order of degradation.
const (
	// ErrorActive is normal operation.
	ErrorActive ErrorState = iota
	// ErrorPassive: the node may transmit but signals errors passively.
	ErrorPassive
	// BusOff: the node is disconnected from the bus.
	BusOff
)

var errStateNames = [...]string{"error-active", "error-passive", "bus-off"}

func (s ErrorState) String() string {
	if s < 0 || int(s) >= len(errStateNames) {
		return fmt.Sprintf("ErrorState(%d)", int(s))
	}
	return errStateNames[s]
}

// Error-counter thresholds from the CAN specification.
const (
	passiveThreshold = 127
	busOffThreshold  = 255
	txErrorIncrement = 8
	rxErrorIncrement = 1
)

// counters extends Node with fault-confinement state; the fields live on
// Node itself to keep the hot path flat.

// ErrorState returns the node's fault-confinement state.
func (n *Node) ErrorState() ErrorState {
	switch {
	case n.tec > busOffThreshold:
		return BusOff
	case n.tec > passiveThreshold || n.rec > passiveThreshold:
		return ErrorPassive
	default:
		return ErrorActive
	}
}

// TEC returns the transmit error counter.
func (n *Node) TEC() int { return n.tec }

// REC returns the receive error counter.
func (n *Node) REC() int { return n.rec }

// CorruptNextTx marks the node's next k transmissions as corrupted: each
// costs a (worst-case) error-frame retransmission slot on the wire and
// bumps the TEC by 8. After exhausting k, transmissions succeed again.
func (n *Node) CorruptNextTx(k int) {
	if k > 0 {
		n.corruptTx += k
	}
}

// InjectRxError bumps the receive error counter (a locally detected frame
// error), as a CRC/stuff error on reception would.
func (n *Node) InjectRxError() {
	n.rec += rxErrorIncrement
}

// ResetErrors models the 128-occurrences-of-11-recessive-bits recovery:
// counters clear and a bus-off node rejoins.
func (n *Node) ResetErrors() {
	n.tec = 0
	n.rec = 0
}

// errorFrameBits is the worst-case cost of an error frame plus
// retransmission overhead (error flag 6 + delimiter 8 + IFS 3, plus
// suspend transmission when passive).
const errorFrameBits = 17

// handleTxError is called by the bus when the node's transmission was
// marked corrupted: TEC increases, the wire is occupied by the error
// frame, and the frame returns to the head of the queue for retransmission
// — unless the node just went bus-off, in which case its queue is dropped.
func (n *Node) handleTxError(e *txEntry) (retransmit bool) {
	n.tec += txErrorIncrement
	if n.ErrorState() == BusOff {
		n.queue = nil
		return false
	}
	// Retransmission: back to the head (it kept its arbitration rank).
	n.queue = append([]*txEntry{e}, n.queue...)
	return true
}

// onTxSuccess decrements the TEC (floor 0).
func (n *Node) onTxSuccess() {
	if n.tec > 0 {
		n.tec--
	}
}

// ErrorFrameTime returns the wire time of one error frame at the bus
// bitrate.
func (b *Bus) ErrorFrameTime() sim.Time {
	return sim.Time(int64(errorFrameBits) * int64(BitTime(b.bitsPerSec)))
}
