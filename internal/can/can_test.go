package can

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestFrameValidate(t *testing.T) {
	if err := (Frame{ID: 0x123, Data: []byte{1, 2, 3}}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Frame{ID: 0x800}).Validate(); err == nil {
		t.Fatal("11-bit overflow accepted")
	}
	if err := (Frame{ID: 0x800, Extended: true}).Validate(); err != nil {
		t.Fatal("extended id rejected")
	}
	if err := (Frame{ID: MaxExtendedID + 1, Extended: true}).Validate(); err == nil {
		t.Fatal("29-bit overflow accepted")
	}
	if err := (Frame{ID: 1, Data: make([]byte, 9)}).Validate(); err == nil {
		t.Fatal("9-byte payload accepted")
	}
	if err := (Frame{ID: 1, RTR: true, Data: []byte{1}}).Validate(); err == nil {
		t.Fatal("RTR with payload accepted")
	}
}

func TestNominalBits(t *testing.T) {
	// Standard 8-byte frame: 47 + 64 = 111 bits.
	if got := (Frame{ID: 1, Data: make([]byte, 8)}).NominalBits(); got != 111 {
		t.Fatalf("standard 8B = %d bits, want 111", got)
	}
	// Extended 8-byte frame: 67 + 64 = 131 bits.
	if got := (Frame{ID: 1, Extended: true, Data: make([]byte, 8)}).NominalBits(); got != 131 {
		t.Fatalf("extended 8B = %d bits, want 131", got)
	}
	// Empty standard frame: 47 bits.
	if got := (Frame{ID: 1}).NominalBits(); got != 47 {
		t.Fatalf("standard 0B = %d bits, want 47", got)
	}
}

func TestWorstCaseBits(t *testing.T) {
	// Standard 8-byte: 111 + floor((34+64-1)/4) = 111 + 24 = 135.
	if got := (Frame{ID: 1, Data: make([]byte, 8)}).WorstCaseBits(); got != 135 {
		t.Fatalf("stuffed standard 8B = %d, want 135", got)
	}
	// Standard 0-byte: 47 + floor(33/4)=8 -> 55.
	if got := (Frame{ID: 1}).WorstCaseBits(); got != 55 {
		t.Fatalf("stuffed standard 0B = %d, want 55", got)
	}
}

func TestTransmissionTime(t *testing.T) {
	// At 1 Mbit/s a bit is 1us; stuffed 8-byte standard frame = 135us.
	f := Frame{ID: 1, Data: make([]byte, 8)}
	if got := f.TransmissionTime(1_000_000); got != 135*sim.Microsecond {
		t.Fatalf("tx time = %v, want 135us", got)
	}
	// At 500 kbit/s twice as long.
	if got := f.TransmissionTime(500_000); got != 270*sim.Microsecond {
		t.Fatalf("tx time = %v, want 270us", got)
	}
}

func TestArbitrationKeyOrdering(t *testing.T) {
	lo := Frame{ID: 0x100}
	hi := Frame{ID: 0x101}
	if !lo.HigherPriority(hi) {
		t.Fatal("lower ID must win")
	}
	// A standard frame beats an extended frame with the same 11-bit prefix.
	std := Frame{ID: 0x100}
	ext := Frame{ID: 0x100 << 18, Extended: true}
	if !std.HigherPriority(ext) {
		t.Fatal("standard must beat extended with same prefix")
	}
	// But an extended frame with a smaller prefix wins.
	ext2 := Frame{ID: 0x0FF << 18, Extended: true}
	if !ext2.HigherPriority(std) {
		t.Fatal("extended with smaller prefix must win")
	}
}

// Property: arbitration order is total and matches ID order for
// same-format frames.
func TestPropArbitrationMatchesIDOrder(t *testing.T) {
	f := func(a, b uint16) bool {
		fa := Frame{ID: uint32(a) & MaxStandardID}
		fb := Frame{ID: uint32(b) & MaxStandardID}
		if fa.ID == fb.ID {
			return !fa.HigherPriority(fb) && !fb.HigherPriority(fa)
		}
		return fa.HigherPriority(fb) == (fa.ID < fb.ID)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBusSingleFrame(t *testing.T) {
	s := sim.New()
	bus := NewBus(s, 1_000_000)
	a := bus.Attach("a")
	b := bus.Attach("b")
	var got []Frame
	b.SetRx(func(f Frame, at sim.Time) { got = append(got, f) })
	if err := a.Send(Frame{ID: 0x10, Data: []byte{0xAA}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 0x10 || got[0].Data[0] != 0xAA {
		t.Fatalf("delivery = %+v", got)
	}
	if a.Sent != 1 || b.Received != 1 {
		t.Fatalf("stats: sent=%d recv=%d", a.Sent, b.Received)
	}
}

func TestBusArbitrationOrder(t *testing.T) {
	s := sim.New()
	bus := NewBus(s, 1_000_000)
	a := bus.Attach("a")
	b := bus.Attach("b")
	sink := bus.Attach("sink")
	var order []uint32
	sink.SetRx(func(f Frame, at sim.Time) { order = append(order, f.ID) })

	// Enqueue out of priority order at t=0 from two nodes.
	if err := a.Send(Frame{ID: 0x300}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(Frame{ID: 0x100}, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(Frame{ID: 0x200}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []uint32{0x100, 0x200, 0x300}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %#v, want %#v", order, want)
		}
	}
}

func TestBusNonPreemption(t *testing.T) {
	// A high-priority frame enqueued while a low-priority frame is on the
	// wire must wait for the wire to clear (non-preemptive arbitration).
	s := sim.New()
	bus := NewBus(s, 1_000_000)
	a := bus.Attach("a")
	sink := bus.Attach("sink")
	var deliveries []sim.Time
	sink.SetRx(func(f Frame, at sim.Time) { deliveries = append(deliveries, at) })

	if err := a.Send(Frame{ID: 0x400, Data: make([]byte, 8)}, nil); err != nil { // 135us on wire
		t.Fatal(err)
	}
	s.Schedule(10*sim.Microsecond, func() {
		if err := a.Send(Frame{ID: 0x001}, nil); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 2 {
		t.Fatalf("deliveries = %v", deliveries)
	}
	if deliveries[0] != 135*sim.Microsecond {
		t.Fatalf("first delivery at %v, want 135us", deliveries[0])
	}
	// Second frame (55 stuffed bits) starts at 135us, completes at 190us.
	if deliveries[1] != 190*sim.Microsecond {
		t.Fatalf("second delivery at %v, want 190us", deliveries[1])
	}
}

func TestAcceptanceFilter(t *testing.T) {
	s := sim.New()
	bus := NewBus(s, 500_000)
	a := bus.Attach("a")
	b := bus.Attach("b")
	b.SetFilter(MaskFilter(0x700, 0x100)) // accept 0x100-0x1FF
	var got []uint32
	b.SetRx(func(f Frame, at sim.Time) { got = append(got, f.ID) })
	for _, id := range []uint32{0x100, 0x1FF, 0x200, 0x050} {
		if err := a.Send(Frame{ID: id}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 0x050 wins arbitration first but is filtered out; only the 0x1xx
	// frames pass, in arbitration order.
	if len(got) != 2 || got[0] != 0x100 || got[1] != 0x1FF {
		t.Fatalf("got = %#v, want [0x100 0x1FF]", got)
	}
	if b.Filtered != 2 {
		t.Fatalf("filtered = %d, want 2", b.Filtered)
	}
}

func TestBusUtilizationAndLog(t *testing.T) {
	s := sim.New()
	bus := NewBus(s, 1_000_000)
	bus.Record = true
	a := bus.Attach("a")
	bus.Attach("b")
	for i := 0; i < 5; i++ {
		if err := a.Send(Frame{ID: uint32(i + 1), Data: make([]byte, 8)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if bus.FramesOnWire != 5 {
		t.Fatalf("frames = %d", bus.FramesOnWire)
	}
	if len(bus.Log) != 5 {
		t.Fatalf("log = %d entries", len(bus.Log))
	}
	// Wire was continuously busy: utilization 1.0.
	if u := bus.Utilization(); u < 0.999 {
		t.Fatalf("utilization = %v, want ~1", u)
	}
	// Latencies are monotonically increasing (queueing).
	for i := 1; i < len(bus.Log); i++ {
		if bus.Log[i].Latency() <= bus.Log[i-1].Latency() {
			t.Fatalf("latencies not increasing: %v then %v", bus.Log[i-1].Latency(), bus.Log[i].Latency())
		}
	}
}

func TestOnSentCallback(t *testing.T) {
	s := sim.New()
	bus := NewBus(s, 1_000_000)
	a := bus.Attach("a")
	bus.Attach("b")
	var sentAt sim.Time = -1
	if err := a.Send(Frame{ID: 5}, func(at sim.Time) { sentAt = at }); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sentAt != 55*sim.Microsecond {
		t.Fatalf("sentAt = %v, want 55us", sentAt)
	}
}

func TestSendInvalidFrame(t *testing.T) {
	s := sim.New()
	bus := NewBus(s, 1_000_000)
	a := bus.Attach("a")
	if err := a.Send(Frame{ID: 0x1000}, nil); err == nil {
		t.Fatal("invalid frame accepted")
	}
}

// Property: for any batch of same-time frames with distinct IDs, delivery
// order equals sorted ID order (bitwise arbitration is a priority queue).
func TestPropBusDeliveryOrder(t *testing.T) {
	f := func(idsRaw []uint16) bool {
		if len(idsRaw) == 0 || len(idsRaw) > 32 {
			return true
		}
		seen := make(map[uint32]bool)
		var ids []uint32
		for _, r := range idsRaw {
			id := uint32(r) & MaxStandardID
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		s := sim.New()
		bus := NewBus(s, 1_000_000)
		tx := bus.Attach("tx")
		rx := bus.Attach("rx")
		var order []uint32
		rx.SetRx(func(fr Frame, at sim.Time) { order = append(order, fr.ID) })
		for _, id := range ids {
			if err := tx.Send(Frame{ID: id}, nil); err != nil {
				return false
			}
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(order) != len(ids) {
			return false
		}
		for i := 1; i < len(order); i++ {
			if order[i-1] >= order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneDeep(t *testing.T) {
	f := Frame{ID: 1, Data: []byte{1, 2}}
	c := f.Clone()
	c.Data[0] = 9
	if f.Data[0] != 1 {
		t.Fatal("Clone shares payload")
	}
}

func TestBitTime(t *testing.T) {
	if BitTime(1_000_000) != sim.Microsecond {
		t.Fatalf("1Mbit bit time = %v", BitTime(1_000_000))
	}
	if BitTime(500_000) != 2*sim.Microsecond {
		t.Fatalf("500k bit time = %v", BitTime(500_000))
	}
}
