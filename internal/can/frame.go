// Package can simulates a Controller Area Network bus: frames with
// priority-based bitwise arbitration, bit-stuffing-aware transmission
// times, and broadcast delivery with acceptance filtering.
//
// This is the protocol-layer substrate for the virtualized CAN controller
// of Section III (package canvirt). The simulation is event-driven on the
// sim kernel and reproduces the properties the paper's experiment relies
// on: frames are serialized by identifier priority, transmission time is
// payload- and bitrate-dependent, and the medium is a broadcast.
package can

import (
	"fmt"

	"repro/internal/sim"
)

// MaxStandardID is the largest 11-bit identifier.
const MaxStandardID = 0x7FF

// MaxExtendedID is the largest 29-bit identifier.
const MaxExtendedID = 0x1FFFFFFF

// MaxDataLen is the classical CAN payload limit.
const MaxDataLen = 8

// Frame is a classical CAN 2.0 data frame.
type Frame struct {
	// ID is the identifier; lower wins arbitration.
	ID uint32
	// Extended selects the 29-bit identifier format.
	Extended bool
	// RTR marks a remote transmission request (no data).
	RTR bool
	// Data is the payload (0..8 bytes).
	Data []byte
}

// Validate checks identifier range and payload length.
func (f Frame) Validate() error {
	max := uint32(MaxStandardID)
	if f.Extended {
		max = MaxExtendedID
	}
	if f.ID > max {
		return fmt.Errorf("can: id %#x exceeds %#x", f.ID, max)
	}
	if len(f.Data) > MaxDataLen {
		return fmt.Errorf("can: payload %d exceeds %d bytes", len(f.Data), MaxDataLen)
	}
	if f.RTR && len(f.Data) > 0 {
		return fmt.Errorf("can: RTR frame with payload")
	}
	return nil
}

// dlc returns the data length code.
func (f Frame) dlc() int { return len(f.Data) }

// NominalBits returns the unstuffed frame length on the wire, including
// SOF, arbitration/control fields, data, CRC, ACK, EOF and the 3-bit
// intermission that separates frames.
//
// Standard frame: 1 SOF + 11 ID + 1 RTR + 6 control + 8n data + 15 CRC +
// 1 CRC delim + 2 ACK + 7 EOF + 3 IFS = 47 + 8n.
// Extended frame: adds SRR/IDE and 18 more ID bits = 67 + 8n.
func (f Frame) NominalBits() int {
	n := f.dlc()
	if f.RTR {
		n = 0
	}
	if f.Extended {
		return 67 + 8*n
	}
	return 47 + 8*n
}

// WorstCaseBits returns the worst-case frame length including the maximum
// number of stuff bits. Stuffing applies to the 34 (standard) or 54
// (extended) header+CRC bits plus the data bits, inserting at most one
// stuff bit per 4 bits after the first: floor((s + 8n - 1)/4).
func (f Frame) WorstCaseBits() int {
	n := f.dlc()
	if f.RTR {
		n = 0
	}
	stuffable := 34
	if f.Extended {
		stuffable = 54
	}
	stuff := (stuffable + 8*n - 1) / 4
	return f.NominalBits() + stuff
}

// BitTime returns the duration of one bit at the given bitrate.
func BitTime(bitsPerSec int64) sim.Time {
	if bitsPerSec <= 0 {
		panic("can: non-positive bitrate")
	}
	return sim.Time(int64(sim.Second) / bitsPerSec)
}

// TransmissionTime returns the worst-case (stuffed) wire time of the frame.
func (f Frame) TransmissionTime(bitsPerSec int64) sim.Time {
	return sim.Time(int64(f.WorstCaseBits()) * int64(BitTime(bitsPerSec)))
}

// NominalTransmissionTime returns the unstuffed wire time of the frame.
func (f Frame) NominalTransmissionTime(bitsPerSec int64) sim.Time {
	return sim.Time(int64(f.NominalBits()) * int64(BitTime(bitsPerSec)))
}

// arbitrationKey orders frames for arbitration. On real CAN, a standard
// frame with the same leading 11 bits wins over an extended frame (IDE
// dominant earlier); we reproduce that by comparing the 11-bit prefix
// first, then the format, then the remaining bits.
func (f Frame) arbitrationKey() uint64 {
	if !f.Extended {
		// standard: prefix=ID, ide=0, rest=0
		return uint64(f.ID) << 19
	}
	prefix := uint64(f.ID >> 18)   // top 11 bits
	rest := uint64(f.ID & 0x3FFFF) // low 18 bits
	return prefix<<19 | 1<<18 | rest
}

// HigherPriority reports whether f wins arbitration against g.
func (f Frame) HigherPriority(g Frame) bool {
	return f.arbitrationKey() < g.arbitrationKey()
}

// Clone returns a deep copy of the frame.
func (f Frame) Clone() Frame {
	out := f
	out.Data = append([]byte(nil), f.Data...)
	return out
}
