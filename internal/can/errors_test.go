package can

import (
	"testing"

	"repro/internal/sim"
)

func TestCorruptedTxRetransmitted(t *testing.T) {
	s := sim.New()
	bus := NewBus(s, 1_000_000)
	a := bus.Attach("a")
	rx := bus.Attach("rx")
	var got []uint32
	rx.SetRx(func(f Frame, at sim.Time) { got = append(got, f.ID) })

	a.CorruptNextTx(1)
	if err := a.Send(Frame{ID: 0x10}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The frame eventually arrives (retransmission).
	if len(got) != 1 || got[0] != 0x10 {
		t.Fatalf("got = %v", got)
	}
	if a.TxErrors != 1 || bus.ErrorFrames != 1 {
		t.Fatalf("txErrors=%d errorFrames=%d", a.TxErrors, bus.ErrorFrames)
	}
	// TEC: +8 for the error, -1 for the success.
	if a.TEC() != 7 {
		t.Fatalf("TEC = %d, want 7", a.TEC())
	}
	if a.ErrorState() != ErrorActive {
		t.Fatalf("state = %v", a.ErrorState())
	}
}

func TestErrorPassiveThreshold(t *testing.T) {
	s := sim.New()
	bus := NewBus(s, 1_000_000)
	a := bus.Attach("a")
	bus.Attach("rx")
	// 16 consecutive errors: TEC = 16*8 = 128 > 127 -> error passive,
	// then one success brings it to 127 (still passive until <= 127...
	// 127 is not > 127, so back to active at exactly 127).
	a.CorruptNextTx(16)
	if err := a.Send(Frame{ID: 0x10}, nil); err != nil {
		t.Fatal(err)
	}
	// Drain exactly the 16 error slots (each occupies half a frame plus an
	// error frame on the wire), stopping before the successful
	// retransmission completes.
	slot := Frame{ID: 0x10}.TransmissionTime(1_000_000)/2 + bus.ErrorFrameTime()
	if err := s.RunFor(16 * slot); err != nil {
		t.Fatal(err)
	}
	if a.TEC() != 128 {
		t.Fatalf("TEC = %d, want 128 after 16 errors", a.TEC())
	}
	if a.ErrorState() != ErrorPassive {
		t.Fatalf("state = %v at TEC %d", a.ErrorState(), a.TEC())
	}
	// Finish the run: the successful retransmission decrements the TEC
	// back below the passive threshold.
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if a.TEC() != 127 || a.ErrorState() != ErrorActive {
		t.Fatalf("after recovery: TEC=%d state=%v", a.TEC(), a.ErrorState())
	}
}

func TestBusOffDropsNode(t *testing.T) {
	s := sim.New()
	bus := NewBus(s, 1_000_000)
	a := bus.Attach("a")
	rx := bus.Attach("rx")
	var got int
	rx.SetRx(func(f Frame, at sim.Time) { got++ })

	// 32 errors push TEC to 256 > 255: bus-off; the frame never arrives.
	a.CorruptNextTx(32)
	if err := a.Send(Frame{ID: 0x10}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("bus-off node delivered %d frames", got)
	}
	if a.ErrorState() != BusOff {
		t.Fatalf("state = %v (TEC %d)", a.ErrorState(), a.TEC())
	}
	if a.Pending() != 0 {
		t.Fatalf("bus-off node still queues %d frames", a.Pending())
	}

	// Other nodes keep communicating.
	b := bus.Attach("b")
	if err := b.Send(Frame{ID: 0x20}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("healthy node blocked by bus-off peer (got %d)", got)
	}

	// Recovery: reset rejoins the bus.
	a.ResetErrors()
	if a.ErrorState() != ErrorActive {
		t.Fatalf("state after reset = %v", a.ErrorState())
	}
	if err := a.Send(Frame{ID: 0x30}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("recovered node did not deliver (got %d)", got)
	}
}

func TestRxErrorCounter(t *testing.T) {
	s := sim.New()
	bus := NewBus(s, 1_000_000)
	a := bus.Attach("a")
	for i := 0; i < 128; i++ {
		a.InjectRxError()
	}
	if a.REC() != 128 {
		t.Fatalf("REC = %d", a.REC())
	}
	if a.ErrorState() != ErrorPassive {
		t.Fatalf("state = %v", a.ErrorState())
	}
}

func TestErrorStateString(t *testing.T) {
	if ErrorActive.String() != "error-active" || BusOff.String() != "bus-off" {
		t.Fatal("state names")
	}
}

func TestErrorFramesOccupyWire(t *testing.T) {
	s := sim.New()
	bus := NewBus(s, 1_000_000)
	a := bus.Attach("a")
	bus.Attach("rx")
	a.CorruptNextTx(1)
	if err := a.Send(Frame{ID: 0x10}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Wire time: half frame + error frame + full retransmission.
	frame := Frame{ID: 0x10}.TransmissionTime(1_000_000)
	want := frame/2 + bus.ErrorFrameTime() + frame
	if bus.BusyTime != want {
		t.Fatalf("busy = %v, want %v", bus.BusyTime, want)
	}
}
