package can

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// RxHandler receives a delivered frame with its delivery time.
type RxHandler func(f Frame, at sim.Time)

// AcceptanceFilter decides whether a received frame is passed to the node.
// A nil filter accepts everything.
type AcceptanceFilter func(f Frame) bool

// MaskFilter returns the classic mask/match acceptance filter:
// accepted iff id & mask == match & mask.
func MaskFilter(mask, match uint32) AcceptanceFilter {
	return func(f Frame) bool { return f.ID&mask == match&mask }
}

// txEntry is a queued transmission request.
type txEntry struct {
	frame    Frame
	enqueued sim.Time
	seq      uint64
	onSent   func(sent sim.Time) // optional completion callback
}

// Node is a CAN controller attached to the bus. Its transmit queue is
// priority-ordered by arbitration key (hardware message buffers behave
// this way); reception applies the acceptance filter before the handler.
type Node struct {
	name   string
	bus    *Bus
	queue  []*txEntry
	filter AcceptanceFilter
	rx     RxHandler

	// Fault confinement (see errors.go).
	tec       int
	rec       int
	corruptTx int

	// Stats
	Sent     int
	Received int
	Filtered int
	// TxErrors counts corrupted transmissions (error frames caused).
	TxErrors int
}

// Name returns the node's identifier on the bus.
func (n *Node) Name() string { return n.name }

// SetFilter installs the acceptance filter (nil accepts all).
func (n *Node) SetFilter(f AcceptanceFilter) { n.filter = f }

// SetRx installs the receive handler.
func (n *Node) SetRx(h RxHandler) { n.rx = h }

// Pending returns the number of frames waiting in the TX queue.
func (n *Node) Pending() int { return len(n.queue) }

// Send enqueues a frame for transmission. onSent, if non-nil, runs when the
// frame's transmission completes (EOF on the wire).
func (n *Node) Send(f Frame, onSent func(sent sim.Time)) error {
	if err := f.Validate(); err != nil {
		return err
	}
	e := &txEntry{frame: f.Clone(), enqueued: n.bus.sim.Now(), seq: n.bus.nextSeq(), onSent: onSent}
	n.queue = append(n.queue, e)
	sort.SliceStable(n.queue, func(i, j int) bool {
		ki, kj := n.queue[i].frame.arbitrationKey(), n.queue[j].frame.arbitrationKey()
		if ki != kj {
			return ki < kj
		}
		return n.queue[i].seq < n.queue[j].seq
	})
	n.bus.kick()
	return nil
}

// head returns the highest-priority pending entry, or nil.
func (n *Node) head() *txEntry {
	if len(n.queue) == 0 {
		return nil
	}
	return n.queue[0]
}

func (n *Node) popHead() *txEntry {
	e := n.queue[0]
	n.queue = n.queue[1:]
	return e
}

// Delivery records one frame delivery for statistics.
type Delivery struct {
	Frame    Frame
	Enqueued sim.Time
	Sent     sim.Time // transmission complete
	Source   string
}

// Latency returns the enqueue-to-EOF latency.
func (d Delivery) Latency() sim.Time { return d.Sent - d.Enqueued }

// Bus is the shared medium. One frame is on the wire at a time; when the
// wire goes idle, the highest-priority head-of-queue frame across all
// nodes wins arbitration (CSMA/CR).
type Bus struct {
	sim        *sim.Simulator
	bitsPerSec int64
	nodes      []*Node
	busy       bool
	seq        uint64

	// Log collects all deliveries when Record is true.
	Record bool
	Log    []Delivery

	// BusyTime accumulates wire occupancy for utilization.
	BusyTime sim.Time
	// FramesOnWire counts completed transmissions.
	FramesOnWire int
	// ErrorFrames counts error frames on the wire.
	ErrorFrames int
}

// NewBus creates a bus on the given simulator at the given bitrate.
func NewBus(s *sim.Simulator, bitsPerSec int64) *Bus {
	if bitsPerSec <= 0 {
		panic("can: non-positive bitrate")
	}
	return &Bus{sim: s, bitsPerSec: bitsPerSec}
}

// BitsPerSec returns the configured bitrate.
func (b *Bus) BitsPerSec() int64 { return b.bitsPerSec }

// Utilization returns the fraction of elapsed time the wire was busy.
func (b *Bus) Utilization() float64 {
	now := b.sim.Now()
	if now == 0 {
		return 0
	}
	return float64(b.BusyTime) / float64(now)
}

// Attach adds a named node to the bus.
func (b *Bus) Attach(name string) *Node {
	n := &Node{name: name, bus: b}
	b.nodes = append(b.nodes, n)
	return n
}

func (b *Bus) nextSeq() uint64 {
	b.seq++
	return b.seq
}

// kick starts arbitration if the wire is idle. Scheduled at the current
// instant so that all frames enqueued in the same event round compete.
func (b *Bus) kick() {
	if b.busy {
		return
	}
	b.busy = true
	b.sim.Schedule(0, b.arbitrate)
}

// arbitrate picks the winning frame and simulates its transmission.
func (b *Bus) arbitrate() {
	var winner *Node
	var best *txEntry
	for _, n := range b.nodes {
		if n.ErrorState() == BusOff {
			continue
		}
		e := n.head()
		if e == nil {
			continue
		}
		if best == nil {
			winner, best = n, e
			continue
		}
		ki, kj := e.frame.arbitrationKey(), best.frame.arbitrationKey()
		switch {
		case ki < kj:
			winner, best = n, e
		case ki == kj && e.seq < best.seq:
			// Identical identifiers from two nodes would be a protocol
			// violation on real CAN; we resolve deterministically by
			// enqueue order to keep the simulation total.
			winner, best = n, e
		}
	}
	if best == nil {
		b.busy = false
		return
	}
	e := winner.popHead()
	if winner.corruptTx > 0 {
		// The transmission is hit by an error: the wire carries a partial
		// frame plus the error frame, the TEC rises, and the frame is
		// retransmitted (unless the node just went bus-off).
		winner.corruptTx--
		winner.TxErrors++
		b.ErrorFrames++
		cost := e.frame.TransmissionTime(b.bitsPerSec)/2 + b.ErrorFrameTime()
		b.BusyTime += cost
		b.sim.Schedule(cost, func() {
			winner.handleTxError(e)
			b.arbitrate()
		})
		return
	}
	tx := e.frame.TransmissionTime(b.bitsPerSec)
	b.BusyTime += tx
	b.sim.Schedule(tx, func() {
		b.complete(winner, e)
	})
}

// complete delivers the frame to all other nodes and re-arbitrates.
func (b *Bus) complete(src *Node, e *txEntry) {
	now := b.sim.Now()
	src.Sent++
	src.onTxSuccess()
	b.FramesOnWire++
	if b.Record {
		b.Log = append(b.Log, Delivery{Frame: e.frame, Enqueued: e.enqueued, Sent: now, Source: src.name})
	}
	for _, n := range b.nodes {
		if n == src {
			continue
		}
		if n.filter != nil && !n.filter(e.frame) {
			n.Filtered++
			continue
		}
		n.Received++
		if n.rx != nil {
			n.rx(e.frame.Clone(), now)
		}
	}
	if e.onSent != nil {
		e.onSent(now)
	}
	// Immediately arbitrate the next frame (IFS is part of frame length).
	b.arbitrate()
}

// String summarizes bus state for debugging.
func (b *Bus) String() string {
	return fmt.Sprintf("can.Bus{%d nodes, %d frames, util %.1f%%}", len(b.nodes), b.FramesOnWire, 100*b.Utilization())
}
