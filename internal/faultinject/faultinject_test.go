package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var inj *Injector
	f, ok, err := inj.Fire(nil, "stage.timing", "proc0")
	if ok || err != nil || f.Mode != "" {
		t.Fatalf("nil injector fired: %v %v %v", f, ok, err)
	}
	if inj.Fired() != nil || inj.TotalFired() != 0 {
		t.Fatalf("nil injector reported fires")
	}
}

func TestErrorModeWrapsSentinel(t *testing.T) {
	inj := New(1, Rule{Stage: "cpa.analyze", Mode: ModeError})
	_, ok, err := inj.Fire(nil, "cpa.analyze", "proc0")
	if !ok || err == nil {
		t.Fatalf("expected fire with error, got ok=%v err=%v", ok, err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error does not wrap ErrInjected: %v", err)
	}
	if !strings.Contains(err.Error(), "cpa.analyze") {
		t.Fatalf("error does not name the hook: %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	inj := New(1, Rule{Stage: "timing.worker", Mode: ModePanic})
	defer func() {
		if r := recover(); r == nil {
			t.Fatalf("expected panic")
		}
	}()
	inj.Fire(nil, "timing.worker", "")
}

func TestEverySkipCountDeterminism(t *testing.T) {
	// Skip 2, then fire every 3rd eligible call, at most 2 times:
	// calls 1,2 skipped; eligible calls 3,4,5,6,7,8 -> fires on 5 and 8.
	inj := New(7, Rule{Stage: "hook", Mode: ModeError, Skip: 2, Every: 3, Count: 2})
	var fires []int
	for i := 1; i <= 12; i++ {
		_, ok, _ := inj.Fire(nil, "hook", "")
		if ok {
			fires = append(fires, i)
		}
	}
	if len(fires) != 2 || fires[0] != 5 || fires[1] != 8 {
		t.Fatalf("expected fires at calls 5 and 8, got %v", fires)
	}
	if got := inj.Fired()["hook|error"]; got != 2 {
		t.Fatalf("Fired() = %d, want 2", got)
	}
}

func TestRateIsSeedDeterministic(t *testing.T) {
	run := func() []bool {
		inj := New(42, Rule{Stage: "hook", Mode: ModeError, Rate: 0.5})
		out := make([]bool, 40)
		for i := range out {
			_, out[i], _ = inj.Fire(nil, "hook", "")
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rate firing not deterministic at call %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate 0.5 fired %d/%d times", fired, len(a))
	}
}

func TestWildcardAndResourceMatch(t *testing.T) {
	inj := New(1,
		Rule{Stage: "stage.*", Resource: "", Mode: ModeError},
	)
	if _, ok, _ := inj.Fire(nil, "stage.timing", "x"); !ok {
		t.Fatalf("wildcard did not match stage.timing")
	}
	if _, ok, _ := inj.Fire(nil, "cpa.analyze", "x"); ok {
		t.Fatalf("wildcard matched cpa.analyze")
	}

	inj = New(1, Rule{Stage: "timing.worker", Resource: "proc1", Mode: ModeError})
	if _, ok, _ := inj.Fire(nil, "timing.worker", "proc0"); ok {
		t.Fatalf("resource filter did not apply")
	}
	if _, ok, _ := inj.Fire(nil, "timing.worker", "proc1"); !ok {
		t.Fatalf("resource match did not fire")
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	inj := New(1,
		Rule{Stage: "hook", Mode: ModeCorrupt},
		Rule{Stage: "hook", Mode: ModeError},
	)
	f, ok, err := inj.Fire(nil, "hook", "")
	if !ok || err != nil || f.Mode != ModeCorrupt {
		t.Fatalf("expected first rule (corrupt) to win, got %v ok=%v err=%v", f, ok, err)
	}
}

func TestStallBoundedByDone(t *testing.T) {
	inj := New(1, Rule{Stage: "hook", Mode: ModeStall, StallUS: 10_000_000}) // 10s
	done := make(chan struct{})
	close(done)
	start := time.Now()
	_, ok, err := inj.Fire(done, "hook", "")
	if !ok || err != nil {
		t.Fatalf("stall did not fire: ok=%v err=%v", ok, err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("stall ignored done channel, slept %v", el)
	}
}

func TestConcurrentFire(t *testing.T) {
	inj := New(1, Rule{Stage: "hook", Mode: ModeCorrupt, Every: 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				inj.Fire(nil, "hook", "")
			}
		}()
	}
	wg.Wait()
	if got := inj.TotalFired(); got != 4000 {
		t.Fatalf("TotalFired = %d, want 4000 (8000 calls, every 2nd)", got)
	}
}
