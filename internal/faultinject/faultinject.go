// Package faultinject provides a deterministic, seeded fault injector
// for the MCC admission pipeline. Production code threads an *Injector
// through its hot paths and calls Fire at named hook points; a nil
// injector is a no-op, so the hooks cost one nil check when fault
// injection is off.
//
// Hook points are keyed by a stage string (e.g. "stage.timing",
// "cpa.analyze", "timing.worker", "stream.prefetch", "journal.undo")
// and an optional resource string (the processor/network the hook is
// working on). The multi-tenant fleet server adds its own per-tenant
// hook points — "fleet.queue" (admission) and "fleet.worker" (the
// decision path), with the vehicle ID as the resource — because vehicle
// MCCs share one analyzer and must never carry injectors themselves
// (see the fleet package comment). Rules select hook points by exact
// stage name or a trailing-* prefix wildcard and choose a fault mode:
//
//   - ModeError: Fire returns an error wrapping ErrInjected.
//   - ModePanic: Fire panics (the code under test must recover).
//   - ModeStall: Fire sleeps StallUS microseconds (bounded by done).
//   - ModeSlow: like ModeStall, but semantically "slow, not stuck" —
//     callers treat it as latency, not a fault.
//   - ModeCorrupt: Fire reports ok=true and the caller applies a
//     deterministic corruption to its own state (e.g. truncating a
//     cached analysis result).
//
// Firing is deterministic per (seed, rule, call sequence): Skip skips
// the first matches, Every fires one match in every Every, Count stops
// a rule after it fired Count times, and Rate draws from the seeded
// PRNG. The injector is safe for concurrent use.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Mode selects what a firing rule does to the hook point.
type Mode string

// Fault modes.
const (
	ModeError   Mode = "error"
	ModePanic   Mode = "panic"
	ModeStall   Mode = "stall"
	ModeSlow    Mode = "slow"
	ModeCorrupt Mode = "corrupt"
)

// ErrInjected is the sentinel all injected errors wrap; retry logic
// classifies transient faults with errors.Is(err, ErrInjected).
var ErrInjected = errors.New("injected fault")

// Rule selects hook points and the fault to apply there.
type Rule struct {
	// Stage matches the hook point's stage key, exactly or — with a
	// trailing * — as a prefix ("stage.*" matches every pipeline stage).
	Stage string
	// Resource, when non-empty, additionally requires an exact match on
	// the hook point's resource key.
	Resource string
	// Mode is the fault to apply.
	Mode Mode
	// Skip skips the first Skip matching calls before the rule may fire.
	Skip int
	// Every, when > 0, fires on every Every-th eligible call
	// (deterministic). When 0, Rate decides; when Rate is also 0 the
	// rule fires on every eligible call.
	Every int
	// Rate is the per-eligible-call firing probability drawn from the
	// injector's seeded PRNG (used only when Every == 0).
	Rate float64
	// Count, when > 0, caps the total number of fires of this rule.
	Count int
	// StallUS is the stall/slow duration in microseconds (ModeStall and
	// ModeSlow; default 100).
	StallUS int64
}

// Fault describes a fire decision to the caller.
type Fault struct {
	// Mode is the fired rule's mode.
	Mode Mode
	// Stage and Resource echo the hook point keys.
	Stage    string
	Resource string
}

type ruleState struct {
	rule    Rule
	matched int // matching calls seen (for Skip)
	elig    int // eligible calls seen (for Every)
	fired   int // fires so far (for Count)
}

// Injector applies the configured rules at hook points. The zero value
// and the nil pointer are valid no-op injectors.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*ruleState
	fired map[string]int
}

// New returns an injector with the given seed and rules. Rules match
// in order; the first rule that fires wins.
func New(seed int64, rules ...Rule) *Injector {
	inj := &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		fired: make(map[string]int),
	}
	for _, r := range rules {
		if r.StallUS <= 0 {
			r.StallUS = 100
		}
		inj.rules = append(inj.rules, &ruleState{rule: r})
	}
	return inj
}

// matches reports whether the rule selects the hook point.
func (r Rule) matches(stage, resource string) bool {
	if r.Resource != "" && r.Resource != resource {
		return false
	}
	if p, ok := strings.CutSuffix(r.Stage, "*"); ok {
		return strings.HasPrefix(stage, p)
	}
	return r.Stage == stage
}

// Fire evaluates the rules at a hook point. On ModePanic it panics; on
// ModeError it returns a non-nil error wrapping ErrInjected; on
// ModeStall/ModeSlow it sleeps (bounded by done, which may be nil) and
// returns the fault with ok=true; on ModeCorrupt it returns the fault
// with ok=true and the caller applies the corruption. When no rule
// fires it returns ok=false. A nil injector never fires.
func (inj *Injector) Fire(done <-chan struct{}, stage, resource string) (Fault, bool, error) {
	if inj == nil {
		return Fault{}, false, nil
	}
	inj.mu.Lock()
	var hit *ruleState
	for _, st := range inj.rules {
		r := st.rule
		if !r.matches(stage, resource) {
			continue
		}
		st.matched++
		if st.matched <= r.Skip {
			continue
		}
		if r.Count > 0 && st.fired >= r.Count {
			continue
		}
		st.elig++
		switch {
		case r.Every > 0:
			if st.elig%r.Every != 0 {
				continue
			}
		case r.Rate > 0:
			if inj.rng.Float64() >= r.Rate {
				continue
			}
		}
		st.fired++
		inj.fired[stage+"|"+string(r.Mode)]++
		hit = st
		break
	}
	inj.mu.Unlock()
	if hit == nil {
		return Fault{}, false, nil
	}
	f := Fault{Mode: hit.rule.Mode, Stage: stage, Resource: resource}
	switch f.Mode {
	case ModePanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s/%s", stage, resource))
	case ModeError:
		return f, true, fmt.Errorf("%w at %s/%s", ErrInjected, stage, resource)
	case ModeStall, ModeSlow:
		d := time.Duration(hit.rule.StallUS) * time.Microsecond
		if done == nil {
			time.Sleep(d)
		} else {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-done:
				t.Stop()
			}
		}
		return f, true, nil
	default: // ModeCorrupt
		return f, true, nil
	}
}

// Wired reports whether any rule targets the given stage (for any
// resource), regardless of Skip/Every/Rate/Count state. Hot paths use
// it to skip defensive work whose only consumer is a fault injected at
// that hook point; the answer is conservative — a rule that can no
// longer fire (Count exhausted) still reports true. A nil injector is
// never wired.
func (inj *Injector) Wired(stage string) bool {
	if inj == nil {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, st := range inj.rules {
		if p, ok := strings.CutSuffix(st.rule.Stage, "*"); ok {
			if strings.HasPrefix(stage, p) {
				return true
			}
		} else if st.rule.Stage == stage {
			return true
		}
	}
	return false
}

// Fired returns a copy of the per-hook fire counters, keyed
// "stage|mode".
func (inj *Injector) Fired() map[string]int {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[string]int, len(inj.fired))
	for k, v := range inj.fired {
		out[k] = v
	}
	return out
}

// TotalFired returns the total number of fires across all hooks.
func (inj *Injector) TotalFired() int {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	n := 0
	for _, v := range inj.fired {
		n += v
	}
	return n
}
