package scenario

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/mcc"
	"repro/internal/model"
	"repro/internal/safety"
	"repro/internal/security"
)

// Differential parity harness: genfleet-random platforms and change
// streams are driven through the fully incremental engine, the
// from-scratch serial baseline, the stream scheduler, and the
// partition-sharded stream scheduler side by side, comparing verdict
// sequences. It directly probes the ROADMAP's known
// accept-side warm-start parity gap — an accepted warm placement may
// differ from the full best-fit placement, so on capacity-marginal
// workloads the two engines can legitimately accept different
// configurations — which the curated E12 stream alone can never
// exercise. The oracle is therefore two-tiered:
//
//   - incremental vs stream-parallel vs sharded: STRICT sequence
//     equality, always. The schedulers' window/replay construction
//     guarantees identity with serial proposals on the same engine; any
//     divergence here is a journal/rollback/cache/routing bug.
//   - incremental vs from-scratch serial: strict until the first
//     divergence carrying the documented gap signature (serial rejects
//     at a placement-dependent stage where a warm-mapped attempt
//     accepted, or the two accepted placements silently part ways);
//     everything downstream of a diverged deployment is incomparable.
//     Any other divergence — validation or security flips, differing
//     rejection stages, a cold-retried rejection that serial accepts —
//     fails the harness.
//
// The corpus below runs strictly (zero divergences of any kind) in CI on
// every build; `go test -fuzz FuzzMCCDecisionParity ./internal/scenario`
// hunts for new divergences locally. The checked-in fuzz testdata seed
// (found by this harness) regression-tests the gap detector itself.

// parityCorpus seeds the CI corpus: a spread of platform sizes, chain
// depths, headrooms, and change mixes, including removal-heavy and
// rejection-heavy streams. Every seed must decide divergence-free.
var parityCorpus = []uint64{0, 1, 2, 3, 5, 8, 13, 21, 42, 99, 1234, 0xdead}

// paritySpec derives a small randomized fleet spec from a fuzz seed. The
// shape parameters are folded out of the seed so the fuzzer explores
// platform size, topology, headroom, and change mix together.
func paritySpec(seed uint64) FleetSpec {
	return FleetSpec{
		Seed:       int64(seed),
		Processors: 4 + int(seed%13),      // 4..16
		Segments:   int(seed % 3),         // 0..2 (+ backbone)
		ChainDepth: 2 + int(seed>>3)%3,    // 2..4
		FnsPerProc: 1.5 + float64(seed%5), // 1.5..5.5
		Headroom:   0.2 + float64(seed>>5%5)*0.15,
		Mix: ChangeMix{
			Add:         1 + int(seed>>7%6),
			Update:      int(seed >> 9 % 4),
			Remove:      int(seed >> 11 % 3),
			Broken:      int(seed >> 13 % 3),
			CrossDomain: int(seed >> 15 % 3),
		},
	}
}

func verdict(rep *mcc.Report) string {
	if rep.Accepted {
		return "accept"
	}
	return fmt.Sprintf("reject@%s", rep.RejectedAt)
}

func verdicts(reports []*mcc.Report) []string {
	out := make([]string, 0, len(reports))
	for _, rep := range reports {
		out = append(out, verdict(rep))
	}
	return out
}

// warmMapped reports whether the attempt's surviving pass used the
// warm-started mapping (detected via the mapping stage's telemetry note).
func warmMapped(rep *mcc.Report) bool {
	tr := rep.StageTraceFor(mcc.StageMapping)
	return tr != nil && strings.HasPrefix(tr.Note, "warm-start:")
}

// placementDependent mirrors mcc's notion: validation and security decide
// on contracts and identities alone; every other stage's verdict can
// depend on the instance placement and hence on the warm-start heuristic.
func placementDependentStage(s mcc.Stage) bool {
	return s != mcc.StageValidate && s != mcc.StageSecurity
}

func placements(m *mcc.MCC) []string {
	impl := m.DeployedImpl()
	if impl == nil {
		return nil
	}
	out := make([]string, 0, len(impl.Tech.Instances))
	for _, in := range impl.Tech.Instances {
		out = append(out, in.ID()+"@"+in.Processor)
	}
	return out
}

// runParityCase generates the fleet for one seed and applies the
// two-tiered oracle. strict additionally fails on the documented
// warm-start gap (used for the curated CI corpus, which must be
// divergence-free outright).
func runParityCase(t *testing.T, seed uint64, strict bool) {
	t.Helper()
	spec := paritySpec(seed)
	fleet := GenFleet(spec)
	changes := fleet.Changes(24)

	newMCC := func(opts ...mcc.Option) *mcc.MCC {
		m, err := mcc.New(fleet.Platform, opts...)
		if err != nil {
			t.Fatalf("seed %#x: %v", seed, err)
		}
		return m
	}
	propose := func(m *mcc.MCC, c mcc.Change) *mcc.Report {
		if c.Update != nil {
			return m.ProposeUpdate(*c.Update)
		}
		return m.ProposeRemoval(c.Remove)
	}

	serial := newMCC(mcc.WithoutIncremental())
	inc := newMCC()
	streamed := newMCC()
	sharded := newMCC()
	sBase := serial.ProposeArchitecture(fleet.Baseline)
	iBase := inc.ProposeArchitecture(fleet.Baseline)
	tBase := streamed.ProposeArchitecture(fleet.Baseline)
	hBase := sharded.ProposeArchitecture(fleet.Baseline)
	if sBase.Accepted != iBase.Accepted || iBase.Accepted != tBase.Accepted || tBase.Accepted != hBase.Accepted {
		t.Fatalf("seed %#x: baseline verdicts diverge: serial=%v incremental=%v stream=%v sharded=%v",
			seed, sBase.Accepted, iBase.Accepted, tBase.Accepted, hBase.Accepted)
	}
	if !sBase.Accepted {
		return // infeasible baseline: nothing to stream
	}
	assertReportMatchesOracle(t, seed, -1, "serial", fleet.Platform, serial, sBase)
	assertReportMatchesOracle(t, seed, -1, "incremental", fleet.Platform, inc, iBase)
	assertReportMatchesOracle(t, seed, -1, "stream", fleet.Platform, streamed, tBase)
	assertReportMatchesOracle(t, seed, -1, "sharded", fleet.Platform, sharded, hBase)

	// Serial vs incremental: strict verdict-sequence equality until the
	// documented gap signature appears, and — satellite of the scoped
	// verdict stages — strict FINDINGS equality wherever the verdicts
	// agree: a scoped safety/security rejection must name exactly the
	// findings the from-scratch check names. Placements are NOT compared
	// here: the from-scratch engine reshuffles the whole fleet on every
	// proposal, so equally valid placements routinely differ while every
	// verdict agrees — which is exactly the empirical accept-side parity
	// the harness is quantifying.
	var incReports []*mcc.Report
	gapAt := -1
	for i, c := range changes {
		sr, ir := propose(serial, c), propose(inc, c)
		incReports = append(incReports, ir)
		// The whole-table oracle is per-engine (each engine's accepted
		// report against a cold analysis of ITS committed implementation),
		// so it stays valid even downstream of a cross-engine divergence.
		assertReportMatchesOracle(t, seed, i, "serial", fleet.Platform, serial, sr)
		assertReportMatchesOracle(t, seed, i, "incremental", fleet.Platform, inc, ir)
		if gapAt >= 0 {
			continue // downstream of a diverged decision: incomparable
		}
		if verdict(sr) != verdict(ir) {
			gapSig := sr.Accepted != ir.Accepted && ir.Accepted == warmMapped(ir) &&
				placementDependentStage(sr.RejectedAt) && placementDependentStage(ir.RejectedAt)
			if gapSig && !strict {
				gapAt = i
				t.Logf("seed %#x: accept-side warm-start gap at change %d (serial %s, incremental %s) — documented, downstream incomparable",
					seed, i, verdict(sr), verdict(ir))
				continue
			}
			t.Fatalf("seed %#x: verdict divergence at change %d: serial %s, incremental %s (warm=%v)",
				seed, i, verdict(sr), verdict(ir), warmMapped(ir))
		}
		if !reflect.DeepEqual(sr.Findings, ir.Findings) {
			t.Fatalf("seed %#x: findings divergence at change %d (%s):\nserial      %v\nincremental %v",
				seed, i, verdict(sr), sr.Findings, ir.Findings)
		}
		assertCommittedClean(t, seed, i, "incremental", inc)
	}

	// Incremental vs stream-parallel vs sharded: strict, always —
	// verdicts AND findings, including across rollback-then-recheck
	// sequences (a window or epoch replay must reproduce the serial
	// findings verbatim). The sharded leg additionally covers partition
	// routing, per-shard window formation, global drains, and the epoch
	// journal; on fleets without disjoint segments it degrades to the
	// single-sequence scheduler, so the corpus exercises the fallback too.
	legs := []struct {
		label   string
		m       *mcc.MCC
		reports []*mcc.Report
	}{
		{"stream", streamed, mcc.NewStreamScheduler(streamed).Run(changes)},
		{"sharded", sharded, mcc.NewStreamScheduler(sharded, mcc.WithShardedWindows()).Run(changes)},
	}
	for _, leg := range legs {
		want, got := verdicts(incReports), verdicts(leg.reports)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %#x: %s verdicts diverge from serial proposals on the same engine:\nproposals %v\n%s %v",
				seed, leg.label, want, leg.label, got)
		}
		for i := range incReports {
			if !reflect.DeepEqual(leg.reports[i].Findings, incReports[i].Findings) {
				t.Fatalf("seed %#x: %s findings diverge at change %d:\nproposals %v\n%s %v",
					seed, leg.label, i, incReports[i].Findings, leg.label, leg.reports[i].Findings)
			}
			// Same engine, serial-equivalent commit order: every accepted
			// report's materialized tables must reproduce the serial
			// proposal's — bound snapshots mid-window included.
			if leg.reports[i].Accepted {
				if !reflect.DeepEqual(leg.reports[i].FullTiming(), incReports[i].FullTiming()) {
					t.Fatalf("seed %#x: %s FullTiming diverges at change %d", seed, leg.label, i)
				}
				if !reflect.DeepEqual(leg.reports[i].FullMonitors(), incReports[i].FullMonitors()) {
					t.Fatalf("seed %#x: %s FullMonitors diverges at change %d", seed, leg.label, i)
				}
			}
		}
		// The engine state now reflects the final commit, so the
		// from-scratch oracle applies to the last accepted report.
		for i := len(leg.reports) - 1; i >= 0; i-- {
			if leg.reports[i].Accepted {
				assertReportMatchesOracle(t, seed, i, leg.label, fleet.Platform, leg.m, leg.reports[i])
				break
			}
		}
		if !reflect.DeepEqual(placements(inc), placements(leg.m)) {
			t.Fatalf("seed %#x: %s deployment diverges from serial proposals on the same engine", seed, leg.label)
		}
		assertCommittedClean(t, seed, len(changes)-1, leg.label, leg.m)
	}
}

// assertReportMatchesOracle compares an accepted report's materialized
// whole-table views against a cold from-scratch analysis of the engine's
// committed implementation. This is the delta-report completeness oracle:
// however small the report's TimingDelta/MonitorDelta, FullTiming and
// FullMonitors must reconstruct exactly the tables a from-scratch
// analysis of the committed configuration produces. The comparison is
// per-engine (engines may legitimately commit different placements), so
// it stays valid downstream of cross-engine divergences.
func assertReportMatchesOracle(t *testing.T, seed uint64, change int, label string, p *model.Platform, m *mcc.MCC, rep *mcc.Report) {
	t.Helper()
	if rep == nil || !rep.Accepted {
		return
	}
	wantTiming, wantMonitors, err := mcc.FromScratchTables(p, m.DeployedImpl())
	if err != nil {
		t.Fatalf("seed %#x: %s from-scratch oracle failed after change %d: %v", seed, label, change, err)
	}
	if got := rep.FullTiming(); !reflect.DeepEqual(got, wantTiming) {
		t.Fatalf("seed %#x: %s FullTiming diverges from the from-scratch oracle after change %d:\ngot  %+v\nwant %+v",
			seed, label, change, got, wantTiming)
	}
	if got := rep.FullMonitors(); !reflect.DeepEqual(got, wantMonitors) {
		t.Fatalf("seed %#x: %s FullMonitors diverges from the from-scratch oracle after change %d:\ngot  %+v\nwant %+v",
			seed, label, change, got, wantMonitors)
	}
}

// assertCommittedClean runs the from-scratch safety and security checks
// over an engine's deployed implementation model and fails on any
// finding. This is the scoped-vs-full findings-parity oracle on the
// accept side: the diff-scoped verdict stages splice untouched entities
// as committed-clean, so a single finding surviving into a committed
// configuration would mean the splice waved a violation through where
// the full check would have rejected.
func assertCommittedClean(t *testing.T, seed uint64, change int, label string, m *mcc.MCC) {
	t.Helper()
	impl := m.DeployedImpl()
	if impl == nil {
		return
	}
	if f := safety.Check(impl.Tech); len(f) > 0 {
		t.Fatalf("seed %#x: %s engine committed safety findings after change %d: %v", seed, label, change, f)
	}
	if f := security.CheckDomains(impl); len(f) > 0 {
		t.Fatalf("seed %#x: %s engine committed security findings after change %d: %v", seed, label, change, f)
	}
}

// TestMCCDecisionParityCorpus is the CI leg of the harness: every corpus
// seed must show zero verdict divergences across the four engines.
func TestMCCDecisionParityCorpus(t *testing.T) {
	for _, seed := range parityCorpus {
		seed := seed
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			runParityCase(t, seed, true)
		})
	}
}

// FuzzMCCDecisionParity is the local hunting leg: the fuzzer mutates the
// seed, each value generating a fresh platform + stream; any divergence
// that is not the documented warm-start gap is a crash to minimize.
func FuzzMCCDecisionParity(f *testing.F) {
	for _, seed := range parityCorpus {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		runParityCase(t, seed, false)
	})
}
