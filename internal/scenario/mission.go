package scenario

import (
	"fmt"

	"repro/internal/behavior"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/skills"
	"repro/internal/vehicle"
)

// MissionConfig parameterizes the end-to-end mission run (the capstone
// integration: every layer of the repository acting together over one
// drive).
type MissionConfig struct {
	// DistanceM is the mission length.
	DistanceM float64
	// CruiseSpeed is the requested speed (m/s).
	CruiseSpeed float64
	// CrossLayer selects the coordinated response; false = any detected
	// compromise forces an immediate safe stop (the naive baseline).
	CrossLayer bool
	// RainAtS / RainClearsAtS bound a weather-degradation window.
	RainAtS       float64
	RainClearsAtS float64
	// IntrusionAtS is when the rear-brake compromise is detected.
	IntrusionAtS float64
	// TimeoutS aborts the run.
	TimeoutS float64
}

// DefaultMissionConfig returns the baseline mission.
func DefaultMissionConfig() MissionConfig {
	return MissionConfig{
		DistanceM:     10_000,
		CruiseSpeed:   25,
		CrossLayer:    true,
		RainAtS:       60,
		RainClearsAtS: 150,
		IntrusionAtS:  240,
		TimeoutS:      1800,
	}
}

// MissionEvent is one entry of the mission log.
type MissionEvent struct {
	AtS  float64
	What string
}

// MissionResult is the outcome of one mission run.
type MissionResult struct {
	Config MissionConfig
	// Completed reports whether the full distance was covered.
	Completed bool
	// DurationS is the time driven (to completion or standstill).
	DurationS float64
	// DistanceM is the distance actually covered.
	DistanceM float64
	// Maneuvers lists the distinct maneuvers visited, in order.
	Maneuvers []string
	// Conflicts counts cross-layer decision conflicts (must be 0).
	Conflicts int
	// Events is the annotated timeline.
	Events []MissionEvent
	// FinalSpeedCap is the cap in force at the end (0 = none).
	FinalSpeedCap float64
}

// Rows renders the mission summary.
func (r MissionResult) Rows() []string {
	out := []string{
		fmt.Sprintf("cross-layer=%v: completed=%v, %.1f km in %.0fs",
			r.Config.CrossLayer, r.Completed, r.DistanceM/1000, r.DurationS),
		fmt.Sprintf("maneuvers: %v, conflicts: %d, final speed cap: %.1f m/s",
			r.Maneuvers, r.Conflicts, r.FinalSpeedCap),
	}
	for _, e := range r.Events {
		out = append(out, fmt.Sprintf("  t=%4.0fs  %s", e.AtS, e.What))
	}
	return out
}

// RunMission executes the capstone scenario: ability-guided behaviour
// execution with weather degradation and a mid-mission intrusion, handled
// either cross-layer (derate and continue) or naively (stop).
func RunMission(cfg MissionConfig) (MissionResult, error) {
	res := MissionResult{Config: cfg}
	logEvent := func(t float64, what string) {
		res.Events = append(res.Events, MissionEvent{AtS: t, What: what})
	}

	veh := vehicle.New(vehicle.DefaultParams())
	veh.SetSpeed(cfg.CruiseSpeed)
	ag, err := skills.InstantiateACC()
	if err != nil {
		return res, err
	}
	rep := core.NewSelfRepresentation()
	rep.AttachAbilityGraph(ag)
	planner := behavior.New(behavior.DefaultConfig(cfg.CruiseSpeed))
	coord := core.NewCoordinator(rep)

	// Layer stack for the intrusion (mirrors E5's coordinated topology).
	if err := coord.RegisterLayer(core.LayerSecurity, func(p *core.Problem, ctx *core.Context) (core.Resolution, bool) {
		veh.SetRearBrakeHealth(0)
		if err := ag.SetHealth(skills.SinkBrakingSystem, skills.Level(veh.BrakingFraction())); err != nil {
			return core.Resolution{}, false
		}
		rep.SetStatus(core.LayerSecurity, p.Subject, "contained")
		sub, err := ctx.Raise(&core.Problem{Kind: "component-lost", Subject: p.Subject, Origin: core.LayerSafety, Severity: monitor.Critical})
		if err != nil {
			return core.Resolution{}, false
		}
		return sub, true
	}, ""); err != nil {
		return res, err
	}
	if err := coord.RegisterLayer(core.LayerSafety, func(p *core.Problem, ctx *core.Context) (core.Resolution, bool) {
		return core.Resolution{}, false // no rear-brake standby
	}, core.LayerAbility); err != nil {
		return res, err
	}
	if err := coord.RegisterLayer(core.LayerAbility, func(p *core.Problem, ctx *core.Context) (core.Resolution, bool) {
		if !cfg.CrossLayer {
			return core.Resolution{}, false // naive: no ability reassessment
		}
		veh.SetDrivetrainBraking(true)
		cap := veh.SafeSpeedForStoppingDistance(40)
		planner.SetSpeedCap(cap)
		res.FinalSpeedCap = cap
		return core.Resolution{
			Action: "derate+drivetrain-braking", Claims: []string{"vehicle-motion"},
			FunctionalityRetained: cap / cfg.CruiseSpeed, SafeState: true,
		}, true
	}, core.LayerObjective); err != nil {
		return res, err
	}
	if err := coord.RegisterLayer(core.LayerObjective, func(p *core.Problem, ctx *core.Context) (core.Resolution, bool) {
		// Naive endpoint: force the planner into a safe stop by zeroing
		// the braking ability view.
		if err := ag.SetHealth(skills.ACCDriving, 0); err != nil {
			return core.Resolution{}, false
		}
		return core.Resolution{
			Action: "safe-stop", Claims: []string{"vehicle-motion"},
			FunctionalityRetained: 0.05, SafeState: true,
		}, true
	}, ""); err != nil {
		return res, err
	}

	const dt = 0.1
	var lastManeuver string
	rained, cleared, intruded := false, false, false
	t := 0.0
	for ; t < cfg.TimeoutS; t += dt {
		// Timeline events.
		if !rained && cfg.RainAtS > 0 && t >= cfg.RainAtS {
			rained = true
			if err := ag.SetHealth(skills.SrcEnvSensors, 0.6); err != nil {
				return res, err
			}
			logEvent(t, "heavy rain: sensor quality 0.60")
		}
		if !cleared && cfg.RainClearsAtS > 0 && t >= cfg.RainClearsAtS {
			cleared = true
			if err := ag.SetHealth(skills.SrcEnvSensors, 1.0); err != nil {
				return res, err
			}
			logEvent(t, "rain clears: sensor quality 1.00")
		}
		if !intruded && cfg.IntrusionAtS > 0 && t >= cfg.IntrusionAtS {
			intruded = true
			decision, err := coord.Report(&core.Problem{
				Kind: "security-leak", Subject: "rear-brake-ctl",
				Origin: core.LayerSecurity, Severity: monitor.Critical,
			})
			if err != nil {
				return res, err
			}
			logEvent(t, fmt.Sprintf("intrusion contained; decision: %s @ %s", decision.Action, decision.Layer))
		}

		// Behaviour execution.
		d := planner.Step(ag.Level(skills.ACCDriving), veh.Speed())
		if d.Maneuver.String() != lastManeuver {
			lastManeuver = d.Maneuver.String()
			res.Maneuvers = append(res.Maneuvers, lastManeuver)
			logEvent(t, fmt.Sprintf("maneuver -> %s (%s)", d.Maneuver, d.Reason))
		}

		// Idealized speed tracking.
		diff := d.TargetSpeed - veh.Speed()
		accel := diff / 2
		if accel > 2 {
			accel = 2
		}
		if accel < -veh.MaxDeceleration() {
			accel = -veh.MaxDeceleration()
		}
		veh.Step(accel, dt)

		if veh.Position() >= cfg.DistanceM {
			res.Completed = true
			break
		}
		if d.Maneuver == behavior.Standstill && veh.Speed() == 0 {
			logEvent(t, "standstill: mission aborted")
			break
		}
	}
	res.DurationS = t
	res.DistanceM = veh.Position()
	res.Conflicts = len(coord.Conflicts())
	return res, nil
}

// RunMissionComparison runs the mission with and without cross-layer
// coordination.
func RunMissionComparison() ([]MissionResult, error) {
	var out []MissionResult
	for _, cl := range []bool{true, false} {
		cfg := DefaultMissionConfig()
		cfg.CrossLayer = cl
		r, err := RunMission(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
