package scenario

import (
	"fmt"
	"time"
)

// E13 is the fleet-scale stress tier: the same change-stream throughput
// measurement as E12, swept across generated platforms of 32, 128, and
// 512 processors (see genfleet.go). Its purpose is to make
// diff-proportionality visible as flat-vs-platform-size curves: with the
// incremental engine, TimingScans per decided change must track the
// change footprint — a couple of resources — no matter how many
// processors the platform has, while the serial baseline's scans (and
// wall clock) grow with the platform. The same contract holds for the
// diff-scoped safety/security verdict stages via SecurityChecks/
// SafetyChecks (ChecksPerChange): flat for the incremental modes,
// fleet-sized for serial.

// MCCScaleConfig parameterizes the E13 sweep.
type MCCScaleConfig struct {
	// Procs lists the platform sizes to sweep.
	Procs []int
	// Updates is the number of streamed change requests per run.
	Updates int
	// Modes lists the integration strategies to compare at every size.
	Modes []MCCThroughputMode
	// Spec is the generator template; Processors is overridden per sweep
	// point. The zero value selects DefaultFleetSpec at each size.
	Spec FleetSpec
}

// DefaultMCCScaleConfig returns the baseline E13 parameters.
func DefaultMCCScaleConfig() MCCScaleConfig {
	return MCCScaleConfig{
		Procs:   []int{32, 128, 512, 2048},
		Updates: 32,
		Modes:   []MCCThroughputMode{ThroughputSerial, ThroughputFull, ThroughputStream},
	}
}

// E16 is the shard-scaling tier: the same sweep, restricted to the two
// stream schedulers — the single window sequence and the sharded one —
// so the trajectory records what partitioning the platform buys at every
// size. The generated fleets have procs/16 disjoint CAN segments plus a
// backbone, so the sharded scheduler forms procs/16 concurrent window
// sequences; the ~10% removals in the change mix are global drains,
// which keeps the epoch/global-window machinery honest in the
// measurement. On a single-core runner the sharded win is the epoch
// batching alone (fewer window barriers; it lands at the unwindowed
// full-incremental floor); multi-core runners add the prefetch overlap.

// DefaultMCCShardScaleConfig returns the baseline E16 parameters. The
// change count is deliberately much larger than E13's: the scheduler
// comparison is a wall-clock ratio, a short point measures OS scheduling
// jitter rather than the scheduler, and a longer stream also keeps the
// per-shard batch depth honest at the large sizes (procs/16 shards over
// too few changes leaves every shard's window nearly empty).
func DefaultMCCShardScaleConfig() MCCScaleConfig {
	return MCCScaleConfig{
		Procs:   []int{128, 512, 1024},
		Updates: 1024,
		Modes:   []MCCThroughputMode{ThroughputStream, ThroughputSharded},
	}
}

// MCCScaleRow is one (platform size, mode) point of the sweep.
type MCCScaleRow struct {
	// Procs is the generated platform's processor count.
	Procs int
	// Resources is the number of schedulable resources (processors plus
	// networks) the platform exposes to the timing acceptance test.
	Resources int
	// Result carries the throughput/telemetry counters of the run.
	Result MCCThroughputResult
}

// ScansPerChange is the headline diff-proportionality metric: timing-job
// scans per decided change. Incremental modes hold it at the change
// footprint; the serial baseline scans every resource per evaluation, so
// it grows with Resources.
func (r MCCScaleRow) ScansPerChange() float64 {
	n := r.Result.Accepted + r.Result.Rejected
	if n == 0 {
		return 0
	}
	return float64(r.Result.TimingScans) / float64(n)
}

// ChecksPerChange is the verdict-stage analogue of ScansPerChange:
// security per-connection plus safety per-entity verdicts computed per
// decided change. The diff-scoped checks hold it at the change footprint
// across platform sizes; the serial baseline re-verifies the whole
// implementation model per evaluation, so it grows with the fleet.
func (r MCCScaleRow) ChecksPerChange() float64 {
	n := r.Result.Accepted + r.Result.Rejected
	if n == 0 {
		return 0
	}
	return float64(r.Result.SecurityChecks+r.Result.SafetyChecks) / float64(n)
}

// Rows renders the E13 table.
func ScaleRows(rows []MCCScaleRow) []string {
	out := []string{"procs  resources  mode              changes  acc  rej  scans  scans/change  checks/change  wall        changes/s"}
	for _, r := range rows {
		res := r.Result
		out = append(out, fmt.Sprintf("%5d  %9d  %-17s %7d  %3d  %3d  %5d  %12.2f  %13.2f  %9v  %9.0f",
			r.Procs, r.Resources, res.Config.Mode, res.Config.Updates,
			res.Accepted, res.Rejected, res.TimingScans, r.ScansPerChange(), r.ChecksPerChange(),
			res.StreamWall.Round(time.Microsecond),
			float64(res.Config.Updates)/res.StreamWall.Seconds()))
	}
	return out
}

// ShardScaleRows renders the E16 table: the scheduler-telemetry view of
// the sweep (shards formed, global drains, replays) next to throughput.
func ShardScaleRows(rows []MCCScaleRow) []string {
	out := []string{"procs  mode              changes  acc  rej  shards  windows  global  spec  repl  conf  wall        changes/s"}
	for _, r := range rows {
		res := r.Result
		st := res.Stream
		out = append(out, fmt.Sprintf("%5d  %-17s %7d  %3d  %3d  %6d  %7d  %6d  %4d  %4d  %4d  %9v  %9.0f",
			r.Procs, res.Config.Mode, res.Config.Updates,
			res.Accepted, res.Rejected, st.Shards, st.Windows, st.GlobalWindows,
			st.Speculated, st.Replays, st.Conflicts,
			res.StreamWall.Round(time.Microsecond),
			float64(res.Config.Updates)/res.StreamWall.Seconds()))
	}
	return out
}

// RunMCCScale executes the E13 sweep: for every platform size, generate
// the fleet once (platform, baseline, change stream — identical across
// modes), then measure every integration strategy on it.
func RunMCCScale(cfg MCCScaleConfig) ([]MCCScaleRow, error) {
	if len(cfg.Procs) == 0 {
		cfg.Procs = DefaultMCCScaleConfig().Procs
	}
	if cfg.Updates <= 0 {
		cfg.Updates = DefaultMCCScaleConfig().Updates
	}
	if len(cfg.Modes) == 0 {
		cfg.Modes = DefaultMCCScaleConfig().Modes
	}
	var rows []MCCScaleRow
	for _, procs := range cfg.Procs {
		spec := cfg.Spec
		if spec == (FleetSpec{}) {
			spec = DefaultFleetSpec(procs)
		} else {
			spec.Processors = procs
		}
		fleet := GenFleet(spec)
		changes := fleet.Changes(cfg.Updates)
		for _, mode := range cfg.Modes {
			tcfg := MCCThroughputConfig{Updates: cfg.Updates, BatchSize: 8, Mode: mode}
			res, err := runChangeStream(tcfg, fleet.Platform, fleet.Baseline, changes)
			if err != nil {
				return nil, fmt.Errorf("e13 %dp %s: %w", procs, mode, err)
			}
			rows = append(rows, MCCScaleRow{
				Procs:     procs,
				Resources: len(fleet.Platform.Processors) + len(fleet.Platform.Networks),
				Result:    res,
			})
		}
	}
	return rows, nil
}
