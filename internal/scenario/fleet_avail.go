package scenario

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cpa"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/mcc"
)

// E15 is the multi-tenant availability tier: M vehicles (generated from K
// platform archetypes, so same-model vehicles share analyzer digests)
// hosted by one fleet.Server and driven concurrently under per-tenant
// injected faults. For every fault spec the tier measures sustained
// decision throughput, the decision-latency distribution, and the shed
// rate, and asserts the bulkhead contract as data: while one tenant is
// being killed, stalled, or shed, every HEALTHY vehicle's decisions must
// be bit-identical (verdict + findings) to its never-restarted standalone
// oracle, with zero decisions lost or duplicated — the blast radius of a
// faulted tenant is zero.
//
// The faults go through the fleet's own hook points ("fleet.worker",
// "fleet.queue") keyed by the faulted vehicle's ID; vehicle MCCs never
// carry injectors (see the fleet package comment on shared-analyzer
// pollution). The overload column instead shrinks the global in-flight
// budget below the offered concurrency, proving backpressure sheds
// explicitly instead of hanging; its healthy vehicles shed by design, so
// the blast-radius parity check is skipped there (ParityChecked=false).

// availSeed seeds every E15 injector so rate-based rules are reproducible.
const availSeed = 0x0E15

// FleetFaultSpec is one column of the E15 fault matrix. Rule resources
// are filled in at run time with the faulted vehicle's ID, so every rule
// targets exactly one tenant.
type FleetFaultSpec struct {
	// Name labels the spec in rows and JSON.
	Name string
	// Rules configures the injector; Resource is overwritten with the
	// faulted vehicle ID (except for Overload specs, whose rules stay
	// fleet-wide).
	Rules []faultinject.Rule
	// Overload, when set, runs the spec with a global in-flight budget of
	// OverloadBudget: healthy vehicles shed by design, so the parity check
	// is skipped.
	Overload bool
	// OverloadBudget is the MaxInFlight for an Overload spec (default 2).
	OverloadBudget int
}

// DefaultFleetFaultSpecs returns the E15 fault matrix: a clean control
// column, a repeatedly crashing tenant (supervised restart + redelivery),
// a stalled tenant (latency isolation), a tenant whose admission layer
// fails (per-tenant shed), and a fleet-wide overload column.
func DefaultFleetFaultSpecs() []FleetFaultSpec {
	return []FleetFaultSpec{
		{Name: "none"},
		{
			// The faulted tenant's worker panics on every 3rd decision
			// attempt: the supervisor rebuilds it from its committed
			// trajectory and redelivers the in-flight request.
			Name:  "tenant-panic",
			Rules: []faultinject.Rule{{Stage: "fleet.worker", Mode: faultinject.ModePanic, Every: 3, Count: 4}},
		},
		{
			// The faulted tenant's decision path stalls 2ms per request:
			// injected latency on one bulkhead, isolation for the rest.
			Name:  "tenant-stall",
			Rules: []faultinject.Rule{{Stage: "fleet.worker", Mode: faultinject.ModeStall, Every: 2, StallUS: 2000}},
		},
		{
			// The faulted tenant's admission layer fails every other
			// request: explicit per-tenant shed, zero pipeline time spent.
			Name:  "admission-error",
			Rules: []faultinject.Rule{{Stage: "fleet.queue", Mode: faultinject.ModeError, Every: 2}},
		},
		{
			// Offered concurrency exceeds the global in-flight budget:
			// backpressure must shed explicitly, never hang. The fleet-wide
			// slow worker keeps slots occupied long enough to contend.
			Name:     "overload",
			Overload: true,
			Rules:    []faultinject.Rule{{Stage: "fleet.worker", Mode: faultinject.ModeSlow, StallUS: 5000}},
		},
	}
}

// FleetAvailConfig parameterizes the E15 run.
type FleetAvailConfig struct {
	// Vehicles is the tenant count M.
	Vehicles int
	// Archetypes is the number of distinct platform archetypes K; vehicles
	// are assigned round-robin, so same-archetype vehicles share platform,
	// baseline, and analyzer digests.
	Archetypes int
	// Procs is each archetype platform's processor count.
	Procs int
	// Updates is the number of streamed change requests per vehicle.
	Updates int
	// QueueDepth / MaxInFlight override the server bounds (defaults:
	// fleet defaults for the queue, 2*Vehicles for the budget so healthy
	// serial drivers never shed outside the overload column).
	QueueDepth  int
	MaxInFlight int
	// Specs is the fault matrix.
	Specs []FleetFaultSpec
}

// DefaultFleetAvailConfig returns the baseline E15 parameters.
func DefaultFleetAvailConfig() FleetAvailConfig {
	return FleetAvailConfig{
		Vehicles:   6,
		Archetypes: 2,
		Procs:      8,
		Updates:    12,
		Specs:      DefaultFleetFaultSpecs(),
	}
}

// FleetAvailRow is one fault-spec point of the E15 matrix.
type FleetAvailRow struct {
	// Spec names the fault spec.
	Spec string
	// Vehicles/Archetypes/Procs/ChangesPerVehicle echo the configuration.
	Vehicles          int
	Archetypes        int
	Procs             int
	ChangesPerVehicle int
	// Offered counts Propose calls; Decided the subset that ran the
	// pipeline; Shed the subset rejected at admission. Offered is always
	// Decided+Shed: no request hangs or vanishes.
	Offered  int64
	Decided  int64
	Accepted int64
	Rejected int64
	Shed     int64
	// ShedRatePct is 100*Shed/Offered.
	ShedRatePct float64
	// Crashes/Restarts/Parked sum the supervisor telemetry.
	Crashes  int64
	Restarts int64
	Parked   int
	// FaultedVehicle is the tenant the rules target ("" for none/overload).
	FaultedVehicle string
	// FaultedLost counts the faulted tenant's own requests that never
	// reached the pipeline (shed at its failing admission layer).
	FaultedLost int
	// ParityChecked reports whether the blast-radius parity applies to the
	// row (false only for the overload column, where healthy vehicles shed
	// by design).
	ParityChecked bool
	// HealthyLost counts decisions lost on healthy vehicles (any verdict
	// that did not run the pipeline) and HealthyMismatches the decisions
	// that diverged from the standalone oracle; BlastRadiusOK is the
	// headline verdict — both zero.
	HealthyLost       int
	HealthyMismatches int
	FirstMismatch     string
	BlastRadiusOK     bool
	// FaultsInjected is the injector's total fire count.
	FaultsInjected int
	// Latency distribution over the decided (pipeline) requests.
	MeanLatencyUS int64
	P99LatencyUS  int64
	MaxLatencyUS  int64
	// ChangesPerSec is the sustained decision throughput (Decided/wall).
	ChangesPerSec float64
	// WallUS is the wall clock of driving all vehicles concurrently.
	WallUS int64
	// CacheHits/CacheMisses/FlightWaits snapshot the shared analyzer:
	// same-archetype tenants pay each busy-window analysis once fleet-wide.
	CacheHits   int64
	CacheMisses int64
	FlightWaits int64
}

// availVehicle is one tenant with its archetype, deterministic stream,
// and precomputed standalone oracle.
type availVehicle struct {
	id     string
	arch   *Fleet
	stream []mcc.Change
	oracle []*mcc.Report
}

// RunFleetAvail executes E15: generate the archetypes and per-vehicle
// streams, derive each vehicle's standalone oracle once, then host the
// whole fleet under every fault spec and compare the healthy vehicles'
// decisions against the oracle.
func RunFleetAvail(cfg FleetAvailConfig) ([]FleetAvailRow, error) {
	if cfg.Vehicles < 2 {
		return nil, fmt.Errorf("scenario: fleet avail needs >= 2 vehicles, got %d", cfg.Vehicles)
	}
	if cfg.Archetypes < 1 || cfg.Archetypes > cfg.Vehicles {
		return nil, fmt.Errorf("scenario: fleet avail needs 1..%d archetypes, got %d", cfg.Vehicles, cfg.Archetypes)
	}
	if cfg.Procs < 2 {
		return nil, fmt.Errorf("scenario: fleet avail platform needs >= 2 processors, got %d", cfg.Procs)
	}
	if cfg.Updates < 1 {
		return nil, fmt.Errorf("scenario: fleet avail stream needs >= 1 update, got %d", cfg.Updates)
	}

	archetypes := make([]*Fleet, cfg.Archetypes)
	for k := range archetypes {
		spec := DefaultFleetSpec(cfg.Procs)
		spec.Seed = int64(k + 1)
		archetypes[k] = GenFleet(spec)
	}

	// One memo table shared by the oracle runs only; the fleet servers get
	// their own analyzers so the rows measure fleet-side sharing honestly.
	memo := cpa.NewAnalyzer()
	vehicles := make([]*availVehicle, cfg.Vehicles)
	for i := range vehicles {
		arch := archetypes[i%cfg.Archetypes]
		v := &availVehicle{
			id:   fmt.Sprintf("a%d-v%02d", i%cfg.Archetypes, i),
			arch: arch,
			// Each vehicle draws its own stream from the archetype's
			// generator: same change mix, distinct deterministic draws.
			stream: arch.ChangesWithSeed(cfg.Updates, int64(101+i*7919)),
		}
		oracle, err := availOracle(v, memo)
		if err != nil {
			return nil, fmt.Errorf("fleet avail oracle %s: %w", v.id, err)
		}
		v.oracle = oracle
		vehicles[i] = v
	}

	rows := make([]FleetAvailRow, 0, len(cfg.Specs))
	for _, fs := range cfg.Specs {
		row, err := runFleetAvailSpec(cfg, vehicles, fs)
		if err != nil {
			return nil, fmt.Errorf("fleet avail %s: %w", fs.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// availOracle decides a vehicle's stream on a standalone, never-restarted
// MCC with the same options a fleet vehicle gets.
func availOracle(v *availVehicle, memo *cpa.Analyzer) ([]*mcc.Report, error) {
	m, err := mcc.New(v.arch.Platform, mcc.WithAnalyzer(memo))
	if err != nil {
		return nil, err
	}
	if rep := m.ProposeArchitecture(v.arch.Baseline); !rep.Accepted {
		return nil, fmt.Errorf("baseline rejected at %s: %v", rep.RejectedAt, rep.Findings)
	}
	out := make([]*mcc.Report, len(v.stream))
	for i, c := range v.stream {
		out[i] = proposeChaosChange(m, c)
	}
	return out, nil
}

// runFleetAvailSpec hosts the fleet under one fault spec: all vehicles
// driven concurrently (serially within each tenant, preserving stream
// order), then the healthy-vehicle parity and telemetry accounting.
func runFleetAvailSpec(cfg FleetAvailConfig, vehicles []*availVehicle, fs FleetFaultSpec) (FleetAvailRow, error) {
	row := FleetAvailRow{
		Spec:              fs.Name,
		Vehicles:          cfg.Vehicles,
		Archetypes:        cfg.Archetypes,
		Procs:             cfg.Procs,
		ChangesPerVehicle: cfg.Updates,
		ParityChecked:     !fs.Overload,
	}
	var inj *faultinject.Injector
	if len(fs.Rules) > 0 {
		rules := make([]faultinject.Rule, len(fs.Rules))
		copy(rules, fs.Rules)
		if !fs.Overload {
			row.FaultedVehicle = vehicles[0].id
			for i := range rules {
				rules[i].Resource = row.FaultedVehicle
			}
		}
		inj = faultinject.New(availSeed, rules...)
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		// Serial per-tenant drivers keep at most one request in flight per
		// vehicle, so this budget never sheds a healthy request.
		maxInFlight = 2 * cfg.Vehicles
	}
	if fs.Overload {
		maxInFlight = fs.OverloadBudget
		if maxInFlight <= 0 {
			maxInFlight = 2
		}
	}
	srv, err := fleet.New(fleet.Config{
		QueueDepth:     cfg.QueueDepth,
		MaxInFlight:    maxInFlight,
		MaxRestarts:    10,
		RestartBackoff: time.Millisecond,
		Injector:       inj,
	})
	if err != nil {
		return row, err
	}
	defer srv.Drain()
	for _, v := range vehicles {
		if err := srv.AddVehicle(v.id, v.arch.Platform, v.arch.Baseline); err != nil {
			return row, err
		}
	}

	type drive struct {
		decisions []fleet.Decision
		latsUS    []int64
	}
	drives := make([]drive, len(vehicles))
	var wg sync.WaitGroup
	start := time.Now()
	for i, v := range vehicles {
		wg.Add(1)
		go func(i int, v *availVehicle) {
			defer wg.Done()
			d := &drives[i]
			for _, c := range v.stream {
				t0 := time.Now()
				dec := srv.Propose(nil, v.id, c)
				lat := time.Since(t0).Microseconds()
				d.decisions = append(d.decisions, dec)
				if dec.Verdict == fleet.Accepted || dec.Verdict == fleet.Rejected {
					d.latsUS = append(d.latsUS, lat)
				}
			}
		}(i, v)
	}
	wg.Wait()
	row.WallUS = time.Since(start).Microseconds()

	st := srv.Stats()
	row.Offered = st.Offered
	row.Decided = st.Decided
	row.Accepted = st.Accepted
	row.Rejected = st.Rejected
	row.Shed = st.Shed
	row.Crashes = st.Crashes
	row.Restarts = st.Restarts
	row.Parked = st.Parked
	row.CacheHits = st.Analyzer.Hits
	row.CacheMisses = st.Analyzer.Misses
	row.FlightWaits = st.Analyzer.FlightWaits
	row.FaultsInjected = inj.TotalFired()
	if row.Offered > 0 {
		row.ShedRatePct = 100 * float64(row.Shed) / float64(row.Offered)
	}
	if row.Offered != row.Decided+row.Shed {
		return row, fmt.Errorf("%d offered != %d decided + %d shed (a request hung or vanished)",
			row.Offered, row.Decided, row.Shed)
	}

	var lats []int64
	for i, v := range vehicles {
		d := drives[i]
		lats = append(lats, d.latsUS...)
		if len(d.decisions) != len(v.stream) {
			return row, fmt.Errorf("%s: %d decisions for %d changes", v.id, len(d.decisions), len(v.stream))
		}
		if v.id == row.FaultedVehicle {
			for _, dec := range d.decisions {
				if dec.Verdict != fleet.Accepted && dec.Verdict != fleet.Rejected {
					row.FaultedLost++
				}
			}
			continue
		}
		if !row.ParityChecked {
			continue
		}
		for j, dec := range d.decisions {
			if dec.Verdict != fleet.Accepted && dec.Verdict != fleet.Rejected {
				row.HealthyLost++
				continue
			}
			if diff := chaosCompare(dec.Report, v.oracle[j]); diff != "" {
				row.HealthyMismatches++
				if row.FirstMismatch == "" {
					row.FirstMismatch = fmt.Sprintf("%s change %d: %s", v.id, j, diff)
				}
			}
		}
	}
	row.BlastRadiusOK = !row.ParityChecked || (row.HealthyLost == 0 && row.HealthyMismatches == 0)

	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum int64
		for _, l := range lats {
			sum += l
		}
		row.MeanLatencyUS = sum / int64(len(lats))
		row.P99LatencyUS = lats[(99*len(lats)+99)/100-1]
		row.MaxLatencyUS = lats[len(lats)-1]
	}
	if row.WallUS > 0 {
		row.ChangesPerSec = float64(row.Decided) / (float64(row.WallUS) / 1e6)
	}
	return row, nil
}
