package scenario

import (
	"fmt"

	"repro/internal/deps"
	"repro/internal/monitor"
	"repro/internal/rte"
	"repro/internal/sim"
)

// OverheadResult is the E9 outcome: the cost of run-time monitoring,
// which the paper claims "is actually implemented with very little
// interference on the actual functionality".
type OverheadResult struct {
	// BaselineMaxRespUS is the critical task's max response without
	// monitoring.
	BaselineMaxRespUS int64
	// MonitoredMaxRespUS is the same with budget+rate monitors attached.
	MonitoredMaxRespUS int64
	// OverheadPct is the relative increase.
	OverheadPct float64
	// Deviations counts monitor findings during the run (sanity: the
	// monitors actually observed the workload).
	Deviations int
	// Jobs counts supervised completions.
	Jobs int
}

// Rows renders the E9 table.
func (r OverheadResult) Rows() []string {
	return []string{
		fmt.Sprintf("max response unmonitored: %dus", r.BaselineMaxRespUS),
		fmt.Sprintf("max response monitored:   %dus", r.MonitoredMaxRespUS),
		fmt.Sprintf("monitoring overhead: %.2f%% over %d jobs", r.OverheadPct, r.Jobs),
	}
}

// RunMonitorOverhead executes E9: the same task set with and without
// monitoring; monitoring costs one extra context-switch-equivalent per
// supervised completion (charged as dispatch overhead).
func RunMonitorOverhead() (OverheadResult, error) {
	var res OverheadResult
	run := func(monitored bool) (int64, int, int, error) {
		s := sim.New()
		p := rte.NewProc(s, "ecu", 1.0)
		rng := sim.NewRNG(3)
		spec := rte.TaskSpec{
			Name: "ctl", Priority: 1, Period: 10 * sim.Millisecond, WCET: 4 * sim.Millisecond,
			Exec: func() sim.Time { return sim.Time(rng.Uniform(2000, 4200)) * sim.Microsecond },
		}
		if err := p.AddTask(spec); err != nil {
			return 0, 0, 0, err
		}
		if err := p.AddTask(rte.TaskSpec{
			Name: "bg", Priority: 2, Period: 50 * sim.Millisecond, WCET: 20 * sim.Millisecond,
		}); err != nil {
			return 0, 0, 0, err
		}
		devs := 0
		jobs := 0
		if monitored {
			// The monitor itself: a budget check per completion plus a
			// rate check; its execution cost is modeled as 20us of
			// dispatch overhead per context switch.
			p.CtxSwitch = 20 * sim.Microsecond
			var sink monitor.Sink = func(monitor.Deviation) { devs++ }
			bm := monitor.NewBudgetMonitor("ctl", 4*sim.Millisecond, sink)
			rm := monitor.NewRateMonitor("ctl", 10*sim.Millisecond, sim.Millisecond, false, sink)
			p.OnCompletion(func(j rte.JobRecord) {
				if j.Task != "ctl" {
					return
				}
				jobs++
				bm.ObserveJob(j.Exec, j.Finish, j.Deadline)
				rm.Arrival(j.Release)
			})
		}
		if err := s.RunFor(10 * sim.Second); err != nil {
			return 0, 0, 0, err
		}
		_, _, _, maxResp, err := p.TaskStats("ctl")
		if err != nil {
			return 0, 0, 0, err
		}
		return int64(maxResp / sim.Microsecond), devs, jobs, nil
	}

	base, _, _, err := run(false)
	if err != nil {
		return res, err
	}
	mon, devs, jobs, err := run(true)
	if err != nil {
		return res, err
	}
	res.BaselineMaxRespUS = base
	res.MonitoredMaxRespUS = mon
	res.Deviations = devs
	res.Jobs = jobs
	if base > 0 {
		res.OverheadPct = 100 * float64(mon-base) / float64(base)
	}
	return res, nil
}

// DepsResult is the E10 outcome: automated cross-layer dependency
// analysis versus the manual per-layer FMEA baseline.
type DepsResult struct {
	// RowsData lists, per analyzed failure source, the impact set sizes.
	RowsData []DepsRow
	// ChainsToObjective counts effect chains from the power supply into
	// the objective layer.
	ChainsToObjective int
	// CommonCauses lists nodes impacting both driving functions.
	CommonCauses []string
}

// DepsRow compares automated and manual impact sizes for one source.
type DepsRow struct {
	Source    string
	Manual    int
	Automated int
	MissedPct float64
}

// Rows renders the E10 table.
func (r DepsResult) Rows() []string {
	out := []string{"failure source      manual  automated  missed-by-manual"}
	for _, row := range r.RowsData {
		out = append(out, fmt.Sprintf("%-18s %6d %10d %16.0f%%", row.Source, row.Manual, row.Automated, row.MissedPct))
	}
	out = append(out,
		fmt.Sprintf("effect chains psu -> objective layer: %d", r.ChainsToObjective),
		fmt.Sprintf("common causes of both driving functions: %v", r.CommonCauses),
	)
	return out
}

// BuildVehicleDependencyGraph constructs a vehicle-scale cross-layer
// dependency model: 2 ECUs + power + thermal environment, CAN, OS
// schedulers, 4 functions, safety mechanisms, and the driving objective.
func BuildVehicleDependencyGraph() (*deps.Graph, error) {
	g := deps.NewGraph()
	n := func(l deps.Layer, name string) deps.NodeID { return deps.NodeID{Layer: l, Name: name} }
	type e struct {
		from, to deps.NodeID
		kind     deps.EdgeKind
	}
	edges := []e{
		// Platform.
		{n(deps.LayerPlatform, "ecu1"), n(deps.LayerPlatform, "psu"), deps.DependsOn},
		{n(deps.LayerPlatform, "ecu2"), n(deps.LayerPlatform, "psu"), deps.DependsOn},
		{n(deps.LayerPlatform, "ambient-temp"), n(deps.LayerPlatform, "ecu1"), deps.Influences},
		{n(deps.LayerPlatform, "ambient-temp"), n(deps.LayerPlatform, "ecu2"), deps.Influences},
		// Comm.
		{n(deps.LayerComm, "can0"), n(deps.LayerPlatform, "psu"), deps.DependsOn},
		// OS.
		{n(deps.LayerOS, "rte1"), n(deps.LayerPlatform, "ecu1"), deps.MapsTo},
		{n(deps.LayerOS, "rte2"), n(deps.LayerPlatform, "ecu2"), deps.MapsTo},
		// Functions.
		{n(deps.LayerFunction, "perception"), n(deps.LayerOS, "rte2"), deps.MapsTo},
		{n(deps.LayerFunction, "perception"), n(deps.LayerComm, "can0"), deps.DependsOn},
		{n(deps.LayerFunction, "acc"), n(deps.LayerOS, "rte1"), deps.MapsTo},
		{n(deps.LayerFunction, "acc"), n(deps.LayerFunction, "perception"), deps.DependsOn},
		{n(deps.LayerFunction, "acc"), n(deps.LayerComm, "can0"), deps.DependsOn},
		{n(deps.LayerFunction, "brake-ctl"), n(deps.LayerOS, "rte1"), deps.MapsTo},
		{n(deps.LayerFunction, "brake-ctl"), n(deps.LayerComm, "can0"), deps.DependsOn},
		{n(deps.LayerFunction, "hmi"), n(deps.LayerOS, "rte2"), deps.MapsTo},
		// Safety mechanisms.
		{n(deps.LayerSafety, "brake-monitor"), n(deps.LayerFunction, "brake-ctl"), deps.DependsOn},
		{n(deps.LayerSafety, "brake-monitor"), n(deps.LayerOS, "rte1"), deps.MapsTo},
		// Objective.
		{n(deps.LayerObjective, "driving"), n(deps.LayerFunction, "acc"), deps.DependsOn},
		{n(deps.LayerObjective, "driving"), n(deps.LayerFunction, "brake-ctl"), deps.DependsOn},
		{n(deps.LayerObjective, "driving"), n(deps.LayerSafety, "brake-monitor"), deps.DependsOn},
	}
	for _, ed := range edges {
		if err := g.AddEdge(ed.from, ed.to, ed.kind); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// RunDependencyAnalysis executes E10.
func RunDependencyAnalysis() (DepsResult, error) {
	var res DepsResult
	g, err := BuildVehicleDependencyGraph()
	if err != nil {
		return res, err
	}
	sources := []deps.NodeID{
		{Layer: deps.LayerPlatform, Name: "psu"},
		{Layer: deps.LayerPlatform, Name: "ecu1"},
		{Layer: deps.LayerPlatform, Name: "ambient-temp"},
		{Layer: deps.LayerComm, Name: "can0"},
	}
	for _, src := range sources {
		man := g.ManualImpactSize(src)
		auto := g.ImpactSize(src)
		missed := 0.0
		if auto > 0 {
			missed = 100 * float64(auto-man) / float64(auto)
		}
		res.RowsData = append(res.RowsData, DepsRow{
			Source: src.String(), Manual: man, Automated: auto, MissedPct: missed,
		})
	}
	chains := g.EffectChains(deps.NodeID{Layer: deps.LayerPlatform, Name: "psu"}, deps.LayerObjective, 10)
	res.ChainsToObjective = len(chains)
	cc := g.CommonCause([]deps.NodeID{
		{Layer: deps.LayerFunction, Name: "acc"},
		{Layer: deps.LayerFunction, Name: "brake-ctl"},
	})
	for _, c := range cc {
		res.CommonCauses = append(res.CommonCauses, c.String())
	}
	return res, nil
}
