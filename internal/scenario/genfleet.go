package scenario

import (
	"fmt"
	"math/rand"

	"repro/internal/mcc"
	"repro/internal/model"
)

// This file implements the parameterized fleet generator behind the E13
// scale tier and the differential parity harness: a seeded PRNG derives a
// platform (processor count, network topology), a pre-deployed baseline
// workload (task chains of configurable depth, sized to a utilization
// headroom), and a change stream with a configurable mix — all
// deterministic per FleetSpec, so every integration mode and every
// differential run sees byte-identical inputs.

// FleetSpec parameterizes one generated fleet.
type FleetSpec struct {
	// Seed drives every random choice; equal specs generate equal fleets.
	Seed int64
	// Processors is the platform size (half ASIL-D lockstep cores, half
	// fast QM/B cores).
	Processors int
	// Segments is the number of CAN segments beside the fleet backbone;
	// processors attach round-robin. 0 means backbone only.
	Segments int
	// ChainDepth is the number of functions per processing chain
	// (perception -> fusion stages -> control); 1 disables chaining.
	ChainDepth int
	// FnsPerProc scales the baseline workload: total baseline functions ≈
	// Processors * FnsPerProc (chains plus standalone QM applications).
	FnsPerProc float64
	// Headroom is the fraction of fleet capacity the baseline leaves
	// free (0..1); change streams consume part of it.
	Headroom float64
	// Mix weighs the change-stream generator's choices.
	Mix ChangeMix
}

// ChangeMix holds the relative weights of the change kinds in a generated
// stream. Zero-weight kinds never occur; an all-zero mix defaults to adds.
type ChangeMix struct {
	// Add introduces a new standalone telemetry function (disjoint
	// footprint, the common fleet case).
	Add int
	// Update bumps the WCET estimate of a deployed baseline function.
	Update int
	// Remove removes a telemetry function added earlier in the stream
	// (degrades to Add while none exists). Removals have a global
	// footprint and serialize stream windows.
	Remove int
	// Broken proposes a contract violation (WCET > deadline) the
	// validation stage must reject.
	Broken int
	// CrossDomain introduces a client of a baseline chain service from a
	// foreign security domain, granted an AllowedPeers entry about half
	// the time — the other half must be rejected by the security stage.
	// Degrades to Add when the baseline exposes no services.
	CrossDomain int
}

// DefaultFleetSpec returns the E13 baseline parameters at the given
// platform size.
func DefaultFleetSpec(processors int) FleetSpec {
	return FleetSpec{
		Seed:       1,
		Processors: processors,
		Segments:   max(1, processors/16),
		ChainDepth: 3,
		FnsPerProc: 2.0,
		Headroom:   0.5,
		Mix:        ChangeMix{Add: 6, Update: 3, Remove: 1, Broken: 1},
	}
}

// Fleet is one generated scenario: the platform, the baseline workload to
// pre-deploy, and the deterministic change-stream generator state.
type Fleet struct {
	Spec     FleetSpec
	Platform *model.Platform
	Baseline *model.FunctionalArchitecture

	// baseNames lists the baseline functions eligible for updates.
	baseNames []string
	// services lists the chain services the baseline provides, the
	// targets of generated cross-domain clients.
	services []string
}

// GenFleet generates the platform and baseline workload for a spec.
func GenFleet(spec FleetSpec) *Fleet {
	if spec.Processors < 2 {
		spec.Processors = 2
	}
	if spec.ChainDepth < 1 {
		spec.ChainDepth = 1
	}
	if spec.FnsPerProc <= 0 {
		spec.FnsPerProc = 2.0
	}
	if spec.Headroom < 0.1 {
		spec.Headroom = 0.1
	}
	if spec.Headroom > 0.9 {
		spec.Headroom = 0.9
	}
	f := &Fleet{Spec: spec}
	f.Platform = genPlatform(spec)
	rng := rand.New(rand.NewSource(spec.Seed))
	f.Baseline = f.genBaseline(rng)
	return f
}

// genPlatform builds the platform: half lockstep ASIL-D cores (reference
// speed), half fast ASIL-B cores, CAN segments attaching processors
// round-robin, and a backbone attaching everything. The backbone
// bandwidth scales with the fleet size (a bigger platform ships a faster
// interconnect), so bus capacity does not become the scaling bottleneck
// the experiment is not about. Segments are listed before the backbone:
// Platform.Connecting picks the first shared network, so intra-segment
// flows ride the segment bus and only cross-segment traffic loads the
// backbone.
func genPlatform(spec FleetSpec) *model.Platform {
	p := &model.Platform{}
	lock := spec.Processors / 2
	for i := 0; i < spec.Processors; i++ {
		if i < lock {
			p.Processors = append(p.Processors, model.Processor{
				Name: fmt.Sprintf("lock-%03d", i), Policy: model.SPP,
				SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD,
			})
		} else {
			p.Processors = append(p.Processors, model.Processor{
				Name: fmt.Sprintf("perf-%03d", i-lock), Policy: model.SPP,
				SpeedFactor: 2.5, RAMKiB: 16384, MaxSafety: model.ASILB,
			})
		}
	}
	for s := 0; s < spec.Segments; s++ {
		net := model.Network{
			Name: fmt.Sprintf("seg%02d", s), BitsPerSec: 2_000_000, Kind: "can",
		}
		for i := range p.Processors {
			if i%spec.Segments == s {
				net.Attached = append(net.Attached, p.Processors[i].Name)
			}
		}
		p.Networks = append(p.Networks, net)
	}
	backbone := model.Network{
		Name:       "backbone",
		BitsPerSec: 2_000_000 * int64(max(1, spec.Processors/8)),
		Kind:       "can",
	}
	for i := range p.Processors {
		backbone.Attached = append(backbone.Attached, p.Processors[i].Name)
	}
	p.Networks = append(p.Networks, backbone)
	return p
}

// genBaseline builds the pre-deployed workload: processing chains
// (ASIL-B perception feeding through QM fusion stages into ASIL-D
// control, connected by periodic flows) plus standalone QM applications.
// Per-function utilization is sized so the fleet lands at 1-Headroom of
// its capacity, with the ASIL-D share fitted to the lockstep cores it is
// confined to. Release jitter several periods deep (with correspondingly
// relaxed deadlines) forces multi-activation busy windows, as on
// production timing models.
func (f *Fleet) genBaseline(rng *rand.Rand) *model.FunctionalArchitecture {
	spec := f.Spec
	lockCount := spec.Processors / 2
	perfCount := spec.Processors - lockCount

	totalFns := int(float64(spec.Processors) * spec.FnsPerProc)
	chains := totalFns / (spec.ChainDepth + 1) // +1 leaves room for apps
	if chains < 1 {
		chains = 1
	}
	apps := totalFns - chains*spec.ChainDepth
	if apps < 0 {
		apps = 0
	}

	// Utilization budgets in PPM of one reference core. ASIL-D functions
	// (one per chain) may only run on lockstep cores; everything else is
	// sized against the fast cores' capacity (2.5x reference speed each).
	budget := 1.0 - spec.Headroom
	asildPPM := int64(budget * float64(lockCount) * 1e6 / float64(max(chains, 1)))
	otherCount := chains*(spec.ChainDepth-1) + apps
	otherPPM := int64(budget * float64(perfCount) * 2.5 * 1e6 / float64(max(otherCount, 1)))
	asildPPM = clampPPM(asildPPM)
	otherPPM = clampPPM(otherPPM)

	periods := []int64{20000, 50000, 100000}
	fa := &model.FunctionalArchitecture{}
	for c := 0; c < chains; c++ {
		period := periods[rng.Intn(len(periods))]
		for s := 0; s < spec.ChainDepth; s++ {
			name := chainFnName(c, s)
			fn := model.Function{Name: name}
			switch {
			case s == spec.ChainDepth-1: // control stage
				fn.Contract.Safety = model.ASILD
				fn.Contract.RealTime = timing(rng, period, asildPPM)
				fn.Contract.Resources.RAMKiB = 128
			case s == 0: // perception stage
				fn.Contract.Safety = model.ASILB
				fn.Contract.RealTime = timing(rng, period, otherPPM)
				fn.Contract.Resources.RAMKiB = 512
			default: // fusion stage
				fn.Contract.Safety = model.QM
				fn.Contract.RealTime = timing(rng, period, otherPPM)
				fn.Contract.Resources.RAMKiB = 256
			}
			if s > 0 {
				fn.Requires = []string{chainSvc(c, s-1)}
			}
			if s < spec.ChainDepth-1 {
				fn.Provides = []string{chainSvc(c, s)}
				f.services = append(f.services, chainSvc(c, s))
				fa.Flows = append(fa.Flows, model.Flow{
					From: name, To: chainFnName(c, s+1),
					Service: chainSvc(c, s), MsgBytes: 8, PeriodUS: period,
				})
			}
			fa.Functions = append(fa.Functions, fn)
			f.baseNames = append(f.baseNames, name)
		}
	}
	for a := 0; a < apps; a++ {
		period := periods[rng.Intn(len(periods))]
		name := fmt.Sprintf("app%03d", a)
		fa.Functions = append(fa.Functions, model.Function{
			Name: name,
			Contract: model.Contract{
				Safety:    model.QM,
				RealTime:  timing(rng, period, otherPPM),
				Resources: model.ResourceContract{RAMKiB: 256},
			},
		})
		f.baseNames = append(f.baseNames, name)
	}
	return fa
}

// clampPPM bounds a per-function utilization so a single function never
// dominates a core (placement stays flexible) nor vanishes below the
// analysis granularity.
func clampPPM(ppm int64) int64 {
	if ppm > 350_000 {
		return 350_000
	}
	if ppm < 2_000 {
		return 2_000
	}
	return ppm
}

// timing derives a real-time contract from a period and target
// utilization: jitter 2-4 periods deep, deadline relaxed past the jitter
// so deep busy windows are feasible yet real analysis work.
func timing(rng *rand.Rand, periodUS, utilPPM int64) model.RealTimeContract {
	wcet := periodUS * utilPPM / 1_000_000
	if wcet < 1 {
		wcet = 1
	}
	jitter := periodUS * int64(2+rng.Intn(3))
	return model.RealTimeContract{
		PeriodUS:   periodUS,
		WCETUS:     wcet,
		JitterUS:   jitter,
		DeadlineUS: jitter + 8*periodUS,
	}
}

func chainFnName(c, s int) string { return fmt.Sprintf("ch%03d-s%d", c, s) }
func chainSvc(c, s int) string    { return fmt.Sprintf("ch%03d/d%d", c, s) }

// Changes generates the first n changes of the fleet's deterministic
// change stream. The stream is a function of the spec alone, so every
// integration mode (serial, incremental, stream-parallel) and both sides
// of a differential run decide exactly the same requests.
func (f *Fleet) Changes(n int) []mcc.Change {
	return f.ChangesWithSeed(n, f.Spec.Seed)
}

// ChangesWithSeed is Changes with the stream seed decoupled from the
// fleet seed: the E15 multi-tenant tier deploys many vehicles from ONE
// archetype (same platform, same baseline, shared analyzer digests) but
// gives each its own change stream — same mix, different draws. Equal
// seeds reproduce Changes exactly.
func (f *Fleet) ChangesWithSeed(n int, seed int64) []mcc.Change {
	rng := rand.New(rand.NewSource(seed ^ 0x5f1e9a7c3b2d4e88))
	mix := f.Spec.Mix
	total := mix.Add + mix.Update + mix.Remove + mix.Broken + mix.CrossDomain
	if total == 0 {
		mix = ChangeMix{Add: 1}
		total = 1
	}
	var added []string // telemetry functions added so far, removal pool
	out := make([]mcc.Change, 0, n)
	for i := 0; i < n; i++ {
		w := rng.Intn(total)
		switch {
		case w < mix.Add:
			out = append(out, f.genAdd(rng, i, &added))
		case w < mix.Add+mix.Update:
			out = append(out, f.genUpdate(rng, i))
		case w < mix.Add+mix.Update+mix.CrossDomain:
			if len(f.services) == 0 {
				out = append(out, f.genAdd(rng, i, &added))
				continue
			}
			out = append(out, f.genCrossDomain(rng, i))
		case w < mix.Add+mix.Update+mix.CrossDomain+mix.Remove:
			if len(added) == 0 {
				out = append(out, f.genAdd(rng, i, &added))
				continue
			}
			k := rng.Intn(len(added))
			name := added[k]
			added = append(added[:k], added[k+1:]...)
			out = append(out, mcc.Change{Remove: name})
		default:
			fn := model.Function{
				Name: fmt.Sprintf("broken%03d", i),
				Contract: model.Contract{
					Safety:   model.QM,
					RealTime: model.RealTimeContract{PeriodUS: 1000, WCETUS: 5000},
				},
			}
			out = append(out, mcc.Change{Update: &fn})
		}
	}
	return out
}

// genAdd produces a new lightweight telemetry function with a footprint
// disjoint from everything else in the stream.
func (f *Fleet) genAdd(rng *rand.Rand, i int, added *[]string) mcc.Change {
	name := fmt.Sprintf("telem%03d", i)
	*added = append(*added, name)
	period := int64(100000 + 50000*rng.Intn(3))
	fn := model.Function{
		Name: name,
		Contract: model.Contract{
			Safety:    model.QM,
			RealTime:  timing(rng, period, int64(2000+rng.Intn(4000))),
			Resources: model.ResourceContract{RAMKiB: 64},
		},
	}
	return mcc.Change{Update: &fn}
}

// genCrossDomain produces a foreign-domain client of a random baseline
// chain service; about half the clients carry the AllowedPeers grant the
// cross-domain rule demands, the rest must be rejected by the security
// stage (diff-scoped and from-scratch alike).
func (f *Fleet) genCrossDomain(rng *rand.Rand, i int) mcc.Change {
	svc := f.services[rng.Intn(len(f.services))]
	fn := model.Function{
		Name:     fmt.Sprintf("xdom%03d", i),
		Requires: []string{svc},
		Contract: model.Contract{
			Safety:    model.QM,
			Domain:    "telematics",
			RealTime:  timing(rng, 100000, int64(2000+rng.Intn(3000))),
			Resources: model.ResourceContract{RAMKiB: 64},
		},
	}
	if rng.Intn(2) == 0 {
		fn.Contract.AllowedPeers = []string{svc}
	}
	return mcc.Change{Update: &fn}
}

// genUpdate produces a new version of a deployed baseline function with a
// slightly raised WCET estimate — the metric-feedback case of the paper.
// The bump stays within the headroom so feasibility is preserved.
func (f *Fleet) genUpdate(rng *rand.Rand, i int) mcc.Change {
	name := f.baseNames[rng.Intn(len(f.baseNames))]
	base := f.Baseline.FunctionByName(name)
	fn := *base
	fn.Version = i + 1
	rt := fn.Contract.RealTime
	rt.WCETUS += max(1, rt.WCETUS*int64(1+rng.Intn(5))/100)
	fn.Contract.RealTime = rt
	return mcc.Change{Update: &fn}
}
