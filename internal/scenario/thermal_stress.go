package scenario

import (
	"fmt"

	"repro/internal/rte"
	"repro/internal/sim"
	"repro/internal/thermal"
)

// ThermalPolicy selects the awareness level of the E6 run.
type ThermalPolicy string

// Policies compared by E6.
const (
	// PolicyNone: no thermal awareness; only silicon-enforced throttling
	// acts, abruptly and late — the critical task misses deadlines and
	// the chip spends time above the damage threshold.
	PolicyNone ThermalPolicy = "none"
	// PolicyDVFS: platform-local awareness; a reactive governor steps the
	// frequency down on heat. The chip stays healthy and the critical
	// task survives, but the slowed processor can no longer serve the
	// best-effort load, which misses uncontrolledly.
	PolicyDVFS ThermalPolicy = "dvfs-only"
	// PolicyCrossLayer: DVFS plus a model-domain reaction — the QM task
	// is shed (a controlled, model-based decision) so the remaining set
	// is schedulable and cool at the reduced level; the load returns
	// after the heat wave.
	PolicyCrossLayer ThermalPolicy = "cross-layer"
)

// ThermalConfig parameterizes E6.
type ThermalConfig struct {
	Policy ThermalPolicy
	// DurationS is the simulated time (s).
	DurationS float64
	// HeatWaveC is the ambient rise during the wave.
	HeatWaveC float64
}

// DefaultThermalConfig returns the baseline heat-soak scenario.
func DefaultThermalConfig() ThermalConfig {
	return ThermalConfig{Policy: PolicyCrossLayer, DurationS: 600, HeatWaveC: 40}
}

// ThermalResult is the outcome of one E6 run.
type ThermalResult struct {
	Config ThermalConfig
	// CriticalMisses / CriticalJobs: the safety-critical control task.
	CriticalMisses int
	CriticalJobs   int
	// TotalMisses / TotalJobs: all completed jobs, including best-effort.
	TotalMisses int
	TotalJobs   int
	// PeakTempC is the maximum junction temperature reached.
	PeakTempC float64
	// TimeAboveCriticalS is the time spent above the damage threshold.
	TimeAboveCriticalS float64
	// ShedQMTask reports whether the cross-layer reaction shed load.
	ShedQMTask bool
	// GovernorTransitions counts DVFS level changes.
	GovernorTransitions int
}

// MissRate returns critical misses / jobs.
func (r ThermalResult) MissRate() float64 {
	if r.CriticalJobs == 0 {
		return 0
	}
	return float64(r.CriticalMisses) / float64(r.CriticalJobs)
}

// TotalMissRate returns all misses / all jobs.
func (r ThermalResult) TotalMissRate() float64 {
	if r.TotalJobs == 0 {
		return 0
	}
	return float64(r.TotalMisses) / float64(r.TotalJobs)
}

// Rows renders the E6 table row.
func (r ThermalResult) Rows() []string {
	return []string{
		fmt.Sprintf("policy=%s", r.Config.Policy),
		fmt.Sprintf("critical task: %d/%d misses (%.2f%%); all tasks: %d/%d (%.2f%%)",
			r.CriticalMisses, r.CriticalJobs, 100*r.MissRate(),
			r.TotalMisses, r.TotalJobs, 100*r.TotalMissRate()),
		fmt.Sprintf("peak temperature: %.1f C, time above critical: %.1f s", r.PeakTempC, r.TimeAboveCriticalS),
		fmt.Sprintf("DVFS transitions: %d, QM load shed: %v", r.GovernorTransitions, r.ShedQMTask),
	}
}

// scenarioLevels are the E6 operating points: the eco level is chosen such
// that the critical task alone remains schedulable (6ms/0.65 = 9.2ms
// < 10ms) but the full set does not fit.
func scenarioLevels() []thermal.OperatingPoint {
	return []thermal.OperatingPoint{
		{Name: "turbo", Speed: 1.0, PowerW: 18},
		{Name: "nominal", Speed: 0.8, PowerW: 11},
		{Name: "eco", Speed: 0.65, PowerW: 6},
	}
}

// RunThermal executes the E6 scenario: an ECU running a critical control
// task (60% utilization) plus a best-effort QM task (25%) is exposed to an
// ambient heat wave.
func RunThermal(cfg ThermalConfig) (ThermalResult, error) {
	res := ThermalResult{Config: cfg}
	s := sim.New()
	proc := rte.NewProc(s, "ecu", 1.0)

	infotainment := rte.TaskSpec{
		Name: "infotainment", Priority: 2, Period: 40 * sim.Millisecond, WCET: 10 * sim.Millisecond,
	}
	if err := proc.AddTask(rte.TaskSpec{
		Name: "ctl", Priority: 1, Period: 10 * sim.Millisecond, WCET: 6 * sim.Millisecond,
	}); err != nil {
		return res, err
	}
	if err := proc.AddTask(infotainment); err != nil {
		return res, err
	}
	// Count misses through the listener so shedding/reinstating the QM
	// task does not reset the statistics.
	proc.OnCompletion(func(j rte.JobRecord) {
		res.TotalJobs++
		if j.Missed {
			res.TotalMisses++
		}
		if j.Task == "ctl" {
			res.CriticalJobs++
			if j.Missed {
				res.CriticalMisses++
			}
		}
	})

	model := thermal.NewModel(2.0, 40, 30)
	// The governor reacts at 84°C — just below the silicon throttle onset
	// (85°C) — so the controlled DVFS response preempts the uncontrolled
	// hardware one.
	gov, err := thermal.NewGovernor(scenarioLevels(), 84, 75)
	if err != nil {
		return res, err
	}
	throttle := thermal.DefaultThrottle()
	profile := thermal.AmbientProfile{
		BaseC: 30, SwingC: 3, PeriodS: 1200,
		HeatWaveStartS: 120, HeatWaveEndS: cfg.DurationS - 120, HeatWaveC: cfg.HeatWaveC,
	}

	shed := false
	everShed := false
	const tickS = 0.1
	s.Every(sim.FromSeconds(tickS), func() bool {
		tS := s.Now().Seconds()
		model.SetAmbient(profile.At(tS))

		// Dissipated power follows the active operating point scaled by
		// the measured utilization (shedding load cools the chip).
		util := proc.Utilization()
		if util > 1 {
			util = 1
		}
		level := gov.Current()
		powerBase := level.PowerW
		if cfg.Policy == PolicyNone {
			powerBase = scenarioLevels()[0].PowerW
		}
		model.Step(powerBase*(0.2+0.8*util), tickS)

		if model.TempC > res.PeakTempC {
			res.PeakTempC = model.TempC
		}
		if model.TempC >= throttle.CriticalC {
			res.TimeAboveCriticalS += tickS
		}

		// Platform reaction: silicon throttling always acts; the governor
		// only under the aware policies.
		speed := throttle.Factor(model.TempC)
		if cfg.Policy != PolicyNone {
			gov.Update(model.TempC)
			speed *= gov.Current().Speed
		}
		proc.SetSpeed(speed)

		// Cross-layer reaction: when the governor leaves turbo, the model
		// domain sheds the QM task so the critical task stays schedulable
		// at the lower level and the chip cools further.
		if cfg.Policy == PolicyCrossLayer {
			if !shed && gov.Current().Speed < 1.0 {
				if err := proc.RemoveTask("infotainment"); err == nil {
					shed = true
					everShed = true
				}
			}
			if shed && gov.Current().Speed >= 1.0 && model.TempC < 70 {
				if err := proc.AddTask(infotainment); err == nil {
					shed = false
				}
			}
		}
		return s.Now() < sim.FromSeconds(cfg.DurationS)
	})

	if err := s.RunFor(sim.FromSeconds(cfg.DurationS)); err != nil {
		return res, err
	}
	res.ShedQMTask = everShed
	res.GovernorTransitions = gov.Transitions
	return res, nil
}

// RunThermalComparison executes all three policies (the E6 table).
func RunThermalComparison() ([]ThermalResult, error) {
	var out []ThermalResult
	for _, pol := range []ThermalPolicy{PolicyNone, PolicyDVFS, PolicyCrossLayer} {
		cfg := DefaultThermalConfig()
		cfg.Policy = pol
		r, err := RunThermal(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
