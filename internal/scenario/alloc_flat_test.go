package scenario

import (
	"strings"
	"testing"

	"repro/internal/mcc"
)

// Per-proposal allocation flatness: the O(diff) admission path must not
// allocate proportionally to the platform. The change-driven diff, the
// in-place candidate mutation, the committed-list splices, and the
// delta-report contract (reports carry TimingDelta/MonitorDelta —
// footprint-sized — and whole tables only materialize on demand) keep
// the per-proposal allocation *count* constant-ish — measured ~71
// allocs at 32 processors vs ~76 at 2048. A regression that
// reintroduces a per-function or per-resource allocation — a clone, a
// map rebuild, a per-entry box — blows the ratio up by orders of
// magnitude, so the 2x bound below is loose against noise yet tight
// against any real O(platform) regression.

// allocsPerProposal deploys the generated baseline at the given platform
// size and measures the steady-state allocations of one accepted warm
// update. The measured pair toggles one standalone app between two
// contract variants, so every proposal is a genuine accepted change and
// the committed state returns to the start of the pair.
func allocsPerProposal(t *testing.T, procs int) float64 {
	t.Helper()
	fleet := GenFleet(DefaultFleetSpec(procs))
	m, err := mcc.New(fleet.Platform)
	if err != nil {
		t.Fatal(err)
	}
	if rep := m.ProposeArchitecture(fleet.Baseline); !rep.Accepted {
		t.Fatalf("procs=%d: baseline rejected at %s", procs, rep.RejectedAt)
	}
	var name string
	for _, f := range fleet.Baseline.Functions {
		if strings.HasPrefix(f.Name, "app") {
			name = f.Name
			break
		}
	}
	if name == "" {
		name = fleet.Baseline.Functions[0].Name
	}
	v0 := *fleet.Baseline.FunctionByName(name)
	v1 := v0
	v1.Contract.RealTime.WCETUS++
	// Warm the pair once so the analyzer memo and splice caches reach
	// steady state before measuring.
	if !m.ProposeUpdate(v1).Accepted || !m.ProposeUpdate(v0).Accepted {
		t.Fatalf("procs=%d: warm update pair rejected", procs)
	}
	return testing.AllocsPerRun(20, func() {
		m.ProposeUpdate(v1)
		m.ProposeUpdate(v0)
	}) / 2
}

func TestProposalAllocsFlatAcrossPlatformSize(t *testing.T) {
	small := allocsPerProposal(t, 32)
	big := allocsPerProposal(t, 2048)
	t.Logf("allocs/proposal: %.1f @32p, %.1f @2048p", small, big)
	if small == 0 {
		t.Fatal("implausible zero allocations at 32 processors")
	}
	if ratio := big / small; ratio > 2.0 {
		t.Errorf("per-proposal allocations grew with platform size: %.1f@32p -> %.1f@2048p (%.2fx, want <= 2x over a 64x platform sweep)",
			small, big, ratio)
	}
}
