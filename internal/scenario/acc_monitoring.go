// Package scenario wires the substrate packages into the paper's
// experiments (E3–E10 in DESIGN.md). Each harness is deterministic,
// parameterized, and returns a result struct whose Rows method prints the
// table the corresponding experiment reports. cmd/crosslayer,
// cmd/vehiclesim and the repository-level benchmarks all call into this
// package, so the numbers in EXPERIMENTS.md are regenerated from exactly
// one implementation.
package scenario

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/sensors"
	"repro/internal/sim"
	"repro/internal/skills"
	"repro/internal/vehicle"
)

// ACCConfig parameterizes the E4 closed-loop ability-monitoring run.
type ACCConfig struct {
	// Seed drives all randomness.
	Seed uint64
	// DurationS is the simulated time.
	DurationS float64
	// FaultAtS injects the sensor fault at this time (0 = no fault).
	FaultAtS float64
	// Fault is the injected fault kind.
	Fault sensors.FaultKind
	// FaultMagnitude parameterizes the fault.
	FaultMagnitude float64
	// SetSpeed is the driver's cruise request (m/s).
	SetSpeed float64
	// LeadSpeed is the lead vehicle's speed (m/s).
	LeadSpeed float64
	// InitialGap is the starting gap (m).
	InitialGap float64
}

// DefaultACCConfig returns the baseline E4 configuration.
func DefaultACCConfig() ACCConfig {
	return ACCConfig{
		Seed:           1,
		DurationS:      120,
		FaultAtS:       60,
		Fault:          sensors.FaultNoisy,
		FaultMagnitude: 6,
		SetSpeed:       25,
		LeadSpeed:      20,
		InitialGap:     50,
	}
}

// ACCResult is the outcome of one E4 run.
type ACCResult struct {
	Config ACCConfig
	// DetectionS is when the root ability left the Full band after the
	// fault (-1 = never detected).
	DetectionS float64
	// TacticFired reports whether the degradation tactic activated.
	TacticFired bool
	// SpeedCap is the cap the tactic installed (0 = none).
	SpeedCap float64
	// MinGap is the smallest gap observed (collision if <= 0).
	MinGap float64
	// Collision reports whether the gap closed completely.
	Collision bool
	// FinalRootLevel is the root ability level at the end.
	FinalRootLevel skills.Level
	// FinalRootBand is its band.
	FinalRootBand skills.Band
	// RootLevelAtFault is the level just before injection.
	RootLevelAtFault skills.Level
}

// Rows renders the experiment table.
func (r ACCResult) Rows() []string {
	det := "never"
	if r.DetectionS >= 0 {
		det = fmt.Sprintf("%.1fs after fault", r.DetectionS)
	}
	return []string{
		fmt.Sprintf("fault=%v mag=%.1f at t=%.0fs", r.Config.Fault, r.Config.FaultMagnitude, r.Config.FaultAtS),
		fmt.Sprintf("detection: %s", det),
		fmt.Sprintf("tactic fired: %v (speed cap %.1f m/s)", r.TacticFired, r.SpeedCap),
		fmt.Sprintf("min gap: %.1f m (collision: %v)", r.MinGap, r.Collision),
		fmt.Sprintf("root ability: %.2f (%v)", float64(r.FinalRootLevel), r.FinalRootBand),
	}
}

// RunACC executes the E4 scenario: a closed ACC loop whose sensor quality,
// plausibility trust, controller self-assessment and brake health feed the
// ACC ability graph; a degradation tactic caps the speed when the root
// ability degrades.
func RunACC(cfg ACCConfig) (ACCResult, error) {
	rng := sim.NewRNG(cfg.Seed)
	res := ACCResult{Config: cfg, DetectionS: -1, MinGap: cfg.InitialGap}

	ag, err := skills.InstantiateACC()
	if err != nil {
		return res, err
	}
	ego := vehicle.New(vehicle.DefaultParams())
	ego.SetSpeed(cfg.LeadSpeed)
	sensor := sensors.NewObjectSensor(rng.Split(1))
	checker := sensors.NewPlausibilityChecker(80, 200)
	acc := control.New(control.DefaultConfig(), control.DriverIntent{SetSpeed: cfg.SetSpeed, HeadwayS: 1.8})

	// Degradation tactic: when ACC driving degrades, cap the speed to
	// what the current braking capability can stop within the sensor's
	// trustworthy range.
	var speedCap float64
	tactic := &skills.Tactic{
		Name:    "cap-speed-on-degradation",
		Skill:   skills.ACCDriving,
		Trigger: 0.8,
		Apply: func(*skills.AbilityGraph) {
			res.TacticFired = true
			// Trustworthy perception range shrinks with sensor health.
			rangeM := 100 * float64(ag.Level(skills.SrcEnvSensors))
			if rangeM < 10 {
				rangeM = 10
			}
			speedCap = ego.SafeSpeedForStoppingDistance(rangeM)
			res.SpeedCap = speedCap
		},
	}
	if err := ag.RegisterTactic(tactic); err != nil {
		return res, err
	}

	gap := cfg.InitialGap
	const dt = 0.02
	// warmupS lets the control loop settle before its self-assessment is
	// trusted (the startup transient is not a fault).
	const warmupS = 10.0
	steps := int(cfg.DurationS / dt)
	warmupSteps := int(warmupS / dt)
	faultStep := -1
	if cfg.FaultAtS > 0 {
		faultStep = int(cfg.FaultAtS / dt)
	}

	// Short-term target memory: object tracking holds the last plausible
	// target briefly across measurement dropouts.
	var lastGood sensors.RangeMeasurement
	var lastGoodAt sim.Time = -sim.Second
	const trackHold = 500 * sim.Millisecond

	for i := 0; i < steps; i++ {
		now := sim.FromSeconds(float64(i) * dt)
		if i == faultStep {
			res.RootLevelAtFault = ag.Level(skills.ACCDriving)
			sensor.InjectFault(cfg.Fault, cfg.FaultMagnitude)
		}

		// Sense.
		var target *sensors.RangeMeasurement
		m, ok := sensor.Measure(gap, cfg.LeadSpeed-ego.Speed(), now)
		if ok && checker.Check(m) {
			target = &m
			lastGood = m
			lastGoodAt = now
		} else if now-lastGoodAt <= trackHold {
			held := lastGood
			target = &held
		}

		// Monitors -> ability health (every 10 cycles = 200 ms).
		if i%10 == 0 && i >= warmupSteps {
			q := sensor.Quality() * checker.TrustScore()
			if err := ag.SetHealth(skills.SrcEnvSensors, skills.Level(q)); err != nil {
				return res, err
			}
			if err := ag.SetHealth(skills.SinkBrakingSystem, skills.Level(ego.BrakingFraction())); err != nil {
				return res, err
			}
			perfSkill := skills.Level(acc.Performance())
			if err := ag.SetHealth(skills.ControlDistance, perfSkill); err != nil {
				return res, err
			}
			if err := ag.SetHealth(skills.ControlSpeed, perfSkill); err != nil {
				return res, err
			}
			if res.DetectionS < 0 && faultStep >= 0 && i > faultStep && ag.BandOf(skills.ACCDriving) != skills.Full {
				res.DetectionS = float64(i-faultStep) * dt
			}
		}

		// Control and plant.
		cmd := acc.Step(ego.Speed(), target, speedCap)
		before := ego.Position()
		ego.Step(cmd, dt)
		gap += cfg.LeadSpeed*dt - (ego.Position() - before)
		if gap < res.MinGap {
			res.MinGap = gap
		}
		if gap <= 0 {
			res.Collision = true
			break
		}
	}
	res.FinalRootLevel = ag.Level(skills.ACCDriving)
	res.FinalRootBand = ag.BandOf(skills.ACCDriving)
	return res, nil
}
