package scenario

import (
	"fmt"

	"repro/internal/platoon"
	"repro/internal/sim"
)

// PlatoonConfig parameterizes E7.
type PlatoonConfig struct {
	Seed uint64
	// Honest is the number of honest members.
	Honest int
	// Byzantine is the number of compromised members.
	Byzantine int
	// Rounds is the number of agreement rounds.
	Rounds int
	// TargetVelocity is the honest members' intended velocity (m/s).
	TargetVelocity float64
	// VisibilityM is the fog visibility for the fog sub-scenario.
	VisibilityM float64
	// BlindSensorFrac is the degraded vehicle's fog sensor fraction.
	BlindSensorFrac float64
}

// DefaultPlatoonConfig returns the baseline E7 parameters.
func DefaultPlatoonConfig() PlatoonConfig {
	return PlatoonConfig{
		Seed: 7, Honest: 6, Byzantine: 1, Rounds: 20,
		TargetVelocity: 22, VisibilityM: 60, BlindSensorFrac: 0.15,
	}
}

// PlatoonResult is the outcome of one E7 run.
type PlatoonResult struct {
	Config PlatoonConfig
	// MaxAgreementError is the largest |agreed - honest target| across
	// rounds.
	MaxAgreementError float64
	// ByzantineEjectedRound is the round at which the last byzantine
	// member's trust fell below 0.5 (-1 = never).
	ByzantineEjectedRound int
	// HonestMinTrust is the lowest honest trust at the end.
	HonestMinTrust float64
	// SoloSpeed and PlatoonSpeed are the fog sub-scenario speeds (m/s).
	SoloSpeed    float64
	PlatoonSpeed float64
}

// Rows renders the E7 table.
func (r PlatoonResult) Rows() []string {
	ej := "never"
	if r.ByzantineEjectedRound >= 0 {
		ej = fmt.Sprintf("round %d", r.ByzantineEjectedRound)
	}
	return []string{
		fmt.Sprintf("n=%d honest + %d byzantine, %d rounds", r.Config.Honest, r.Config.Byzantine, r.Config.Rounds),
		fmt.Sprintf("max agreement error: %.2f m/s", r.MaxAgreementError),
		fmt.Sprintf("byzantine identified (trust<0.5): %s; honest min trust: %.2f", ej, r.HonestMinTrust),
		fmt.Sprintf("fog (visibility %.0fm, own sensors %.0f%%): solo %.1f m/s vs platoon %.1f m/s",
			r.Config.VisibilityM, 100*r.Config.BlindSensorFrac, r.SoloSpeed, r.PlatoonSpeed),
	}
}

// RunPlatoon executes E7: agreement under byzantine members plus the fog
// membership benefit.
func RunPlatoon(cfg PlatoonConfig) (PlatoonResult, error) {
	res := PlatoonResult{Config: cfg, ByzantineEjectedRound: -1}
	rng := sim.NewRNG(cfg.Seed)
	p := platoon.New()

	var byzIDs []string
	for i := 0; i < cfg.Honest; i++ {
		r := rng.Split(uint64(i + 1))
		if _, err := p.Join(fmt.Sprintf("honest%d", i), func(int) float64 {
			return cfg.TargetVelocity + r.Uniform(-0.5, 0.5)
		}); err != nil {
			return res, err
		}
	}
	for i := 0; i < cfg.Byzantine; i++ {
		r := rng.Split(uint64(100 + i))
		id := fmt.Sprintf("byz%d", i)
		byzIDs = append(byzIDs, id)
		if _, err := p.Join(id, func(int) float64 {
			return r.Uniform(-500, 500) // arbitrary lies
		}); err != nil {
			return res, err
		}
	}

	for round := 1; round <= cfg.Rounds; round++ {
		rr, err := p.AgreeVelocity(cfg.Byzantine)
		if err != nil {
			return res, err
		}
		errV := rr.Agreed - cfg.TargetVelocity
		if errV < 0 {
			errV = -errV
		}
		if errV > res.MaxAgreementError {
			res.MaxAgreementError = errV
		}
		if res.ByzantineEjectedRound < 0 {
			allBelow := true
			for _, id := range byzIDs {
				if p.Trust(id) >= 0.5 {
					allBelow = false
					break
				}
			}
			if allBelow && len(byzIDs) > 0 {
				res.ByzantineEjectedRound = round
			}
		}
	}
	res.HonestMinTrust = 1
	for i := 0; i < cfg.Honest; i++ {
		if tr := p.Trust(fmt.Sprintf("honest%d", i)); tr < res.HonestMinTrust {
			res.HonestMinTrust = tr
		}
	}

	// Fog sub-scenario.
	pol := platoon.FogPolicy{
		VisibilityM:     cfg.VisibilityM,
		SensorRangeFrac: cfg.BlindSensorFrac,
		ReactionS:       1.0,
		MaxDecel:        6,
	}
	res.SoloSpeed = pol.SoloSpeed()
	res.PlatoonSpeed = pol.PlatoonSpeed(1.0, 25)
	return res, nil
}
