package scenario

import (
	"reflect"
	"testing"

	"repro/internal/mcc"
)

func TestGenFleetDeterministic(t *testing.T) {
	// Equal specs must generate byte-identical fleets and change streams —
	// the property every differential run and cross-mode comparison
	// relies on.
	spec := DefaultFleetSpec(32)
	a, b := GenFleet(spec), GenFleet(spec)
	if !reflect.DeepEqual(a.Platform, b.Platform) {
		t.Fatal("platforms diverge for equal specs")
	}
	if !reflect.DeepEqual(a.Baseline, b.Baseline) {
		t.Fatal("baselines diverge for equal specs")
	}
	if !reflect.DeepEqual(a.Changes(48), b.Changes(48)) {
		t.Fatal("change streams diverge for equal specs")
	}

	spec2 := spec
	spec2.Seed++
	c := GenFleet(spec2)
	if reflect.DeepEqual(a.Baseline, c.Baseline) {
		t.Fatal("different seeds generated identical baselines")
	}
}

func TestGenFleetPlatformShape(t *testing.T) {
	for _, procs := range []int{8, 32, 128} {
		fleet := GenFleet(DefaultFleetSpec(procs))
		p := fleet.Platform
		if err := p.Validate(); err != nil {
			t.Fatalf("procs=%d: invalid platform: %v", procs, err)
		}
		if got := len(p.Processors); got != procs {
			t.Fatalf("procs=%d: generated %d processors", procs, got)
		}
		// Every processor pair must be connectable (the backbone attaches
		// everything), or synthesis would reject any cross-placement flow.
		backbone := p.Networks[len(p.Networks)-1]
		if got := len(backbone.Attached); got != procs {
			t.Fatalf("procs=%d: backbone attaches %d processors", procs, got)
		}
	}
}

func TestGenFleetBaselineAcceptedAcrossSizes(t *testing.T) {
	// The generated baseline must pass the full acceptance pipeline at
	// every tier size — a generator that produces rejected baselines
	// cannot anchor the scale experiment.
	for _, procs := range []int{8, 32, 128} {
		fleet := GenFleet(DefaultFleetSpec(procs))
		m, err := mcc.New(fleet.Platform)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		rep := m.ProposeArchitecture(fleet.Baseline)
		if !rep.Accepted {
			t.Fatalf("procs=%d: baseline rejected at %s: %v", procs, rep.RejectedAt, rep.Findings)
		}
	}
}

func TestGenFleetChangeMixCoverage(t *testing.T) {
	// The default mix must exercise adds, updates, removals, and broken
	// contracts within a modest stream.
	fleet := GenFleet(DefaultFleetSpec(16))
	changes := fleet.Changes(64)
	if len(changes) != 64 {
		t.Fatalf("generated %d changes, want 64", len(changes))
	}
	var adds, updates, removes, broken int
	baseline := make(map[string]bool)
	for _, name := range fleet.baseNames {
		baseline[name] = true
	}
	for _, c := range changes {
		switch {
		case c.Remove != "":
			removes++
		case c.Update.Contract.RealTime.WCETUS > c.Update.Contract.RealTime.PeriodUS:
			broken++
		case baseline[c.Update.Name]:
			updates++
		default:
			adds++
		}
	}
	if adds == 0 || updates == 0 || removes == 0 || broken == 0 {
		t.Fatalf("mix coverage: adds=%d updates=%d removes=%d broken=%d, want all > 0",
			adds, updates, removes, broken)
	}
}
