package scenario

import (
	"fmt"
	"reflect"
	"sort"
	"time"

	"repro/internal/cpa"
	"repro/internal/faultinject"
	"repro/internal/mcc"
)

// E14 is the chaos tier: the generated-fleet change stream of E13 driven
// under a deterministic fault matrix (internal/faultinject), proving the
// robustness contract of the degradation ladder. For every fault spec and
// integration mode the tier asserts three properties:
//
//  1. The MCC never crashes or hangs — injected panics are recovered,
//     injected stalls are bounded by the per-proposal deadline.
//  2. Every proposal resolves: accepted, rejected, or an explicit
//     deadline rejection, each within the configured deadline.
//  3. Every decision (verdict, rejection stage, findings) equals the
//     clean serial from-scratch oracle's — including the decisions the
//     ladder re-derived on the pinned from-scratch path, which the
//     Report marks Degraded. Only deadline expiries are excused, and
//     those are explicitly labeled in DegradedReasons.
//
// The emitted rows carry the recovery telemetry (panics recovered,
// bounded analysis retries, faults actually fired), the availability of
// the fast incremental path (share of proposals decided without
// degradation), and the latency distribution including the recovery
// latency of degraded proposals.

// chaosSeed seeds every injector so rate-based rules are reproducible.
const chaosSeed = 0x0E14

// ChaosFaultSpec is one column of the E14 fault matrix.
type ChaosFaultSpec struct {
	// Name labels the spec in rows and JSON.
	Name string
	// Rules configures the injector for the run.
	Rules []faultinject.Rule
	// DeadlineMS, when > 0, arms the per-proposal deadline
	// (mcc.WithProposalDeadline). Deadline specs run in the
	// full-incremental mode only: a deadline rejection legitimately
	// diverges from the clean oracle, so parity needs the per-proposal
	// replay oracle of the serial drive loop.
	DeadlineMS int
	// Modes, when non-empty, restricts the spec to these integration
	// modes (e.g. journal faults only fire under the stream scheduler).
	Modes []MCCThroughputMode
}

func (fs ChaosFaultSpec) appliesTo(mode MCCThroughputMode) bool {
	if len(fs.Modes) == 0 {
		return true
	}
	for _, m := range fs.Modes {
		if m == mode {
			return true
		}
	}
	return false
}

// DefaultChaosSpecs returns the E14 fault matrix: a clean control column
// plus one column per hardening mechanism — transient analyzer errors
// (bounded retry), a total analyzer outage (every proposal rides the
// pinned path), injected latency, worker panics, cache corruption, a
// stalled stage racing the proposal deadline, journal-undo failure, and
// a mixed storm.
func DefaultChaosSpecs() []ChaosFaultSpec {
	return []ChaosFaultSpec{
		{Name: "none"},
		{
			// Every 7th busy-window analysis fails transiently; the
			// bounded retry absorbs nearly all of them.
			Name:  "analyzer-error",
			Rules: []faultinject.Rule{{Stage: "cpa.analyze", Mode: faultinject.ModeError, Every: 7}},
		},
		{
			// Total analyzer outage: every analysis fails, retries
			// included, so every proposal degrades to the pinned
			// from-scratch path — availability collapses, parity holds.
			Name:  "analyzer-burst",
			Rules: []faultinject.Rule{{Stage: "cpa.analyze", Mode: faultinject.ModeError, Rate: 1.0}},
		},
		{
			// Injected latency only: decisions and availability unchanged.
			Name:  "analyzer-slow",
			Rules: []faultinject.Rule{{Stage: "cpa.analyze", Mode: faultinject.ModeSlow, Every: 5, StallUS: 200}},
		},
		{
			// Every 11th pooled timing worker panics mid-analysis.
			Name:  "worker-panic",
			Rules: []faultinject.Rule{{Stage: "timing.worker", Mode: faultinject.ModePanic, Every: 11}},
		},
		{
			// Every other memo hit hands back a truncated entry; the
			// length sanity check quarantines and rebuilds. Memo hits
			// need a re-read of a cached analysis, which the serial
			// drive loop's diff-proportional engine never does within
			// one stream — only the stream scheduler's deferred verify
			// pass re-reads its prefetched entries, so the column runs
			// there. (The full-incremental corruption path is pinned by
			// the dedicated mcc robustness tier.)
			Name:  "cache-corrupt",
			Rules: []faultinject.Rule{{Stage: "cpa.cache", Mode: faultinject.ModeCorrupt, Every: 2}},
			Modes: []MCCThroughputMode{ThroughputStream},
		},
		{
			// A stage stalls far past the proposal deadline; the deadline
			// must convert the hang into a bounded, explicit rejection.
			// Skip:1 spares the fleet-baseline deployment.
			Name: "stage-stall-deadline",
			Rules: []faultinject.Rule{
				{Stage: "stage.timing", Mode: faultinject.ModeStall, Skip: 1, Every: 5, Count: 3, StallUS: 1_500_000},
			},
			DeadlineMS: 600,
			Modes:      []MCCThroughputMode{ThroughputFull},
		},
		{
			// Prefetch faults taint windows into rollback, and the
			// journal undo itself fails: incremental state is purged and
			// rebuilt. Only the stream scheduler exercises the journal.
			Name: "journal-undo",
			Rules: []faultinject.Rule{
				{Stage: "stream.prefetch", Mode: faultinject.ModeError, Every: 3, Count: 6},
				{Stage: "journal.undo", Mode: faultinject.ModeError, Every: 2},
			},
			Modes: []MCCThroughputMode{ThroughputStream},
		},
		{
			// Everything at once, at lower rates.
			Name: "mixed",
			Rules: []faultinject.Rule{
				{Stage: "cpa.analyze", Mode: faultinject.ModeError, Every: 9},
				{Stage: "timing.worker", Mode: faultinject.ModePanic, Every: 17, Count: 8},
				{Stage: "cpa.cache", Mode: faultinject.ModeCorrupt, Every: 23},
				{Stage: "stream.prefetch", Mode: faultinject.ModePanic, Every: 13, Count: 4},
			},
		},
	}
}

// MCCChaosConfig parameterizes the E14 run.
type MCCChaosConfig struct {
	// Procs is the generated platform's processor count.
	Procs int
	// Updates is the number of streamed change requests per run.
	Updates int
	// Modes lists the integration strategies to drive under faults.
	// Only ThroughputFull (serial drive loop, per-proposal latency) and
	// ThroughputStream (the concurrent scheduler) are supported.
	Modes []MCCThroughputMode
	// Specs is the fault matrix.
	Specs []ChaosFaultSpec
	// Spec is the generator template; Processors is overridden by
	// Procs. The zero value selects DefaultFleetSpec.
	Spec FleetSpec
}

// DefaultMCCChaosConfig returns the baseline E14 parameters.
func DefaultMCCChaosConfig() MCCChaosConfig {
	return MCCChaosConfig{
		Procs:   32,
		Updates: 24,
		Modes:   []MCCThroughputMode{ThroughputFull, ThroughputStream},
		Specs:   DefaultChaosSpecs(),
	}
}

// MCCChaosRow is one (fault spec, mode) point of the matrix.
type MCCChaosRow struct {
	// Spec names the fault spec.
	Spec string
	// Mode is the integration strategy driven under the faults.
	Mode MCCThroughputMode
	// Procs is the generated platform's processor count.
	Procs int
	// Changes/Accepted/Rejected count the streamed decisions.
	Changes  int
	Accepted int
	Rejected int
	// Degraded counts proposals the ladder re-decided on the pinned
	// from-scratch path (or rejected on deadline expiry).
	Degraded int
	// DeadlineExpired counts deadline rejections (a subset of Degraded);
	// these are the only decisions excused from oracle parity.
	DeadlineExpired int
	// PanicsRecovered/RetriedAnalyses sum the recovery telemetry.
	PanicsRecovered int
	RetriedAnalyses int
	// FaultsInjected is the injector's total fire count for the run
	// (baseline deployment included).
	FaultsInjected int
	// Mismatches counts decisions that differ from the clean serial
	// oracle; FirstMismatch describes the first one. ParityOK is the
	// headline robustness verdict: no mismatches.
	Mismatches    int
	FirstMismatch string
	ParityOK      bool
	// AvailabilityPct is the share of proposals decided on the normal
	// incremental path (100 × (Changes−Degraded)/Changes).
	AvailabilityPct float64
	// MeanLatencyUS/P99LatencyUS/MaxLatencyUS describe the per-proposal
	// decision latency. The stream scheduler decides windows, not
	// individual proposals, so its rows report only the mean
	// (wall/changes); P99 and Max stay 0.
	MeanLatencyUS int64
	P99LatencyUS  int64
	MaxLatencyUS  int64
	// RecoveryUS is the mean decision latency of the degraded proposals
	// — the price of riding the ladder (full-incremental mode only).
	RecoveryUS int64
	// WallUS is the wall clock of the whole change stream.
	WallUS int64
}

// RunMCCChaos executes E14: generate the fleet, derive the clean serial
// oracle decisions once, then drive the same change stream under every
// (fault spec, mode) combination and compare every decision.
func RunMCCChaos(cfg MCCChaosConfig) ([]MCCChaosRow, error) {
	if cfg.Procs < 2 {
		return nil, fmt.Errorf("scenario: chaos platform needs >= 2 processors, got %d", cfg.Procs)
	}
	if cfg.Updates < 1 {
		return nil, fmt.Errorf("scenario: chaos stream needs >= 1 update, got %d", cfg.Updates)
	}
	spec := cfg.Spec
	if spec.Processors == 0 {
		spec = DefaultFleetSpec(cfg.Procs)
	} else {
		spec.Processors = cfg.Procs
	}
	fleet := GenFleet(spec)
	changes := fleet.Changes(cfg.Updates)

	// One memo table shared by the oracle runs only — the faulted runs
	// get fresh analyzers so injected cache corruption cannot leak.
	memo := cpa.NewAnalyzer()
	oracle, err := chaosOracle(fleet, changes, memo)
	if err != nil {
		return nil, err
	}

	var rows []MCCChaosRow
	for _, fs := range cfg.Specs {
		for _, mode := range cfg.Modes {
			if !fs.appliesTo(mode) {
				continue
			}
			var row MCCChaosRow
			switch mode {
			case ThroughputFull:
				row, err = runChaosFull(fleet, changes, fs, oracle, memo)
			case ThroughputStream:
				row, err = runChaosStream(fleet, changes, fs, oracle)
			default:
				err = fmt.Errorf("scenario: chaos does not support mode %q", mode)
			}
			if err != nil {
				return nil, fmt.Errorf("chaos %s/%s: %w", fs.Name, mode, err)
			}
			row.Procs = cfg.Procs
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// chaosOracle replays the change stream on a clean serial from-scratch
// MCC — the reference every faulted decision must match.
func chaosOracle(fleet *Fleet, changes []mcc.Change, memo *cpa.Analyzer) ([]*mcc.Report, error) {
	m, err := mcc.New(fleet.Platform,
		mcc.WithoutIncremental(), mcc.WithTimingWorkers(1), mcc.WithAnalyzer(memo))
	if err != nil {
		return nil, err
	}
	if rep := m.ProposeArchitecture(fleet.Baseline); !rep.Accepted {
		return nil, fmt.Errorf("oracle baseline rejected at %s: %v", rep.RejectedAt, rep.Findings)
	}
	out := make([]*mcc.Report, len(changes))
	for i, c := range changes {
		out[i] = proposeChaosChange(m, c)
	}
	return out, nil
}

func proposeChaosChange(m *mcc.MCC, c mcc.Change) *mcc.Report {
	if c.Update != nil {
		return m.ProposeUpdate(*c.Update)
	}
	return m.ProposeRemoval(c.Remove)
}

// chaosReplayOracle re-derives the clean verdict for one proposal on the
// exact deployed state the faulted MCC had when deciding it. Deadline
// rejections keep the deployed state but drop changes the fixed oracle
// would have accepted, so after the first expiry the fixed decision
// sequence no longer applies; replaying the faulted MCC's accepted
// prefix on a fresh serial MCC does.
type chaosReplayOracle struct {
	fleet    *Fleet
	accepted []mcc.Change
	memo     *cpa.Analyzer
}

func (o *chaosReplayOracle) decide(c mcc.Change) (*mcc.Report, error) {
	m, err := mcc.New(o.fleet.Platform,
		mcc.WithoutIncremental(), mcc.WithTimingWorkers(1), mcc.WithAnalyzer(o.memo))
	if err != nil {
		return nil, err
	}
	if rep := m.ProposeArchitecture(o.fleet.Baseline); !rep.Accepted {
		return nil, fmt.Errorf("replay oracle baseline rejected at %s", rep.RejectedAt)
	}
	for i, a := range o.accepted {
		if rep := proposeChaosChange(m, a); !rep.Accepted {
			return nil, fmt.Errorf("replay oracle diverged: accepted change %d rejected at %s", i, rep.RejectedAt)
		}
	}
	return proposeChaosChange(m, c), nil
}

// runChaosFull drives the stream serially through the full-incremental
// engine under the fault spec, measuring per-proposal latency and
// checking every non-deadline decision against the oracle.
func runChaosFull(fleet *Fleet, changes []mcc.Change, fs ChaosFaultSpec, oracle []*mcc.Report, memo *cpa.Analyzer) (MCCChaosRow, error) {
	row := MCCChaosRow{Spec: fs.Name, Mode: ThroughputFull, Changes: len(changes)}
	inj := faultinject.New(chaosSeed, fs.Rules...)
	opts := []mcc.Option{mcc.WithFaultInjector(inj)}
	if fs.DeadlineMS > 0 {
		opts = append(opts, mcc.WithProposalDeadline(time.Duration(fs.DeadlineMS)*time.Millisecond))
	}
	m, err := mcc.New(fleet.Platform, opts...)
	if err != nil {
		return row, err
	}
	if rep := m.ProposeArchitecture(fleet.Baseline); !rep.Accepted {
		return row, fmt.Errorf("baseline rejected at %s: %v", rep.RejectedAt, rep.Findings)
	}
	var replay *chaosReplayOracle
	if fs.DeadlineMS > 0 {
		replay = &chaosReplayOracle{fleet: fleet, memo: memo}
	}

	lats := make([]int64, 0, len(changes))
	var recovery int64
	start := time.Now()
	for i, c := range changes {
		t0 := time.Now()
		rep := proposeChaosChange(m, c)
		lat := time.Since(t0).Microseconds()
		lats = append(lats, lat)
		if rep.Accepted {
			row.Accepted++
		} else {
			row.Rejected++
		}
		row.PanicsRecovered += rep.PanicsRecovered
		row.RetriedAnalyses += rep.RetriedAnalyses
		deadlined := false
		for _, r := range rep.DegradedReasons {
			if r == "deadline" {
				deadlined = true
			}
		}
		if rep.Degraded {
			row.Degraded++
			recovery += lat
		}
		if deadlined {
			row.DeadlineExpired++
		} else {
			want := oracle[i]
			if replay != nil {
				if want, err = replay.decide(c); err != nil {
					return row, err
				}
			}
			if diff := chaosCompare(rep, want); diff != "" {
				row.Mismatches++
				if row.FirstMismatch == "" {
					row.FirstMismatch = fmt.Sprintf("change %d: %s", i, diff)
				}
			}
		}
		if rep.Accepted && replay != nil {
			replay.accepted = append(replay.accepted, c)
		}
	}
	row.WallUS = time.Since(start).Microseconds()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum int64
	for _, l := range lats {
		sum += l
	}
	row.MeanLatencyUS = sum / int64(len(lats))
	row.P99LatencyUS = lats[(99*len(lats)+99)/100-1]
	row.MaxLatencyUS = lats[len(lats)-1]
	if row.Degraded > 0 {
		row.RecoveryUS = recovery / int64(row.Degraded)
	}
	finishChaosRow(&row, inj)
	return row, nil
}

// runChaosStream drives the stream through the concurrent scheduler
// under the fault spec. No deadline applies, so parity is total: every
// decision — degraded ones included — must equal the fixed oracle's.
func runChaosStream(fleet *Fleet, changes []mcc.Change, fs ChaosFaultSpec, oracle []*mcc.Report) (MCCChaosRow, error) {
	row := MCCChaosRow{Spec: fs.Name, Mode: ThroughputStream, Changes: len(changes)}
	if fs.DeadlineMS > 0 {
		return row, fmt.Errorf("deadline specs are full-incremental only")
	}
	inj := faultinject.New(chaosSeed, fs.Rules...)
	m, err := mcc.New(fleet.Platform, mcc.WithFaultInjector(inj))
	if err != nil {
		return row, err
	}
	if rep := m.ProposeArchitecture(fleet.Baseline); !rep.Accepted {
		return row, fmt.Errorf("baseline rejected at %s: %v", rep.RejectedAt, rep.Findings)
	}
	sched := mcc.NewStreamScheduler(m)
	start := time.Now()
	reps := sched.Run(changes)
	row.WallUS = time.Since(start).Microseconds()

	for i, rep := range reps {
		if rep.Accepted {
			row.Accepted++
		} else {
			row.Rejected++
		}
		if rep.Degraded {
			row.Degraded++
		}
		row.PanicsRecovered += rep.PanicsRecovered
		row.RetriedAnalyses += rep.RetriedAnalyses
		if diff := chaosCompare(rep, oracle[i]); diff != "" {
			row.Mismatches++
			if row.FirstMismatch == "" {
				row.FirstMismatch = fmt.Sprintf("change %d: %s", i, diff)
			}
		}
	}
	stats := sched.Stats()
	row.PanicsRecovered += stats.PanicsRecovered
	row.RetriedAnalyses += stats.RetriedAnalyses
	row.MeanLatencyUS = row.WallUS / int64(len(changes))
	finishChaosRow(&row, inj)
	return row, nil
}

func finishChaosRow(row *MCCChaosRow, inj *faultinject.Injector) {
	row.FaultsInjected = inj.TotalFired()
	row.ParityOK = row.Mismatches == 0
	row.AvailabilityPct = 100 * float64(row.Changes-row.Degraded) / float64(row.Changes)
}

// chaosCompare reports how a faulted decision differs from the clean
// oracle's ("" when identical): verdict, rejection stage, and findings.
func chaosCompare(got, want *mcc.Report) string {
	if got.Accepted != want.Accepted {
		return fmt.Sprintf("accepted=%v, oracle %v (rejected at %q, findings %v)",
			got.Accepted, want.Accepted, got.RejectedAt, got.Findings)
	}
	if !got.Accepted && got.RejectedAt != want.RejectedAt {
		return fmt.Sprintf("rejected at %q, oracle %q", got.RejectedAt, want.RejectedAt)
	}
	gf, wf := got.Findings, want.Findings
	if len(gf) == 0 {
		gf = nil
	}
	if len(wf) == 0 {
		wf = nil
	}
	if !reflect.DeepEqual(gf, wf) {
		return fmt.Sprintf("findings %v, oracle %v", gf, wf)
	}
	return ""
}
