package scenario

import (
	"fmt"
	"testing"
)

// Shared telemetry contract for every throughput experiment row (E12 and
// the E13 scale tier alike): the cpa cache counters and the Report scan
// telemetry must be populated according to the integration mode, so a new
// experiment wired onto runChangeStream can never silently ship zeroed
// timing_scans / cache columns into a BENCH_*.json trajectory.
func assertThroughputTelemetry(t *testing.T, label string, res MCCThroughputResult) {
	t.Helper()
	decided := res.Accepted + res.Rejected
	if decided != res.Config.Updates {
		t.Errorf("%s: decided %d of %d changes", label, decided, res.Config.Updates)
	}
	if res.Evaluations <= 0 {
		t.Errorf("%s: zero pipeline evaluations recorded", label)
	}
	if res.StreamWall <= 0 {
		t.Errorf("%s: zero stream wall clock recorded", label)
	}
	if res.TimingResources <= 0 {
		t.Errorf("%s: zero timing resource coverage recorded", label)
	}
	if res.TimingScans <= 0 {
		t.Errorf("%s: zero timing scans recorded", label)
	}
	if res.FinalTasks <= 0 {
		t.Errorf("%s: zero deployed tasks after the stream", label)
	}
	if len(res.StageWall) == 0 {
		t.Errorf("%s: no per-stage wall clock recorded", label)
	}

	if res.SafetyChecks <= 0 {
		t.Errorf("%s: zero safety checks recorded", label)
	}

	switch res.Config.Mode {
	case ThroughputSerial:
		// From-scratch integration: every evaluation scans at least every
		// loaded resource, and the memoizing analyzer is not in play.
		if res.TimingScans < res.TimingResources {
			t.Errorf("%s: serial scanned %d < covered %d resources", label, res.TimingScans, res.TimingResources)
		}
		if res.CacheHits != 0 || res.CacheMisses != 0 {
			t.Errorf("%s: serial mode moved analyzer counters (hits=%d misses=%d)",
				label, res.CacheHits, res.CacheMisses)
		}
		// The from-scratch verdict stages walk every session and entity
		// per evaluation: at least one security verdict per deployed
		// connection-carrying evaluation, and safety verdicts well above
		// the decided-change count.
		if res.SecurityChecks <= 0 {
			t.Errorf("%s: serial mode recorded no security checks", label)
		}
		if res.SafetyChecks <= decided {
			t.Errorf("%s: serial mode recorded %d safety checks for %d changes — not a full walk",
				label, res.SafetyChecks, decided)
		}
	case ThroughputParallel, ThroughputBatched:
		// Timing-only incremental: the pre-timing stages run from scratch
		// (no job splice — full scans), but the memoizing analyzer and
		// digest tracking must both be live.
		if res.TimingScans < res.TimingResources {
			t.Errorf("%s: timing-only mode scanned %d < covered %d resources",
				label, res.TimingScans, res.TimingResources)
		}
		if res.CacheMisses <= 0 {
			t.Errorf("%s: timing-only mode recorded no analyzer misses", label)
		}
	default:
		// Fully incremental modes: misses are the real busy-window runs,
		// and diff-proportional job construction must splice most of the
		// coverage — scans strictly below the resources covered.
		if res.CacheMisses <= 0 {
			t.Errorf("%s: incremental mode recorded no analyzer misses", label)
		}
		if res.TimingScans >= res.TimingResources {
			t.Errorf("%s: incremental mode scanned %d of %d covered resources — splice inactive",
				label, res.TimingScans, res.TimingResources)
		}
		// The diff-scoped verdict stages must keep the per-change check
		// count footprint-sized: a handful of verdicts per change, far
		// below the serial full walk.
		if res.SafetyChecks+res.SecurityChecks > 16*decided {
			t.Errorf("%s: incremental mode computed %d verdict checks for %d changes — scoping inactive",
				label, res.SafetyChecks+res.SecurityChecks, decided)
		}
	}
}

func TestThroughputTelemetryAcrossExperiments(t *testing.T) {
	// E12 rows: the curated fleet stream under every integration strategy.
	for _, mode := range ThroughputModes() {
		mode := mode
		t.Run("e12/"+string(mode), func(t *testing.T) {
			cfg := DefaultMCCThroughputConfig()
			cfg.Mode = mode
			cfg.Updates = 24
			res, err := RunMCCThroughput(cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertThroughputTelemetry(t, "e12/"+string(mode), res)
		})
	}

	// E13 rows: the generated scale tier at the smoke size, same contract.
	cfg := DefaultMCCScaleConfig()
	cfg.Procs = []int{32}
	cfg.Updates = 16
	rows, err := RunMCCScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		row := row
		label := fmt.Sprintf("e13/%dp/%s", row.Procs, row.Result.Config.Mode)
		t.Run(label, func(t *testing.T) {
			assertThroughputTelemetry(t, label, row.Result)
			if row.Resources <= 0 {
				t.Errorf("%s: zero platform resources recorded", label)
			}
			if row.ScansPerChange() <= 0 {
				t.Errorf("%s: zero scans/change — the headline column would ship empty", label)
			}
		})
	}
}
