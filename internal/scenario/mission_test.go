package scenario

import (
	"testing"

	"repro/internal/behavior"
)

func TestMissionCrossLayerCompletes(t *testing.T) {
	r, err := RunMission(DefaultMissionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("mission incomplete: %.0fm of %.0fm", r.DistanceM, r.Config.DistanceM)
	}
	if r.Conflicts != 0 {
		t.Fatalf("conflicts = %d", r.Conflicts)
	}
	// The timeline visits normal -> derated (rain) -> normal -> derated
	// or normal-with-cap (intrusion); never a safe stop.
	for _, m := range r.Maneuvers {
		if m == behavior.SafeStop.String() || m == behavior.Standstill.String() {
			t.Fatalf("cross-layer mission stopped: %v", r.Maneuvers)
		}
	}
	if r.FinalSpeedCap <= 0 || r.FinalSpeedCap >= r.Config.CruiseSpeed {
		t.Fatalf("final speed cap = %.1f", r.FinalSpeedCap)
	}
	if len(r.Events) == 0 || len(r.Rows()) == 0 {
		t.Fatal("no events/rows")
	}
}

func TestMissionNaiveAborts(t *testing.T) {
	cfg := DefaultMissionConfig()
	cfg.CrossLayer = false
	r, err := RunMission(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed {
		t.Fatal("naive mission completed despite forced stop")
	}
	found := false
	for _, m := range r.Maneuvers {
		if m == behavior.SafeStop.String() {
			found = true
		}
	}
	if !found {
		t.Fatalf("no safe stop in naive run: %v", r.Maneuvers)
	}
	// It stopped around the intrusion, well short of the goal.
	if r.DistanceM >= cfg.DistanceM {
		t.Fatalf("distance = %.0f", r.DistanceM)
	}
}

func TestMissionComparisonShape(t *testing.T) {
	rs, err := RunMissionComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("runs = %d", len(rs))
	}
	cross, naive := rs[0], rs[1]
	if !cross.Completed || naive.Completed {
		t.Fatalf("completion: cross=%v naive=%v", cross.Completed, naive.Completed)
	}
	if cross.DistanceM <= naive.DistanceM {
		t.Fatal("cross-layer did not cover more distance")
	}
}

func TestMissionWithoutIntrusion(t *testing.T) {
	cfg := DefaultMissionConfig()
	cfg.IntrusionAtS = 0
	r, err := RunMission(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("clean mission incomplete")
	}
	if r.FinalSpeedCap != 0 {
		t.Fatalf("speed cap without intrusion: %.1f", r.FinalSpeedCap)
	}
}

func TestMissionDeterministic(t *testing.T) {
	a, err := RunMission(DefaultMissionConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMission(DefaultMissionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.DurationS != b.DurationS || a.DistanceM != b.DistanceM {
		t.Fatal("mission not deterministic")
	}
}
