package scenario

import (
	"fmt"

	"repro/internal/mcc"
	"repro/internal/model"
)

// MCCStreamConfig parameterizes E3: a stream of in-field updates proposed
// to the MCC on a reference platform.
type MCCStreamConfig struct {
	// Updates is the number of proposals (a deterministic mix of feasible
	// and infeasible ones is generated).
	Updates int
}

// DefaultMCCStreamConfig returns the baseline E3 parameters.
func DefaultMCCStreamConfig() MCCStreamConfig { return MCCStreamConfig{Updates: 24} }

// MCCStreamResult is the E3 outcome.
type MCCStreamResult struct {
	Config   MCCStreamConfig
	Accepted int
	Rejected int
	// RejectedByStage counts rejections per pipeline stage.
	RejectedByStage map[mcc.Stage]int
	// FinalTasks is the deployed task count at the end.
	FinalTasks int
	// FinalMonitors is the planned monitor count at the end.
	FinalMonitors int
	// WorstWCRTUS is the largest accepted WCRT in the final config.
	WorstWCRTUS int64
}

// Rows renders the E3 table.
func (r MCCStreamResult) Rows() []string {
	out := []string{
		fmt.Sprintf("proposals: %d, accepted: %d, rejected: %d", r.Config.Updates, r.Accepted, r.Rejected),
	}
	for _, st := range []mcc.Stage{mcc.StageValidate, mcc.StageMapping, mcc.StageSafety, mcc.StageSecurity, mcc.StageTiming} {
		if n := r.RejectedByStage[st]; n > 0 {
			out = append(out, fmt.Sprintf("  rejected at %-9s: %d", st, n))
		}
	}
	out = append(out,
		fmt.Sprintf("deployed tasks: %d, configured monitors: %d", r.FinalTasks, r.FinalMonitors),
		fmt.Sprintf("worst accepted WCRT: %dus", r.WorstWCRTUS),
	)
	return out
}

// ReferencePlatform returns the E3 target platform: two ASIL-D lockstep
// ECUs, one fast QM/B core, one CAN bus.
func ReferencePlatform() *model.Platform {
	return &model.Platform{
		Processors: []model.Processor{
			{Name: "lockstep-a", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "lockstep-b", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "perf", Policy: model.SPP, SpeedFactor: 2.5, RAMKiB: 16384, MaxSafety: model.ASILB},
		},
		Networks: []model.Network{
			{Name: "can0", BitsPerSec: 500_000, Attached: []string{"lockstep-a", "lockstep-b", "perf"}, Kind: "can"},
		},
	}
}

// RunMCCStream executes E3: propose a deterministic mix of updates —
// growing workload, occasional contract violations, an unmappable ASIL-D
// giant, a security violation — and collect the acceptance statistics.
func RunMCCStream(cfg MCCStreamConfig) (MCCStreamResult, error) {
	res := MCCStreamResult{Config: cfg, RejectedByStage: make(map[mcc.Stage]int)}
	m, err := mcc.New(ReferencePlatform())
	if err != nil {
		return res, err
	}

	for i := 0; i < cfg.Updates; i++ {
		fn := generateUpdate(i)
		rep := m.ProposeUpdate(fn)
		if rep.Accepted {
			res.Accepted++
		} else {
			res.Rejected++
			res.RejectedByStage[rep.RejectedAt]++
		}
	}

	impl := m.DeployedImpl()
	if impl != nil {
		res.FinalTasks = len(impl.Tasks)
	}
	if len(m.History) > 0 {
		for i := len(m.History) - 1; i >= 0; i-- {
			if m.History[i].Accepted {
				res.FinalMonitors = len(m.History[i].Monitors)
				for _, tr := range m.History[i].Timing {
					for _, r := range tr.Results {
						if r.WCRTUS > res.WorstWCRTUS {
							res.WorstWCRTUS = r.WCRTUS
						}
					}
				}
				break
			}
		}
	}
	return res, nil
}

// generateUpdate produces the i-th proposal of the deterministic stream.
func generateUpdate(i int) model.Function {
	switch i % 8 {
	case 0: // feasible ASIL-D control function
		return model.Function{
			Name: fmt.Sprintf("ctl%d", i),
			Contract: model.Contract{
				Safety:    model.ASILD,
				RealTime:  model.RealTimeContract{PeriodUS: 20000, WCETUS: 1200},
				Resources: model.ResourceContract{RAMKiB: 128},
			},
		}
	case 1: // feasible QM comfort function
		return model.Function{
			Name: fmt.Sprintf("comfort%d", i),
			Contract: model.Contract{
				Safety:    model.QM,
				RealTime:  model.RealTimeContract{PeriodUS: 100000, WCETUS: 8000},
				Resources: model.ResourceContract{RAMKiB: 512},
			},
		}
	case 2: // contract violation: WCET exceeds deadline
		return model.Function{
			Name: fmt.Sprintf("broken%d", i),
			Contract: model.Contract{
				Safety:   model.QM,
				RealTime: model.RealTimeContract{PeriodUS: 1000, WCETUS: 5000},
			},
		}
	case 3: // feasible ASIL-B perception function
		return model.Function{
			Name: fmt.Sprintf("perc%d", i),
			Contract: model.Contract{
				Safety:    model.ASILB,
				RealTime:  model.RealTimeContract{PeriodUS: 50000, WCETUS: 9000},
				Resources: model.ResourceContract{RAMKiB: 1024},
			},
		}
	case 4: // unmappable: ASIL-D with absurd utilization
		return model.Function{
			Name: fmt.Sprintf("giant%d", i),
			Contract: model.Contract{
				Safety:    model.ASILD,
				RealTime:  model.RealTimeContract{PeriodUS: 10000, WCETUS: 9500},
				Resources: model.ResourceContract{RAMKiB: 64},
			},
		}
	case 5: // fail-operational replicated function (feasible)
		return model.Function{
			Name:     fmt.Sprintf("failop%d", i),
			Replicas: 2,
			Contract: model.Contract{
				Safety:          model.ASILD,
				RealTime:        model.RealTimeContract{PeriodUS: 40000, WCETUS: 1500},
				Resources:       model.ResourceContract{RAMKiB: 128},
				FailOperational: true,
			},
		}
	case 6: // memory hog: exceeds every processor's RAM
		return model.Function{
			Name: fmt.Sprintf("memhog%d", i),
			Contract: model.Contract{
				Safety:    model.QM,
				RealTime:  model.RealTimeContract{PeriodUS: 100000, WCETUS: 100},
				Resources: model.ResourceContract{RAMKiB: 1 << 20},
			},
		}
	default: // feasible light telemetry function
		return model.Function{
			Name: fmt.Sprintf("telem%d", i),
			Contract: model.Contract{
				Safety:    model.QM,
				RealTime:  model.RealTimeContract{PeriodUS: 200000, WCETUS: 2000},
				Resources: model.ResourceContract{RAMKiB: 64},
			},
		}
	}
}
