package scenario

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cpa"
	"repro/internal/mcc"
	"repro/internal/model"
)

// MCCStreamConfig parameterizes E3: a stream of in-field updates proposed
// to the MCC on a reference platform.
type MCCStreamConfig struct {
	// Updates is the number of proposals (a deterministic mix of feasible
	// and infeasible ones is generated).
	Updates int
	// Analyzer, when non-nil, is shared with the MCC so a persistent
	// busy-window memo table warm-starts the timing acceptance test
	// across sessions (cmd/mcc -cache).
	Analyzer *cpa.Analyzer
}

// DefaultMCCStreamConfig returns the baseline E3 parameters.
func DefaultMCCStreamConfig() MCCStreamConfig { return MCCStreamConfig{Updates: 24} }

// MCCStreamResult is the E3 outcome.
type MCCStreamResult struct {
	Config   MCCStreamConfig
	Accepted int
	Rejected int
	// RejectedByStage counts rejections per pipeline stage.
	RejectedByStage map[mcc.Stage]int
	// FinalTasks is the deployed task count at the end.
	FinalTasks int
	// FinalMonitors is the planned monitor count at the end.
	FinalMonitors int
	// WorstWCRTUS is the largest accepted WCRT in the final config.
	WorstWCRTUS int64
}

// Rows renders the E3 table.
func (r MCCStreamResult) Rows() []string {
	out := []string{
		fmt.Sprintf("proposals: %d, accepted: %d, rejected: %d", r.Config.Updates, r.Accepted, r.Rejected),
	}
	for _, st := range []mcc.Stage{mcc.StageValidate, mcc.StageMapping, mcc.StageSafety, mcc.StageSecurity, mcc.StageTiming} {
		if n := r.RejectedByStage[st]; n > 0 {
			out = append(out, fmt.Sprintf("  rejected at %-9s: %d", st, n))
		}
	}
	out = append(out,
		fmt.Sprintf("deployed tasks: %d, configured monitors: %d", r.FinalTasks, r.FinalMonitors),
		fmt.Sprintf("worst accepted WCRT: %dus", r.WorstWCRTUS),
	)
	return out
}

// ReferencePlatform returns the E3 target platform: two ASIL-D lockstep
// ECUs, one fast QM/B core, one CAN bus.
func ReferencePlatform() *model.Platform {
	return &model.Platform{
		Processors: []model.Processor{
			{Name: "lockstep-a", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "lockstep-b", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "perf", Policy: model.SPP, SpeedFactor: 2.5, RAMKiB: 16384, MaxSafety: model.ASILB},
		},
		Networks: []model.Network{
			{Name: "can0", BitsPerSec: 500_000, Attached: []string{"lockstep-a", "lockstep-b", "perf"}, Kind: "can"},
		},
	}
}

// RunMCCStream executes E3: propose a deterministic mix of updates —
// growing workload, occasional contract violations, an unmappable ASIL-D
// giant, a security violation — and collect the acceptance statistics.
func RunMCCStream(cfg MCCStreamConfig) (MCCStreamResult, error) {
	res := MCCStreamResult{Config: cfg, RejectedByStage: make(map[mcc.Stage]int)}
	var opts []mcc.Option
	if cfg.Analyzer != nil {
		opts = append(opts, mcc.WithAnalyzer(cfg.Analyzer))
	}
	m, err := mcc.New(ReferencePlatform(), opts...)
	if err != nil {
		return res, err
	}

	for i := 0; i < cfg.Updates; i++ {
		fn := generateUpdate(i)
		rep := m.ProposeUpdate(fn)
		if rep.Accepted {
			res.Accepted++
		} else {
			res.Rejected++
			res.RejectedByStage[rep.RejectedAt]++
		}
	}

	impl := m.DeployedImpl()
	if impl != nil {
		res.FinalTasks = len(impl.Tasks)
	}
	if len(m.History) > 0 {
		for i := len(m.History) - 1; i >= 0; i-- {
			if m.History[i].Accepted {
				res.FinalMonitors = len(m.History[i].FullMonitors())
				for _, tr := range m.History[i].FullTiming() {
					for _, r := range tr.Results {
						if r.WCRTUS > res.WorstWCRTUS {
							res.WorstWCRTUS = r.WCRTUS
						}
					}
				}
				break
			}
		}
	}
	return res, nil
}

// MCCThroughputMode selects the integration strategy of the throughput
// scenario (E12).
type MCCThroughputMode string

// Throughput modes, from seed baseline to the full engine.
const (
	// ThroughputSerial is the seed behavior: every change integrated on
	// its own, every pipeline stage from scratch, full busy-window
	// re-analysis of every resource, one worker.
	ThroughputSerial MCCThroughputMode = "serial"
	// ThroughputParallel still integrates per change and runs the
	// pre-timing stages from scratch, but uses the incremental timing
	// engine: memoized analyses, dirty-resource tracking, and a
	// GOMAXPROCS-sized worker pool (the PR 1 engine).
	ThroughputParallel MCCThroughputMode = "parallel"
	// ThroughputBatched coalesces changes into batches on top of the
	// timing-incremental parallel engine, bisecting on rejection.
	ThroughputBatched MCCThroughputMode = "batched"
	// ThroughputFull integrates per change with every stage incremental:
	// scoped validation, warm-started mapping, partial synthesis, and the
	// memoized timing engine.
	ThroughputFull MCCThroughputMode = "full-incremental"
	// ThroughputStream drives the change stream through the
	// mcc.StreamScheduler on top of the full-incremental engine:
	// footprint-independent changes form optimistic windows whose
	// deferred busy-window analyses fan out over all cores, with every
	// verdict re-validated so decisions stay identical to serial order.
	ThroughputStream MCCThroughputMode = "stream-parallel"
	// ThroughputSharded drives the stream through the partition-sharded
	// scheduler (mcc.WithShardedWindows) on the full-incremental engine:
	// one optimistic window sequence per platform partition, eager
	// background prefetch of accepted changes' deferred analyses, and a
	// shared epoch journal as the rollback point. On platforms without
	// disjoint CAN segments it falls back to stream-parallel behavior.
	ThroughputSharded MCCThroughputMode = "sharded"
)

// ThroughputModes lists every E12 integration strategy, baseline first.
func ThroughputModes() []MCCThroughputMode {
	return []MCCThroughputMode{ThroughputSerial, ThroughputParallel, ThroughputBatched, ThroughputFull, ThroughputStream, ThroughputSharded}
}

// MCCThroughputConfig parameterizes E12: a fleet-scale stream of change
// requests against a pre-deployed reference workload.
type MCCThroughputConfig struct {
	// Updates is the number of streamed change requests.
	Updates int
	// BatchSize is the coalescing window of ThroughputBatched.
	BatchSize int
	// Mode selects the integration strategy.
	Mode MCCThroughputMode
	// Analyzer, when non-nil, is shared with the MCC so a persistent
	// busy-window memo table (cpa.SaveCache/LoadCache) warm-starts the
	// timing acceptance test across sessions. Cache counters in the
	// result are deltas, so sharing does not skew per-run numbers.
	Analyzer *cpa.Analyzer
}

// DefaultMCCThroughputConfig returns the baseline E12 parameters.
func DefaultMCCThroughputConfig() MCCThroughputConfig {
	return MCCThroughputConfig{Updates: 64, BatchSize: 8, Mode: ThroughputBatched}
}

// MCCThroughputResult is the E12 outcome.
type MCCThroughputResult struct {
	Config   MCCThroughputConfig
	Accepted int
	Rejected int
	// Evaluations is the number of integration-pipeline passes spent on
	// the stream (excluding the initial fleet deployment). Cold retries
	// of rejected warm-start attempts count as passes, so the
	// changes/evaluation ratio stays honest across modes.
	Evaluations int
	// CacheHits/CacheMisses are the timing-analyzer memoization counters.
	CacheHits   int64
	CacheMisses int64
	// FinalTasks is the deployed task count after the stream.
	FinalTasks int
	// StageWall sums the per-stage wall-clock time over every pipeline
	// evaluation of the stream (from Report.Stages), exposing which stages
	// dominate each integration strategy.
	StageWall map[mcc.Stage]time.Duration
	// StreamWall is the wall-clock time of the change stream alone,
	// excluding the initial fleet-baseline deployment every mode pays
	// identically — the honest basis for changes/s comparisons.
	StreamWall time.Duration
	// TimingScans/TimingResources sum the timing stage's scan telemetry
	// over the stream: how many per-resource CPA task sets were rebuilt
	// by scanning the implementation model versus the total resource
	// coverage. Diff-proportional job construction keeps scans at the
	// dirty few; the serial baseline scans everything.
	TimingScans     int
	TimingResources int
	// SecurityChecks/SafetyChecks sum the verdict-stage telemetry over
	// the stream: per-connection security verdicts and per-entity safety
	// verdicts (placements, redundancy groups, memory budgets) actually
	// computed. The diff-scoped checks keep both at the change footprint;
	// the serial baseline re-verifies the whole implementation model per
	// evaluation.
	SecurityChecks int
	SafetyChecks   int
	// Stream carries the scheduler effort counters of the stream-parallel
	// mode (zero value otherwise).
	Stream mcc.StreamStats
	// DegradedProposals counts change decisions the degradation ladder
	// re-decided on the pinned from-scratch path (Report.Degraded) —
	// always zero without fault injection.
	DegradedProposals int
	// PanicsRecovered/RetriedAnalyses sum the recovery telemetry over
	// the stream: panics recovered on pipeline stages and pooled
	// goroutines, and transient-fault analysis retries (per-proposal
	// Report counters plus the stream scheduler's pool-side counters).
	PanicsRecovered int
	RetriedAnalyses int
}

// Rows renders the E12 table.
func (r MCCThroughputResult) Rows() []string {
	out := []string{
		fmt.Sprintf("mode: %s, changes: %d, accepted: %d, rejected: %d",
			r.Config.Mode, r.Config.Updates, r.Accepted, r.Rejected),
		fmt.Sprintf("  pipeline evaluations: %d (%.2f changes/evaluation)",
			r.Evaluations, float64(r.Config.Updates)/float64(max(r.Evaluations, 1))),
		fmt.Sprintf("  timing cache: %d hits, %d misses", r.CacheHits, r.CacheMisses),
		fmt.Sprintf("  timing jobs: %d/%d resources scanned", r.TimingScans, r.TimingResources),
		fmt.Sprintf("  verdict checks: %d security, %d safety", r.SecurityChecks, r.SafetyChecks),
		fmt.Sprintf("  deployed tasks: %d", r.FinalTasks),
	}
	if r.Config.Mode == ThroughputStream || r.Config.Mode == ThroughputSharded {
		out = append(out, fmt.Sprintf("  scheduler: %s", r.Stream))
	}
	if len(r.StageWall) > 0 {
		stages := make([]mcc.Stage, 0, len(r.StageWall))
		for st := range r.StageWall {
			stages = append(stages, st)
		}
		sort.Slice(stages, func(i, j int) bool {
			if r.StageWall[stages[i]] != r.StageWall[stages[j]] {
				return r.StageWall[stages[i]] > r.StageWall[stages[j]]
			}
			return stages[i] < stages[j]
		})
		for _, st := range stages {
			out = append(out, fmt.Sprintf("  stage %-10s: %v", st, r.StageWall[st].Round(time.Microsecond)))
		}
	}
	return out
}

// FleetPlatform returns the E12 target: four ASIL-D lockstep ECUs, four
// fast QM/B cores, one CAN-FD backbone attaching all of them.
func FleetPlatform() *model.Platform {
	p := &model.Platform{
		Networks: []model.Network{
			{Name: "canfd0", BitsPerSec: 1_000_000, Kind: "can"},
		},
	}
	for i := 0; i < 4; i++ {
		p.Processors = append(p.Processors, model.Processor{
			Name: fmt.Sprintf("lockstep-%d", i), Policy: model.SPP,
			SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD,
		})
	}
	for i := 0; i < 4; i++ {
		p.Processors = append(p.Processors, model.Processor{
			Name: fmt.Sprintf("perf-%d", i), Policy: model.SPP,
			SpeedFactor: 2.5, RAMKiB: 16384, MaxSafety: model.ASILB,
		})
	}
	for i := range p.Processors {
		p.Networks[0].Attached = append(p.Networks[0].Attached, p.Processors[i].Name)
	}
	return p
}

// fleetBaseline returns the pre-deployed E12 workload: eight perception/
// control pairs communicating over the backbone plus twelve QM
// applications. Release jitter several periods deep (with correspondingly
// relaxed explicit deadlines) forces multi-activation busy windows, so the
// per-resource analysis that the incremental engine memoizes away — and
// the stream scheduler fans out over the cores — is real work, as it is
// on production timing models.
func fleetBaseline() *model.FunctionalArchitecture {
	fa := &model.FunctionalArchitecture{}
	for i := 0; i < 8; i++ {
		obj := fmt.Sprintf("obj%d", i)
		fa.Functions = append(fa.Functions,
			model.Function{
				Name:     fmt.Sprintf("perc%d", i),
				Provides: []string{obj},
				Contract: model.Contract{
					Safety:    model.ASILB,
					RealTime:  model.RealTimeContract{PeriodUS: 50000, WCETUS: 9000, JitterUS: 250000, DeadlineUS: 600000},
					Resources: model.ResourceContract{RAMKiB: 1024},
				},
			},
			model.Function{
				Name:     fmt.Sprintf("ctl%d", i),
				Requires: []string{obj},
				Contract: model.Contract{
					Safety:    model.ASILD,
					RealTime:  model.RealTimeContract{PeriodUS: 20000, WCETUS: 1500, JitterUS: 100000, DeadlineUS: 250000},
					Resources: model.ResourceContract{RAMKiB: 128},
				},
			},
		)
		fa.Flows = append(fa.Flows, model.Flow{
			From: fmt.Sprintf("perc%d", i), To: fmt.Sprintf("ctl%d", i),
			Service: obj, MsgBytes: 8, PeriodUS: 50000,
		})
	}
	for i := 0; i < 12; i++ {
		fa.Functions = append(fa.Functions, model.Function{
			Name: fmt.Sprintf("app%d", i),
			Contract: model.Contract{
				Safety:    model.QM,
				RealTime:  model.RealTimeContract{PeriodUS: 100000, WCETUS: 8000, JitterUS: 450000, DeadlineUS: 1200000},
				Resources: model.ResourceContract{RAMKiB: 256},
			},
		})
	}
	return fa
}

// generateFleetChange produces the i-th change request of the E12 stream:
// mostly new lightweight telemetry functions, periodically an update to a
// deployed application, and the occasional malformed contract a fleet
// backend would let through.
func generateFleetChange(i int) model.Function {
	switch {
	case i%32 == 13: // broken contract: WCET exceeds the deadline
		return model.Function{
			Name: fmt.Sprintf("broken%d", i),
			Contract: model.Contract{
				Safety:   model.QM,
				RealTime: model.RealTimeContract{PeriodUS: 1000, WCETUS: 5000},
			},
		}
	case i%5 == 2: // update of a deployed application (new WCET estimate)
		return model.Function{
			Name:    fmt.Sprintf("app%d", i%12),
			Version: i,
			Contract: model.Contract{
				Safety:    model.QM,
				RealTime:  model.RealTimeContract{PeriodUS: 100000, WCETUS: 8000 + int64(i%7)*100, JitterUS: 450000, DeadlineUS: 1200000},
				Resources: model.ResourceContract{RAMKiB: 256},
			},
		}
	default: // new telemetry function
		return model.Function{
			Name: fmt.Sprintf("telem%d", i),
			Contract: model.Contract{
				Safety:    model.QM,
				RealTime:  model.RealTimeContract{PeriodUS: 200000, WCETUS: 1500 + int64(i%4)*250, JitterUS: int64(i%3) * 5000},
				Resources: model.ResourceContract{RAMKiB: 64},
			},
		}
	}
}

// RunMCCThroughput executes E12: deploy the fleet baseline, then stream
// cfg.Updates change requests through the MCC using the selected
// integration strategy, and collect throughput statistics. All modes
// decide every change identically; only the pipeline cost differs.
func RunMCCThroughput(cfg MCCThroughputConfig) (MCCThroughputResult, error) {
	changes := make([]mcc.Change, 0, cfg.Updates)
	for i := 0; i < cfg.Updates; i++ {
		fn := generateFleetChange(i)
		changes = append(changes, mcc.Change{Update: &fn})
	}
	return runChangeStream(cfg, FleetPlatform(), fleetBaseline(), changes)
}

// runChangeStream is the shared throughput core of E12 and the E13 scale
// tier: deploy the baseline on a fresh MCC configured for cfg.Mode,
// stream the changes through the selected integration strategy, and
// collect the throughput/telemetry counters.
func runChangeStream(cfg MCCThroughputConfig, platform *model.Platform, baseline *model.FunctionalArchitecture, changes []mcc.Change) (MCCThroughputResult, error) {
	cfg.Updates = len(changes)
	res := MCCThroughputResult{Config: cfg}
	var opts []mcc.Option
	switch cfg.Mode {
	case ThroughputSerial:
		opts = append(opts, mcc.WithoutIncremental(), mcc.WithTimingWorkers(1))
	case ThroughputParallel, ThroughputBatched:
		opts = append(opts, mcc.WithTimingOnlyIncremental())
	case ThroughputFull, ThroughputStream, ThroughputSharded:
		// Default engine: every stage incremental.
	default:
		return res, fmt.Errorf("scenario: unknown throughput mode %q", cfg.Mode)
	}
	if cfg.Analyzer != nil {
		opts = append(opts, mcc.WithAnalyzer(cfg.Analyzer))
	}
	m, err := mcc.New(platform, opts...)
	if err != nil {
		return res, err
	}
	// Cache counters are reported as deltas over this run, so a persistent
	// analyzer shared across sessions (cfg.Analyzer) does not skew them.
	statsBefore := m.TimingCacheStats()
	if rep := m.ProposeArchitecture(baseline); !rep.Accepted {
		return res, fmt.Errorf("scenario: fleet baseline rejected at %s: %v", rep.RejectedAt, rep.Findings)
	}
	baselineEvals := len(m.History)

	streamStart := time.Now()
	switch cfg.Mode {
	case ThroughputBatched:
		bs := cfg.BatchSize
		if bs < 1 {
			bs = 1
		}
		for lo := 0; lo < len(changes); lo += bs {
			b := mcc.NewBatch()
			for i := lo; i < lo+bs && i < len(changes); i++ {
				if changes[i].Update != nil {
					b.Update(*changes[i].Update)
				} else {
					b.Remove(changes[i].Remove)
				}
			}
			br := m.ProposeBatch(b)
			res.Accepted += br.Accepted
			res.Rejected += br.Rejected
		}
	case ThroughputStream, ThroughputSharded:
		var sopts []mcc.StreamOption
		if cfg.Mode == ThroughputSharded {
			sopts = append(sopts, mcc.WithShardedWindows())
		}
		sched := mcc.NewStreamScheduler(m, sopts...)
		for _, rep := range sched.Run(changes) {
			if rep.Accepted {
				res.Accepted++
			} else {
				res.Rejected++
			}
		}
		res.Stream = sched.Stats()
	default:
		for _, c := range changes {
			var rep *mcc.Report
			if c.Update != nil {
				rep = m.ProposeUpdate(*c.Update)
			} else {
				rep = m.ProposeRemoval(c.Remove)
			}
			if rep.Accepted {
				res.Accepted++
			} else {
				res.Rejected++
			}
		}
	}

	res.StreamWall = time.Since(streamStart)
	res.StageWall = make(map[mcc.Stage]time.Duration)
	for _, rep := range m.History[baselineEvals:] {
		res.Evaluations += rep.Passes
		res.TimingScans += rep.TimingScans
		res.TimingResources += rep.TimingResources
		res.SecurityChecks += rep.SecurityChecks
		res.SafetyChecks += rep.SafetyChecks
		if rep.Degraded {
			res.DegradedProposals++
		}
		res.PanicsRecovered += rep.PanicsRecovered
		res.RetriedAnalyses += rep.RetriedAnalyses
		for st, d := range rep.StageWall() {
			res.StageWall[st] += d
		}
	}
	res.PanicsRecovered += res.Stream.PanicsRecovered
	res.RetriedAnalyses += res.Stream.RetriedAnalyses
	// Optimistic passes a window replay discarded are real pipeline work;
	// count them so Evaluations never understates the scheduler's cost
	// (their per-stage wall clock is gone with the discarded reports).
	res.Evaluations += res.Stream.DiscardedPasses
	stats := m.TimingCacheStats()
	res.CacheHits = stats.Hits - statsBefore.Hits
	res.CacheMisses = stats.Misses - statsBefore.Misses
	if impl := m.DeployedImpl(); impl != nil {
		res.FinalTasks = len(impl.Tasks)
	}
	return res, nil
}

// generateUpdate produces the i-th proposal of the deterministic stream.
func generateUpdate(i int) model.Function {
	switch i % 8 {
	case 0: // feasible ASIL-D control function
		return model.Function{
			Name: fmt.Sprintf("ctl%d", i),
			Contract: model.Contract{
				Safety:    model.ASILD,
				RealTime:  model.RealTimeContract{PeriodUS: 20000, WCETUS: 1200},
				Resources: model.ResourceContract{RAMKiB: 128},
			},
		}
	case 1: // feasible QM comfort function
		return model.Function{
			Name: fmt.Sprintf("comfort%d", i),
			Contract: model.Contract{
				Safety:    model.QM,
				RealTime:  model.RealTimeContract{PeriodUS: 100000, WCETUS: 8000},
				Resources: model.ResourceContract{RAMKiB: 512},
			},
		}
	case 2: // contract violation: WCET exceeds deadline
		return model.Function{
			Name: fmt.Sprintf("broken%d", i),
			Contract: model.Contract{
				Safety:   model.QM,
				RealTime: model.RealTimeContract{PeriodUS: 1000, WCETUS: 5000},
			},
		}
	case 3: // feasible ASIL-B perception function
		return model.Function{
			Name: fmt.Sprintf("perc%d", i),
			Contract: model.Contract{
				Safety:    model.ASILB,
				RealTime:  model.RealTimeContract{PeriodUS: 50000, WCETUS: 9000},
				Resources: model.ResourceContract{RAMKiB: 1024},
			},
		}
	case 4: // unmappable: ASIL-D with absurd utilization
		return model.Function{
			Name: fmt.Sprintf("giant%d", i),
			Contract: model.Contract{
				Safety:    model.ASILD,
				RealTime:  model.RealTimeContract{PeriodUS: 10000, WCETUS: 9500},
				Resources: model.ResourceContract{RAMKiB: 64},
			},
		}
	case 5: // fail-operational replicated function (feasible)
		return model.Function{
			Name:     fmt.Sprintf("failop%d", i),
			Replicas: 2,
			Contract: model.Contract{
				Safety:          model.ASILD,
				RealTime:        model.RealTimeContract{PeriodUS: 40000, WCETUS: 1500},
				Resources:       model.ResourceContract{RAMKiB: 128},
				FailOperational: true,
			},
		}
	case 6: // memory hog: exceeds every processor's RAM
		return model.Function{
			Name: fmt.Sprintf("memhog%d", i),
			Contract: model.Contract{
				Safety:    model.QM,
				RealTime:  model.RealTimeContract{PeriodUS: 100000, WCETUS: 100},
				Resources: model.ResourceContract{RAMKiB: 1 << 20},
			},
		}
	default: // feasible light telemetry function
		return model.Function{
			Name: fmt.Sprintf("telem%d", i),
			Contract: model.Contract{
				Safety:    model.QM,
				RealTime:  model.RealTimeContract{PeriodUS: 200000, WCETUS: 2000},
				Resources: model.ResourceContract{RAMKiB: 64},
			},
		}
	}
}
