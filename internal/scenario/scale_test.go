package scenario

import (
	"testing"
)

func TestRunMCCScaleModesAgree(t *testing.T) {
	// At the smoke size, every integration strategy must decide the
	// generated stream identically — the E13 sweep compares cost, never
	// verdicts.
	cfg := DefaultMCCScaleConfig()
	cfg.Procs = []int{32}
	cfg.Updates = 24
	rows, err := RunMCCScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Modes) {
		t.Fatalf("got %d rows, want %d", len(rows), len(cfg.Modes))
	}
	for _, r := range rows[1:] {
		if r.Result.Accepted != rows[0].Result.Accepted || r.Result.Rejected != rows[0].Result.Rejected {
			t.Fatalf("mode %s decided %d/%d, mode %s decided %d/%d",
				r.Result.Config.Mode, r.Result.Accepted, r.Result.Rejected,
				rows[0].Result.Config.Mode, rows[0].Result.Accepted, rows[0].Result.Rejected)
		}
	}
}

func TestRunMCCScaleDiffProportionalScans(t *testing.T) {
	// The acceptance criterion of the scale tier: with the incremental
	// engine, TimingScans per decided change is bounded by the change
	// footprint (a touched function lands on a handful of processors, a
	// flow-touching change adds the networks) — NOT by the platform size.
	// Sweeping 64 -> 512 processors multiplies the resources by 8; the
	// per-change scan count must stay flat, and the serial baseline must
	// demonstrate the contrast by scanning the whole platform every time.
	cfg := MCCScaleConfig{
		Procs:   []int{64, 512},
		Updates: 24,
		Modes:   []MCCThroughputMode{ThroughputFull, ThroughputStream, ThroughputSerial},
	}
	rows, err := RunMCCScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]MCCScaleRow)
	for _, r := range rows {
		byKey[string(r.Result.Config.Mode)+"@"+itoa(r.Procs)] = r
		t.Logf("procs=%3d mode=%-16s scans=%4d scans/change=%.2f resources=%d",
			r.Procs, r.Result.Config.Mode, r.Result.TimingScans, r.ScansPerChange(), r.Resources)
	}

	for _, mode := range []MCCThroughputMode{ThroughputFull, ThroughputStream} {
		small := byKey[string(mode)+"@64"]
		big := byKey[string(mode)+"@512"]
		// Footprint bound: a generated change touches at most a few
		// processors (old + new placement of the touched function) plus
		// the platform networks when a flow endpoint moved. The bound is
		// a small constant — far below the 500+ resources of the big
		// platform.
		const maxScansPerChange = 12
		for _, r := range []MCCScaleRow{small, big} {
			if spc := r.ScansPerChange(); spc > maxScansPerChange {
				t.Errorf("%s@%d: %.2f scans/change exceeds footprint bound %d (resources=%d)",
					mode, r.Procs, spc, maxScansPerChange, r.Resources)
			}
		}
		// Flatness: 8x the platform must not translate into scan growth.
		// Identical streams make the comparison exact up to placement
		// spread; allow a 2x envelope.
		if small.ScansPerChange() > 0 && big.ScansPerChange() > 2*small.ScansPerChange()+1 {
			t.Errorf("%s: scans/change grew with platform size: %.2f@64 -> %.2f@512",
				mode, small.ScansPerChange(), big.ScansPerChange())
		}
	}

	// Contrast: the serial baseline re-scans every loaded resource per
	// evaluation, so its per-change scans must track the platform size.
	serialSmall := byKey[string(ThroughputSerial)+"@64"]
	serialBig := byKey[string(ThroughputSerial)+"@512"]
	if serialBig.ScansPerChange() < 4*serialSmall.ScansPerChange() {
		t.Errorf("serial baseline scans did not grow with the platform: %.2f@64 -> %.2f@512",
			serialSmall.ScansPerChange(), serialBig.ScansPerChange())
	}
	if serialBig.ScansPerChange() < float64(serialBig.Resources)/2 {
		t.Errorf("serial baseline scans %.2f/change do not track the %d platform resources",
			serialBig.ScansPerChange(), serialBig.Resources)
	}
}

func TestRunMCCScaleDiffProportionalVerdictChecks(t *testing.T) {
	// The PR 5 acceptance criterion, asserted at the CI smoke sizes: with
	// the diff-scoped safety/security stages, security+safety checks per
	// decided change must stay flat (within 2x) as the platform grows
	// 32 -> 128 processors, and stay footprint-sized in absolute terms,
	// while the serial baseline re-verifies the whole implementation
	// model per evaluation and therefore grows with the fleet.
	cfg := MCCScaleConfig{
		Procs:   []int{32, 128},
		Updates: 24,
		Modes:   []MCCThroughputMode{ThroughputFull, ThroughputStream, ThroughputSerial},
	}
	rows, err := RunMCCScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]MCCScaleRow)
	for _, r := range rows {
		byKey[string(r.Result.Config.Mode)+"@"+itoa(r.Procs)] = r
		t.Logf("procs=%3d mode=%-16s security=%5d safety=%5d checks/change=%.2f",
			r.Procs, r.Result.Config.Mode, r.Result.SecurityChecks, r.Result.SafetyChecks, r.ChecksPerChange())
	}

	for _, mode := range []MCCThroughputMode{ThroughputFull, ThroughputStream} {
		small := byKey[string(mode)+"@32"]
		big := byKey[string(mode)+"@128"]
		// Footprint bound: a generated change touches one function's
		// placement verdict, at most a few budget/redundancy entities,
		// and no (or a couple of) sessions.
		const maxChecksPerChange = 16
		for _, r := range []MCCScaleRow{small, big} {
			if cpc := r.ChecksPerChange(); cpc <= 0 || cpc > maxChecksPerChange {
				t.Errorf("%s@%d: %.2f checks/change outside (0, %d]",
					mode, r.Procs, cpc, maxChecksPerChange)
			}
		}
		// Flatness: 4x the platform must stay within the 2x envelope of
		// the acceptance criterion.
		if big.ChecksPerChange() > 2*small.ChecksPerChange()+1 {
			t.Errorf("%s: checks/change grew with platform size: %.2f@32 -> %.2f@128",
				mode, small.ChecksPerChange(), big.ChecksPerChange())
		}
	}

	// Contrast: the from-scratch verdict stages re-verify every entity per
	// evaluation, so serial checks/change must track the platform size.
	serialSmall := byKey[string(ThroughputSerial)+"@32"]
	serialBig := byKey[string(ThroughputSerial)+"@128"]
	if serialBig.ChecksPerChange() < 2*serialSmall.ChecksPerChange() {
		t.Errorf("serial baseline checks did not grow with the platform: %.2f@32 -> %.2f@128",
			serialSmall.ChecksPerChange(), serialBig.ChecksPerChange())
	}
	if serialBig.ChecksPerChange() < float64(serialBig.Procs) {
		t.Errorf("serial baseline checks %.2f/change do not track the %d-processor fleet",
			serialBig.ChecksPerChange(), serialBig.Procs)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
