package scenario

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/mcc"
)

// Report-snapshot mutation oracle: a Report, once returned, is a
// snapshot — writing through any surface a consumer can reach (the
// deltas, the materialized whole-table views, findings, telemetry) must
// not change a single future decision of the controller. Twin engines
// process the identical change stream; one twin's reports are vandalized
// after every proposal, the other's are left pristine. Any divergence in
// verdicts, findings, placements, or committed tables means a report
// aliased committed state.

// vandalizeReport writes through every mutable surface of a report.
func vandalizeReport(rep *mcc.Report) {
	if rep == nil {
		return
	}
	rep.Findings = append(rep.Findings, "vandalized")
	rep.DegradedReasons = append(rep.DegradedReasons, "vandalized")
	for i := range rep.TimingDelta {
		rep.TimingDelta[i].Resource = "vandal"
		for j := range rep.TimingDelta[i].Results {
			rep.TimingDelta[i].Results[j].Name = "vandal"
			rep.TimingDelta[i].Results[j].WCRTUS = -1
			rep.TimingDelta[i].Results[j].Schedulable = false
		}
	}
	for i := range rep.MonitorDelta {
		rep.MonitorDelta[i].Target = "vandal"
		rep.MonitorDelta[i].PeriodUS = -1
		rep.MonitorDelta[i].Enforce = !rep.MonitorDelta[i].Enforce
	}
	// The materialized views promise fresh copies on every call: writing
	// through one call's result must not show up in the next call's.
	ft := rep.FullTiming()
	for i := range ft {
		ft[i].Resource = "vandal"
		for j := range ft[i].Results {
			ft[i].Results[j].WCRTUS = -7
			ft[i].Results[j].Schedulable = false
		}
	}
	fm := rep.FullMonitors()
	for i := range fm {
		fm[i].Target = "vandal"
		fm[i].WCETUS = -7
	}
	for i := range rep.Stages {
		rep.Stages[i].Note = "vandal"
	}
}

func TestReportMutationOracle(t *testing.T) {
	seeds := []uint64{3, 42, 0x4d2}
	modes := []struct {
		name string
		opts []mcc.Option
	}{
		{"serial", []mcc.Option{mcc.WithoutIncremental()}},
		{"incremental", nil},
		{"stream", nil},
	}
	for _, mode := range modes {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed=%#x", mode.name, seed), func(t *testing.T) {
				fleet := GenFleet(paritySpec(seed))
				changes := fleet.Changes(24)

				mk := func() *mcc.MCC {
					m, err := mcc.New(fleet.Platform, mode.opts...)
					if err != nil {
						t.Fatal(err)
					}
					return m
				}
				pristine, dirty := mk(), mk()
				pb := pristine.ProposeArchitecture(fleet.Baseline)
				db := dirty.ProposeArchitecture(fleet.Baseline)
				if pb.Accepted != db.Accepted {
					t.Fatalf("baseline verdicts diverge before any mutation")
				}
				vandalizeReport(db)
				if !pb.Accepted {
					t.Skip("infeasible baseline for this seed/mode")
				}

				var pReports, dReports []*mcc.Report
				if mode.name == "stream" {
					pReports = mcc.NewStreamScheduler(pristine).Run(changes)
					// Windowed runs hand back all reports at once; the
					// vandal mutates each before comparing, and a second
					// window proves the mutations didn't poison state
					// carried across windows.
					dReports = mcc.NewStreamScheduler(dirty).Run(changes[:len(changes)/2])
					for _, rep := range dReports {
						vandalizeReport(rep)
					}
					more := mcc.NewStreamScheduler(dirty).Run(changes[len(changes)/2:])
					for _, rep := range more {
						vandalizeReport(rep)
					}
					dReports = append(dReports, more...)
				} else {
					propose := func(m *mcc.MCC, c mcc.Change) *mcc.Report {
						if c.Update != nil {
							return m.ProposeUpdate(*c.Update)
						}
						return m.ProposeRemoval(c.Remove)
					}
					for _, c := range changes {
						pReports = append(pReports, propose(pristine, c))
						dr := propose(dirty, c)
						vandalizeReport(dr)
						dReports = append(dReports, dr)
					}
				}

				for i := range pReports {
					if verdict(pReports[i]) != verdict(dReports[i]) {
						t.Fatalf("change %d: verdicts diverge after report mutation: pristine %s, vandalized %s",
							i, verdict(pReports[i]), verdict(dReports[i]))
					}
					// The vandal appended one marker finding, so the
					// vandalized twin's findings must be exactly the
					// pristine twin's plus the marker.
					want := append(append([]string{}, pReports[i].Findings...), "vandalized")
					if got := dReports[i].Findings; !reflect.DeepEqual(got, want) {
						t.Fatalf("change %d findings diverge:\npristine+marker %v\nvandalized      %v", i, want, got)
					}
				}

				if !reflect.DeepEqual(placements(pristine), placements(dirty)) {
					t.Fatalf("final placements diverge after report mutations")
				}
				if !reflect.DeepEqual(pristine.DeployedMonitors(), dirty.DeployedMonitors()) {
					t.Fatalf("final monitor plans diverge after report mutations")
				}
				// The committed timing tables themselves: materialize both
				// final states through the last accepted reports.
				lastAccepted := func(reports []*mcc.Report) *mcc.Report {
					for i := len(reports) - 1; i >= 0; i-- {
						if reports[i].Accepted {
							return reports[i]
						}
					}
					return nil
				}
				pl, dl := lastAccepted(pReports), lastAccepted(dReports)
				if (pl == nil) != (dl == nil) {
					t.Fatalf("accepted-change sets diverge")
				}
				if pl != nil && !reflect.DeepEqual(pl.FullTiming(), dl.FullTiming()) {
					t.Fatalf("final committed WCRT tables diverge after report mutations")
				}
			})
		}
	}
}
