package scenario

import (
	"testing"
)

// TestRunMCCChaosParityAcrossFaultMatrix is the E14 acceptance tier: the
// full default fault matrix at the smoke platform size must uphold the
// robustness contract — every run completes (no crash, no hang), every
// decision matches the clean serial oracle except explicit deadline
// expiries, and the injected faults actually land.
func TestRunMCCChaosParityAcrossFaultMatrix(t *testing.T) {
	cfg := DefaultMCCChaosConfig()
	cfg.Updates = 16
	rows, err := RunMCCChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no chaos rows")
	}

	byKey := make(map[string]MCCChaosRow, len(rows))
	for _, r := range rows {
		byKey[r.Spec+"/"+string(r.Mode)] = r

		if !r.ParityOK {
			t.Errorf("%s/%s: %d decision(s) diverged from the clean oracle: %s",
				r.Spec, r.Mode, r.Mismatches, r.FirstMismatch)
		}
		if got := r.Accepted + r.Rejected; got != r.Changes {
			t.Errorf("%s/%s: %d of %d proposals unresolved", r.Spec, r.Mode, r.Changes-got, r.Changes)
		}
		if r.Spec == "none" {
			if r.FaultsInjected != 0 || r.Degraded != 0 || r.PanicsRecovered != 0 || r.RetriedAnalyses != 0 {
				t.Errorf("control row %s/%s reports fault telemetry: %+v", r.Spec, r.Mode, r)
			}
			if r.AvailabilityPct != 100 {
				t.Errorf("control row availability = %.1f%%, want 100%%", r.AvailabilityPct)
			}
		} else if r.FaultsInjected == 0 {
			t.Errorf("%s/%s: fault spec fired nothing — the matrix is not exercising the ladder", r.Spec, r.Mode)
		}
	}

	// The verdict profile must be identical across every row: fault
	// injection may cost availability and latency, never decisions.
	ref := byKey["none/"+string(ThroughputFull)]
	for _, r := range rows {
		if r.DeadlineExpired > 0 {
			continue // deadline rejections legitimately change the profile
		}
		if r.Accepted != ref.Accepted || r.Rejected != ref.Rejected {
			t.Errorf("%s/%s decided %d/%d, clean control decided %d/%d",
				r.Spec, r.Mode, r.Accepted, r.Rejected, ref.Accepted, ref.Rejected)
		}
	}

	// Each hardening mechanism must actually trigger somewhere.
	if r := byKey["analyzer-error/"+string(ThroughputFull)]; r.RetriedAnalyses == 0 {
		t.Error("analyzer-error spec never retried an analysis")
	}
	if r := byKey["worker-panic/"+string(ThroughputFull)]; r.PanicsRecovered == 0 {
		t.Error("worker-panic spec never recovered a panic")
	}
	// Under a total analyzer outage every proposal that reaches the
	// timing stage rides the pinned path; only pre-timing rejections
	// (validation, security) can stay undegraded.
	if r := byKey["analyzer-burst/"+string(ThroughputFull)]; r.Degraded < r.Changes/2 {
		t.Errorf("analyzer-burst degraded only %d of %d proposals, want a majority (total outage)",
			r.Degraded, r.Changes)
	}
	if r := byKey["analyzer-slow/"+string(ThroughputFull)]; r.Degraded != 0 {
		t.Errorf("analyzer-slow degraded %d proposals, want 0 (latency-only fault)", r.Degraded)
	}
	degradedSomewhere := false
	for _, r := range rows {
		if r.Degraded > 0 {
			degradedSomewhere = true
		}
	}
	if !degradedSomewhere {
		t.Error("no row exercised the degradation ladder")
	}
}

// TestRunMCCChaosDeadlineBoundsStalls pins the deadline column: stalls
// far past the proposal deadline must resolve as explicit, bounded
// deadline rejections — never a hang — while unaffected proposals stay
// on the clean verdict profile.
func TestRunMCCChaosDeadlineBoundsStalls(t *testing.T) {
	cfg := DefaultMCCChaosConfig()
	cfg.Updates = 16
	cfg.Modes = []MCCThroughputMode{ThroughputFull}
	var deadline ChaosFaultSpec
	for _, fs := range cfg.Specs {
		if fs.Name == "stage-stall-deadline" {
			deadline = fs
		}
	}
	if deadline.Name == "" {
		t.Fatal("stage-stall-deadline spec missing from the default matrix")
	}
	cfg.Specs = []ChaosFaultSpec{deadline}

	rows, err := RunMCCChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if !r.ParityOK {
		t.Errorf("non-deadline decisions diverged: %s", r.FirstMismatch)
	}
	if r.DeadlineExpired == 0 {
		t.Error("stall spec produced no deadline rejection")
	}
	if r.DeadlineExpired > r.Degraded {
		t.Errorf("deadline expiries (%d) exceed degraded count (%d)", r.DeadlineExpired, r.Degraded)
	}
	// Every proposal must resolve within the deadline plus bounded
	// overhead (stage completion, pinned re-run); 10x is generous slack
	// for race-instrumented CI, while a genuine 1.5s stall would blow it.
	limitUS := int64(deadline.DeadlineMS) * 1000 * 10
	if r.MaxLatencyUS >= limitUS {
		t.Errorf("slowest proposal took %dus, want < %dus (deadline %dms)",
			r.MaxLatencyUS, limitUS, deadline.DeadlineMS)
	}
	if r.Accepted+r.Rejected != r.Changes {
		t.Errorf("%d of %d proposals unresolved", r.Changes-r.Accepted-r.Rejected, r.Changes)
	}
}
