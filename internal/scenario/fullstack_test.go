package scenario

import (
	"errors"
	"testing"

	"repro/internal/model"
	"repro/internal/rte"
	"repro/internal/security"
	"repro/internal/sim"
)

func fullStackArch() *model.FunctionalArchitecture {
	return &model.FunctionalArchitecture{
		Functions: []model.Function{
			{
				Name:     "perception",
				Provides: []string{"objects"},
				Contract: model.Contract{
					Safety:    model.ASILB,
					RealTime:  model.RealTimeContract{PeriodUS: 50000, WCETUS: 8000},
					Resources: model.ResourceContract{RAMKiB: 1024},
				},
			},
			{
				Name:     "acc",
				Requires: []string{"objects"},
				Provides: []string{"accel_cmd"},
				Contract: model.Contract{
					Safety:    model.ASILC,
					RealTime:  model.RealTimeContract{PeriodUS: 20000, WCETUS: 2000},
					Resources: model.ResourceContract{RAMKiB: 256},
				},
			},
			{
				Name:     "brake",
				Requires: []string{"accel_cmd"},
				Contract: model.Contract{
					Safety:    model.ASILD,
					RealTime:  model.RealTimeContract{PeriodUS: 10000, WCETUS: 900},
					Resources: model.ResourceContract{RAMKiB: 128},
				},
			},
		},
	}
}

func TestFullStackDeployAndRun(t *testing.T) {
	fs, err := NewFullStack(ReferencePlatform())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Deploy(fullStackArch())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("deploy rejected at %s: %v", rep.RejectedAt, rep.Findings)
	}
	// Execution domain mirrors the implementation model.
	if got := len(fs.RTE.Components()); got != 3 {
		t.Fatalf("components = %d", got)
	}
	// Capability wiring: acc can reach objects, brake cannot.
	if !fs.RTE.HasCap("acc#0", "objects") {
		t.Fatal("acc capability missing")
	}
	if fs.RTE.HasCap("brake#0", "objects") {
		t.Fatal("brake has an unmodeled capability")
	}
	// Run one second of the deployed system: tasks execute, no deviations
	// (contract WCETs hold by default).
	if err := fs.Run(1 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if fs.WCETViolations() != 0 {
		t.Fatalf("nominal run produced %d WCET violations", fs.WCETViolations())
	}
	st := fs.Rep.Metrics().Get("exec.brake#0")
	if st.Count == 0 {
		t.Fatal("no execution metrics recorded")
	}
	// 1s / 10ms = 100 jobs (first release at t=0 via Offset 0: the task
	// starts at Offset then ticks; expect ~100).
	if st.Count < 90 || st.Count > 110 {
		t.Fatalf("brake jobs = %d", st.Count)
	}
}

func TestFullStackDeviationAndRefinement(t *testing.T) {
	fs, err := NewFullStack(ReferencePlatform())
	if err != nil {
		t.Fatal(err)
	}
	// The acc implementation misbehaves: actual exec up to 3ms vs the
	// contracted 2ms.
	rng := sim.NewRNG(5)
	fs.SetExecBehaviour("acc", func() sim.Time {
		return sim.Time(rng.Uniform(1500, 3000)) * sim.Microsecond
	})
	rep, err := fs.Deploy(fullStackArch())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("deploy rejected: %v", rep.Findings)
	}
	if err := fs.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// The budget monitor catches the WCET overruns...
	if fs.WCETViolations() == 0 {
		t.Fatal("no WCET violations detected despite misbehaving exec")
	}
	// ...and the model-refinement loop evolves the contract.
	ref, err := fs.Refine()
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Accepted {
		t.Fatalf("refinement rejected: %v (%s)", ref.Findings, ref.RejectedAt)
	}
	evolved := fs.MCC.Deployed().FunctionByName("acc").Contract.RealTime.WCETUS
	if evolved <= 2000 {
		t.Fatalf("contract not evolved: WCET %dus", evolved)
	}
	if evolved > 3100 {
		t.Fatalf("evolved WCET %dus exceeds plausible observation", evolved)
	}
	// After refinement the deployed tasks carry the evolved WCET: further
	// violations against the *new* budget should be rare (the budget now
	// covers the observed behaviour).
	before := fs.WCETViolations()
	if err := fs.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	after := fs.WCETViolations() - before
	if after > 5 {
		t.Fatalf("still %d violations after refinement", after)
	}
}

func TestFullStackLeastPrivilege(t *testing.T) {
	fs, err := NewFullStack(ReferencePlatform())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Deploy(fullStackArch()); err != nil {
		t.Fatal(err)
	}
	// An unmodeled session open is denied by the capability system AND
	// flagged by the IDS.
	if _, err := fs.RTE.OpenSession("brake#0", "objects"); !errors.Is(err, rte.ErrNoCapability) {
		t.Fatalf("unmodeled open: %v", err)
	}
	if fs.RTE.DeniedOpens != 1 {
		t.Fatalf("denied opens = %d", fs.RTE.DeniedOpens)
	}
	if fs.IDS.Observe(security.CommEvent{Source: "brake#0", Service: "objects", At: fs.Sim.Now(), Bytes: 8}) {
		t.Fatal("IDS admitted unmodeled communication")
	}
	if len(fs.IDS.Alerts()) != 1 {
		t.Fatalf("alerts = %d", len(fs.IDS.Alerts()))
	}
}

func TestFullStackRejectedDeployLeavesRTEEmpty(t *testing.T) {
	fs, err := NewFullStack(ReferencePlatform())
	if err != nil {
		t.Fatal(err)
	}
	bad := fullStackArch()
	bad.Functions[0].Contract.RealTime.WCETUS = 10_000_000 // infeasible
	rep, err := fs.Deploy(bad)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("infeasible deploy accepted")
	}
	if got := len(fs.RTE.Components()); got != 0 {
		t.Fatalf("rejected deploy left %d components", got)
	}
}

func TestFunctionOfInstance(t *testing.T) {
	if functionOfInstance("acc#0") != "acc" {
		t.Fatal("suffix strip failed")
	}
	if functionOfInstance("plain") != "plain" {
		t.Fatal("no-suffix case failed")
	}
}
