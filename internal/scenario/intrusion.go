package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/security"
	"repro/internal/sim"
	"repro/internal/skills"
	"repro/internal/vehicle"
)

// IntrusionStrategy selects how the system responds to the compromised
// rear-braking component (the Section V worked example).
type IntrusionStrategy string

// Strategies compared by E5.
const (
	// StrategySafetyOnly treats the shutdown purely as a component
	// failure on the safety layer; with no standby for the rear brake,
	// the only safe decision left is the fail-safe stop.
	StrategySafetyOnly IntrusionStrategy = "safety-only"
	// StrategyCrossLayer propagates the loss to the ability layer, which
	// reassesses skills: reduced speed + drivetrain braking keep the
	// driving objective alive within safe margins.
	StrategyCrossLayer IntrusionStrategy = "cross-layer"
	// StrategyObjectiveStop escalates directly to the objective layer:
	// transition to a safe state, then deactivate the component.
	StrategyObjectiveStop IntrusionStrategy = "objective-stop"
	// StrategyUncoordinated lets every layer decide independently,
	// exposing conflicting decisions (the paper's warning).
	StrategyUncoordinated IntrusionStrategy = "uncoordinated"
)

// IntrusionConfig parameterizes E5.
type IntrusionConfig struct {
	Strategy IntrusionStrategy
	// CruiseSpeed is the speed when the leak is detected (m/s).
	CruiseSpeed float64
	// AttackFloodPeriod is the compromised component's message flood
	// period fed to the IDS (smaller = more aggressive).
	AttackFloodPeriod sim.Time
}

// DefaultIntrusionConfig returns the baseline: cross-layer response at
// motorway speed.
func DefaultIntrusionConfig() IntrusionConfig {
	return IntrusionConfig{
		Strategy:          StrategyCrossLayer,
		CruiseSpeed:       25,
		AttackFloodPeriod: 1 * sim.Millisecond,
	}
}

// IntrusionResult is the outcome of one E5 run.
type IntrusionResult struct {
	Config IntrusionConfig
	// Detected reports whether the IDS identified the compromised source.
	Detected bool
	// DetectionAlerts counts IDS alerts until containment.
	DetectionAlerts int
	// Resolution is the final cross-layer decision.
	Resolution core.Resolution
	// FunctionalityRetained mirrors the resolution metric.
	FunctionalityRetained float64
	// DrivingContinues reports whether the vehicle keeps driving.
	DrivingContinues bool
	// SpeedCap is the installed maximum speed (m/s; 0 if stopped or
	// unlimited).
	SpeedCap float64
	// StoppingDistanceM is the worst-case stopping distance from the
	// operating speed *after* the response (safe margin evidence).
	StoppingDistanceM float64
	// Conflicts counts contradictory layer decisions (uncoordinated
	// baseline only).
	Conflicts int
	// PropagationHops counts layer hops until the decision.
	PropagationHops int
}

// Rows renders the E5 table row for this strategy.
func (r IntrusionResult) Rows() []string {
	return []string{
		fmt.Sprintf("strategy=%s", r.Config.Strategy),
		fmt.Sprintf("IDS detected: %v (%d alerts)", r.Detected, r.DetectionAlerts),
		fmt.Sprintf("decision: %s @ %s", r.Resolution.Action, r.Resolution.Layer),
		fmt.Sprintf("functionality retained: %.2f, driving continues: %v, speed cap: %.1f m/s",
			r.FunctionalityRetained, r.DrivingContinues, r.SpeedCap),
		fmt.Sprintf("stopping distance after response: %.1f m", r.StoppingDistanceM),
		fmt.Sprintf("conflicting decisions: %d, propagation hops: %d", r.Conflicts, r.PropagationHops),
	}
}

// RunIntrusion executes the E5 scenario: a security flaw in the rear
// braking software component is detected by communication monitoring; the
// selected strategy decides the response.
func RunIntrusion(cfg IntrusionConfig) (IntrusionResult, error) {
	res := IntrusionResult{Config: cfg}

	// --- Detection: the compromised component floods an unauthorized
	// service; the IDS (trained on the modeled communication) flags it.
	ids := security.NewIDS()
	ids.Allow("rear-brake-ctl", "brake-actuator")
	ids.Allow("acc", "brake-actuator")
	ids.EndLearning()
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * cfg.AttackFloodPeriod
		ids.Observe(security.CommEvent{Source: "rear-brake-ctl", Service: "telemetry-exfil", At: at, Bytes: 64})
	}
	suspects := ids.SuspectSources(3)
	res.Detected = len(suspects) > 0 && suspects[0] == "rear-brake-ctl"
	res.DetectionAlerts = len(ids.Alerts())
	if !res.Detected {
		return res, fmt.Errorf("scenario: IDS failed to detect the compromised component")
	}

	// --- Plant state shared by the layer handlers.
	veh := vehicle.New(vehicle.DefaultParams())
	veh.SetSpeed(cfg.CruiseSpeed)
	ag, err := skills.InstantiateACC()
	if err != nil {
		return res, err
	}
	rep := core.NewSelfRepresentation()
	rep.AttachAbilityGraph(ag)

	coord := core.NewCoordinator(rep)
	coord.Uncoordinated = cfg.Strategy == StrategyUncoordinated

	// Security layer: contain the component (cut its VF / kill it), then
	// raise "component-lost" for the next layer.
	securityHandler := func(p *core.Problem, ctx *core.Context) (core.Resolution, bool) {
		// Containment: rear braking is gone.
		veh.SetRearBrakeHealth(0)
		if err := ag.SetHealth(skills.SinkBrakingSystem, skills.Level(veh.BrakingFraction())); err != nil {
			return core.Resolution{}, false
		}
		rep.SetStatus(core.LayerSecurity, p.Subject, "contained")
		follow := &core.Problem{
			Kind: "component-lost", Subject: p.Subject,
			Origin:   core.LayerSafety,
			Severity: monitor.Critical,
			Data:     map[string]float64{"braking_fraction": veh.BrakingFraction()},
		}
		sub, err := ctx.Raise(follow)
		if err != nil {
			return core.Resolution{}, false
		}
		// The security layer's own action is the containment; the overall
		// outcome is the follow-up decision.
		sub.Claims = append(sub.Claims, p.Subject)
		return sub, true
	}

	// Safety layer: no standby exists for the rear brake circuit in this
	// vehicle; decline so the problem escalates (or, under safety-only,
	// the chain ends and fail-safe applies).
	safetyHandler := func(p *core.Problem, ctx *core.Context) (core.Resolution, bool) {
		if cfg.Strategy == StrategyUncoordinated {
			// Independent decision: pretend redundancy allows continuing.
			return core.Resolution{
				Action: "continue-driving-assuming-redundancy",
				Claims: []string{"vehicle-motion"}, FunctionalityRetained: 1, SafeState: false,
			}, true
		}
		return core.Resolution{}, false
	}

	// Ability layer: reassess skills — keep driving with reduced speed
	// and drivetrain braking.
	abilityHandler := func(p *core.Problem, ctx *core.Context) (core.Resolution, bool) {
		if cfg.Strategy == StrategyObjectiveStop {
			return core.Resolution{}, false // forward the search for solutions
		}
		veh.SetDrivetrainBraking(true)
		const demandedStopM = 40 // stopping distance the objective demands
		cap := veh.SafeSpeedForStoppingDistance(demandedStopM)
		res.SpeedCap = cap
		rep.SetStatus(core.LayerAbility, "max-speed", fmt.Sprintf("%.1f", cap))
		functionality := cap / cfg.CruiseSpeed
		if functionality > 1 {
			functionality = 1
		}
		return core.Resolution{
			Action:                "reduce-max-speed+drivetrain-braking",
			Claims:                []string{"vehicle-motion"},
			FunctionalityRetained: functionality,
			SafeState:             true,
		}, true
	}

	// Objective layer: transition to a safe state (stop), then deactivate.
	objectiveHandler := func(p *core.Problem, ctx *core.Context) (core.Resolution, bool) {
		rep.SetStatus(core.LayerObjective, "mission", "safe-stop")
		return core.Resolution{
			Action:                "safe-stop-then-deactivate",
			Claims:                []string{"vehicle-motion"},
			FunctionalityRetained: 0.05,
			SafeState:             true,
		}, true
	}

	// Escalation topology depends on the strategy.
	switch cfg.Strategy {
	case StrategySafetyOnly:
		if err := coord.RegisterLayer(core.LayerSecurity, securityHandler, ""); err != nil {
			return res, err
		}
		if err := coord.RegisterLayer(core.LayerSafety, safetyHandler, ""); err != nil {
			return res, err
		}
	default:
		if err := coord.RegisterLayer(core.LayerSecurity, securityHandler, ""); err != nil {
			return res, err
		}
		if err := coord.RegisterLayer(core.LayerSafety, safetyHandler, core.LayerAbility); err != nil {
			return res, err
		}
		if err := coord.RegisterLayer(core.LayerAbility, abilityHandler, core.LayerObjective); err != nil {
			return res, err
		}
		if err := coord.RegisterLayer(core.LayerObjective, objectiveHandler, ""); err != nil {
			return res, err
		}
	}

	decision, err := coord.Report(&core.Problem{
		Kind: "security-leak", Subject: "rear-brake-ctl",
		Origin: core.LayerSecurity, Severity: monitor.Critical,
	})
	if err != nil {
		return res, err
	}
	res.Resolution = decision
	res.FunctionalityRetained = decision.FunctionalityRetained
	res.DrivingContinues = decision.FunctionalityRetained > 0.1 && decision.SafeState
	res.Conflicts = len(coord.Conflicts())
	res.PropagationHops = len(coord.Traces())
	// Post-response stopping distance from the operating speed.
	opSpeed := cfg.CruiseSpeed
	if res.SpeedCap > 0 && res.SpeedCap < opSpeed {
		opSpeed = res.SpeedCap
	}
	if !res.DrivingContinues {
		opSpeed = 0
	}
	res.StoppingDistanceM = veh.StoppingDistance(opSpeed)
	return res, nil
}

// RunIntrusionComparison executes all four strategies (the E5 table).
func RunIntrusionComparison() ([]IntrusionResult, error) {
	var out []IntrusionResult
	for _, s := range []IntrusionStrategy{StrategySafetyOnly, StrategyObjectiveStop, StrategyCrossLayer, StrategyUncoordinated} {
		cfg := DefaultIntrusionConfig()
		cfg.Strategy = s
		r, err := RunIntrusion(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
