package scenario

import "testing"

// E15 smoke: the full default fault matrix at a reduced size. The
// blast-radius property — healthy vehicles bit-identical to their
// standalone oracles with zero lost decisions while one tenant is killed,
// stalled, or shed — must hold on every parity-checked row.
func TestFleetAvailBlastRadiusZero(t *testing.T) {
	cfg := DefaultFleetAvailConfig()
	cfg.Vehicles = 4
	cfg.Archetypes = 2
	cfg.Procs = 4
	cfg.Updates = 8
	rows, err := RunFleetAvail(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Specs) {
		t.Fatalf("%d rows for %d specs", len(rows), len(cfg.Specs))
	}
	byName := make(map[string]FleetAvailRow, len(rows))
	for _, r := range rows {
		byName[r.Spec] = r
		if r.Offered != int64(cfg.Vehicles*cfg.Updates) {
			t.Errorf("%s: offered %d, want %d", r.Spec, r.Offered, cfg.Vehicles*cfg.Updates)
		}
		if r.Offered != r.Decided+r.Shed {
			t.Errorf("%s: %d offered != %d decided + %d shed", r.Spec, r.Offered, r.Decided, r.Shed)
		}
		if r.ParityChecked && !r.BlastRadiusOK {
			t.Errorf("%s: blast radius not zero: %d lost, %d mismatched (%s)",
				r.Spec, r.HealthyLost, r.HealthyMismatches, r.FirstMismatch)
		}
	}

	clean := byName["none"]
	if clean.Shed != 0 || clean.Crashes != 0 || clean.FaultsInjected != 0 {
		t.Errorf("clean row carries fault telemetry: %+v", clean)
	}
	if clean.Decided != clean.Offered {
		t.Errorf("clean row decided %d of %d offered", clean.Decided, clean.Offered)
	}
	if clean.CacheHits == 0 {
		t.Error("same-archetype vehicles shared no analysis through the fleet analyzer")
	}

	panicRow := byName["tenant-panic"]
	if panicRow.Crashes == 0 || panicRow.Restarts == 0 {
		t.Errorf("tenant-panic never crashed the worker: %+v", panicRow)
	}
	if panicRow.Parked != 0 {
		t.Errorf("tenant-panic parked the vehicle: %+v", panicRow)
	}

	admission := byName["admission-error"]
	if admission.Shed == 0 || admission.FaultedLost == 0 {
		t.Errorf("admission-error shed nothing on the faulted tenant: %+v", admission)
	}

	overload := byName["overload"]
	if overload.ParityChecked {
		t.Error("overload row must skip the parity check")
	}
	if overload.Shed == 0 {
		t.Errorf("overload shed nothing despite budget below offered concurrency: %+v", overload)
	}
}

// The per-vehicle stream seeds must actually decouple: two vehicles of
// the same archetype see different draws, and the legacy Changes stream
// is ChangesWithSeed at the spec seed.
func TestChangesWithSeedDecouplesStreams(t *testing.T) {
	f := GenFleet(DefaultFleetSpec(4))
	a := f.ChangesWithSeed(8, 7)
	b := f.ChangesWithSeed(8, 8)
	same := true
	for i := range a {
		au, bu := a[i].Update, b[i].Update
		if (au == nil) != (bu == nil) || (au != nil && bu != nil && au.Name != bu.Name) {
			same = false
			break
		}
		if au == nil && a[i].Remove != b[i].Remove {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct seeds produced identical 8-change streams")
	}
	legacy, reseeded := f.Changes(8), f.ChangesWithSeed(8, f.Spec.Seed)
	for i := range legacy {
		lu, ru := legacy[i].Update, reseeded[i].Update
		switch {
		case (lu == nil) != (ru == nil):
			t.Fatalf("change %d: kind diverges between Changes and ChangesWithSeed(spec seed)", i)
		case lu != nil && lu.Name != ru.Name:
			t.Fatalf("change %d: %q vs %q", i, lu.Name, ru.Name)
		case lu == nil && legacy[i].Remove != reseeded[i].Remove:
			t.Fatalf("change %d: remove %q vs %q", i, legacy[i].Remove, reseeded[i].Remove)
		}
	}
}
