package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mcc"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/rte"
	"repro/internal/security"
	"repro/internal/sim"
)

// FullStack wires the complete CCC loop of Fig. 1 in one object:
//
//	contracts → MCC integration → execution-domain deployment (RTE
//	components, capabilities, tasks) → monitor configuration → run →
//	metrics feedback → model refinement → reintegration.
//
// It exists so integration tests and the update_integration example can
// exercise the whole architecture rather than each package in isolation.
type FullStack struct {
	Sim  *sim.Simulator
	MCC  *mcc.MCC
	RTE  *rte.RTE
	Rep  *core.SelfRepresentation
	IDS  *security.IDS
	Devs []monitor.Deviation

	// budgets holds the per-task budget monitors of the active config.
	budgets map[string]*monitor.BudgetMonitor
	// execOverride lets tests inject actual execution-time behaviour per
	// function name (deviations from the contract).
	execOverride map[string]func() sim.Time

	deployGen int
}

// NewFullStack creates the stack for a platform.
func NewFullStack(p *model.Platform) (*FullStack, error) {
	m, err := mcc.New(p)
	if err != nil {
		return nil, err
	}
	s := sim.New()
	fs := &FullStack{
		Sim:          s,
		MCC:          m,
		RTE:          rte.New(s),
		Rep:          core.NewSelfRepresentation(),
		IDS:          security.NewIDS(),
		budgets:      make(map[string]*monitor.BudgetMonitor),
		execOverride: make(map[string]func() sim.Time),
	}
	for i := range p.Processors {
		pr := &p.Processors[i]
		if _, err := fs.RTE.AddProc(pr.Name, pr.SpeedFactor); err != nil {
			return nil, err
		}
		proc := fs.RTE.Proc(pr.Name)
		proc.OnCompletion(fs.onJob)
	}
	return fs, nil
}

// SetExecBehaviour overrides the actual execution time of a function's
// jobs (at reference speed). Used to inject model deviations.
func (fs *FullStack) SetExecBehaviour(function string, exec func() sim.Time) {
	fs.execOverride[function] = exec
}

// Deploy proposes the architecture to the MCC and, if accepted, applies
// the implementation model to the execution domain: components and
// services, capability grants derived from the modeled connections, tasks
// with the synthesized priorities, budget monitors from the monitor plan,
// and the IDS whitelist.
func (fs *FullStack) Deploy(fa *model.FunctionalArchitecture) (*mcc.Report, error) {
	rep := fs.MCC.ProposeArchitecture(fa)
	if !rep.Accepted {
		return rep, nil
	}
	if err := fs.apply(rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// apply tears down the previous execution-domain configuration and
// installs the new one. (A real system would migrate; for the experiments
// a clean re-install keeps the semantics obvious.)
func (fs *FullStack) apply(rep *mcc.Report) error {
	fs.deployGen++
	// The committed model, not rep.Impl: an incrementally accepted report
	// carries unmaterialized flat lists; DeployedImpl materializes them
	// (apply only runs on accepted reports, where the two are the same
	// model).
	impl := fs.MCC.DeployedImpl()

	// Fresh component/task namespace per generation would complicate
	// bookkeeping; instead remove all known tasks first.
	for _, pn := range fs.RTE.Procs() {
		proc := fs.RTE.Proc(pn)
		for _, tn := range proc.Tasks() {
			if err := proc.RemoveTask(tn); err != nil {
				return err
			}
		}
	}
	fs.budgets = make(map[string]*monitor.BudgetMonitor)

	// Components and services.
	for _, in := range impl.Tech.Instances {
		f := impl.Tech.Func.FunctionByName(in.Function)
		name := in.ID()
		if fs.RTE.Component(name) == nil {
			var provides []string
			if in.Replica == 0 {
				provides = f.Provides
			}
			if _, err := fs.RTE.AddComponent(name, in.Processor, provides); err != nil {
				return err
			}
		}
	}
	// Capability grants and sessions from the modeled connections; the
	// IDS learns the same whitelist ("the modeled connections are the
	// ground truth of permitted communication").
	for _, c := range impl.Connections {
		if err := fs.RTE.Grant(c.Client, c.Service); err != nil {
			return err
		}
		if _, err := fs.RTE.OpenSession(c.Client, c.Service); err != nil {
			return err
		}
		fs.IDS.Allow(c.Client, c.Service)
	}
	if fs.IDS.Learning() {
		fs.IDS.EndLearning()
	}

	// Tasks and their budget monitors.
	sink := func(d monitor.Deviation) {
		fs.Devs = append(fs.Devs, d)
		fs.Rep.Metrics().Record("deviations."+d.Kind, 1, d.At)
	}
	for _, t := range impl.Tasks {
		spec := rte.TaskSpec{
			Name:     t.Name,
			Priority: t.Priority,
			Period:   sim.Time(t.PeriodUS) * sim.Microsecond,
			WCET:     sim.Time(t.WCETUS) * sim.Microsecond,
			Deadline: sim.Time(t.DeadlineUS) * sim.Microsecond,
		}
		fnName := functionOfInstance(t.Name)
		if exec := fs.execOverride[fnName]; exec != nil {
			spec.Exec = exec
		}
		if err := fs.RTE.Proc(t.Processor).AddTask(spec); err != nil {
			return err
		}
	}
	for _, ms := range rep.FullMonitors() {
		if ms.Kind == mcc.MonitorBudget {
			fs.budgets[ms.Target] = monitor.NewBudgetMonitor(
				ms.Target, sim.Time(ms.WCETUS)*sim.Microsecond, sink)
		}
	}
	return nil
}

// onJob feeds every completed job through its budget monitor and records
// the execution-time metric; observed maxima flow back into the MCC.
func (fs *FullStack) onJob(j rte.JobRecord) {
	fs.Rep.Metrics().Record("exec."+j.Task, float64(j.Exec/sim.Microsecond), j.Finish)
	if bm := fs.budgets[j.Task]; bm != nil {
		bm.ObserveJob(j.Exec, j.Finish, j.Deadline)
		fs.MCC.RecordObservedWCET(functionOfInstance(j.Task), int64(bm.ObservedMax/sim.Microsecond))
	}
}

// Run advances the execution domain by d virtual time.
func (fs *FullStack) Run(d sim.Time) error { return fs.Sim.RunFor(d) }

// Refine performs the model-refinement step of the loop: reintegrate with
// the observed execution-time maxima; on acceptance the evolved
// configuration is redeployed to the execution domain.
func (fs *FullStack) Refine() (*mcc.Report, error) {
	rep := fs.MCC.ReintegrateWithObservations()
	if !rep.Accepted {
		return rep, nil
	}
	if err := fs.apply(rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// WCETViolations counts wcet-exceeded deviations observed so far.
func (fs *FullStack) WCETViolations() int {
	n := 0
	for _, d := range fs.Devs {
		if d.Kind == "wcet-exceeded" {
			n++
		}
	}
	return n
}

// functionOfInstance strips the "#replica" suffix of an instance ID.
func functionOfInstance(id string) string {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '#' {
			return id[:i]
		}
	}
	return id
}

// String summarizes the stack state.
func (fs *FullStack) String() string {
	return fmt.Sprintf("fullstack{gen %d, %d components, %d deviations}",
		fs.deployGen, len(fs.RTE.Components()), len(fs.Devs))
}
