package scenario

import (
	"fmt"

	"repro/internal/routing"
)

// RoutingConfig parameterizes E8.
type RoutingConfig struct {
	// PassRisk is the degradation probability on the alpine pass.
	PassRisk float64
	// Weights is the risk-weight sweep.
	Weights []float64
}

// DefaultRoutingConfig returns a shoulder-season pass risk where the
// planner's choice genuinely depends on its degradation aversion.
func DefaultRoutingConfig() RoutingConfig {
	return RoutingConfig{
		PassRisk: 0.05,
		Weights:  []float64{0, 0.5, 1, 2, 4, 8},
	}
}

// RoutingRow is one sweep point of E8.
type RoutingRow struct {
	Weight               float64
	Via                  string
	TimeH                float64
	ExpectedDegradations float64
}

// RoutingResult is the E8 outcome.
type RoutingResult struct {
	Config    RoutingConfig
	RowsData  []RoutingRow
	Crossover float64 // -1 when the choice never flips
}

// Rows renders the E8 table.
func (r RoutingResult) Rows() []string {
	out := []string{fmt.Sprintf("pass degradation risk = %.2f", r.Config.PassRisk)}
	for _, row := range r.RowsData {
		out = append(out, fmt.Sprintf("weight %.2f: via %-6s time %.2fh expected degradations %.3f",
			row.Weight, row.Via, row.TimeH, row.ExpectedDegradations))
	}
	if r.Crossover >= 0 {
		out = append(out, fmt.Sprintf("crossover weight: %.3f", r.Crossover))
	} else {
		out = append(out, "crossover: none (one route dominates)")
	}
	return out
}

// RunRouting executes E8: sweep the degradation-aversion weight over the
// alpine scenario and locate the crossover.
func RunRouting(cfg RoutingConfig) (RoutingResult, error) {
	res := RoutingResult{Config: cfg}
	n := routing.AlpineScenario(cfg.PassRisk)
	for _, w := range cfg.Weights {
		route, err := n.Plan("start", "goal", w)
		if err != nil {
			return res, err
		}
		via := "?"
		if len(route.Nodes) >= 2 {
			via = route.Nodes[1]
		}
		res.RowsData = append(res.RowsData, RoutingRow{
			Weight: w, Via: via, TimeH: route.TimeH,
			ExpectedDegradations: route.ExpectedDegradations,
		})
	}
	cw, err := n.CrossoverWeight("start", "goal", 16)
	if err != nil {
		return res, err
	}
	res.Crossover = cw
	return res, nil
}
