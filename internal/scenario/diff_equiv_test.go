package scenario

import (
	"fmt"
	"testing"

	"repro/internal/mcc"
	"repro/internal/mcc/pipeline"
	"repro/internal/model"
)

// Equivalence harness for the change-driven diff: pipeline.DiffFromChange
// must be observably identical to the clone-based oracle
// pipeline.ComputeDiff(deployed, applyChange(deployed, c)) for every
// single-function change, because the MCC's fast path feeds the former to
// the same incremental stages that were built against the latter. The
// corpus sweeps the genfleet parity seeds (platform sizes, chain depths,
// change mixes); the fuzz target explores further seeds locally. On top
// of each generated stream, every step also probes the three edge arms a
// generated mix rarely hits: a no-op update (candidate equal to the
// deployed function), a removal of an unknown function, and a removal of
// a flow endpoint (the only single-function change that alters the flow
// set).

// eqNames compares two diff name lists treating nil and empty as equal.
func eqNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkDiffEquivalence computes both diffs of one change against the
// deployed architecture and fails on any observable divergence. It
// returns the candidate so callers can evolve the stream. The lookups
// feeding DiffFromChange — the committed function and the flow-touch
// test — are derived fresh from the deployed architecture, exactly the
// facts the MCC's committed indexes hand the production fast path.
func checkDiffEquivalence(t *testing.T, deployed *model.FunctionalArchitecture, c mcc.Change) *model.FunctionalArchitecture {
	t.Helper()
	name := c.Remove
	if c.Update != nil {
		name = c.Update.Name
	}
	var old *model.Function
	for i := range deployed.Functions {
		if deployed.Functions[i].Name == name {
			old = &deployed.Functions[i]
			break
		}
	}
	flowTouched := false
	for _, fl := range deployed.Flows {
		if fl.From == name || fl.To == name {
			flowTouched = true
			break
		}
	}

	var cand *model.FunctionalArchitecture
	if c.Update != nil {
		cand = deployed.WithFunction(*c.Update)
	} else {
		cand = deployed.WithoutFunction(name)
	}
	want := pipeline.ComputeDiff(deployed, cand)
	got := pipeline.DiffFromChange(name, c.Update, old, flowTouched)

	// Compare every observable the stages consume: the sorted name
	// lists, the flow flag, and the predicate methods.
	switch {
	case !eqNames(got.Added, want.Added):
		t.Fatalf("change %v: Added = %v, oracle %v", c, got.Added, want.Added)
	case !eqNames(got.Removed, want.Removed):
		t.Fatalf("change %v: Removed = %v, oracle %v", c, got.Removed, want.Removed)
	case !eqNames(got.Changed, want.Changed):
		t.Fatalf("change %v: Changed = %v, oracle %v", c, got.Changed, want.Changed)
	case got.FlowsChanged != want.FlowsChanged:
		t.Fatalf("change %v: FlowsChanged = %v, oracle %v", c, got.FlowsChanged, want.FlowsChanged)
	case got.Full() != want.Full():
		t.Fatalf("change %v: Full = %v, oracle %v", c, got.Full(), want.Full())
	case got.Empty() != want.Empty():
		t.Fatalf("change %v: Empty = %v, oracle %v", c, got.Empty(), want.Empty())
	case got.TouchedCount() != want.TouchedCount():
		t.Fatalf("change %v: TouchedCount = %d, oracle %d", c, got.TouchedCount(), want.TouchedCount())
	case got.Touched(name) != want.Touched(name):
		t.Fatalf("change %v: Touched(%s) = %v, oracle %v", c, name, got.Touched(name), want.Touched(name))
	}
	return cand
}

func runDiffEquivalenceCase(t *testing.T, seed uint64) {
	t.Helper()
	fleet := GenFleet(paritySpec(seed))
	deployed := fleet.Baseline
	for i, c := range fleet.Changes(32) {
		if n := len(deployed.Functions); n > 0 {
			same := deployed.Functions[i%n]
			checkDiffEquivalence(t, deployed, mcc.Change{Update: &same})
		}
		checkDiffEquivalence(t, deployed, mcc.Change{Remove: "no-such-fn"})
		if len(deployed.Flows) > 0 {
			checkDiffEquivalence(t, deployed, mcc.Change{Remove: deployed.Flows[i%len(deployed.Flows)].From})
		}
		deployed = checkDiffEquivalence(t, deployed, c)
	}
}

func TestDiffFromChangeEquivalence(t *testing.T) {
	for _, seed := range parityCorpus {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDiffEquivalenceCase(t, seed)
		})
	}
}

func FuzzDiffFromChange(f *testing.F) {
	for _, seed := range parityCorpus {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		runDiffEquivalenceCase(t, seed)
	})
}
