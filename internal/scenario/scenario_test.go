package scenario

import (
	"testing"

	"repro/internal/mcc"
	"repro/internal/sensors"
	"repro/internal/skills"
)

// ---- E4 -------------------------------------------------------------

func TestE4NominalRunStaysFull(t *testing.T) {
	cfg := DefaultACCConfig()
	cfg.FaultAtS = 0 // no fault
	cfg.DurationS = 60
	r, err := RunACC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Collision {
		t.Fatal("collision in nominal run")
	}
	if r.FinalRootBand != skills.Full {
		t.Fatalf("nominal root band = %v", r.FinalRootBand)
	}
	if r.TacticFired {
		t.Fatal("tactic fired without fault")
	}
	if r.MinGap < 10 {
		t.Fatalf("min gap %.1f too small in nominal run", r.MinGap)
	}
}

func TestE4NoisyFaultDetectedAndDegraded(t *testing.T) {
	r, err := RunACC(DefaultACCConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Collision {
		t.Fatal("collision despite graceful degradation")
	}
	if r.DetectionS < 0 {
		t.Fatal("fault never detected")
	}
	if r.DetectionS > 10 {
		t.Fatalf("detection took %.1fs", r.DetectionS)
	}
	if !r.TacticFired {
		t.Fatal("degradation tactic did not fire")
	}
	if r.SpeedCap <= 0 || r.SpeedCap >= r.Config.SetSpeed {
		t.Fatalf("speed cap = %.1f", r.SpeedCap)
	}
	if r.FinalRootBand == skills.Full {
		t.Fatal("root still Full under active fault")
	}
	if len(r.Rows()) == 0 {
		t.Fatal("no table rows")
	}
}

func TestE4DropoutFault(t *testing.T) {
	cfg := DefaultACCConfig()
	cfg.Fault = sensors.FaultDropout
	cfg.FaultMagnitude = 0.7
	r, err := RunACC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.DetectionS < 0 {
		t.Fatal("dropout never detected")
	}
	if r.Collision {
		t.Fatal("collision under dropout")
	}
}

// ---- E5 -------------------------------------------------------------

func TestE5CrossLayerKeepsDriving(t *testing.T) {
	r, err := RunIntrusion(DefaultIntrusionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Detected {
		t.Fatal("intrusion not detected")
	}
	if !r.DrivingContinues {
		t.Fatal("cross-layer response stopped the vehicle")
	}
	if r.FunctionalityRetained <= 0.3 {
		t.Fatalf("functionality = %.2f", r.FunctionalityRetained)
	}
	if r.SpeedCap <= 0 || r.SpeedCap >= r.Config.CruiseSpeed {
		t.Fatalf("speed cap = %.1f", r.SpeedCap)
	}
	// Safe margin: can stop within the demanded 40 m.
	if r.StoppingDistanceM > 40.5 {
		t.Fatalf("stopping distance %.1f m exceeds demanded 40 m", r.StoppingDistanceM)
	}
	if r.Conflicts != 0 {
		t.Fatalf("coordinated run had %d conflicts", r.Conflicts)
	}
}

func TestE5SafetyOnlyLosesFunction(t *testing.T) {
	cfg := DefaultIntrusionConfig()
	cfg.Strategy = StrategySafetyOnly
	r, err := RunIntrusion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.DrivingContinues {
		t.Fatal("safety-only kept driving without redundancy")
	}
	if !r.Resolution.SafeState {
		t.Fatal("safety-only response not safe")
	}
	if r.FunctionalityRetained > 0.1 {
		t.Fatalf("functionality = %.2f", r.FunctionalityRetained)
	}
}

func TestE5ObjectiveStop(t *testing.T) {
	cfg := DefaultIntrusionConfig()
	cfg.Strategy = StrategyObjectiveStop
	r, err := RunIntrusion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.DrivingContinues {
		t.Fatal("objective-stop kept driving")
	}
	if !r.Resolution.SafeState {
		t.Fatal("objective stop not safe")
	}
}

func TestE5UncoordinatedConflicts(t *testing.T) {
	cfg := DefaultIntrusionConfig()
	cfg.Strategy = StrategyUncoordinated
	r, err := RunIntrusion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Conflicts == 0 {
		t.Fatal("uncoordinated run produced no conflicts")
	}
}

func TestE5ComparisonOrdering(t *testing.T) {
	rs, err := RunIntrusionComparison()
	if err != nil {
		t.Fatal(err)
	}
	byStrategy := map[IntrusionStrategy]IntrusionResult{}
	for _, r := range rs {
		byStrategy[r.Config.Strategy] = r
	}
	// The paper's point: cross-layer retains strictly more functionality
	// than both single-layer strategies, all while staying safe.
	cl := byStrategy[StrategyCrossLayer]
	so := byStrategy[StrategySafetyOnly]
	os := byStrategy[StrategyObjectiveStop]
	if !(cl.FunctionalityRetained > so.FunctionalityRetained) {
		t.Fatalf("cross-layer %.2f <= safety-only %.2f", cl.FunctionalityRetained, so.FunctionalityRetained)
	}
	if !(cl.FunctionalityRetained > os.FunctionalityRetained) {
		t.Fatalf("cross-layer %.2f <= objective-stop %.2f", cl.FunctionalityRetained, os.FunctionalityRetained)
	}
	if !cl.Resolution.SafeState || !so.Resolution.SafeState || !os.Resolution.SafeState {
		t.Fatal("a coordinated strategy ended unsafe")
	}
}

// ---- E6 -------------------------------------------------------------

func TestE6PolicyOrdering(t *testing.T) {
	rs, err := RunThermalComparison()
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[ThermalPolicy]ThermalResult{}
	for _, r := range rs {
		byPolicy[r.Config.Policy] = r
	}
	none := byPolicy[PolicyNone]
	dvfs := byPolicy[PolicyDVFS]
	cross := byPolicy[PolicyCrossLayer]
	// Expected shape on total miss rate: cross <= dvfs <= none, with the
	// unaware baseline clearly bad and cross-layer clearly good.
	if !(cross.TotalMissRate() <= dvfs.TotalMissRate()) {
		t.Fatalf("cross %.3f > dvfs %.3f", cross.TotalMissRate(), dvfs.TotalMissRate())
	}
	if !(dvfs.TotalMissRate() <= none.TotalMissRate()) {
		t.Fatalf("dvfs %.3f > none %.3f", dvfs.TotalMissRate(), none.TotalMissRate())
	}
	if none.TotalMissRate() < 0.05 {
		t.Fatalf("unaware baseline missed only %.3f; heat wave too mild", none.TotalMissRate())
	}
	if cross.TotalMissRate() > 0.02 {
		t.Fatalf("cross-layer still misses %.3f overall", cross.TotalMissRate())
	}
	// The critical task: the unaware baseline misses it; both aware
	// policies protect it.
	if none.MissRate() < 0.01 {
		t.Fatalf("unaware baseline protected the critical task (%.3f)", none.MissRate())
	}
	if cross.MissRate() > 0.01 || dvfs.MissRate() > 0.05 {
		t.Fatalf("aware policies missed the critical task: cross %.3f dvfs %.3f", cross.MissRate(), dvfs.MissRate())
	}
	// Only the unaware baseline spends time above the damage threshold.
	if none.TimeAboveCriticalS == 0 {
		t.Fatal("unaware baseline never reached the damage threshold")
	}
	if dvfs.TimeAboveCriticalS > 0 || cross.TimeAboveCriticalS > 0 {
		t.Fatalf("aware policies overheated: dvfs %.1fs cross %.1fs", dvfs.TimeAboveCriticalS, cross.TimeAboveCriticalS)
	}
	// DVFS keeps the chip cooler than no awareness.
	if dvfs.PeakTempC >= none.PeakTempC {
		t.Fatalf("dvfs peak %.1f >= none peak %.1f", dvfs.PeakTempC, none.PeakTempC)
	}
	// Cross-layer actually shed load.
	if !cross.ShedQMTask {
		t.Fatal("cross-layer did not shed the QM task")
	}
	if len(cross.Rows()) == 0 {
		t.Fatal("no rows")
	}
}

// ---- E7 -------------------------------------------------------------

func TestE7ByzantineToleratedAndEjected(t *testing.T) {
	r, err := RunPlatoon(DefaultPlatoonConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Agreement stays within the honest proposal spread.
	if r.MaxAgreementError > 0.5 {
		t.Fatalf("agreement error %.2f", r.MaxAgreementError)
	}
	if r.ByzantineEjectedRound < 0 {
		t.Fatal("byzantine member never identified")
	}
	if r.ByzantineEjectedRound > 10 {
		t.Fatalf("identification took %d rounds", r.ByzantineEjectedRound)
	}
	if r.HonestMinTrust < 0.9 {
		t.Fatalf("honest trust eroded to %.2f", r.HonestMinTrust)
	}
	// Fog: platoon membership beats solo crawling.
	if r.PlatoonSpeed <= r.SoloSpeed {
		t.Fatalf("platoon %.1f <= solo %.1f", r.PlatoonSpeed, r.SoloSpeed)
	}
	if len(r.Rows()) == 0 {
		t.Fatal("no rows")
	}
}

func TestE7MoreByzantineStillValid(t *testing.T) {
	cfg := DefaultPlatoonConfig()
	cfg.Honest = 7
	cfg.Byzantine = 2
	r, err := RunPlatoon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxAgreementError > 0.5 {
		t.Fatalf("agreement error %.2f with 2 byzantine", r.MaxAgreementError)
	}
}

// ---- E8 -------------------------------------------------------------

func TestE8CrossoverShape(t *testing.T) {
	r, err := RunRouting(DefaultRoutingConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RowsData) != len(DefaultRoutingConfig().Weights) {
		t.Fatalf("rows = %d", len(r.RowsData))
	}
	// Weight 0 goes over the pass; the largest weight takes the valley.
	if r.RowsData[0].Via != "pass" {
		t.Fatalf("risk-neutral via %s", r.RowsData[0].Via)
	}
	last := r.RowsData[len(r.RowsData)-1]
	if last.Via != "valley" {
		t.Fatalf("risk-averse via %s", last.Via)
	}
	if r.Crossover <= 0 {
		t.Fatalf("crossover = %v", r.Crossover)
	}
	// Expected degradations fall when switching to the valley.
	if last.ExpectedDegradations >= r.RowsData[0].ExpectedDegradations {
		t.Fatal("valley not safer than pass")
	}
}

// ---- E3 -------------------------------------------------------------

func TestE3StreamShape(t *testing.T) {
	r, err := RunMCCStream(DefaultMCCStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Accepted == 0 || r.Rejected == 0 {
		t.Fatalf("accepted=%d rejected=%d; stream should mix", r.Accepted, r.Rejected)
	}
	if r.Accepted+r.Rejected != r.Config.Updates {
		t.Fatal("counts do not add up")
	}
	// Known-infeasible generators must be rejected at the right stages.
	if r.RejectedByStage[mcc.StageValidate] == 0 {
		t.Fatal("no contract-validation rejections")
	}
	if r.RejectedByStage[mcc.StageMapping] == 0 {
		t.Fatal("no mapping rejections")
	}
	if r.FinalTasks == 0 || r.FinalMonitors == 0 {
		t.Fatalf("final config empty: %d tasks, %d monitors", r.FinalTasks, r.FinalMonitors)
	}
	if r.WorstWCRTUS <= 0 {
		t.Fatal("no WCRT recorded")
	}
	if len(r.Rows()) == 0 {
		t.Fatal("no rows")
	}
}

// ---- E9 -------------------------------------------------------------

func TestE9OverheadSmall(t *testing.T) {
	r, err := RunMonitorOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs == 0 {
		t.Fatal("no supervised jobs")
	}
	// "with very little interference": overhead bounded by 5%.
	if r.OverheadPct > 5 {
		t.Fatalf("monitoring overhead %.2f%%", r.OverheadPct)
	}
	if r.OverheadPct < 0 {
		t.Fatalf("negative overhead %.2f%%", r.OverheadPct)
	}
	if len(r.Rows()) == 0 {
		t.Fatal("no rows")
	}
}

// ---- E10 ------------------------------------------------------------

func TestE10AutomatedBeatsManual(t *testing.T) {
	r, err := RunDependencyAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RowsData) == 0 {
		t.Fatal("no rows")
	}
	anyMissed := false
	for _, row := range r.RowsData {
		if row.Automated < row.Manual {
			t.Fatalf("automated %d < manual %d for %s", row.Automated, row.Manual, row.Source)
		}
		if row.MissedPct > 0 {
			anyMissed = true
		}
	}
	if !anyMissed {
		t.Fatal("manual baseline missed nothing; graph too shallow")
	}
	if r.ChainsToObjective == 0 {
		t.Fatal("no effect chains to the objective layer")
	}
	if len(r.CommonCauses) == 0 {
		t.Fatal("no common causes found")
	}
}

// ---- determinism ------------------------------------------------------

func TestScenariosDeterministic(t *testing.T) {
	a, err := RunACC(DefaultACCConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunACC(DefaultACCConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.DetectionS != b.DetectionS || a.MinGap != b.MinGap || a.FinalRootLevel != b.FinalRootLevel {
		t.Fatalf("E4 not deterministic: %+v vs %+v", a, b)
	}
	p1, err := RunPlatoon(DefaultPlatoonConfig())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := RunPlatoon(DefaultPlatoonConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p1.MaxAgreementError != p2.MaxAgreementError {
		t.Fatal("E7 not deterministic")
	}
}

func TestRunMCCThroughput(t *testing.T) {
	// Every integration strategy — serial baseline, timing-incremental
	// parallel, batched, full-incremental, and stream-parallel — may only
	// differ in cost, never in which changes the fleet accepts.
	var results []MCCThroughputResult
	for _, mode := range ThroughputModes() {
		cfg := DefaultMCCThroughputConfig()
		cfg.Mode = mode
		r, err := RunMCCThroughput(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if r.Accepted+r.Rejected != cfg.Updates {
			t.Fatalf("%s: decided %d of %d changes", mode, r.Accepted+r.Rejected, cfg.Updates)
		}
		if r.Rejected == 0 {
			t.Fatalf("%s: stream contains malformed contracts, expected rejections", mode)
		}
		// Per-stage wall-clock telemetry must be visible for every mode.
		if len(r.StageWall) == 0 {
			t.Fatalf("%s: no per-stage telemetry recorded", mode)
		}
		if _, ok := r.StageWall[mcc.StageTiming]; !ok {
			t.Fatalf("%s: timing stage missing from telemetry: %v", mode, r.StageWall)
		}
		results = append(results, r)
	}
	base := results[0]
	for _, r := range results[1:] {
		if r.Accepted != base.Accepted || r.Rejected != base.Rejected || r.FinalTasks != base.FinalTasks {
			t.Fatalf("modes disagree: %s %d/%d/%d vs %s %d/%d/%d",
				base.Config.Mode, base.Accepted, base.Rejected, base.FinalTasks,
				r.Config.Mode, r.Accepted, r.Rejected, r.FinalTasks)
		}
	}
	serial, batched, full, stream := results[0], results[2], results[3], results[4]
	if serial.Evaluations != serial.Config.Updates {
		t.Fatalf("serial mode ran %d evaluations for %d changes", serial.Evaluations, serial.Config.Updates)
	}
	if batched.Evaluations*2 >= serial.Evaluations {
		t.Fatalf("batching saved too little: %d vs %d evaluations", batched.Evaluations, serial.Evaluations)
	}
	if full.Evaluations != full.Config.Updates {
		t.Fatalf("full-incremental mode ran %d evaluations for %d changes", full.Evaluations, full.Config.Updates)
	}

	// The serial baseline scans every loaded resource per proposal; the
	// diff-proportional job construction of the incremental engine must
	// rebuild only the dirty few and splice the rest from the deployed
	// cache without any TasksOn/MessagesOn scan.
	if serial.TimingScans < serial.TimingResources {
		t.Fatalf("serial mode spliced timing jobs: %d scans < %d resources", serial.TimingScans, serial.TimingResources)
	}
	for _, r := range []MCCThroughputResult{full, stream} {
		if r.TimingScans*4 > r.TimingResources {
			t.Fatalf("%s: timing-job construction not diff-proportional: %d scans for %d resources",
				r.Config.Mode, r.TimingScans, r.TimingResources)
		}
	}

	// The stream scheduler must decide the whole stream through verified
	// optimistic windows on E12 (no timing rejections => no replays), with
	// exactly one pipeline pass per change, and its deferred analyses must
	// come back as memo hits during verification.
	if stream.Evaluations != stream.Config.Updates {
		t.Fatalf("stream-parallel ran %d evaluations for %d changes", stream.Evaluations, stream.Config.Updates)
	}
	if stream.Stream.Replays != 0 || stream.Stream.Speculated != stream.Config.Updates {
		t.Fatalf("stream-parallel scheduler stats = %+v, want all %d changes speculated with no replays",
			stream.Stream, stream.Config.Updates)
	}
	if stream.Stream.Prefetched == 0 || stream.CacheHits < int64(stream.Stream.Prefetched) {
		t.Fatalf("stream-parallel prefetched %d analyses but saw only %d cache hits",
			stream.Stream.Prefetched, stream.CacheHits)
	}
}

func TestE12ThroughputDeterministic(t *testing.T) {
	cfg := DefaultMCCThroughputConfig()
	a, err := RunMCCThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMCCThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accepted != b.Accepted || a.Rejected != b.Rejected ||
		a.Evaluations != b.Evaluations || a.FinalTasks != b.FinalTasks {
		t.Fatalf("throughput scenario nondeterministic: %+v vs %+v", a, b)
	}
}
