// Package sensors simulates the environmental and vehicle sensors whose
// data-quality assessment Section IV calls for: "these self-diagnostic
// capabilities need to be extended towards the data quality assessment for
// environmental sensors (e.g. cameras, LiDAR-, RADAR-sensors)".
//
// Each sensor produces noisy measurements of ground truth, supports fault
// injection (dropout, bias, freeze, noise inflation), and — crucially —
// carries a *self-assessment*: a quality estimate in [0,1] derived from
// internal indicators, which feeds the corresponding data-source node of
// the ability graph. A plain heartbeat check (the SAFER baseline) only
// notices total dropout; the quality signal also exposes silent
// degradation.
package sensors

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// FaultKind enumerates injectable sensor faults.
type FaultKind int

// Fault kinds.
const (
	// FaultNone: nominal operation.
	FaultNone FaultKind = iota
	// FaultDropout: measurements are lost with the configured probability.
	FaultDropout
	// FaultBias: a constant offset corrupts the measurement.
	FaultBias
	// FaultFreeze: the sensor repeats its last measurement.
	FaultFreeze
	// FaultNoisy: measurement noise is inflated by the magnitude factor.
	FaultNoisy
)

var faultNames = [...]string{"none", "dropout", "bias", "freeze", "noisy"}

func (k FaultKind) String() string {
	if k < 0 || int(k) >= len(faultNames) {
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
	return faultNames[k]
}

// RangeMeasurement is one object-sensor reading.
type RangeMeasurement struct {
	// Gap is the measured distance to the lead object (m).
	Gap float64
	// RelSpeed is the measured relative speed (lead - ego, m/s).
	RelSpeed float64
	// At is the measurement time.
	At sim.Time
}

// ObjectSensor is a radar-like range sensor measuring gap and relative
// speed to a lead object.
type ObjectSensor struct {
	rng *sim.RNG

	// NoiseGapM and NoiseRelMS are the nominal 1-sigma noises.
	NoiseGapM  float64
	NoiseRelMS float64

	fault     FaultKind
	magnitude float64

	haveLast bool
	last     RangeMeasurement

	// Self-assessment bookkeeping.
	attempts int
	drops    int
}

// NewObjectSensor creates a sensor with the given deterministic RNG.
func NewObjectSensor(rng *sim.RNG) *ObjectSensor {
	return &ObjectSensor{rng: rng, NoiseGapM: 0.3, NoiseRelMS: 0.2}
}

// InjectFault sets the active fault. magnitude means: dropout probability
// for FaultDropout, offset in metres for FaultBias, noise multiplier for
// FaultNoisy; it is ignored for FaultFreeze/FaultNone.
func (s *ObjectSensor) InjectFault(k FaultKind, magnitude float64) {
	s.fault = k
	s.magnitude = magnitude
}

// Fault returns the active fault kind.
func (s *ObjectSensor) Fault() FaultKind { return s.fault }

// Measure produces a reading of the true gap and relative speed. ok is
// false when the measurement is lost (dropout).
func (s *ObjectSensor) Measure(trueGap, trueRel float64, now sim.Time) (m RangeMeasurement, ok bool) {
	s.attempts++
	switch s.fault {
	case FaultDropout:
		if s.rng.Bool(s.magnitude) {
			s.drops++
			return RangeMeasurement{}, false
		}
	case FaultFreeze:
		if s.haveLast {
			frozen := s.last
			frozen.At = now
			return frozen, true
		}
	}
	noiseScale := 1.0
	if s.fault == FaultNoisy && s.magnitude > 1 {
		noiseScale = s.magnitude
	}
	m = RangeMeasurement{
		Gap:      trueGap + s.rng.Norm(0, s.NoiseGapM*noiseScale),
		RelSpeed: trueRel + s.rng.Norm(0, s.NoiseRelMS*noiseScale),
		At:       now,
	}
	if s.fault == FaultBias {
		m.Gap += s.magnitude
	}
	s.haveLast = true
	s.last = m
	return m, true
}

// Quality is the sensor's self-assessment in [0,1], derived from internal
// indicators: observed drop rate and the noise level relative to nominal.
// A frozen or biased sensor cannot see its own fault through these
// indicators (quality stays high) — that blindness is what plausibility
// cross-checks (below) exist for.
func (s *ObjectSensor) Quality() float64 {
	q := 1.0
	if s.attempts > 0 {
		q *= 1 - float64(s.drops)/float64(s.attempts)
	}
	if s.fault == FaultNoisy && s.magnitude > 1 {
		q /= s.magnitude
	}
	if s.fault == FaultDropout {
		// The dropout rate itself is the indicator; blend in the
		// configured probability for fast detection on few samples.
		q = math.Min(q, 1-s.magnitude)
	}
	return clamp01(q)
}

// PlausibilityChecker cross-checks consecutive range measurements against
// physical limits — the mechanism that catches freeze and bias faults that
// self-assessment alone misses (Section IV contrasts this with the
// boundary checks of RACE [16]).
type PlausibilityChecker struct {
	// MaxGapRate is the largest physically plausible gap change rate
	// (m/s), i.e. |dGap/dt| bound.
	MaxGapRate float64
	// MaxGap is the sensor's specified range (m).
	MaxGap float64

	havePrev bool
	prev     RangeMeasurement

	// Violations counts implausible transitions; Checks counts all.
	Violations int
	Checks     int
	// consecutiveStatic counts identical consecutive readings (freeze
	// indicator).
	consecutiveStatic int
}

// NewPlausibilityChecker returns a checker with the given physical bounds.
func NewPlausibilityChecker(maxGapRate, maxGap float64) *PlausibilityChecker {
	return &PlausibilityChecker{MaxGapRate: maxGapRate, MaxGap: maxGap}
}

// Check examines one measurement; false means implausible.
func (c *PlausibilityChecker) Check(m RangeMeasurement) bool {
	c.Checks++
	ok := true
	if m.Gap < 0 || m.Gap > c.MaxGap {
		ok = false
	}
	if c.havePrev {
		dt := (m.At - c.prev.At).Seconds()
		if dt > 0 {
			rate := math.Abs(m.Gap-c.prev.Gap) / dt
			if rate > c.MaxGapRate {
				ok = false
			}
			// Freeze detection: gap must evolve roughly with relative
			// speed; a perfectly static reading while relative speed is
			// large is implausible.
			if m.Gap == c.prev.Gap && m.RelSpeed == c.prev.RelSpeed {
				c.consecutiveStatic++
				if c.consecutiveStatic >= 5 && math.Abs(m.RelSpeed) > 0.5 {
					ok = false
				}
			} else {
				c.consecutiveStatic = 0
			}
		}
	}
	c.havePrev = true
	c.prev = m
	if !ok {
		c.Violations++
	}
	return ok
}

// TrustScore returns 1 - violation rate, the checker's contribution to the
// data-source health.
func (c *PlausibilityChecker) TrustScore() float64 {
	if c.Checks == 0 {
		return 1
	}
	return clamp01(1 - float64(c.Violations)/float64(c.Checks))
}

// WheelSpeedSensor measures ego speed with multiplicative noise.
type WheelSpeedSensor struct {
	rng *sim.RNG
	// NoiseFrac is the 1-sigma relative error.
	NoiseFrac float64
	fault     FaultKind
	magnitude float64
}

// NewWheelSpeedSensor creates a wheel-speed sensor.
func NewWheelSpeedSensor(rng *sim.RNG) *WheelSpeedSensor {
	return &WheelSpeedSensor{rng: rng, NoiseFrac: 0.01}
}

// InjectFault sets the active fault (FaultBias offset in m/s, FaultNoisy
// multiplier).
func (s *WheelSpeedSensor) InjectFault(k FaultKind, magnitude float64) {
	s.fault = k
	s.magnitude = magnitude
}

// Measure returns the measured speed.
func (s *WheelSpeedSensor) Measure(trueSpeed float64) float64 {
	scale := 1.0
	if s.fault == FaultNoisy && s.magnitude > 1 {
		scale = s.magnitude
	}
	v := trueSpeed * (1 + s.rng.Norm(0, s.NoiseFrac*scale))
	if s.fault == FaultBias {
		v += s.magnitude
	}
	if v < 0 {
		v = 0
	}
	return v
}

// TemperatureSensor reads a temperature source with additive noise.
type TemperatureSensor struct {
	rng *sim.RNG
	// NoiseC is the 1-sigma error in °C.
	NoiseC float64
}

// NewTemperatureSensor creates a temperature sensor.
func NewTemperatureSensor(rng *sim.RNG) *TemperatureSensor {
	return &TemperatureSensor{rng: rng, NoiseC: 0.5}
}

// Measure returns the measured temperature for a true value.
func (s *TemperatureSensor) Measure(trueC float64) float64 {
	return trueC + s.rng.Norm(0, s.NoiseC)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
