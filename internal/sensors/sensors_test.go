package sensors

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestNominalMeasurementNearTruth(t *testing.T) {
	s := NewObjectSensor(sim.NewRNG(1))
	var sumGap, sumRel float64
	const n = 2000
	for i := 0; i < n; i++ {
		m, ok := s.Measure(50, -3, sim.Time(i))
		if !ok {
			t.Fatal("nominal dropout")
		}
		sumGap += m.Gap
		sumRel += m.RelSpeed
	}
	if math.Abs(sumGap/n-50) > 0.1 {
		t.Fatalf("mean gap = %v", sumGap/n)
	}
	if math.Abs(sumRel/n+3) > 0.1 {
		t.Fatalf("mean rel = %v", sumRel/n)
	}
	if q := s.Quality(); q < 0.99 {
		t.Fatalf("nominal quality = %v", q)
	}
}

func TestDropoutFault(t *testing.T) {
	s := NewObjectSensor(sim.NewRNG(2))
	s.InjectFault(FaultDropout, 0.5)
	drops := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if _, ok := s.Measure(50, 0, sim.Time(i)); !ok {
			drops++
		}
	}
	if drops < 400 || drops > 600 {
		t.Fatalf("drops = %d, want ~500", drops)
	}
	if q := s.Quality(); q > 0.6 {
		t.Fatalf("dropout quality = %v, want <= 0.5ish", q)
	}
}

func TestBiasFaultInvisibleToSelfAssessment(t *testing.T) {
	s := NewObjectSensor(sim.NewRNG(3))
	s.InjectFault(FaultBias, 10)
	m, ok := s.Measure(50, 0, 0)
	if !ok {
		t.Fatal("bias dropout")
	}
	if m.Gap < 58 || m.Gap > 62 {
		t.Fatalf("biased gap = %v, want ~60", m.Gap)
	}
	// Self-assessment is blind to bias — this is by design; the
	// plausibility checker catches it.
	if q := s.Quality(); q < 0.99 {
		t.Fatalf("bias quality = %v, want ~1 (blind)", q)
	}
}

func TestFreezeFault(t *testing.T) {
	s := NewObjectSensor(sim.NewRNG(4))
	m0, _ := s.Measure(50, -5, 0)
	s.InjectFault(FaultFreeze, 0)
	m1, ok := s.Measure(40, -5, sim.Second)
	if !ok {
		t.Fatal("freeze dropout")
	}
	if m1.Gap != m0.Gap || m1.RelSpeed != m0.RelSpeed {
		t.Fatalf("frozen measurement changed: %v vs %v", m1, m0)
	}
	if m1.At != sim.Second {
		t.Fatal("frozen timestamp not updated")
	}
}

func TestNoisyFaultDegradesQuality(t *testing.T) {
	s := NewObjectSensor(sim.NewRNG(5))
	s.InjectFault(FaultNoisy, 5)
	if q := s.Quality(); math.Abs(q-0.2) > 1e-9 {
		t.Fatalf("noisy quality = %v, want 0.2", q)
	}
	// Spread is actually larger.
	var dev float64
	const n = 1000
	for i := 0; i < n; i++ {
		m, _ := s.Measure(50, 0, sim.Time(i))
		dev += (m.Gap - 50) * (m.Gap - 50)
	}
	sigma := math.Sqrt(dev / n)
	if sigma < 1.0 { // nominal 0.3 * 5 = 1.5
		t.Fatalf("noisy sigma = %v, want ~1.5", sigma)
	}
}

func TestPlausibilityCatchesJump(t *testing.T) {
	c := NewPlausibilityChecker(60, 200)
	if !c.Check(RangeMeasurement{Gap: 50, At: 0}) {
		t.Fatal("first measurement rejected")
	}
	// 100 m jump in 10 ms: impossible.
	if c.Check(RangeMeasurement{Gap: 150, At: 10 * sim.Millisecond}) {
		t.Fatal("teleporting object accepted")
	}
	if c.TrustScore() >= 1 {
		t.Fatal("trust unchanged after violation")
	}
}

func TestPlausibilityCatchesFreeze(t *testing.T) {
	c := NewPlausibilityChecker(60, 200)
	// Identical readings with large relative speed: implausible after 5.
	bad := 0
	for i := 0; i < 10; i++ {
		m := RangeMeasurement{Gap: 50, RelSpeed: -8, At: sim.Time(i) * 100 * sim.Millisecond}
		if !c.Check(m) {
			bad++
		}
	}
	if bad == 0 {
		t.Fatal("freeze never flagged")
	}
}

func TestPlausibilityCatchesOutOfRange(t *testing.T) {
	c := NewPlausibilityChecker(60, 200)
	if c.Check(RangeMeasurement{Gap: 300, At: 0}) {
		t.Fatal("beyond-range gap accepted")
	}
	if c.Check(RangeMeasurement{Gap: -5, At: sim.Second}) {
		t.Fatal("negative gap accepted")
	}
}

func TestPlausibilityAcceptsNominal(t *testing.T) {
	c := NewPlausibilityChecker(60, 200)
	for i := 0; i < 100; i++ {
		gap := 50 - float64(i)*0.3 // closing at 3 m/s with 100ms period
		if !c.Check(RangeMeasurement{Gap: gap, RelSpeed: -3, At: sim.Time(i) * 100 * sim.Millisecond}) {
			t.Fatalf("nominal measurement %d rejected", i)
		}
	}
	if c.TrustScore() != 1 {
		t.Fatalf("trust = %v", c.TrustScore())
	}
}

func TestWheelSpeedSensor(t *testing.T) {
	s := NewWheelSpeedSensor(sim.NewRNG(6))
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sum += s.Measure(20)
	}
	if math.Abs(sum/n-20) > 0.1 {
		t.Fatalf("mean speed = %v", sum/n)
	}
	s.InjectFault(FaultBias, 5)
	if v := s.Measure(20); v < 23 {
		t.Fatalf("biased speed = %v", v)
	}
	// Never negative.
	s.InjectFault(FaultBias, -100)
	if v := s.Measure(20); v != 0 {
		t.Fatalf("negative speed = %v", v)
	}
}

func TestTemperatureSensor(t *testing.T) {
	s := NewTemperatureSensor(sim.NewRNG(7))
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sum += s.Measure(85)
	}
	if math.Abs(sum/n-85) > 0.2 {
		t.Fatalf("mean temp = %v", sum/n)
	}
}

func TestFaultKindString(t *testing.T) {
	if FaultNone.String() != "none" || FaultFreeze.String() != "freeze" {
		t.Fatal("fault names")
	}
}

func TestQualityRecoversAfterFaultCleared(t *testing.T) {
	s := NewObjectSensor(sim.NewRNG(8))
	s.InjectFault(FaultNoisy, 10)
	if q := s.Quality(); q > 0.2 {
		t.Fatalf("faulty quality = %v", q)
	}
	s.InjectFault(FaultNone, 0)
	if q := s.Quality(); q < 0.99 {
		t.Fatalf("cleared quality = %v", q)
	}
}
