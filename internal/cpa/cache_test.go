package cpa

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func cacheTestTasks(n int) []Task {
	tasks := make([]Task, 0, n)
	for i := 0; i < n; i++ {
		tasks = append(tasks, Task{
			Name:       string(rune('a' + i)),
			Priority:   i + 1,
			WCETUS:     int64(100 + 10*i),
			Event:      EventModel{PeriodUS: int64(1000 * (i + 1)), JitterUS: int64(50 * i)},
			DeadlineUS: int64(1000 * (i + 1)),
		})
	}
	return tasks
}

func TestCacheSaveLoadRoundTrip(t *testing.T) {
	a := NewAnalyzer()
	tasks := cacheTestTasks(5)
	want, err := a.AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AnalyzeSPNP(tasks); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveCache(a, &buf); err != nil {
		t.Fatal(err)
	}

	// A fresh analyzer warm-started from the stream must answer the same
	// analyses from the cache: hits, no misses, identical results.
	b := NewAnalyzer()
	if err := LoadCache(b, &buf); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Entries; got != 2 {
		t.Fatalf("loaded %d entries, want 2 (SPP + SPNP)", got)
	}
	got, err := b.AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warm-started results differ:\nwas %+v\nnow %+v", want, got)
	}
	if st := b.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats after warm start = %+v, want 1 hit, 0 misses", st)
	}
}

func TestCacheLoadKeepsExistingEntries(t *testing.T) {
	a := NewAnalyzer()
	if _, err := a.AnalyzeSPP(cacheTestTasks(3)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCache(a, &buf); err != nil {
		t.Fatal(err)
	}

	b := NewAnalyzer()
	if _, err := b.AnalyzeSPP(cacheTestTasks(4)); err != nil {
		t.Fatal(err)
	}
	if err := LoadCache(b, &buf); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Entries; got != 2 {
		t.Fatalf("entries after merge = %d, want 2", got)
	}
}

func TestCacheVersionMismatchRejected(t *testing.T) {
	var buf bytes.Buffer
	a := NewAnalyzer()
	if err := SaveCache(a, &buf); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a bumped version byte by decoding and re-encoding is
	// overkill; a corrupt stream must error too.
	if err := LoadCache(NewAnalyzer(), bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("corrupt cache accepted")
	}
}

// TestCacheLoadFailurePaths drives LoadCache through every way a cache
// file goes bad in the field — truncated write, format version from a
// different build, plain garbage, an empty file — and requires a clean
// error that leaves the analyzer fully usable: pre-existing entries
// intact and new analyses cached as if the load never happened.
func TestCacheLoadFailurePaths(t *testing.T) {
	valid := func() []byte {
		a := NewAnalyzer()
		if _, err := a.AnalyzeSPP(cacheTestTasks(5)); err != nil {
			t.Fatal(err)
		}
		if _, err := a.AnalyzeSPNP(cacheTestTasks(4)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveCache(a, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	wrongVersion := func() []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(cacheFile{
			Version: cacheFileVersion + 1,
			Entries: map[uint64][]Result{42: {{Name: "x", WCRTUS: 1, Schedulable: true}}},
		}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name    string
		data    []byte
		errLike string
	}{
		{"truncated", valid[:len(valid)/2], "decode"},
		{"wrong version", wrongVersion, "version"},
		{"garbage gob", []byte("\x07\xffgarbage-bytes-not-a-cache\x00\x01"), "decode"},
		{"empty file", nil, "decode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAnalyzer()
			// Pre-warm one entry: a failed load must not disturb it.
			preTasks := cacheTestTasks(3)
			if _, err := a.AnalyzeSPP(preTasks); err != nil {
				t.Fatal(err)
			}
			before := a.Stats()

			err := LoadCache(a, bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("%s cache accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.errLike) {
				t.Fatalf("error %q does not mention %q", err, tc.errLike)
			}
			if got := a.Stats().Entries; got != before.Entries {
				t.Fatalf("failed load changed entry count: %d -> %d", before.Entries, got)
			}

			// The analyzer must stay fully usable: the pre-warmed entry
			// still hits, and fresh analyses still run and cache.
			if _, err := a.AnalyzeSPP(preTasks); err != nil {
				t.Fatal(err)
			}
			if st := a.Stats(); st.Hits != before.Hits+1 {
				t.Fatalf("pre-warmed entry lost after failed load: %+v", st)
			}
			fresh := cacheTestTasks(6)
			if _, err := a.AnalyzeSPP(fresh); err != nil {
				t.Fatalf("analyzer unusable after failed load: %v", err)
			}
			if _, err := a.AnalyzeSPP(fresh); err != nil {
				t.Fatal(err)
			}
			if st := a.Stats(); st.Hits != before.Hits+2 {
				t.Fatalf("post-failure analysis not cached: %+v", st)
			}
		})
	}
}

// TestCacheFileLoadFailureLeavesAnalyzerUsable covers the file-path
// front door: a truncated on-disk cache must error without breaking the
// analyzer or deleting the file (the next SaveCacheFile repairs it).
func TestCacheFileLoadFailureLeavesAnalyzerUsable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cpa.cache")

	a := NewAnalyzer()
	if _, err := a.AnalyzeSPP(cacheTestTasks(5)); err != nil {
		t.Fatal(err)
	}
	if err := SaveCacheFile(a, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	b := NewAnalyzer()
	if err := LoadCacheFile(b, path); err == nil {
		t.Fatal("truncated cache file accepted")
	}
	if _, err := b.AnalyzeSPP(cacheTestTasks(5)); err != nil {
		t.Fatalf("analyzer unusable after failed file load: %v", err)
	}
	// A fresh save over the truncated file restores a loadable cache.
	if err := SaveCacheFile(b, path); err != nil {
		t.Fatal(err)
	}
	c := NewAnalyzer()
	if err := LoadCacheFile(c, path); err != nil {
		t.Fatalf("repaired cache rejected: %v", err)
	}
	if got := c.Stats().Entries; got != 1 {
		t.Fatalf("repaired cache loaded %d entries, want 1", got)
	}
}

// TestCacheSaveFileFailurePaths drives SaveCacheFile through its failure
// modes: a missing parent directory (create fails) and a target that is a
// directory (rename fails). Each must return an error, leave no stray
// .tmp file behind, and leave any pre-existing cache at the path intact.
func TestCacheSaveFileFailurePaths(t *testing.T) {
	a := NewAnalyzer()
	if _, err := a.AnalyzeSPP(cacheTestTasks(4)); err != nil {
		t.Fatal(err)
	}

	t.Run("missing parent dir", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "no-such-subdir", "cpa.cache")
		if err := SaveCacheFile(a, path); err == nil {
			t.Fatal("save into missing directory succeeded")
		}
		if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
			t.Fatal("temp file left behind after failed save")
		}
	})

	t.Run("rename onto directory", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "cpa.cache")
		if err := os.Mkdir(path, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := SaveCacheFile(a, path); err == nil {
			t.Fatal("save onto a directory succeeded")
		}
		if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
			t.Fatal("temp file left behind after failed rename")
		}
	})

	t.Run("durable happy path", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "cpa.cache")
		if err := SaveCacheFile(a, path); err != nil {
			t.Fatal(err)
		}
		// Overwrite with new content: the rename must atomically replace.
		if _, err := a.AnalyzeSPNP(cacheTestTasks(3)); err != nil {
			t.Fatal(err)
		}
		if err := SaveCacheFile(a, path); err != nil {
			t.Fatal(err)
		}
		b := NewAnalyzer()
		if err := LoadCacheFile(b, path); err != nil {
			t.Fatal(err)
		}
		if got := b.Stats().Entries; got != 2 {
			t.Fatalf("overwritten cache loaded %d entries, want 2", got)
		}
	})
}

func TestMergeCacheMatchesLoadSemantics(t *testing.T) {
	a := NewAnalyzer()
	if _, err := a.AnalyzeSPP(cacheTestTasks(3)); err != nil {
		t.Fatal(err)
	}
	b := NewAnalyzer()
	if _, err := b.AnalyzeSPP(cacheTestTasks(4)); err != nil {
		t.Fatal(err)
	}
	MergeCache(b, a)
	if got := b.Stats().Entries; got != 2 {
		t.Fatalf("entries after merge = %d, want 2", got)
	}
	// The merged entry answers without re-analysis.
	if _, err := b.AnalyzeSPP(cacheTestTasks(3)); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Hits != 1 {
		t.Fatalf("stats after merged lookup = %+v, want 1 hit", st)
	}
}

func TestCacheFileRoundTripAndMissingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cpa.cache")

	a := NewAnalyzer()
	if err := LoadCacheFile(a, path); !os.IsNotExist(err) {
		t.Fatalf("missing cache file: err = %v, want os.IsNotExist", err)
	}
	tasks := cacheTestTasks(4)
	if _, err := a.AnalyzeSPP(tasks); err != nil {
		t.Fatal(err)
	}
	if err := SaveCacheFile(a, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}

	b := NewAnalyzer()
	if err := LoadCacheFile(b, path); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AnalyzeSPP(tasks); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Hits != 1 {
		t.Fatalf("stats after file warm start = %+v, want 1 hit", st)
	}
}
