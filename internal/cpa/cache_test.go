package cpa

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func cacheTestTasks(n int) []Task {
	tasks := make([]Task, 0, n)
	for i := 0; i < n; i++ {
		tasks = append(tasks, Task{
			Name:       string(rune('a' + i)),
			Priority:   i + 1,
			WCETUS:     int64(100 + 10*i),
			Event:      EventModel{PeriodUS: int64(1000 * (i + 1)), JitterUS: int64(50 * i)},
			DeadlineUS: int64(1000 * (i + 1)),
		})
	}
	return tasks
}

func TestCacheSaveLoadRoundTrip(t *testing.T) {
	a := NewAnalyzer()
	tasks := cacheTestTasks(5)
	want, err := a.AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AnalyzeSPNP(tasks); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveCache(a, &buf); err != nil {
		t.Fatal(err)
	}

	// A fresh analyzer warm-started from the stream must answer the same
	// analyses from the cache: hits, no misses, identical results.
	b := NewAnalyzer()
	if err := LoadCache(b, &buf); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Entries; got != 2 {
		t.Fatalf("loaded %d entries, want 2 (SPP + SPNP)", got)
	}
	got, err := b.AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warm-started results differ:\nwas %+v\nnow %+v", want, got)
	}
	if st := b.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats after warm start = %+v, want 1 hit, 0 misses", st)
	}
}

func TestCacheLoadKeepsExistingEntries(t *testing.T) {
	a := NewAnalyzer()
	if _, err := a.AnalyzeSPP(cacheTestTasks(3)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCache(a, &buf); err != nil {
		t.Fatal(err)
	}

	b := NewAnalyzer()
	if _, err := b.AnalyzeSPP(cacheTestTasks(4)); err != nil {
		t.Fatal(err)
	}
	if err := LoadCache(b, &buf); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Entries; got != 2 {
		t.Fatalf("entries after merge = %d, want 2", got)
	}
}

func TestCacheVersionMismatchRejected(t *testing.T) {
	var buf bytes.Buffer
	a := NewAnalyzer()
	if err := SaveCache(a, &buf); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a bumped version byte by decoding and re-encoding is
	// overkill; a corrupt stream must error too.
	if err := LoadCache(NewAnalyzer(), bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("corrupt cache accepted")
	}
}

func TestMergeCacheMatchesLoadSemantics(t *testing.T) {
	a := NewAnalyzer()
	if _, err := a.AnalyzeSPP(cacheTestTasks(3)); err != nil {
		t.Fatal(err)
	}
	b := NewAnalyzer()
	if _, err := b.AnalyzeSPP(cacheTestTasks(4)); err != nil {
		t.Fatal(err)
	}
	MergeCache(b, a)
	if got := b.Stats().Entries; got != 2 {
		t.Fatalf("entries after merge = %d, want 2", got)
	}
	// The merged entry answers without re-analysis.
	if _, err := b.AnalyzeSPP(cacheTestTasks(3)); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Hits != 1 {
		t.Fatalf("stats after merged lookup = %+v, want 1 hit", st)
	}
}

func TestCacheFileRoundTripAndMissingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cpa.cache")

	a := NewAnalyzer()
	if err := LoadCacheFile(a, path); !os.IsNotExist(err) {
		t.Fatalf("missing cache file: err = %v, want os.IsNotExist", err)
	}
	tasks := cacheTestTasks(4)
	if _, err := a.AnalyzeSPP(tasks); err != nil {
		t.Fatal(err)
	}
	if err := SaveCacheFile(a, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}

	b := NewAnalyzer()
	if err := LoadCacheFile(b, path); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AnalyzeSPP(tasks); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Hits != 1 {
		t.Fatalf("stats after file warm start = %+v, want 1 hit", st)
	}
}
