package cpa

import (
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// Analyzer memoizes busy-window analyses per task set. The MCC re-runs the
// timing acceptance test on every proposed change, but most resources are
// untouched by any single change: their task sets hash to the same digest
// and the cached []Result is returned without re-running the fixed-point
// iterations.
//
// Thread-safety contract: an Analyzer is safe for unrestricted concurrent
// use — one MCC fanning dirty resources over a worker pool, a stream
// scheduler's prefetch pool, and a whole fleet of per-vehicle MCCs
// (internal/fleet) may share a single instance. The invariants callers
// rely on:
//
//   - The memo table and the in-flight table are guarded by mu; the
//     hit/miss/wait counters are atomics, so Stats may be read
//     concurrently with analyses and observes each counter atomically
//     (not a consistent snapshot across counters).
//   - Cached []Result slices are immutable once stored: AnalyzeSPP/SPNP
//     hand every caller a fresh copy, and the injected-corruption path
//     only reslices the stored header. Callers may retain results
//     indefinitely.
//   - Concurrent misses of the same digest are single-flighted: one
//     goroutine runs the busy-window fixed point, the rest wait and
//     share its (copied) result — identical subsystems across tenants
//     pay analysis once fleet-wide, concurrency included. An analysis
//     error is returned to every coalesced waiter but is never cached,
//     so the next call retries.
//   - SetInjector/Reset may race ongoing analyses: an analysis that was
//     in flight across Reset stores its (fresh, correct) result into the
//     new table, which is harmless because entries are pure functions of
//     their digest.
type Analyzer struct {
	mu    sync.Mutex
	cache map[uint64][]Result
	// flights tracks in-progress analyses by digest for single-flight
	// coalescing; entries are removed before the flight's done channel is
	// closed.
	flights map[uint64]*flight

	hits   atomic.Int64
	misses atomic.Int64
	waits  atomic.Int64

	// inject, when non-nil, fires fault-injection hooks: "cpa.analyze"
	// before every memoized analysis (error/slow modes) and "cpa.cache"
	// on cache hits (corrupt mode truncates the stored entry, modeling a
	// damaged memo table the caller must detect).
	inject *faultinject.Injector
}

// flight is one in-progress analysis other goroutines may wait on. res
// and err are written exactly once, before done is closed; the channel
// close publishes them to every waiter.
type flight struct {
	done chan struct{}
	res  []Result
	err  error
}

// maxCacheEntries bounds the memoization table. A fleet-scale change stream
// produces one new digest per touched resource per accepted change; when
// the table exceeds the bound, arbitrary entries are evicted (the cache is
// a pure performance artifact, correctness never depends on residency).
const maxCacheEntries = 4096

// AnalyzerStats reports cache effectiveness counters.
type AnalyzerStats struct {
	// Hits counts analyses served from the cache, including analyses that
	// waited on a concurrent in-flight computation of the same digest.
	Hits int64
	// Misses counts analyses that ran the busy-window iteration.
	Misses int64
	// FlightWaits counts the subset of Hits that coalesced onto an
	// in-flight analysis instead of finding a completed cache entry.
	FlightWaits int64
	// Entries is the current number of cached task sets.
	Entries int
}

// NewAnalyzer returns an empty memoizing analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		cache:   make(map[uint64][]Result),
		flights: make(map[uint64]*flight),
	}
}

// AnalyzeSPP is the memoized equivalent of the package-level AnalyzeSPP.
func (a *Analyzer) AnalyzeSPP(tasks []Task) ([]Result, error) {
	return a.analyze(tasks, false)
}

// AnalyzeSPNP is the memoized equivalent of the package-level AnalyzeSPNP.
func (a *Analyzer) AnalyzeSPNP(tasks []Task) ([]Result, error) {
	return a.analyze(tasks, true)
}

// Stats returns the current cache counters.
func (a *Analyzer) Stats() AnalyzerStats {
	a.mu.Lock()
	n := len(a.cache)
	a.mu.Unlock()
	return AnalyzerStats{
		Hits:        a.hits.Load(),
		Misses:      a.misses.Load(),
		FlightWaits: a.waits.Load(),
		Entries:     n,
	}
}

// SetInjector installs a fault injector on the analyzer's hook points
// (nil disables injection). Call before concurrent use.
func (a *Analyzer) SetInjector(inj *faultinject.Injector) {
	a.mu.Lock()
	a.inject = inj
	a.mu.Unlock()
}

// Reset drops every cached result and zeroes the counters. In-flight
// analyses complete against the new (empty) table.
func (a *Analyzer) Reset() {
	a.mu.Lock()
	a.cache = make(map[uint64][]Result)
	a.mu.Unlock()
	a.hits.Store(0)
	a.misses.Store(0)
	a.waits.Store(0)
}

func (a *Analyzer) analyze(tasks []Task, nonPreemptive bool) ([]Result, error) {
	key := TaskSetDigest(tasks)
	if nonPreemptive {
		// The same message set analyzed as SPNP must not alias an SPP entry.
		key = mix64(key ^ 0x5350_4e50) // "SPNP"
	}
	a.mu.Lock()
	inj := a.inject
	cached, ok := a.cache[key]
	a.mu.Unlock()
	if _, fired, err := inj.Fire(nil, "cpa.analyze", ""); fired && err != nil {
		return nil, err
	}
	if ok {
		if f, fired, _ := inj.Fire(nil, "cpa.cache", ""); fired && f.Mode == faultinject.ModeCorrupt && len(cached) > 0 {
			a.mu.Lock()
			if cur, still := a.cache[key]; still && len(cur) > 0 {
				a.cache[key] = cur[:len(cur)-1]
			}
			cached = a.cache[key]
			a.mu.Unlock()
		}
		a.hits.Add(1)
		out := make([]Result, len(cached))
		copy(out, cached)
		return out, nil
	}

	// Miss. Re-check under the lock (the entry may have landed since the
	// unlocked read) and either join an in-flight analysis of this digest
	// or register as its owner.
	a.mu.Lock()
	if cached, ok = a.cache[key]; ok {
		a.mu.Unlock()
		a.hits.Add(1)
		out := make([]Result, len(cached))
		copy(out, cached)
		return out, nil
	}
	if a.flights == nil {
		a.flights = make(map[uint64]*flight)
	}
	if f, inFlight := a.flights[key]; inFlight {
		a.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		a.hits.Add(1)
		a.waits.Add(1)
		out := make([]Result, len(f.res))
		copy(out, f.res)
		return out, nil
	}
	f := &flight{done: make(chan struct{})}
	a.flights[key] = f
	a.mu.Unlock()

	a.misses.Add(1)
	res, err := analyze(tasks, nonPreemptive)

	a.mu.Lock()
	delete(a.flights, key)
	if err == nil {
		stored := make([]Result, len(res))
		copy(stored, res)
		if len(a.cache) >= maxCacheEntries {
			for k := range a.cache {
				delete(a.cache, k)
				if len(a.cache) < maxCacheEntries {
					break
				}
			}
		}
		a.cache[key] = stored
		f.res = stored
	}
	a.mu.Unlock()
	f.err = err
	close(f.done)
	return res, err
}

// TaskSetDigest returns a digest of the task set that is independent of
// the order tasks are listed in: each task is hashed individually through a
// strong 64-bit mixer and the per-task hashes are folded with a commutative
// combine (no sort, no allocation — the digest must stay far cheaper than
// the analysis it short-circuits). Two task sets digest equally iff they
// contain the same tasks (modulo 64-bit collisions), which is what keys the
// Analyzer cache and the MCC's dirty-resource tracking.
func TaskSetDigest(tasks []Task) uint64 {
	sum := mix64(uint64(len(tasks)))
	var xor uint64
	for i := range tasks {
		h := taskHash(&tasks[i])
		sum += h
		xor ^= mix64(h)
	}
	return mix64(sum ^ xor)
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func taskHash(t *Task) uint64 {
	h := fnvString(fnvOffset64, t.Name)
	h = mix64(h ^ uint64(int64(t.Priority)))
	h = mix64(h ^ uint64(t.WCETUS))
	h = mix64(h ^ uint64(t.Event.PeriodUS))
	h = mix64(h ^ uint64(t.Event.JitterUS))
	h = mix64(h ^ uint64(t.DeadlineUS))
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return mix64(h ^ uint64(len(s)))
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
