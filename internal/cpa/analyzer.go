package cpa

import (
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// Analyzer memoizes busy-window analyses per task set. The MCC re-runs the
// timing acceptance test on every proposed change, but most resources are
// untouched by any single change: their task sets hash to the same digest
// and the cached []Result is returned without re-running the fixed-point
// iterations. The Analyzer is safe for concurrent use, so the MCC can fan
// resources out over a worker pool sharing one cache.
type Analyzer struct {
	mu    sync.Mutex
	cache map[uint64][]Result

	hits   atomic.Int64
	misses atomic.Int64

	// inject, when non-nil, fires fault-injection hooks: "cpa.analyze"
	// before every memoized analysis (error/slow modes) and "cpa.cache"
	// on cache hits (corrupt mode truncates the stored entry, modeling a
	// damaged memo table the caller must detect).
	inject *faultinject.Injector
}

// maxCacheEntries bounds the memoization table. A fleet-scale change stream
// produces one new digest per touched resource per accepted change; when
// the table exceeds the bound, arbitrary entries are evicted (the cache is
// a pure performance artifact, correctness never depends on residency).
const maxCacheEntries = 4096

// AnalyzerStats reports cache effectiveness counters.
type AnalyzerStats struct {
	// Hits counts analyses served from the cache.
	Hits int64
	// Misses counts analyses that ran the busy-window iteration.
	Misses int64
	// Entries is the current number of cached task sets.
	Entries int
}

// NewAnalyzer returns an empty memoizing analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{cache: make(map[uint64][]Result)}
}

// AnalyzeSPP is the memoized equivalent of the package-level AnalyzeSPP.
func (a *Analyzer) AnalyzeSPP(tasks []Task) ([]Result, error) {
	return a.analyze(tasks, false)
}

// AnalyzeSPNP is the memoized equivalent of the package-level AnalyzeSPNP.
func (a *Analyzer) AnalyzeSPNP(tasks []Task) ([]Result, error) {
	return a.analyze(tasks, true)
}

// Stats returns the current cache counters.
func (a *Analyzer) Stats() AnalyzerStats {
	a.mu.Lock()
	n := len(a.cache)
	a.mu.Unlock()
	return AnalyzerStats{Hits: a.hits.Load(), Misses: a.misses.Load(), Entries: n}
}

// SetInjector installs a fault injector on the analyzer's hook points
// (nil disables injection). Call before concurrent use.
func (a *Analyzer) SetInjector(inj *faultinject.Injector) {
	a.mu.Lock()
	a.inject = inj
	a.mu.Unlock()
}

// Reset drops every cached result and zeroes the counters.
func (a *Analyzer) Reset() {
	a.mu.Lock()
	a.cache = make(map[uint64][]Result)
	a.mu.Unlock()
	a.hits.Store(0)
	a.misses.Store(0)
}

func (a *Analyzer) analyze(tasks []Task, nonPreemptive bool) ([]Result, error) {
	key := TaskSetDigest(tasks)
	if nonPreemptive {
		// The same message set analyzed as SPNP must not alias an SPP entry.
		key = mix64(key ^ 0x5350_4e50) // "SPNP"
	}
	a.mu.Lock()
	inj := a.inject
	cached, ok := a.cache[key]
	a.mu.Unlock()
	if _, fired, err := inj.Fire(nil, "cpa.analyze", ""); fired && err != nil {
		return nil, err
	}
	if ok {
		if f, fired, _ := inj.Fire(nil, "cpa.cache", ""); fired && f.Mode == faultinject.ModeCorrupt && len(cached) > 0 {
			a.mu.Lock()
			if cur, still := a.cache[key]; still && len(cur) > 0 {
				a.cache[key] = cur[:len(cur)-1]
			}
			cached = a.cache[key]
			a.mu.Unlock()
		}
		a.hits.Add(1)
		out := make([]Result, len(cached))
		copy(out, cached)
		return out, nil
	}
	a.misses.Add(1)
	res, err := analyze(tasks, nonPreemptive)
	if err != nil {
		return nil, err
	}
	stored := make([]Result, len(res))
	copy(stored, res)
	a.mu.Lock()
	if len(a.cache) >= maxCacheEntries {
		for k := range a.cache {
			delete(a.cache, k)
			if len(a.cache) < maxCacheEntries {
				break
			}
		}
	}
	a.cache[key] = stored
	a.mu.Unlock()
	return res, nil
}

// TaskSetDigest returns a digest of the task set that is independent of
// the order tasks are listed in: each task is hashed individually through a
// strong 64-bit mixer and the per-task hashes are folded with a commutative
// combine (no sort, no allocation — the digest must stay far cheaper than
// the analysis it short-circuits). Two task sets digest equally iff they
// contain the same tasks (modulo 64-bit collisions), which is what keys the
// Analyzer cache and the MCC's dirty-resource tracking.
func TaskSetDigest(tasks []Task) uint64 {
	sum := mix64(uint64(len(tasks)))
	var xor uint64
	for i := range tasks {
		h := taskHash(&tasks[i])
		sum += h
		xor ^= mix64(h)
	}
	return mix64(sum ^ xor)
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func taskHash(t *Task) uint64 {
	h := fnvString(fnvOffset64, t.Name)
	h = mix64(h ^ uint64(int64(t.Priority)))
	h = mix64(h ^ uint64(t.WCETUS))
	h = mix64(h ^ uint64(t.Event.PeriodUS))
	h = mix64(h ^ uint64(t.Event.JitterUS))
	h = mix64(h ^ uint64(t.DeadlineUS))
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return mix64(h ^ uint64(len(s)))
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
