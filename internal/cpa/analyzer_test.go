package cpa

import (
	"reflect"
	"sync"
	"testing"
)

func analyzerTaskSet() []Task {
	return []Task{
		{Name: "a", Priority: 1, WCETUS: 500, Event: EventModel{PeriodUS: 5000, JitterUS: 1000}, DeadlineUS: 5000},
		{Name: "b", Priority: 2, WCETUS: 1500, Event: EventModel{PeriodUS: 10000}, DeadlineUS: 10000},
		{Name: "c", Priority: 3, WCETUS: 4000, Event: EventModel{PeriodUS: 20000, JitterUS: 2000}, DeadlineUS: 20000},
	}
}

func TestAnalyzerMatchesDirectAnalysis(t *testing.T) {
	tasks := analyzerTaskSet()
	want, err := AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer()
	for i := 0; i < 3; i++ {
		got, err := a.AnalyzeSPP(tasks)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: analyzer results diverge from direct analysis:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
	st := a.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss then 2 hits", st)
	}
}

func TestAnalyzerCacheInvalidatedByTaskChange(t *testing.T) {
	tasks := analyzerTaskSet()
	a := NewAnalyzer()
	first, err := a.AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	// A WCET change must produce a fresh analysis, not a stale table.
	tasks[1].WCETUS = 3000
	second, err := a.AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Misses != 2 {
		t.Fatalf("changed task set served from cache: stats %+v", st)
	}
	want, err := AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, want) {
		t.Fatalf("post-invalidation results wrong:\ngot  %+v\nwant %+v", second, want)
	}
	if reflect.DeepEqual(first, second) {
		t.Fatal("WCET change did not affect results; invalidation untestable")
	}
}

func TestAnalyzerSPPAndSPNPDoNotAlias(t *testing.T) {
	tasks := analyzerTaskSet()
	a := NewAnalyzer()
	spp, err := a.AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	spnp, err := a.AnalyzeSPNP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(spp, spnp) {
		t.Fatal("SPP and SPNP analyses returned identical tables; cache keys alias")
	}
	if st := a.Stats(); st.Misses != 2 {
		t.Fatalf("expected two distinct cache entries, stats %+v", st)
	}
}

func TestAnalyzerCachedResultsAreIsolated(t *testing.T) {
	tasks := analyzerTaskSet()
	a := NewAnalyzer()
	first, err := a.AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	first[0].WCRTUS = -1 // caller scribbles on its copy
	second, err := a.AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if second[0].WCRTUS == -1 {
		t.Fatal("cache returned a shared slice; caller mutation leaked")
	}
}

func TestTaskSetDigestOrderIndependent(t *testing.T) {
	tasks := analyzerTaskSet()
	perm := []Task{tasks[2], tasks[0], tasks[1]}
	if TaskSetDigest(tasks) != TaskSetDigest(perm) {
		t.Fatal("digest depends on task order")
	}
	changed := analyzerTaskSet()
	changed[0].Event.JitterUS++
	if TaskSetDigest(tasks) == TaskSetDigest(changed) {
		t.Fatal("jitter change did not change the digest")
	}
	if TaskSetDigest(nil) == TaskSetDigest(tasks[:1]) {
		t.Fatal("empty and singleton sets digest equally")
	}
}

func TestAnalyzerConcurrentUse(t *testing.T) {
	tasks := analyzerTaskSet()
	want, err := AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer()
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := a.AnalyzeSPP(tasks)
				if err != nil {
					errc <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errc <- errDiverged
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

var errDiverged = errorString("concurrent analyzer result diverged")

type errorString string

func (e errorString) Error() string { return string(e) }
