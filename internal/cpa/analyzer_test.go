package cpa

import (
	"reflect"
	"sync"
	"testing"
)

func analyzerTaskSet() []Task {
	return []Task{
		{Name: "a", Priority: 1, WCETUS: 500, Event: EventModel{PeriodUS: 5000, JitterUS: 1000}, DeadlineUS: 5000},
		{Name: "b", Priority: 2, WCETUS: 1500, Event: EventModel{PeriodUS: 10000}, DeadlineUS: 10000},
		{Name: "c", Priority: 3, WCETUS: 4000, Event: EventModel{PeriodUS: 20000, JitterUS: 2000}, DeadlineUS: 20000},
	}
}

func TestAnalyzerMatchesDirectAnalysis(t *testing.T) {
	tasks := analyzerTaskSet()
	want, err := AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer()
	for i := 0; i < 3; i++ {
		got, err := a.AnalyzeSPP(tasks)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: analyzer results diverge from direct analysis:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
	st := a.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss then 2 hits", st)
	}
}

func TestAnalyzerCacheInvalidatedByTaskChange(t *testing.T) {
	tasks := analyzerTaskSet()
	a := NewAnalyzer()
	first, err := a.AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	// A WCET change must produce a fresh analysis, not a stale table.
	tasks[1].WCETUS = 3000
	second, err := a.AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Misses != 2 {
		t.Fatalf("changed task set served from cache: stats %+v", st)
	}
	want, err := AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, want) {
		t.Fatalf("post-invalidation results wrong:\ngot  %+v\nwant %+v", second, want)
	}
	if reflect.DeepEqual(first, second) {
		t.Fatal("WCET change did not affect results; invalidation untestable")
	}
}

func TestAnalyzerSPPAndSPNPDoNotAlias(t *testing.T) {
	tasks := analyzerTaskSet()
	a := NewAnalyzer()
	spp, err := a.AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	spnp, err := a.AnalyzeSPNP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(spp, spnp) {
		t.Fatal("SPP and SPNP analyses returned identical tables; cache keys alias")
	}
	if st := a.Stats(); st.Misses != 2 {
		t.Fatalf("expected two distinct cache entries, stats %+v", st)
	}
}

func TestAnalyzerCachedResultsAreIsolated(t *testing.T) {
	tasks := analyzerTaskSet()
	a := NewAnalyzer()
	first, err := a.AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	first[0].WCRTUS = -1 // caller scribbles on its copy
	second, err := a.AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if second[0].WCRTUS == -1 {
		t.Fatal("cache returned a shared slice; caller mutation leaked")
	}
}

func TestTaskSetDigestOrderIndependent(t *testing.T) {
	tasks := analyzerTaskSet()
	perm := []Task{tasks[2], tasks[0], tasks[1]}
	if TaskSetDigest(tasks) != TaskSetDigest(perm) {
		t.Fatal("digest depends on task order")
	}
	changed := analyzerTaskSet()
	changed[0].Event.JitterUS++
	if TaskSetDigest(tasks) == TaskSetDigest(changed) {
		t.Fatal("jitter change did not change the digest")
	}
	if TaskSetDigest(nil) == TaskSetDigest(tasks[:1]) {
		t.Fatal("empty and singleton sets digest equally")
	}
}

func TestAnalyzerConcurrentUse(t *testing.T) {
	tasks := analyzerTaskSet()
	want, err := AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer()
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := a.AnalyzeSPP(tasks)
				if err != nil {
					errc <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errc <- errDiverged
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

var errDiverged = errorString("concurrent analyzer result diverged")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestAnalyzerConcurrentMissesCoalesce(t *testing.T) {
	tasks := analyzerTaskSet()
	want, err := AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer()
	const n = 32
	start := make(chan struct{})
	errc := make(chan error, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			got, err := a.AnalyzeSPP(tasks)
			if err != nil {
				errc <- err
				return
			}
			if !reflect.DeepEqual(got, want) {
				errc <- errDiverged
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	// Single-flight guarantees exactly one goroutine runs the fixed point
	// no matter how the other 31 interleave; each of those either waited
	// on the flight or found the completed entry — both count as hits.
	if st.Misses != 1 {
		t.Fatalf("%d concurrent identical analyses ran %d fixed points, want 1 (stats %+v)", n, st.Misses, st)
	}
	if st.Hits != n-1 {
		t.Fatalf("hits = %d, want %d (stats %+v)", st.Hits, n-1, st)
	}
	if st.FlightWaits < 0 || st.FlightWaits > n-1 {
		t.Fatalf("flight waits %d out of range [0,%d]", st.FlightWaits, n-1)
	}
}

func TestAnalyzerFlightWaiterSharesResult(t *testing.T) {
	tasks := analyzerTaskSet()
	want, err := AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer()
	key := TaskSetDigest(tasks)

	// Pre-register an in-flight analysis for the digest so the waiter
	// path is exercised deterministically, then publish a result.
	f := &flight{done: make(chan struct{})}
	a.mu.Lock()
	a.flights[key] = f
	a.mu.Unlock()

	type outcome struct {
		res []Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		r, err := a.AnalyzeSPP(tasks)
		done <- outcome{r, err}
	}()

	f.res = append([]Result(nil), want...)
	close(f.done) // flight stays registered, so the waiter path is certain
	out := <-done
	a.mu.Lock()
	delete(a.flights, key)
	a.mu.Unlock()

	if out.err != nil {
		t.Fatal(out.err)
	}
	if !reflect.DeepEqual(out.res, want) {
		t.Fatalf("waiter result diverged:\ngot  %+v\nwant %+v", out.res, want)
	}
	out.res[0].WCRTUS = -1
	if f.res[0].WCRTUS == -1 {
		t.Fatal("waiter received the flight's own slice, not a copy")
	}
	st := a.Stats()
	if st.Misses != 0 || st.Hits != 1 || st.FlightWaits != 1 {
		t.Fatalf("stats = %+v, want 0 misses / 1 hit / 1 flight wait", st)
	}
}

func TestAnalyzerFlightWaiterSeesError(t *testing.T) {
	tasks := analyzerTaskSet()
	a := NewAnalyzer()
	key := TaskSetDigest(tasks)
	f := &flight{done: make(chan struct{})}
	a.mu.Lock()
	a.flights[key] = f
	a.mu.Unlock()

	errs := make(chan error, 1)
	go func() {
		_, err := a.AnalyzeSPP(tasks)
		errs <- err
	}()
	f.err = errDiverged
	close(f.done)
	if err := <-errs; err != errDiverged {
		t.Fatalf("waiter error = %v, want the flight owner's error", err)
	}
	a.mu.Lock()
	delete(a.flights, key)
	a.mu.Unlock()
	if st := a.Stats(); st.FlightWaits != 0 || st.Hits != 0 {
		t.Fatalf("errored flight counted as a hit: %+v", st)
	}
}

func TestAnalyzerErrorNotCached(t *testing.T) {
	// Duplicate priorities make the underlying analysis fail; the failure
	// must not be memoized, so every call retries the fixed point.
	bad := []Task{
		{Name: "x", Priority: 1, WCETUS: 100, Event: EventModel{PeriodUS: 1000}, DeadlineUS: 1000},
		{Name: "y", Priority: 1, WCETUS: 100, Event: EventModel{PeriodUS: 1000}, DeadlineUS: 1000},
	}
	a := NewAnalyzer()
	for i := 0; i < 2; i++ {
		if _, err := a.AnalyzeSPP(bad); err == nil {
			t.Fatal("duplicate-priority task set analyzed without error")
		}
	}
	st := a.Stats()
	if st.Misses != 2 || st.Entries != 0 {
		t.Fatalf("error was cached: stats %+v", st)
	}
}
