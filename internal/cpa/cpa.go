// Package cpa implements Compositional Performance Analysis: worst-case
// response time (WCRT) analysis using the busy-window technique for
// static-priority preemptive (SPP) processors and static-priority
// non-preemptive (SPNP) resources such as CAN buses.
//
// The paper (Section II.A) uses exactly this class of analysis as the MCC's
// real-time acceptance test: "a worst-case response time analysis can check
// real-time constraints based on a timing model of the system."
//
// All times are in microseconds, held as int64; the analysis is exact over
// integers (no floating point in the fixed-point iterations).
package cpa

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// EventModel is the standard periodic-with-jitter activation model.
// EtaPlus bounds the number of activations in any half-open window.
type EventModel struct {
	// PeriodUS is the activation period (> 0).
	PeriodUS int64
	// JitterUS is the maximum release jitter (>= 0).
	JitterUS int64
}

// EtaPlus returns an upper bound on the number of events arriving in any
// time window of length delta (>0): ceil((delta + J) / P).
func (e EventModel) EtaPlus(deltaUS int64) int64 {
	if deltaUS <= 0 {
		return 0
	}
	return ceilDiv(deltaUS+e.JitterUS, e.PeriodUS)
}

// DeltaMin returns the minimum distance between the first and the n-th
// event: max(0, (n-1)*P - J). It is the pseudo-inverse of EtaPlus.
func (e EventModel) DeltaMin(n int64) int64 {
	if n <= 1 {
		return 0
	}
	d := (n-1)*e.PeriodUS - e.JitterUS
	if d < 0 {
		return 0
	}
	return d
}

// Validate checks the event model parameters.
func (e EventModel) Validate() error {
	if e.PeriodUS <= 0 {
		return fmt.Errorf("cpa: period %d must be positive", e.PeriodUS)
	}
	if e.JitterUS < 0 {
		return fmt.Errorf("cpa: jitter %d must be non-negative", e.JitterUS)
	}
	return nil
}

// Task is a schedulable entity under analysis. For a CAN message, WCETUS is
// the worst-case (bit-stuffed) frame transmission time and preemption does
// not occur (use AnalyzeSPNP).
type Task struct {
	// Name identifies the task in results.
	Name string
	// Priority: numerically lower value = higher priority. Unique per
	// resource.
	Priority int
	// WCETUS is the worst-case execution (or transmission) time.
	WCETUS int64
	// Event is the activation model.
	Event EventModel
	// DeadlineUS is the relative deadline the result is checked against.
	DeadlineUS int64
}

// Validate checks a task's parameters.
func (t Task) Validate() error {
	if t.WCETUS <= 0 {
		return fmt.Errorf("cpa: task %q has non-positive WCET", t.Name)
	}
	if err := t.Event.Validate(); err != nil {
		return fmt.Errorf("cpa: task %q: %w", t.Name, err)
	}
	if t.DeadlineUS <= 0 {
		return fmt.Errorf("cpa: task %q has non-positive deadline", t.Name)
	}
	return nil
}

// Result is the analysis outcome for one task.
type Result struct {
	Name string
	// WCRTUS is the worst-case response time; valid only if Converged.
	WCRTUS int64
	// DeadlineUS echoes the task deadline.
	DeadlineUS int64
	// Schedulable is WCRTUS <= DeadlineUS (and Converged).
	Schedulable bool
	// Converged reports whether the busy-window iteration terminated;
	// it is false when the resource is overloaded.
	Converged bool
	// BusyWindows is the number of activations examined (q_max).
	BusyWindows int
	// UtilizationPPM is the per-task utilization in parts-per-million.
	UtilizationPPM int64
}

// ErrOverload is returned when total utilization is >= 1 and the busy
// window cannot terminate.
var ErrOverload = errors.New("cpa: resource utilization >= 1, busy window does not terminate")

// iterationCap bounds fixed-point iterations as a safety valve.
const iterationCap = 1_000_000

// Utilization returns the total utilization of the task set in
// parts-per-million (1e6 = 100%).
func Utilization(tasks []Task) int64 {
	var u int64
	for _, t := range tasks {
		u += taskUtilPPM(t)
	}
	return u
}

func taskUtilPPM(t Task) int64 {
	if t.Event.PeriodUS <= 0 {
		return 0
	}
	return t.WCETUS * 1_000_000 / t.Event.PeriodUS
}

// AnalyzeSPP computes worst-case response times for a task set on a
// static-priority preemptive resource. Tasks must have unique priorities.
//
// Busy-window formulation (Lehoczky/Tindell with jitter):
//
//	w_i(q) = q*C_i + Σ_{j ∈ hp(i)} η⁺_j(w_i(q)) * C_j
//	R_i(q) = w_i(q) + J_i - (q-1)*T_i
//	stop when w_i(q) <= q*T_i - J_i
func AnalyzeSPP(tasks []Task) ([]Result, error) {
	return analyze(tasks, false)
}

// AnalyzeSPNP computes worst-case response times on a static-priority
// non-preemptive resource (frame-level CAN arbitration). Lower-priority
// blocking of one maximal frame is accounted for, and interference is
// counted up to the start of the q-th transmission:
//
//	w_i(q) = B_i + (q-1)*C_i + Σ_{j ∈ hp(i)} η⁺_j(w_i(q) + 1) * C_j
//	R_i(q) = w_i(q) + C_i + J_i - (q-1)*T_i
func AnalyzeSPNP(tasks []Task) ([]Result, error) {
	return analyze(tasks, true)
}

// scratch holds the per-call working buffers of analyze. Pooling them keeps
// the hot path allocation-free apart from the returned result slice.
type scratch struct {
	sorted   []Task
	cumUtil  []int64
	blockMax []int64
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

func analyze(tasks []Task, nonPreemptive bool) ([]Result, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	s.sorted = append(s.sorted[:0], tasks...)
	sorted := s.sorted
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Priority < sorted[j].Priority })
	for i := range sorted {
		if err := sorted[i].Validate(); err != nil {
			return nil, err
		}
		if i > 0 && sorted[i].Priority == sorted[i-1].Priority {
			return nil, fmt.Errorf("cpa: tasks %q and %q share priority %d",
				sorted[i-1].Name, sorted[i].Name, sorted[i].Priority)
		}
	}

	// Prefix sums of utilization: cumUtil[i] covers the task and everything
	// at higher priority, so the termination check is O(1) per task.
	s.cumUtil = s.cumUtil[:0]
	var cum int64
	for _, t := range sorted {
		cum += taskUtilPPM(t)
		s.cumUtil = append(s.cumUtil, cum)
	}

	// Suffix maximum of WCETs: blockMax[i] is the largest lower-priority
	// WCET, i.e. the SPNP blocking term, precomputed in one reverse pass.
	if nonPreemptive {
		if cap(s.blockMax) < len(sorted) {
			s.blockMax = make([]int64, len(sorted))
		}
		s.blockMax = s.blockMax[:len(sorted)]
		var mx int64
		for i := len(sorted) - 1; i >= 0; i-- {
			s.blockMax[i] = mx
			if sorted[i].WCETUS > mx {
				mx = sorted[i].WCETUS
			}
		}
	}

	results := make([]Result, 0, len(sorted))
	for i, t := range sorted {
		res := Result{Name: t.Name, DeadlineUS: t.DeadlineUS, UtilizationPPM: taskUtilPPM(t)}
		// Utilization of the task and all higher-priority tasks must be
		// below 1 for the busy window to terminate.
		if s.cumUtil[i] >= 1_000_000 {
			res.Converged = false
			results = append(results, res)
			continue
		}

		var blocking int64
		if nonPreemptive {
			blocking = s.blockMax[i]
		}

		wcrt, qmax, ok := busyWindow(t, sorted[:i], blocking, nonPreemptive)
		res.WCRTUS = wcrt
		res.BusyWindows = qmax
		res.Converged = ok
		res.Schedulable = ok && wcrt <= t.DeadlineUS
		results = append(results, res)
	}
	return results, nil
}

// busyWindow runs the multi-activation busy-window iteration for task t
// against higher-priority set hp. Returns (WCRT, activations examined, ok).
func busyWindow(t Task, hp []Task, blocking int64, nonPreemptive bool) (int64, int, bool) {
	var wcrt int64
	for q := int64(1); ; q++ {
		if q > iterationCap {
			return 0, int(q), false
		}
		w, ok := fixedPoint(t, hp, blocking, nonPreemptive, q)
		if !ok {
			return 0, int(q), false
		}
		var resp int64
		if nonPreemptive {
			resp = w + t.WCETUS + t.Event.JitterUS - (q-1)*t.Event.PeriodUS
		} else {
			resp = w + t.Event.JitterUS - (q-1)*t.Event.PeriodUS
		}
		if resp > wcrt {
			wcrt = resp
		}
		// The busy period covers activation q+1 only if the q-th window
		// extends past the arrival of the next activation.
		var busyEnd int64
		if nonPreemptive {
			busyEnd = w + t.WCETUS
		} else {
			busyEnd = w
		}
		if busyEnd <= q*t.Event.PeriodUS-t.Event.JitterUS {
			return wcrt, int(q), true
		}
	}
}

// fixedPoint iterates the workload equation for the q-th activation.
func fixedPoint(t Task, hp []Task, blocking int64, nonPreemptive bool, q int64) (int64, bool) {
	var w int64
	if nonPreemptive {
		w = blocking + (q-1)*t.WCETUS
	} else {
		w = q * t.WCETUS
	}
	if w == 0 {
		w = 1
	}
	for iter := 0; iter < iterationCap; iter++ {
		var next int64
		if nonPreemptive {
			next = blocking + (q-1)*t.WCETUS
			for _, j := range hp {
				// +1: interference can arrive up to and including the
				// instant transmission would start (integer time base).
				next += j.Event.EtaPlus(w+1) * j.WCETUS
			}
		} else {
			next = q * t.WCETUS
			for _, j := range hp {
				next += j.Event.EtaPlus(w) * j.WCETUS
			}
		}
		if next == w {
			return w, true
		}
		w = next
	}
	return 0, false
}

// PathLatency bounds the end-to-end worst-case latency of a cause-effect
// chain as the sum of the stages' WCRTs (the standard compositional bound
// for asynchronous, register-based communication adds one period per
// sampling stage; Sampling=true includes that).
type PathStage struct {
	// WCRTUS is the stage's worst-case response time.
	WCRTUS int64
	// PeriodUS is the stage's activation period.
	PeriodUS int64
	// Sampling marks undersampling stages that add one period of delay.
	Sampling bool
}

// PathLatency returns the worst-case end-to-end latency over the stages.
func PathLatency(stages []PathStage) int64 {
	var sum int64
	for _, s := range stages {
		sum += s.WCRTUS
		if s.Sampling {
			sum += s.PeriodUS
		}
	}
	return sum
}

func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

// scaleWCETs returns a copy of the task set with every WCET divided by the
// speed factor (rounded up: slower processors can only take longer).
func scaleWCETs(tasks []Task, speed float64) []Task {
	out := make([]Task, len(tasks))
	copy(out, tasks)
	for i := range out {
		scaled := int64(float64(out[i].WCETUS)/speed + 0.999999)
		if scaled < 1 {
			scaled = 1
		}
		out[i].WCETUS = scaled
	}
	return out
}

// allSchedulable runs the SPP analysis and reports whether every task
// meets its deadline.
func allSchedulable(tasks []Task) (bool, error) {
	res, err := AnalyzeSPP(tasks)
	if err != nil {
		return false, err
	}
	for _, r := range res {
		if !r.Schedulable {
			return false, nil
		}
	}
	return true, nil
}

// SpeedFloor computes, by bisection, the minimum processor speed factor
// (relative to the speed the WCETs are given at) at which the task set is
// still schedulable under SPP. This is the sensitivity analysis the model
// domain uses to anticipate thermal throttling: if the DVFS floor is above
// SpeedFloor, no reconfiguration is needed; otherwise load must be shed
// before the governor steps below it (experiment E6's design rule).
// It returns +Inf-like 0 semantics: if the set is unschedulable even at
// speed 1.0, SpeedFloor returns 0 and false.
func SpeedFloor(tasks []Task) (float64, bool, error) {
	ok, err := allSchedulable(tasks)
	if err != nil {
		return 0, false, err
	}
	if !ok {
		return 0, false, nil
	}
	lo, hi := 0.0, 1.0 // lo: unschedulable (speed->0), hi: schedulable
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if mid == 0 {
			break
		}
		ok, err := allSchedulable(scaleWCETs(tasks, mid))
		if err != nil {
			return 0, false, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}
