package cpa

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// This file persists the Analyzer's memo table (task-set digest -> WCRT
// results) across process restarts. A fleet session that warm-starts from
// the previous session's cache answers the timing acceptance test of
// every already-seen task set with a map lookup instead of re-running the
// busy-window fixed point. The cache is a pure performance artifact:
// losing it (missing file, version bump, eviction) only costs re-analysis,
// never correctness, because entries are keyed by the full task-set
// digest.

// cacheFileVersion guards the on-disk format. Bump it whenever the digest
// scheme or the Result layout changes; LoadCache rejects mismatched files
// so a stale cache can never alias fresh digests.
const cacheFileVersion = 1

// cacheFile is the serialized memo table.
type cacheFile struct {
	Version int
	Entries map[uint64][]Result
}

// SaveCache writes the analyzer's memo table to w (gob-encoded, with a
// format version header). Safe for concurrent use with ongoing analyses.
func SaveCache(a *Analyzer, w io.Writer) error {
	a.mu.Lock()
	entries := make(map[uint64][]Result, len(a.cache))
	for k, v := range a.cache {
		entries[k] = v // result slices are immutable once cached
	}
	a.mu.Unlock()
	if err := gob.NewEncoder(w).Encode(cacheFile{Version: cacheFileVersion, Entries: entries}); err != nil {
		return fmt.Errorf("cpa: encode cache: %w", err)
	}
	return nil
}

// LoadCache merges a memo table previously written by SaveCache into the
// analyzer. Existing entries win over loaded ones, and the in-memory
// bound (maxCacheEntries) is respected. A version mismatch or a corrupt
// stream is an error; the analyzer is left usable either way.
func LoadCache(a *Analyzer, r io.Reader) error {
	var cf cacheFile
	if err := gob.NewDecoder(r).Decode(&cf); err != nil {
		return fmt.Errorf("cpa: decode cache: %w", err)
	}
	if cf.Version != cacheFileVersion {
		return fmt.Errorf("cpa: cache format version %d, want %d", cf.Version, cacheFileVersion)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for k, v := range cf.Entries {
		if len(a.cache) >= maxCacheEntries {
			break
		}
		if _, ok := a.cache[k]; !ok {
			a.cache[k] = v
		}
	}
	return nil
}

// MergeCache copies src's memo entries into dst in memory — the same
// merge semantics as LoadCache (existing dst entries win, the in-memory
// bound is respected) without the serialization round-trip. The source
// is snapshotted first, so the two analyzers' locks are never held
// together.
func MergeCache(dst, src *Analyzer) {
	src.mu.Lock()
	entries := make(map[uint64][]Result, len(src.cache))
	for k, v := range src.cache {
		entries[k] = v // result slices are immutable once cached
	}
	src.mu.Unlock()
	dst.mu.Lock()
	defer dst.mu.Unlock()
	for k, v := range entries {
		if len(dst.cache) >= maxCacheEntries {
			break
		}
		if _, ok := dst.cache[k]; !ok {
			dst.cache[k] = v
		}
	}
}

// SaveCacheFile persists the memo table to path (written atomically via a
// sibling temp file, so a crash mid-write never corrupts a good cache).
// The temp file is fsynced before the rename and the parent directory
// after it, so a power cut can never persist a truncated cache or lose
// the rename: after a crash the path holds either the old complete cache
// or the new complete cache.
func SaveCacheFile(a *Analyzer, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := SaveCache(a, f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// platforms/filesystems refuse to sync directories; that is not a
// durability regression over not syncing, so those errors are ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.EBADF) {
		return err
	}
	return nil
}

// LoadCacheFile merges the memo table stored at path. A missing file is
// returned as-is (os.IsNotExist) so first sessions can ignore it.
func LoadCacheFile(a *Analyzer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadCache(a, f)
}
