package cpa

import (
	"testing"
	"testing/quick"
)

func TestEtaPlus(t *testing.T) {
	e := EventModel{PeriodUS: 10, JitterUS: 0}
	cases := []struct {
		delta, want int64
	}{
		{0, 0}, {-5, 0}, {1, 1}, {10, 1}, {11, 2}, {20, 2}, {21, 3},
	}
	for _, c := range cases {
		if got := e.EtaPlus(c.delta); got != c.want {
			t.Fatalf("EtaPlus(%d) = %d, want %d", c.delta, got, c.want)
		}
	}
	j := EventModel{PeriodUS: 10, JitterUS: 5}
	if got := j.EtaPlus(6); got != 2 {
		t.Fatalf("jittered EtaPlus(6) = %d, want 2", got)
	}
}

func TestDeltaMinInverse(t *testing.T) {
	f := func(pRaw, jRaw uint16, nRaw uint8) bool {
		p := int64(pRaw%1000) + 1
		j := int64(jRaw % 500)
		n := int64(nRaw%50) + 1
		e := EventModel{PeriodUS: p, JitterUS: j}
		d := e.DeltaMin(n)
		// EtaPlus over a window just above DeltaMin must admit at least n events.
		return e.EtaPlus(d+1) >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Classic rate-monotonic example: three tasks, known response times.
// T1: C=1 T=4, T2: C=2 T=6, T3: C=3 T=12 (priorities rate monotonic).
// R1=1, R2=3, R3=10 (textbook busy-window result).
func TestAnalyzeSPPTextbook(t *testing.T) {
	tasks := []Task{
		{Name: "t1", Priority: 1, WCETUS: 1, Event: EventModel{PeriodUS: 4}, DeadlineUS: 4},
		{Name: "t2", Priority: 2, WCETUS: 2, Event: EventModel{PeriodUS: 6}, DeadlineUS: 6},
		{Name: "t3", Priority: 3, WCETUS: 3, Event: EventModel{PeriodUS: 12}, DeadlineUS: 12},
	}
	res, err := AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"t1": 1, "t2": 3, "t3": 10}
	for _, r := range res {
		if !r.Converged || !r.Schedulable {
			t.Fatalf("%s not schedulable: %+v", r.Name, r)
		}
		if r.WCRTUS != want[r.Name] {
			t.Fatalf("%s WCRT = %d, want %d", r.Name, r.WCRTUS, want[r.Name])
		}
	}
}

// A task set with utilization > 1 must be flagged, not loop forever.
func TestAnalyzeSPPOverload(t *testing.T) {
	tasks := []Task{
		{Name: "a", Priority: 1, WCETUS: 6, Event: EventModel{PeriodUS: 10}, DeadlineUS: 10},
		{Name: "b", Priority: 2, WCETUS: 6, Event: EventModel{PeriodUS: 10}, DeadlineUS: 10},
	}
	res, err := AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Converged {
		t.Fatal("highest priority task should converge")
	}
	if res[1].Converged {
		t.Fatal("overloaded task reported converged")
	}
	if res[1].Schedulable {
		t.Fatal("overloaded task reported schedulable")
	}
}

// Jitter increases interference: t2's WCRT must not decrease when t1 gains jitter.
func TestAnalyzeSPPJitterMonotone(t *testing.T) {
	base := []Task{
		{Name: "t1", Priority: 1, WCETUS: 2, Event: EventModel{PeriodUS: 10}, DeadlineUS: 10},
		{Name: "t2", Priority: 2, WCETUS: 4, Event: EventModel{PeriodUS: 20}, DeadlineUS: 20},
	}
	r0, err := AnalyzeSPP(base)
	if err != nil {
		t.Fatal(err)
	}
	jit := []Task{
		{Name: "t1", Priority: 1, WCETUS: 2, Event: EventModel{PeriodUS: 10, JitterUS: 9}, DeadlineUS: 19},
		{Name: "t2", Priority: 2, WCETUS: 4, Event: EventModel{PeriodUS: 20}, DeadlineUS: 20},
	}
	r1, err := AnalyzeSPP(jit)
	if err != nil {
		t.Fatal(err)
	}
	if r1[1].WCRTUS < r0[1].WCRTUS {
		t.Fatalf("jitter decreased WCRT: %d -> %d", r0[1].WCRTUS, r1[1].WCRTUS)
	}
}

// SPNP: highest-priority message still suffers blocking from one
// lower-priority frame.
func TestAnalyzeSPNPBlocking(t *testing.T) {
	tasks := []Task{
		{Name: "hi", Priority: 1, WCETUS: 2, Event: EventModel{PeriodUS: 100}, DeadlineUS: 100},
		{Name: "lo", Priority: 2, WCETUS: 9, Event: EventModel{PeriodUS: 100}, DeadlineUS: 100},
	}
	res, err := AnalyzeSPNP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	// hi: blocked by lo (9) then transmits (2) = 11.
	if res[0].WCRTUS != 11 {
		t.Fatalf("hi WCRT = %d, want 11", res[0].WCRTUS)
	}
	// lo: interference from hi once (2) then transmits (9) = 11.
	if res[1].WCRTUS != 11 {
		t.Fatalf("lo WCRT = %d, want 11", res[1].WCRTUS)
	}
}

func TestAnalyzeSPNPNoPreemption(t *testing.T) {
	// Once a low-priority frame started, a burst of high-priority frames
	// cannot preempt it; but before start they all interfere.
	tasks := []Task{
		{Name: "hi", Priority: 1, WCETUS: 5, Event: EventModel{PeriodUS: 20}, DeadlineUS: 100},
		{Name: "lo", Priority: 2, WCETUS: 10, Event: EventModel{PeriodUS: 50}, DeadlineUS: 100},
	}
	res, err := AnalyzeSPNP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	// lo q=1: w = 0 + eta_hi(w+1)*5; w=5 -> eta(6)=1 -> 5; resp = 5+10 = 15.
	if res[1].WCRTUS != 15 {
		t.Fatalf("lo WCRT = %d, want 15", res[1].WCRTUS)
	}
}

func TestDuplicatePriorityRejected(t *testing.T) {
	tasks := []Task{
		{Name: "a", Priority: 1, WCETUS: 1, Event: EventModel{PeriodUS: 10}, DeadlineUS: 10},
		{Name: "b", Priority: 1, WCETUS: 1, Event: EventModel{PeriodUS: 10}, DeadlineUS: 10},
	}
	if _, err := AnalyzeSPP(tasks); err == nil {
		t.Fatal("duplicate priorities accepted")
	}
}

func TestInvalidTaskRejected(t *testing.T) {
	bad := []Task{{Name: "a", Priority: 1, WCETUS: 0, Event: EventModel{PeriodUS: 10}, DeadlineUS: 10}}
	if _, err := AnalyzeSPP(bad); err == nil {
		t.Fatal("zero WCET accepted")
	}
	bad[0].WCETUS = 1
	bad[0].Event.PeriodUS = 0
	if _, err := AnalyzeSPP(bad); err == nil {
		t.Fatal("zero period accepted")
	}
	bad[0].Event.PeriodUS = 10
	bad[0].DeadlineUS = 0
	if _, err := AnalyzeSPP(bad); err == nil {
		t.Fatal("zero deadline accepted")
	}
}

func TestEmptyTaskSet(t *testing.T) {
	res, err := AnalyzeSPP(nil)
	if err != nil || res != nil {
		t.Fatalf("empty set: %v %v", res, err)
	}
}

func TestUtilization(t *testing.T) {
	tasks := []Task{
		{Name: "a", WCETUS: 1, Event: EventModel{PeriodUS: 4}},
		{Name: "b", WCETUS: 2, Event: EventModel{PeriodUS: 8}},
	}
	// 0.25 + 0.25 = 0.5 => 500000 ppm
	if got := Utilization(tasks); got != 500000 {
		t.Fatalf("Utilization = %d, want 500000", got)
	}
}

// Property: WCRT of any converged task is at least its WCET, and the
// highest-priority SPP task's WCRT equals its WCET.
func TestPropWCRTLowerBound(t *testing.T) {
	f := func(c1, c2, c3 uint8, p1, p2, p3 uint8) bool {
		tasks := []Task{
			{Name: "a", Priority: 1, WCETUS: int64(c1%20) + 1, Event: EventModel{PeriodUS: int64(p1%100) + 50}, DeadlineUS: 10000},
			{Name: "b", Priority: 2, WCETUS: int64(c2%20) + 1, Event: EventModel{PeriodUS: int64(p2%100) + 50}, DeadlineUS: 10000},
			{Name: "c", Priority: 3, WCETUS: int64(c3%20) + 1, Event: EventModel{PeriodUS: int64(p3%100) + 50}, DeadlineUS: 10000},
		}
		res, err := AnalyzeSPP(tasks)
		if err != nil {
			return false
		}
		if res[0].WCRTUS != tasks[0].WCETUS {
			return false
		}
		for i, r := range res {
			if r.Converged && r.WCRTUS < tasks[i].WCETUS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a higher-priority task never decreases a lower-priority
// task's WCRT (interference monotonicity).
func TestPropInterferenceMonotone(t *testing.T) {
	f := func(cNew uint8, pNew uint8) bool {
		lo := Task{Name: "lo", Priority: 10, WCETUS: 5, Event: EventModel{PeriodUS: 100}, DeadlineUS: 100000}
		base, err := AnalyzeSPP([]Task{lo})
		if err != nil {
			return false
		}
		hi := Task{
			Name: "hi", Priority: 1,
			WCETUS:     int64(cNew%10) + 1,
			Event:      EventModel{PeriodUS: int64(pNew%50) + 30},
			DeadlineUS: 100000,
		}
		with, err := AnalyzeSPP([]Task{hi, lo})
		if err != nil {
			return false
		}
		var loRes Result
		for _, r := range with {
			if r.Name == "lo" {
				loRes = r
			}
		}
		if !loRes.Converged {
			return true // overload is acceptable; nothing to compare
		}
		return loRes.WCRTUS >= base[0].WCRTUS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: SPNP WCRT >= SPP WCRT never holds in general, but SPNP WCRT of
// the highest-priority task is WCET + max lower blocking exactly when no
// same-priority interference exists.
func TestPropSPNPHighestBlocking(t *testing.T) {
	f := func(cHi, cLo1, cLo2 uint8) bool {
		hi := int64(cHi%10) + 1
		lo1 := int64(cLo1%20) + 1
		lo2 := int64(cLo2%20) + 1
		tasks := []Task{
			{Name: "hi", Priority: 1, WCETUS: hi, Event: EventModel{PeriodUS: 1000}, DeadlineUS: 100000},
			{Name: "lo1", Priority: 2, WCETUS: lo1, Event: EventModel{PeriodUS: 1000}, DeadlineUS: 100000},
			{Name: "lo2", Priority: 3, WCETUS: lo2, Event: EventModel{PeriodUS: 1000}, DeadlineUS: 100000},
		}
		res, err := AnalyzeSPNP(tasks)
		if err != nil {
			return false
		}
		maxLo := lo1
		if lo2 > maxLo {
			maxLo = lo2
		}
		return res[0].WCRTUS == hi+maxLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPathLatency(t *testing.T) {
	stages := []PathStage{
		{WCRTUS: 10, PeriodUS: 100},
		{WCRTUS: 20, PeriodUS: 50, Sampling: true},
		{WCRTUS: 5, PeriodUS: 10},
	}
	if got := PathLatency(stages); got != 10+20+50+5 {
		t.Fatalf("PathLatency = %d", got)
	}
	if PathLatency(nil) != 0 {
		t.Fatal("empty path latency non-zero")
	}
}

func TestSpeedFloor(t *testing.T) {
	// Utilization 0.5 at reference speed: schedulable down to ~0.5 where
	// utilization hits 1 (single task: floor = C/D = 0.5).
	tasks := []Task{
		{Name: "a", Priority: 1, WCETUS: 5000, Event: EventModel{PeriodUS: 10000}, DeadlineUS: 10000},
	}
	floor, ok, err := SpeedFloor(tasks)
	if err != nil || !ok {
		t.Fatalf("floor err=%v ok=%v", err, ok)
	}
	if floor < 0.49 || floor > 0.52 {
		t.Fatalf("floor = %v, want ~0.5", floor)
	}
	// The set is schedulable at the floor and not 5% below it.
	if s, _ := allSchedulable(scaleWCETs(tasks, floor)); !s {
		t.Fatal("unschedulable at its own floor")
	}
	if s, _ := allSchedulable(scaleWCETs(tasks, floor*0.95)); s {
		t.Fatal("schedulable below the floor (not tight)")
	}
}

func TestSpeedFloorUnschedulable(t *testing.T) {
	tasks := []Task{
		{Name: "a", Priority: 1, WCETUS: 9000, Event: EventModel{PeriodUS: 10000}, DeadlineUS: 10000},
		{Name: "b", Priority: 2, WCETUS: 9000, Event: EventModel{PeriodUS: 10000}, DeadlineUS: 10000},
	}
	_, ok, err := SpeedFloor(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("overloaded set reported a floor")
	}
}

// Property: removing a task never raises the speed floor (shedding load
// only increases thermal headroom — E6's design rule).
func TestPropSpeedFloorMonotoneInLoad(t *testing.T) {
	f := func(c1, c2 uint8) bool {
		full := []Task{
			{Name: "crit", Priority: 1, WCETUS: int64(c1%40+10) * 100, Event: EventModel{PeriodUS: 10000}, DeadlineUS: 10000},
			{Name: "bg", Priority: 2, WCETUS: int64(c2%40+10) * 100, Event: EventModel{PeriodUS: 40000}, DeadlineUS: 40000},
		}
		fFull, okFull, err := SpeedFloor(full)
		if err != nil {
			return false
		}
		fShed, okShed, err := SpeedFloor(full[:1])
		if err != nil || !okShed {
			return false
		}
		if !okFull {
			return true // full set unschedulable at 1.0: nothing to compare
		}
		return fShed <= fFull+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBusyWindowMultipleActivations(t *testing.T) {
	// High utilization (0.3 + 0.667 = 0.967) keeps the level-2 busy period
	// open across several activations of t2:
	// q=1: w = 8 + η(w)·3 → 14, resp 14; 14 > 12 keeps the window open.
	// q=2: w = 16 + η(w)·3 → 25, resp 13; 25 > 24 keeps it open.
	// q=3: w = 24 + η(w)·3 → 36, resp 12; 36 <= 36 closes it. WCRT = 14.
	tasks := []Task{
		{Name: "t1", Priority: 1, WCETUS: 3, Event: EventModel{PeriodUS: 10}, DeadlineUS: 10},
		{Name: "t2", Priority: 2, WCETUS: 8, Event: EventModel{PeriodUS: 12}, DeadlineUS: 100},
	}
	res, err := AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !res[1].Converged {
		t.Fatal("t2 did not converge")
	}
	if res[1].BusyWindows != 3 {
		t.Fatalf("expected 3 busy-window activations, got %d", res[1].BusyWindows)
	}
	if res[1].WCRTUS != 14 {
		t.Fatalf("t2 WCRT = %d, want 14", res[1].WCRTUS)
	}
}

func TestJitterLargerThanPeriod(t *testing.T) {
	// J > P means a burst of activations can arrive back-to-back: the
	// busy window must span several activations even for a lone task,
	// and the WCRT of the first burst activation is J + C.
	tasks := []Task{
		{Name: "bursty", Priority: 1, WCETUS: 2000,
			Event: EventModel{PeriodUS: 10000, JitterUS: 25000}, DeadlineUS: 30000},
	}
	res, err := AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if !r.Converged {
		t.Fatal("did not converge")
	}
	if r.WCRTUS != 27000 {
		t.Fatalf("WCRT = %d, want 27000 (J + C)", r.WCRTUS)
	}
	if r.BusyWindows != 4 {
		t.Fatalf("busy window examined %d activations, want 4", r.BusyWindows)
	}
	if !r.Schedulable {
		t.Fatal("27000us WCRT should meet the 30000us deadline")
	}
}

func TestSPNPBlockingFromLoneLowerPriorityTask(t *testing.T) {
	// A single lower-priority frame blocks the highest-priority one for
	// its full transmission time: WCRT = B + C exactly.
	tasks := []Task{
		{Name: "hi", Priority: 1, WCETUS: 1000,
			Event: EventModel{PeriodUS: 100000}, DeadlineUS: 100000},
		{Name: "lo", Priority: 2, WCETUS: 50000,
			Event: EventModel{PeriodUS: 1000000}, DeadlineUS: 1000000},
	}
	res, err := AnalyzeSPNP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Name != "hi" {
		t.Fatalf("results not priority-ordered: %+v", res)
	}
	if res[0].WCRTUS != 51000 {
		t.Fatalf("hi WCRT = %d, want 51000 (B 50000 + C 1000)", res[0].WCRTUS)
	}
	if !res[0].Schedulable || !res[1].Schedulable {
		t.Fatalf("both frames should be schedulable: %+v", res)
	}
}

func TestExactFullUtilizationRejected(t *testing.T) {
	// Utilization of exactly 100% must be rejected (busy window would
	// never close over the integer time base).
	tasks := []Task{
		{Name: "a", Priority: 1, WCETUS: 5000, Event: EventModel{PeriodUS: 10000}, DeadlineUS: 10000},
		{Name: "b", Priority: 2, WCETUS: 10000, Event: EventModel{PeriodUS: 20000}, DeadlineUS: 20000},
	}
	if got := Utilization(tasks); got != 1_000_000 {
		t.Fatalf("utilization = %d ppm, want exactly 1000000", got)
	}
	res, err := AnalyzeSPP(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Converged || !res[0].Schedulable {
		t.Fatalf("task a alone is at 50%%, should converge: %+v", res[0])
	}
	if res[1].Converged || res[1].Schedulable {
		t.Fatalf("task b at cumulative 100%% must not converge: %+v", res[1])
	}
}
