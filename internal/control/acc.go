// Package control implements the Adaptive Cruise Control driving function
// of the paper's Section IV example: target selection, distance and speed
// control, driver-intent input, and — central to functional self-awareness
// — a control-performance self-assessment: "each function must be able to
// assess its current performance and be able to autonomously isolate
// faults" ([21]: self-awareness of control applications, reacting "to
// decreased control performance due to operating conditions that have not
// been anticipated").
package control

import (
	"math"

	"repro/internal/sensors"
)

// Mode is the active ACC control mode.
type Mode int

// Control modes.
const (
	// SpeedMode: free driving, tracking the set speed.
	SpeedMode Mode = iota
	// DistanceMode: following a lead vehicle at the desired gap.
	DistanceMode
)

func (m Mode) String() string {
	if m == SpeedMode {
		return "speed"
	}
	return "distance"
}

// DriverIntent is the HMI input: what the driver asked for.
type DriverIntent struct {
	// SetSpeed is the desired cruise speed (m/s).
	SetSpeed float64
	// HeadwayS is the desired time gap to the lead vehicle (s).
	HeadwayS float64
}

// Config holds the controller gains and limits.
type Config struct {
	// StandstillGap is the minimum gap at rest (m).
	StandstillGap float64
	// MaxAccel and MaxDecel bound the commanded acceleration (m/s^2).
	MaxAccel float64
	MaxDecel float64
	// KpSpeed is the speed-loop proportional gain.
	KpSpeed float64
	// KpGap and KdGap are the distance-loop gains.
	KpGap float64
	KdGap float64
	// FollowRange: targets farther than this are ignored (m).
	FollowRange float64
	// PerfAlpha is the EWMA coefficient of the performance estimate.
	PerfAlpha float64
}

// DefaultConfig returns well-damped gains for a passenger vehicle.
func DefaultConfig() Config {
	return Config{
		StandstillGap: 4,
		MaxAccel:      2.0,
		MaxDecel:      3.5,
		KpSpeed:       0.6,
		KpGap:         0.25,
		KdGap:         0.8,
		FollowRange:   120,
		PerfAlpha:     0.05,
	}
}

// ACC is the adaptive cruise controller with performance self-assessment.
type ACC struct {
	cfg    Config
	intent DriverIntent

	mode Mode

	// ewmaErr is the exponentially weighted normalized tracking error,
	// the basis of the self-assessment.
	ewmaErr float64

	// Steps counts control cycles.
	Steps int
}

// New creates an ACC with the given configuration and initial intent.
func New(cfg Config, intent DriverIntent) *ACC {
	return &ACC{cfg: cfg, intent: intent}
}

// SetIntent updates the driver's request (from the HMI data source).
func (a *ACC) SetIntent(i DriverIntent) { a.intent = i }

// Intent returns the current driver intent.
func (a *ACC) Intent() DriverIntent { return a.intent }

// Mode returns the active control mode.
func (a *ACC) Mode() Mode { return a.mode }

// SelectTarget implements the target-selection skill: from the candidate
// measurements it picks the nearest in-range object, or none.
func (a *ACC) SelectTarget(candidates []sensors.RangeMeasurement) (sensors.RangeMeasurement, bool) {
	best := sensors.RangeMeasurement{Gap: math.Inf(1)}
	found := false
	for _, c := range candidates {
		if c.Gap < 0 || c.Gap > a.cfg.FollowRange {
			continue
		}
		if c.Gap < best.Gap {
			best = c
			found = true
		}
	}
	return best, found
}

// DesiredGap returns the gap the controller aims for at the given speed.
func (a *ACC) DesiredGap(speed float64) float64 {
	return a.cfg.StandstillGap + a.intent.HeadwayS*speed
}

// Step computes one acceleration command from the ego speed and the
// selected target (nil when free driving). maxSpeed, if > 0, caps the
// tracked speed below the driver's set speed — the ability layer installs
// such a cap when braking is degraded.
func (a *ACC) Step(egoSpeed float64, target *sensors.RangeMeasurement, maxSpeed float64) float64 {
	a.Steps++
	set := a.intent.SetSpeed
	if maxSpeed > 0 && maxSpeed < set {
		set = maxSpeed
	}

	// Speed loop.
	speedCmd := a.cfg.KpSpeed * (set - egoSpeed)

	cmd := speedCmd
	a.mode = SpeedMode
	var normErr float64
	if set > 0 {
		normErr = math.Abs(set-egoSpeed) / math.Max(set, 1)
	}

	if target != nil {
		desired := a.DesiredGap(egoSpeed)
		gapErr := target.Gap - desired
		distCmd := a.cfg.KpGap*gapErr + a.cfg.KdGap*target.RelSpeed
		// The more restrictive command wins (never accelerate into the
		// lead vehicle to chase the set speed).
		if distCmd < cmd {
			cmd = distCmd
			a.mode = DistanceMode
			normErr = math.Abs(gapErr) / math.Max(desired, 1)
		}
	}

	if cmd > a.cfg.MaxAccel {
		cmd = a.cfg.MaxAccel
	}
	if cmd < -a.cfg.MaxDecel {
		cmd = -a.cfg.MaxDecel
	}

	// Self-assessment update.
	a.ewmaErr = (1-a.cfg.PerfAlpha)*a.ewmaErr + a.cfg.PerfAlpha*normErr
	return cmd
}

// Performance returns the controller's self-assessed performance in [0,1]:
// 1 when the tracking error vanishes, decaying as the normalized EWMA
// error grows. This value drives the control-skill health in the ability
// graph.
func (a *ACC) Performance() float64 {
	// Map EWMA error through a soft knee: err 0 -> 1.0, err 0.25 -> ~0.5,
	// err >= 1 -> ~0.
	p := 1 - 2*a.ewmaErr
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// ResetPerformance clears the self-assessment (e.g. after reconfiguration).
func (a *ACC) ResetPerformance() { a.ewmaErr = 0 }
