package control

import (
	"testing"

	"repro/internal/sensors"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

func TestSpeedModeTracksSetSpeed(t *testing.T) {
	acc := New(DefaultConfig(), DriverIntent{SetSpeed: 25, HeadwayS: 1.8})
	v := vehicle.New(vehicle.DefaultParams())
	for i := 0; i < 3000; i++ {
		cmd := acc.Step(v.Speed(), nil, 0)
		v.Step(cmd, 0.02)
	}
	if acc.Mode() != SpeedMode {
		t.Fatalf("mode = %v", acc.Mode())
	}
	if v.Speed() < 23 || v.Speed() > 26 {
		t.Fatalf("speed = %.2f, want ~25", v.Speed())
	}
	if p := acc.Performance(); p < 0.8 {
		t.Fatalf("performance = %v after convergence", p)
	}
}

func TestDistanceModeHoldsGap(t *testing.T) {
	acc := New(DefaultConfig(), DriverIntent{SetSpeed: 30, HeadwayS: 1.8})
	ego := vehicle.New(vehicle.DefaultParams())
	ego.SetSpeed(25)
	leadSpeed := 20.0
	gap := 60.0
	const dt = 0.02
	for i := 0; i < 6000; i++ {
		m := sensors.RangeMeasurement{Gap: gap, RelSpeed: leadSpeed - ego.Speed(), At: sim.Time(i)}
		cmd := acc.Step(ego.Speed(), &m, 0)
		before := ego.Position()
		ego.Step(cmd, dt)
		gap += leadSpeed*dt - (ego.Position() - before)
	}
	// Converged to lead speed at the desired gap.
	if ego.Speed() < 18.5 || ego.Speed() > 21.5 {
		t.Fatalf("ego speed = %.2f, want ~20", ego.Speed())
	}
	want := acc.DesiredGap(ego.Speed())
	if gap < want-5 || gap > want+5 {
		t.Fatalf("gap = %.1f, want ~%.1f", gap, want)
	}
	if acc.Mode() != DistanceMode {
		t.Fatalf("mode = %v", acc.Mode())
	}
}

func TestNeverAcceleratesIntoLead(t *testing.T) {
	acc := New(DefaultConfig(), DriverIntent{SetSpeed: 30, HeadwayS: 1.8})
	// Very close slow lead: command must be braking even though ego is
	// below set speed.
	m := sensors.RangeMeasurement{Gap: 5, RelSpeed: -10}
	cmd := acc.Step(20, &m, 0)
	if cmd >= 0 {
		t.Fatalf("cmd = %.2f, want braking", cmd)
	}
}

func TestSpeedCapFromAbilityLayer(t *testing.T) {
	acc := New(DefaultConfig(), DriverIntent{SetSpeed: 30, HeadwayS: 1.8})
	v := vehicle.New(vehicle.DefaultParams())
	for i := 0; i < 3000; i++ {
		cmd := acc.Step(v.Speed(), nil, 15) // ability layer caps at 15
		v.Step(cmd, 0.02)
	}
	if v.Speed() > 16 {
		t.Fatalf("speed = %.2f exceeds cap 15", v.Speed())
	}
}

func TestSelectTargetNearestInRange(t *testing.T) {
	acc := New(DefaultConfig(), DriverIntent{SetSpeed: 30})
	cands := []sensors.RangeMeasurement{
		{Gap: 80}, {Gap: 40}, {Gap: 200}, {Gap: -3},
	}
	got, ok := acc.SelectTarget(cands)
	if !ok || got.Gap != 40 {
		t.Fatalf("target = %v %v", got, ok)
	}
	_, ok = acc.SelectTarget([]sensors.RangeMeasurement{{Gap: 500}})
	if ok {
		t.Fatal("out-of-range target selected")
	}
	_, ok = acc.SelectTarget(nil)
	if ok {
		t.Fatal("target from empty set")
	}
}

func TestCommandsBounded(t *testing.T) {
	cfg := DefaultConfig()
	acc := New(cfg, DriverIntent{SetSpeed: 100, HeadwayS: 1})
	if cmd := acc.Step(0, nil, 0); cmd > cfg.MaxAccel {
		t.Fatalf("cmd %v exceeds MaxAccel", cmd)
	}
	m := sensors.RangeMeasurement{Gap: 1, RelSpeed: -30}
	if cmd := acc.Step(40, &m, 0); cmd < -cfg.MaxDecel {
		t.Fatalf("cmd %v exceeds MaxDecel", cmd)
	}
}

func TestPerformanceDegradesUnderDisturbance(t *testing.T) {
	// A noisy/biased measurement stream keeps the tracking error high:
	// the self-assessment must notice.
	acc := New(DefaultConfig(), DriverIntent{SetSpeed: 25, HeadwayS: 1.8})
	ego := vehicle.New(vehicle.DefaultParams())
	ego.SetSpeed(20)
	rng := sim.NewRNG(42)
	gap := 40.0
	leadSpeed := 20.0
	const dt = 0.02
	// Converge first.
	for i := 0; i < 4000; i++ {
		m := sensors.RangeMeasurement{Gap: gap, RelSpeed: leadSpeed - ego.Speed()}
		cmd := acc.Step(ego.Speed(), &m, 0)
		before := ego.Position()
		ego.Step(cmd, dt)
		gap += leadSpeed*dt - (ego.Position() - before)
	}
	good := acc.Performance()
	// Now corrupt the measurements with a huge random bias.
	for i := 0; i < 4000; i++ {
		m := sensors.RangeMeasurement{
			Gap:      gap + rng.Uniform(-25, 25),
			RelSpeed: leadSpeed - ego.Speed() + rng.Uniform(-5, 5),
		}
		cmd := acc.Step(ego.Speed(), &m, 0)
		before := ego.Position()
		ego.Step(cmd, dt)
		gap += leadSpeed*dt - (ego.Position() - before)
	}
	bad := acc.Performance()
	if bad >= good {
		t.Fatalf("performance did not degrade: %.3f -> %.3f", good, bad)
	}
}

func TestResetPerformance(t *testing.T) {
	acc := New(DefaultConfig(), DriverIntent{SetSpeed: 25})
	// Large initial error.
	acc.Step(0, nil, 0)
	if acc.Performance() >= 1 {
		t.Fatal("no error accumulated")
	}
	acc.ResetPerformance()
	if acc.Performance() != 1 {
		t.Fatalf("after reset = %v", acc.Performance())
	}
}

func TestModeString(t *testing.T) {
	if SpeedMode.String() != "speed" || DistanceMode.String() != "distance" {
		t.Fatal("mode names")
	}
}

func TestIntentUpdate(t *testing.T) {
	acc := New(DefaultConfig(), DriverIntent{SetSpeed: 25, HeadwayS: 1.8})
	acc.SetIntent(DriverIntent{SetSpeed: 10, HeadwayS: 2.5})
	if acc.Intent().SetSpeed != 10 || acc.Intent().HeadwayS != 2.5 {
		t.Fatalf("intent = %+v", acc.Intent())
	}
	if acc.DesiredGap(10) != 4+25 {
		t.Fatalf("desired gap = %v", acc.DesiredGap(10))
	}
}
