// Package safety implements the safety viewpoint of the CCC model domain:
// ASIL placement and redundancy acceptance checks used by the MCC
// (Section II.A), FMEA tables and fault-tree evaluation as the classical
// baseline the paper contrasts with automated cross-layer dependency
// analysis (Section V: "in traditional design, such dependencies are
// identified with semiformal methods, such as a Failure Mode and Effects
// Analysis"), and the redundancy concepts (hot/cold standby) of the
// RACE/SAFER baselines discussed in Section IV.
package safety

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Finding is one safety-viewpoint analysis result.
type Finding struct {
	// Rule names the violated check.
	Rule string
	// Subject names the offending entity.
	Subject string
	// Detail explains the violation.
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Rule, f.Subject, f.Detail)
}

// CheckPlacement verifies that every instance runs on a processor certified
// for the function's safety level.
func CheckPlacement(t *model.TechnicalArchitecture) []Finding {
	var out []Finding
	for _, in := range t.Instances {
		f := t.Func.FunctionByName(in.Function)
		p := t.Platform.ProcessorByName(in.Processor)
		if f == nil || p == nil {
			continue // structural validation reports these
		}
		if f.Contract.Safety > p.MaxSafety {
			out = append(out, Finding{
				Rule:    "asil-placement",
				Subject: in.ID(),
				Detail: fmt.Sprintf("requires %v but processor %q is certified for %v only",
					f.Contract.Safety, p.Name, p.MaxSafety),
			})
		}
	}
	return out
}

// CheckRedundancy verifies that fail-operational functions are replicated
// on disjoint processors (no single point of failure).
func CheckRedundancy(t *model.TechnicalArchitecture) []Finding {
	var out []Finding
	for i := range t.Func.Functions {
		f := &t.Func.Functions[i]
		if !f.Contract.FailOperational {
			continue
		}
		inst := t.InstancesOf(f.Name)
		if len(inst) < 2 {
			out = append(out, Finding{
				Rule:    "fail-operational-redundancy",
				Subject: f.Name,
				Detail:  fmt.Sprintf("fail-operational but deployed %d time(s); need >= 2 replicas", len(inst)),
			})
			continue
		}
		procs := make(map[string]bool)
		for _, in := range inst {
			procs[in.Processor] = true
		}
		if len(procs) < 2 {
			out = append(out, Finding{
				Rule:    "fail-operational-redundancy",
				Subject: f.Name,
				Detail:  "all replicas share one processor: single point of failure",
			})
		}
	}
	return out
}

// CheckMemoryBudgets verifies that per-processor RAM demands fit capacity.
func CheckMemoryBudgets(t *model.TechnicalArchitecture) []Finding {
	var out []Finding
	demand := make(map[string]int64)
	for _, in := range t.Instances {
		f := t.Func.FunctionByName(in.Function)
		if f == nil {
			continue
		}
		demand[in.Processor] += f.Contract.Resources.RAMKiB
	}
	procs := make([]string, 0, len(demand))
	for p := range demand {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	for _, pn := range procs {
		p := t.Platform.ProcessorByName(pn)
		if p == nil {
			continue
		}
		if demand[pn] > p.RAMKiB {
			out = append(out, Finding{
				Rule:    "memory-budget",
				Subject: pn,
				Detail:  fmt.Sprintf("demand %d KiB exceeds capacity %d KiB", demand[pn], p.RAMKiB),
			})
		}
	}
	return out
}

// Check runs all structural safety checks.
func Check(t *model.TechnicalArchitecture) []Finding {
	var out []Finding
	out = append(out, CheckPlacement(t)...)
	out = append(out, CheckRedundancy(t)...)
	out = append(out, CheckMemoryBudgets(t)...)
	return out
}

// FailureMode is one FMEA row.
type FailureMode struct {
	Component string
	Mode      string
	Effect    string
	// Severity, Occurrence, Detection on the usual 1..10 scales.
	Severity   int
	Occurrence int
	Detection  int
}

// RPN returns the risk priority number S*O*D.
func (f FailureMode) RPN() int { return f.Severity * f.Occurrence * f.Detection }

// Validate checks the 1..10 scales.
func (f FailureMode) Validate() error {
	for _, v := range []int{f.Severity, f.Occurrence, f.Detection} {
		if v < 1 || v > 10 {
			return fmt.Errorf("safety: FMEA scale value %d outside 1..10 for %s/%s", v, f.Component, f.Mode)
		}
	}
	return nil
}

// FMEA is a failure mode and effects analysis table.
type FMEA struct {
	Modes []FailureMode
}

// Add appends a validated failure mode.
func (f *FMEA) Add(m FailureMode) error {
	if err := m.Validate(); err != nil {
		return err
	}
	f.Modes = append(f.Modes, m)
	return nil
}

// RankedByRPN returns modes sorted by descending RPN (ties by component,
// then mode, for determinism).
func (f *FMEA) RankedByRPN() []FailureMode {
	out := make([]FailureMode, len(f.Modes))
	copy(out, f.Modes)
	sort.Slice(out, func(i, j int) bool {
		if out[i].RPN() != out[j].RPN() {
			return out[i].RPN() > out[j].RPN()
		}
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		return out[i].Mode < out[j].Mode
	})
	return out
}

// Above returns the modes with RPN >= threshold.
func (f *FMEA) Above(threshold int) []FailureMode {
	var out []FailureMode
	for _, m := range f.RankedByRPN() {
		if m.RPN() >= threshold {
			out = append(out, m)
		}
	}
	return out
}
