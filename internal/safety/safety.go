// Package safety implements the safety viewpoint of the CCC model domain:
// ASIL placement and redundancy acceptance checks used by the MCC
// (Section II.A), FMEA tables and fault-tree evaluation as the classical
// baseline the paper contrasts with automated cross-layer dependency
// analysis (Section V: "in traditional design, such dependencies are
// identified with semiformal methods, such as a Failure Mode and Effects
// Analysis"), and the redundancy concepts (hot/cold standby) of the
// RACE/SAFER baselines discussed in Section IV.
package safety

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Finding is one safety-viewpoint analysis result.
type Finding struct {
	// Rule names the violated check.
	Rule string
	// Subject names the offending entity.
	Subject string
	// Detail explains the violation.
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Rule, f.Subject, f.Detail)
}

// The per-entity rules below are the single source of truth shared by the
// from-scratch checks and their diff-scoped variants, so the two paths
// cannot drift apart: a scoped finding is a full-check finding by
// construction wherever the splice contract of CheckScoped holds.

// placementFinding applies the ASIL placement rule to one instance. Nil
// function or processor means the instance references an entity the
// structural validation reports; the safety viewpoint skips it.
func placementFinding(f *model.Function, p *model.Processor, in model.Instance) (Finding, bool) {
	if f == nil || p == nil {
		return Finding{}, false // structural validation reports these
	}
	if f.Contract.Safety <= p.MaxSafety {
		return Finding{}, false
	}
	return Finding{
		Rule:    "asil-placement",
		Subject: in.ID(),
		Detail: fmt.Sprintf("requires %v but processor %q is certified for %v only",
			f.Contract.Safety, p.Name, p.MaxSafety),
	}, true
}

// redundancyFinding applies the fail-operational redundancy rule to one
// function given the processors its replicas run on.
func redundancyFinding(f *model.Function, replicaProcs []string) (Finding, bool) {
	if len(replicaProcs) < 2 {
		return Finding{
			Rule:    "fail-operational-redundancy",
			Subject: f.Name,
			Detail:  fmt.Sprintf("fail-operational but deployed %d time(s); need >= 2 replicas", len(replicaProcs)),
		}, true
	}
	procs := make(map[string]bool, len(replicaProcs))
	for _, pn := range replicaProcs {
		procs[pn] = true
	}
	if len(procs) < 2 {
		return Finding{
			Rule:    "fail-operational-redundancy",
			Subject: f.Name,
			Detail:  "all replicas share one processor: single point of failure",
		}, true
	}
	return Finding{}, false
}

// memoryFinding applies the RAM budget rule to one processor's aggregate
// demand.
func memoryFinding(p *model.Processor, demandKiB int64) (Finding, bool) {
	if p == nil || demandKiB <= p.RAMKiB {
		return Finding{}, false
	}
	return Finding{
		Rule:    "memory-budget",
		Subject: p.Name,
		Detail:  fmt.Sprintf("demand %d KiB exceeds capacity %d KiB", demandKiB, p.RAMKiB),
	}, true
}

// lookups memoizes the function/processor resolution of one check pass:
// the scoped path touches a handful of entities and resolves them lazily,
// the full path pays one linear scan per distinct name instead of one per
// instance.
type lookups struct {
	t   *model.TechnicalArchitecture
	fns map[string]*model.Function
	prs map[string]*model.Processor
}

func newLookups(t *model.TechnicalArchitecture) *lookups {
	return &lookups{t: t, fns: make(map[string]*model.Function), prs: make(map[string]*model.Processor)}
}

func (l *lookups) fn(name string) *model.Function {
	f, ok := l.fns[name]
	if !ok {
		f = l.t.Func.FunctionByName(name)
		l.fns[name] = f
	}
	return f
}

func (l *lookups) proc(name string) *model.Processor {
	p, ok := l.prs[name]
	if !ok {
		p = l.t.Platform.ProcessorByName(name)
		l.prs[name] = p
	}
	return p
}

// checkPlacementScoped verifies the ASIL placement of every instance of a
// touched function (all instances when touched is nil), in the model's
// canonical instance order.
func checkPlacementScoped(t *model.TechnicalArchitecture, touched func(string) bool, look *lookups) ([]Finding, int) {
	var out []Finding
	checked := 0
	for _, in := range t.Instances {
		if touched != nil && !touched(in.Function) {
			continue
		}
		checked++
		if fd, bad := placementFinding(look.fn(in.Function), look.proc(in.Processor), in); bad {
			out = append(out, fd)
		}
	}
	return out, checked
}

// checkRedundancyScoped verifies the replica separation of every touched
// fail-operational function (all of them when touched is nil), in
// architecture order.
func checkRedundancyScoped(t *model.TechnicalArchitecture, touched func(string) bool, _ *lookups) ([]Finding, int) {
	var out []Finding
	checked := 0
	var replicaProcs map[string][]string
	for i := range t.Func.Functions {
		f := &t.Func.Functions[i]
		if touched != nil && !touched(f.Name) {
			continue
		}
		if !f.Contract.FailOperational {
			continue
		}
		if replicaProcs == nil {
			// One instance pass groups the replica placements of every
			// function; amortized over all fail-operational verdicts of
			// this check, scoped or full.
			replicaProcs = make(map[string][]string)
			for _, in := range t.Instances {
				replicaProcs[in.Function] = append(replicaProcs[in.Function], in.Processor)
			}
		}
		checked++
		if fd, bad := redundancyFinding(f, replicaProcs[f.Name]); bad {
			out = append(out, fd)
		}
	}
	// Name-sorted emission: the scan above visits functions in
	// architecture order, the entity-driven variant (CheckEntities) only
	// has the touched names — sorting both makes every path emit the same
	// finding sequence, which the serial-vs-incremental report parity of
	// the MCC depends on. One finding per function, so the order is total.
	sort.Slice(out, func(i, j int) bool { return out[i].Subject < out[j].Subject })
	return out, checked
}

// checkMemoryScoped verifies the RAM budget of every selected processor
// (all loaded processors when procs is nil), in name order.
func checkMemoryScoped(t *model.TechnicalArchitecture, procs func(string) bool, look *lookups) ([]Finding, int) {
	demand := make(map[string]int64)
	for _, in := range t.Instances {
		if procs != nil && !procs(in.Processor) {
			continue
		}
		f := look.fn(in.Function)
		if f == nil {
			continue
		}
		demand[in.Processor] += f.Contract.Resources.RAMKiB
	}
	names := make([]string, 0, len(demand))
	for pn := range demand {
		names = append(names, pn)
	}
	sort.Strings(names)
	var out []Finding
	for _, pn := range names {
		if fd, bad := memoryFinding(look.proc(pn), demand[pn]); bad {
			out = append(out, fd)
		}
	}
	return out, len(names)
}

// CheckPlacement verifies that every instance runs on a processor certified
// for the function's safety level.
func CheckPlacement(t *model.TechnicalArchitecture) []Finding {
	out, _ := checkPlacementScoped(t, nil, newLookups(t))
	return out
}

// CheckRedundancy verifies that fail-operational functions are replicated
// on disjoint processors (no single point of failure).
func CheckRedundancy(t *model.TechnicalArchitecture) []Finding {
	out, _ := checkRedundancyScoped(t, nil, newLookups(t))
	return out
}

// CheckMemoryBudgets verifies that per-processor RAM demands fit capacity.
func CheckMemoryBudgets(t *model.TechnicalArchitecture) []Finding {
	out, _ := checkMemoryScoped(t, nil, newLookups(t))
	return out
}

// Check runs all structural safety checks.
func Check(t *model.TechnicalArchitecture) []Finding {
	out, _ := CheckScoped(t, nil, nil)
	return out
}

// CheckScoped runs the safety checks restricted to the diff scope:
// touched selects the function names whose contract or replica placement
// the change can have altered (their instances are re-checked for ASIL
// placement and their fail-operational groups for redundancy), procs the
// processors whose memory demand it can have shifted. Everything outside
// the scope is spliced as committed-clean — a configuration is only
// committed after the full check passed, so an untouched entity with
// unchanged inputs cannot carry a finding. nil predicates select
// everything (the full check). The returned count is the number of
// per-entity verdicts actually computed — the SafetyChecks telemetry.
//
// Splice contract: the findings are element-for-element identical to
// Check(t) provided every skipped instance/function/processor belongs to
// a committed configuration that passed the full check, with its
// function contract, replica placements, and aggregate processor demand
// unchanged since that commit. The MCC guarantees exactly that by
// deriving touched from the function-level diff and procs from the
// partial synthesis' affected-processor set under the warm-started
// mapping (untouched instances keep their placement).
func CheckScoped(t *model.TechnicalArchitecture, touched func(string) bool, procs func(string) bool) ([]Finding, int) {
	look := newLookups(t)
	out, checked := checkPlacementScoped(t, touched, look)
	red, n := checkRedundancyScoped(t, touched, look)
	out = append(out, red...)
	checked += n
	mem, n := checkMemoryScoped(t, procs, look)
	out = append(out, mem...)
	checked += n
	return out, checked
}

// CheckEntities runs the diff-scoped safety checks driven by explicit
// entity lists instead of architecture scans. CheckScoped restricts full
// walks over t.Instances and t.Func.Functions with predicates — still
// O(platform) per proposal even for a one-function change — while this
// variant visits exactly the named entities through caller-supplied
// resolvers, so its cost is the size of the change footprint. The
// verdicts come from the same per-entity rules (placementFinding,
// redundancyFinding, memoryFinding), and the emission order matches
// CheckScoped: placement findings in canonical (function, replica) order
// restricted to the touched functions, redundancy findings name-sorted,
// memory findings processor-name-sorted.
//
// touched must be name-sorted and duplicate-free, affectedProcs
// name-sorted. instancesOf returns a touched function's candidate
// replicas replica-ascending (empty for a removed function); residentsOn
// returns every candidate instance hosted on an affected processor. fn
// and proc resolve candidate functions and platform processors by name
// (nil for unknown, exactly like the lookup misses of the scan-based
// path). The splice contract of CheckScoped applies unchanged: entities
// outside the lists must be committed-clean with unchanged inputs.
func CheckEntities(
	touched, affectedProcs []string,
	fn func(string) *model.Function,
	proc func(string) *model.Processor,
	instancesOf func(string) []model.Instance,
	residentsOn func(string) []model.Instance,
) ([]Finding, int) {
	var out []Finding
	checked := 0
	// ASIL placement of every candidate replica of a touched function.
	for _, name := range touched {
		f := fn(name)
		for _, in := range instancesOf(name) {
			checked++
			if fd, bad := placementFinding(f, proc(in.Processor), in); bad {
				out = append(out, fd)
			}
		}
	}
	// Fail-operational redundancy of the touched functions still present
	// in the candidate; touched is sorted, so the emission is name-sorted
	// like checkRedundancyScoped's.
	for _, name := range touched {
		f := fn(name)
		if f == nil || !f.Contract.FailOperational {
			continue
		}
		checked++
		ins := instancesOf(name)
		replicaProcs := make([]string, len(ins))
		for i, in := range ins {
			replicaProcs[i] = in.Processor
		}
		if fd, bad := redundancyFinding(f, replicaProcs); bad {
			out = append(out, fd)
		}
	}
	// RAM budget of every affected processor. A processor none of whose
	// residents resolve gets no verdict — the map-based path never creates
	// its demand entry, so counting it here would skew the telemetry
	// parity (and verdict a processor the full check skips).
	for _, pn := range affectedProcs {
		var demand int64
		resolved := false
		for _, in := range residentsOn(pn) {
			f := fn(in.Function)
			if f == nil {
				continue
			}
			resolved = true
			demand += f.Contract.Resources.RAMKiB
		}
		if !resolved {
			continue
		}
		checked++
		if fd, bad := memoryFinding(proc(pn), demand); bad {
			out = append(out, fd)
		}
	}
	return out, checked
}

// FailureMode is one FMEA row.
type FailureMode struct {
	Component string
	Mode      string
	Effect    string
	// Severity, Occurrence, Detection on the usual 1..10 scales.
	Severity   int
	Occurrence int
	Detection  int
}

// RPN returns the risk priority number S*O*D.
func (f FailureMode) RPN() int { return f.Severity * f.Occurrence * f.Detection }

// Validate checks the 1..10 scales.
func (f FailureMode) Validate() error {
	for _, v := range []int{f.Severity, f.Occurrence, f.Detection} {
		if v < 1 || v > 10 {
			return fmt.Errorf("safety: FMEA scale value %d outside 1..10 for %s/%s", v, f.Component, f.Mode)
		}
	}
	return nil
}

// FMEA is a failure mode and effects analysis table.
type FMEA struct {
	Modes []FailureMode
}

// Add appends a validated failure mode.
func (f *FMEA) Add(m FailureMode) error {
	if err := m.Validate(); err != nil {
		return err
	}
	f.Modes = append(f.Modes, m)
	return nil
}

// RankedByRPN returns modes sorted by descending RPN (ties by component,
// then mode, for determinism).
func (f *FMEA) RankedByRPN() []FailureMode {
	out := make([]FailureMode, len(f.Modes))
	copy(out, f.Modes)
	sort.Slice(out, func(i, j int) bool {
		if out[i].RPN() != out[j].RPN() {
			return out[i].RPN() > out[j].RPN()
		}
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		return out[i].Mode < out[j].Mode
	})
	return out
}

// Above returns the modes with RPN >= threshold.
func (f *FMEA) Above(threshold int) []FailureMode {
	var out []FailureMode
	for _, m := range f.RankedByRPN() {
		if m.RPN() >= threshold {
			out = append(out, m)
		}
	}
	return out
}
