package safety

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GateKind is the logic of a fault-tree gate.
type GateKind int

// Gate kinds.
const (
	// AND: the output event occurs only if all inputs occur.
	AND GateKind = iota
	// OR: the output event occurs if any input occurs.
	OR
	// KofN: the output occurs if at least K inputs occur.
	KofN
)

// FTNode is a node in a fault tree: either a basic event with a failure
// probability, or a gate over child nodes.
type FTNode struct {
	Name string
	// Basic marks a leaf; Prob is its failure probability.
	Basic bool
	Prob  float64
	// Gate fields (non-basic nodes).
	Kind     GateKind
	K        int // for KofN
	Children []*FTNode
}

// BasicEvent returns a leaf with the given failure probability.
func BasicEvent(name string, prob float64) *FTNode {
	return &FTNode{Name: name, Basic: true, Prob: prob}
}

// Gate returns an internal node of the given kind.
func Gate(name string, kind GateKind, children ...*FTNode) *FTNode {
	return &FTNode{Name: name, Kind: kind, Children: children}
}

// VoteGate returns a K-of-N gate.
func VoteGate(name string, k int, children ...*FTNode) *FTNode {
	return &FTNode{Name: name, Kind: KofN, K: k, Children: children}
}

// Validate checks probabilities and gate arities.
func (n *FTNode) Validate() error {
	if n.Basic {
		if n.Prob < 0 || n.Prob > 1 {
			return fmt.Errorf("safety: event %q probability %v outside [0,1]", n.Name, n.Prob)
		}
		return nil
	}
	if len(n.Children) == 0 {
		return fmt.Errorf("safety: gate %q has no children", n.Name)
	}
	if n.Kind == KofN && (n.K < 1 || n.K > len(n.Children)) {
		return fmt.Errorf("safety: gate %q K=%d outside 1..%d", n.Name, n.K, len(n.Children))
	}
	for _, c := range n.Children {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Probability evaluates the top-event probability assuming independent
// basic events (the standard bottom-up evaluation).
func (n *FTNode) Probability() float64 {
	if n.Basic {
		return n.Prob
	}
	probs := make([]float64, len(n.Children))
	for i, c := range n.Children {
		probs[i] = c.Probability()
	}
	switch n.Kind {
	case AND:
		p := 1.0
		for _, q := range probs {
			p *= q
		}
		return p
	case OR:
		p := 1.0
		for _, q := range probs {
			p *= 1 - q
		}
		return 1 - p
	case KofN:
		return kOfNProb(probs, n.K)
	}
	return math.NaN()
}

// kOfNProb computes P(at least k of the independent events occur) by
// dynamic programming over the exact distribution of the count.
func kOfNProb(probs []float64, k int) float64 {
	// dist[i] = P(exactly i events occurred so far)
	dist := make([]float64, len(probs)+1)
	dist[0] = 1
	for _, p := range probs {
		for i := len(dist) - 1; i >= 1; i-- {
			dist[i] = dist[i]*(1-p) + dist[i-1]*p
		}
		dist[0] *= 1 - p
	}
	var sum float64
	for i := k; i < len(dist); i++ {
		sum += dist[i]
	}
	return sum
}

// MinimalCutSets returns the minimal cut sets of the tree (sets of basic
// events whose joint occurrence causes the top event), via the classical
// top-down expansion with absorption. Exponential in the worst case; fine
// for the vehicle-scale trees used here.
func (n *FTNode) MinimalCutSets() [][]string {
	sets := n.cutSets()
	return minimize(sets)
}

func (n *FTNode) cutSets() [][]string {
	if n.Basic {
		return [][]string{{n.Name}}
	}
	switch n.Kind {
	case OR:
		var out [][]string
		for _, c := range n.Children {
			out = append(out, c.cutSets()...)
		}
		return out
	case AND:
		out := [][]string{{}}
		for _, c := range n.Children {
			out = cross(out, c.cutSets())
		}
		return out
	case KofN:
		// Expand as OR over all K-subsets ANDed.
		var out [][]string
		idx := make([]int, n.K)
		var rec func(start, depth int)
		rec = func(start, depth int) {
			if depth == n.K {
				acc := [][]string{{}}
				for _, i := range idx {
					acc = cross(acc, n.Children[i].cutSets())
				}
				out = append(out, acc...)
				return
			}
			for i := start; i < len(n.Children); i++ {
				idx[depth] = i
				rec(i+1, depth+1)
			}
		}
		rec(0, 0)
		return out
	}
	return nil
}

// cross combines every set in a with every set in b (union, deduplicated).
func cross(a, b [][]string) [][]string {
	var out [][]string
	for _, x := range a {
		for _, y := range b {
			seen := make(map[string]bool, len(x)+len(y))
			var u []string
			for _, e := range x {
				if !seen[e] {
					seen[e] = true
					u = append(u, e)
				}
			}
			for _, e := range y {
				if !seen[e] {
					seen[e] = true
					u = append(u, e)
				}
			}
			out = append(out, u)
		}
	}
	return out
}

// minimize removes duplicate sets and supersets (absorption law), returning
// canonically sorted sets in deterministic order.
func minimize(sets [][]string) [][]string {
	// Canonicalize: sort members, drop duplicates.
	uniq := make(map[string][]string)
	var keys []string
	for _, s := range sets {
		c := append([]string(nil), s...)
		sort.Strings(c)
		k := strings.Join(c, "\x00")
		if _, dup := uniq[k]; !dup {
			uniq[k] = c
			keys = append(keys, k)
		}
	}
	// Keep a set iff no other distinct set is a subset of it.
	var out [][]string
	for _, k := range keys {
		s := uniq[k]
		minimal := true
		for _, k2 := range keys {
			if k2 == k {
				continue
			}
			if subset(uniq[k2], s) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return strings.Join(out[i], ",") < strings.Join(out[j], ",")
	})
	return out
}

// subset reports whether every element of a is in b.
func subset(a, b []string) bool {
	in := make(map[string]bool, len(b))
	for _, e := range b {
		in[e] = true
	}
	for _, e := range a {
		if !in[e] {
			return false
		}
	}
	return true
}

// StandbyKind distinguishes redundancy concepts (Section IV baselines:
// SAFER uses hot and cold stand-by nodes).
type StandbyKind int

// Standby kinds.
const (
	// HotStandby runs in parallel and takes over instantly.
	HotStandby StandbyKind = iota
	// ColdStandby must boot first: longer takeover, no steady-state cost.
	ColdStandby
)

// Standby models a redundancy pair's takeover behaviour.
type Standby struct {
	Kind StandbyKind
	// BootTimeMS is the cold-start time.
	BootTimeMS int64
	// SwitchTimeMS is the detection-to-switchover time.
	SwitchTimeMS int64
}

// TakeoverMS returns the total service gap on a primary failure.
func (s Standby) TakeoverMS() int64 {
	if s.Kind == HotStandby {
		return s.SwitchTimeMS
	}
	return s.SwitchTimeMS + s.BootTimeMS
}
