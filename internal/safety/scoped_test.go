package safety

import (
	"reflect"
	"testing"

	"repro/internal/model"
)

// violationArch builds a technical architecture carrying at least one
// finding of every safety rule, interleaved with clean entities, so
// order-sensitive comparisons between the full and scoped checks are
// meaningful.
func violationArch() *model.TechnicalArchitecture {
	fa := &model.FunctionalArchitecture{
		Functions: []model.Function{
			{Name: "ctl", Contract: model.Contract{Safety: model.ASILD}},                               // misplaced on qm core
			{Name: "app", Contract: model.Contract{Safety: model.QM}},                                  // fine
			{Name: "failop1", Replicas: 2, Contract: model.Contract{FailOperational: true}},            // both replicas on one core
			{Name: "failop2", Contract: model.Contract{FailOperational: true}},                         // single replica
			{Name: "hog", Contract: model.Contract{Resources: model.ResourceContract{RAMKiB: 999999}}}, // memory
		},
	}
	platform := &model.Platform{
		Processors: []model.Processor{
			{Name: "safe", Policy: model.SPP, SpeedFactor: 1, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "qm", Policy: model.SPP, SpeedFactor: 1, RAMKiB: 4096, MaxSafety: model.QM},
		},
	}
	return &model.TechnicalArchitecture{
		Platform: platform,
		Func:     fa,
		Instances: []model.Instance{
			{Function: "app", Replica: 0, Processor: "safe"},
			{Function: "ctl", Replica: 0, Processor: "qm"}, // asil-placement finding
			{Function: "failop1", Replica: 0, Processor: "safe"},
			{Function: "failop1", Replica: 1, Processor: "safe"}, // shared processor
			{Function: "failop2", Replica: 0, Processor: "safe"},
			{Function: "hog", Replica: 0, Processor: "qm"}, // memory-budget finding on qm
		},
	}
}

func TestCheckScopedFullEqualsCheck(t *testing.T) {
	tech := violationArch()
	full := Check(tech)
	if len(full) != 4 {
		t.Fatalf("fixture yields %d findings, want 4 (placement, 2x redundancy, memory): %v", len(full), full)
	}
	scopedAll, checked := CheckScoped(tech, nil, nil)
	if !reflect.DeepEqual(scopedAll, full) {
		t.Fatalf("CheckScoped with nil predicates diverges from Check:\ngot  %v\nwant %v", scopedAll, full)
	}
	wantChecked := len(tech.Instances) + 2 /* fail-op groups */ + 2 /* loaded procs */
	if checked != wantChecked {
		t.Fatalf("full scoped check computed %d verdicts, want %d", checked, wantChecked)
	}

	// The composed check must also equal the three published checks in
	// their documented order — the parity the MCC's rejection reports
	// rely on.
	var composed []Finding
	composed = append(composed, CheckPlacement(tech)...)
	composed = append(composed, CheckRedundancy(tech)...)
	composed = append(composed, CheckMemoryBudgets(tech)...)
	if !reflect.DeepEqual(full, composed) {
		t.Fatalf("Check diverges from composed per-rule checks:\ngot  %v\nwant %v", full, composed)
	}
}

func TestCheckScopedCoversExactlyTheTouchedScope(t *testing.T) {
	tech := violationArch()
	// Scope: only ctl (the misplaced instance) and the qm processor (the
	// blown memory budget). The scoped check must report exactly the
	// findings inside that scope, in full-check order, and count only the
	// scope's verdicts.
	touched := func(fn string) bool { return fn == "ctl" }
	procs := func(pn string) bool { return pn == "qm" }
	got, checked := CheckScoped(tech, touched, procs)
	if len(got) != 2 {
		t.Fatalf("scoped findings = %v, want placement(ctl) + memory(qm)", got)
	}
	if got[0].Rule != "asil-placement" || got[0].Subject != "ctl#0" {
		t.Fatalf("first scoped finding = %v, want the ctl placement violation", got[0])
	}
	if got[1].Rule != "memory-budget" || got[1].Subject != "qm" {
		t.Fatalf("second scoped finding = %v, want the qm memory violation", got[1])
	}
	if checked != 2 { // one instance + one processor budget, no fail-op groups touched
		t.Fatalf("scoped check computed %d verdicts, want 2", checked)
	}

	// Scoping to the redundancy offenders picks up both groups in
	// architecture order.
	got, _ = CheckScoped(tech, func(fn string) bool { return fn == "failop1" || fn == "failop2" }, func(string) bool { return false })
	if len(got) != 2 || got[0].Subject != "failop1" || got[1].Subject != "failop2" {
		t.Fatalf("scoped redundancy findings = %v, want failop1 then failop2", got)
	}
}

func TestCheckScopedCleanScopeIsSilent(t *testing.T) {
	tech := violationArch()
	// A scope containing only clean entities must produce no findings and
	// a footprint-sized verdict count — this is the splice the MCC relies
	// on when the committed remainder is known clean.
	got, checked := CheckScoped(tech, func(fn string) bool { return fn == "app" }, func(pn string) bool { return pn == "safe" })
	if len(got) != 0 {
		t.Fatalf("clean scope produced findings: %v", got)
	}
	if checked != 2 { // app#0 placement + safe memory budget
		t.Fatalf("clean scope computed %d verdicts, want 2", checked)
	}
}
