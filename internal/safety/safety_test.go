package safety

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func testTech() *model.TechnicalArchitecture {
	return &model.TechnicalArchitecture{
		Platform: &model.Platform{
			Processors: []model.Processor{
				{Name: "lockstep", Policy: model.SPP, SpeedFactor: 1, RAMKiB: 1024, MaxSafety: model.ASILD},
				{Name: "plain", Policy: model.SPP, SpeedFactor: 1, RAMKiB: 512, MaxSafety: model.ASILB},
			},
		},
		Func: &model.FunctionalArchitecture{
			Functions: []model.Function{
				{Name: "brake", Contract: model.Contract{Safety: model.ASILD, FailOperational: true, Resources: model.ResourceContract{RAMKiB: 128}}, Replicas: 2},
				{Name: "infotainment", Contract: model.Contract{Safety: model.QM, Resources: model.ResourceContract{RAMKiB: 256}}},
			},
		},
		Instances: []model.Instance{
			{Function: "brake", Replica: 0, Processor: "lockstep"},
			{Function: "brake", Replica: 1, Processor: "lockstep"},
			{Function: "infotainment", Replica: 0, Processor: "plain"},
		},
	}
}

func TestCheckPlacement(t *testing.T) {
	tech := testTech()
	if f := CheckPlacement(tech); len(f) != 0 {
		t.Fatalf("unexpected findings: %v", f)
	}
	// Move an ASIL-D replica to the plain core.
	tech.Instances[1].Processor = "plain"
	f := CheckPlacement(tech)
	if len(f) != 1 || f[0].Rule != "asil-placement" {
		t.Fatalf("findings = %v", f)
	}
}

func TestCheckRedundancyDistinctProcs(t *testing.T) {
	tech := testTech()
	// Both brake replicas on one processor: single point of failure.
	f := CheckRedundancy(tech)
	if len(f) != 1 || f[0].Rule != "fail-operational-redundancy" {
		t.Fatalf("findings = %v", f)
	}
	// Spread them: passes (placement check would flag ASIL, separately).
	tech.Instances[1].Processor = "plain"
	if f := CheckRedundancy(tech); len(f) != 0 {
		t.Fatalf("findings after spread = %v", f)
	}
}

func TestCheckRedundancySingleReplica(t *testing.T) {
	tech := testTech()
	tech.Func.Functions[0].Replicas = 1
	tech.Instances = tech.Instances[:1]
	tech.Instances = append(tech.Instances, model.Instance{Function: "infotainment", Replica: 0, Processor: "plain"})
	f := CheckRedundancy(tech)
	if len(f) != 1 {
		t.Fatalf("findings = %v", f)
	}
}

func TestCheckMemoryBudgets(t *testing.T) {
	tech := testTech()
	if f := CheckMemoryBudgets(tech); len(f) != 0 {
		t.Fatalf("findings = %v", f)
	}
	tech.Func.Functions[1].Contract.Resources.RAMKiB = 4096
	f := CheckMemoryBudgets(tech)
	if len(f) != 1 || f[0].Subject != "plain" {
		t.Fatalf("findings = %v", f)
	}
}

func TestCheckAggregates(t *testing.T) {
	tech := testTech()
	// Redundancy finding (shared proc) is present in the aggregate.
	if f := Check(tech); len(f) != 1 {
		t.Fatalf("findings = %v", f)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Rule: "r", Subject: "s", Detail: "d"}
	if f.String() != "[r] s: d" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestFMEA(t *testing.T) {
	var f FMEA
	rows := []FailureMode{
		{Component: "radar", Mode: "blind", Effect: "no objects", Severity: 8, Occurrence: 3, Detection: 4},
		{Component: "brake-ecu", Mode: "stuck", Effect: "no braking", Severity: 10, Occurrence: 2, Detection: 2},
		{Component: "hmi", Mode: "frozen", Effect: "no driver info", Severity: 4, Occurrence: 5, Detection: 3},
	}
	for _, r := range rows {
		if err := f.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	ranked := f.RankedByRPN()
	// RPNs: radar 96, brake 40, hmi 60 -> order radar, hmi, brake.
	if ranked[0].Component != "radar" || ranked[1].Component != "hmi" || ranked[2].Component != "brake-ecu" {
		t.Fatalf("ranked = %v", ranked)
	}
	if got := f.Above(60); len(got) != 2 {
		t.Fatalf("Above(60) = %v", got)
	}
	if err := f.Add(FailureMode{Component: "x", Mode: "y", Severity: 11, Occurrence: 1, Detection: 1}); err == nil {
		t.Fatal("out-of-scale severity accepted")
	}
}

func TestFaultTreeORAND(t *testing.T) {
	// Dual-channel brake: system fails if both channels fail, or the
	// shared power supply fails.
	tree := Gate("brake-loss", OR,
		Gate("both-channels", AND,
			BasicEvent("ch1", 1e-3),
			BasicEvent("ch2", 1e-3),
		),
		BasicEvent("psu", 1e-5),
	)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	p := tree.Probability()
	want := 1 - (1-1e-6)*(1-1e-5)
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("P = %v, want %v", p, want)
	}
}

func TestFaultTreeKofN(t *testing.T) {
	// 2-of-3 voter fails if >= 2 sensors fail.
	tree := VoteGate("voter", 2,
		BasicEvent("s1", 0.1),
		BasicEvent("s2", 0.1),
		BasicEvent("s3", 0.1),
	)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// P(>=2 of 3, p=0.1) = 3*0.01*0.9 + 0.001 = 0.028.
	if p := tree.Probability(); math.Abs(p-0.028) > 1e-12 {
		t.Fatalf("P = %v, want 0.028", p)
	}
}

func TestFaultTreeValidate(t *testing.T) {
	if err := BasicEvent("x", 1.5).Validate(); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if err := Gate("g", AND).Validate(); err == nil {
		t.Fatal("childless gate accepted")
	}
	if err := VoteGate("v", 5, BasicEvent("a", 0.1)).Validate(); err == nil {
		t.Fatal("K > N accepted")
	}
}

func TestMinimalCutSets(t *testing.T) {
	// top = psu OR (ch1 AND ch2): cut sets {psu}, {ch1, ch2}.
	tree := Gate("top", OR,
		BasicEvent("psu", 0.1),
		Gate("channels", AND, BasicEvent("ch1", 0.1), BasicEvent("ch2", 0.1)),
	)
	cs := tree.MinimalCutSets()
	if len(cs) != 2 {
		t.Fatalf("cut sets = %v", cs)
	}
	if len(cs[0]) != 1 || cs[0][0] != "psu" {
		t.Fatalf("first cut set = %v", cs[0])
	}
	if len(cs[1]) != 2 || cs[1][0] != "ch1" || cs[1][1] != "ch2" {
		t.Fatalf("second cut set = %v", cs[1])
	}
}

func TestMinimalCutSetsAbsorption(t *testing.T) {
	// top = a OR (a AND b): minimal cut sets = {a} only.
	tree := Gate("top", OR,
		BasicEvent("a", 0.1),
		Gate("g", AND, BasicEvent("a", 0.1), BasicEvent("b", 0.1)),
	)
	cs := tree.MinimalCutSets()
	if len(cs) != 1 || len(cs[0]) != 1 || cs[0][0] != "a" {
		t.Fatalf("cut sets = %v", cs)
	}
}

// Property: OR probability >= max child; AND probability <= min child.
func TestPropGateBounds(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw) / 65536
		b := float64(bRaw) / 65536
		or := Gate("or", OR, BasicEvent("a", a), BasicEvent("b", b)).Probability()
		and := Gate("and", AND, BasicEvent("a", a), BasicEvent("b", b)).Probability()
		maxP := math.Max(a, b)
		minP := math.Min(a, b)
		return or >= maxP-1e-12 && or <= 1+1e-12 && and <= minP+1e-12 && and >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: K-of-N probability is monotone decreasing in K.
func TestPropKofNMonotone(t *testing.T) {
	f := func(pRaw uint16) bool {
		p := float64(pRaw) / 65536
		events := []*FTNode{BasicEvent("a", p), BasicEvent("b", p), BasicEvent("c", p), BasicEvent("d", p)}
		prev := 2.0
		for k := 1; k <= 4; k++ {
			cur := VoteGate("v", k, events...).Probability()
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStandbyTakeover(t *testing.T) {
	hot := Standby{Kind: HotStandby, BootTimeMS: 500, SwitchTimeMS: 10}
	cold := Standby{Kind: ColdStandby, BootTimeMS: 500, SwitchTimeMS: 10}
	if hot.TakeoverMS() != 10 {
		t.Fatalf("hot takeover = %d", hot.TakeoverMS())
	}
	if cold.TakeoverMS() != 510 {
		t.Fatalf("cold takeover = %d", cold.TakeoverMS())
	}
}
