package deps

import (
	"strings"
	"testing"
	"testing/quick"
)

// vehicleGraph builds the cross-layer model of the paper's examples:
// ambient temperature influences the platform; functions map to ECUs;
// the driving objective depends on functions.
func vehicleGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	n := func(l Layer, name string) NodeID { return NodeID{Layer: l, Name: name} }
	edges := []struct {
		from, to NodeID
		kind     EdgeKind
	}{
		// Deployment: functions map onto ECUs; ECUs depend on power.
		{n(LayerFunction, "acc"), n(LayerPlatform, "ecu1"), MapsTo},
		{n(LayerFunction, "brake-ctl"), n(LayerPlatform, "ecu2"), MapsTo},
		{n(LayerPlatform, "ecu1"), n(LayerPlatform, "psu"), DependsOn},
		{n(LayerPlatform, "ecu2"), n(LayerPlatform, "psu"), DependsOn},
		// Communication: both functions depend on the CAN bus.
		{n(LayerFunction, "acc"), n(LayerComm, "can0"), DependsOn},
		{n(LayerFunction, "brake-ctl"), n(LayerComm, "can0"), DependsOn},
		// OS: scheduling on ecu1 depends on ecu1.
		{n(LayerOS, "sched1"), n(LayerPlatform, "ecu1"), MapsTo},
		{n(LayerFunction, "acc"), n(LayerOS, "sched1"), DependsOn},
		// Objective depends on functions.
		{n(LayerObjective, "driving"), n(LayerFunction, "acc"), DependsOn},
		{n(LayerObjective, "driving"), n(LayerFunction, "brake-ctl"), DependsOn},
		// Environment influences platform (common cause).
		{n(LayerPlatform, "ambient-temp"), n(LayerPlatform, "ecu1"), Influences},
		{n(LayerPlatform, "ambient-temp"), n(LayerPlatform, "ecu2"), Influences},
	}
	for _, e := range edges {
		if err := g.AddEdge(e.from, e.to, e.kind); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestImpactCrossLayer(t *testing.T) {
	g := vehicleGraph(t)
	psu := NodeID{LayerPlatform, "psu"}
	impact := g.Impact(psu)
	// psu failure -> ecu1, ecu2 -> sched1, acc, brake-ctl -> driving.
	if len(impact[LayerPlatform]) != 2 {
		t.Fatalf("platform impact = %v", impact[LayerPlatform])
	}
	if len(impact[LayerFunction]) != 2 {
		t.Fatalf("function impact = %v", impact[LayerFunction])
	}
	if len(impact[LayerObjective]) != 1 || impact[LayerObjective][0].Name != "driving" {
		t.Fatalf("objective impact = %v", impact[LayerObjective])
	}
	if len(impact[LayerOS]) != 1 {
		t.Fatalf("os impact = %v", impact[LayerOS])
	}
	if g.ImpactSize(psu) != 6 {
		t.Fatalf("impact size = %d, want 6", g.ImpactSize(psu))
	}
}

func TestManualImpactUnderestimates(t *testing.T) {
	g := vehicleGraph(t)
	psu := NodeID{LayerPlatform, "psu"}
	manual := g.ManualImpactSize(psu)
	auto := g.ImpactSize(psu)
	if manual >= auto {
		t.Fatalf("manual %d >= automated %d; manual baseline should underestimate", manual, auto)
	}
	// Manual from psu: within-layer ecu1+ecu2, then one cross hop to
	// sched1/acc/brake-ctl... but no further chaining to the objective.
	m := g.ManualImpact(psu)
	if len(m[LayerObjective]) != 0 {
		t.Fatalf("manual view reached objective layer: %v", m[LayerObjective])
	}
}

func TestInfluencesDirection(t *testing.T) {
	g := vehicleGraph(t)
	temp := NodeID{LayerPlatform, "ambient-temp"}
	impact := g.Impact(temp)
	// Temperature impacts both ECUs and everything above them.
	if len(impact[LayerObjective]) != 1 {
		t.Fatalf("temp impact misses objective: %v", impact)
	}
	total := g.ImpactSize(temp)
	if total != 6 { // ecu1, ecu2, sched1, acc, brake-ctl, driving
		t.Fatalf("temp impact size = %d, want 6", total)
	}
}

func TestEffectChains(t *testing.T) {
	g := vehicleGraph(t)
	psu := NodeID{LayerPlatform, "psu"}
	chains := g.EffectChains(psu, LayerObjective, 10)
	if len(chains) == 0 {
		t.Fatal("no effect chains to objective layer")
	}
	for _, c := range chains {
		if c[0] != psu {
			t.Fatalf("chain does not start at psu: %v", c)
		}
		if c[len(c)-1].Layer != LayerObjective {
			t.Fatalf("chain does not end on objective: %v", c)
		}
	}
	// Shortest chain: psu -> ecu -> function -> driving (4 nodes).
	if len(chains[0]) != 4 {
		t.Fatalf("shortest chain = %v", chains[0])
	}
	if !strings.Contains(chains[0].String(), " -> ") {
		t.Fatalf("chain string = %q", chains[0].String())
	}
}

func TestCommonCause(t *testing.T) {
	g := vehicleGraph(t)
	acc := NodeID{LayerFunction, "acc"}
	brake := NodeID{LayerFunction, "brake-ctl"}
	cc := g.CommonCause([]NodeID{acc, brake})
	// psu, can0 and ambient-temp (and the ECUs individually do NOT
	// qualify — each affects only one function).
	names := map[string]bool{}
	for _, n := range cc {
		names[n.Name] = true
	}
	if !names["psu"] || !names["can0"] || !names["ambient-temp"] {
		t.Fatalf("common causes = %v", cc)
	}
	if names["ecu1"] || names["ecu2"] {
		t.Fatalf("single-function ECU listed as common cause: %v", cc)
	}
	if got := g.CommonCause(nil); got != nil {
		t.Fatalf("CommonCause(nil) = %v", got)
	}
}

func TestSelfDependencyRejected(t *testing.T) {
	g := NewGraph()
	n := NodeID{LayerPlatform, "x"}
	if err := g.AddEdge(n, n, DependsOn); err == nil {
		t.Fatal("self edge accepted")
	}
}

func TestNodesOnAndCounts(t *testing.T) {
	g := vehicleGraph(t)
	fn := g.NodesOn(LayerFunction)
	if len(fn) != 2 || fn[0].Name != "acc" || fn[1].Name != "brake-ctl" {
		t.Fatalf("function nodes = %v", fn)
	}
	if g.EdgeCount() != 12 {
		t.Fatalf("edges = %d", g.EdgeCount())
	}
	if !g.HasNode(NodeID{LayerComm, "can0"}) {
		t.Fatal("can0 missing")
	}
}

func TestImpactOfLeafIsEmpty(t *testing.T) {
	g := vehicleGraph(t)
	driving := NodeID{LayerObjective, "driving"}
	if got := g.ImpactSize(driving); got != 0 {
		t.Fatalf("objective impact = %d, want 0 (nothing depends on it)", got)
	}
}

// Property: impact sets are monotone under edge addition — adding an edge
// never shrinks any node's impact set.
func TestPropImpactMonotone(t *testing.T) {
	f := func(seed uint32) bool {
		// Build a small random DAG-ish graph from the seed.
		names := []string{"a", "b", "c", "d", "e"}
		layers := []Layer{LayerPlatform, LayerComm, LayerFunction}
		g := NewGraph()
		s := seed
		next := func(n int) int {
			s = s*1664525 + 1013904223
			return int(s>>16) % n
		}
		var ids []NodeID
		for _, l := range layers {
			for _, n := range names {
				id := NodeID{l, n}
				g.AddNode(id)
				ids = append(ids, id)
			}
		}
		for i := 0; i < 10; i++ {
			from := ids[next(len(ids))]
			to := ids[next(len(ids))]
			if from != to {
				_ = g.AddEdge(from, to, DependsOn)
			}
		}
		target := ids[next(len(ids))]
		before := g.ImpactSize(target)
		// Add one more edge.
		for i := 0; i < 10; i++ {
			from := ids[next(len(ids))]
			to := ids[next(len(ids))]
			if from != to {
				_ = g.AddEdge(from, to, DependsOn)
				break
			}
		}
		return g.ImpactSize(target) >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestToDOT(t *testing.T) {
	g := vehicleGraph(t)
	dot := g.ToDOT("vehicle")
	if !strings.HasPrefix(dot, "digraph \"vehicle\" {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("malformed DOT:\n%s", dot)
	}
	// Layer clusters present.
	for _, cluster := range []string{"cluster_platform", "cluster_function", "cluster_objective"} {
		if !strings.Contains(dot, cluster) {
			t.Fatalf("missing %s", cluster)
		}
	}
	// Edge styles per kind.
	if !strings.Contains(dot, "[style=dashed]") { // maps-to
		t.Fatal("no dashed maps-to edge")
	}
	if !strings.Contains(dot, "[style=dotted]") { // influences
		t.Fatal("no dotted influences edge")
	}
	if !strings.Contains(dot, "[style=solid]") { // depends-on
		t.Fatal("no solid depends-on edge")
	}
	// Deterministic.
	if dot != g.ToDOT("vehicle") {
		t.Fatal("non-deterministic DOT")
	}
}

func TestNodeIDString(t *testing.T) {
	n := NodeID{LayerPlatform, "ecu1"}
	if n.String() != "platform/ecu1" {
		t.Fatalf("String = %q", n.String())
	}
}
