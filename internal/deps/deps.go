// Package deps implements the automated cross-layer dependency analysis of
// Section V (after Möstl/Ernst [23], [24]): "In CCC, such dependency
// analysis is automated to derive cross-layer dependency models describing
// the effect of change and actions on the overall system."
//
// The model is a typed, directed dependency graph whose nodes live on
// named system layers (platform, communication, OS, function, safety, ...).
// The analysis derives:
//
//   - the impact set of a failing or changed node (the transitive closure
//     of dependents), grouped per layer;
//   - effect chains (failure propagation paths) into a target layer — the
//     automated analogue of manually maintained FMEA effect columns;
//   - a "manual baseline" traversal that only follows one cross-layer hop
//     (what a per-layer FMEA review typically captures), used by experiment
//     E10 to show how much a single-layer view underestimates impact.
package deps

import (
	"fmt"
	"sort"
	"strings"
)

// Layer names a system layer. Free-form, but the canonical vehicle stack
// uses the constants below.
type Layer string

// Canonical layers of the automotive stack discussed in the paper.
const (
	LayerPlatform  Layer = "platform"  // hardware: CPUs, memory, power, thermal
	LayerComm      Layer = "comm"      // networks and buses
	LayerOS        Layer = "os"        // RTE, scheduling, hypervisor
	LayerFunction  Layer = "function"  // driving functions and abilities
	LayerSafety    Layer = "safety"    // safety mechanisms and argumentation
	LayerSecurity  Layer = "security"  // security mechanisms
	LayerObjective Layer = "objective" // driving objectives/mission
)

// NodeID identifies a node as layer/name.
type NodeID struct {
	Layer Layer
	Name  string
}

func (n NodeID) String() string { return string(n.Layer) + "/" + n.Name }

// EdgeKind types a dependency edge.
type EdgeKind string

// Edge kinds.
const (
	// DependsOn: From requires To to operate (failure of To affects From).
	DependsOn EdgeKind = "depends-on"
	// MapsTo: From is deployed on To (a deployment dependency).
	MapsTo EdgeKind = "maps-to"
	// Influences: To is physically or logically influenced by From
	// (e.g. ambient temperature influences the platform).
	Influences EdgeKind = "influences"
)

// Edge is a typed dependency.
type Edge struct {
	From, To NodeID
	Kind     EdgeKind
}

// Graph is the cross-layer dependency model.
type Graph struct {
	nodes map[NodeID]bool
	// fwd[a] lists edges a -> b; rev[b] lists edges a -> b.
	fwd map[NodeID][]Edge
	rev map[NodeID][]Edge
}

// NewGraph returns an empty dependency graph.
func NewGraph() *Graph {
	return &Graph{
		nodes: make(map[NodeID]bool),
		fwd:   make(map[NodeID][]Edge),
		rev:   make(map[NodeID][]Edge),
	}
}

// AddNode registers a node (idempotent).
func (g *Graph) AddNode(id NodeID) {
	g.nodes[id] = true
}

// HasNode reports whether the node exists.
func (g *Graph) HasNode(id NodeID) bool { return g.nodes[id] }

// AddEdge adds a typed dependency; endpoints are auto-registered.
func (g *Graph) AddEdge(from, to NodeID, kind EdgeKind) error {
	if from == to {
		return fmt.Errorf("deps: self-dependency %v", from)
	}
	g.AddNode(from)
	g.AddNode(to)
	e := Edge{From: from, To: to, Kind: kind}
	g.fwd[from] = append(g.fwd[from], e)
	g.rev[to] = append(g.rev[to], e)
	return nil
}

// Nodes returns all nodes in deterministic order.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sortNodes(out)
	return out
}

// NodesOn returns the nodes of one layer in deterministic order.
func (g *Graph) NodesOn(l Layer) []NodeID {
	var out []NodeID
	for n := range g.nodes {
		if n.Layer == l {
			out = append(out, n)
		}
	}
	sortNodes(out)
	return out
}

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, es := range g.fwd {
		n += len(es)
	}
	return n
}

func sortNodes(ns []NodeID) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Layer != ns[j].Layer {
			return ns[i].Layer < ns[j].Layer
		}
		return ns[i].Name < ns[j].Name
	})
}

// affected returns the direct dependents of id: nodes with a DependsOn or
// MapsTo edge *to* id, plus nodes id Influences.
func (g *Graph) affected(id NodeID) []NodeID {
	var out []NodeID
	for _, e := range g.rev[id] {
		if e.Kind == DependsOn || e.Kind == MapsTo {
			out = append(out, e.From)
		}
	}
	for _, e := range g.fwd[id] {
		if e.Kind == Influences {
			out = append(out, e.To)
		}
	}
	return out
}

// Impact returns the full transitive impact set of a failure or change of
// id (excluding id itself), grouped per layer with deterministic ordering.
// This is the automated cross-layer analysis.
func (g *Graph) Impact(id NodeID) map[Layer][]NodeID {
	seen := map[NodeID]bool{id: true}
	var order []NodeID
	queue := []NodeID{id}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		deps := g.affected(cur)
		sortNodes(deps)
		for _, d := range deps {
			if seen[d] {
				continue
			}
			seen[d] = true
			order = append(order, d)
			queue = append(queue, d)
		}
	}
	out := make(map[Layer][]NodeID)
	for _, n := range order {
		out[n.Layer] = append(out[n.Layer], n)
	}
	for l := range out {
		sortNodes(out[l])
	}
	return out
}

// ImpactSize returns the total number of impacted nodes.
func (g *Graph) ImpactSize(id NodeID) int {
	total := 0
	for _, ns := range g.Impact(id) {
		total += len(ns)
	}
	return total
}

// ManualImpact models the traditional per-layer FMEA view: it follows
// dependencies transitively *within* the failing node's layer but crosses
// a layer boundary at most once (the reviewer lists direct effects on the
// neighbouring layer and stops). E10 contrasts its result size with the
// automated Impact.
func (g *Graph) ManualImpact(id NodeID) map[Layer][]NodeID {
	seen := map[NodeID]bool{id: true}
	var order []NodeID
	type item struct {
		node    NodeID
		crossed bool
	}
	queue := []item{{id, false}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		deps := g.affected(cur.node)
		sortNodes(deps)
		for _, d := range deps {
			if seen[d] {
				continue
			}
			crossing := d.Layer != cur.node.Layer
			if cur.crossed && crossing {
				continue // a manual review does not chain cross-layer hops
			}
			if cur.crossed && !crossing {
				continue // nor does it continue within the foreign layer
			}
			seen[d] = true
			order = append(order, d)
			queue = append(queue, item{d, cur.crossed || crossing})
		}
	}
	out := make(map[Layer][]NodeID)
	for _, n := range order {
		out[n.Layer] = append(out[n.Layer], n)
	}
	for l := range out {
		sortNodes(out[l])
	}
	return out
}

// ManualImpactSize returns the total size of the manual baseline view.
func (g *Graph) ManualImpactSize(id NodeID) int {
	total := 0
	for _, ns := range g.ManualImpact(id) {
		total += len(ns)
	}
	return total
}

// EffectChain is one failure propagation path ending on the target layer.
type EffectChain []NodeID

func (c EffectChain) String() string {
	s := ""
	for i, n := range c {
		if i > 0 {
			s += " -> "
		}
		s += n.String()
	}
	return s
}

// EffectChains enumerates all simple failure-propagation paths from a
// failing node to any node on the target layer (the automated FMEA
// "effect" column). Paths are capped at maxLen hops to bound enumeration.
func (g *Graph) EffectChains(from NodeID, target Layer, maxLen int) []EffectChain {
	if maxLen <= 0 {
		maxLen = 10
	}
	var out []EffectChain
	var path []NodeID
	onPath := map[NodeID]bool{}
	var rec func(cur NodeID)
	rec = func(cur NodeID) {
		path = append(path, cur)
		onPath[cur] = true
		defer func() {
			path = path[:len(path)-1]
			delete(onPath, cur)
		}()
		if cur.Layer == target && len(path) > 1 {
			chain := make(EffectChain, len(path))
			copy(chain, path)
			out = append(out, chain)
			return
		}
		if len(path) > maxLen {
			return
		}
		deps := g.affected(cur)
		sortNodes(deps)
		for _, d := range deps {
			if !onPath[d] {
				rec(d)
			}
		}
	}
	rec(from)
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i].String() < out[j].String()
	})
	return out
}

// ToDOT renders the dependency graph in Graphviz DOT format with one
// cluster per layer and edge styles per kind (solid depends-on, dashed
// maps-to, dotted influences). Deterministic output.
func (g *Graph) ToDOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=BT;\n  node [fontname=\"Helvetica\", shape=box];\n", name)
	// Clusters per layer.
	layers := map[Layer][]NodeID{}
	for n := range g.nodes {
		layers[n.Layer] = append(layers[n.Layer], n)
	}
	var layerNames []Layer
	for l := range layers {
		layerNames = append(layerNames, l)
	}
	sort.Slice(layerNames, func(i, j int) bool { return layerNames[i] < layerNames[j] })
	for _, l := range layerNames {
		ns := layers[l]
		sortNodes(ns)
		fmt.Fprintf(&b, "  subgraph \"cluster_%s\" {\n    label=%q;\n", l, string(l))
		for _, n := range ns {
			fmt.Fprintf(&b, "    %q;\n", n.String())
		}
		b.WriteString("  }\n")
	}
	// Edges, deterministic order.
	var all []Edge
	for _, es := range g.fwd {
		all = append(all, es...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].From != all[j].From {
			return all[i].From.String() < all[j].From.String()
		}
		if all[i].To != all[j].To {
			return all[i].To.String() < all[j].To.String()
		}
		return all[i].Kind < all[j].Kind
	})
	for _, e := range all {
		style := "solid"
		switch e.Kind {
		case MapsTo:
			style = "dashed"
		case Influences:
			style = "dotted"
		}
		fmt.Fprintf(&b, "  %q -> %q [style=%s];\n", e.From.String(), e.To.String(), style)
	}
	b.WriteString("}\n")
	return b.String()
}

// CommonCause returns the nodes whose failure impacts all of the given
// targets — e.g. the shared power supply or the ambient temperature of the
// paper's common-cause discussion. Results are deterministic.
func (g *Graph) CommonCause(targets []NodeID) []NodeID {
	if len(targets) == 0 {
		return nil
	}
	var out []NodeID
	for _, cand := range g.Nodes() {
		skip := false
		for _, t := range targets {
			if cand == t {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		impact := g.Impact(cand)
		flat := map[NodeID]bool{}
		for _, ns := range impact {
			for _, n := range ns {
				flat[n] = true
			}
		}
		all := true
		for _, t := range targets {
			if !flat[t] {
				all = false
				break
			}
		}
		if all {
			out = append(out, cand)
		}
	}
	return out
}
