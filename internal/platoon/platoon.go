// Package platoon implements the cooperative-driving scenario of Section V:
// vehicles agreeing "on a common velocity or a minimum distance between
// vehicles in a platoon", where "the communication to or the platform of
// another vehicle might not be fully trustworthy or even compromised".
//
// Agreement uses a trimmed-median consensus that tolerates up to f
// byzantine members among n > 3f (arbitrary proposals cannot drag the
// agreed value outside the honest range). Trust scores track each member's
// deviation history, and persistently deviating members are identified for
// ejection. The fog use case — a vehicle with degraded perception joining
// a better-equipped platoon to keep driving — is modeled by FogPolicy.
package platoon

import (
	"fmt"
	"math"
	"sort"
)

// Proposal is one member's claimed value in an agreement round.
type Proposal struct {
	Member string
	Value  float64
}

// Member is a platoon participant. The Propose function produces its
// claimed value for an agreement round (a compromised member may return
// anything).
type Member struct {
	ID      string
	Propose func(round int) float64
	// Trust in [0,1]; starts at 1 and decays with observed deviation.
	Trust float64
}

// Platoon is a set of members running agreement rounds.
type Platoon struct {
	members []*Member
	// TrustDecay scales how fast deviation erodes trust. Default 0.3.
	TrustDecay float64
	// DeviationTolerance is the deviation (fraction of the agreed value)
	// considered honest. Default 0.1.
	DeviationTolerance float64

	round int
}

// New creates an empty platoon.
func New() *Platoon {
	return &Platoon{TrustDecay: 0.3, DeviationTolerance: 0.1}
}

// Join adds a member with full initial trust.
func (p *Platoon) Join(id string, propose func(round int) float64) (*Member, error) {
	for _, m := range p.members {
		if m.ID == id {
			return nil, fmt.Errorf("platoon: duplicate member %q", id)
		}
	}
	m := &Member{ID: id, Propose: propose, Trust: 1}
	p.members = append(p.members, m)
	return m, nil
}

// Leave removes a member.
func (p *Platoon) Leave(id string) error {
	for i, m := range p.members {
		if m.ID == id {
			p.members = append(p.members[:i], p.members[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("platoon: no member %q", id)
}

// Size returns the number of members.
func (p *Platoon) Size() int { return len(p.members) }

// Members returns the member IDs in join order.
func (p *Platoon) Members() []string {
	out := make([]string, len(p.members))
	for i, m := range p.members {
		out[i] = m.ID
	}
	return out
}

// Trust returns a member's trust score (0 if unknown).
func (p *Platoon) Trust(id string) float64 {
	for _, m := range p.members {
		if m.ID == id {
			return m.Trust
		}
	}
	return 0
}

// RoundResult is the outcome of one agreement round.
type RoundResult struct {
	Round     int
	Agreed    float64
	Proposals []Proposal
	// Deviants lists members whose proposal deviated beyond tolerance.
	Deviants []string
}

// AgreeVelocity runs one agreement round tolerating up to f byzantine
// members: proposals are sorted and the f lowest and f highest are
// trimmed; the agreed value is the median of the remainder. It requires
// n >= 3f+1 members. Trust scores are updated from each member's
// deviation.
func (p *Platoon) AgreeVelocity(f int) (RoundResult, error) {
	n := len(p.members)
	if f < 0 {
		return RoundResult{}, fmt.Errorf("platoon: negative fault bound")
	}
	if n < 3*f+1 {
		return RoundResult{}, fmt.Errorf("platoon: %d members cannot tolerate %d byzantine (need >= %d)", n, f, 3*f+1)
	}
	p.round++
	res := RoundResult{Round: p.round}
	for _, m := range p.members {
		res.Proposals = append(res.Proposals, Proposal{Member: m.ID, Value: m.Propose(p.round)})
	}
	vals := make([]float64, n)
	for i, pr := range res.Proposals {
		vals[i] = pr.Value
	}
	sort.Float64s(vals)
	trimmed := vals[f : n-f]
	res.Agreed = median(trimmed)

	// Trust update.
	for i := range p.members {
		m := p.members[i]
		dev := math.Abs(res.Proposals[i].Value - res.Agreed)
		ref := math.Max(math.Abs(res.Agreed), 1)
		rel := dev / ref
		if rel > p.DeviationTolerance {
			m.Trust -= p.TrustDecay * math.Min(rel, 1)
			if m.Trust < 0 {
				m.Trust = 0
			}
			res.Deviants = append(res.Deviants, m.ID)
		} else if m.Trust < 1 {
			m.Trust += 0.05 // slow recovery for honest behaviour
			if m.Trust > 1 {
				m.Trust = 1
			}
		}
	}
	sort.Strings(res.Deviants)
	return res, nil
}

// Untrusted returns members whose trust fell below the threshold, sorted
// ascending by trust (worst first) — the ejection candidates.
func (p *Platoon) Untrusted(threshold float64) []string {
	var out []*Member
	for _, m := range p.members {
		if m.Trust < threshold {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Trust != out[j].Trust {
			return out[i].Trust < out[j].Trust
		}
		return out[i].ID < out[j].ID
	})
	ids := make([]string, len(out))
	for i, m := range out {
		ids[i] = m.ID
	}
	return ids
}

// AgreeGap runs one agreement round on the platoon's minimum inter-vehicle
// distance. Unlike velocity (where the median is the natural choice), the
// gap decision is safety-asymmetric: too small is dangerous, too large
// merely inefficient. The agreed value is therefore the *maximum* of the
// trimmed proposals — any honest member demanding a larger gap (e.g.
// because its brakes are degraded) wins, while up to f byzantine members
// can neither force a dangerously small gap nor inflate it beyond the
// largest honest demand. Requires n >= 3f+1.
func (p *Platoon) AgreeGap(f int) (RoundResult, error) {
	n := len(p.members)
	if f < 0 {
		return RoundResult{}, fmt.Errorf("platoon: negative fault bound")
	}
	if n < 3*f+1 {
		return RoundResult{}, fmt.Errorf("platoon: %d members cannot tolerate %d byzantine (need >= %d)", n, f, 3*f+1)
	}
	p.round++
	res := RoundResult{Round: p.round}
	for _, m := range p.members {
		res.Proposals = append(res.Proposals, Proposal{Member: m.ID, Value: m.Propose(p.round)})
	}
	vals := make([]float64, n)
	for i, pr := range res.Proposals {
		vals[i] = pr.Value
	}
	sort.Float64s(vals)
	trimmed := vals[f : n-f]
	res.Agreed = trimmed[len(trimmed)-1] // conservative: largest surviving demand

	for i := range p.members {
		m := p.members[i]
		dev := math.Abs(res.Proposals[i].Value - res.Agreed)
		ref := math.Max(math.Abs(res.Agreed), 1)
		if dev/ref > 0.5 { // gap proposals legitimately spread; only flag gross lies
			m.Trust -= p.TrustDecay
			if m.Trust < 0 {
				m.Trust = 0
			}
			res.Deviants = append(res.Deviants, m.ID)
		}
	}
	sort.Strings(res.Deviants)
	return res, nil
}

func median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// FogPolicy decides the safe speed of a vehicle in poor visibility —
// Section V: "driving in dense fog with inappropriate or broken sensors
// will not be possible by a single autonomous vehicle. Nevertheless,
// building a platoon with better equipped vehicles could still be a
// viable option."
type FogPolicy struct {
	// VisibilityM is the optical visibility.
	VisibilityM float64
	// SensorRangeFrac scales the vehicle's own effective sensor range in
	// fog, in [0,1] (1 = fog-rated sensors).
	SensorRangeFrac float64
	// ReactionS is the worst-case reaction time budget.
	ReactionS float64
	// MaxDecel is the achievable deceleration (m/s^2).
	MaxDecel float64
}

// SoloSpeed returns the speed at which the vehicle can stop within its own
// perception range: solve v*t_r + v^2/(2a) = range.
func (f FogPolicy) SoloSpeed() float64 {
	r := f.VisibilityM * f.SensorRangeFrac
	if r <= 0 || f.MaxDecel <= 0 {
		return 0
	}
	// v^2/(2a) + v*tr - r = 0 -> v = a*(-tr + sqrt(tr^2 + 2r/a)).
	tr := f.ReactionS
	a := f.MaxDecel
	v := a * (-tr + math.Sqrt(tr*tr+2*r/a))
	if v < 0 {
		return 0
	}
	return v
}

// PlatoonSpeed returns the speed achievable when following a lead vehicle
// whose perception is leadRangeFrac fog-rated: the follower only needs to
// track the immediate predecessor at gap gapM, relying on platoon-internal
// communication rather than its own long-range perception. The platoon
// travels at the *lead's* safe speed, bounded by what the follower can
// manage from gap tracking.
func (f FogPolicy) PlatoonSpeed(leadRangeFrac, gapM float64) float64 {
	lead := FogPolicy{
		VisibilityM:     f.VisibilityM,
		SensorRangeFrac: leadRangeFrac,
		ReactionS:       f.ReactionS,
		MaxDecel:        f.MaxDecel,
	}
	leadSpeed := lead.SoloSpeed()
	// Follower constraint: from the communicated braking signal it reacts
	// within a short V2V latency; the gap must absorb the reaction
	// distance (same decel assumed).
	const v2vReactionS = 0.2
	followerCap := gapM / v2vReactionS
	return math.Min(leadSpeed, followerCap)
}
