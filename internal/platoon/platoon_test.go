package platoon

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func constant(v float64) func(int) float64 { return func(int) float64 { return v } }

func TestAgreeAllHonest(t *testing.T) {
	p := New()
	for i, v := range []float64{22, 23, 24, 22.5} {
		if _, err := p.Join(string(rune('a'+i)), constant(v)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.AgreeVelocity(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agreed < 22 || res.Agreed > 24 {
		t.Fatalf("agreed = %v", res.Agreed)
	}
	if len(res.Deviants) != 0 {
		t.Fatalf("deviants = %v", res.Deviants)
	}
}

func TestByzantineCannotDragAgreement(t *testing.T) {
	p := New()
	honest := []float64{20, 21, 22}
	for i, v := range honest {
		if _, err := p.Join(string(rune('a'+i)), constant(v)); err != nil {
			t.Fatal(err)
		}
	}
	// One liar claiming an absurd velocity.
	if _, err := p.Join("mallory", constant(200)); err != nil {
		t.Fatal(err)
	}
	res, err := p.AgreeVelocity(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agreed < 20 || res.Agreed > 22 {
		t.Fatalf("agreed = %v dragged outside honest range", res.Agreed)
	}
	if len(res.Deviants) != 1 || res.Deviants[0] != "mallory" {
		t.Fatalf("deviants = %v", res.Deviants)
	}
}

func TestTooManyByzantineRejected(t *testing.T) {
	p := New()
	for i := 0; i < 3; i++ {
		if _, err := p.Join(string(rune('a'+i)), constant(20)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.AgreeVelocity(1); err == nil {
		t.Fatal("n=3 f=1 accepted (needs 4)")
	}
	if _, err := p.AgreeVelocity(-1); err == nil {
		t.Fatal("negative f accepted")
	}
}

func TestTrustErosionAndEjection(t *testing.T) {
	p := New()
	for i := 0; i < 4; i++ {
		if _, err := p.Join(string(rune('a'+i)), constant(20)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Join("mallory", constant(999)); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		if _, err := p.AgreeVelocity(1); err != nil {
			t.Fatal(err)
		}
	}
	if tr := p.Trust("mallory"); tr > 0.1 {
		t.Fatalf("mallory trust = %v after 5 lies", tr)
	}
	if tr := p.Trust("a"); tr < 0.99 {
		t.Fatalf("honest trust = %v", tr)
	}
	bad := p.Untrusted(0.5)
	if len(bad) != 1 || bad[0] != "mallory" {
		t.Fatalf("untrusted = %v", bad)
	}
	if err := p.Leave("mallory"); err != nil {
		t.Fatal(err)
	}
	if p.Size() != 4 {
		t.Fatalf("size = %d", p.Size())
	}
}

func TestTrustRecovers(t *testing.T) {
	p := New()
	flaky := 0.0
	for i := 0; i < 4; i++ {
		if _, err := p.Join(string(rune('a'+i)), constant(20)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Join("flaky", func(int) float64 { return 20 + flaky }); err != nil {
		t.Fatal(err)
	}
	flaky = 50
	if _, err := p.AgreeVelocity(1); err != nil {
		t.Fatal(err)
	}
	dip := p.Trust("flaky")
	if dip >= 1 {
		t.Fatal("no trust erosion")
	}
	flaky = 0
	for r := 0; r < 10; r++ {
		if _, err := p.AgreeVelocity(1); err != nil {
			t.Fatal(err)
		}
	}
	if p.Trust("flaky") <= dip {
		t.Fatalf("trust did not recover: %v -> %v", dip, p.Trust("flaky"))
	}
}

func TestDuplicateAndUnknownMembers(t *testing.T) {
	p := New()
	if _, err := p.Join("a", constant(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Join("a", constant(1)); err == nil {
		t.Fatal("duplicate join accepted")
	}
	if err := p.Leave("ghost"); err == nil {
		t.Fatal("leaving unknown member accepted")
	}
	if p.Trust("ghost") != 0 {
		t.Fatal("unknown trust non-zero")
	}
	if got := p.Members(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("members = %v", got)
	}
}

// Property (validity): with n=3f+1 members of which exactly f lie
// arbitrarily, the agreed value stays within the honest min/max.
func TestPropByzantineValidity(t *testing.T) {
	rng := sim.NewRNG(99)
	f := func(fRaw uint8, base uint8) bool {
		fCount := int(fRaw%3) + 1 // 1..3 liars
		n := 3*fCount + 1
		p := New()
		honestMin, honestMax := math.Inf(1), math.Inf(-1)
		for i := 0; i < n-fCount; i++ {
			v := float64(base%50) + rng.Uniform(0, 5)
			if v < honestMin {
				honestMin = v
			}
			if v > honestMax {
				honestMax = v
			}
			if _, err := p.Join(string(rune('a'+i)), constant(v)); err != nil {
				return false
			}
		}
		for i := 0; i < fCount; i++ {
			lie := rng.Uniform(-1000, 1000)
			if _, err := p.Join(string(rune('A'+i)), constant(lie)); err != nil {
				return false
			}
		}
		res, err := p.AgreeVelocity(fCount)
		if err != nil {
			return false
		}
		return res.Agreed >= honestMin-1e-9 && res.Agreed <= honestMax+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAgreeGapConservative(t *testing.T) {
	p := New()
	// Honest members demand gaps 20..24 m; one has degraded brakes and
	// demands 35 m.
	demands := []float64{20, 22, 24, 35}
	for i, d := range demands {
		if _, err := p.Join(string(rune('a'+i)), constant(d)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.AgreeGap(1)
	if err != nil {
		t.Fatal(err)
	}
	// Trimming removes the single highest (35) and lowest (20); the
	// conservative choice is the largest survivor: 24. The degraded
	// member's 35 is indistinguishable from a byzantine inflation with
	// f=1 — it must re-propose or leave; with f=0 it would win.
	if res.Agreed != 24 {
		t.Fatalf("agreed gap = %v, want 24", res.Agreed)
	}
}

func TestAgreeGapByzantineCannotShrink(t *testing.T) {
	p := New()
	for i, d := range []float64{25, 26, 27} {
		if _, err := p.Join(string(rune('a'+i)), constant(d)); err != nil {
			t.Fatal(err)
		}
	}
	// A liar demanding a 1 m gap (trying to cause a pile-up).
	if _, err := p.Join("mallory", constant(1)); err != nil {
		t.Fatal(err)
	}
	res, err := p.AgreeGap(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agreed < 25 {
		t.Fatalf("agreed gap %v dragged below honest minimum", res.Agreed)
	}
	// Gross deviation erodes trust.
	if p.Trust("mallory") >= 1 {
		t.Fatal("liar trust not eroded")
	}
}

func TestAgreeGapRequiresQuorum(t *testing.T) {
	p := New()
	for i := 0; i < 3; i++ {
		if _, err := p.Join(string(rune('a'+i)), constant(25)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.AgreeGap(1); err == nil {
		t.Fatal("n=3 f=1 accepted")
	}
	if _, err := p.AgreeGap(-1); err == nil {
		t.Fatal("negative f accepted")
	}
}

// Property (gap validity): with f liars among n=3f+1, the agreed gap never
// drops below the smallest honest demand.
func TestPropAgreeGapValidity(t *testing.T) {
	rng := sim.NewRNG(123)
	f := func(fRaw uint8, base uint8) bool {
		fCount := int(fRaw%2) + 1
		n := 3*fCount + 1
		p := New()
		honestMin := math.Inf(1)
		for i := 0; i < n-fCount; i++ {
			v := 20 + float64(base%20) + rng.Uniform(0, 5)
			if v < honestMin {
				honestMin = v
			}
			if _, err := p.Join(string(rune('a'+i)), constant(v)); err != nil {
				return false
			}
		}
		for i := 0; i < fCount; i++ {
			if _, err := p.Join(string(rune('A'+i)), constant(rng.Uniform(-100, 100))); err != nil {
				return false
			}
		}
		res, err := p.AgreeGap(fCount)
		if err != nil {
			return false
		}
		return res.Agreed >= honestMin-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFogSoloSpeed(t *testing.T) {
	// Good sensors, 100 m visibility: v*1 + v^2/12 = 100 -> v ≈ 29... let's
	// just check monotonicity and plausibility.
	good := FogPolicy{VisibilityM: 100, SensorRangeFrac: 1, ReactionS: 1, MaxDecel: 6}
	bad := FogPolicy{VisibilityM: 100, SensorRangeFrac: 0.2, ReactionS: 1, MaxDecel: 6}
	vg, vb := good.SoloSpeed(), bad.SoloSpeed()
	if vg <= vb {
		t.Fatalf("degraded sensors not slower: %v vs %v", vg, vb)
	}
	if vg < 10 || vg > 40 {
		t.Fatalf("good solo speed = %v implausible", vg)
	}
	if vb > 12 {
		t.Fatalf("bad solo speed = %v too high", vb)
	}
	// Stopping distance from the solo speed must fit the effective range.
	d := vg*good.ReactionS + vg*vg/(2*good.MaxDecel)
	if d > 100.01 {
		t.Fatalf("stopping distance %v exceeds visibility", d)
	}
}

func TestFogPlatoonBeatsSolo(t *testing.T) {
	// A vehicle with fog-blind sensors (0.15) alone crawls; following a
	// fog-rated lead at 25 m it can go much faster.
	blind := FogPolicy{VisibilityM: 80, SensorRangeFrac: 0.15, ReactionS: 1, MaxDecel: 6}
	solo := blind.SoloSpeed()
	inPlatoon := blind.PlatoonSpeed(1.0, 25)
	if inPlatoon <= solo {
		t.Fatalf("platoon %v <= solo %v", inPlatoon, solo)
	}
	// But never faster than the lead itself could go.
	lead := FogPolicy{VisibilityM: 80, SensorRangeFrac: 1, ReactionS: 1, MaxDecel: 6}
	if inPlatoon > lead.SoloSpeed()+1e-9 {
		t.Fatalf("platoon %v exceeds lead capability %v", inPlatoon, lead.SoloSpeed())
	}
}

func TestFogZeroCases(t *testing.T) {
	if (FogPolicy{VisibilityM: 0, SensorRangeFrac: 1, ReactionS: 1, MaxDecel: 6}).SoloSpeed() != 0 {
		t.Fatal("speed in zero visibility")
	}
	if (FogPolicy{VisibilityM: 100, SensorRangeFrac: 1, ReactionS: 1, MaxDecel: 0}).SoloSpeed() != 0 {
		t.Fatal("speed without brakes")
	}
}

func TestMedian(t *testing.T) {
	if median([]float64{3}) != 3 {
		t.Fatal("single")
	}
	if median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even")
	}
	if median(nil) != 0 {
		t.Fatal("empty")
	}
}
