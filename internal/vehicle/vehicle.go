// Package vehicle provides a longitudinal dynamics model of an x-by-wire
// experimental vehicle (standing in for MOBILE, the paper's testbed): mass,
// aerodynamic drag, rolling resistance, engine propulsion, per-axle brake
// circuits with fault injection, and drivetrain (regenerative/engine)
// braking. The intrusion scenario of Section V manipulates exactly these
// levers: "the objective of driving can be kept operational although the
// ability to brake is only partially available by reducing the maximum
// speed and generating additional brake torque from the drive train".
package vehicle

import (
	"fmt"
	"math"
)

// Params are the physical parameters of the vehicle.
type Params struct {
	// MassKG is the vehicle mass.
	MassKG float64
	// DragArea is 0.5 * rho * cd * A (N per (m/s)^2).
	DragArea float64
	// RollCoef is the rolling resistance coefficient (fraction of weight).
	RollCoef float64
	// MaxEngineAccel is the peak propulsive acceleration (m/s^2).
	MaxEngineAccel float64
	// FrontBrakeDecel and RearBrakeDecel are the per-circuit peak
	// decelerations (m/s^2) when the circuit is healthy.
	FrontBrakeDecel float64
	RearBrakeDecel  float64
	// DrivetrainDecel is the peak deceleration available from the drive
	// train (engine braking / regeneration), usable even with failed
	// hydraulic circuits.
	DrivetrainDecel float64
}

// DefaultParams returns parameters of a mid-size automated research
// vehicle.
func DefaultParams() Params {
	return Params{
		MassKG:          1600,
		DragArea:        0.40, // 0.5 * 1.2 kg/m3 * 0.31 cd * 2.2 m2
		RollCoef:        0.012,
		MaxEngineAccel:  3.0,
		FrontBrakeDecel: 5.5,
		RearBrakeDecel:  3.0,
		DrivetrainDecel: 1.5,
	}
}

const gravity = 9.81

// Vehicle is the simulated plant.
type Vehicle struct {
	p Params

	// Health of the actuation paths in [0,1]; 1 = nominal.
	frontBrakeHealth float64
	rearBrakeHealth  float64
	engineHealth     float64
	drivetrainOK     bool

	// State.
	pos   float64 // m
	speed float64 // m/s

	// DistanceBraked accumulates distance travelled while decelerating,
	// for stopping-distance measurements.
	DistanceBraked float64
}

// New creates a vehicle at rest with nominal actuators.
func New(p Params) *Vehicle {
	return &Vehicle{
		p:                p,
		frontBrakeHealth: 1,
		rearBrakeHealth:  1,
		engineHealth:     1,
		drivetrainOK:     true,
	}
}

// Params returns the physical parameters.
func (v *Vehicle) Params() Params { return v.p }

// Position returns the travelled distance (m).
func (v *Vehicle) Position() float64 { return v.pos }

// Speed returns the current speed (m/s).
func (v *Vehicle) Speed() float64 { return v.speed }

// SetSpeed initializes the speed (test/scenario setup).
func (v *Vehicle) SetSpeed(s float64) {
	if s < 0 {
		s = 0
	}
	v.speed = s
}

// SetFrontBrakeHealth sets the front hydraulic circuit health in [0,1].
func (v *Vehicle) SetFrontBrakeHealth(h float64) { v.frontBrakeHealth = clamp01(h) }

// SetRearBrakeHealth sets the rear hydraulic circuit health in [0,1].
// The intrusion scenario sets this to 0 when the rear braking component
// is shut down.
func (v *Vehicle) SetRearBrakeHealth(h float64) { v.rearBrakeHealth = clamp01(h) }

// SetEngineHealth sets the propulsion health in [0,1].
func (v *Vehicle) SetEngineHealth(h float64) { v.engineHealth = clamp01(h) }

// SetDrivetrainBraking enables or disables drivetrain braking.
func (v *Vehicle) SetDrivetrainBraking(ok bool) { v.drivetrainOK = ok }

// BrakeHealthFront returns the front circuit health.
func (v *Vehicle) BrakeHealthFront() float64 { return v.frontBrakeHealth }

// BrakeHealthRear returns the rear circuit health.
func (v *Vehicle) BrakeHealthRear() float64 { return v.rearBrakeHealth }

// MaxDeceleration returns the currently achievable service deceleration
// (m/s^2, positive), combining both brake circuits and — if enabled — the
// drivetrain.
func (v *Vehicle) MaxDeceleration() float64 {
	d := v.p.FrontBrakeDecel*v.frontBrakeHealth + v.p.RearBrakeDecel*v.rearBrakeHealth
	if v.drivetrainOK {
		d += v.p.DrivetrainDecel
	}
	return d
}

// MaxAcceleration returns the currently achievable propulsive acceleration.
func (v *Vehicle) MaxAcceleration() float64 {
	return v.p.MaxEngineAccel * v.engineHealth
}

// BrakingFraction returns achievable / nominal deceleration — the health
// signal the ability graph's braking-system sink consumes.
func (v *Vehicle) BrakingFraction() float64 {
	nominal := v.p.FrontBrakeDecel + v.p.RearBrakeDecel + v.p.DrivetrainDecel
	if nominal <= 0 {
		return 0
	}
	return v.MaxDeceleration() / nominal
}

// Step advances the vehicle by dt seconds under the commanded acceleration
// (m/s^2; negative = braking). The command is clamped to the achievable
// envelope; resistive forces (drag, rolling) always apply. It returns the
// realized acceleration.
func (v *Vehicle) Step(accelCmd, dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	cmd := accelCmd
	if cmd > v.MaxAcceleration() {
		cmd = v.MaxAcceleration()
	}
	if cmd < -v.MaxDeceleration() {
		cmd = -v.MaxDeceleration()
	}
	// Resistive decelerations (only while moving).
	resist := 0.0
	if v.speed > 0 {
		drag := v.p.DragArea * v.speed * v.speed / v.p.MassKG
		roll := v.p.RollCoef * gravity
		resist = drag + roll
	}
	a := cmd - resist
	newSpeed := v.speed + a*dt
	if newSpeed < 0 {
		// The vehicle stops within the step; integrate the stopping ramp.
		if a < 0 {
			tStop := v.speed / -a
			v.pos += v.speed*tStop + 0.5*a*tStop*tStop
			if cmd < 0 {
				v.DistanceBraked += v.speed*tStop + 0.5*a*tStop*tStop
			}
		}
		v.speed = 0
		return a
	}
	dist := v.speed*dt + 0.5*a*dt*dt
	v.pos += dist
	if cmd < 0 {
		v.DistanceBraked += dist
	}
	v.speed = newSpeed
	return a
}

// StoppingDistance simulates a full braking maneuver from the given speed
// with the current actuator health and returns the distance travelled
// until standstill.
func (v *Vehicle) StoppingDistance(fromSpeed float64) float64 {
	if fromSpeed <= 0 {
		return 0
	}
	clone := *v
	clone.pos = 0
	clone.speed = fromSpeed
	clone.DistanceBraked = 0
	const dt = 0.001
	for i := 0; clone.speed > 0; i++ {
		clone.Step(-clone.MaxDeceleration(), dt)
		if i > 10_000_000 {
			return math.Inf(1) // cannot stop (no brakes at all)
		}
	}
	return clone.pos
}

// SafeSpeedForStoppingDistance returns the highest speed from which the
// vehicle can stop within the given distance under its *current* actuator
// health — the quantity the ability layer uses to derive a speed cap when
// braking is partially available (bisection over StoppingDistance).
func (v *Vehicle) SafeSpeedForStoppingDistance(maxDist float64) float64 {
	if maxDist <= 0 || v.MaxDeceleration() <= 0 {
		return 0
	}
	lo, hi := 0.0, 100.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if v.StoppingDistance(mid) <= maxDist {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// String summarizes the vehicle state.
func (v *Vehicle) String() string {
	return fmt.Sprintf("vehicle{v=%.1fm/s, x=%.1fm, brakes=%.0f%%/%.0f%%}",
		v.speed, v.pos, 100*v.frontBrakeHealth, 100*v.rearBrakeHealth)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
