package vehicle

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccelerateFromRest(t *testing.T) {
	v := New(DefaultParams())
	for i := 0; i < 100; i++ {
		v.Step(2.0, 0.1) // 10 s at 2 m/s^2 minus resistances
	}
	if v.Speed() <= 10 || v.Speed() >= 20 {
		t.Fatalf("speed after 10s = %.2f, want ~17-19", v.Speed())
	}
	if v.Position() <= 0 {
		t.Fatal("no distance covered")
	}
}

func TestCommandClampedToEnvelope(t *testing.T) {
	v := New(DefaultParams())
	v.SetSpeed(20)
	a := v.Step(-100, 0.01) // demand far beyond capability
	if -a > v.MaxDeceleration()+0.5 {
		t.Fatalf("realized decel %.2f exceeds envelope %.2f", -a, v.MaxDeceleration())
	}
	v2 := New(DefaultParams())
	a2 := v2.Step(100, 0.01)
	if a2 > v2.MaxAcceleration() {
		t.Fatalf("realized accel %.2f exceeds envelope %.2f", a2, v2.MaxAcceleration())
	}
}

func TestRearBrakeFailureReducesDecel(t *testing.T) {
	v := New(DefaultParams())
	full := v.MaxDeceleration()
	v.SetRearBrakeHealth(0)
	reduced := v.MaxDeceleration()
	if reduced >= full {
		t.Fatalf("decel with failed rear = %.2f, full = %.2f", reduced, full)
	}
	want := DefaultParams().FrontBrakeDecel + DefaultParams().DrivetrainDecel
	if math.Abs(reduced-want) > 1e-9 {
		t.Fatalf("reduced = %.2f, want %.2f", reduced, want)
	}
}

func TestDrivetrainBrakingCompensates(t *testing.T) {
	p := DefaultParams()
	v := New(p)
	v.SetRearBrakeHealth(0)
	v.SetDrivetrainBraking(false)
	without := v.MaxDeceleration()
	v.SetDrivetrainBraking(true)
	with := v.MaxDeceleration()
	if with-without != p.DrivetrainDecel {
		t.Fatalf("drivetrain adds %.2f, want %.2f", with-without, p.DrivetrainDecel)
	}
}

func TestStoppingDistanceGrowsWithFailure(t *testing.T) {
	v := New(DefaultParams())
	healthy := v.StoppingDistance(30)
	v.SetRearBrakeHealth(0)
	degraded := v.StoppingDistance(30)
	if degraded <= healthy {
		t.Fatalf("degraded stop %.1fm <= healthy %.1fm", degraded, healthy)
	}
	// Ballpark: v^2/(2a) with a≈10 -> ~45 m healthy at 30 m/s.
	if healthy < 30 || healthy > 60 {
		t.Fatalf("healthy stopping distance %.1fm implausible", healthy)
	}
}

func TestStoppingDistanceZeroSpeed(t *testing.T) {
	v := New(DefaultParams())
	if d := v.StoppingDistance(0); d != 0 {
		t.Fatalf("stop from 0 = %v", d)
	}
}

func TestSafeSpeedForStoppingDistance(t *testing.T) {
	v := New(DefaultParams())
	safe := v.SafeSpeedForStoppingDistance(50)
	// Must actually stop within 50 m from that speed.
	if d := v.StoppingDistance(safe); d > 50.5 {
		t.Fatalf("stopping from safe speed %.1f takes %.1fm > 50m", safe, d)
	}
	// And the bound must be tight-ish: 10% more speed exceeds the distance.
	if d := v.StoppingDistance(safe * 1.1); d <= 50 {
		t.Fatalf("safe speed not tight: %.1f m/s stops in %.1fm", safe*1.1, d)
	}
	// Degraded brakes lower the safe speed.
	v.SetRearBrakeHealth(0)
	if got := v.SafeSpeedForStoppingDistance(50); got >= safe {
		t.Fatalf("degraded safe speed %.1f >= healthy %.1f", got, safe)
	}
}

func TestBrakingFraction(t *testing.T) {
	v := New(DefaultParams())
	if f := v.BrakingFraction(); math.Abs(f-1) > 1e-9 {
		t.Fatalf("nominal fraction = %v", f)
	}
	v.SetRearBrakeHealth(0)
	f := v.BrakingFraction()
	want := (5.5 + 1.5) / (5.5 + 3.0 + 1.5)
	if math.Abs(f-want) > 1e-9 {
		t.Fatalf("fraction = %v, want %v", f, want)
	}
}

func TestStopWithinStep(t *testing.T) {
	v := New(DefaultParams())
	v.SetSpeed(0.5)
	v.Step(-v.MaxDeceleration(), 1.0) // stops mid-step
	if v.Speed() != 0 {
		t.Fatalf("speed = %v after full brake", v.Speed())
	}
	if v.Position() <= 0 {
		t.Fatal("no distance during stopping ramp")
	}
}

func TestHealthClamped(t *testing.T) {
	v := New(DefaultParams())
	v.SetRearBrakeHealth(2)
	if v.BrakeHealthRear() != 1 {
		t.Fatal("health not clamped high")
	}
	v.SetFrontBrakeHealth(-1)
	if v.BrakeHealthFront() != 0 {
		t.Fatal("health not clamped low")
	}
}

// Property: stopping distance is monotone in initial speed and in brake
// health.
func TestPropStoppingDistanceMonotone(t *testing.T) {
	f := func(sRaw, hRaw uint8) bool {
		s := 5 + float64(sRaw%40)
		h := float64(hRaw%101) / 100
		v1 := New(DefaultParams())
		v2 := New(DefaultParams())
		d1 := v1.StoppingDistance(s)
		d2 := v2.StoppingDistance(s + 5)
		if d2 <= d1 {
			return false
		}
		v3 := New(DefaultParams())
		v3.SetRearBrakeHealth(h)
		d3 := v3.StoppingDistance(s)
		return d3 >= d1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCoastingSlowsDown(t *testing.T) {
	v := New(DefaultParams())
	v.SetSpeed(30)
	for i := 0; i < 100; i++ {
		v.Step(0, 0.1)
	}
	if v.Speed() >= 30 {
		t.Fatal("no resistive deceleration while coasting")
	}
	if v.Speed() <= 0 {
		t.Fatal("resistances implausibly strong")
	}
}

func TestStringFormat(t *testing.T) {
	v := New(DefaultParams())
	if s := v.String(); s == "" {
		t.Fatal("empty String")
	}
}
