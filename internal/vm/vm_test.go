package vm

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestCreateVMBudgets(t *testing.T) {
	s := sim.New()
	h := NewHypervisor(s, DefaultCostModel(), 1024)
	v1, err := h.CreateVM("dom0", 512, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Privileged() || v1.MemKiB() != 512 || v1.CPUShare() != 0.5 {
		t.Fatalf("vm fields: %+v", v1)
	}
	if _, err := h.CreateVM("domU", 512, 0.5, false); err != nil {
		t.Fatal(err)
	}
	if h.FreeMemKiB() != 0 || h.FreeCPU() > 1e-9 {
		t.Fatalf("free = %d KiB, %v CPU", h.FreeMemKiB(), h.FreeCPU())
	}
	if _, err := h.CreateVM("overflow", 1, 0, false); !errors.Is(err, ErrMemExhausted) {
		t.Fatalf("err = %v, want ErrMemExhausted", err)
	}
}

func TestCreateVMCPUExhausted(t *testing.T) {
	s := sim.New()
	h := NewHypervisor(s, DefaultCostModel(), 10000)
	if _, err := h.CreateVM("a", 10, 0.9, false); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateVM("b", 10, 0.2, false); !errors.Is(err, ErrCPUExhausted) {
		t.Fatalf("err = %v, want ErrCPUExhausted", err)
	}
}

func TestDuplicateName(t *testing.T) {
	s := sim.New()
	h := NewHypervisor(s, DefaultCostModel(), 10000)
	if _, err := h.CreateVM("a", 10, 0.1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateVM("a", 10, 0.1, false); !errors.Is(err, ErrDupName) {
		t.Fatalf("err = %v, want ErrDupName", err)
	}
}

func TestInvalidBudgets(t *testing.T) {
	s := sim.New()
	h := NewHypervisor(s, DefaultCostModel(), 10000)
	if _, err := h.CreateVM("a", -1, 0.1, false); err == nil {
		t.Fatal("negative memory accepted")
	}
	if _, err := h.CreateVM("b", 1, 1.5, false); err == nil {
		t.Fatal("CPU share > 1 accepted")
	}
}

func TestDestroyVMReleases(t *testing.T) {
	s := sim.New()
	h := NewHypervisor(s, DefaultCostModel(), 1000)
	if _, err := h.CreateVM("a", 1000, 1.0, false); err != nil {
		t.Fatal(err)
	}
	if err := h.DestroyVM("a"); err != nil {
		t.Fatal(err)
	}
	if h.FreeMemKiB() != 1000 || h.FreeCPU() != 1.0 {
		t.Fatal("budgets not released")
	}
	if err := h.DestroyVM("a"); err == nil {
		t.Fatal("double destroy accepted")
	}
	if h.FindVM("a") != nil {
		t.Fatal("destroyed VM still found")
	}
}

func TestTrapAccounting(t *testing.T) {
	s := sim.New()
	h := NewHypervisor(s, DefaultCostModel(), 1000)
	v, err := h.CreateVM("a", 100, 0.1, false)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	cost := h.Trap(v, TrapDoorbell, func() { fired = true })
	if cost != DefaultCostModel().Doorbell {
		t.Fatalf("cost = %v", cost)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("trap continuation not fired")
	}
	if v.TrapCount[TrapDoorbell] != 1 {
		t.Fatalf("trap count = %d", v.TrapCount[TrapDoorbell])
	}
	if h.TrapTime != cost {
		t.Fatalf("TrapTime = %v", h.TrapTime)
	}
	if s.Now() != cost {
		t.Fatalf("clock = %v, want %v", s.Now(), cost)
	}
}

func TestTrapKindString(t *testing.T) {
	if TrapDoorbell.String() != "doorbell" || TrapIRQInject.String() != "irq-inject" {
		t.Fatalf("names: %s %s", TrapDoorbell, TrapIRQInject)
	}
}

func TestCostModelCost(t *testing.T) {
	c := DefaultCostModel()
	if c.Cost(TrapMMIO) != c.MMIOAccess || c.Cost(TrapHypercall) != c.Hypercall {
		t.Fatal("Cost mapping wrong")
	}
	if c.Cost(TrapKind(99)) != 0 {
		t.Fatal("unknown kind should cost 0")
	}
}
