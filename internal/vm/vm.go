// Package vm models the hypervisor layer of Section III: "hypervisor- or
// VMM-based process virtualization, interconnect and memory virtualization
// methods are layered underneath the MCC services". It provides virtual
// machines with spatial isolation (memory budgets), temporal isolation
// (CPU share accounting), a privileged/unprivileged distinction used by
// the virtualized CAN controller's PF/VF split, and a trap cost model.
package vm

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// TrapKind distinguishes the virtualization events whose costs the
// experiments account for.
type TrapKind int

// Trap kinds.
const (
	// TrapMMIO is a guest access to emulated device memory.
	TrapMMIO TrapKind = iota
	// TrapDoorbell is a guest-initiated notification to the device.
	TrapDoorbell
	// TrapIRQInject is interrupt delivery into a guest.
	TrapIRQInject
	// TrapHypercall is an explicit guest->hypervisor call.
	TrapHypercall
)

var trapNames = [...]string{"mmio", "doorbell", "irq-inject", "hypercall"}

func (k TrapKind) String() string {
	if k < 0 || int(k) >= len(trapNames) {
		return fmt.Sprintf("TrapKind(%d)", int(k))
	}
	return trapNames[k]
}

// CostModel carries the virtualization overhead constants. The defaults
// are calibrated so the virtualized CAN controller's added round-trip
// latency lands in the 7-11us band reported in the paper (Section III /
// reference [8], Intel i7-3770T + Virtex-7 prototype).
type CostModel struct {
	MMIOAccess sim.Time // guest access to a VF register
	Doorbell   sim.Time // doorbell write causing a VM exit
	IRQInject  sim.Time // injecting an interrupt into a guest vCPU
	Hypercall  sim.Time // synchronous hypercall round trip
}

// DefaultCostModel returns the calibrated cost constants.
func DefaultCostModel() CostModel {
	return CostModel{
		MMIOAccess: 800 * sim.Nanosecond,
		Doorbell:   2000 * sim.Nanosecond,
		IRQInject:  2200 * sim.Nanosecond,
		Hypercall:  2500 * sim.Nanosecond,
	}
}

// Cost returns the cost of one trap of the given kind.
func (c CostModel) Cost(k TrapKind) sim.Time {
	switch k {
	case TrapMMIO:
		return c.MMIOAccess
	case TrapDoorbell:
		return c.Doorbell
	case TrapIRQInject:
		return c.IRQInject
	case TrapHypercall:
		return c.Hypercall
	}
	return 0
}

// VM is one guest execution domain.
type VM struct {
	name       string
	privileged bool
	memKiB     int64
	cpuShare   float64

	// TrapCount tallies traps by kind, for overhead accounting.
	TrapCount map[TrapKind]int
}

// Name returns the VM's identifier.
func (v *VM) Name() string { return v.name }

// Privileged reports whether the VM may perform privileged device
// operations (access the PF of a virtualized controller).
func (v *VM) Privileged() bool { return v.privileged }

// MemKiB returns the VM's memory budget.
func (v *VM) MemKiB() int64 { return v.memKiB }

// CPUShare returns the VM's guaranteed CPU fraction.
func (v *VM) CPUShare() float64 { return v.cpuShare }

// Hypervisor owns the guests and enforces that the sum of budgets does not
// exceed the physical resources (freedom from interference: "modifications
// made on one virtual machine will not affect other VMs").
type Hypervisor struct {
	sim   *sim.Simulator
	costs CostModel
	vms   []*VM

	totalMemKiB int64
	usedMemKiB  int64
	usedCPU     float64

	// TrapTime accumulates total virtual time spent in traps.
	TrapTime sim.Time
}

// Errors returned by VM creation.
var (
	ErrMemExhausted = errors.New("vm: memory budget exhausted")
	ErrCPUExhausted = errors.New("vm: CPU share exhausted")
	ErrDupName      = errors.New("vm: duplicate VM name")
)

// NewHypervisor creates a hypervisor with the given physical memory.
func NewHypervisor(s *sim.Simulator, costs CostModel, totalMemKiB int64) *Hypervisor {
	return &Hypervisor{sim: s, costs: costs, totalMemKiB: totalMemKiB}
}

// Costs returns the trap cost model.
func (h *Hypervisor) Costs() CostModel { return h.costs }

// VMs returns the created guests.
func (h *Hypervisor) VMs() []*VM { return h.vms }

// FindVM returns the named VM, or nil.
func (h *Hypervisor) FindVM(name string) *VM {
	for _, v := range h.vms {
		if v.name == name {
			return v
		}
	}
	return nil
}

// CreateVM allocates a guest with the given budgets. The privileged flag
// marks the management domain (hosting the MCC per Section III: "the PF
// shall only be accessible to privileged SW components, e.g. the
// hypervisor running an MCC").
func (h *Hypervisor) CreateVM(name string, memKiB int64, cpuShare float64, privileged bool) (*VM, error) {
	if h.FindVM(name) != nil {
		return nil, fmt.Errorf("%w: %q", ErrDupName, name)
	}
	if memKiB < 0 || cpuShare < 0 || cpuShare > 1 {
		return nil, fmt.Errorf("vm: invalid budgets mem=%d cpu=%v", memKiB, cpuShare)
	}
	if h.usedMemKiB+memKiB > h.totalMemKiB {
		return nil, fmt.Errorf("%w: need %d, free %d", ErrMemExhausted, memKiB, h.totalMemKiB-h.usedMemKiB)
	}
	if h.usedCPU+cpuShare > 1.0+1e-9 {
		return nil, fmt.Errorf("%w: need %v, free %v", ErrCPUExhausted, cpuShare, 1-h.usedCPU)
	}
	v := &VM{name: name, privileged: privileged, memKiB: memKiB, cpuShare: cpuShare, TrapCount: make(map[TrapKind]int)}
	h.vms = append(h.vms, v)
	h.usedMemKiB += memKiB
	h.usedCPU += cpuShare
	return v, nil
}

// DestroyVM releases a guest's budgets.
func (h *Hypervisor) DestroyVM(name string) error {
	for i, v := range h.vms {
		if v.name == name {
			h.usedMemKiB -= v.memKiB
			h.usedCPU -= v.cpuShare
			h.vms = append(h.vms[:i], h.vms[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("vm: no VM %q", name)
}

// Trap accounts one trap of kind k taken by v, schedules fn after the trap
// cost, and returns the cost.
func (h *Hypervisor) Trap(v *VM, k TrapKind, fn func()) sim.Time {
	cost := h.costs.Cost(k)
	v.TrapCount[k]++
	h.TrapTime += cost
	if fn != nil {
		h.sim.Schedule(cost, fn)
	}
	return cost
}

// FreeMemKiB returns the unallocated physical memory.
func (h *Hypervisor) FreeMemKiB() int64 { return h.totalMemKiB - h.usedMemKiB }

// FreeCPU returns the unallocated CPU share.
func (h *Hypervisor) FreeCPU() float64 { return 1 - h.usedCPU }
