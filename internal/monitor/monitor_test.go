package monitor

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func collect(devs *[]Deviation) Sink {
	return func(d Deviation) { *devs = append(*devs, d) }
}

func TestBudgetMonitorWCET(t *testing.T) {
	var devs []Deviation
	m := NewBudgetMonitor("task", 10*sim.Millisecond, collect(&devs))
	m.ObserveJob(8*sim.Millisecond, 100, 200)
	if len(devs) != 0 || m.Violations != 0 {
		t.Fatalf("conforming job flagged: %v", devs)
	}
	m.ObserveJob(12*sim.Millisecond, 100, 200)
	if m.Violations != 1 || len(devs) != 1 || devs[0].Kind != "wcet-exceeded" {
		t.Fatalf("overrun not flagged: %v", devs)
	}
	if m.ObservedMax != 12*sim.Millisecond {
		t.Fatalf("ObservedMax = %v", m.ObservedMax)
	}
	if m.Jobs != 2 {
		t.Fatalf("Jobs = %d", m.Jobs)
	}
}

func TestBudgetMonitorDeadline(t *testing.T) {
	var devs []Deviation
	m := NewBudgetMonitor("task", 10*sim.Millisecond, collect(&devs))
	m.ObserveJob(5*sim.Millisecond, 300, 200) // finish after deadline
	if m.Misses != 1 {
		t.Fatal("miss not counted")
	}
	found := false
	for _, d := range devs {
		if d.Kind == "deadline-miss" && d.Severity == Critical {
			found = true
		}
	}
	if !found {
		t.Fatalf("no critical deadline-miss deviation: %v", devs)
	}
}

func TestRateMonitorConforming(t *testing.T) {
	var devs []Deviation
	m := NewRateMonitor("sensor", 10*sim.Millisecond, 0, true, collect(&devs))
	for i := 0; i < 10; i++ {
		if !m.Arrival(sim.Time(i) * 10 * sim.Millisecond) {
			t.Fatalf("conforming arrival %d dropped", i)
		}
	}
	if len(devs) != 0 || m.Dropped != 0 {
		t.Fatalf("devs=%v dropped=%d", devs, m.Dropped)
	}
}

func TestRateMonitorBurstDropped(t *testing.T) {
	var devs []Deviation
	m := NewRateMonitor("sensor", 10*sim.Millisecond, 0, true, collect(&devs))
	if !m.Arrival(0) {
		t.Fatal("first arrival dropped")
	}
	// Immediate second arrival: bucket empty.
	if m.Arrival(1 * sim.Millisecond) {
		t.Fatal("burst arrival admitted under enforcement")
	}
	if m.Dropped != 1 || len(devs) != 1 || devs[0].Kind != "rate-violation" {
		t.Fatalf("dropped=%d devs=%v", m.Dropped, devs)
	}
}

func TestRateMonitorJitterTolerance(t *testing.T) {
	// J = P: bucket depth 2 admits a back-to-back pair.
	m := NewRateMonitor("sensor", 10*sim.Millisecond, 10*sim.Millisecond, true)
	if !m.Arrival(0) || !m.Arrival(0) {
		t.Fatal("jitter-tolerant pair rejected")
	}
	if m.Arrival(0) {
		t.Fatal("third simultaneous arrival admitted")
	}
}

func TestRateMonitorDetectOnly(t *testing.T) {
	var devs []Deviation
	m := NewRateMonitor("sensor", 10*sim.Millisecond, 0, false, collect(&devs))
	m.Arrival(0)
	if !m.Arrival(0) {
		t.Fatal("detect-only monitor dropped an event")
	}
	if len(devs) != 1 {
		t.Fatalf("violation not flagged: %v", devs)
	}
	if m.Admitted != 2 {
		t.Fatalf("Admitted = %d", m.Admitted)
	}
}

// Property: arrivals spaced at >= period are always admitted, regardless of
// the pattern before them, once the bucket had time to refill.
func TestPropRateMonitorPeriodicAlwaysConforms(t *testing.T) {
	f := func(gaps []uint8) bool {
		m := NewRateMonitor("x", 100, 0, true)
		now := sim.Time(0)
		for _, g := range gaps {
			now += sim.Time(g%100) + 100 // gap >= period
			if !m.Arrival(now) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeMonitor(t *testing.T) {
	var devs []Deviation
	m := NewRangeMonitor("temp", -40, 125, collect(&devs))
	if !m.Observe(25, 0) {
		t.Fatal("in-range rejected")
	}
	if m.Observe(150, 1) {
		t.Fatal("out-of-range accepted")
	}
	if m.Observe(-41, 2) {
		t.Fatal("below-range accepted")
	}
	if m.Violations != 2 || len(devs) != 2 {
		t.Fatalf("violations=%d devs=%d", m.Violations, len(devs))
	}
	if m.Last != -41 || m.Samples != 3 {
		t.Fatalf("last=%v samples=%d", m.Last, m.Samples)
	}
}

func TestHeartbeatLostAndRecovered(t *testing.T) {
	s := sim.New()
	var devs []Deviation
	h := NewHeartbeat(s, "sensor", 10*sim.Millisecond, collect(&devs))
	// Beats at 5, 12, 19 keep it alive until 19; timeout at 29.
	for _, at := range []sim.Time{5, 12, 19} {
		at := at
		s.Schedule(at*sim.Millisecond, func() { h.Beat() })
	}
	if err := s.RunFor(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if h.Beats != 3 {
		t.Fatalf("beats=%d", h.Beats)
	}
	// Losses at 29, 39, 49.
	if h.Lost != 3 {
		t.Fatalf("lost=%d, want 3", h.Lost)
	}
	if len(devs) != 3 || devs[0].Kind != "heartbeat-lost" || devs[0].At != 29*sim.Millisecond {
		t.Fatalf("devs=%v", devs)
	}
}

func TestHeartbeatStop(t *testing.T) {
	s := sim.New()
	var devs []Deviation
	h := NewHeartbeat(s, "sensor", 10*sim.Millisecond, collect(&devs))
	s.Schedule(5*sim.Millisecond, func() { h.Stop() })
	if err := s.RunFor(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(devs) != 0 || h.Lost != 0 {
		t.Fatalf("stopped heartbeat fired: %v", devs)
	}
	h.Beat() // no-op after stop
	if h.Beats != 0 {
		t.Fatal("beat counted after stop")
	}
}

func TestAggregator(t *testing.T) {
	a := NewAggregator()
	a.Record("cpu.util", 0.5, 10)
	a.Record("cpu.util", 0.7, 20)
	a.Record("cpu.util", 0.3, 30)
	st := a.Get("cpu.util")
	if st.Count != 3 || st.Min != 0.3 || st.Max != 0.7 || st.Last != 0.3 || st.LastAt != 30 {
		t.Fatalf("stat=%+v", st)
	}
	if mean := st.Mean(); mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean=%v", mean)
	}
	if got := a.Get("unknown"); got.Count != 0 || got.Mean() != 0 {
		t.Fatalf("unknown stat=%+v", got)
	}
	a.Record("temp", 80, 5)
	names := a.Names()
	if len(names) != 2 || names[0] != "cpu.util" || names[1] != "temp" {
		t.Fatalf("names=%v", names)
	}
	snap := a.Snapshot()
	if len(snap) != 2 || snap["temp"].Last != 80 {
		t.Fatalf("snapshot=%v", snap)
	}
	// Snapshot is a copy.
	a.Record("temp", 90, 6)
	if snap["temp"].Last != 80 {
		t.Fatal("snapshot aliases live data")
	}
}

func TestSeverityString(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Critical.String() != "critical" {
		t.Fatal("severity names wrong")
	}
}

func TestMultiSinkFanOut(t *testing.T) {
	var a, b []Deviation
	m := NewRangeMonitor("x", 0, 1, collect(&a), collect(&b))
	m.Observe(5, 0)
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("fan-out failed: %d %d", len(a), len(b))
	}
}
