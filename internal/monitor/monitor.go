// Package monitor implements the run-time monitoring capabilities of the
// CCC execution domain (Section II.B): monitors that (a) enforce model
// assumptions — event-rate enforcement after [6] — or (b) extract run-time
// metrics that are fed back into the model domain, "supervising certain
// run-time properties, such as execution times, access patterns, or sensor
// values".
//
// Monitors emit Deviations when observed behaviour departs from the
// contracted model; the aggregator maintains the metric statistics that
// the cross-layer self-representation (package core) consumes.
package monitor

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
)

// Severity grades a deviation.
type Severity int

// Severity levels.
const (
	Info Severity = iota
	Warning
	Critical
)

var severityNames = [...]string{"info", "warning", "critical"}

func (s Severity) String() string {
	if s < 0 || int(s) >= len(severityNames) {
		return fmt.Sprintf("Severity(%d)", int(s))
	}
	return severityNames[s]
}

// Deviation is a detected departure from modeled behaviour.
type Deviation struct {
	// Kind labels the deviation class ("wcet-exceeded", "deadline-miss",
	// "rate-violation", "range-violation", "heartbeat-lost", ...).
	Kind string
	// Source names the monitored entity.
	Source string
	// Severity grades the deviation.
	Severity Severity
	// At is the detection time.
	At sim.Time
	// Observed and Bound quantify the violation where applicable.
	Observed float64
	Bound    float64
	// Detail is a human-readable explanation.
	Detail string
}

// Sink receives deviations.
type Sink func(Deviation)

// multiSink fans a deviation out to several sinks.
func multiSink(sinks []Sink) Sink {
	return func(d Deviation) {
		for _, s := range sinks {
			s(d)
		}
	}
}

// BudgetMonitor supervises execution times and deadlines of completed jobs
// against the contracted WCET. It implements the "execution times" bullet
// of Section II.B and feeds the model-refinement loop: observed maxima are
// retained so the model domain can tighten or relax its WCET assumptions.
type BudgetMonitor struct {
	source string
	wcet   sim.Time
	sink   Sink

	// ObservedMax is the largest execution demand seen.
	ObservedMax sim.Time
	// Violations counts WCET overruns.
	Violations int
	// Misses counts deadline misses.
	Misses int
	// Jobs counts observed completions.
	Jobs int
}

// NewBudgetMonitor creates a monitor for one task's execution budget.
func NewBudgetMonitor(source string, wcet sim.Time, sinks ...Sink) *BudgetMonitor {
	return &BudgetMonitor{source: source, wcet: wcet, sink: multiSink(sinks)}
}

// ObserveJob checks one completed job (exec = consumed wall time at
// reference speed, finish/deadline absolute) and emits deviations.
func (m *BudgetMonitor) ObserveJob(exec sim.Time, finish, deadline sim.Time) {
	m.Jobs++
	if exec > m.ObservedMax {
		m.ObservedMax = exec
	}
	if exec > m.wcet {
		m.Violations++
		m.sink(Deviation{
			Kind: "wcet-exceeded", Source: m.source, Severity: Warning, At: finish,
			Observed: float64(exec), Bound: float64(m.wcet),
			Detail: fmt.Sprintf("execution %v exceeds contracted WCET %v", exec, m.wcet),
		})
	}
	if finish > deadline {
		m.Misses++
		m.sink(Deviation{
			Kind: "deadline-miss", Source: m.source, Severity: Critical, At: finish,
			Observed: float64(finish - deadline), Bound: 0,
			Detail: fmt.Sprintf("finish %v after deadline %v", finish, deadline),
		})
	}
}

// RateMonitor enforces an event-rate bound with a leaky bucket, after the
// multi-mode monitoring of [6]: arrivals conforming to a periodic-with-
// jitter model (P, J) are admitted; excess arrivals are flagged and, in
// enforcement mode, dropped. The bucket holds 1 + J/P tokens refilled at
// rate 1/P.
type RateMonitor struct {
	source  string
	period  sim.Time
	depth   float64
	enforce bool
	sink    Sink

	tokens   float64
	lastFill sim.Time

	// Admitted and Dropped count arrivals.
	Admitted int
	Dropped  int
}

// NewRateMonitor creates a leaky-bucket monitor for the event model
// (period, jitter). If enforce is true, non-conforming events are dropped
// (Arrival returns false); otherwise they are admitted but flagged.
func NewRateMonitor(source string, period, jitter sim.Time, enforce bool, sinks ...Sink) *RateMonitor {
	if period <= 0 {
		panic("monitor: non-positive period")
	}
	depth := 1 + float64(jitter)/float64(period)
	return &RateMonitor{
		source: source, period: period, depth: depth, enforce: enforce,
		sink: multiSink(sinks), tokens: depth,
	}
}

// Arrival registers an event at time now and reports whether it conforms
// (and, under enforcement, whether it is admitted).
func (m *RateMonitor) Arrival(now sim.Time) bool {
	// Refill.
	if now > m.lastFill {
		m.tokens += float64(now-m.lastFill) / float64(m.period)
		if m.tokens > m.depth {
			m.tokens = m.depth
		}
		m.lastFill = now
	}
	if m.tokens >= 1 {
		m.tokens--
		m.Admitted++
		return true
	}
	m.sink(Deviation{
		Kind: "rate-violation", Source: m.source, Severity: Warning, At: now,
		Observed: m.depth - m.tokens, Bound: m.depth,
		Detail: fmt.Sprintf("arrival exceeds contracted rate (period %v)", m.period),
	})
	if m.enforce {
		m.Dropped++
		return false
	}
	m.Admitted++
	return true
}

// RangeMonitor supervises a scalar value against contracted bounds
// ("sensor values" in Section II.B).
type RangeMonitor struct {
	source string
	lo, hi float64
	sink   Sink

	// Violations counts out-of-range observations.
	Violations int
	// Last is the most recent value.
	Last float64
	// Samples counts observations.
	Samples int
}

// NewRangeMonitor creates a monitor admitting values in [lo, hi].
func NewRangeMonitor(source string, lo, hi float64, sinks ...Sink) *RangeMonitor {
	if lo > hi {
		panic("monitor: lo > hi")
	}
	return &RangeMonitor{source: source, lo: lo, hi: hi, sink: multiSink(sinks)}
}

// Observe checks one value.
func (m *RangeMonitor) Observe(v float64, now sim.Time) bool {
	m.Samples++
	m.Last = v
	if v < m.lo || v > m.hi {
		m.Violations++
		bound := m.hi
		if v < m.lo {
			bound = m.lo
		}
		m.sink(Deviation{
			Kind: "range-violation", Source: m.source, Severity: Warning, At: now,
			Observed: v, Bound: bound,
			Detail: fmt.Sprintf("value %.4g outside [%.4g, %.4g]", v, m.lo, m.hi),
		})
		return false
	}
	return true
}

// Heartbeat detects missing liveness signals: if no Beat arrives within
// the timeout, a heartbeat-lost deviation fires. This models the baseline
// failure detection of SAFER [17] ("any degradation strategy is only
// activated if the heartbeat of a sensor goes missing").
type Heartbeat struct {
	source  string
	timeout sim.Time
	s       *sim.Simulator
	sink    Sink
	timer   *sim.Event
	stopped bool

	// Beats counts received heartbeats; Lost counts timeouts.
	Beats int
	Lost  int
}

// NewHeartbeat starts supervision immediately; the first beat is expected
// within timeout.
func NewHeartbeat(s *sim.Simulator, source string, timeout sim.Time, sinks ...Sink) *Heartbeat {
	if timeout <= 0 {
		panic("monitor: non-positive heartbeat timeout")
	}
	h := &Heartbeat{source: source, timeout: timeout, s: s, sink: multiSink(sinks)}
	h.arm()
	return h
}

func (h *Heartbeat) arm() {
	h.timer = h.s.Schedule(h.timeout, func() {
		if h.stopped {
			return
		}
		h.Lost++
		h.sink(Deviation{
			Kind: "heartbeat-lost", Source: h.source, Severity: Critical, At: h.s.Now(),
			Observed: float64(h.timeout), Bound: float64(h.timeout),
			Detail: fmt.Sprintf("no heartbeat within %v", h.timeout),
		})
		h.arm() // keep supervising; repeated losses fire repeatedly
	})
}

// Beat registers a liveness signal and re-arms the timer.
func (h *Heartbeat) Beat() {
	if h.stopped {
		return
	}
	h.Beats++
	h.timer.Cancel()
	h.arm()
}

// Stop ends supervision.
func (h *Heartbeat) Stop() {
	h.stopped = true
	if h.timer != nil {
		h.timer.Cancel()
	}
}

// Stat summarizes the samples of one metric.
type Stat struct {
	Count     int
	Min, Max  float64
	Sum       float64
	Last      float64
	LastAt    sim.Time
	FirstSeen sim.Time
}

// Mean returns the sample mean (0 when empty).
func (s Stat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Aggregator collects metric samples from all monitors and layers into the
// consistent statistics the self-representation is built from: "the overall
// monitoring concept must ensure that metrics from different layers can be
// aggregated to a consistent self-representation of the system" (Section V).
// It is safe for concurrent use (monitors on different simulated resources
// may share one aggregator).
type Aggregator struct {
	mu    sync.Mutex
	stats map[string]*Stat
}

// NewAggregator creates an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{stats: make(map[string]*Stat)}
}

// Record adds a sample of the named metric.
func (a *Aggregator) Record(name string, v float64, now sim.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stats[name]
	if st == nil {
		st = &Stat{Min: v, Max: v, FirstSeen: now}
		a.stats[name] = st
	}
	if v < st.Min {
		st.Min = v
	}
	if v > st.Max {
		st.Max = v
	}
	st.Count++
	st.Sum += v
	st.Last = v
	st.LastAt = now
}

// Get returns the statistics of a metric (zero Stat if unseen).
func (a *Aggregator) Get(name string) Stat {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st := a.stats[name]; st != nil {
		return *st
	}
	return Stat{}
}

// Names returns all metric names in sorted order.
func (a *Aggregator) Names() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.stats))
	for n := range a.stats {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a copy of all statistics.
func (a *Aggregator) Snapshot() map[string]Stat {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]Stat, len(a.stats))
	for n, st := range a.stats {
		out[n] = *st
	}
	return out
}
