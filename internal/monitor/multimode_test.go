package monitor

import (
	"testing"

	"repro/internal/sim"
)

func testModes() []Mode {
	return []Mode{
		{Name: "normal", Period: 10 * sim.Millisecond},
		{Name: "degraded", Period: 50 * sim.Millisecond},
	}
}

func TestMultiModeConformingInMode(t *testing.T) {
	var devs []Deviation
	m, err := NewMultiModeMonitor("ctl", testModes(), "normal", true, collect(&devs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !m.Arrival(sim.Time(i) * 10 * sim.Millisecond) {
			t.Fatalf("conforming arrival %d rejected", i)
		}
	}
	if len(devs) != 0 {
		t.Fatalf("devs = %v", devs)
	}
	if m.Mode() != "normal" {
		t.Fatalf("mode = %s", m.Mode())
	}
}

func TestMultiModeStricterAfterSwitch(t *testing.T) {
	var devs []Deviation
	m, err := NewMultiModeMonitor("ctl", testModes(), "normal", true, collect(&devs))
	if err != nil {
		t.Fatal(err)
	}
	// Run in normal (10ms) for a while.
	now := sim.Time(0)
	for i := 0; i < 5; i++ {
		m.Arrival(now)
		now += 10 * sim.Millisecond
	}
	// Switch to degraded (50ms) at t=50ms.
	if err := m.Switch("degraded", now); err != nil {
		t.Fatal(err)
	}
	if m.Switches != 1 || m.Mode() != "degraded" {
		t.Fatalf("switches=%d mode=%s", m.Switches, m.Mode())
	}
	// During the transition window (one normal period = 10ms), the old
	// 10ms rate is still fine.
	if !m.Arrival(now + 5*sim.Millisecond) {
		t.Fatal("transition-window arrival rejected")
	}
	// Well past the window, 10ms-rate events violate the 50ms mode.
	// The degraded bucket admitted the event at now+5ms... advance to
	// refill once, then send a burst at the old fast rate.
	base := now + 100*sim.Millisecond
	ok1 := m.Arrival(base)
	ok2 := m.Arrival(base + 10*sim.Millisecond) // too fast for 50ms mode
	if !ok1 {
		t.Fatal("refilled arrival rejected")
	}
	if ok2 {
		t.Fatal("fast arrival admitted in degraded mode")
	}
	if len(devs) == 0 {
		t.Fatal("no deviation on final rejection")
	}
}

func TestMultiModeDetectOnlyAdmits(t *testing.T) {
	var devs []Deviation
	m, err := NewMultiModeMonitor("ctl", testModes(), "degraded", false, collect(&devs))
	if err != nil {
		t.Fatal(err)
	}
	m.Arrival(0)
	if !m.Arrival(1 * sim.Millisecond) {
		t.Fatal("detect-only monitor rejected an event")
	}
	if len(devs) != 1 {
		t.Fatalf("devs = %d", len(devs))
	}
}

func TestMultiModeValidation(t *testing.T) {
	if _, err := NewMultiModeMonitor("x", nil, "normal", true); err == nil {
		t.Fatal("no modes accepted")
	}
	if _, err := NewMultiModeMonitor("x", testModes(), "ghost", true); err == nil {
		t.Fatal("unknown initial accepted")
	}
	dup := []Mode{{Name: "a", Period: 1}, {Name: "a", Period: 2}}
	if _, err := NewMultiModeMonitor("x", dup, "a", true); err == nil {
		t.Fatal("duplicate mode accepted")
	}
	bad := []Mode{{Name: "a", Period: 0}}
	if _, err := NewMultiModeMonitor("x", bad, "a", true); err == nil {
		t.Fatal("zero period accepted")
	}
	m, err := NewMultiModeMonitor("x", testModes(), "normal", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Switch("ghost", 0); err == nil {
		t.Fatal("switch to unknown mode accepted")
	}
	if err := m.Switch("normal", 0); err != nil || m.Switches != 0 {
		t.Fatal("self-switch should be a no-op")
	}
	modes := m.Modes()
	if len(modes) != 2 || modes[0] != "degraded" {
		t.Fatalf("modes = %v", modes)
	}
}

func TestMultiModeTransitionWindowExpires(t *testing.T) {
	m, err := NewMultiModeMonitor("ctl", testModes(), "normal", true)
	if err != nil {
		t.Fatal(err)
	}
	m.TransitionWindow = 20 * sim.Millisecond
	if err := m.Switch("degraded", 0); err != nil {
		t.Fatal(err)
	}
	// Inside the window: old rate OK (new bucket absorbs the first, old
	// bucket the second).
	if !m.Arrival(1*sim.Millisecond) || !m.Arrival(11*sim.Millisecond) {
		t.Fatal("window arrivals rejected")
	}
	// After the window, a burst beyond the degraded bound fails.
	if !m.Arrival(100 * sim.Millisecond) {
		t.Fatal("refilled arrival rejected")
	}
	if m.Arrival(101 * sim.Millisecond) {
		t.Fatal("burst admitted after window expiry")
	}
}
