package monitor

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Multi-mode monitoring after Neukirchner et al. [6] ("Multi-Mode
// Monitoring for Mixed-Criticality Real-time Systems"): a system that
// switches operating modes (e.g. normal driving, degraded driving,
// emergency) has a different contracted event model per mode. A monitor
// that only knows the union bound misses violations that are illegal in
// the current mode; a multi-mode monitor switches its bounds with the
// system and handles the transition phase, during which events conforming
// to either the outgoing or the incoming mode are tolerated.

// Mode is one operating mode's event bound.
type Mode struct {
	Name   string
	Period sim.Time
	Jitter sim.Time
}

// MultiModeMonitor supervises an event stream against per-mode rate
// bounds with tolerant mode transitions.
type MultiModeMonitor struct {
	source  string
	modes   map[string]Mode
	cur     *RateMonitor
	curName string
	// prev remains active during the transition window after a switch.
	prev     *RateMonitor
	prevName string
	prevTill sim.Time
	// TransitionWindow is how long the outgoing mode's bound is still
	// accepted after a switch.
	TransitionWindow sim.Time
	enforce          bool
	sinks            []Sink

	// Switches counts mode changes.
	Switches int
}

// NewMultiModeMonitor creates a monitor with the given modes, starting in
// initial. The transition window defaults to one period of the initial
// mode.
func NewMultiModeMonitor(source string, modes []Mode, initial string, enforce bool, sinks ...Sink) (*MultiModeMonitor, error) {
	if len(modes) == 0 {
		return nil, fmt.Errorf("monitor: no modes")
	}
	m := &MultiModeMonitor{
		source:  source,
		modes:   make(map[string]Mode, len(modes)),
		enforce: enforce,
		sinks:   sinks,
	}
	for _, md := range modes {
		if md.Period <= 0 {
			return nil, fmt.Errorf("monitor: mode %q has non-positive period", md.Name)
		}
		if _, dup := m.modes[md.Name]; dup {
			return nil, fmt.Errorf("monitor: duplicate mode %q", md.Name)
		}
		m.modes[md.Name] = md
	}
	init, ok := m.modes[initial]
	if !ok {
		return nil, fmt.Errorf("monitor: unknown initial mode %q", initial)
	}
	// The inner rate monitors carry no sinks and always enforce: an event
	// rejected by the current mode may still be legitimate under the
	// outgoing mode during a transition, so deviations (and, if enabled,
	// enforcement) are decided only on final rejection.
	m.cur = NewRateMonitor(source+"/"+initial, init.Period, init.Jitter, true)
	m.curName = initial
	m.TransitionWindow = init.Period
	return m, nil
}

// Modes returns the configured mode names, sorted.
func (m *MultiModeMonitor) Modes() []string {
	out := make([]string, 0, len(m.modes))
	for n := range m.modes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Mode returns the active mode name.
func (m *MultiModeMonitor) Mode() string { return m.curName }

// Switch changes the active mode at time now. The outgoing mode's bound
// remains acceptable for TransitionWindow.
func (m *MultiModeMonitor) Switch(mode string, now sim.Time) error {
	md, ok := m.modes[mode]
	if !ok {
		return fmt.Errorf("monitor: unknown mode %q", mode)
	}
	if mode == m.curName {
		return nil
	}
	m.prev = m.cur
	m.prevName = m.curName
	m.prevTill = now + m.TransitionWindow
	m.cur = NewRateMonitor(m.source+"/"+mode, md.Period, md.Jitter, true)
	m.curName = mode
	m.Switches++
	return nil
}

// Arrival checks one event against the active mode (and, within the
// transition window, the outgoing mode). It reports conformance; a
// deviation is emitted only when the event conforms to neither bound.
func (m *MultiModeMonitor) Arrival(now sim.Time) bool {
	if m.prev != nil && now > m.prevTill {
		m.prev = nil
	}
	// Check the current mode first; consume its token if conforming.
	if m.cur.Arrival(now) {
		return true
	}
	// During a transition, the old mode's bound still legitimizes events.
	if m.prev != nil && m.prev.Arrival(now) {
		return true
	}
	for _, s := range m.sinks {
		s(Deviation{
			Kind: "rate-violation", Source: m.source, Severity: Warning, At: now,
			Detail: fmt.Sprintf("arrival conforms to neither mode %q nor outgoing bound", m.curName),
		})
	}
	return !m.enforce // detect-only monitors admit flagged events
}
