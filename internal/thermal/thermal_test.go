package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestModelConvergesToSteadyState(t *testing.T) {
	m := NewModel(2.0, 50, 25) // R=2°C/W, C=50J/°C
	const power = 15.0
	for i := 0; i < 200000; i++ {
		m.Step(power, 0.01)
	}
	want := m.SteadyState(power) // 25 + 30 = 55
	if math.Abs(m.TempC-want) > 0.5 {
		t.Fatalf("T = %.2f, want ~%.2f", m.TempC, want)
	}
}

func TestModelCoolsWithoutPower(t *testing.T) {
	m := NewModel(2.0, 50, 25)
	m.TempC = 80
	for i := 0; i < 100000; i++ {
		m.Step(0, 0.01)
	}
	if math.Abs(m.TempC-25) > 0.5 {
		t.Fatalf("T = %.2f, want ~25", m.TempC)
	}
}

func TestAmbientChangeShiftsEquilibrium(t *testing.T) {
	m := NewModel(2.0, 50, 25)
	m.SetAmbient(45)
	if got := m.SteadyState(10); got != 65 {
		t.Fatalf("steady = %v", got)
	}
}

func TestGovernorHysteresis(t *testing.T) {
	g, err := NewGovernor(DefaultLevels(), 90, 70)
	if err != nil {
		t.Fatal(err)
	}
	if g.Current().Name != "turbo" {
		t.Fatalf("initial = %s", g.Current().Name)
	}
	if !g.Update(95) {
		t.Fatal("no step down above HiC")
	}
	if g.Current().Name != "nominal" {
		t.Fatalf("after hot = %s", g.Current().Name)
	}
	// Within band: no change.
	if g.Update(80) {
		t.Fatal("changed within hysteresis band")
	}
	if !g.Update(60) {
		t.Fatal("no step up below LoC")
	}
	if g.Current().Name != "turbo" {
		t.Fatalf("after cool = %s", g.Current().Name)
	}
	if g.Transitions != 2 {
		t.Fatalf("transitions = %d", g.Transitions)
	}
}

func TestGovernorSaturates(t *testing.T) {
	g, err := NewGovernor(DefaultLevels(), 90, 70)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		g.Update(120)
	}
	if g.Current().Name != "eco" {
		t.Fatalf("hottest level = %s", g.Current().Name)
	}
	// One more hot update: stays (no panic, no change).
	if g.Update(120) {
		t.Fatal("stepped below slowest level")
	}
}

func TestGovernorValidation(t *testing.T) {
	if _, err := NewGovernor(nil, 90, 70); err == nil {
		t.Fatal("empty levels accepted")
	}
	if _, err := NewGovernor(DefaultLevels(), 70, 90); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
	bad := []OperatingPoint{{Speed: 0.5}, {Speed: 1.0}}
	if _, err := NewGovernor(bad, 90, 70); err == nil {
		t.Fatal("unordered levels accepted")
	}
}

func TestThrottleCurve(t *testing.T) {
	c := DefaultThrottle()
	if c.Factor(50) != 1 {
		t.Fatal("throttle below onset")
	}
	if c.Factor(105) != 0.4 || c.Factor(150) != 0.4 {
		t.Fatal("floor wrong")
	}
	mid := c.Factor(95) // halfway: 1 - 0.5*0.6 = 0.7
	if math.Abs(mid-0.7) > 1e-9 {
		t.Fatalf("mid factor = %v", mid)
	}
}

// Property: throttle factor is monotone non-increasing in temperature.
func TestPropThrottleMonotone(t *testing.T) {
	c := DefaultThrottle()
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw)
		b := float64(bRaw)
		if a > b {
			a, b = b, a
		}
		return c.Factor(a) >= c.Factor(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAmbientProfile(t *testing.T) {
	p := AmbientProfile{
		BaseC: 20, SwingC: 10, PeriodS: 86400,
		HeatWaveStartS: 1000, HeatWaveEndS: 2000, HeatWaveC: 15,
	}
	if got := p.At(0); got != 20 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := p.At(1500); got < 35-1 {
		t.Fatalf("heat wave At(1500) = %v", got)
	}
	if got := p.At(2500); got > 32 {
		t.Fatalf("after wave At(2500) = %v", got)
	}
	// Quarter period: base + swing.
	if got := p.At(86400.0 / 4); math.Abs(got-30) > 0.01 {
		t.Fatalf("peak = %v", got)
	}
}

func TestPlantDrift(t *testing.T) {
	if PlantDrift(20, 0.01) != 1 {
		t.Fatal("drift at reference temp")
	}
	if got := PlantDrift(40, 0.01); math.Abs(got-1.2) > 1e-9 {
		t.Fatalf("drift = %v", got)
	}
	if got := PlantDrift(-20, 0.005); math.Abs(got-1.2) > 1e-9 {
		t.Fatalf("cold drift = %v", got)
	}
}

// Property: with constant power, temperature approaches steady state
// monotonically from either side.
func TestPropMonotoneApproach(t *testing.T) {
	f := func(initRaw, powRaw uint8) bool {
		m := NewModel(2, 50, 25)
		m.TempC = float64(initRaw)
		p := float64(powRaw % 30)
		target := m.SteadyState(p)
		prevDist := math.Abs(m.TempC - target)
		for i := 0; i < 1000; i++ {
			m.Step(p, 0.1)
			d := math.Abs(m.TempC - target)
			if d > prevDist+1e-9 {
				return false
			}
			prevDist = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
