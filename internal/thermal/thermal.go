// Package thermal models the temperature regime of Section V's
// common-cause example: "ambient temperatures are a source of common cause
// faults ... it can cause performance degradation of the (hardware)
// platform, which, in a self-aware system, may influence the error model
// and/or require voltage or frequency scaling to prevent permanent
// damage."
//
// The package provides a lumped RC thermal model of a processor, DVFS
// operating points, a reactive governor, and the temperature-dependent
// slowdown that couples back into the RTE scheduler (experiment E6).
package thermal

import (
	"fmt"
	"math"
)

// Model is a lumped-parameter (single RC) thermal model:
//
//	C * dT/dt = P - (T - T_ambient) / R
type Model struct {
	// RthCW is the junction-to-ambient thermal resistance (°C/W).
	RthCW float64
	// CthJC is the thermal capacitance (J/°C).
	CthJC float64
	// TempC is the current junction temperature.
	TempC float64
	// AmbientC is the current ambient temperature.
	AmbientC float64
}

// NewModel returns a model in equilibrium with the ambient.
func NewModel(rth, cth, ambientC float64) *Model {
	if rth <= 0 || cth <= 0 {
		panic("thermal: non-positive RC parameters")
	}
	return &Model{RthCW: rth, CthJC: cth, TempC: ambientC, AmbientC: ambientC}
}

// SetAmbient changes the ambient temperature (environment interference).
func (m *Model) SetAmbient(c float64) { m.AmbientC = c }

// Step advances the model by dt seconds with the given dissipated power.
func (m *Model) Step(powerW, dt float64) {
	if dt <= 0 {
		return
	}
	dT := (powerW - (m.TempC-m.AmbientC)/m.RthCW) / m.CthJC
	m.TempC += dT * dt
}

// SteadyState returns the equilibrium temperature at constant power.
func (m *Model) SteadyState(powerW float64) float64 {
	return m.AmbientC + powerW*m.RthCW
}

// OperatingPoint is one DVFS level.
type OperatingPoint struct {
	// Name labels the level ("nominal", "eco", ...).
	Name string
	// Speed is the relative execution speed (1.0 nominal).
	Speed float64
	// PowerW is the dissipated power at full utilization.
	PowerW float64
}

// Governor is a reactive DVFS governor with hysteresis: above HiC it steps
// down one level; below LoC it steps back up.
type Governor struct {
	// Levels are ordered fastest (hottest) first.
	Levels []OperatingPoint
	// HiC and LoC are the hysteresis thresholds.
	HiC, LoC float64

	cur int

	// Transitions counts level changes.
	Transitions int
}

// NewGovernor creates a governor starting at the fastest level.
func NewGovernor(levels []OperatingPoint, hiC, loC float64) (*Governor, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("thermal: no operating points")
	}
	if hiC <= loC {
		return nil, fmt.Errorf("thermal: HiC %v must exceed LoC %v", hiC, loC)
	}
	for i := 1; i < len(levels); i++ {
		if levels[i].Speed > levels[i-1].Speed {
			return nil, fmt.Errorf("thermal: levels must be ordered fastest first")
		}
	}
	return &Governor{Levels: levels, HiC: hiC, LoC: loC}, nil
}

// DefaultLevels returns three representative operating points.
func DefaultLevels() []OperatingPoint {
	return []OperatingPoint{
		{Name: "turbo", Speed: 1.0, PowerW: 18},
		{Name: "nominal", Speed: 0.8, PowerW: 11},
		{Name: "eco", Speed: 0.6, PowerW: 6},
	}
}

// Current returns the active operating point.
func (g *Governor) Current() OperatingPoint { return g.Levels[g.cur] }

// Update reacts to a temperature reading; it returns true if the level
// changed.
func (g *Governor) Update(tempC float64) bool {
	switch {
	case tempC > g.HiC && g.cur < len(g.Levels)-1:
		g.cur++
		g.Transitions++
		return true
	case tempC < g.LoC && g.cur > 0:
		g.cur--
		g.Transitions++
		return true
	}
	return false
}

// ThrottleCurve returns the intrinsic hardware slowdown at a junction
// temperature: 1.0 below the throttle onset, decaying linearly to the
// floor at the critical temperature. This models silicon-enforced
// throttling that happens regardless of the governor — "the deteriorated
// hardware performance can still cause deadline misses".
type ThrottleCurve struct {
	// OnsetC is where throttling begins.
	OnsetC float64
	// CriticalC is where the floor is reached (and damage accrues).
	CriticalC float64
	// Floor is the minimum speed factor.
	Floor float64
}

// DefaultThrottle returns a curve with onset 85°C, critical 105°C,
// floor 0.4.
func DefaultThrottle() ThrottleCurve {
	return ThrottleCurve{OnsetC: 85, CriticalC: 105, Floor: 0.4}
}

// Factor returns the hardware speed factor at the given temperature.
func (c ThrottleCurve) Factor(tempC float64) float64 {
	if tempC <= c.OnsetC {
		return 1
	}
	if tempC >= c.CriticalC {
		return c.Floor
	}
	frac := (tempC - c.OnsetC) / (c.CriticalC - c.OnsetC)
	return 1 - frac*(1-c.Floor)
}

// AmbientProfile produces ambient temperature over time (s): a sinusoidal
// day/heat-soak profile plus a configurable heat wave window.
type AmbientProfile struct {
	// BaseC is the mean ambient.
	BaseC float64
	// SwingC is the day/night half-amplitude.
	SwingC float64
	// PeriodS is the oscillation period.
	PeriodS float64
	// HeatWaveStartS/HeatWaveEndS bound an additive heat wave.
	HeatWaveStartS float64
	HeatWaveEndS   float64
	// HeatWaveC is the additional temperature during the wave.
	HeatWaveC float64
}

// At returns the ambient temperature at time t (seconds).
func (p AmbientProfile) At(tS float64) float64 {
	c := p.BaseC
	if p.PeriodS > 0 {
		c += p.SwingC * math.Sin(2*math.Pi*tS/p.PeriodS)
	}
	if tS >= p.HeatWaveStartS && tS < p.HeatWaveEndS {
		c += p.HeatWaveC
	}
	return c
}

// PlantDrift returns the multiplicative drift of a controlled plant's
// parameters with temperature — Section V: "temperature can alter the
// physical properties of the system such that the anticipated plant models
// for control software no longer apply". The drift is 1.0 at 20°C and
// grows by coeff per °C of deviation.
func PlantDrift(tempC, coeff float64) float64 {
	return 1 + coeff*math.Abs(tempC-20)
}
