// Package rte simulates the CCC execution domain of Section II.B: a
// microkernel-based run-time environment hosting application components as
// micro servers with capability-protected service sessions, scheduled by a
// static-priority preemptive dispatcher, and dynamically reconfigurable by
// the model domain (the MCC).
package rte

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// TaskSpec describes a periodic task to be scheduled on a processor.
type TaskSpec struct {
	// Name identifies the task.
	Name string
	// Priority: numerically lower = higher priority; unique per processor.
	Priority int
	// Period is the activation period (> 0).
	Period sim.Time
	// WCET is the modeled worst-case execution time at reference speed.
	WCET sim.Time
	// Deadline is the relative deadline (0 = period).
	Deadline sim.Time
	// Exec, if non-nil, draws the actual execution time of each job (at
	// reference speed). Nil means every job takes exactly WCET. Jobs may
	// exceed WCET (a model deviation) — the monitors exist to catch that.
	Exec func() sim.Time
	// Offset delays the first release.
	Offset sim.Time
	// Jitter delays each release by a uniform amount in [0, Jitter],
	// matching the CPA periodic-with-jitter event model. Requires Rng.
	Jitter sim.Time
	// Rng draws the jitter; required when Jitter > 0 (determinism: the
	// caller owns the seed).
	Rng *sim.RNG
}

func (t TaskSpec) effectiveDeadline() sim.Time {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return t.Period
}

// JobRecord describes one completed job, delivered to completion listeners.
type JobRecord struct {
	Task     string
	Release  sim.Time
	Finish   sim.Time
	Exec     sim.Time // actual execution time consumed (wall, at current speeds)
	Demand   sim.Time // execution demand at reference speed
	Deadline sim.Time // absolute deadline
	Missed   bool
}

// Response returns the job's response time.
func (j JobRecord) Response() sim.Time { return j.Finish - j.Release }

// CompletionListener observes completed jobs (monitors hook in here).
type CompletionListener func(JobRecord)

type job struct {
	task      *taskState
	release   sim.Time
	deadline  sim.Time
	remaining float64 // remaining demand at reference speed, in ns
	consumed  sim.Time
}

type taskState struct {
	spec    TaskSpec
	proc    *Proc
	ticker  *sim.Event
	enabled bool

	// Stats
	Released  int
	Completed int
	Missed    int
	MaxResp   sim.Time
	SumResp   sim.Time
}

// Proc is a simulated processor with static-priority preemptive dispatch.
// Speed scales execution: demand d takes d/Speed wall time; the thermal
// experiment (E6) lowers Speed to model DVFS and thermal throttling.
type Proc struct {
	sim   *sim.Simulator
	name  string
	speed float64

	// CtxSwitch is an optional dispatch overhead charged at every context
	// switch (used by the monitor-overhead experiment E9).
	CtxSwitch sim.Time

	tasks     map[string]*taskState
	ready     []*job
	running   *job
	runStart  sim.Time
	complEv   *sim.Event
	listeners []CompletionListener

	// BusyTime accumulates execution (for utilization accounting).
	BusyTime sim.Time
	// CtxSwitches counts dispatches that changed the running job.
	CtxSwitches int
}

// NewProc creates a processor with the given reference speed (1.0 nominal).
func NewProc(s *sim.Simulator, name string, speed float64) *Proc {
	if speed <= 0 {
		panic("rte: non-positive speed")
	}
	return &Proc{sim: s, name: name, speed: speed, tasks: make(map[string]*taskState)}
}

// Name returns the processor name.
func (p *Proc) Name() string { return p.name }

// Speed returns the current speed factor.
func (p *Proc) Speed() float64 { return p.speed }

// SetSpeed changes the speed factor (DVFS). The running job's remaining
// demand is preserved; its completion is rescheduled at the new speed.
func (p *Proc) SetSpeed(speed float64) {
	if speed <= 0 {
		panic("rte: non-positive speed")
	}
	p.chargeRunning()
	p.speed = speed
	p.redispatch()
}

// OnCompletion registers a completion listener.
func (p *Proc) OnCompletion(l CompletionListener) {
	p.listeners = append(p.listeners, l)
}

// AddTask installs and starts a periodic task. It returns an error on
// duplicate names or priorities.
func (p *Proc) AddTask(spec TaskSpec) error {
	if spec.Period <= 0 {
		return fmt.Errorf("rte: task %q has non-positive period", spec.Name)
	}
	if spec.WCET <= 0 {
		return fmt.Errorf("rte: task %q has non-positive WCET", spec.Name)
	}
	if _, dup := p.tasks[spec.Name]; dup {
		return fmt.Errorf("rte: duplicate task %q", spec.Name)
	}
	if spec.Jitter < 0 {
		return fmt.Errorf("rte: task %q has negative jitter", spec.Name)
	}
	if spec.Jitter > 0 && spec.Rng == nil {
		return fmt.Errorf("rte: task %q has jitter but no RNG", spec.Name)
	}
	for _, t := range p.tasks {
		if t.spec.Priority == spec.Priority {
			return fmt.Errorf("rte: tasks %q and %q share priority %d", t.spec.Name, spec.Name, spec.Priority)
		}
	}
	ts := &taskState{spec: spec, proc: p, enabled: true}
	p.tasks[spec.Name] = ts
	release := func() {
		if !ts.enabled {
			return
		}
		if spec.Jitter > 0 {
			// Delay the release within the jitter window; the nominal
			// activation grid stays periodic.
			d := sim.Time(spec.Rng.Uniform(0, float64(spec.Jitter)))
			p.sim.Schedule(d, func() {
				if ts.enabled {
					p.release(ts)
				}
			})
			return
		}
		p.release(ts)
	}
	// First release after Offset, then periodic.
	p.sim.Schedule(spec.Offset, func() {
		release()
		ts.ticker = p.sim.Every(spec.Period, func() bool {
			if _, live := p.tasks[spec.Name]; !live {
				return false
			}
			release()
			return true
		})
	})
	return nil
}

// RemoveTask stops and removes a task; queued jobs of the task are dropped.
func (p *Proc) RemoveTask(name string) error {
	ts, ok := p.tasks[name]
	if !ok {
		return fmt.Errorf("rte: no task %q", name)
	}
	ts.enabled = false
	if ts.ticker != nil {
		ts.ticker.Cancel()
	}
	delete(p.tasks, name)
	// Drop queued jobs.
	kept := p.ready[:0]
	for _, j := range p.ready {
		if j.task != ts {
			kept = append(kept, j)
		}
	}
	p.ready = kept
	if p.running != nil && p.running.task == ts {
		p.chargeRunning()
		if p.complEv != nil {
			p.complEv.Cancel()
			p.complEv = nil
		}
		p.running = nil
		p.redispatch()
	}
	return nil
}

// SetTaskEnabled pauses or resumes releases of a task without removing it.
func (p *Proc) SetTaskEnabled(name string, enabled bool) error {
	ts, ok := p.tasks[name]
	if !ok {
		return fmt.Errorf("rte: no task %q", name)
	}
	ts.enabled = enabled
	return nil
}

// TaskStats returns (released, completed, missed, maxResponse) for a task.
func (p *Proc) TaskStats(name string) (released, completed, missed int, maxResp sim.Time, err error) {
	ts, ok := p.tasks[name]
	if !ok {
		return 0, 0, 0, 0, fmt.Errorf("rte: no task %q", name)
	}
	return ts.Released, ts.Completed, ts.Missed, ts.MaxResp, nil
}

// Utilization returns BusyTime / elapsed.
func (p *Proc) Utilization() float64 {
	now := p.sim.Now()
	if now == 0 {
		return 0
	}
	return float64(p.BusyTime) / float64(now)
}

// release creates a job for the task and dispatches.
func (p *Proc) release(ts *taskState) {
	demand := ts.spec.WCET
	if ts.spec.Exec != nil {
		demand = ts.spec.Exec()
	}
	if demand <= 0 {
		demand = 1
	}
	now := p.sim.Now()
	j := &job{
		task:      ts,
		release:   now,
		deadline:  now + ts.spec.effectiveDeadline(),
		remaining: float64(demand),
	}
	ts.Released++
	p.ready = append(p.ready, j)
	p.chargeRunning()
	p.redispatch()
}

// chargeRunning books the work done by the running job up to now and
// cancels its completion event, leaving the job in p.running.
func (p *Proc) chargeRunning() {
	if p.running == nil {
		return
	}
	now := p.sim.Now()
	elapsed := now - p.runStart
	if elapsed > 0 {
		done := float64(elapsed) * p.speed
		p.running.remaining -= done
		if p.running.remaining < 0 {
			p.running.remaining = 0
		}
		p.running.consumed += elapsed
		p.BusyTime += elapsed
		p.runStart = now
	}
	if p.complEv != nil {
		p.complEv.Cancel()
		p.complEv = nil
	}
}

// redispatch selects the highest-priority job among ready + running and
// (re)schedules its completion.
func (p *Proc) redispatch() {
	// A running job whose demand is already exhausted (preempted at its
	// exact completion instant) finishes now rather than being requeued.
	if p.running != nil && p.running.remaining <= 0 {
		j := p.running
		p.complEv = nil
		p.complete(j) // complete() redispatches
		return
	}
	// Gather candidates.
	best := p.running
	bestIdx := -1
	for i, j := range p.ready {
		if best == nil || j.task.spec.Priority < best.task.spec.Priority {
			best = j
			bestIdx = i
		}
	}
	if best == nil {
		p.running = nil
		return
	}
	if bestIdx >= 0 {
		// Preemption or idle pickup: move best out of ready; push old
		// running back.
		p.ready = append(p.ready[:bestIdx], p.ready[bestIdx+1:]...)
		if p.running != nil {
			p.ready = append(p.ready, p.running)
		}
		p.CtxSwitches++
		if p.CtxSwitch > 0 {
			// Charge dispatch overhead as extra demand on the incoming job.
			best.remaining += float64(p.CtxSwitch) * p.speed
		}
		p.running = best
	}
	p.runStart = p.sim.Now()
	wall := sim.Time(math.Ceil(p.running.remaining / p.speed))
	if wall < 1 {
		wall = 1
	}
	run := p.running
	p.complEv = p.sim.Schedule(wall, func() { p.complete(run) })
}

// complete finishes the running job and dispatches the next one.
func (p *Proc) complete(j *job) {
	if p.running != j {
		return // stale event (job was preempted and rescheduled)
	}
	now := p.sim.Now()
	elapsed := now - p.runStart
	p.BusyTime += elapsed
	j.consumed += elapsed
	j.remaining = 0
	p.running = nil
	p.complEv = nil

	ts := j.task
	rec := JobRecord{
		Task:     ts.spec.Name,
		Release:  j.release,
		Finish:   now,
		Exec:     j.consumed,
		Demand:   sim.Time(float64(j.consumed) * p.speed), // approximation at final speed
		Deadline: j.deadline,
		Missed:   now > j.deadline,
	}
	ts.Completed++
	resp := rec.Response()
	if resp > ts.MaxResp {
		ts.MaxResp = resp
	}
	ts.SumResp += resp
	if rec.Missed {
		ts.Missed++
	}
	for _, l := range p.listeners {
		l(rec)
	}
	p.redispatch()
}

// Tasks returns the task names in deterministic order.
func (p *Proc) Tasks() []string {
	out := make([]string, 0, len(p.tasks))
	for n := range p.tasks {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
