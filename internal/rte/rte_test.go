package rte

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSingleTaskRuns(t *testing.T) {
	s := sim.New()
	p := NewProc(s, "cpu", 1.0)
	err := p.AddTask(TaskSpec{Name: "a", Priority: 1, Period: 10 * sim.Millisecond, WCET: 2 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	released, completed, missed, maxResp, err := p.TaskStats("a")
	if err != nil {
		t.Fatal(err)
	}
	// Releases at 0,10,...,100ms: the release at exactly 100ms fires within
	// the window but its job cannot complete inside it.
	if released != 11 || completed != 10 {
		t.Fatalf("released=%d completed=%d", released, completed)
	}
	if missed != 0 {
		t.Fatalf("missed=%d", missed)
	}
	if maxResp != 2*sim.Millisecond {
		t.Fatalf("maxResp=%v, want 2ms", maxResp)
	}
	// Utilization = 2/10.
	if u := p.Utilization(); u < 0.19 || u > 0.21 {
		t.Fatalf("utilization=%v", u)
	}
}

func TestPreemption(t *testing.T) {
	s := sim.New()
	p := NewProc(s, "cpu", 1.0)
	// Low-priority long task released at 0; high-priority short task at 1ms.
	if err := p.AddTask(TaskSpec{Name: "lo", Priority: 2, Period: 100 * sim.Millisecond, WCET: 10 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddTask(TaskSpec{Name: "hi", Priority: 1, Period: 100 * sim.Millisecond, WCET: 3 * sim.Millisecond, Offset: 1 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	var finishes = map[string]sim.Time{}
	p.OnCompletion(func(j JobRecord) { finishes[j.Task] = j.Finish })
	if err := s.RunFor(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// hi: released 1ms, preempts, finishes at 4ms.
	if finishes["hi"] != 4*sim.Millisecond {
		t.Fatalf("hi finished at %v, want 4ms", finishes["hi"])
	}
	// lo: 10ms work with 3ms preemption -> finishes at 13ms.
	if finishes["lo"] != 13*sim.Millisecond {
		t.Fatalf("lo finished at %v, want 13ms", finishes["lo"])
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	s := sim.New()
	p := NewProc(s, "cpu", 1.0)
	// Utilization 1.5: the low-priority task must miss.
	if err := p.AddTask(TaskSpec{Name: "hi", Priority: 1, Period: 10 * sim.Millisecond, WCET: 8 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddTask(TaskSpec{Name: "lo", Priority: 2, Period: 10 * sim.Millisecond, WCET: 7 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	_, _, hiMissed, _, _ := p.TaskStats("hi")
	_, _, loMissed, _, _ := p.TaskStats("lo")
	if hiMissed != 0 {
		t.Fatalf("hi missed %d deadlines", hiMissed)
	}
	if loMissed == 0 {
		t.Fatal("lo missed no deadlines under overload")
	}
}

func TestSpeedScaling(t *testing.T) {
	s := sim.New()
	p := NewProc(s, "cpu", 0.5) // half speed: 2ms demand takes 4ms wall
	if err := p.AddTask(TaskSpec{Name: "a", Priority: 1, Period: 20 * sim.Millisecond, WCET: 2 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	var first JobRecord
	p.OnCompletion(func(j JobRecord) {
		if first.Task == "" {
			first = j
		}
	})
	if err := s.RunFor(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if first.Response() != 4*sim.Millisecond {
		t.Fatalf("response=%v, want 4ms at half speed", first.Response())
	}
}

func TestSetSpeedMidJob(t *testing.T) {
	s := sim.New()
	p := NewProc(s, "cpu", 1.0)
	if err := p.AddTask(TaskSpec{Name: "a", Priority: 1, Period: 100 * sim.Millisecond, WCET: 10 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	// After 5ms (half done), drop to half speed: remaining 5ms demand
	// takes 10ms wall -> finish at 15ms.
	s.Schedule(5*sim.Millisecond, func() { p.SetSpeed(0.5) })
	var fin sim.Time
	p.OnCompletion(func(j JobRecord) { fin = j.Finish })
	if err := s.RunFor(30 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if fin != 15*sim.Millisecond {
		t.Fatalf("finish=%v, want 15ms", fin)
	}
}

func TestRemoveTaskStopsReleases(t *testing.T) {
	s := sim.New()
	p := NewProc(s, "cpu", 1.0)
	if err := p.AddTask(TaskSpec{Name: "a", Priority: 1, Period: 10 * sim.Millisecond, WCET: 1 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	s.Schedule(35*sim.Millisecond, func() {
		if err := p.RemoveTask("a"); err != nil {
			t.Error(err)
		}
	})
	if err := s.RunFor(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(p.Tasks()) != 0 {
		t.Fatal("task still present")
	}
}

func TestDuplicatePriorityRejected(t *testing.T) {
	s := sim.New()
	p := NewProc(s, "cpu", 1.0)
	if err := p.AddTask(TaskSpec{Name: "a", Priority: 1, Period: sim.Millisecond, WCET: 100 * sim.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddTask(TaskSpec{Name: "b", Priority: 1, Period: sim.Millisecond, WCET: 100 * sim.Microsecond}); err == nil {
		t.Fatal("duplicate priority accepted")
	}
	if err := p.AddTask(TaskSpec{Name: "a", Priority: 2, Period: sim.Millisecond, WCET: 100 * sim.Microsecond}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestExecFuncVariableDemand(t *testing.T) {
	s := sim.New()
	p := NewProc(s, "cpu", 1.0)
	rng := sim.NewRNG(1)
	var seen []sim.Time
	err := p.AddTask(TaskSpec{
		Name: "a", Priority: 1, Period: 10 * sim.Millisecond, WCET: 2 * sim.Millisecond,
		Exec: func() sim.Time { return sim.Time(rng.Uniform(500, 2000)) * sim.Microsecond },
	})
	if err != nil {
		t.Fatal(err)
	}
	p.OnCompletion(func(j JobRecord) { seen = append(seen, j.Exec) })
	if err := s.RunFor(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 {
		t.Fatalf("jobs=%d", len(seen))
	}
	varies := false
	for i := 1; i < len(seen); i++ {
		if seen[i] != seen[0] {
			varies = true
		}
	}
	if !varies {
		t.Fatal("execution times did not vary")
	}
}

// Property: simulated max response time never exceeds the CPA bound
// (scheduler conforms to the analysis model).
func TestPropSimulatedWithinAnalyticBound(t *testing.T) {
	f := func(c1, c2, c3 uint8) bool {
		w1 := sim.Time(c1%5+1) * sim.Millisecond
		w2 := sim.Time(c2%5+1) * sim.Millisecond
		w3 := sim.Time(c3%5+1) * sim.Millisecond
		// Periods chosen to keep utilization < 1.
		p1, p2, p3 := 20*sim.Millisecond, 40*sim.Millisecond, 80*sim.Millisecond
		if float64(w1)/float64(p1)+float64(w2)/float64(p2)+float64(w3)/float64(p3) >= 0.95 {
			return true
		}
		s := sim.New()
		p := NewProc(s, "cpu", 1.0)
		if p.AddTask(TaskSpec{Name: "t1", Priority: 1, Period: p1, WCET: w1}) != nil {
			return false
		}
		if p.AddTask(TaskSpec{Name: "t2", Priority: 2, Period: p2, WCET: w2}) != nil {
			return false
		}
		if p.AddTask(TaskSpec{Name: "t3", Priority: 3, Period: p3, WCET: w3}) != nil {
			return false
		}
		if s.RunFor(2*sim.Second) != nil {
			return false
		}
		// Analytic WCRT for t3 via simple busy-window (all released at 0 =
		// critical instant, which the simulation reproduces).
		wcrt := w3
		for {
			next := w3 +
				sim.Time(ceilDiv(int64(wcrt), int64(p1)))*w1 +
				sim.Time(ceilDiv(int64(wcrt), int64(p2)))*w2
			if next == wcrt {
				break
			}
			wcrt = next
		}
		_, _, _, maxResp, err := p.TaskStats("t3")
		if err != nil {
			return false
		}
		return maxResp <= wcrt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

func TestJitteredReleases(t *testing.T) {
	s := sim.New()
	p := NewProc(s, "cpu", 1.0)
	rng := sim.NewRNG(7)
	var releases []sim.Time
	err := p.AddTask(TaskSpec{
		Name: "j", Priority: 1, Period: 10 * sim.Millisecond, WCET: sim.Millisecond,
		Jitter: 3 * sim.Millisecond, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.OnCompletion(func(jr JobRecord) { releases = append(releases, jr.Release) })
	if err := s.RunFor(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(releases) < 15 {
		t.Fatalf("releases = %d", len(releases))
	}
	jittered := false
	for i, r := range releases {
		// Release i belongs to nominal activation i*10ms (offset 0 grid),
		// within [grid, grid+3ms].
		grid := sim.Time(i) * 10 * sim.Millisecond
		if r < grid || r > grid+3*sim.Millisecond {
			t.Fatalf("release %d at %v outside [%v, %v]", i, r, grid, grid+3*sim.Millisecond)
		}
		if r != grid {
			jittered = true
		}
	}
	if !jittered {
		t.Fatal("no release was actually jittered")
	}
}

func TestJitterValidation(t *testing.T) {
	s := sim.New()
	p := NewProc(s, "cpu", 1.0)
	if err := p.AddTask(TaskSpec{Name: "a", Priority: 1, Period: sim.Millisecond, WCET: sim.Microsecond, Jitter: sim.Millisecond}); err == nil {
		t.Fatal("jitter without RNG accepted")
	}
	if err := p.AddTask(TaskSpec{Name: "b", Priority: 2, Period: sim.Millisecond, WCET: sim.Microsecond, Jitter: -1}); err == nil {
		t.Fatal("negative jitter accepted")
	}
}

// Property: with jitter, the simulated max response stays within the CPA
// jittered bound for a two-task set.
func TestPropJitteredWithinAnalyticBound(t *testing.T) {
	f := func(seed uint16, jRaw uint8) bool {
		jit := sim.Time(jRaw%5) * sim.Millisecond
		s := sim.New()
		p := NewProc(s, "cpu", 1.0)
		rng := sim.NewRNG(uint64(seed) + 1)
		if p.AddTask(TaskSpec{
			Name: "hi", Priority: 1, Period: 20 * sim.Millisecond, WCET: 4 * sim.Millisecond,
			Jitter: jit, Rng: rng,
		}) != nil {
			return false
		}
		if p.AddTask(TaskSpec{
			Name: "lo", Priority: 2, Period: 50 * sim.Millisecond, WCET: 10 * sim.Millisecond,
		}) != nil {
			return false
		}
		if s.RunFor(2*sim.Second) != nil {
			return false
		}
		// CPA bound for lo: busy window with hi's jittered event model.
		// w = 10 + ceil((w+J)/20)*4, R = w (lo has no jitter).
		w := 10 * sim.Millisecond
		for i := 0; i < 100; i++ {
			next := 10*sim.Millisecond + sim.Time(ceilDiv(int64(w+jit), int64(20*sim.Millisecond)))*4*sim.Millisecond
			if next == w {
				break
			}
			w = next
		}
		_, _, _, maxResp, err := p.TaskStats("lo")
		if err != nil {
			return false
		}
		return maxResp <= w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCapabilityDefaultDeny(t *testing.T) {
	s := sim.New()
	r := New(s)
	if _, err := r.AddProc("cpu", 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddComponent("server", "cpu", []string{"svc"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddComponent("client", "cpu", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.OpenSession("client", "svc"); !errors.Is(err, ErrNoCapability) {
		t.Fatalf("err = %v, want ErrNoCapability", err)
	}
	if r.DeniedOpens != 1 {
		t.Fatalf("DeniedOpens = %d", r.DeniedOpens)
	}
	if err := r.Grant("client", "svc"); err != nil {
		t.Fatal(err)
	}
	sess, err := r.OpenSession("client", "svc")
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Open() || sess.Server.Name() != "server" {
		t.Fatalf("session: %+v", sess)
	}
}

func TestRevokeClosesSessions(t *testing.T) {
	s := sim.New()
	r := New(s)
	if _, err := r.AddProc("cpu", 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddComponent("server", "cpu", []string{"svc"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddComponent("client", "cpu", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Grant("client", "svc"); err != nil {
		t.Fatal(err)
	}
	sess, err := r.OpenSession("client", "svc")
	if err != nil {
		t.Fatal(err)
	}
	r.Revoke("client", "svc")
	if sess.Open() {
		t.Fatal("session open after revoke")
	}
	if r.HasCap("client", "svc") {
		t.Fatal("capability survived revoke")
	}
}

func TestKillComponent(t *testing.T) {
	s := sim.New()
	r := New(s)
	p, err := r.AddProc("cpu", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddComponent("brake", "cpu", []string{"braking"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddComponent("acc", "cpu", nil); err != nil {
		t.Fatal(err)
	}
	if err := p.AddTask(TaskSpec{Name: "brake", Priority: 1, Period: 10 * sim.Millisecond, WCET: sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := r.Grant("acc", "braking"); err != nil {
		t.Fatal(err)
	}
	sess, err := r.OpenSession("acc", "braking")
	if err != nil {
		t.Fatal(err)
	}

	if err := r.Kill("brake"); err != nil {
		t.Fatal(err)
	}
	if sess.Open() {
		t.Fatal("session open after server kill")
	}
	if len(p.Tasks()) != 0 {
		t.Fatal("task survived kill")
	}
	if _, err := r.OpenSession("acc", "braking"); !errors.Is(err, ErrNoProvider) {
		t.Fatalf("err = %v, want ErrNoProvider", err)
	}
	// Idempotent.
	if err := r.Kill("brake"); err != nil {
		t.Fatal(err)
	}
}

func TestRestartComponent(t *testing.T) {
	s := sim.New()
	r := New(s)
	if _, err := r.AddProc("cpu", 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddComponent("brake", "cpu", []string{"braking"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddComponent("acc", "cpu", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Grant("acc", "braking"); err != nil {
		t.Fatal(err)
	}
	if err := r.Kill("brake"); err != nil {
		t.Fatal(err)
	}
	if err := r.Restart("brake"); err != nil {
		t.Fatal(err)
	}
	if r.Component("brake").Killed() {
		t.Fatal("still killed after restart")
	}
	if _, err := r.OpenSession("acc", "braking"); err != nil {
		t.Fatalf("session after restart: %v", err)
	}
}

func TestServiceConflict(t *testing.T) {
	s := sim.New()
	r := New(s)
	if _, err := r.AddProc("cpu", 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddComponent("a", "cpu", []string{"svc"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddComponent("b", "cpu", []string{"svc"}); err == nil {
		t.Fatal("duplicate provider accepted")
	}
}

func TestOpenSessionsOf(t *testing.T) {
	s := sim.New()
	r := New(s)
	if _, err := r.AddProc("cpu", 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddComponent("srv", "cpu", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddComponent("cli", "cpu", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Grant("cli", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.OpenSession("cli", "x"); err != nil {
		t.Fatal(err)
	}
	if got := r.OpenSessionsOf("srv"); len(got) != 1 {
		t.Fatalf("sessions of srv = %d", len(got))
	}
	if got := r.OpenSessionsOf("cli"); len(got) != 1 {
		t.Fatalf("sessions of cli = %d", len(got))
	}
	if got := r.OpenSessionsOf("ghost"); len(got) != 0 {
		t.Fatalf("sessions of ghost = %d", len(got))
	}
}

func TestCtxSwitchOverheadCounted(t *testing.T) {
	s := sim.New()
	p := NewProc(s, "cpu", 1.0)
	p.CtxSwitch = 100 * sim.Microsecond
	if err := p.AddTask(TaskSpec{Name: "a", Priority: 1, Period: 10 * sim.Millisecond, WCET: 1 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	var resp sim.Time
	p.OnCompletion(func(j JobRecord) { resp = j.Response() })
	if err := s.RunFor(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if resp != 1100*sim.Microsecond {
		t.Fatalf("response=%v, want 1.1ms with ctx switch", resp)
	}
	if p.CtxSwitches == 0 {
		t.Fatal("no context switches counted")
	}
}
