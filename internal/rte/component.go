package rte

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Component is a hosted application or platform component. Components that
// provide services act as micro servers; others are pure clients.
// "micro servers provide services that can be granted to other components
// that require these services" (Section II.B).
type Component struct {
	name     string
	proc     *Proc
	provides map[string]bool
	killed   bool
}

// Name returns the component's identifier.
func (c *Component) Name() string { return c.name }

// Proc returns the processor hosting the component.
func (c *Component) Proc() *Proc { return c.proc }

// Provides reports whether the component serves the named service.
func (c *Component) Provides(service string) bool { return c.provides[service] }

// Killed reports whether the component has been terminated.
func (c *Component) Killed() bool { return c.killed }

// Session is an open client/server service connection.
type Session struct {
	Client  *Component
	Server  *Component
	Service string
	open    bool
}

// Open reports whether the session is still usable.
func (s *Session) Open() bool { return s.open && !s.Client.killed && !s.Server.killed }

// Errors of the capability system.
var (
	ErrNoCapability = errors.New("rte: no capability for service")
	ErrNoProvider   = errors.New("rte: no provider for service")
	ErrKilled       = errors.New("rte: component killed")
	ErrDupComponent = errors.New("rte: duplicate component")
)

// RTE is the run-time environment: processors, components, the service
// registry, and the capability table enforcing least privilege — a client
// may only open a session to a service it has explicitly been granted.
type RTE struct {
	sim        *sim.Simulator
	procs      map[string]*Proc
	components map[string]*Component
	providers  map[string]string          // service -> component name
	caps       map[string]map[string]bool // client -> service -> granted
	sessions   []*Session

	// DeniedOpens counts rejected session opens (least-privilege
	// violations attempted), a security-relevant metric.
	DeniedOpens int
}

// New creates an empty RTE on the simulator.
func New(s *sim.Simulator) *RTE {
	return &RTE{
		sim:        s,
		procs:      make(map[string]*Proc),
		components: make(map[string]*Component),
		providers:  make(map[string]string),
		caps:       make(map[string]map[string]bool),
	}
}

// Sim returns the underlying simulator.
func (r *RTE) Sim() *sim.Simulator { return r.sim }

// AddProc creates a processor in the RTE.
func (r *RTE) AddProc(name string, speed float64) (*Proc, error) {
	if _, dup := r.procs[name]; dup {
		return nil, fmt.Errorf("rte: duplicate processor %q", name)
	}
	p := NewProc(r.sim, name, speed)
	r.procs[name] = p
	return p, nil
}

// Proc returns the named processor, or nil.
func (r *RTE) Proc(name string) *Proc { return r.procs[name] }

// Procs returns processor names in deterministic order.
func (r *RTE) Procs() []string {
	out := make([]string, 0, len(r.procs))
	for n := range r.procs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AddComponent hosts a component on a processor, registering the services
// it provides.
func (r *RTE) AddComponent(name, proc string, provides []string) (*Component, error) {
	if _, dup := r.components[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDupComponent, name)
	}
	p, ok := r.procs[proc]
	if !ok {
		return nil, fmt.Errorf("rte: no processor %q", proc)
	}
	c := &Component{name: name, proc: p, provides: make(map[string]bool)}
	for _, s := range provides {
		if other, taken := r.providers[s]; taken {
			return nil, fmt.Errorf("rte: service %q already provided by %q", s, other)
		}
		c.provides[s] = true
		r.providers[s] = name
	}
	r.components[name] = c
	return c, nil
}

// Component returns the named component, or nil.
func (r *RTE) Component(name string) *Component { return r.components[name] }

// Components returns component names in deterministic order.
func (r *RTE) Components() []string {
	out := make([]string, 0, len(r.components))
	for n := range r.components {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Grant gives client the capability to open sessions to service. The MCC
// computes these grants from the implementation model's connections.
func (r *RTE) Grant(client, service string) error {
	if _, ok := r.components[client]; !ok {
		return fmt.Errorf("rte: no component %q", client)
	}
	m := r.caps[client]
	if m == nil {
		m = make(map[string]bool)
		r.caps[client] = m
	}
	m[service] = true
	return nil
}

// Revoke removes a capability and closes any session using it.
func (r *RTE) Revoke(client, service string) {
	if m := r.caps[client]; m != nil {
		delete(m, service)
	}
	for _, s := range r.sessions {
		if s.Client.name == client && s.Service == service {
			s.open = false
		}
	}
}

// HasCap reports whether client holds a capability for service.
func (r *RTE) HasCap(client, service string) bool {
	m := r.caps[client]
	return m != nil && m[service]
}

// OpenSession opens a client session to the provider of service. It fails
// without a capability (default deny — principle of least privilege).
func (r *RTE) OpenSession(client, service string) (*Session, error) {
	c, ok := r.components[client]
	if !ok {
		return nil, fmt.Errorf("rte: no component %q", client)
	}
	if c.killed {
		return nil, ErrKilled
	}
	if !r.HasCap(client, service) {
		r.DeniedOpens++
		return nil, fmt.Errorf("%w: %s -> %s", ErrNoCapability, client, service)
	}
	provName, ok := r.providers[service]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoProvider, service)
	}
	server := r.components[provName]
	if server.killed {
		return nil, fmt.Errorf("%w: provider %s", ErrKilled, provName)
	}
	s := &Session{Client: c, Server: server, Service: service, open: true}
	r.sessions = append(r.sessions, s)
	return s, nil
}

// Sessions returns all sessions (open and closed) for inspection.
func (r *RTE) Sessions() []*Session { return r.sessions }

// OpenSessionsOf returns the open sessions where the component is client
// or server.
func (r *RTE) OpenSessionsOf(name string) []*Session {
	var out []*Session
	for _, s := range r.sessions {
		if s.Open() && (s.Client.name == name || s.Server.name == name) {
			out = append(out, s)
		}
	}
	return out
}

// Kill terminates a component: its sessions close, its services vanish
// from the registry, and its tasks (by convention named after the
// component) are removed from its processor. This is the containment
// primitive the intrusion scenario uses.
func (r *RTE) Kill(name string) error {
	c, ok := r.components[name]
	if !ok {
		return fmt.Errorf("rte: no component %q", name)
	}
	if c.killed {
		return nil
	}
	c.killed = true
	for svc := range c.provides {
		delete(r.providers, svc)
	}
	for _, s := range r.sessions {
		if s.Client == c || s.Server == c {
			s.open = false
		}
	}
	// Remove any tasks named after the component.
	for _, tn := range c.proc.Tasks() {
		if tn == name {
			if err := c.proc.RemoveTask(tn); err != nil {
				return err
			}
		}
	}
	return nil
}

// Restart revives a killed component (recovery on the safety layer:
// "recovery mechanisms such as restarting the service with a different
// software setup may count as a countermeasure"). Services it provided
// are re-registered; capabilities and sessions must be re-established.
func (r *RTE) Restart(name string) error {
	c, ok := r.components[name]
	if !ok {
		return fmt.Errorf("rte: no component %q", name)
	}
	if !c.killed {
		return nil
	}
	for svc := range c.provides {
		if other, taken := r.providers[svc]; taken {
			return fmt.Errorf("rte: service %q meanwhile provided by %q", svc, other)
		}
	}
	for svc := range c.provides {
		r.providers[svc] = name
	}
	c.killed = false
	return nil
}
