package security

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/model"
)

// referenceCheckDomains is the pre-index implementation of CheckDomains,
// kept verbatim as the oracle: for every connection it linearly scans all
// instances to resolve the client and server functions — O(connections x
// instances x functions). The indexed CheckDomains must pin its findings
// order and content exactly, including the skip behaviour on dangling
// instance IDs and instances of unknown functions.
func referenceCheckDomains(im *model.ImplementationModel) []Finding {
	var out []Finding
	fa := im.Tech.Func
	fnOf := func(instanceID string) *model.Function {
		for _, in := range im.Tech.Instances {
			if in.ID() == instanceID {
				return fa.FunctionByName(in.Function)
			}
		}
		return nil
	}
	for _, c := range im.Connections {
		client := fnOf(c.Client)
		server := fnOf(c.Server)
		if client == nil || server == nil {
			continue
		}
		if client.Contract.Domain == server.Contract.Domain {
			continue
		}
		allowed := false
		for _, p := range client.Contract.AllowedPeers {
			if p == c.Service {
				allowed = true
				break
			}
		}
		if !allowed {
			out = append(out, Finding{
				Rule:    "cross-domain-connection",
				Subject: fmt.Sprintf("%s -> %s", c.Client, c.Server),
				Detail: fmt.Sprintf("client domain %q, server domain %q, service %q not in allowed peers",
					client.Contract.Domain, server.Contract.Domain, c.Service),
			})
		}
	}
	return out
}

// domainModel builds an implementation model exercising every branch of
// the domain check: multiple violations (order matters), a granted
// cross-domain session, a same-domain session, a dangling client
// instance ID, an instance of an unknown function, and a replica index
// with more than one digit.
func domainModel() *model.ImplementationModel {
	fa := &model.FunctionalArchitecture{
		Functions: []model.Function{
			{Name: "brake", Provides: []string{"brake_cmd"},
				Contract: model.Contract{Domain: "drive"}},
			{Name: "telem", Requires: []string{"brake_cmd"},
				Contract: model.Contract{Domain: "connectivity"}},
			{Name: "diag", Requires: []string{"brake_cmd"},
				Contract: model.Contract{Domain: "workshop", AllowedPeers: []string{"brake_cmd"}}},
			{Name: "ctl", Requires: []string{"brake_cmd"},
				Contract: model.Contract{Domain: "drive"}},
			{Name: "media", Requires: []string{"brake_cmd"},
				Contract: model.Contract{Domain: "infotainment"}, Replicas: 12},
		},
	}
	tech := &model.TechnicalArchitecture{
		Func: fa,
		Instances: []model.Instance{
			{Function: "brake", Replica: 0, Processor: "p0"},
			{Function: "telem", Replica: 0, Processor: "p1"},
			{Function: "diag", Replica: 0, Processor: "p1"},
			{Function: "ctl", Replica: 0, Processor: "p0"},
			{Function: "media", Replica: 11, Processor: "p1"},
			{Function: "ghost", Replica: 0, Processor: "p1"}, // unknown function
		},
	}
	return &model.ImplementationModel{
		Tech: tech,
		Connections: []model.Connection{
			{Client: "telem#0", Server: "brake#0", Service: "brake_cmd", CrossDomain: true},   // violation
			{Client: "diag#0", Server: "brake#0", Service: "brake_cmd", CrossDomain: true},    // granted
			{Client: "ctl#0", Server: "brake#0", Service: "brake_cmd"},                        // same domain
			{Client: "media#11", Server: "brake#0", Service: "brake_cmd", CrossDomain: true},  // violation, 2-digit replica
			{Client: "missing#0", Server: "brake#0", Service: "brake_cmd", CrossDomain: true}, // dangling client
			{Client: "telem#0", Server: "missing#0", Service: "brake_cmd", CrossDomain: true}, // dangling server
			{Client: "ghost#0", Server: "brake#0", Service: "brake_cmd", CrossDomain: true},   // unknown function
		},
	}
}

func TestCheckDomainsPinsReferenceImplementation(t *testing.T) {
	im := domainModel()
	want := referenceCheckDomains(im)
	got := CheckDomains(im)
	if len(want) != 2 {
		t.Fatalf("reference oracle found %d violations, fixture expects 2: %v", len(want), want)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("indexed CheckDomains diverges from the reference implementation:\ngot  %v\nwant %v", got, want)
	}
}

func TestCheckDomainsScopedFullEqualsCheckDomains(t *testing.T) {
	im := domainModel()
	got, checked := CheckDomainsScoped(im, nil, nil)
	if !reflect.DeepEqual(got, CheckDomains(im)) {
		t.Fatal("CheckDomainsScoped with nil predicates diverges from CheckDomains")
	}
	if checked != len(im.Connections) {
		t.Fatalf("full scoped check verified %d of %d connections", checked, len(im.Connections))
	}
}

func TestCheckDomainsScopedSplicesCleanConnections(t *testing.T) {
	im := domainModel()
	// Only the media client is dirty: the scoped check must re-verify
	// exactly its connection and still report its violation, while the
	// spliced telem violation — committed-clean in a real pipeline, dirty
	// here only in the full check — stays out by the splice contract.
	dirty := func(c model.Connection) bool { return FunctionName(c.Client) == "media" }
	got, checked := CheckDomainsScoped(im, nil, dirty)
	if checked != 1 {
		t.Fatalf("scoped check verified %d connections, want 1", checked)
	}
	if len(got) != 1 || got[0].Subject != "media#11 -> brake#0" {
		t.Fatalf("scoped findings = %v, want exactly the media violation", got)
	}
}

func TestFunctionName(t *testing.T) {
	cases := map[string]string{
		"brake#0":    "brake",
		"media#11":   "media",
		"odd#name#3": "odd#name", // '#' in the function name: split at the last one
		"noreplica":  "noreplica",
	}
	for id, want := range cases {
		if got := FunctionName(id); got != want {
			t.Errorf("FunctionName(%q) = %q, want %q", id, got, want)
		}
	}
}

func TestConnectionVerdictRule(t *testing.T) {
	client := &model.Function{Name: "c", Contract: model.Contract{Domain: "a", AllowedPeers: []string{"svc"}}}
	server := &model.Function{Name: "s", Contract: model.Contract{Domain: "b"}}
	conn := model.Connection{Client: "c#0", Server: "s#0", Service: "svc"}
	if _, bad := ConnectionVerdict(client, server, conn); bad {
		t.Fatal("granted cross-domain session flagged")
	}
	conn.Service = "other"
	if f, bad := ConnectionVerdict(client, server, conn); !bad || f.Rule != "cross-domain-connection" {
		t.Fatalf("ungranted cross-domain session not flagged: %v", f)
	}
	if _, bad := ConnectionVerdict(nil, server, conn); bad {
		t.Fatal("nil client must be skipped (structural validation reports it)")
	}
	if _, bad := ConnectionVerdict(client, nil, conn); bad {
		t.Fatal("nil server must be skipped (structural validation reports it)")
	}
}
