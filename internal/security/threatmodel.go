// Package security implements the security viewpoint of the CCC model
// domain: a vehicle threat model after "Towards Comprehensive Threat
// Modeling for Vehicles" [4] (assets, entry points, attack paths with
// reachability/risk analysis), the MCC's cross-domain communication
// acceptance check, and a communication-behaviour intrusion detection
// system after [5], which the cross-layer intrusion scenario (Section V)
// builds on: "by monitoring communication behavior, the system itself is
// capable of detecting components or subsystems affected by a security
// leak".
package security

import (
	"fmt"
	"sort"
)

// AssetKind classifies what an attacker could compromise.
type AssetKind int

// Asset kinds.
const (
	// AssetService is a software service (e.g. rear braking control).
	AssetService AssetKind = iota
	// AssetData is stored or transmitted data.
	AssetData
	// AssetActuation is a physical actuation capability.
	AssetActuation
)

// Asset is something of value in the threat model.
type Asset struct {
	Name string
	Kind AssetKind
	// Criticality in 1..10 (impact of compromise).
	Criticality int
}

// EntryPoint is an attack surface (OBD port, telematics unit, V2X radio).
type EntryPoint struct {
	Name string
	// Exposure in 1..10 (ease of initial access).
	Exposure int
}

// Edge is a potential lateral movement: an attacker at From can pivot to
// To with the given difficulty (1 = trivial .. 10 = very hard).
type Edge struct {
	From, To   string
	Difficulty int
}

// ThreatModel is the attack graph over entry points, intermediate
// components and assets.
type ThreatModel struct {
	Assets  map[string]Asset
	Entries map[string]EntryPoint
	edges   map[string][]Edge
}

// NewThreatModel returns an empty model.
func NewThreatModel() *ThreatModel {
	return &ThreatModel{
		Assets:  make(map[string]Asset),
		Entries: make(map[string]EntryPoint),
		edges:   make(map[string][]Edge),
	}
}

// AddAsset registers an asset node.
func (m *ThreatModel) AddAsset(a Asset) error {
	if a.Criticality < 1 || a.Criticality > 10 {
		return fmt.Errorf("security: asset %q criticality %d outside 1..10", a.Name, a.Criticality)
	}
	m.Assets[a.Name] = a
	return nil
}

// AddEntry registers an entry point.
func (m *ThreatModel) AddEntry(e EntryPoint) error {
	if e.Exposure < 1 || e.Exposure > 10 {
		return fmt.Errorf("security: entry %q exposure %d outside 1..10", e.Name, e.Exposure)
	}
	m.Entries[e.Name] = e
	return nil
}

// AddEdge registers a pivot edge.
func (m *ThreatModel) AddEdge(e Edge) error {
	if e.Difficulty < 1 || e.Difficulty > 10 {
		return fmt.Errorf("security: edge %s->%s difficulty %d outside 1..10", e.From, e.To, e.Difficulty)
	}
	m.edges[e.From] = append(m.edges[e.From], e)
	return nil
}

// AttackPath is a concrete route from an entry point to an asset.
type AttackPath struct {
	Entry string
	Asset string
	Steps []string // node names including entry and asset
	// Effort is the sum of edge difficulties along the path.
	Effort int
}

// Risk scores the path: criticality * exposure scaled down by effort.
// Higher = more urgent.
func (p AttackPath) Risk(m *ThreatModel) float64 {
	a, okA := m.Assets[p.Asset]
	e, okE := m.Entries[p.Entry]
	if !okA || !okE || p.Effort == 0 {
		return 0
	}
	return float64(a.Criticality*e.Exposure) / float64(p.Effort)
}

// ReachableAssets returns the assets reachable from the given entry point,
// sorted by name.
func (m *ThreatModel) ReachableAssets(entry string) []string {
	seen := map[string]bool{entry: true}
	stack := []string{entry}
	var out []string
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range m.edges[n] {
			if seen[e.To] {
				continue
			}
			seen[e.To] = true
			if _, isAsset := m.Assets[e.To]; isAsset {
				out = append(out, e.To)
			}
			stack = append(stack, e.To)
		}
	}
	sort.Strings(out)
	return out
}

// ShortestPaths returns, for every reachable asset, the minimum-effort
// attack path from the entry (Dijkstra over edge difficulty).
func (m *ThreatModel) ShortestPaths(entry string) []AttackPath {
	const inf = int(^uint(0) >> 1)
	dist := map[string]int{entry: 0}
	prev := map[string]string{}
	visited := map[string]bool{}
	for {
		// Extract min unvisited (deterministic tie-break by name).
		cur, curD := "", inf
		var names []string
		for n := range dist {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if !visited[n] && dist[n] < curD {
				cur, curD = n, dist[n]
			}
		}
		if cur == "" {
			break
		}
		visited[cur] = true
		for _, e := range m.edges[cur] {
			nd := curD + e.Difficulty
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				prev[e.To] = cur
			}
		}
	}
	var out []AttackPath
	var assets []string
	for a := range m.Assets {
		assets = append(assets, a)
	}
	sort.Strings(assets)
	for _, a := range assets {
		d, ok := dist[a]
		if !ok || a == entry {
			continue
		}
		// Reconstruct.
		var steps []string
		for n := a; ; n = prev[n] {
			steps = append([]string{n}, steps...)
			if n == entry {
				break
			}
		}
		out = append(out, AttackPath{Entry: entry, Asset: a, Steps: steps, Effort: d})
	}
	return out
}

// Harden raises the difficulty of the pivot edge from->to (installing a
// mitigation: authentication on a diagnostic interface, a filtering
// gateway, ...). It returns an error if no such edge exists.
func (m *ThreatModel) Harden(from, to string, newDifficulty int) error {
	if newDifficulty < 1 || newDifficulty > 10 {
		return fmt.Errorf("security: difficulty %d outside 1..10", newDifficulty)
	}
	found := false
	for i := range m.edges[from] {
		if m.edges[from][i].To == to {
			if newDifficulty < m.edges[from][i].Difficulty {
				return fmt.Errorf("security: hardening cannot lower difficulty (%d -> %d)",
					m.edges[from][i].Difficulty, newDifficulty)
			}
			m.edges[from][i].Difficulty = newDifficulty
			found = true
		}
	}
	if !found {
		return fmt.Errorf("security: no edge %s -> %s", from, to)
	}
	return nil
}

// TotalRisk sums the risk of the minimum-effort path to every asset
// reachable from the entry — the metric a mitigation campaign drives down.
func (m *ThreatModel) TotalRisk(entry string) float64 {
	var sum float64
	for _, p := range m.ShortestPaths(entry) {
		sum += p.Risk(m)
	}
	return sum
}

// BestMitigation evaluates hardening every single edge to maxDifficulty
// (10) and returns the edge whose hardening reduces TotalRisk from the
// entry the most, with the residual risk. It does not mutate the model.
func (m *ThreatModel) BestMitigation(entry string) (Edge, float64, error) {
	base := m.TotalRisk(entry)
	var best Edge
	bestRisk := base
	found := false
	// Deterministic edge order.
	var froms []string
	for f := range m.edges {
		froms = append(froms, f)
	}
	sort.Strings(froms)
	for _, f := range froms {
		for _, e := range m.edges[f] {
			if e.Difficulty >= 10 {
				continue
			}
			// Trial-harden on a copy of the difficulty.
			old := e.Difficulty
			if err := m.Harden(e.From, e.To, 10); err != nil {
				return Edge{}, 0, err
			}
			risk := m.TotalRisk(entry)
			// Restore.
			for i := range m.edges[e.From] {
				if m.edges[e.From][i].To == e.To {
					m.edges[e.From][i].Difficulty = old
				}
			}
			if risk < bestRisk {
				bestRisk = risk
				best = e
				found = true
			}
		}
	}
	if !found {
		return Edge{}, base, fmt.Errorf("security: no mitigation reduces risk from %q", entry)
	}
	return best, bestRisk, nil
}

// The security acceptance check over the implementation model's sessions
// (CheckDomains and its diff-scoped variant) lives in domains.go.
