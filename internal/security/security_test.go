package security

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

func buildThreatModel(t *testing.T) *ThreatModel {
	t.Helper()
	m := NewThreatModel()
	checks := []error{
		m.AddEntry(EntryPoint{Name: "telematics", Exposure: 8}),
		m.AddEntry(EntryPoint{Name: "obd", Exposure: 3}),
		m.AddAsset(Asset{Name: "rear-brake-ctl", Kind: AssetService, Criticality: 10}),
		m.AddAsset(Asset{Name: "trip-log", Kind: AssetData, Criticality: 3}),
		m.AddEdge(Edge{From: "telematics", To: "gateway", Difficulty: 4}),
		m.AddEdge(Edge{From: "gateway", To: "rear-brake-ctl", Difficulty: 6}),
		m.AddEdge(Edge{From: "gateway", To: "trip-log", Difficulty: 1}),
		m.AddEdge(Edge{From: "obd", To: "trip-log", Difficulty: 2}),
	}
	for _, err := range checks {
		if err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestReachableAssets(t *testing.T) {
	m := buildThreatModel(t)
	got := m.ReachableAssets("telematics")
	if len(got) != 2 || got[0] != "rear-brake-ctl" || got[1] != "trip-log" {
		t.Fatalf("reachable = %v", got)
	}
	got = m.ReachableAssets("obd")
	if len(got) != 1 || got[0] != "trip-log" {
		t.Fatalf("reachable from obd = %v", got)
	}
}

func TestShortestPaths(t *testing.T) {
	m := buildThreatModel(t)
	paths := m.ShortestPaths("telematics")
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	var brakePath AttackPath
	for _, p := range paths {
		if p.Asset == "rear-brake-ctl" {
			brakePath = p
		}
	}
	if brakePath.Effort != 10 {
		t.Fatalf("effort = %d, want 10", brakePath.Effort)
	}
	if len(brakePath.Steps) != 3 || brakePath.Steps[1] != "gateway" {
		t.Fatalf("steps = %v", brakePath.Steps)
	}
	// Risk: criticality 10 * exposure 8 / effort 10 = 8.
	if r := brakePath.Risk(m); r != 8 {
		t.Fatalf("risk = %v", r)
	}
}

func TestThreatModelValidation(t *testing.T) {
	m := NewThreatModel()
	if err := m.AddAsset(Asset{Name: "x", Criticality: 0}); err == nil {
		t.Fatal("criticality 0 accepted")
	}
	if err := m.AddEntry(EntryPoint{Name: "x", Exposure: 11}); err == nil {
		t.Fatal("exposure 11 accepted")
	}
	if err := m.AddEdge(Edge{From: "a", To: "b", Difficulty: 0}); err == nil {
		t.Fatal("difficulty 0 accepted")
	}
}

func TestHardenAndTotalRisk(t *testing.T) {
	m := buildThreatModel(t)
	before := m.TotalRisk("telematics")
	if before <= 0 {
		t.Fatalf("base risk = %v", before)
	}
	// Harden the telematics->gateway hop (e.g. authenticated tunnel).
	if err := m.Harden("telematics", "gateway", 9); err != nil {
		t.Fatal(err)
	}
	after := m.TotalRisk("telematics")
	if after >= before {
		t.Fatalf("hardening did not reduce risk: %v -> %v", before, after)
	}
	// Hardening cannot lower difficulty, reject bad ranges and ghosts.
	if err := m.Harden("telematics", "gateway", 2); err == nil {
		t.Fatal("difficulty lowering accepted")
	}
	if err := m.Harden("telematics", "gateway", 11); err == nil {
		t.Fatal("out-of-range difficulty accepted")
	}
	if err := m.Harden("ghost", "gateway", 9); err == nil {
		t.Fatal("unknown edge accepted")
	}
}

func TestBestMitigation(t *testing.T) {
	m := buildThreatModel(t)
	base := m.TotalRisk("telematics")
	edge, residual, err := m.BestMitigation("telematics")
	if err != nil {
		t.Fatal(err)
	}
	if residual >= base {
		t.Fatalf("best mitigation does not reduce risk: %v -> %v", base, residual)
	}
	// The choke point from telematics is the telematics->gateway hop
	// (hardening it degrades every downstream path).
	if edge.From != "telematics" || edge.To != "gateway" {
		t.Fatalf("best mitigation = %+v", edge)
	}
	// The evaluation must not have mutated the model.
	if got := m.TotalRisk("telematics"); got != base {
		t.Fatalf("model mutated: %v -> %v", base, got)
	}
}

func testIM() *model.ImplementationModel {
	fa := &model.FunctionalArchitecture{
		Functions: []model.Function{
			{Name: "acc", Provides: []string{"accel_cmd"}, Contract: model.Contract{Domain: "drive"}},
			{Name: "brake", Requires: []string{"accel_cmd"}, Contract: model.Contract{Domain: "drive"}},
			{Name: "telematics", Requires: []string{"accel_cmd"}, Contract: model.Contract{Domain: "connectivity"}},
		},
	}
	plat := &model.Platform{Processors: []model.Processor{{Name: "ecu", Policy: model.SPP, SpeedFactor: 1, RAMKiB: 1024, MaxSafety: model.ASILD}}}
	tech := &model.TechnicalArchitecture{
		Platform: plat, Func: fa,
		Instances: []model.Instance{
			{Function: "acc", Processor: "ecu"},
			{Function: "brake", Processor: "ecu"},
			{Function: "telematics", Processor: "ecu"},
		},
	}
	return &model.ImplementationModel{
		Tech: tech,
		Connections: []model.Connection{
			{Client: "brake#0", Server: "acc#0", Service: "accel_cmd"},
			{Client: "telematics#0", Server: "acc#0", Service: "accel_cmd", CrossDomain: true},
		},
	}
}

func TestCheckDomains(t *testing.T) {
	im := testIM()
	f := CheckDomains(im)
	if len(f) != 1 || f[0].Rule != "cross-domain-connection" {
		t.Fatalf("findings = %v", f)
	}
	// Whitelist the peer: passes.
	im.Tech.Func.Functions[2].Contract.AllowedPeers = []string{"accel_cmd"}
	if f := CheckDomains(im); len(f) != 0 {
		t.Fatalf("findings after allow = %v", f)
	}
}

func TestIDSLearnsAndDetectsUnauthorized(t *testing.T) {
	d := NewIDS()
	// Learning: acc talks to brake every 10ms.
	for i := 0; i < 10; i++ {
		d.Observe(CommEvent{Source: "acc", Service: "braking", At: sim.Time(i) * 10 * sim.Millisecond, Bytes: 8})
	}
	d.EndLearning()
	if d.Learning() {
		t.Fatal("still learning")
	}
	// Authorized pair at learned rate: benign.
	if !d.Observe(CommEvent{Source: "acc", Service: "braking", At: 110 * sim.Millisecond, Bytes: 8}) {
		t.Fatal("benign event flagged")
	}
	// Unknown pair: alert.
	if d.Observe(CommEvent{Source: "infotainment", Service: "braking", At: 120 * sim.Millisecond, Bytes: 8}) {
		t.Fatal("unauthorized pair admitted")
	}
	alerts := d.Alerts()
	if len(alerts) != 1 || alerts[0].Kind != "unauthorized-communication" {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestIDSRateAnomaly(t *testing.T) {
	d := NewIDS()
	for i := 0; i < 10; i++ {
		d.Observe(CommEvent{Source: "acc", Service: "braking", At: sim.Time(i) * 10 * sim.Millisecond, Bytes: 8})
	}
	d.EndLearning()
	// Gap 1ms << learned floor 10ms / slack 2 = 5ms: anomaly.
	d.Observe(CommEvent{Source: "acc", Service: "braking", At: 100 * sim.Millisecond, Bytes: 8})
	if d.Observe(CommEvent{Source: "acc", Service: "braking", At: 101 * sim.Millisecond, Bytes: 8}) {
		t.Fatal("flooding admitted")
	}
	found := false
	for _, a := range d.Alerts() {
		if a.Kind == "rate-anomaly" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rate-anomaly alert: %v", d.Alerts())
	}
}

func TestIDSPayloadAnomaly(t *testing.T) {
	d := NewIDS()
	for i := 0; i < 5; i++ {
		d.Observe(CommEvent{Source: "acc", Service: "braking", At: sim.Time(i) * 10 * sim.Millisecond, Bytes: 8})
	}
	d.EndLearning()
	if d.Observe(CommEvent{Source: "acc", Service: "braking", At: 60 * sim.Millisecond, Bytes: 64}) {
		t.Fatal("oversized payload admitted")
	}
	found := false
	for _, a := range d.Alerts() {
		if a.Kind == "payload-anomaly" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no payload-anomaly alert: %v", d.Alerts())
	}
}

func TestIDSAllowFromModel(t *testing.T) {
	d := NewIDS()
	d.Allow("acc", "braking")
	d.EndLearning()
	if !d.Observe(CommEvent{Source: "acc", Service: "braking", At: 0, Bytes: 8}) {
		t.Fatal("model-allowed pair flagged")
	}
}

func TestIDSSuspectSources(t *testing.T) {
	d := NewIDS()
	d.EndLearning()
	var cbAlerts int
	d.OnAlert(func(Alert) { cbAlerts++ })
	for i := 0; i < 5; i++ {
		d.Observe(CommEvent{Source: "mallory", Service: "braking", At: sim.Time(i), Bytes: 8})
	}
	d.Observe(CommEvent{Source: "oops", Service: "braking", At: 10, Bytes: 8})
	suspects := d.SuspectSources(3)
	if len(suspects) != 1 || suspects[0] != "mallory" {
		t.Fatalf("suspects = %v", suspects)
	}
	if got := d.AlertsBySource(); len(got["mallory"]) != 5 || len(got["oops"]) != 1 {
		t.Fatalf("by source = %v", got)
	}
	if cbAlerts != 6 {
		t.Fatalf("callback alerts = %d", cbAlerts)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Rule: "r", Subject: "s", Detail: "d"}
	if f.String() != "[r] s: d" {
		t.Fatalf("String = %q", f.String())
	}
}
