package security

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// CommEvent is one observed communication act: component src invoked
// service svc (or transmitted on a channel labelled svc).
type CommEvent struct {
	Source  string
	Service string
	At      sim.Time
	Bytes   int
}

// Alert is an intrusion detection finding.
type Alert struct {
	Kind    string // "unauthorized-communication", "rate-anomaly", "payload-anomaly"
	Source  string
	Service string
	At      sim.Time
	Detail  string
}

// pairKey identifies a (source, service) communication relation.
type pairKey struct{ src, svc string }

type pairProfile struct {
	// minGap is the smallest inter-arrival observed during learning.
	minGap sim.Time
	// maxBytes is the largest payload observed during learning.
	maxBytes int
	last     sim.Time
	seen     int
}

// IDS is a communication-behaviour intrusion detector after [5]: during a
// learning phase it records which (source, service) pairs communicate and
// their rate/payload envelope; in detection mode any unauthorized pair or
// out-of-envelope behaviour raises an alert. The allowed-pair table can
// also be installed directly from the MCC's implementation model (the
// modeled connections are the ground truth of permitted communication).
type IDS struct {
	learning bool
	profiles map[pairKey]*pairProfile
	allowed  map[pairKey]bool
	alerts   []Alert
	sinks    []func(Alert)

	// RateSlack loosens the learned minimum gap: an arrival is anomalous
	// only if the gap is shorter than minGap/RateSlack. Default 2.
	RateSlack float64
	// PayloadSlack loosens the learned max payload. Default 1.5.
	PayloadSlack float64
}

// NewIDS returns a detector in learning mode.
func NewIDS() *IDS {
	return &IDS{
		learning:     true,
		profiles:     make(map[pairKey]*pairProfile),
		allowed:      make(map[pairKey]bool),
		RateSlack:    2,
		PayloadSlack: 1.5,
	}
}

// OnAlert registers an alert callback.
func (d *IDS) OnAlert(fn func(Alert)) { d.sinks = append(d.sinks, fn) }

// Allow whitelists a (source, service) pair, e.g. from the MCC's modeled
// connections.
func (d *IDS) Allow(source, service string) {
	d.allowed[pairKey{source, service}] = true
}

// Learning reports whether the detector is still in the learning phase.
func (d *IDS) Learning() bool { return d.learning }

// EndLearning freezes the learned profiles and switches to detection.
func (d *IDS) EndLearning() {
	d.learning = false
	for k := range d.profiles {
		d.allowed[k] = true
	}
}

// Alerts returns all raised alerts.
func (d *IDS) Alerts() []Alert { return d.alerts }

// AlertsBySource returns alerts grouped per source, sorted by source name.
func (d *IDS) AlertsBySource() map[string][]Alert {
	out := make(map[string][]Alert)
	for _, a := range d.alerts {
		out[a.Source] = append(out[a.Source], a)
	}
	return out
}

// SuspectSources returns sources with at least threshold alerts, sorted by
// descending alert count — the containment candidates of the intrusion
// scenario.
func (d *IDS) SuspectSources(threshold int) []string {
	counts := d.AlertsBySource()
	var out []string
	for src, as := range counts {
		if len(as) >= threshold {
			out = append(out, src)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(counts[out[i]]) != len(counts[out[j]]) {
			return len(counts[out[i]]) > len(counts[out[j]])
		}
		return out[i] < out[j]
	})
	return out
}

func (d *IDS) raise(a Alert) {
	d.alerts = append(d.alerts, a)
	for _, s := range d.sinks {
		s(a)
	}
}

// Observe feeds one communication event; it returns true if the event is
// considered benign.
func (d *IDS) Observe(e CommEvent) bool {
	k := pairKey{e.Source, e.Service}
	p := d.profiles[k]
	if d.learning {
		if p == nil {
			p = &pairProfile{minGap: -1, last: e.At}
			d.profiles[k] = p
			p.seen = 1
			if e.Bytes > p.maxBytes {
				p.maxBytes = e.Bytes
			}
			return true
		}
		gap := e.At - p.last
		if p.minGap < 0 || (gap > 0 && gap < p.minGap) {
			p.minGap = gap
		}
		if e.Bytes > p.maxBytes {
			p.maxBytes = e.Bytes
		}
		p.last = e.At
		p.seen++
		return true
	}

	// Detection mode.
	if !d.allowed[k] {
		d.raise(Alert{
			Kind: "unauthorized-communication", Source: e.Source, Service: e.Service, At: e.At,
			Detail: fmt.Sprintf("%s never communicates with %s in the model", e.Source, e.Service),
		})
		return false
	}
	benign := true
	if p != nil {
		if p.minGap > 0 && d.RateSlack > 0 {
			gap := e.At - p.last
			if gap >= 0 && float64(gap) < float64(p.minGap)/d.RateSlack {
				d.raise(Alert{
					Kind: "rate-anomaly", Source: e.Source, Service: e.Service, At: e.At,
					Detail: fmt.Sprintf("gap %v below learned floor %v", gap, p.minGap),
				})
				benign = false
			}
		}
		if p.maxBytes > 0 && float64(e.Bytes) > float64(p.maxBytes)*d.PayloadSlack {
			d.raise(Alert{
				Kind: "payload-anomaly", Source: e.Source, Service: e.Service, At: e.At,
				Detail: fmt.Sprintf("payload %dB exceeds learned envelope %dB", e.Bytes, p.maxBytes),
			})
			benign = false
		}
		p.last = e.At
	}
	return benign
}
