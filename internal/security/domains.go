package security

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// This file implements the MCC's security acceptance check: the
// implementation model's sessions are verified against the contracting
// language's security domains. A connection crossing domains requires an
// explicit AllowedPeers entry on the client's contract (default-deny,
// mirroring the capability system of the execution domain).
//
// The per-connection rule lives in exactly one function
// (ConnectionVerdict) shared by the from-scratch check and the
// diff-scoped check, so the two can never drift apart: scoped findings
// are full-check findings by construction wherever the splice contract
// of CheckDomainsScoped holds.

// Finding is a security-viewpoint acceptance result.
type Finding struct {
	Rule    string
	Subject string
	Detail  string
}

func (f Finding) String() string { return fmt.Sprintf("[%s] %s: %s", f.Rule, f.Subject, f.Detail) }

// ConnectionVerdict applies the cross-domain rule to one connection,
// given its resolved client and server functions. A nil function means
// the connection references an entity the structural validation reports;
// the security viewpoint skips it, like the full model walk always has.
func ConnectionVerdict(client, server *model.Function, c model.Connection) (Finding, bool) {
	if client == nil || server == nil {
		return Finding{}, false // structural validation reports these
	}
	if client.Contract.Domain == server.Contract.Domain {
		return Finding{}, false
	}
	for _, p := range client.Contract.AllowedPeers {
		if p == c.Service {
			return Finding{}, false
		}
	}
	return Finding{
		Rule:    "cross-domain-connection",
		Subject: fmt.Sprintf("%s -> %s", c.Client, c.Server),
		Detail: fmt.Sprintf("client domain %q, server domain %q, service %q not in allowed peers",
			client.Contract.Domain, server.Contract.Domain, c.Service),
	}, true
}

// FunctionName recovers the function name from an instance ID
// ("name#replica"). The replica suffix is a decimal integer and can never
// contain '#', so splitting at the last '#' is unambiguous even when the
// function name itself contains one.
func FunctionName(instanceID string) string {
	if i := strings.LastIndexByte(instanceID, '#'); i >= 0 {
		return instanceID[:i]
	}
	return instanceID
}

// FunctionResolver maps an instance ID to its function (nil when either
// the instance or its function does not exist).
type FunctionResolver func(instanceID string) *model.Function

// instanceFunctions prebuilds the instance-ID -> function index of an
// implementation model in O(instances + functions). The naive per-lookup
// scan it replaces made the full domain check
// O(connections x instances x functions).
func instanceFunctions(im *model.ImplementationModel) FunctionResolver {
	fa := im.Tech.Func
	byName := make(map[string]*model.Function, len(fa.Functions))
	for i := range fa.Functions {
		byName[fa.Functions[i].Name] = &fa.Functions[i]
	}
	idx := make(map[string]*model.Function, len(im.Tech.Instances))
	for _, in := range im.Tech.Instances {
		idx[in.ID()] = byName[in.Function]
	}
	return func(id string) *model.Function { return idx[id] }
}

// CheckDomains verifies every session of the implementation model against
// the security domains: the from-scratch acceptance check, now
// O(connections + instances + functions) via a prebuilt instance index.
func CheckDomains(im *model.ImplementationModel) []Finding {
	out, _ := CheckDomainsScoped(im, nil, nil)
	return out
}

// CheckDomainsScoped verifies only the connections dirty selects and
// splices every other connection's committed verdict — which is always
// "clean", because a configuration is only committed after the full check
// passed. resolve maps instance IDs to functions (the MCC passes its
// committed lookup tables plus the proposal's diff overlay); nil builds
// the index from the model. dirty == nil selects every connection (the
// full check). The returned count is the number of per-connection
// verdicts actually computed — the SecurityChecks telemetry.
//
// Splice contract: the result is element-for-element identical to
// CheckDomains(im) provided every connection dirty skips (a) appears
// verbatim in a committed implementation model that passed the full
// check, and (b) has client and server functions whose contracts are
// unchanged since that commit. The MCC derives dirty from the
// function-level diff plus its committed per-connection verdict cache,
// which makes exactly that guarantee.
func CheckDomainsScoped(im *model.ImplementationModel, resolve FunctionResolver, dirty func(model.Connection) bool) ([]Finding, int) {
	if resolve == nil {
		resolve = instanceFunctions(im)
	}
	var out []Finding
	checked := 0
	for _, c := range im.Connections {
		if dirty != nil && !dirty(c) {
			continue // committed clean, inputs unchanged: splice
		}
		checked++
		if f, bad := ConnectionVerdict(resolve(c.Client), resolve(c.Server), c); bad {
			out = append(out, f)
		}
	}
	return out, checked
}
