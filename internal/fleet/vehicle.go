package fleet

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/mcc"
	"repro/internal/model"
)

// request is one admitted proposal waiting for its vehicle's worker.
type request struct {
	ctx    context.Context
	change mcc.Change
	reply  chan Decision
}

// vehicle is one tenant bulkhead: its own MCC, mailbox, and committed
// trajectory. The MCC and the committed slice are owned by the worker
// goroutine (and by the registration path before the worker starts);
// nothing else touches them.
type vehicle struct {
	id       string
	platform *model.Platform
	baseline *model.FunctionalArchitecture
	mbox     chan *request

	m         *mcc.MCC
	committed []mcc.Change // accepted changes since baseline, in order
	crashes   int          // consecutive worker crashes (supervisor state)

	parked atomic.Bool
}

// buildVehicle constructs the vehicle's MCC sharing the fleet analyzer,
// deploys the baseline through the full acceptance pipeline, and replays
// an optional committed-change trajectory (journal recovery and crash
// rebuilds). Replaying the exact accepted sequence — rather than
// wholesale re-proposing the final architecture — reproduces the
// original placement trajectory, so post-rebuild decisions equal a
// never-restarted oracle's.
func (s *Server) buildVehicle(v *vehicle, replay []mcc.Change) error {
	opts := append([]mcc.Option{mcc.WithAnalyzer(s.analyzer)}, s.cfg.MCCOptions...)
	if s.cfg.ProposalDeadline > 0 {
		opts = append(opts, mcc.WithProposalDeadline(s.cfg.ProposalDeadline))
	}
	m, err := mcc.New(v.platform, opts...)
	if err != nil {
		return fmt.Errorf("fleet: vehicle %s: %w", v.id, err)
	}
	if rep := m.ProposeArchitecture(v.baseline); !rep.Accepted {
		return fmt.Errorf("fleet: vehicle %s: baseline rejected at %s: %v",
			v.id, rep.RejectedAt, rep.Findings)
	}
	v.m = m
	v.committed = v.committed[:0]
	for _, c := range replay {
		rep := proposeChange(context.Background(), m, c)
		if !rep.Accepted {
			// A previously committed change re-deciding differently means
			// the committed state and the journal disagree; surface it
			// rather than silently diverging.
			return fmt.Errorf("fleet: vehicle %s: committed change %s rejected on replay at %s: %v",
				v.id, c, rep.RejectedAt, rep.Findings)
		}
		v.committed = append(v.committed, c)
	}
	return nil
}

// proposeChange dispatches one Change through the MCC's context-bounded
// entry points.
func proposeChange(ctx context.Context, m *mcc.MCC, c mcc.Change) *mcc.Report {
	if c.Update != nil {
		return m.ProposeUpdateContext(ctx, *c.Update)
	}
	return m.ProposeRemovalContext(ctx, c.Remove)
}

// runVehicle is the per-vehicle worker loop with its supervisor wrapped
// around it: decide requests until drain, recover crashes by rebuilding
// the vehicle from its committed trajectory (redelivering the in-flight
// request, which the crash never decided — the fleet.worker hook fires
// before the pipeline and the MCC recovers its own internal panics, so a
// crash cannot interrupt a commit), and park the vehicle once the crash
// budget is spent.
func (s *Server) runVehicle(v *vehicle) {
	defer s.wg.Done()
	var redelivered *request
	for {
		var req *request
		if redelivered != nil {
			req, redelivered = redelivered, nil
		} else {
			select {
			case req = <-v.mbox:
			case <-s.stopCh:
				s.flushMbox(v, nil)
				return
			}
		}
		if !s.decideOne(v, req) {
			v.crashes = 0
			continue
		}
		// Crash: the in-flight request was not decided. Park or rebuild.
		v.crashes++
		s.crashes.Add(1)
		if v.crashes > s.cfg.MaxRestarts {
			s.park(v, req)
			return
		}
		s.backoff(v.crashes)
		if err := s.rebuild(v); err != nil {
			// The rebuild itself failed (e.g. journal/state divergence):
			// treat it as a terminal crash and park.
			s.park(v, req)
			return
		}
		s.restarts.Add(1)
		redelivered = req
	}
}

// decideOne runs one request to a reply. It returns true when the worker
// crashed (recovered panic or injected fleet.worker fault) before
// deciding; the caller redelivers the request.
func (s *Server) decideOne(v *vehicle, req *request) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			crashed = true
		}
	}()
	// The per-tenant fault hook fires BEFORE the pipeline runs, so a
	// crash here never interrupts a commit: the request is either fully
	// decided or untouched. Stalls are bounded by the request context.
	if _, fired, err := s.cfg.Injector.Fire(req.ctx.Done(), "fleet.worker", v.id); fired && err != nil {
		return true
	}
	rep := proposeChange(req.ctx, v.m, req.change)
	verdict := Rejected
	if rep.Accepted {
		verdict = Accepted
		v.committed = append(v.committed, req.change)
		if s.journal != nil {
			// Journal before replying: a reply of "accepted" is only sent
			// for changes the journal already holds, so a crash after the
			// reply cannot lose a reported acceptance (a torn tail only
			// drops acceptances nobody heard about).
			s.journal.append(journalRecord{ //nolint:errcheck // best-effort durability
				Vehicle: v.id, Kind: recChange, Change: &req.change,
			})
		}
		s.accepted.Add(1)
	} else {
		s.rejected.Add(1)
	}
	s.decided.Add(1)
	s.finish(req, Decision{Vehicle: v.id, Verdict: verdict, Report: rep})
	return false
}

// finish replies to a request and releases its global in-flight slot.
func (s *Server) finish(req *request, d Decision) {
	req.reply <- d
	<-s.slots
}

// flushMbox resolves every queued request (plus an optional redelivered
// one) during drain: each still gets a real decision — drain loses no
// admitted request. A crash during the flush skips the rebuild (the
// server is going away) and resolves the remaining queue as parked.
func (s *Server) flushMbox(v *vehicle, redelivered *request) {
	if redelivered != nil {
		if s.decideOne(v, redelivered) {
			s.crashes.Add(1)
			s.finish(redelivered, Decision{Vehicle: v.id, Verdict: RejectedParked})
		}
	}
	for {
		select {
		case req := <-v.mbox:
			if s.decideOne(v, req) {
				s.crashes.Add(1)
				s.finish(req, Decision{Vehicle: v.id, Verdict: RejectedParked})
			}
		default:
			return
		}
	}
}

// park permanently retires a crashed vehicle: the redelivered request
// and everything still queued resolve as RejectedParked, and future
// Propose calls reject at admission. The rest of the fleet is untouched.
func (s *Server) park(v *vehicle, redelivered *request) {
	v.parked.Store(true)
	s.parked.Add(1)
	if redelivered != nil {
		s.finish(redelivered, Decision{Vehicle: v.id, Verdict: RejectedParked})
	}
	for {
		select {
		case req := <-v.mbox:
			s.finish(req, Decision{Vehicle: v.id, Verdict: RejectedParked})
		case <-s.stopCh:
			// Drain while parked: flush whatever raced in, then exit.
			for {
				select {
				case req := <-v.mbox:
					s.finish(req, Decision{Vehicle: v.id, Verdict: RejectedParked})
				default:
					return
				}
			}
		}
	}
}

// backoff sleeps the supervisor's exponential restart delay; a drain
// cuts it short so shutdown is never held up by a crashing tenant.
func (s *Server) backoff(crashes int) {
	d := s.cfg.RestartBackoff << (crashes - 1)
	const maxBackoff = 2 * time.Second
	if d > maxBackoff || d <= 0 {
		d = maxBackoff
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-s.stopCh:
	}
}

// rebuild reconstructs a crashed vehicle's MCC from its baseline and
// committed trajectory. The shared analyzer stays warm, so the replay
// re-pays only the cheap pipeline stages.
func (s *Server) rebuild(v *vehicle) error {
	replay := append([]mcc.Change(nil), v.committed...)
	return s.buildVehicle(v, replay)
}
