// Package fleet hosts many per-vehicle MCC instances behind one
// long-lived, supervised server — the multi-tenant backend the ROADMAP
// north star asks for. Each vehicle is a bulkhead: its own MCC, its own
// bounded proposal mailbox, its own worker goroutine. A crashed worker
// (recovered panic or injected fault) is restarted by the supervisor —
// the vehicle is rebuilt from its committed change trajectory, restart-
// counted with exponential backoff, and permanently parked after the
// configured crash budget — while every other tenant keeps deciding.
//
// Admission is never blocking: a global in-flight budget plus the
// per-vehicle queue bound convert overload into explicit
// RejectedOverload verdicts, and per-request deadline semantics
// (mcc.WithProposalDeadline composed with the request context) bound
// every decision that is admitted. SIGTERM-style shutdown is a graceful
// drain: intake stops, queued and in-flight requests are flushed to a
// reply, the shared analyzer cache is persisted, and the caller gets the
// drained/shed accounting.
//
// All vehicles share one content-addressed cpa.Analyzer: same-model
// vehicles pay each busy-window analysis once fleet-wide (the analyzer's
// single-flight layer coalesces concurrent identical digests). For that
// reason per-vehicle MCCs are built WITHOUT fault injectors — mcc.New
// installs an MCC's injector on its analyzer, which here is shared, so
// one tenant's faults would leak to all. Per-tenant faults go through
// the fleet's own hook points instead, keyed by vehicle ID:
// "fleet.queue" (admission) and "fleet.worker" (decision path).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cpa"
	"repro/internal/faultinject"
	"repro/internal/mcc"
	"repro/internal/model"
)

// Verdict classifies the outcome of one Propose call.
type Verdict string

// Verdicts. Only Accepted commits; everything else is an explicit
// rejection — the server never hangs a request to avoid answering.
const (
	// Accepted: the change passed the full acceptance pipeline and is
	// committed (journaled before the reply when a journal is configured).
	Accepted Verdict = "accepted"
	// Rejected: the acceptance pipeline rejected the change; Report
	// carries the findings (deadline expiries land here too, marked
	// Degraded("deadline") on the report).
	Rejected Verdict = "rejected"
	// RejectedOverload: load-shed at admission — the global in-flight
	// budget or the vehicle's mailbox was full. The pipeline never ran.
	RejectedOverload Verdict = "rejected-overload"
	// RejectedDraining: the server is draining and accepts no new work.
	RejectedDraining Verdict = "rejected-draining"
	// RejectedParked: the vehicle exhausted its crash budget and is
	// permanently parked.
	RejectedParked Verdict = "rejected-parked"
	// RejectedUnknown: no such vehicle is registered.
	RejectedUnknown Verdict = "rejected-unknown-vehicle"
)

// Decision is the reply to one Propose call.
type Decision struct {
	Vehicle string
	Verdict Verdict
	// Report is the MCC's integration report for Accepted/Rejected
	// verdicts; nil for admission-level rejections (the pipeline did not
	// run).
	Report *mcc.Report
}

// Config parameterizes a Server. The zero value gets sane defaults.
type Config struct {
	// QueueDepth bounds each vehicle's proposal mailbox (default 16).
	QueueDepth int
	// MaxInFlight bounds admitted-but-undecided requests fleet-wide
	// (default 256). Admission beyond the budget sheds.
	MaxInFlight int
	// MaxRestarts is the per-vehicle crash budget: crash MaxRestarts+1
	// times and the vehicle is parked (default 3).
	MaxRestarts int
	// RestartBackoff is the supervisor's base backoff before a rebuild;
	// it doubles per consecutive crash (default 10ms). Drain skips the
	// remaining backoff.
	RestartBackoff time.Duration
	// ProposalDeadline, when > 0, is installed on every vehicle MCC via
	// mcc.WithProposalDeadline: each admitted request resolves within it.
	ProposalDeadline time.Duration
	// CachePath, when set, warm-starts the shared analyzer from this
	// file at New and persists it at Drain. A torn or corrupt file falls
	// back to a cold cache — never an error.
	CachePath string
	// JournalPath, when set, appends every registration and accepted
	// change to a torn-tail-tolerant commit journal; New replays it to
	// rebuild the fleet's committed state (crash-recovery warm start).
	JournalPath string
	// Injector fires the fleet's per-tenant hook points ("fleet.queue",
	// "fleet.worker"; resource = vehicle ID). It is NOT passed to vehicle
	// MCCs — see the package comment.
	Injector *faultinject.Injector
	// MCCOptions is appended to every vehicle MCC's option list. Do not
	// pass mcc.WithFaultInjector here (shared-analyzer pollution); use
	// Injector instead.
	MCCOptions []mcc.Option
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 3
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 10 * time.Millisecond
	}
	return c
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	Vehicles int
	Parked   int
	// Offered counts Propose calls; Decided the subset that ran the
	// pipeline; Shed the subset load-shed at admission.
	Offered  int64
	Decided  int64
	Accepted int64
	Rejected int64
	Shed     int64
	// Crashes counts worker crashes, Restarts successful rebuilds.
	Crashes  int64
	Restarts int64
	Analyzer cpa.AnalyzerStats
}

// DrainReport summarizes a graceful drain.
type DrainReport struct {
	// Flushed counts requests that were queued or in flight when the
	// drain began and were still resolved to a reply.
	Flushed int64
	// Shed is the lifetime load-shed count.
	Shed int64
	// Parked is the number of permanently parked vehicles.
	Parked int
	// CacheSaved reports whether the analyzer cache was persisted.
	CacheSaved bool
}

// Server hosts the fleet. Create with New, register vehicles with
// AddVehicle, submit work with Propose, stop with Drain.
type Server struct {
	cfg      Config
	analyzer *cpa.Analyzer
	journal  *commitJournal

	// mu guards the vehicle map and the draining flag. Propose holds the
	// read lock across its draining check and mailbox send, and Drain
	// takes the write lock to flip the flag — so once Drain proceeds, no
	// request can slip past the closed intake into a mailbox.
	mu       sync.RWMutex
	vehicles map[string]*vehicle
	order    []string
	draining bool

	slots  chan struct{} // global in-flight budget
	stopCh chan struct{}
	wg     sync.WaitGroup

	drainOnce sync.Once
	drainRep  DrainReport

	warmStart bool // analyzer cache loaded from CachePath

	offered  atomic.Int64
	decided  atomic.Int64
	accepted atomic.Int64
	rejected atomic.Int64
	shed     atomic.Int64
	crashes  atomic.Int64
	restarts atomic.Int64
	parked   atomic.Int64
}

// New builds a server: the shared analyzer is warm-started from
// Config.CachePath when possible (a missing, torn, or corrupt cache file
// falls back to a cold start), and when Config.JournalPath holds a
// previous session's commit journal every recorded vehicle is rebuilt by
// replaying its baseline and accepted changes in commit order.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		analyzer: cpa.NewAnalyzer(),
		vehicles: make(map[string]*vehicle),
		slots:    make(chan struct{}, cfg.MaxInFlight),
		stopCh:   make(chan struct{}),
	}
	if cfg.CachePath != "" {
		switch err := cpa.LoadCacheFile(s.analyzer, cfg.CachePath); {
		case err == nil:
			s.warmStart = true
		case os.IsNotExist(err):
			// First session: cold cache.
		default:
			// Torn or corrupt cache: a pure performance artifact, so fall
			// back to a cold analyzer rather than failing the boot.
			s.analyzer.Reset()
		}
	}
	if cfg.JournalPath != "" {
		j, recovered, order, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("fleet: open journal: %w", err)
		}
		s.journal = j
		for _, id := range order {
			rv := recovered[id]
			if err := s.addVehicle(id, rv.Platform, rv.Baseline, rv.Changes, false); err != nil {
				j.close()
				return nil, fmt.Errorf("fleet: recover vehicle %s: %w", id, err)
			}
		}
	}
	return s, nil
}

// WarmStarted reports whether the analyzer cache was loaded from disk.
func (s *Server) WarmStarted() bool { return s.warmStart }

// Vehicles lists the registered vehicle IDs in registration order.
func (s *Server) Vehicles() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// AddVehicle registers a vehicle: a fresh MCC sharing the fleet
// analyzer, the baseline architecture deployed through the full
// acceptance pipeline, and a dedicated worker goroutine. The
// registration is journaled so a restarted server rebuilds the vehicle.
func (s *Server) AddVehicle(id string, p *model.Platform, baseline *model.FunctionalArchitecture) error {
	return s.addVehicle(id, p, baseline, nil, true)
}

func (s *Server) addVehicle(id string, p *model.Platform, baseline *model.FunctionalArchitecture, replay []mcc.Change, journal bool) error {
	if id == "" {
		return errors.New("fleet: empty vehicle id")
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("fleet: server draining")
	}
	if _, dup := s.vehicles[id]; dup {
		s.mu.Unlock()
		return fmt.Errorf("fleet: vehicle %s already registered", id)
	}
	// Reserve the slot under the lock; the expensive build happens after.
	s.vehicles[id] = nil
	s.mu.Unlock()

	v := &vehicle{
		id:       id,
		platform: p,
		baseline: baseline,
		mbox:     make(chan *request, s.cfg.QueueDepth),
	}
	if err := s.buildVehicle(v, replay); err != nil {
		s.mu.Lock()
		delete(s.vehicles, id)
		s.mu.Unlock()
		return err
	}
	if journal && s.journal != nil {
		if err := s.journal.append(journalRecord{
			Vehicle: id, Kind: recBaseline, Platform: p, Baseline: baseline,
		}); err != nil {
			s.mu.Lock()
			delete(s.vehicles, id)
			s.mu.Unlock()
			return fmt.Errorf("fleet: journal baseline: %w", err)
		}
	}
	s.mu.Lock()
	if s.draining {
		delete(s.vehicles, id)
		s.mu.Unlock()
		return errors.New("fleet: server draining")
	}
	s.vehicles[id] = v
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.wg.Add(1)
	go s.runVehicle(v)
	return nil
}

// Propose submits one change for a vehicle and blocks until a decision
// (admission rejections return immediately; admitted requests resolve
// within the configured deadline semantics). Safe for unrestricted
// concurrent use.
func (s *Server) Propose(ctx context.Context, id string, c mcc.Change) Decision {
	if ctx == nil {
		ctx = context.Background()
	}
	s.offered.Add(1)
	s.mu.RLock()
	if s.draining {
		s.mu.RUnlock()
		return Decision{Vehicle: id, Verdict: RejectedDraining}
	}
	v := s.vehicles[id]
	if v == nil {
		s.mu.RUnlock()
		return Decision{Vehicle: id, Verdict: RejectedUnknown}
	}
	if v.parked.Load() {
		s.mu.RUnlock()
		return Decision{Vehicle: id, Verdict: RejectedParked}
	}
	// Admission hook: an injected error models a failing admission layer
	// for this tenant — the request sheds instead of entering the system.
	if _, fired, err := s.cfg.Injector.Fire(ctx.Done(), "fleet.queue", id); fired && err != nil {
		s.mu.RUnlock()
		s.shed.Add(1)
		return Decision{Vehicle: id, Verdict: RejectedOverload}
	}
	select {
	case s.slots <- struct{}{}:
	default:
		s.mu.RUnlock()
		s.shed.Add(1)
		return Decision{Vehicle: id, Verdict: RejectedOverload}
	}
	req := &request{ctx: ctx, change: c, reply: make(chan Decision, 1)}
	select {
	case v.mbox <- req:
		s.mu.RUnlock()
	default:
		<-s.slots
		s.mu.RUnlock()
		s.shed.Add(1)
		return Decision{Vehicle: id, Verdict: RejectedOverload}
	}
	// The worker always replies: queued requests are flushed on drain and
	// on parking, deadlines resolve stalled pipelines, and a crashed
	// worker redelivers its in-flight request to the rebuilt vehicle.
	return <-req.reply
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	n := len(s.order)
	s.mu.RUnlock()
	return Stats{
		Vehicles: n,
		Parked:   int(s.parked.Load()),
		Offered:  s.offered.Load(),
		Decided:  s.decided.Load(),
		Accepted: s.accepted.Load(),
		Rejected: s.rejected.Load(),
		Shed:     s.shed.Load(),
		Crashes:  s.crashes.Load(),
		Restarts: s.restarts.Load(),
		Analyzer: s.analyzer.Stats(),
	}
}

// Analyzer exposes the shared timing analyzer (telemetry, tests).
func (s *Server) Analyzer() *cpa.Analyzer { return s.analyzer }

// Drain gracefully stops the server: intake closes (new Propose calls
// get RejectedDraining), every queued and in-flight request is flushed
// to a reply, workers exit, the analyzer cache is persisted when
// configured, and the journal is synced and closed. Idempotent; callers
// typically invoke it on SIGTERM. No accepted in-flight decision is
// lost: a request admitted before the drain began always receives its
// reply.
func (s *Server) Drain() DrainReport {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		decided0 := s.decided.Load()
		close(s.stopCh)
		s.wg.Wait()
		rep := DrainReport{
			Flushed: s.decided.Load() - decided0,
			Shed:    s.shed.Load(),
			Parked:  int(s.parked.Load()),
		}
		if s.cfg.CachePath != "" {
			if err := cpa.SaveCacheFile(s.analyzer, s.cfg.CachePath); err == nil {
				rep.CacheSaved = true
			}
		}
		if s.journal != nil {
			s.journal.close() //nolint:errcheck // drain is best-effort teardown
		}
		s.drainRep = rep
	})
	return s.drainRep
}
