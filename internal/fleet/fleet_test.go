package fleet

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/mcc"
	"repro/internal/model"
)

// Fleet lifecycle tier: bulkhead isolation, backpressure, supervised
// restart, parking, and graceful drain. Run under -race in CI — the
// server is exercised from many goroutines on purpose.

func fleetPlatform() *model.Platform {
	return &model.Platform{
		Processors: []model.Processor{
			{Name: "ecu-safe", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "ecu-safe2", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "ecu-perf", Policy: model.SPP, SpeedFactor: 2.0, RAMKiB: 8192, MaxSafety: model.ASILB},
		},
		Networks: []model.Network{
			{Name: "can0", BitsPerSec: 500_000, Attached: []string{"ecu-safe", "ecu-safe2", "ecu-perf"}, Kind: "can"},
		},
	}
}

func fleetFn(name string, safetyLvl model.SafetyLevel, periodUS, wcetUS, ram int64) model.Function {
	return model.Function{
		Name: name,
		Contract: model.Contract{
			Safety:    safetyLvl,
			RealTime:  model.RealTimeContract{PeriodUS: periodUS, WCETUS: wcetUS},
			Resources: model.ResourceContract{RAMKiB: ram},
		},
	}
}

func fleetBaseline() *model.FunctionalArchitecture {
	return &model.FunctionalArchitecture{
		Functions: []model.Function{
			fleetFn("brake", model.ASILD, 5000, 500, 128),
			fleetFn("acc", model.ASILC, 10000, 1500, 256),
		},
	}
}

// fleetChanges is a deterministic per-vehicle stream: mostly feasible
// telemetry adds with a contract violation every fifth change, so both
// verdict kinds appear.
func fleetChanges(vehicle string, n int) []mcc.Change {
	out := make([]mcc.Change, 0, n)
	for i := 0; i < n; i++ {
		if i%5 == 4 {
			f := fleetFn(fmt.Sprintf("%s-bad%02d", vehicle, i), model.QM, 1000, 5000, 64)
			out = append(out, mcc.Change{Update: &f})
			continue
		}
		f := fleetFn(fmt.Sprintf("%s-telem%02d", vehicle, i), model.QM, 100000+int64(i)*10000, 800, 64)
		out = append(out, mcc.Change{Update: &f})
	}
	return out
}

// oracleReports decides the stream on a standalone, never-restarted MCC
// (same options as a fleet vehicle, minus the shared analyzer).
func oracleReports(t *testing.T, changes []mcc.Change) []*mcc.Report {
	t.Helper()
	m, err := mcc.New(fleetPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if rep := m.ProposeArchitecture(fleetBaseline()); !rep.Accepted {
		t.Fatalf("oracle baseline rejected: %v", rep.Findings)
	}
	out := make([]*mcc.Report, 0, len(changes))
	for _, c := range changes {
		if c.Update != nil {
			out = append(out, m.ProposeUpdate(*c.Update))
		} else {
			out = append(out, m.ProposeRemoval(c.Remove))
		}
	}
	return out
}

// assertDecisionParity requires verdict + findings bit-parity between a
// vehicle's fleet decisions and its standalone oracle.
func assertDecisionParity(t *testing.T, vehicle string, got []Decision, want []*mcc.Report) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d decisions for %d changes (lost or duplicated)", vehicle, len(got), len(want))
	}
	for i := range want {
		d := got[i]
		wantVerdict := Rejected
		if want[i].Accepted {
			wantVerdict = Accepted
		}
		if d.Verdict != wantVerdict {
			t.Fatalf("%s change %d: verdict %s, oracle %s", vehicle, i, d.Verdict, wantVerdict)
		}
		if d.Report == nil {
			t.Fatalf("%s change %d: decided without a report", vehicle, i)
		}
		if !reflect.DeepEqual(d.Report.Findings, want[i].Findings) {
			t.Fatalf("%s change %d: findings diverge from oracle:\ngot  %v\nwant %v",
				vehicle, i, d.Report.Findings, want[i].Findings)
		}
	}
}

func newTestServer(t *testing.T, cfg Config, vehicles ...string) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range vehicles {
		if err := s.AddVehicle(id, fleetPlatform(), fleetBaseline()); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { s.Drain() })
	return s
}

func TestFleetServesTenantsWithOracleParity(t *testing.T) {
	s := newTestServer(t, Config{}, "v0", "v1", "v2")
	const n = 10
	decisions := make(map[string][]Decision)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range s.Vehicles() {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			var got []Decision
			for _, c := range fleetChanges(id, n) {
				got = append(got, s.Propose(context.Background(), id, c))
			}
			mu.Lock()
			decisions[id] = got
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	for _, id := range s.Vehicles() {
		assertDecisionParity(t, id, decisions[id], oracleReports(t, fleetChanges(id, n)))
	}
	st := s.Stats()
	if st.Decided != 3*n || st.Shed != 0 {
		t.Fatalf("stats = %+v, want %d decided, 0 shed", st, 3*n)
	}
	if st.Analyzer.Hits == 0 {
		t.Fatal("same-model vehicles shared no analysis through the fleet analyzer")
	}
}

func TestFleetAdmissionRejections(t *testing.T) {
	s := newTestServer(t, Config{}, "v0")
	c := fleetChanges("x", 1)[0]
	if d := s.Propose(context.Background(), "ghost", c); d.Verdict != RejectedUnknown {
		t.Fatalf("unknown vehicle verdict = %s", d.Verdict)
	}
	if err := s.AddVehicle("v0", fleetPlatform(), fleetBaseline()); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := s.AddVehicle("", fleetPlatform(), fleetBaseline()); err == nil {
		t.Fatal("empty vehicle id accepted")
	}
}

func TestFleetBackpressureShedsInsteadOfHanging(t *testing.T) {
	inj := faultinject.New(7, faultinject.Rule{
		Stage: "fleet.worker", Mode: faultinject.ModeSlow, StallUS: 20_000,
	})
	s := newTestServer(t, Config{MaxInFlight: 2, QueueDepth: 1, Injector: inj}, "v0")

	const offered = 12
	verdicts := make(chan Verdict, offered)
	var wg sync.WaitGroup
	for i := 0; i < offered; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := fleetChanges("v0", offered)[i]
			verdicts <- s.Propose(context.Background(), "v0", c).Verdict
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("overloaded fleet hung a Propose call")
	}
	close(verdicts)
	shed, decided := 0, 0
	for v := range verdicts {
		switch v {
		case RejectedOverload:
			shed++
		case Accepted, Rejected:
			decided++
		default:
			t.Fatalf("unexpected verdict under overload: %s", v)
		}
	}
	if shed == 0 {
		t.Fatal("overload shed nothing despite budget 2 and 12 offered")
	}
	if shed+decided != offered {
		t.Fatalf("%d shed + %d decided != %d offered", shed, decided, offered)
	}
	st := s.Stats()
	if st.Shed != int64(shed) || st.Decided != int64(decided) {
		t.Fatalf("stats %+v disagree with observed shed=%d decided=%d", st, shed, decided)
	}
}

func TestFleetQueueFaultShedsOnlyTargetTenant(t *testing.T) {
	inj := faultinject.New(3, faultinject.Rule{
		Stage: "fleet.queue", Resource: "v1", Mode: faultinject.ModeError,
	})
	s := newTestServer(t, Config{Injector: inj}, "v0", "v1")
	c := fleetChanges("q", 1)[0]
	if d := s.Propose(context.Background(), "v1", c); d.Verdict != RejectedOverload {
		t.Fatalf("faulted admission verdict = %s, want %s", d.Verdict, RejectedOverload)
	}
	if d := s.Propose(context.Background(), "v0", c); d.Verdict != Accepted {
		t.Fatalf("healthy tenant verdict = %s, want %s", d.Verdict, Accepted)
	}
}

// The core bulkhead property: a tenant that crashes repeatedly is
// restarted (its in-flight request redelivered, never lost or decided
// twice) and every OTHER tenant's decisions stay bit-identical to a
// fault-free oracle — zero blast radius.
func TestFleetCrashRestartBlastRadiusZero(t *testing.T) {
	inj := faultinject.New(11, faultinject.Rule{
		Stage: "fleet.worker", Resource: "v-faulty", Mode: faultinject.ModePanic, Every: 3, Count: 4,
	})
	s := newTestServer(t, Config{
		Injector:       inj,
		RestartBackoff: time.Millisecond,
		MaxRestarts:    10,
	}, "v-faulty", "v0", "v1")

	const n = 15
	decisions := make(map[string][]Decision)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range s.Vehicles() {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			var got []Decision
			for _, c := range fleetChanges(id, n) {
				got = append(got, s.Propose(context.Background(), id, c))
			}
			mu.Lock()
			decisions[id] = got
			mu.Unlock()
		}(id)
	}
	wg.Wait()

	st := s.Stats()
	if st.Crashes == 0 || st.Restarts == 0 {
		t.Fatalf("fault rule never crashed the worker: %+v", st)
	}
	if st.Parked != 0 {
		t.Fatalf("vehicle parked despite crash budget %d: %+v", 10, st)
	}
	// Every tenant — including the crashed-and-rebuilt one — must match
	// its oracle decision for every change. The healthy tenants prove the
	// blast radius is zero; the faulty one proves redelivery after the
	// rebuild loses and duplicates nothing.
	for _, id := range s.Vehicles() {
		assertDecisionParity(t, id, decisions[id], oracleReports(t, fleetChanges(id, n)))
	}
}

func TestFleetParksAfterCrashBudget(t *testing.T) {
	inj := faultinject.New(5, faultinject.Rule{
		Stage: "fleet.worker", Resource: "v-dead", Mode: faultinject.ModePanic,
	})
	s := newTestServer(t, Config{
		Injector:       inj,
		RestartBackoff: time.Millisecond,
		MaxRestarts:    2,
	}, "v-dead", "v0")

	c := fleetChanges("p", 1)[0]
	if d := s.Propose(context.Background(), "v-dead", c); d.Verdict != RejectedParked {
		t.Fatalf("crashing tenant verdict = %s, want %s", d.Verdict, RejectedParked)
	}
	// Parked is terminal: admission rejects without consuming budget.
	if d := s.Propose(context.Background(), "v-dead", c); d.Verdict != RejectedParked {
		t.Fatalf("parked tenant verdict = %s, want %s", d.Verdict, RejectedParked)
	}
	st := s.Stats()
	if st.Parked != 1 || st.Crashes != 3 {
		t.Fatalf("stats = %+v, want 1 parked after 3 crashes (budget 2)", st)
	}
	// The other bulkhead is untouched.
	if d := s.Propose(context.Background(), "v0", c); d.Verdict != Accepted {
		t.Fatalf("healthy tenant verdict = %s after peer parked", d.Verdict)
	}
	if rep := s.Drain(); rep.Parked != 1 {
		t.Fatalf("drain report %+v, want 1 parked", rep)
	}
}

// Drain must flush every admitted request to a real decision and refuse
// new intake — an accepted in-flight decision is never lost.
func TestFleetDrainFlushesAdmittedRequests(t *testing.T) {
	inj := faultinject.New(9, faultinject.Rule{
		Stage: "fleet.worker", Mode: faultinject.ModeSlow, StallUS: 10_000,
	})
	s := newTestServer(t, Config{QueueDepth: 8, Injector: inj}, "v0")

	const n = 6
	changes := fleetChanges("v0", n)
	decisions := make(chan Decision, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			decisions <- s.Propose(context.Background(), "v0", changes[i])
		}(i)
	}
	// Give the requests time to be admitted, then drain concurrently.
	time.Sleep(5 * time.Millisecond)
	rep := s.Drain()
	wg.Wait()
	close(decisions)

	admitted := 0
	for d := range decisions {
		switch d.Verdict {
		case Accepted, Rejected:
			admitted++
			if d.Report == nil {
				t.Fatal("flushed decision carries no report")
			}
		case RejectedDraining, RejectedOverload:
			// Not admitted before the drain (or shed) — allowed.
		default:
			t.Fatalf("unexpected verdict during drain: %s", d.Verdict)
		}
	}
	if st := s.Stats(); int64(admitted) != st.Decided {
		t.Fatalf("%d admitted decisions vs %d decided in stats", admitted, st.Decided)
	}
	if rep.Flushed < 0 || rep.Shed != s.Stats().Shed {
		t.Fatalf("drain report %+v inconsistent with stats %+v", rep, s.Stats())
	}
	// Intake is closed for good.
	if d := s.Propose(context.Background(), "v0", changes[0]); d.Verdict != RejectedDraining {
		t.Fatalf("post-drain verdict = %s, want %s", d.Verdict, RejectedDraining)
	}
	if err := s.AddVehicle("late", fleetPlatform(), fleetBaseline()); err == nil {
		t.Fatal("post-drain registration accepted")
	}
	// Idempotent.
	if rep2 := s.Drain(); rep2 != rep {
		t.Fatalf("second drain report %+v != first %+v", rep2, rep)
	}
}

// Per-request deadline semantics propagate end to end: a stalled tenant
// worker is bounded by the request context, and the expired context
// resolves the proposal as a deterministic deadline rejection — never a
// hang.
func TestFleetRequestDeadlineBoundsStalledWorker(t *testing.T) {
	inj := faultinject.New(13, faultinject.Rule{
		Stage: "fleet.worker", Mode: faultinject.ModeStall,
		StallUS: int64(10 * time.Second / time.Microsecond),
	})
	s := newTestServer(t, Config{Injector: inj}, "v0")
	c := fleetChanges("d", 1)[0]
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	d := s.Propose(ctx, "v0", c)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled proposal took %v despite 20ms request deadline", elapsed)
	}
	if d.Verdict != Rejected || d.Report == nil || !d.Report.Degraded {
		t.Fatalf("stalled proposal = %s (report %+v), want degraded rejection", d.Verdict, d.Report)
	}
	var hasDeadline bool
	for _, r := range d.Report.DegradedReasons {
		hasDeadline = hasDeadline || r == "deadline"
	}
	if !hasDeadline {
		t.Fatalf("degraded reasons %v missing \"deadline\"", d.Report.DegradedReasons)
	}
}
