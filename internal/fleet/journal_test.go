package fleet

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/mcc"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	j, recovered, order, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 || len(order) != 0 {
		t.Fatalf("fresh journal recovered %d vehicles", len(recovered))
	}
	p, base := fleetPlatform(), fleetBaseline()
	changes := fleetChanges("v0", 4)
	if err := j.append(journalRecord{Vehicle: "v0", Kind: recBaseline, Platform: p, Baseline: base}); err != nil {
		t.Fatal(err)
	}
	for i := range changes {
		if err := j.append(journalRecord{Vehicle: "v0", Kind: recChange, Change: &changes[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	j2, recovered, order, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if !reflect.DeepEqual(order, []string{"v0"}) {
		t.Fatalf("recovered order %v", order)
	}
	rv := recovered["v0"]
	if rv == nil || !reflect.DeepEqual(rv.Platform, p) || !reflect.DeepEqual(rv.Baseline, base) {
		t.Fatal("recovered registration diverges from what was journaled")
	}
	if !reflect.DeepEqual(rv.Changes, changes) {
		t.Fatalf("recovered changes diverge:\ngot  %+v\nwant %+v", rv.Changes, changes)
	}
}

// A torn tail (crash mid-append) must cost only the torn record: the
// complete prefix is recovered, the garbage is truncated, and subsequent
// appends land on a clean frame boundary.
func TestJournalTornTailTruncatedAndAppendable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	j, _, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	p, base := fleetPlatform(), fleetBaseline()
	changes := fleetChanges("v0", 3)
	j.append(journalRecord{Vehicle: "v0", Kind: recBaseline, Platform: p, Baseline: base})
	j.append(journalRecord{Vehicle: "v0", Kind: recChange, Change: &changes[0]})
	j.append(journalRecord{Vehicle: "v0", Kind: recChange, Change: &changes[1]})
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	goodLen := fileSize(t, path)

	// Tear the tail: a frame header promising more bytes than exist.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0xff, 0xff, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recovered, order, err := openJournal(path)
	if err != nil {
		t.Fatalf("torn tail failed recovery: %v", err)
	}
	if !reflect.DeepEqual(order, []string{"v0"}) || len(recovered["v0"].Changes) != 2 {
		t.Fatalf("torn-tail recovery = order %v, %d changes; want the 2-change prefix",
			order, len(recovered["v0"].Changes))
	}
	if got := fileSize(t, path); got != goodLen {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", got, goodLen)
	}
	// Appends after recovery extend the good prefix.
	if err := j2.append(journalRecord{Vehicle: "v0", Kind: recChange, Change: &changes[2]}); err != nil {
		t.Fatal(err)
	}
	if err := j2.close(); err != nil {
		t.Fatal(err)
	}
	j3, recovered, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.close()
	if want := []mcc.Change{changes[0], changes[1], changes[2]}; !reflect.DeepEqual(recovered["v0"].Changes, want) {
		t.Fatalf("post-recovery append lost: %+v", recovered["v0"].Changes)
	}
}

// Garbage mid-frame (corrupt gob payload) is also a torn tail: recovery
// keeps the records before it.
func TestJournalCorruptPayloadDropsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	j, _, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	p, base := fleetPlatform(), fleetBaseline()
	j.append(journalRecord{Vehicle: "v0", Kind: recBaseline, Platform: p, Baseline: base})
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A complete frame whose payload is not a gob record.
	f.Write([]byte{0x00, 0x00, 0x00, 0x04, 0x01, 0x02, 0x03, 0x04})
	f.Close()

	j2, recovered, order, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if !reflect.DeepEqual(order, []string{"v0"}) || len(recovered["v0"].Changes) != 0 {
		t.Fatalf("corrupt payload recovery = %v / %+v", order, recovered["v0"])
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}
