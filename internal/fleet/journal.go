package fleet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/mcc"
	"repro/internal/model"
)

// The commit journal is the fleet server's durable record of committed
// state: one "baseline" record per registered vehicle (platform +
// initial architecture) followed by one "change" record per accepted
// proposal, in commit order. A restarted server replays the journal to
// rebuild every vehicle's exact decision trajectory — the same replay
// the in-process supervisor uses after a worker crash.
//
// Records are length-prefixed, individually gob-encoded frames. Framing
// (rather than one long gob stream) buys torn-tail tolerance: a crash
// mid-append leaves a truncated final frame, recovery keeps the complete
// prefix and truncates the garbage, and subsequent appends land on a
// clean boundary. A torn tail can only lose acceptances whose reply had
// not been sent — appends happen before the requester hears "accepted".

// journalKind discriminates journal records.
type journalKind string

const (
	recBaseline journalKind = "baseline"
	recChange   journalKind = "change"
)

// journalRecord is one framed journal entry.
type journalRecord struct {
	Vehicle  string
	Kind     journalKind
	Platform *model.Platform               // baseline records only
	Baseline *model.FunctionalArchitecture // baseline records only
	Change   *mcc.Change                   // change records only
}

// recoveredVehicle is one vehicle's committed state as replayed from the
// journal: the registration inputs plus every accepted change in order.
type recoveredVehicle struct {
	Platform *model.Platform
	Baseline *model.FunctionalArchitecture
	Changes  []mcc.Change
}

// commitJournal appends framed records to an open journal file.
type commitJournal struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal opens (creating if absent) the journal at path, replays
// every complete record, truncates a torn tail if one is found, and
// returns the journal positioned for appending plus the recovered
// per-vehicle state in registration order.
func openJournal(path string) (*commitJournal, map[string]*recoveredVehicle, []string, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	recovered := make(map[string]*recoveredVehicle)
	var order []string
	good := int64(0)
	for {
		rec, n, err := readFrame(f)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail: keep the complete prefix, drop the rest.
			break
		}
		good += n
		switch rec.Kind {
		case recBaseline:
			if _, dup := recovered[rec.Vehicle]; !dup {
				order = append(order, rec.Vehicle)
			}
			recovered[rec.Vehicle] = &recoveredVehicle{
				Platform: rec.Platform,
				Baseline: rec.Baseline,
			}
		case recChange:
			if v := recovered[rec.Vehicle]; v != nil && rec.Change != nil {
				v.Changes = append(v.Changes, *rec.Change)
			}
		}
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	return &commitJournal{f: f}, recovered, order, nil
}

// readFrame decodes one length-prefixed record, returning the bytes
// consumed so the caller can track the last good offset.
func readFrame(r io.Reader) (journalRecord, int64, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		// io.EOF is a clean end; a partial prefix surfaces as
		// io.ErrUnexpectedEOF and the caller drops the torn tail.
		return journalRecord{}, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	const maxFrame = 64 << 20 // a frame this large is corruption, not data
	if n == 0 || n > maxFrame {
		return journalRecord{}, 0, fmt.Errorf("fleet: journal frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return journalRecord{}, 0, err
	}
	var rec journalRecord
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&rec); err != nil {
		return journalRecord{}, 0, err
	}
	return rec, int64(4 + n), nil
}

// append frames and writes one record. Appends are serialized; the file
// is not fsynced per record (Sync is called at drain), so the journal is
// crash-consistent but the tail is only as durable as the OS page cache.
func (j *commitJournal) append(rec journalRecord) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(hdr[:]); err != nil {
		return err
	}
	_, err := j.f.Write(buf.Bytes())
	return err
}

// sync flushes the journal to stable storage.
func (j *commitJournal) sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// close syncs and closes the journal file.
func (j *commitJournal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
