package fleet

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/mcc"
	"repro/internal/model"
)

// Restart-parity tier: a fleetd killed and restarted mid-stream (warm
// analyzer cache + committed state rebuilt from the journal) must
// produce decisions identical to an uninterrupted serial oracle, and a
// torn or corrupt cache file must fall back to a cold start cleanly.

// runFleetSplit decides each vehicle's stream with a server restart
// after the first `split` changes, returning the concatenated decisions
// per vehicle.
func runFleetSplit(t *testing.T, dir string, vehicles []string, streams map[string][]mcc.Change, split int) map[string][]Decision {
	t.Helper()
	cfg := Config{
		CachePath:   filepath.Join(dir, "analyzer.cache"),
		JournalPath: filepath.Join(dir, "fleet.journal"),
	}
	decisions := make(map[string][]Decision)

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1.WarmStarted() {
		t.Fatal("first session reported a warm cache")
	}
	for _, id := range vehicles {
		if err := s1.AddVehicle(id, fleetPlatform(), fleetBaseline()); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range vehicles {
		for _, c := range streams[id][:split] {
			decisions[id] = append(decisions[id], s1.Propose(context.Background(), id, c))
		}
	}
	if rep := s1.Drain(); !rep.CacheSaved {
		t.Fatalf("drain did not persist the analyzer cache: %+v", rep)
	}

	// "Restart": a fresh process image on the same cache + journal.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	if !s2.WarmStarted() {
		t.Fatal("second session did not warm-start from the persisted cache")
	}
	if got := s2.Vehicles(); !reflect.DeepEqual(got, vehicles) {
		t.Fatalf("recovered vehicles %v, want %v", got, vehicles)
	}
	if st := s2.Analyzer().Stats(); st.Entries == 0 {
		t.Fatal("warm-started analyzer holds no entries")
	}
	for _, id := range vehicles {
		for _, c := range streams[id][split:] {
			decisions[id] = append(decisions[id], s2.Propose(context.Background(), id, c))
		}
	}
	return decisions
}

func TestFleetRestartMidStreamMatchesUninterruptedOracle(t *testing.T) {
	vehicles := []string{"v0", "v1"}
	const n, split = 12, 7
	streams := map[string][]mcc.Change{
		"v0": fleetChanges("v0", n),
		"v1": fleetChanges("v1", n),
	}
	decisions := runFleetSplit(t, t.TempDir(), vehicles, streams, split)
	for _, id := range vehicles {
		assertDecisionParity(t, id, decisions[id], oracleReports(t, streams[id]))
	}
}

// Several restart points, including immediately after registration and
// after the whole stream: the kill-and-recover corpus.
func TestFleetRestartParityCorpus(t *testing.T) {
	const n = 10
	for _, split := range []int{0, 1, 5, n} {
		t.Run(splitName(split), func(t *testing.T) {
			vehicles := []string{"v0", "v1", "v2"}
			streams := make(map[string][]mcc.Change)
			for _, id := range vehicles {
				streams[id] = fleetChanges(id, n)
			}
			decisions := runFleetSplit(t, t.TempDir(), vehicles, streams, split)
			for _, id := range vehicles {
				assertDecisionParity(t, id, decisions[id], oracleReports(t, streams[id]))
			}
		})
	}
}

func splitName(split int) string {
	return "split-" + string(rune('0'+split/10)) + string(rune('0'+split%10))
}

// A torn or corrupt analyzer cache file must fall back to a cold start
// cleanly: New succeeds, decisions are unaffected (the cache is a pure
// performance artifact), and the next drain rewrites a good file.
func TestFleetCorruptCacheFallsBackCold(t *testing.T) {
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "analyzer.cache")
	if err := os.WriteFile(cachePath, []byte("not a gob stream at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{CachePath: cachePath})
	if err != nil {
		t.Fatalf("corrupt cache file failed the boot: %v", err)
	}
	if s.WarmStarted() {
		t.Fatal("corrupt cache reported as warm start")
	}
	if err := s.AddVehicle("v0", fleetPlatform(), fleetBaseline()); err != nil {
		t.Fatal(err)
	}
	changes := fleetChanges("v0", 6)
	var got []Decision
	for _, c := range changes {
		got = append(got, s.Propose(context.Background(), "v0", c))
	}
	assertDecisionParity(t, "v0", got, oracleReports(t, changes))
	if rep := s.Drain(); !rep.CacheSaved {
		t.Fatalf("drain did not rewrite the cache: %+v", rep)
	}
	// The rewritten file is a valid warm-start tier again.
	s2, err := New(Config{CachePath: cachePath})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	if !s2.WarmStarted() {
		t.Fatal("rewritten cache did not warm-start")
	}
}

// A torn journal tail (crash mid-append) recovers the committed prefix;
// the restarted server keeps serving the affected vehicle from that
// prefix.
func TestFleetTornJournalTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{JournalPath: filepath.Join(dir, "fleet.journal")}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.AddVehicle("v0", fleetPlatform(), fleetBaseline()); err != nil {
		t.Fatal(err)
	}
	changes := fleetChanges("v0", 5)
	accepted := 0
	for _, c := range changes {
		if s1.Propose(context.Background(), "v0", c).Verdict == Accepted {
			accepted++
		}
	}
	s1.Drain()

	// Simulate a crash mid-append.
	f, err := os.OpenFile(cfg.JournalPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x10, 0x00, 0x01})
	f.Close()

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("torn journal failed the boot: %v", err)
	}
	defer s2.Drain()
	if got := s2.Vehicles(); !reflect.DeepEqual(got, []string{"v0"}) {
		t.Fatalf("recovered vehicles %v", got)
	}
	// The recovered vehicle serves new work; its committed prefix held.
	extra := fleetFn("v0-post", model.QM, 150000, 500, 64)
	d := s2.Propose(context.Background(), "v0", mcc.Change{Update: &extra})
	if d.Verdict != Accepted {
		t.Fatalf("post-recovery proposal = %s: %+v", d.Verdict, d.Report)
	}
}
