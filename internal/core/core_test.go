package core

import (
	"strings"
	"testing"

	"repro/internal/monitor"
	"repro/internal/skills"
)

func TestReportHandledAtOrigin(t *testing.T) {
	c := NewCoordinator(nil)
	err := c.RegisterLayer(LayerSafety, func(p *Problem, ctx *Context) (Resolution, bool) {
		return Resolution{Action: "switch-to-standby", FunctionalityRetained: 1, SafeState: true}, true
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Report(&Problem{Kind: "component-lost", Subject: "brake#0", Origin: LayerSafety})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != "switch-to-standby" || res.Layer != LayerSafety {
		t.Fatalf("res = %+v", res)
	}
	if len(c.Traces()) != 1 || !c.Traces()[0].Handled {
		t.Fatalf("traces = %+v", c.Traces())
	}
}

func TestEscalationChain(t *testing.T) {
	c := NewCoordinator(nil)
	if err := c.RegisterLayer(LayerSafety, func(p *Problem, ctx *Context) (Resolution, bool) {
		return Resolution{}, false // no redundancy available
	}, LayerAbility); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterLayer(LayerAbility, func(p *Problem, ctx *Context) (Resolution, bool) {
		if p.Hops() != 1 {
			t.Errorf("hops = %d at ability layer", p.Hops())
		}
		return Resolution{Action: "reduce-speed", FunctionalityRetained: 0.6, SafeState: true}, true
	}, LayerObjective); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterLayer(LayerObjective, func(p *Problem, ctx *Context) (Resolution, bool) {
		t.Error("objective layer reached despite ability handling")
		return Resolution{}, false
	}, ""); err != nil {
		t.Fatal(err)
	}
	res, err := c.Report(&Problem{Kind: "component-lost", Subject: "rear-brake", Origin: LayerSafety})
	if err != nil {
		t.Fatal(err)
	}
	if res.Layer != LayerAbility || res.Action != "reduce-speed" {
		t.Fatalf("res = %+v", res)
	}
	if len(c.Traces()) != 2 {
		t.Fatalf("traces = %d", len(c.Traces()))
	}
}

func TestFailSafeWhenNobodyHandles(t *testing.T) {
	c := NewCoordinator(nil)
	decline := func(p *Problem, ctx *Context) (Resolution, bool) { return Resolution{}, false }
	if err := c.RegisterLayer(LayerSafety, decline, LayerAbility); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterLayer(LayerAbility, decline, ""); err != nil {
		t.Fatal(err)
	}
	res, err := c.Report(&Problem{Kind: "x", Origin: LayerSafety})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SafeState {
		t.Fatal("fail-safe not safe")
	}
	if !strings.Contains(res.Action, "fail-safe") {
		t.Fatalf("action = %q", res.Action)
	}
	if res.FunctionalityRetained > 0.1 {
		t.Fatalf("fail-safe retains %v functionality", res.FunctionalityRetained)
	}
}

func TestBoundedPropagationPingPong(t *testing.T) {
	// Two layers that keep raising follow-up problems at each other: the
	// hop bound must terminate the exchange with the fail-safe (the paper:
	// the system "must ensure that these also cooperate and avoid
	// situations in which the problem is forwarded ad infinitum").
	c := NewCoordinator(nil)
	c.MaxHops = 5
	var aCalls int
	if err := c.RegisterLayer(LayerSafety, func(p *Problem, ctx *Context) (Resolution, bool) {
		aCalls++
		res, err := ctx.Raise(&Problem{Kind: "ping", Origin: LayerAbility})
		if err != nil {
			t.Error(err)
		}
		return res, true
	}, ""); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterLayer(LayerAbility, func(p *Problem, ctx *Context) (Resolution, bool) {
		res, err := ctx.Raise(&Problem{Kind: "pong", Origin: LayerSafety})
		if err != nil {
			t.Error(err)
		}
		return res, true
	}, ""); err != nil {
		t.Fatal(err)
	}
	res, err := c.Report(&Problem{Kind: "ping", Origin: LayerSafety})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SafeState {
		t.Fatal("ping-pong did not end in a safe state")
	}
	if aCalls > c.MaxHops+1 {
		t.Fatalf("unbounded recursion: %d calls", aCalls)
	}
}

func TestFollowUpProblems(t *testing.T) {
	// Security layer contains the component and raises a follow-up on the
	// safety layer — the rear-braking example's propagation.
	c := NewCoordinator(nil)
	var safetyGot *Problem
	if err := c.RegisterLayer(LayerSecurity, func(p *Problem, ctx *Context) (Resolution, bool) {
		if _, err := ctx.Raise(&Problem{Kind: "component-lost", Subject: p.Subject, Origin: LayerSafety}); err != nil {
			t.Error(err)
		}
		return Resolution{Action: "contain:" + p.Subject, Claims: []string{p.Subject}, FunctionalityRetained: 0.8, SafeState: true}, true
	}, ""); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterLayer(LayerSafety, func(p *Problem, ctx *Context) (Resolution, bool) {
		cp := *p
		safetyGot = &cp
		return Resolution{Action: "activate-standby", SafeState: true, FunctionalityRetained: 1}, true
	}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(&Problem{Kind: "security-leak", Subject: "rear-brake", Origin: LayerSecurity}); err != nil {
		t.Fatal(err)
	}
	if safetyGot == nil || safetyGot.Kind != "component-lost" || safetyGot.Subject != "rear-brake" {
		t.Fatalf("safety follow-up = %+v", safetyGot)
	}
}

func TestUncoordinatedConflicts(t *testing.T) {
	c := NewCoordinator(nil)
	c.Uncoordinated = true
	if err := c.RegisterLayer(LayerSafety, func(p *Problem, ctx *Context) (Resolution, bool) {
		return Resolution{Action: "keep-driving-with-standby", Claims: []string{"vehicle-motion"}, FunctionalityRetained: 1, SafeState: true}, true
	}, LayerObjective); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterLayer(LayerObjective, func(p *Problem, ctx *Context) (Resolution, bool) {
		return Resolution{Action: "emergency-stop", Claims: []string{"vehicle-motion"}, FunctionalityRetained: 0.05, SafeState: true}, true
	}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(&Problem{Kind: "component-lost", Origin: LayerSafety}); err != nil {
		t.Fatal(err)
	}
	if len(c.Conflicts()) != 1 {
		t.Fatalf("conflicts = %+v", c.Conflicts())
	}
	if c.Conflicts()[0].Subject != "vehicle-motion" {
		t.Fatalf("conflict subject = %q", c.Conflicts()[0].Subject)
	}
}

func TestCoordinatedNoConflicts(t *testing.T) {
	c := NewCoordinator(nil)
	if err := c.RegisterLayer(LayerSafety, func(p *Problem, ctx *Context) (Resolution, bool) {
		return Resolution{Action: "keep-driving-with-standby", Claims: []string{"vehicle-motion"}, FunctionalityRetained: 1, SafeState: true}, true
	}, LayerObjective); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterLayer(LayerObjective, func(p *Problem, ctx *Context) (Resolution, bool) {
		return Resolution{Action: "emergency-stop", Claims: []string{"vehicle-motion"}, FunctionalityRetained: 0.05, SafeState: true}, true
	}, ""); err != nil {
		t.Fatal(err)
	}
	res, err := c.Report(&Problem{Kind: "component-lost", Origin: LayerSafety})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Conflicts()) != 0 {
		t.Fatalf("coordinated run produced conflicts: %+v", c.Conflicts())
	}
	// First capable layer (safety) wins; full functionality retained.
	if res.FunctionalityRetained != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestUncoordinatedFailSafeWhenNobodyHandles(t *testing.T) {
	c := NewCoordinator(nil)
	c.Uncoordinated = true
	decline := func(p *Problem, ctx *Context) (Resolution, bool) { return Resolution{}, false }
	if err := c.RegisterLayer(LayerSafety, decline, LayerAbility); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterLayer(LayerAbility, decline, ""); err != nil {
		t.Fatal(err)
	}
	res, err := c.Report(&Problem{Kind: "x", Origin: LayerSafety})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SafeState || !strings.Contains(res.Action, "fail-safe") {
		t.Fatalf("res = %+v", res)
	}
}

func TestRegistrationErrors(t *testing.T) {
	c := NewCoordinator(nil)
	h := func(p *Problem, ctx *Context) (Resolution, bool) { return Resolution{}, true }
	if err := c.RegisterLayer(LayerSafety, nil, ""); err == nil {
		t.Fatal("nil handler accepted")
	}
	if err := c.RegisterLayer(LayerSafety, h, ""); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterLayer(LayerSafety, h, ""); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := c.Report(&Problem{Origin: "ghost"}); err == nil {
		t.Fatal("unknown origin accepted")
	}
	if _, err := c.Report(nil); err == nil {
		t.Fatal("nil problem accepted")
	}
	if got := c.Layers(); len(got) != 1 || got[0] != LayerSafety {
		t.Fatalf("layers = %v", got)
	}
}

func TestBrokenEscalationTarget(t *testing.T) {
	c := NewCoordinator(nil)
	if err := c.RegisterLayer(LayerSafety, func(p *Problem, ctx *Context) (Resolution, bool) {
		return Resolution{}, false
	}, "ghost"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(&Problem{Origin: LayerSafety}); err == nil {
		t.Fatal("broken escalation target accepted")
	}
}

func TestSelfRepresentationStatusAndMetrics(t *testing.T) {
	rep := NewSelfRepresentation()
	rep.SetStatus(LayerSecurity, "rear-brake", "contained")
	if got := rep.Status(LayerSecurity, "rear-brake"); got != "contained" {
		t.Fatalf("status = %q", got)
	}
	if got := rep.Status(LayerSafety, "unset"); got != "" {
		t.Fatalf("unset status = %q", got)
	}
	rep.Metrics().Record("cpu.temp", 88, 100)
	snap := rep.Snapshot()
	if snap.Metrics["cpu.temp"].Last != 88 {
		t.Fatalf("snapshot metrics = %+v", snap.Metrics)
	}
	if snap.Status[LayerSecurity]["rear-brake"] != "contained" {
		t.Fatalf("snapshot status = %+v", snap.Status)
	}
	// Snapshot is a copy.
	snap.Status[LayerSecurity]["rear-brake"] = "mutated"
	if rep.Status(LayerSecurity, "rear-brake") != "contained" {
		t.Fatal("snapshot aliases live status")
	}
}

func TestSelfRepresentationAbility(t *testing.T) {
	rep := NewSelfRepresentation()
	if rep.AbilityLevel(skills.ACCDriving) != 1 {
		t.Fatal("default ability level")
	}
	ag, err := skills.InstantiateACC()
	if err != nil {
		t.Fatal(err)
	}
	rep.AttachAbilityGraph(ag)
	if err := ag.SetHealth(skills.SinkBrakingSystem, 0.4); err != nil {
		t.Fatal(err)
	}
	if got := rep.AbilityLevel(skills.ACCDriving); got != 0.4 {
		t.Fatalf("ability level = %v", got)
	}
	snap := rep.Snapshot()
	if snap.Ability[skills.ACCDriving] != 0.4 {
		t.Fatalf("snapshot ability = %v", snap.Ability[skills.ACCDriving])
	}
}

func TestConsistencyFindings(t *testing.T) {
	rep := NewSelfRepresentation()
	rep.StalenessBound = 100
	rep.Metrics().Record("fresh", 1, 1000)
	rep.Metrics().Record("stale", 1, 10)
	findings := rep.ConsistencyFindings()
	if len(findings) != 1 || !strings.Contains(findings[0], "stale") {
		t.Fatalf("findings = %v", findings)
	}
	rep.StalenessBound = 0
	if got := rep.ConsistencyFindings(); got != nil {
		t.Fatalf("disabled check returned %v", got)
	}
}

func TestProblemSeverityCarried(t *testing.T) {
	c := NewCoordinator(nil)
	var got monitor.Severity
	if err := c.RegisterLayer(LayerPlatform, func(p *Problem, ctx *Context) (Resolution, bool) {
		got = p.Severity
		return Resolution{SafeState: true}, true
	}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(&Problem{Origin: LayerPlatform, Severity: monitor.Critical}); err != nil {
		t.Fatal(err)
	}
	if got != monitor.Critical {
		t.Fatalf("severity = %v", got)
	}
}
