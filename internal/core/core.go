// Package core implements the paper's primary contribution: coherent
// cross-layer self-awareness (Section V). It provides
//
//   - a Layer abstraction with per-layer problem handlers and an explicit
//     escalation topology ("the ability layer can forward the search for
//     solutions to the objective layer");
//
//   - a Coordinator that routes detected problems to the most appropriate
//     layer, bounds propagation so problems are never "forwarded ad
//     infinitum", records the decision trace, and lets handlers raise
//     follow-up problems on other layers (the rear-braking example: the
//     security layer contains the component *and* notifies the ability
//     layer to reassess available skills);
//
//   - conflict detection between layer decisions — the paper's core
//     warning: "self-awareness mechanisms of all layers must be considered
//     in combination in order to build a coherent vehicle self-awareness
//     that does not cause conflicting decisions or even catastrophic
//     effects". An uncoordinated mode lets every layer act independently,
//     exposing exactly those conflicts (experiment E5);
//
//   - a SelfRepresentation aggregating metrics from all layers into one
//     consistent system view.
package core

import (
	"fmt"
	"sort"

	"repro/internal/monitor"
)

// LayerID names a self-awareness layer.
type LayerID string

// The canonical layer stack, ordered from mechanism to mission.
const (
	LayerPlatform  LayerID = "platform"
	LayerComm      LayerID = "comm"
	LayerSecurity  LayerID = "security"
	LayerSafety    LayerID = "safety"
	LayerAbility   LayerID = "ability"
	LayerObjective LayerID = "objective"
)

// Problem is a detected deviation requiring a decision. Problems originate
// from monitors (package monitor), the IDS (package security), ability
// degradation (package skills), or thermal/platform supervision.
type Problem struct {
	// Kind classifies the problem ("security-leak", "component-lost",
	// "thermal-stress", "ability-degraded", ...).
	Kind string
	// Subject names the affected entity.
	Subject string
	// Origin is the layer that detected the problem.
	Origin LayerID
	// Severity grades urgency.
	Severity monitor.Severity
	// Data carries quantitative context (e.g. remaining braking fraction).
	Data map[string]float64
	// hops counts layer-to-layer forwards (bounded by the coordinator).
	hops int
}

// Hops returns how many times the problem has been forwarded.
func (p *Problem) Hops() int { return p.hops }

// Resolution is a layer's decision on a problem.
type Resolution struct {
	// Action describes the chosen countermeasure.
	Action string
	// Layer is the layer that decided.
	Layer LayerID
	// Claims lists the entities the action manipulates; overlapping
	// claims with different actions are conflicts.
	Claims []string
	// FunctionalityRetained estimates how much of the system's mission
	// capability survives the countermeasure, in [0,1] (1 = full service,
	// 0 = system off). E5 compares strategies on this metric.
	FunctionalityRetained float64
	// SafeState reports whether the action leaves the vehicle in a safe
	// state (the non-negotiable invariant).
	SafeState bool
}

// Handler is a layer's problem-solving strategy: it may resolve the
// problem (handled = true), optionally raising follow-up problems through
// the context, or decline so the coordinator escalates.
type Handler func(p *Problem, ctx *Context) (Resolution, bool)

// Context gives handlers access to the self-representation and lets them
// raise follow-up problems on other layers.
type Context struct {
	Rep   *SelfRepresentation
	coord *Coordinator
	depth int
}

// Raise routes a follow-up problem (e.g. the security layer reporting
// "component-lost" after a containment shutdown). The returned resolution
// is the other layer's decision.
func (c *Context) Raise(p *Problem) (Resolution, error) {
	return c.coord.dispatch(p, c.depth+1)
}

// Trace records one step of the decision process, for explainability.
type Trace struct {
	Problem  Problem
	Tried    LayerID
	Handled  bool
	Decision Resolution
}

// layerEntry is a registered layer.
type layerEntry struct {
	id      LayerID
	handler Handler
	next    LayerID // escalation target ("" = end of chain)
}

// Coordinator owns the layer stack and routes problems.
type Coordinator struct {
	layers map[LayerID]*layerEntry
	rep    *SelfRepresentation

	// MaxHops bounds escalation so that cooperation cannot recurse
	// forever; when exceeded the coordinator imposes the fail-safe
	// resolution. Default 8.
	MaxHops int

	// Uncoordinated disables the first-handler-wins protocol: every layer
	// on the escalation chain acts independently. This reproduces the
	// paper's warning about conflicting decisions and is used as the
	// baseline in E5.
	Uncoordinated bool

	traces    []Trace
	conflicts []Conflict
}

// Conflict is a pair of resolutions claiming the same entity with
// different actions.
type Conflict struct {
	A, B    Resolution
	Subject string
}

// NewCoordinator creates an empty coordinator bound to a
// self-representation.
func NewCoordinator(rep *SelfRepresentation) *Coordinator {
	if rep == nil {
		rep = NewSelfRepresentation()
	}
	return &Coordinator{
		layers:  make(map[LayerID]*layerEntry),
		rep:     rep,
		MaxHops: 8,
	}
}

// Rep returns the coordinator's self-representation.
func (c *Coordinator) Rep() *SelfRepresentation { return c.rep }

// RegisterLayer installs a layer with its escalation target (empty for
// the last layer in a chain).
func (c *Coordinator) RegisterLayer(id LayerID, handler Handler, next LayerID) error {
	if handler == nil {
		return fmt.Errorf("core: nil handler for layer %s", id)
	}
	if _, dup := c.layers[id]; dup {
		return fmt.Errorf("core: duplicate layer %s", id)
	}
	c.layers[id] = &layerEntry{id: id, handler: handler, next: next}
	return nil
}

// Layers returns the registered layer IDs, sorted.
func (c *Coordinator) Layers() []LayerID {
	out := make([]LayerID, 0, len(c.layers))
	for id := range c.layers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Traces returns the decision log.
func (c *Coordinator) Traces() []Trace { return c.traces }

// Conflicts returns the detected decision conflicts.
func (c *Coordinator) Conflicts() []Conflict { return c.conflicts }

// failSafe is the imposed last resort when no layer handles a problem or
// the hop bound is exceeded: transition to a safe state with the mission
// aborted. The vehicle "must remain fail-operational at least until a safe
// stop is reached".
func failSafe(p *Problem) Resolution {
	return Resolution{
		Action:                "fail-safe: controlled stop in safe place, subsystem deactivation",
		Layer:                 LayerObjective,
		Claims:                []string{"vehicle-motion"},
		FunctionalityRetained: 0.05,
		SafeState:             true,
	}
}

// Report routes a problem starting at its origin layer and returns the
// final resolution.
func (c *Coordinator) Report(p *Problem) (Resolution, error) {
	return c.dispatch(p, 0)
}

func (c *Coordinator) dispatch(p *Problem, depth int) (Resolution, error) {
	if p == nil {
		return Resolution{}, fmt.Errorf("core: nil problem")
	}
	if depth > c.MaxHops {
		res := failSafe(p)
		c.traces = append(c.traces, Trace{Problem: *p, Tried: res.Layer, Handled: true, Decision: res})
		return res, nil
	}
	entry, ok := c.layers[p.Origin]
	if !ok {
		return Resolution{}, fmt.Errorf("core: no layer %q registered", p.Origin)
	}
	ctx := &Context{Rep: c.rep, coord: c, depth: depth}

	if c.Uncoordinated {
		return c.dispatchUncoordinated(p, entry, ctx)
	}

	// Coordinated protocol: walk the escalation chain; the first layer
	// that handles the problem decides.
	cur := entry
	for hop := 0; ; hop++ {
		p.hops = hop
		if depth+hop > c.MaxHops {
			res := failSafe(p)
			c.traces = append(c.traces, Trace{Problem: *p, Tried: res.Layer, Handled: true, Decision: res})
			return res, nil
		}
		res, handled := cur.handler(p, ctx)
		c.traces = append(c.traces, Trace{Problem: *p, Tried: cur.id, Handled: handled, Decision: res})
		if handled {
			// A handler that delegated via ctx.Raise reports the deciding
			// layer in the sub-resolution; only fill it in when unset.
			if res.Layer == "" {
				res.Layer = cur.id
			}
			return res, nil
		}
		if cur.next == "" {
			res := failSafe(p)
			c.traces = append(c.traces, Trace{Problem: *p, Tried: res.Layer, Handled: true, Decision: res})
			return res, nil
		}
		nxt, ok := c.layers[cur.next]
		if !ok {
			return Resolution{}, fmt.Errorf("core: escalation target %q of %q not registered", cur.next, cur.id)
		}
		cur = nxt
	}
}

// dispatchUncoordinated lets every layer on the chain act; conflicting
// claims are recorded. The returned resolution is the *last* layer's
// (deepest escalation) — the point being that without coordination the
// actions contradict each other.
func (c *Coordinator) dispatchUncoordinated(p *Problem, entry *layerEntry, ctx *Context) (Resolution, error) {
	var decisions []Resolution
	cur := entry
	for hop := 0; cur != nil; hop++ {
		if hop > c.MaxHops {
			break
		}
		p.hops = hop
		res, handled := cur.handler(p, ctx)
		c.traces = append(c.traces, Trace{Problem: *p, Tried: cur.id, Handled: handled, Decision: res})
		if handled {
			if res.Layer == "" {
				res.Layer = cur.id
			}
			decisions = append(decisions, res)
		}
		if cur.next == "" {
			break
		}
		cur = c.layers[cur.next]
	}
	if len(decisions) == 0 {
		res := failSafe(p)
		c.traces = append(c.traces, Trace{Problem: *p, Tried: res.Layer, Handled: true, Decision: res})
		return res, nil
	}
	// Conflict detection across independent decisions.
	for i := 0; i < len(decisions); i++ {
		for j := i + 1; j < len(decisions); j++ {
			if subj, clash := claimsConflict(decisions[i], decisions[j]); clash {
				c.conflicts = append(c.conflicts, Conflict{A: decisions[i], B: decisions[j], Subject: subj})
			}
		}
	}
	return decisions[len(decisions)-1], nil
}

// claimsConflict reports whether two resolutions claim a common entity
// with different actions.
func claimsConflict(a, b Resolution) (string, bool) {
	if a.Action == b.Action {
		return "", false
	}
	set := make(map[string]bool, len(a.Claims))
	for _, cl := range a.Claims {
		set[cl] = true
	}
	for _, cl := range b.Claims {
		if set[cl] {
			return cl, true
		}
	}
	return "", false
}
