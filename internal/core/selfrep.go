package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/skills"
)

// SelfRepresentation is the coherent system view of Section V: "the
// overall monitoring concept must ensure that metrics from different
// layers can be aggregated to a consistent self-representation of the
// system". It merges
//
//   - quantitative metrics from the monitor aggregator (execution times,
//     utilizations, temperatures, bus statistics),
//   - the ability graph's performance levels (functional layer), and
//   - discrete per-layer status flags (e.g. "rear-brake: contained").
type SelfRepresentation struct {
	mu sync.Mutex

	metrics *monitor.Aggregator
	ability *skills.AbilityGraph

	status map[LayerID]map[string]string

	// StalenessBound: metrics older than this (relative to the latest
	// observation) are reported inconsistent. 0 disables the check.
	StalenessBound sim.Time
}

// NewSelfRepresentation creates an empty self-representation with a fresh
// metric aggregator.
func NewSelfRepresentation() *SelfRepresentation {
	return &SelfRepresentation{
		metrics: monitor.NewAggregator(),
		status:  make(map[LayerID]map[string]string),
	}
}

// Metrics returns the metric aggregator (monitors record into it).
func (r *SelfRepresentation) Metrics() *monitor.Aggregator { return r.metrics }

// AttachAbilityGraph links the functional layer's ability graph.
func (r *SelfRepresentation) AttachAbilityGraph(ag *skills.AbilityGraph) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ability = ag
}

// AbilityLevel returns the propagated level of an ability (1 if no graph
// is attached — optimistic default before the functional layer starts).
func (r *SelfRepresentation) AbilityLevel(node string) skills.Level {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ability == nil {
		return 1
	}
	return r.ability.Level(node)
}

// SetStatus records a discrete per-layer status flag.
func (r *SelfRepresentation) SetStatus(layer LayerID, key, value string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.status[layer]
	if m == nil {
		m = make(map[string]string)
		r.status[layer] = m
	}
	m[key] = value
}

// Status returns a layer's status flag ("" if unset).
func (r *SelfRepresentation) Status(layer LayerID, key string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.status[layer]; m != nil {
		return m[key]
	}
	return ""
}

// Snapshot is a point-in-time copy of the whole self-representation.
type Snapshot struct {
	Metrics map[string]monitor.Stat
	Ability map[string]skills.Level
	Status  map[LayerID]map[string]string
}

// Snapshot captures the current system view.
func (r *SelfRepresentation) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Metrics: r.metrics.Snapshot(),
		Status:  make(map[LayerID]map[string]string, len(r.status)),
	}
	if r.ability != nil {
		s.Ability = r.ability.Snapshot()
	}
	for l, m := range r.status {
		cp := make(map[string]string, len(m))
		for k, v := range m {
			cp[k] = v
		}
		s.Status[l] = cp
	}
	return s
}

// ConsistencyFindings lists metrics whose last sample is older than the
// staleness bound relative to the newest sample — an inconsistent
// cross-layer view (one layer's data is outdated).
func (r *SelfRepresentation) ConsistencyFindings() []string {
	r.mu.Lock()
	bound := r.StalenessBound
	r.mu.Unlock()
	if bound <= 0 {
		return nil
	}
	snap := r.metrics.Snapshot()
	var newest sim.Time
	for _, st := range snap {
		if st.LastAt > newest {
			newest = st.LastAt
		}
	}
	var out []string
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st := snap[n]
		if newest-st.LastAt > bound {
			out = append(out, fmt.Sprintf("metric %q stale: last %v, newest %v", n, st.LastAt, newest))
		}
	}
	return out
}
