package mcc

import (
	"context"
	"fmt"
	"time"

	"repro/internal/model"
)

// Change is one pending modification to the deployed functional
// architecture: either an update (add/replace a function) or a removal.
type Change struct {
	// Update, when non-nil, adds the function or replaces the deployed
	// version of the same name.
	Update *model.Function
	// Remove, when non-empty, removes the named function and its flows.
	Remove string
}

func (c Change) String() string {
	if c.Update != nil {
		return fmt.Sprintf("update %s", c.Update.Name)
	}
	return fmt.Sprintf("remove %s", c.Remove)
}

// Batch coalesces pending change requests so the MCC can amortize one
// integration run over a whole change window instead of paying the full
// acceptance-test pipeline per request. Fleet change streams are mostly
// feasible, so the common case is a single evaluation for N changes;
// ProposeBatch bisects on rejection to isolate the offending requests.
type Batch struct {
	changes []Change
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Update queues an add-or-replace of fn.
func (b *Batch) Update(fn model.Function) *Batch {
	b.changes = append(b.changes, Change{Update: &fn})
	return b
}

// Remove queues the removal of the named function.
func (b *Batch) Remove(name string) *Batch {
	b.changes = append(b.changes, Change{Remove: name})
	return b
}

// Len returns the number of queued changes.
func (b *Batch) Len() int { return len(b.changes) }

// BatchOutcome records the decision for one change of a batch.
type BatchOutcome struct {
	Change   Change
	Accepted bool
	// Report is the integration report of the evaluation that decided this
	// change; changes decided by the same evaluation share it.
	Report *Report
}

// BatchReport aggregates the per-change outcomes of one ProposeBatch call.
type BatchReport struct {
	// Outcomes lists every change in its original batch order.
	Outcomes []BatchOutcome
	Accepted int
	Rejected int
	// Evaluations counts integration-pipeline passes spent deciding the
	// batch: 1 when the coalesced candidate is accepted outright, up to
	// O(k log n) when k of n changes must be isolated by bisection (cold
	// retries of rejected warm-start attempts count as passes).
	Evaluations int
	// StageWall sums the per-stage wall-clock time over every pipeline
	// evaluation spent deciding the batch (bisection retries included),
	// exposing which stages the batch actually paid for.
	StageWall map[Stage]time.Duration
}

// ProposeBatch coalesces the queued changes into one candidate
// architecture, evaluates it through the full acceptance pipeline once
// and, on rejection, bisects: each half is re-evaluated against whatever
// configuration the preceding half committed, preserving the request
// order. Every change ends up individually accepted or rejected, and
// feasible streams cost ~1/N the pipeline runs. Note that changes within
// one accepted evaluation are admitted as a group: a change that depends
// on another one in the same window (e.g. a consumer batched with the
// provider it requires) can be accepted where strictly serial proposals
// would reject it — batching windows are atomic in that direction.
func (m *MCC) ProposeBatch(b *Batch) *BatchReport {
	return m.ProposeBatchContext(context.Background(), b)
}

// ProposeBatchContext is ProposeBatch bounded by ctx: every evaluation
// (the coalesced candidate and each bisection step) runs under it, so an
// expired deadline resolves the remaining changes as deterministic
// deadline rejections instead of hanging the batch.
func (m *MCC) ProposeBatchContext(ctx context.Context, b *Batch) *BatchReport {
	br := &BatchReport{StageWall: make(map[Stage]time.Duration)}
	m.decideChanges(ctx, b.changes, br)
	return br
}

func (m *MCC) decideChanges(ctx context.Context, changes []Change, br *BatchReport) {
	if len(changes) == 0 {
		return
	}
	if ctx.Err() != nil {
		// The context died between bisection steps: resolve the whole
		// group as deadline rejections without paying the candidate clone
		// and integration setup — the report shape matches a proposal that
		// ran and expired before its first stage.
		rep := m.expiredReport(ctx)
		br.Evaluations += rep.Passes
		for _, c := range changes {
			br.Outcomes = append(br.Outcomes, BatchOutcome{Change: c, Accepted: false, Report: rep})
		}
		br.Rejected += len(changes)
		return
	}
	cand := m.deployed.Clone()
	for _, c := range changes {
		cand = applyChange(cand, c)
	}
	rep := m.integrateCtx(ctx, cand)
	br.Evaluations += rep.Passes
	for st, d := range rep.StageWall() {
		br.StageWall[st] += d
	}
	if rep.Accepted || len(changes) == 1 || ctx.Err() != nil {
		for _, c := range changes {
			br.Outcomes = append(br.Outcomes, BatchOutcome{Change: c, Accepted: rep.Accepted, Report: rep})
		}
		if rep.Accepted {
			br.Accepted += len(changes)
		} else {
			br.Rejected += len(changes)
		}
		return
	}
	mid := len(changes) / 2
	m.decideChanges(ctx, changes[:mid], br)
	m.decideChanges(ctx, changes[mid:], br)
}

func applyChange(fa *model.FunctionalArchitecture, c Change) *model.FunctionalArchitecture {
	switch {
	case c.Update != nil:
		return fa.WithFunction(*c.Update)
	case c.Remove != "":
		return fa.WithoutFunction(c.Remove)
	}
	return fa
}
