package mcc

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/safety"
	"repro/internal/security"
)

// Tests for the diff-scoped safety/security verdict stages: decision and
// findings parity with the from-scratch engine across the cache
// invalidation edges (removals, AllowedPeers revocations, domain flips on
// functions whose victim connection belongs to an untouched client), and
// the committed-clean oracle — after every accepted change the deployed
// implementation model must pass the full checks, which is exactly the
// invariant the scoped splice rests on.

func domainFn(name, domain string, peers ...string) model.Function {
	f := fn(name, model.QM, 100000, 1000, 64)
	f.Contract.Domain = model.SecurityDomain(domain)
	f.Contract.AllowedPeers = peers
	return f
}

// assertSecCacheMirrorsConnections checks the committed per-connection
// verdict cache is exactly the deployed connection set — no stale keys
// after removals or rewiring, no missing ones after additions.
func assertSecCacheMirrorsConnections(t *testing.T, label string, m *MCC) {
	t.Helper()
	if m.deployedSecVerdicts == nil {
		t.Fatalf("%s: security verdict cache not built", label)
	}
	want := make(map[model.Connection]bool)
	if impl := m.DeployedImpl(); impl != nil {
		for _, c := range impl.Connections {
			want[c] = true
		}
	}
	if !reflect.DeepEqual(m.deployedSecVerdicts, want) {
		t.Fatalf("%s: verdict cache diverges from deployed connections:\ncache %v\nconns %v",
			label, m.deployedSecVerdicts, want)
	}
}

func TestScopedVerdictCacheInvalidationEdges(t *testing.T) {
	srv := domainFn("srv", "drive")
	srv.Provides = []string{"cmd"}
	cli := domainFn("cli", "conn", "cmd")
	cli.Requires = []string{"cmd"}
	baseline := []model.Function{srv, cli, fn("app0", model.QM, 100000, 2000, 64)}

	mk := func(opts ...Option) *MCC {
		m, err := New(testPlatform(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range baseline {
			if rep := m.ProposeUpdate(f); !rep.Accepted {
				t.Fatalf("baseline %s rejected: %v", f.Name, rep.Findings)
			}
		}
		return m
	}
	inc := mk()                     // scoped verdict stages
	ser := mk(WithoutIncremental()) // from-scratch oracle

	ver := func(i int, f model.Function) model.Function { f.Version = i; return f }
	revoked := domainFn("cli", "conn")
	revoked.Requires = []string{"cmd"}
	srvConn := domainFn("srv", "conn")
	srvConn.Provides = []string{"cmd"}
	srvDrive := domainFn("srv", "drive")
	srvDrive.Provides = []string{"cmd"}
	failop := fn("failop", model.ASILD, 40000, 1500, 64)
	failop.Contract.FailOperational = true // Replicas stays 1: redundancy finding

	steps := []struct {
		label string
		c     Change
		// rejectAt is the expected stage ("" = accepted).
		rejectAt Stage
	}{
		// Disjoint addition: no connection involves the new function and
		// none are rebuilt — the scoped check splices everything.
		{"disjoint-add", upd(fn("telem0", model.QM, 200000, 1500, 64)), ""},
		// AllowedPeers revocation on the client contract: its committed
		// connection verdict must be invalidated, not spliced.
		{"revoke-peers", upd(ver(2, revoked)), StageSecurity},
		// Re-granting decides clean again.
		{"regrant", upd(ver(3, cli)), ""},
		// Server joins the client's domain: the connection is rewired
		// (CrossDomain flips), old cache key must die with it.
		{"server-domain-join", upd(ver(4, srvConn)), ""},
		// Same-domain revocation is fine.
		{"revoke-same-domain", upd(ver(5, revoked)), ""},
		// Domain flip on the server: the violating connection belongs to
		// the now-untouched, peers-less client — the scoped check must
		// still catch it via the touched server endpoint.
		{"server-domain-leave", upd(ver(6, srvDrive)), StageSecurity},
		// Removal with a global footprint but no service participation:
		// connections are copied verbatim, cache keys unchanged.
		{"remove-disjoint", Change{Remove: "telem0"}, ""},
		// Removing the client drops its connection; the cached verdict
		// must go with it.
		{"remove-client", Change{Remove: "cli"}, ""},
		// With no client left, the server may leave the shared domain
		// (the rejected flip above never committed, so srv is still in
		// "conn" here).
		{"server-domain-leave-clean", upd(ver(7, srvDrive)), ""},
		// Re-adding the peers-less client recreates the cross-domain
		// session; a stale clean verdict would wave it through.
		{"readd-revoked", upd(ver(8, revoked)), StageSecurity},
		{"readd-granted", upd(ver(9, cli)), ""},
		// Safety edge: fail-operational without replicas rejects at the
		// safety stage on both engines with identical findings (the
		// incremental engine re-decides the rejection cold).
		{"failop-single", upd(failop), StageSafety},
	}

	sawSplice := false
	for _, st := range steps {
		ir, sr := inc.propose(st.c), ser.propose(st.c)
		if ir.Accepted != sr.Accepted || ir.RejectedAt != sr.RejectedAt {
			t.Fatalf("%s: incremental decided %v@%q, serial %v@%q",
				st.label, ir.Accepted, ir.RejectedAt, sr.Accepted, sr.RejectedAt)
		}
		if !reflect.DeepEqual(ir.Findings, sr.Findings) {
			t.Fatalf("%s: findings diverge:\nincremental %v\nserial      %v", st.label, ir.Findings, sr.Findings)
		}
		if st.rejectAt == "" && !ir.Accepted {
			t.Fatalf("%s: rejected at %s: %v", st.label, ir.RejectedAt, ir.Findings)
		}
		if st.rejectAt != "" && (ir.Accepted || ir.RejectedAt != st.rejectAt) {
			t.Fatalf("%s: decided %v@%q, want rejection at %s", st.label, ir.Accepted, ir.RejectedAt, st.rejectAt)
		}
		if ir.Accepted {
			// The committed-clean oracle: the scoped splice is valid iff
			// every committed configuration passes the full checks.
			impl := inc.DeployedImpl()
			if f := safety.Check(impl.Tech); len(f) > 0 {
				t.Fatalf("%s: committed config carries safety findings: %v", st.label, f)
			}
			if f := security.CheckDomains(impl); len(f) > 0 {
				t.Fatalf("%s: committed config carries security findings: %v", st.label, f)
			}
			assertSecCacheMirrorsConnections(t, st.label, inc)
		}
		if st.label == "disjoint-add" {
			if ir.SecurityChecks != 0 {
				t.Errorf("disjoint-add re-checked %d connections, want 0 (full splice)", ir.SecurityChecks)
			}
			if len(inc.DeployedImpl().Connections) == 0 {
				t.Error("fixture lost its connections — the splice assertion is vacuous")
			}
			sawSplice = true
		}
	}
	if !sawSplice {
		t.Fatal("no step exercised the full-splice path")
	}
}

func TestScopedVerdictTelemetryFootprintSized(t *testing.T) {
	// The counters must mirror TimingScans: a from-scratch engine pays
	// one verdict per entity per proposal, the scoped engine a handful
	// per change regardless of how much is deployed.
	inc, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if rep := inc.ProposeUpdate(fn("seed", model.QM, 100000, 2000, 64)); !rep.Accepted {
		t.Fatalf("seed rejected: %v", rep.Findings)
	}
	for i := 0; i < 6; i++ {
		rep := inc.ProposeUpdate(fn(fmt.Sprintf("t%d", i), model.QM, 100000+int64(i)*10000, 1500, 64))
		if !rep.Accepted {
			t.Fatalf("t%d rejected: %v", i, rep.Findings)
		}
		// Each addition touches one function on one processor: one
		// placement verdict + one memory budget, no redundancy groups,
		// no connections.
		if rep.SafetyChecks < 1 || rep.SafetyChecks > 3 {
			t.Errorf("t%d: SafetyChecks = %d, want footprint-sized (1..3)", i, rep.SafetyChecks)
		}
		if rep.SecurityChecks != 0 {
			t.Errorf("t%d: SecurityChecks = %d, want 0 (no sessions touched)", i, rep.SecurityChecks)
		}
	}

	ser, err := New(testPlatform(), WithoutIncremental())
	if err != nil {
		t.Fatal(err)
	}
	if rep := ser.ProposeUpdate(fn("seed", model.QM, 100000, 2000, 64)); !rep.Accepted {
		t.Fatalf("seed rejected: %v", rep.Findings)
	}
	rep := ser.ProposeUpdate(fn("t0", model.QM, 100000, 1500, 64))
	if !rep.Accepted {
		t.Fatalf("serial t0 rejected: %v", rep.Findings)
	}
	// From scratch: every instance + every loaded processor budget.
	if rep.SafetyChecks < 3 {
		t.Errorf("serial SafetyChecks = %d, want the full walk (>= instances + budgets)", rep.SafetyChecks)
	}
}
