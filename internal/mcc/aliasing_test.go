package mcc

import (
	"reflect"
	"testing"

	"repro/internal/model"
)

// Regression tests for the report/committed-state aliasing bugs the
// delta-report contract fixed: the timing stage's clean()-splice path
// used to hand committed TimingResult entries to the report, and the
// stream scheduler's deferred-verification fill wrote analysis results
// into both the report and the committed cache through the same slice.
// Mutating a returned report then corrupted the controller's committed
// WCRT tables. The tests mutate every reachable report surface
// post-return and assert the committed state is bit-identical.

// committedTimingSnapshot deep-copies the controller's committed timing
// state: the keyed WCRT cache and the materialized committed table.
func committedTimingSnapshot(m *MCC) (map[string]TimingResult, []TimingResult) {
	keyed := make(map[string]TimingResult, len(m.deployedTiming))
	for res, tr := range m.deployedTiming {
		keyed[res] = cloneTimingSnapshot(tr)
	}
	return keyed, m.deployedRes.materializeTiming(nil)
}

func cloneTimingSnapshot(tr TimingResult) TimingResult {
	out := TimingResult{Resource: tr.Resource}
	if tr.Results != nil {
		out.Results = append(out.Results[:0:0], tr.Results...)
	}
	return out
}

// vandalize writes through every surface of a returned report.
func vandalize(rep *Report) {
	for i := range rep.TimingDelta {
		rep.TimingDelta[i].Resource = "vandal"
		for j := range rep.TimingDelta[i].Results {
			rep.TimingDelta[i].Results[j].Name = "vandal"
			rep.TimingDelta[i].Results[j].WCRTUS = -1
			rep.TimingDelta[i].Results[j].Schedulable = false
		}
	}
	for i := range rep.MonitorDelta {
		rep.MonitorDelta[i].Target = "vandal"
		rep.MonitorDelta[i].PeriodUS = -1
	}
	ft := rep.FullTiming()
	for i := range ft {
		ft[i].Resource = "vandal"
		for j := range ft[i].Results {
			ft[i].Results[j].WCRTUS = -7
		}
	}
	fm := rep.FullMonitors()
	for i := range fm {
		fm[i].Target = "vandal"
	}
}

// assertCommittedUntouched compares the committed timing state against a
// pre-mutation snapshot.
func assertCommittedUntouched(t *testing.T, m *MCC, keyed map[string]TimingResult, table []TimingResult) {
	t.Helper()
	gotKeyed, gotTable := committedTimingSnapshot(m)
	if !reflect.DeepEqual(gotKeyed, keyed) {
		t.Fatalf("report mutation reached the committed WCRT cache:\nwas %+v\nnow %+v", keyed, gotKeyed)
	}
	if !reflect.DeepEqual(gotTable, table) {
		t.Fatalf("report mutation reached the committed resource table:\nwas %+v\nnow %+v", table, gotTable)
	}
}

func TestReportDeltaDoesNotAliasCommittedState(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"serial", []Option{WithoutIncremental()}},
		{"incremental", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := New(testPlatform(), tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			deployFlowBaseline(t, m)

			// An update touching one function: on the incremental engine
			// this exercises the clean()-splice path (untouched resources
			// reuse committed tables).
			rep := m.ProposeUpdate(fn("telemetry", model.QM, 100000, 2000, 64))
			if !rep.Accepted {
				t.Fatalf("update rejected: %v", rep.Findings)
			}
			keyed, table := committedTimingSnapshot(m)
			vandalize(rep)
			assertCommittedUntouched(t, m, keyed, table)

			// A clean re-proposal must still decide from uncorrupted
			// tables and carry an empty delta.
			rep2 := m.ProposeUpdate(fn("telemetry", model.QM, 100000, 2000, 64))
			if !rep2.Accepted {
				t.Fatalf("clean re-proposal rejected after report mutation: %v", rep2.Findings)
			}
			vandalize(rep2)
			assertCommittedUntouched(t, m, keyed, table)
		})
	}
}

func TestStreamReportDoesNotAliasCommittedState(t *testing.T) {
	// The stream scheduler's deferred-verification path fills accepted
	// reports with analysis results after the optimistic commit — the
	// second historical aliasing site.
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	deployFlowBaseline(t, m)

	sched := NewStreamScheduler(m)
	reports := sched.Run([]Change{
		upd(fn("telemetry", model.QM, 100000, 2000, 64)),
		upd(fn("diag", model.QM, 120000, 1500, 64)),
		upd(fn("logger", model.QM, 140000, 2500, 64)),
	})
	for i, rep := range reports {
		if !rep.Accepted {
			t.Fatalf("change %d rejected: %v", i, rep.Findings)
		}
	}
	keyed, table := committedTimingSnapshot(m)
	for _, rep := range reports {
		vandalize(rep)
	}
	assertCommittedUntouched(t, m, keyed, table)

	// The next window decides from uncorrupted state.
	more := NewStreamScheduler(m).Run([]Change{upd(fn("extra", model.QM, 160000, 1000, 64))})
	if !more[0].Accepted {
		t.Fatalf("post-mutation window rejected: %v", more[0].Findings)
	}
}
