package mcc

import (
	"context"

	"repro/internal/mcc/pipeline"
	"repro/internal/model"
)

// This file implements the O(diff) proposal entry path: instead of
// cloning the deployed architecture per proposal (O(platform) copies in
// ProposeUpdate/ProposeRemoval/StreamScheduler) and re-deriving the diff
// by scanning every function (pipeline.ComputeDiff), a single-function
// change is applied to the deployed architecture in place, its diff is
// constructed directly from the change object plus the committed
// function index (pipeline.DiffFromChange), and a rejection reverts the
// one touched slot. Stream-window rollback replays the same undo records
// through the window journal — the copy-on-write trick the journal
// already plays for the cache maps, extended to the candidate itself.
// The sharded scheduler widens that rollback unit to the epoch: one
// journal spans every partition's open window (stream_sharded.go), and
// the same undo records rewind all of them together.
//
// The clone-based path stays behind ProposeArchitecture, ProposeBatch,
// and every cold/quarantined state: it is both the from-scratch fallback
// and the parity oracle the fast path is tested against.

// candKind tags one in-place candidate mutation.
type candKind uint8

const (
	candNone    candKind = iota // no-op (e.g. removal of an unknown function)
	candReplace                 // updated an existing function in place
	candAppend                  // appended a new function
	candRemove                  // removed a function (order-preserving)
)

// candUndo records one proposal's in-place mutation of the deployed
// architecture so a rejection — or a stream-window rollback — can revert
// it exactly. Only the touched slot is saved: undo cost is O(1) for
// updates and O(n) only for the memmove of a removal, never a clone.
type candUndo struct {
	kind candKind
	idx  int            // slice index of the touched function
	old  model.Function // prior value (replace/remove)
	// oldFlows restores the flow slice of a removal that cut flows; the
	// filtered slice is freshly allocated, so the prior header is intact.
	oldFlows []model.Flow
	flowsCut bool
}

// fastPathReady reports whether single-change proposals may mutate the
// deployed architecture in place and derive their diff from the change
// object. It requires the committed indexes a keyed commit maintains —
// quarantined or purged controllers fall back to the clone-based path,
// which depends only on the committed architecture.
func (m *MCC) fastPathReady() bool {
	return m.incPre && !m.quarantined &&
		m.deployedSynth != nil && m.deployedFlowTouch != nil &&
		m.impl != nil && len(m.deployed.Functions) > 0
}

// fnIndexOf returns the position of the named function in the deployed
// architecture, or -1. The index map is built lazily over the deployed
// slice and maintained by the in-place mutations below (appends extend
// it, removals shift every later position and drop it); anything that
// replaces the slice wholesale — a clone-based commit, a window
// rollback, a cache purge — drops it too, and the next lookup rebuilds.
func (m *MCC) fnIndexOf(name string) int {
	if m.fnIdx == nil {
		fns := m.deployed.Functions
		idx := make(map[string]int, len(fns))
		for i := range fns {
			idx[fns[i].Name] = i
		}
		m.fnIdx = idx
	}
	if i, ok := m.fnIdx[name]; ok {
		return i
	}
	return -1
}

// candFn resolves a function of the candidate architecture by name. On
// the fast path the candidate is the deployed slice mutated in place, so
// the committed index answers in O(1); clone-based candidates fall back
// to the linear scan (they already paid an O(n) clone, so the scan does
// not change their complexity class).
func (m *MCC) candFn(cand *model.FunctionalArchitecture, name string) *model.Function {
	if cand == m.deployed {
		if i := m.fnIndexOf(name); i >= 0 {
			return &cand.Functions[i]
		}
		return nil
	}
	return cand.FunctionByName(name)
}

// applyChangeFast mutates the deployed architecture in place to become
// the candidate of change c and returns the change-driven diff plus the
// undo record reverting the mutation. The committed function value comes
// from the O(1) synthesis index, the flow-touch test from the committed
// flow index — no architecture walk, no clone.
func (m *MCC) applyChangeFast(c Change) (pipeline.Diff, candUndo) {
	fa := m.deployed
	if c.Update != nil {
		name := c.Update.Name
		old := m.deployedSynth.fnByName[name]
		d := pipeline.DiffFromChange(name, c.Update, old, false)
		if old == nil {
			fa.Functions = append(fa.Functions, *c.Update)
			if m.fnIdx != nil {
				m.fnIdx[name] = len(fa.Functions) - 1
			}
			return d, candUndo{kind: candAppend, idx: len(fa.Functions) - 1}
		}
		idx := m.fnIndexOf(name)
		u := candUndo{kind: candReplace, idx: idx, old: fa.Functions[idx]}
		fa.Functions[idx] = *c.Update
		return d, u
	}
	name := c.Remove
	old := m.deployedSynth.fnByName[name]
	d := pipeline.DiffFromChange(name, nil, old, m.deployedFlowTouch[name])
	if old == nil {
		return d, candUndo{kind: candNone}
	}
	idx := m.fnIndexOf(name)
	u := candUndo{kind: candRemove, idx: idx, old: fa.Functions[idx]}
	// Order-preserving delete, so validation's first-error selection (and
	// every other order-sensitive walk) matches the clone-based path. The
	// memmove shifts every later position, so the index map is dropped —
	// the next fast-path lookup rebuilds it, amortized against the O(n)
	// delete this undo already paid for.
	copy(fa.Functions[idx:], fa.Functions[idx+1:])
	fa.Functions = fa.Functions[:len(fa.Functions)-1]
	m.fnIdx = nil
	if d.FlowsChanged {
		u.oldFlows, u.flowsCut = fa.Flows, true
		kept := make([]model.Flow, 0, len(fa.Flows))
		for _, fl := range fa.Flows {
			if fl.From != name && fl.To != name {
				kept = append(kept, fl)
			}
		}
		fa.Flows = kept
	}
	return d, u
}

// revertChange undoes one in-place candidate mutation, keeping the
// function index map in step (reinsertion shifts positions, so it is
// dropped like the removal that preceded it).
func (m *MCC) revertChange(u candUndo) {
	fa := m.deployed
	switch u.kind {
	case candReplace:
		fa.Functions[u.idx] = u.old
	case candAppend:
		if m.fnIdx != nil {
			delete(m.fnIdx, fa.Functions[len(fa.Functions)-1].Name)
		}
		fa.Functions = fa.Functions[:len(fa.Functions)-1]
	case candRemove:
		fa.Functions = append(fa.Functions, model.Function{})
		copy(fa.Functions[u.idx+1:], fa.Functions[u.idx:])
		fa.Functions[u.idx] = u.old
		if u.flowsCut {
			fa.Flows = u.oldFlows
		}
		m.fnIdx = nil
	}
}

// integrateChangeCtx decides one single-function change. With warm
// committed indexes the candidate is the deployed architecture mutated
// in place and the diff comes from the change object; a rejection
// reverts the mutation, an acceptance inside a stream window records the
// undo on the window journal so a rollback can revert it too. Cold
// controllers take the clone-based path unchanged.
func (m *MCC) integrateChangeCtx(gctx context.Context, c Change) *Report {
	if !m.fastPathReady() {
		return m.integrateCtx(gctx, applyChange(m.deployed, c))
	}
	d, undo := m.applyChangeFast(c)
	rep := m.integrateDiff(gctx, m.deployed, &d)
	if rep.Accepted {
		// Record the undo only if the mutation hit the window-start
		// architecture object: a mid-window from-scratch commit swaps
		// m.deployed to a fresh object, and mutations on that object are
		// discarded wholesale when rollback restores the start pointer.
		if j := m.journal; j != nil && m.deployed == j.deployed {
			j.candUndos = append(j.candUndos, undo)
		}
	} else {
		m.revertChange(undo)
	}
	return rep
}
