package mcc

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"repro/internal/mcc/pipeline"
	"repro/internal/model"
)

// shardedPlatform mirrors stressPlatform per CAN segment: two disjoint
// segments (one slow safe core and one fast core each) joined by a
// full-coverage backbone, so the partition derivation yields exactly two
// shards and an ASIL-D replica pair is forced to span them.
func shardedPlatform() *model.Platform {
	return &model.Platform{
		Processors: []model.Processor{
			{Name: "safe0", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "fast0", Policy: model.SPP, SpeedFactor: 2.0, RAMKiB: 8192, MaxSafety: model.ASILB},
			{Name: "safe1", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "fast1", Policy: model.SPP, SpeedFactor: 2.0, RAMKiB: 8192, MaxSafety: model.ASILB},
		},
		Networks: []model.Network{
			{Name: "seg0", BitsPerSec: 500_000, Attached: []string{"safe0", "fast0"}, Kind: "can"},
			{Name: "seg1", BitsPerSec: 500_000, Attached: []string{"safe1", "fast1"}, Kind: "can"},
			{Name: "backbone", BitsPerSec: 1_000_000, Attached: []string{"safe0", "fast0", "safe1", "fast1"}, Kind: "can"},
		},
	}
}

// --- partition derivation ----------------------------------------------------

func TestPlatformPartitionsBackboneOnlyCollapses(t *testing.T) {
	// A platform whose only network attaches every processor has no
	// isolated segments: it must stay one partition (sharding falls back
	// to the single window sequence), not shatter into per-processor
	// singletons.
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	parts := m.partitions()
	if parts.count != 1 {
		t.Fatalf("backbone-only platform split into %d partitions, want 1", parts.count)
	}
	for _, p := range testPlatform().Processors {
		if got := parts.procPart[p.Name]; got != 0 {
			t.Fatalf("processor %s in partition %d, want 0", p.Name, got)
		}
	}
}

func TestPlatformPartitionsSegmentsExcludeBackbone(t *testing.T) {
	m, err := New(shardedPlatform())
	if err != nil {
		t.Fatal(err)
	}
	parts := m.partitions()
	if parts.count != 2 {
		t.Fatalf("two-segment platform split into %d partitions, want 2", parts.count)
	}
	// Dense ids in platform processor order: seg0 first.
	for proc, want := range map[string]int{"safe0": 0, "fast0": 0, "safe1": 1, "fast1": 1} {
		if got := parts.procPart[proc]; got != want {
			t.Fatalf("processor %s in partition %d, want %d", proc, got, want)
		}
	}
	// The partition is static: the cached pointer is reused.
	if m.partitions() != parts {
		t.Fatal("partition recomputed despite immutable platform")
	}
}

func TestPlatformPartitionsChainedSegments(t *testing.T) {
	// Segments sharing a processor are one connected component; a
	// processor attached only to the backbone is its own partition.
	p := &model.Platform{
		Processors: []model.Processor{
			{Name: "p0", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "p1", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "p2", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
			{Name: "p3", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 4096, MaxSafety: model.ASILD},
		},
		Networks: []model.Network{
			{Name: "segA", BitsPerSec: 500_000, Attached: []string{"p0", "p1"}, Kind: "can"},
			{Name: "segB", BitsPerSec: 500_000, Attached: []string{"p1", "p2"}, Kind: "can"},
			{Name: "backbone", BitsPerSec: 1_000_000, Attached: []string{"p0", "p1", "p2", "p3"}, Kind: "can"},
		},
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	parts := m.partitions()
	if parts.count != 2 {
		t.Fatalf("chained segments split into %d partitions, want 2", parts.count)
	}
	if parts.procPart["p0"] != parts.procPart["p2"] {
		t.Fatal("segments sharing p1 did not merge")
	}
	if parts.procPart["p3"] == parts.procPart["p0"] {
		t.Fatal("backbone-only processor merged into a segment partition")
	}
}

// --- change routing ----------------------------------------------------------

func TestRouteChangeFollowsCommittedTopology(t *testing.T) {
	m, err := New(shardedPlatform())
	if err != nil {
		t.Fatal(err)
	}
	parts := m.partitions()

	// An undeployed function routes by name hash into a real shard and
	// the resolution is cached.
	a := fn("a", model.QM, 100000, 2000, 64)
	hashed := m.routeChange(upd(a))
	if hashed < 0 || hashed >= parts.count {
		t.Fatalf("undeployed function routed to %d, want a shard in [0,%d)", hashed, parts.count)
	}
	if _, ok := m.fnParts["a"]; !ok {
		t.Fatal("route resolution not cached")
	}

	// The cold controller's first commit is from-scratch: it replaces the
	// placements wholesale and must invalidate the route cache with them.
	fa := &model.FunctionalArchitecture{Functions: []model.Function{a}}
	if rep := m.ProposeArchitecture(fa); !rep.Accepted {
		t.Fatalf("architecture proposal rejected: %v (%s)", rep.Findings, rep.RejectedAt)
	}
	if m.fnParts != nil {
		t.Fatal("from-scratch commit left the route cache populated")
	}

	// A keyed commit touching the function drops its cache entry, and the
	// next lookup resolves the committed placement.
	a.Version = 2
	if _ = m.routeChange(upd(a)); m.fnParts["a"] < 0 {
		t.Fatal("deployed function routed global")
	}
	if rep := m.ProposeUpdate(a); !rep.Accepted {
		t.Fatalf("a rejected: %v", rep.Findings)
	}
	if _, ok := m.fnParts["a"]; ok {
		t.Fatal("keyed commit left a stale route cache entry for the touched function")
	}
	ins := m.deployedSynth.instancesOf["a"]
	if len(ins) == 0 {
		t.Fatal("no committed instances for a")
	}
	if got, want := m.routeChange(upd(a)), parts.procPart[ins[0].Processor]; got != want {
		t.Fatalf("deployed function routed to %d, committed placement is partition %d", got, want)
	}

	// Replicas forced onto both safe cores span the partitions: the
	// change is genuinely cross-partition and routes global.
	b := fn("b", model.ASILD, 40000, 1000, 64)
	b.Replicas = 2
	if rep := m.ProposeUpdate(b); !rep.Accepted {
		t.Fatalf("b rejected: %v", rep.Findings)
	}
	bi := m.deployedSynth.instancesOf["b"]
	if len(bi) != 2 || parts.procPart[bi[0].Processor] == parts.procPart[bi[1].Processor] {
		t.Fatalf("replica pair not spanning partitions: %+v", bi)
	}
	if got := m.routeChange(upd(b)); got != partGlobal {
		t.Fatalf("cross-partition replicas routed to shard %d, want global", got)
	}
}

// --- stream stats rendering (regression: fault telemetry was dropped) --------

func TestStreamStatsStringIncludesFaultTelemetry(t *testing.T) {
	st := StreamStats{
		Windows: 9, Speculated: 8, Prefetched: 7, Replays: 6,
		DiscardedPasses: 5, Conflicts: 4, PanicsRecovered: 3, RetriedAnalyses: 2,
	}
	want := "windows 9 (speculated 8, replays 6, conflicts 4, prefetched 7, discarded 5, panics 3, retries 2)"
	if got := st.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	st.Shards = 2
	st.GlobalWindows = 1
	if got, want := st.String(), want+" [shards 2, global 1]"; got != want {
		t.Fatalf("sharded String() = %q, want %q", got, want)
	}
}

// --- window formation (regression: conflict footprint recomputed) ------------

func TestWindowEndUsesCarriedConflictFootprint(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStreamScheduler(m)
	changes := []Change{
		upd(fn("a", model.QM, 100000, 2000, 64)),
		upd(fn("zz", model.QM, 120000, 1500, 64)),
	}

	// A sentinel carry proves the head footprint is taken from the
	// previous window's conflict, not recomputed: recomputing changes[0]
	// ({a}) would admit zz into the window, the carried {zz} must not.
	sentinel := footprint{names: map[string]bool{"zz": true}, services: map[string]bool{}}
	hi, next := s.windowEnd(changes, 0, &sentinel)
	if hi != 1 {
		t.Fatalf("windowEnd ignored the carried footprint: window [0,%d), want [0,1)", hi)
	}
	if next == nil || !next.names["zz"] {
		t.Fatalf("conflict did not return the breaking change's footprint: %+v", next)
	}
	if s.stats.Conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", s.stats.Conflicts)
	}

	// Without a carry the head is computed fresh and the window spans
	// both disjoint changes.
	if hi, next := s.windowEnd(changes, 0, nil); hi != 2 || next != nil {
		t.Fatalf("fresh window = [0,%d) carry %+v, want [0,2) and no carry", hi, next)
	}
}

// --- mid-window context expiry accounting ------------------------------------

// cancelAfter returns a pipeline stage that cancels the given context
// during its n-th armed run, simulating a deadline expiring while a later
// window member is mid-pipeline.
func cancelAfter(n int, cancel context.CancelFunc) (pipeline.Func, *bool) {
	armed := new(bool)
	runs := 0
	return pipeline.Func{
		StageName: "cancel-witness",
		RunFunc: func(*pipeline.Context) error {
			if !*armed {
				return nil
			}
			runs++
			if runs == n {
				cancel()
			}
			return nil
		},
	}, armed
}

// expiryChanges is a window of four: an offender whose deferred timing
// verdict fails (forcing the replay), two feasible additions, and a
// fourth change the expiry short-circuits before it enters the pipeline.
func expiryChanges() []Change {
	return []Change{
		upd(fn("c", model.ASILD, 14000, 5200, 1)), // deferred timing verdict fails
		upd(fn("t", model.QM, 200000, 100, 1)),
		upd(fn("u", model.QM, 220000, 100, 1)),
		upd(fn("v", model.QM, 240000, 100, 1)),
	}
}

func assertAllDeadlineRejected(t *testing.T, got []*Report) {
	t.Helper()
	for i, rep := range got {
		if rep.Accepted || !rep.Degraded || !slices.Contains(rep.DegradedReasons, "deadline") {
			t.Fatalf("change %d = accepted %v, degraded %v %v; want deterministic deadline rejection",
				i, rep.Accepted, rep.Degraded, rep.DegradedReasons)
		}
	}
}

func TestStreamSchedulerMidWindowExpiryDiscardAccounting(t *testing.T) {
	// The context dies while the third window member is mid-pipeline: the
	// fourth short-circuits without a pipeline pass, verification fails on
	// the offender, and the replay resolves everything as deadline
	// rejections. DiscardedPasses must count only the three genuine
	// optimistic passes — the expired short-circuit's mirrored Passes
	// field must not inflate it (or the Evaluations derived from it).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stage, armed := cancelAfter(3, cancel)
	p := &model.Platform{
		Processors: []model.Processor{
			{Name: "only", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 8192, MaxSafety: model.ASILD},
		},
	}
	m, err := New(p, WithStage(stage))
	if err != nil {
		t.Fatal(err)
	}
	if rep := m.ProposeUpdate(fn("a", model.ASILD, 10000, 5200, 1)); !rep.Accepted {
		t.Fatalf("baseline rejected: %v", rep.Findings)
	}
	*armed = true

	changes := expiryChanges()
	sched := NewStreamScheduler(m, WithStreamWindow(len(changes)))
	got := sched.RunContext(ctx, changes)
	if len(got) != len(changes) {
		t.Fatalf("stream resolved %d/%d changes", len(got), len(changes))
	}
	assertAllDeadlineRejected(t, got)
	st := sched.Stats()
	if st.Windows != 1 || st.Replays != 1 || st.Conflicts != 0 {
		t.Fatalf("stats = %+v, want one window, one replay, no conflicts", st)
	}
	if st.DiscardedPasses != 3 {
		t.Fatalf("DiscardedPasses = %d, want exactly the 3 genuine optimistic passes", st.DiscardedPasses)
	}
}

func TestShardedStreamMidEpochExpiryDiscardAccounting(t *testing.T) {
	// The sharded equivalent: the near-capacity baselines make the
	// offender's deferred verdict fail on every shard, the cancel fires
	// while the third change is mid-pipeline, and the epoch barrier must
	// replay with the same exact accounting.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stage, armed := cancelAfter(3, cancel)
	p := &model.Platform{
		Processors: []model.Processor{
			{Name: "p0", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 8192, MaxSafety: model.ASILD},
			{Name: "p1", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 8192, MaxSafety: model.ASILD},
			{Name: "p2", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 8192, MaxSafety: model.ASILD},
			{Name: "p3", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 8192, MaxSafety: model.ASILD},
		},
		Networks: []model.Network{
			{Name: "seg0", BitsPerSec: 500_000, Attached: []string{"p0", "p1"}, Kind: "can"},
			{Name: "seg1", BitsPerSec: 500_000, Attached: []string{"p2", "p3"}, Kind: "can"},
			{Name: "backbone", BitsPerSec: 1_000_000, Attached: []string{"p0", "p1", "p2", "p3"}, Kind: "can"},
		},
	}
	m, err := New(p, WithStage(stage))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if rep := m.ProposeUpdate(fn(fmt.Sprintf("b%d", i), model.ASILD, 10000, 5200, 1)); !rep.Accepted {
			t.Fatalf("baseline b%d rejected: %v", i, rep.Findings)
		}
	}
	*armed = true

	changes := expiryChanges()
	sched := NewStreamScheduler(m, WithShardedWindows(), WithStreamWindow(len(changes)))
	got := sched.RunContext(ctx, changes)
	if len(got) != len(changes) {
		t.Fatalf("stream resolved %d/%d changes", len(got), len(changes))
	}
	assertAllDeadlineRejected(t, got)
	st := sched.Stats()
	if st.Shards != 2 || st.Replays != 1 || st.GlobalWindows != 0 {
		t.Fatalf("stats = %+v, want 2 shards, one epoch replay, no global windows", st)
	}
	if st.DiscardedPasses != 3 {
		t.Fatalf("DiscardedPasses = %d, want exactly the 3 genuine optimistic passes", st.DiscardedPasses)
	}
}

// --- sharded scheduler behavior ----------------------------------------------

func TestShardedStreamPerShardWindowsAndGlobalDrains(t *testing.T) {
	// A same-name conflict closes only its shard's window, a removal
	// drains everything through a serialized global window, and the
	// decisions stay identical to serial stream order.
	baseline := []model.Function{fn("a", model.QM, 100000, 2000, 64)}
	a2 := fn("a", model.QM, 100000, 2000, 64)
	a2.Version = 2
	a3 := fn("a", model.QM, 100000, 2000, 64)
	a3.Version = 3
	changes := []Change{
		upd(a2), // routes to a's committed partition
		upd(a3), // same shard, same name: per-shard conflict
		upd(fn("n1", model.QM, 120000, 1500, 64)),
		upd(fn("n2", model.QM, 140000, 1500, 64)),
		{Remove: "a"}, // global footprint: drains every shard
		upd(fn("n3", model.QM, 160000, 1500, 64)),
	}
	sched, got := streamParity(t, shardedPlatform(), baseline, changes,
		WithShardedWindows(), WithStreamWindow(4))
	for i, rep := range got {
		if !rep.Accepted {
			t.Fatalf("change %d rejected: %v (%s)", i, rep.Findings, rep.RejectedAt)
		}
	}
	st := sched.Stats()
	if st.Shards != 2 {
		t.Fatalf("stats = %+v, want 2 shards", st)
	}
	if st.Conflicts != 1 {
		t.Fatalf("stats = %+v, want exactly the same-name conflict", st)
	}
	if st.GlobalWindows != 1 {
		t.Fatalf("stats = %+v, want exactly the removal's global window", st)
	}
	if st.Replays != 0 || st.Speculated != len(changes)-1 {
		t.Fatalf("stats = %+v, want %d speculated epoch members and no replays", st, len(changes)-1)
	}
	if st.Windows < 3 {
		t.Fatalf("stats = %+v, want the stream split across >= 3 windows", st)
	}
}

func TestShardedStreamFallsBackWithoutSegments(t *testing.T) {
	// On a backbone-only platform the partition collapses to one and the
	// sharded scheduler must fall back to the single window sequence
	// (Shards stays 0 — no dishonest "1-shard" telemetry).
	changes := []Change{
		upd(fn("t0", model.QM, 100000, 2000, 64)),
		upd(fn("t1", model.QM, 120000, 1500, 64)),
	}
	sched, _ := streamParity(t, testPlatform(), nil, changes, WithShardedWindows())
	if st := sched.Stats(); st.Shards != 0 || st.GlobalWindows != 0 {
		t.Fatalf("stats = %+v, want single-sequence fallback", st)
	}
}

// TestShardedStreamStressRollbackCacheParity is the sharded twin of the
// single-sequence stress test: random overlapping streams with planted
// mid-epoch rejections on a two-segment platform, decisions and every
// deployed cache compared against a fresh serial controller. Run under
// -race in CI, this also races the eager background prefetch pool against
// the mutator's optimistic passes and journal writes — concurrency the
// single-sequence scheduler never has.
func TestShardedStreamStressRollbackCacheParity(t *testing.T) {
	gate := fn("gate", model.QM, 80000, 1000, 64)
	gate.Provides = []string{"core_svc"}
	gate.Contract.Domain = "core"
	baseline := []model.Function{
		fn("base", model.ASILD, 10000, 3000, 128),
		fn("aux", model.QM, 50000, 4000, 256),
		gate,
	}
	var totalReplays, totalConflicts, totalSpeculated, totalGlobal int
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			changes := make([]Change, 0, 48)
			for i := 0; i < 48; i++ {
				changes = append(changes, stressChange(rng, i))
			}

			mk := func() *MCC {
				m, err := New(shardedPlatform())
				if err != nil {
					t.Fatal(err)
				}
				for _, f := range baseline {
					if rep := m.ProposeUpdate(f); !rep.Accepted {
						t.Fatalf("baseline %s rejected: %v", f.Name, rep.Findings)
					}
				}
				return m
			}

			streamed := mk()
			sched := NewStreamScheduler(streamed, WithShardedWindows(), WithStreamWindow(8))
			got := sched.Run(changes)

			fresh := mk()
			want := make([]*Report, 0, len(changes))
			for _, c := range changes {
				want = append(want, fresh.propose(c))
			}

			for i := range want {
				if got[i].Accepted != want[i].Accepted || got[i].RejectedAt != want[i].RejectedAt {
					t.Fatalf("change %d (%s): sharded decided %v@%q, serial %v@%q",
						i, changes[i], got[i].Accepted, got[i].RejectedAt, want[i].Accepted, want[i].RejectedAt)
				}
				if !reflect.DeepEqual(got[i].Findings, want[i].Findings) {
					t.Fatalf("change %d (%s): findings diverge:\nsharded %v\nserial %v",
						i, changes[i], got[i].Findings, want[i].Findings)
				}
			}
			sf, ff := cacheFingerprint(streamed), cacheFingerprint(fresh)
			for key := range ff {
				if !reflect.DeepEqual(sf[key], ff[key]) {
					t.Errorf("cache %q diverges from a fresh serial commit:\nsharded %+v\nserial %+v",
						key, sf[key], ff[key])
				}
			}

			st := sched.Stats()
			if st.Shards != 2 {
				t.Fatalf("stats = %+v, want 2 shards", st)
			}
			totalReplays += st.Replays
			totalConflicts += st.Conflicts
			totalSpeculated += st.Speculated
			totalGlobal += st.GlobalWindows
		})
	}
	// The corpus must exercise every sharded mechanism it guards: epoch
	// replays, per-shard conflicts, verified speculation, and global
	// drains all have to occur.
	if totalReplays == 0 || totalConflicts == 0 || totalSpeculated == 0 || totalGlobal == 0 {
		t.Fatalf("sharded stress corpus too tame: replays=%d conflicts=%d speculated=%d global=%d, want all > 0",
			totalReplays, totalConflicts, totalSpeculated, totalGlobal)
	}
}
