package mcc

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
)

// --- diff-proportional timing-job construction ------------------------------

func deployFlowBaseline(t *testing.T, m *MCC) {
	t.Helper()
	prod := fn("radar", model.ASILD, 20000, 2000, 512)
	prod.Provides = []string{"objects"}
	cons := fn("acc", model.ASILD, 20000, 2000, 512)
	cons.Requires = []string{"objects"}
	fa := &model.FunctionalArchitecture{
		Functions: []model.Function{prod, cons, fn("infotainment", model.QM, 50000, 10000, 1024)},
		Flows:     []model.Flow{{From: "radar", To: "acc", Service: "objects", MsgBytes: 8, PeriodUS: 20000}},
	}
	if rep := m.ProposeArchitecture(fa); !rep.Accepted {
		t.Fatalf("baseline rejected: %v (%s)", rep.Findings, rep.RejectedAt)
	}
}

func TestTimingJobsCleanProposalZeroScans(t *testing.T) {
	// A proposal identical to the deployed configuration (empty diff)
	// touches no resource: the timing stage must splice every cached job
	// and perform zero TasksOn/MessagesOn scans.
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	deployFlowBaseline(t, m)

	rep := m.ProposeArchitecture(m.Deployed())
	if !rep.Accepted {
		t.Fatalf("no-op proposal rejected: %v (%s)", rep.Findings, rep.RejectedAt)
	}
	if rep.TimingScans != 0 {
		t.Fatalf("clean proposal scanned %d resources, want 0", rep.TimingScans)
	}
	if rep.TimingDirty != 0 {
		t.Fatalf("clean proposal analyzed %d resources, want 0", rep.TimingDirty)
	}
	if rep.TimingResources == 0 {
		t.Fatal("no timing coverage recorded")
	}
}

func TestTimingJobsScansOnlyAffectedResources(t *testing.T) {
	// A serviceless, flowless addition lands on exactly one processor and
	// leaves the message list untouched: one scan, everything else
	// spliced from the deployed job cache.
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	deployFlowBaseline(t, m)

	rep := m.ProposeUpdate(fn("telemetry", model.QM, 100000, 2000, 64))
	if !rep.Accepted {
		t.Fatalf("telemetry rejected: %v (%s)", rep.Findings, rep.RejectedAt)
	}
	if rep.TimingScans != 1 {
		t.Fatalf("one-processor addition scanned %d resources, want 1", rep.TimingScans)
	}
	tr := rep.StageTraceFor(StageTiming)
	if tr == nil || !strings.Contains(tr.Note, "1 scanned") {
		t.Fatalf("timing trace = %+v, want scan telemetry", tr)
	}
}

func TestTimingJobsIncrementalMatchesFullScan(t *testing.T) {
	// After any accepted change, the spliced job set must be
	// digest-identical to a from-scratch scan of the deployed model —
	// the splice may never serve a stale task set.
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	deployFlowBaseline(t, m)

	updates := []model.Function{
		fn("telemetry", model.QM, 100000, 2000, 64),
		withRequires(fn("acc", model.ASILD, 20000, 2500, 512), "objects"), // update a flow endpoint
		fn("logger", model.QM, 200000, 1000, 32),
	}
	for _, f := range updates {
		if rep := m.ProposeUpdate(f); !rep.Accepted {
			t.Fatalf("%s rejected: %v (%s)", f.Name, rep.Findings, rep.RejectedAt)
		}
		full, _ := m.timingJobs(nil, m.DeployedImpl())
		fromScan := make(map[string]uint64, len(full))
		for _, j := range full {
			fromScan[j.resource] = j.digest
		}
		cached := make(map[string]uint64, len(m.deployedJobs))
		for res, j := range m.deployedJobs {
			cached[res] = j.digest
		}
		if !reflect.DeepEqual(fromScan, cached) {
			t.Fatalf("after %s: cached jobs diverge from full scan:\nscan  %v\ncache %v",
				f.Name, fromScan, cached)
		}
	}
}

// --- incremental monitor planning -------------------------------------------

func TestMonitorSpliceMatchesFullPlan(t *testing.T) {
	// Across additions, updates of flow endpoints, and removals, the
	// spliced monitor plan must be element-for-element identical to the
	// from-scratch plan over the same implementation model.
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	deployFlowBaseline(t, m)

	steps := []struct {
		name   string
		run    func() *Report
		splice bool
	}{
		{"add telemetry", func() *Report { return m.ProposeUpdate(fn("telemetry", model.QM, 100000, 2000, 64)) }, true},
		{"update acc", func() *Report {
			return m.ProposeUpdate(withRequires(fn("acc", model.ASILD, 20000, 2500, 512), "objects"))
		}, true},
		{"remove infotainment", func() *Report { return m.ProposeRemoval("infotainment") }, true},
	}
	for _, step := range steps {
		rep := step.run()
		if !rep.Accepted {
			t.Fatalf("%s rejected: %v (%s)", step.name, rep.Findings, rep.RejectedAt)
		}
		want := m.planMonitors(m.DeployedImpl())
		if got := rep.FullMonitors(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: materialized plan diverges from full plan:\nmaterialized %+v\nfull         %+v",
				step.name, got, want)
		}
		if tr := rep.StageTraceFor(StageMonitors); step.splice && (tr == nil || !strings.Contains(tr.Note, "monitor delta")) {
			t.Fatalf("%s: monitor trace = %+v, want delta telemetry", step.name, tr)
		}
	}
}

func withRequires(f model.Function, svcs ...string) model.Function {
	f.Requires = append(f.Requires, svcs...)
	return f
}

func TestMonitorPlanUntouchedByRejection(t *testing.T) {
	// A rejected proposal must leave the deployed monitor plan (and its
	// splice caches) exactly as committed — the monitor rollback
	// invariant.
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	deployFlowBaseline(t, m)
	before := append([]MonitorSpec(nil), m.DeployedMonitors()...)

	rep := m.ProposeUpdate(fn("broken", model.QM, 1000, 5000, 64)) // WCET > deadline
	if rep.Accepted {
		t.Fatal("broken contract accepted")
	}
	if !reflect.DeepEqual(m.DeployedMonitors(), before) {
		t.Fatalf("rejection changed the deployed monitor plan:\nwas %+v\nnow %+v", before, m.DeployedMonitors())
	}

	// A feasible follow-up still splices against the intact plan.
	rep = m.ProposeUpdate(fn("telemetry", model.QM, 100000, 2000, 64))
	if !rep.Accepted {
		t.Fatalf("post-rejection proposal rejected: %v", rep.Findings)
	}
	if want := m.planMonitors(m.DeployedImpl()); !reflect.DeepEqual(rep.FullMonitors(), want) {
		t.Fatalf("post-rejection monitor plan diverges from full plan")
	}
}

// --- stream scheduler --------------------------------------------------------

// streamParity runs the same change stream through a serial MCC and a
// stream scheduler and asserts identical decisions, findings, and final
// deployed state.
func streamParity(t *testing.T, p *model.Platform, baseline []model.Function, changes []Change, opts ...StreamOption) (*StreamScheduler, []*Report) {
	t.Helper()
	mkMCC := func() *MCC {
		m, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range baseline {
			if rep := m.ProposeUpdate(f); !rep.Accepted {
				t.Fatalf("baseline %s rejected: %v", f.Name, rep.Findings)
			}
		}
		return m
	}

	serial := mkMCC()
	var want []*Report
	for _, c := range changes {
		want = append(want, serial.propose(c))
	}

	streamed := mkMCC()
	sched := NewStreamScheduler(streamed, opts...)
	got := sched.Run(changes)

	if len(got) != len(want) {
		t.Fatalf("stream returned %d reports for %d changes", len(got), len(changes))
	}
	for i := range want {
		if got[i].Accepted != want[i].Accepted || got[i].RejectedAt != want[i].RejectedAt {
			t.Fatalf("change %d (%s): stream decided %v@%q, serial %v@%q",
				i, changes[i], got[i].Accepted, got[i].RejectedAt, want[i].Accepted, want[i].RejectedAt)
		}
		if !reflect.DeepEqual(got[i].Findings, want[i].Findings) {
			t.Fatalf("change %d findings diverge:\nstream %v\nserial %v", i, got[i].Findings, want[i].Findings)
		}
	}
	if !reflect.DeepEqual(streamed.Deployed(), serial.Deployed()) {
		t.Fatal("final deployed architectures diverge")
	}
	if !reflect.DeepEqual(streamed.DeployedImpl().Tasks, serial.DeployedImpl().Tasks) {
		t.Fatal("final task sets diverge")
	}
	if !reflect.DeepEqual(streamed.deployedDigest, serial.deployedDigest) {
		t.Fatal("final timing digests diverge")
	}
	if !reflect.DeepEqual(streamed.DeployedMonitors(), serial.DeployedMonitors()) {
		t.Fatal("final monitor plans diverge")
	}
	if len(streamed.History) != len(serial.History) {
		t.Fatalf("history length %d vs serial %d", len(streamed.History), len(serial.History))
	}
	return sched, got
}

func upd(f model.Function) Change { return Change{Update: &f} }

func TestStreamSchedulerParityFeasibleStream(t *testing.T) {
	// Independent feasible additions: one optimistic window, everything
	// speculated, zero replays, decisions identical to serial.
	changes := []Change{
		upd(fn("t0", model.QM, 100000, 2000, 64)),
		upd(fn("t1", model.QM, 120000, 1500, 64)),
		upd(fn("t2", model.QM, 140000, 2500, 64)),
		upd(fn("t3", model.QM, 160000, 1000, 64)),
	}
	sched, _ := streamParity(t, testPlatform(), []model.Function{fn("base", model.QM, 50000, 5000, 256)}, changes)
	st := sched.Stats()
	if st.Replays != 0 || st.Speculated != len(changes) {
		t.Fatalf("stats = %+v, want %d speculated, 0 replays", st, len(changes))
	}
	if st.Prefetched == 0 {
		t.Fatalf("stats = %+v, want prefetched analyses", st)
	}
}

func TestStreamSchedulerParityWithValidationRejects(t *testing.T) {
	// Broken contracts interleaved with feasible changes are rejected
	// inside the optimistic pass without tainting the window.
	changes := []Change{
		upd(fn("t0", model.QM, 100000, 2000, 64)),
		upd(fn("bad", model.QM, 1000, 5000, 64)), // WCET > deadline
		upd(fn("t1", model.QM, 120000, 1500, 64)),
	}
	sched, got := streamParity(t, testPlatform(), nil, changes)
	if got[1].Accepted || got[1].RejectedAt != StageValidate {
		t.Fatalf("broken contract decided %v@%q", got[1].Accepted, got[1].RejectedAt)
	}
	if st := sched.Stats(); st.Replays != 0 {
		t.Fatalf("validation reject caused a replay: %+v", st)
	}
}

func TestStreamSchedulerReplayOnTimingReject(t *testing.T) {
	// An optimistically accepted change that fails its deferred
	// busy-window verdict taints the window: the scheduler must roll back
	// and replay serially, ending with decisions identical to serial —
	// including the changes after the offender in the same window.
	p := &model.Platform{
		Processors: []model.Processor{
			{Name: "only", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 8192, MaxSafety: model.ASILD},
		},
	}
	baseline := []model.Function{fn("a", model.ASILD, 10000, 5200, 1)}
	changes := []Change{
		upd(fn("c", model.ASILD, 14000, 5200, 1)), // passes contracts, misses deadline next to a
		upd(fn("t", model.QM, 200000, 100, 1)),    // feasible, evaluated after the offender
	}
	sched, got := streamParity(t, p, baseline, changes)
	if got[0].Accepted || got[0].RejectedAt != StageTiming {
		t.Fatalf("offender decided %v@%q, want timing rejection", got[0].Accepted, got[0].RejectedAt)
	}
	if !got[1].Accepted {
		t.Fatalf("feasible follow-up rejected: %v", got[1].Findings)
	}
	if st := sched.Stats(); st.Replays != 1 {
		t.Fatalf("stats = %+v, want exactly one replay", st)
	}
}

func TestStreamSchedulerReplayOnSafetyReject(t *testing.T) {
	// A fail-operational function that can only be deployed once passes
	// mapping but fails the deferred safety verdict: the window must be
	// replayed and end in a safety-stage rejection, exactly like serial.
	failop := fn("failop", model.ASILD, 40000, 1500, 128)
	failop.Contract.FailOperational = true // Replicas stays 1: redundancy finding
	changes := []Change{
		upd(fn("t0", model.QM, 100000, 2000, 64)),
		upd(failop),
		upd(fn("t1", model.QM, 120000, 1500, 64)),
	}
	sched, got := streamParity(t, testPlatform(), nil, changes)
	if got[1].Accepted || got[1].RejectedAt != StageSafety {
		t.Fatalf("failop decided %v@%q, want safety rejection", got[1].Accepted, got[1].RejectedAt)
	}
	if st := sched.Stats(); st.Replays != 1 {
		t.Fatalf("stats = %+v, want exactly one replay", st)
	}
}

func TestStreamSchedulerInlineSecurityRejectWithoutReplay(t *testing.T) {
	// A cross-domain session without an AllowedPeers grant is rejected by
	// the diff-scoped security check inline during the optimistic pass:
	// the verdict is footprint-sized, so it is not deferred, nothing is
	// optimistically committed for it, and the window needs no replay —
	// unlike the pre-scoping engine, where the deferred full check
	// tainted the whole window.
	srv := fn("acc", model.ASILC, 10000, 1000, 64)
	srv.Provides = []string{"accel_cmd"}
	srv.Contract.Domain = "drive"
	cli := fn("telematics", model.QM, 50000, 1000, 64)
	cli.Requires = []string{"accel_cmd"}
	cli.Contract.Domain = "connectivity" // cross-domain, no permission
	changes := []Change{
		upd(cli),
		upd(fn("t0", model.QM, 100000, 2000, 64)),
	}
	sched, got := streamParity(t, testPlatform(), []model.Function{srv}, changes)
	if got[0].Accepted || got[0].RejectedAt != StageSecurity {
		t.Fatalf("cross-domain client decided %v@%q, want security rejection", got[0].Accepted, got[0].RejectedAt)
	}
	if got[0].SecurityChecks == 0 {
		t.Fatalf("security rejection recorded no SecurityChecks telemetry")
	}
	if st := sched.Stats(); st.Replays != 0 {
		t.Fatalf("stats = %+v, want zero replays (scoped security decides inline)", st)
	}
}

func TestStreamSchedulerReplayKeepsDiscardedPassesOnTheBooks(t *testing.T) {
	// The optimistic passes a replay throws away are real pipeline work;
	// the stats must not understate them.
	p := &model.Platform{
		Processors: []model.Processor{
			{Name: "only", Policy: model.SPP, SpeedFactor: 1.0, RAMKiB: 8192, MaxSafety: model.ASILD},
		},
	}
	baseline := []model.Function{fn("a", model.ASILD, 10000, 5200, 1)}
	changes := []Change{
		upd(fn("c", model.ASILD, 14000, 5200, 1)), // deferred timing verdict fails
		upd(fn("t", model.QM, 200000, 100, 1)),
	}
	sched, _ := streamParity(t, p, baseline, changes)
	if st := sched.Stats(); st.DiscardedPasses < len(changes) {
		t.Fatalf("stats = %+v, want >= %d discarded passes accounted", st, len(changes))
	}
}

func TestStreamSchedulerSerializesConflictsAndRemovals(t *testing.T) {
	// Two updates of the same function must not share a window (the
	// second depends on the first's verdict), and a removal is global:
	// it conflicts with everything and runs in its own window.
	changes := []Change{
		upd(fn("svc", model.QM, 100000, 2000, 64)),
		upd(fn("svc", model.QM, 100000, 2500, 64)), // same name: conflict
		upd(fn("t0", model.QM, 120000, 1500, 64)),
		{Remove: "svc"}, // global footprint
		upd(fn("t1", model.QM, 140000, 1000, 64)),
	}
	sched, got := streamParity(t, testPlatform(), nil, changes)
	for i, rep := range got {
		if !rep.Accepted {
			t.Fatalf("change %d rejected: %v (%s)", i, rep.Findings, rep.RejectedAt)
		}
	}
	st := sched.Stats()
	if st.Conflicts == 0 {
		t.Fatalf("stats = %+v, want conflict barriers", st)
	}
	if st.Windows < 3 {
		t.Fatalf("stats = %+v, want the stream split across >= 3 windows", st)
	}
}

func TestStreamSchedulerServiceFootprintConflict(t *testing.T) {
	// A provider and a requirer of the same service must not share a
	// window: admitting the requirer depends on the provider's verdict.
	prov := fn("prov", model.QM, 100000, 2000, 64)
	prov.Provides = []string{"svc"}
	cons := fn("cons", model.QM, 100000, 2000, 64)
	cons.Requires = []string{"svc"}
	changes := []Change{upd(prov), upd(cons)}
	sched, got := streamParity(t, testPlatform(), nil, changes)
	for i, rep := range got {
		if !rep.Accepted {
			t.Fatalf("change %d rejected: %v (%s)", i, rep.Findings, rep.RejectedAt)
		}
	}
	if st := sched.Stats(); st.Conflicts != 1 || st.Windows != 2 {
		t.Fatalf("stats = %+v, want the service conflict to split the stream into 2 windows", st)
	}
}

func TestStreamSchedulerLongMixedStreamParity(t *testing.T) {
	// A longer mixed stream (additions, updates, a removal, broken
	// contracts, an unschedulable giant) across several windows.
	var changes []Change
	for i := 0; i < 24; i++ {
		switch {
		case i == 7:
			changes = append(changes, upd(fn("bad", model.QM, 1000, 9000, 64)))
		case i == 13:
			changes = append(changes, Change{Remove: "w3"})
		case i%6 == 5: // update an earlier function
			changes = append(changes, upd(fn(fmt.Sprintf("w%d", i-3), model.QM, 100000, 2100, 64)))
		default:
			changes = append(changes, upd(fn(fmt.Sprintf("w%d", i), model.QM, 100000, 2000, 64)))
		}
	}
	sched, _ := streamParity(t, testPlatform(), nil, changes, WithStreamWindow(6))
	if st := sched.Stats(); st.Windows < 4 {
		t.Fatalf("stats = %+v, want multiple windows", st)
	}
}
