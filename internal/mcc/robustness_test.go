package mcc

import (
	"context"
	"fmt"
	"reflect"
	"slices"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/mcc/pipeline"
	"repro/internal/model"
)

// Robustness tier: drive the controller through the injected-fault
// matrix (errors, panics, stalls, cache corruption, journal undo
// failures) and require the hard guarantees of the degradation ladder:
// the process never crashes or hangs, every proposal resolves within its
// deadline, and every decision either matches the clean from-scratch
// oracle or is explicitly marked Degraded on its Report. Run under -race
// in CI.

// robustBaseline is a small deployed workload shared by the fault tests.
func robustBaseline() []model.Function {
	return []model.Function{
		fn("brake", model.ASILD, 5000, 500, 128),
		fn("acc", model.ASILC, 10000, 1500, 256),
		fn("infotainment", model.QM, 50000, 10000, 1024),
	}
}

// robustMCC deploys the baseline on a fresh controller with opts.
func robustMCC(t *testing.T, opts ...Option) *MCC {
	t.Helper()
	m, err := New(testPlatform(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range robustBaseline() {
		if rep := m.ProposeUpdate(f); !rep.Accepted {
			t.Fatalf("baseline %s rejected at %s: %v", f.Name, rep.RejectedAt, rep.Findings)
		}
	}
	return m
}

// oracleDecide replays changes serially on a clean from-scratch
// controller (no incremental caches, no injection, one worker) — the
// reference every degraded decision must still agree with.
func oracleDecide(t *testing.T, changes []Change) []*Report {
	t.Helper()
	m := robustMCC(t, WithoutIncremental(), WithTimingWorkers(1))
	reports := make([]*Report, 0, len(changes))
	for _, c := range changes {
		reports = append(reports, m.propose(c))
	}
	return reports
}

func assertDecisionParity(t *testing.T, changes []Change, got, want []*Report) {
	t.Helper()
	for i := range want {
		if got[i].Accepted != want[i].Accepted || got[i].RejectedAt != want[i].RejectedAt {
			t.Fatalf("change %d (%s): faulted run decided %v@%q, oracle %v@%q",
				i, changes[i], got[i].Accepted, got[i].RejectedAt, want[i].Accepted, want[i].RejectedAt)
		}
	}
}

func TestWithTimingWorkersClampsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		m, err := New(testPlatform(), WithTimingWorkers(n))
		if err != nil {
			t.Fatal(err)
		}
		if m.workers != 1 {
			t.Fatalf("WithTimingWorkers(%d): workers = %d, want clamp to 1", n, m.workers)
		}
	}
	m, err := New(testPlatform(), WithTimingWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if m.workers != 3 {
		t.Fatalf("WithTimingWorkers(3): workers = %d", m.workers)
	}
}

func TestStreamOptionsClampNonPositive(t *testing.T) {
	m, err := New(testPlatform())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStreamScheduler(m, WithStreamWorkers(0), WithStreamWindow(-2))
	if s.workers != 1 || s.window != 1 {
		t.Fatalf("clamped scheduler = %d workers, window %d, want 1/1", s.workers, s.window)
	}
	s = NewStreamScheduler(m, WithStreamWorkers(4), WithStreamWindow(8))
	if s.workers != 4 || s.window != 8 {
		t.Fatalf("scheduler = %d workers, window %d, want 4/8", s.workers, s.window)
	}
}

// A stalled timing stage must never hang a proposal: the per-proposal
// deadline converts the stall into a deterministic degraded rejection,
// and the controller stays fully usable afterwards.
func TestProposalDeadlineBoundsStalledStage(t *testing.T) {
	inj := faultinject.New(1, faultinject.Rule{
		Stage: "stage.timing", Mode: faultinject.ModeStall,
		StallUS: int64(10 * time.Second / time.Microsecond), Count: 1,
	})
	m, err := New(testPlatform(), WithFaultInjector(inj), WithProposalDeadline(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	rep := m.ProposeUpdate(fn("telem", model.QM, 200000, 2000, 64))
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("stalled proposal took %v, deadline did not bound it", elapsed)
	}
	if rep.Accepted {
		t.Fatal("stalled proposal accepted")
	}
	if !rep.Degraded || !slices.Contains(rep.DegradedReasons, "deadline") {
		t.Fatalf("stalled proposal not marked degraded-by-deadline: %+v / %v", rep.Degraded, rep.DegradedReasons)
	}
	if inj.TotalFired() == 0 {
		t.Fatal("stall never fired, test exercised nothing")
	}

	// The fault was one-shot (Count:1): the same change must now go
	// through cleanly, undegraded.
	rep = m.ProposeUpdate(fn("telem", model.QM, 200000, 2000, 64))
	if !rep.Accepted || rep.Degraded {
		t.Fatalf("post-stall proposal = accepted %v, degraded %v, want clean accept (findings %v)",
			rep.Accepted, rep.Degraded, rep.Findings)
	}
}

// A panicking pooled analysis goroutine is recovered, the proposal is
// re-decided on the pinned from-scratch path, and the decision matches
// the clean serial oracle.
func TestWorkerPanicRecoveredDecisionMatchesOracle(t *testing.T) {
	changes := []Change{
		upd(fn("t0", model.QM, 100000, 2000, 64)),
		upd(fn("t1", model.QM, 120000, 1500, 64)),
		upd(fn("heavy", model.ASILD, 10000, 4500, 64)),
	}
	want := oracleDecide(t, changes)

	inj := faultinject.New(7, faultinject.Rule{
		Stage: "timing.worker", Mode: faultinject.ModePanic, Every: 2, Count: 20,
	})
	m := robustMCC(t, WithFaultInjector(inj))
	got := make([]*Report, 0, len(changes))
	for _, c := range changes {
		got = append(got, m.propose(c))
	}

	assertDecisionParity(t, changes, got, want)
	// Panics may land on any proposal (the baseline deploys under the
	// same injector — its degraded-but-correct accepts are part of the
	// corpus), so count recovery over the whole history.
	panics, degraded := 0, 0
	for _, rep := range m.History {
		panics += rep.PanicsRecovered
		if rep.Degraded {
			degraded++
			if !slices.Contains(rep.DegradedReasons, "transient-fault") &&
				!slices.Contains(rep.DegradedReasons, "quarantined") {
				t.Fatalf("degraded report without ladder reason: %v", rep.DegradedReasons)
			}
		}
	}
	if panics == 0 || degraded == 0 {
		t.Fatalf("panics recovered = %d, degraded = %d, want both > 0 (fired %v)",
			panics, degraded, inj.Fired())
	}
}

// Persistent injected analyzer errors exhaust the bounded retry, the
// ladder re-decides from scratch, and once the fault burst ends the
// controller returns to clean, undegraded decisions.
func TestTransientAnalyzerErrorsRetryThenDegrade(t *testing.T) {
	changes := []Change{
		upd(fn("t0", model.QM, 100000, 2000, 64)),
		upd(fn("t1", model.QM, 120000, 1500, 64)),
	}
	want := oracleDecide(t, changes)

	inj := faultinject.New(3, faultinject.Rule{
		Stage: "cpa.analyze", Mode: faultinject.ModeError, Count: 7,
	})
	m := robustMCC(t, WithFaultInjector(inj))
	got := make([]*Report, 0, len(changes))
	for _, c := range changes {
		got = append(got, m.propose(c))
	}
	assertDecisionParity(t, changes, got, want)

	// The burst may be spent on any proposal (baseline included); count
	// the ladder's work over the whole history.
	retried, degraded := 0, 0
	for _, rep := range m.History {
		retried += rep.RetriedAnalyses
		if rep.Degraded {
			degraded++
		}
	}
	if inj.TotalFired() == 0 {
		t.Fatal("analyzer fault never fired")
	}
	if retried == 0 {
		t.Fatalf("no retries recorded despite %d fires", inj.TotalFired())
	}
	if degraded == 0 {
		t.Fatal("persistent analyzer faults produced no degraded proposal")
	}

	// Fault burst over (Count exhausted): the next proposal must be a
	// clean, undegraded decision matching the oracle.
	rep := m.ProposeUpdate(fn("t2", model.QM, 140000, 2500, 64))
	if !rep.Accepted || rep.Degraded {
		t.Fatalf("post-burst proposal = accepted %v, degraded %v, want clean accept (findings %v)",
			rep.Accepted, rep.Degraded, rep.Findings)
	}
}

// A corrupted memo entry (cache digest mismatch) is detected by the
// result-table sanity check, the analyzer cache is rebuilt, and the
// decision is re-derived from scratch — never trusted from the damaged
// entry.
func TestCacheCorruptionDetectedAndQuarantined(t *testing.T) {
	// On the tight stress platform, "safe" is the only ASIL-D host: base
	// and heavy1 fit, and heavy2's release jitter packs several of its
	// activations into one busy window next to them — utilization stays
	// under 100% (mapping passes) but the window blows its deadline, so
	// heavy2 rejects at timing. Re-proposing it replays the same task
	// sets — cache hits, which the injector corrupts.
	base := fn("base", model.ASILD, 10000, 3000, 128)
	heavy1 := fn("heavy1", model.ASILD, 10000, 4000, 64)
	heavy2 := fn("heavy2", model.ASILD, 20000, 5000, 64)
	heavy2.Contract.RealTime.JitterUS = 60000
	heavy2.Contract.RealTime.DeadlineUS = 30000

	mk := func(opts ...Option) *MCC {
		m, err := New(stressPlatform(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []model.Function{base, heavy1} {
			if rep := m.ProposeUpdate(f); !rep.Accepted {
				t.Fatalf("baseline %s rejected at %s: %v", f.Name, rep.RejectedAt, rep.Findings)
			}
		}
		return m
	}

	// Clean reference decision.
	oracle := mk(WithoutIncremental(), WithTimingWorkers(1))
	want := oracle.ProposeUpdate(heavy2)
	if want.Accepted || want.RejectedAt != StageTiming {
		t.Fatalf("heavy2 decided %v@%q on the oracle, corpus does not exercise timing rejection",
			want.Accepted, want.RejectedAt)
	}

	inj := faultinject.New(5, faultinject.Rule{
		Stage: "cpa.cache", Mode: faultinject.ModeCorrupt, Count: 4,
	})
	m := mk(WithFaultInjector(inj))

	// Two rejected attempts: the first warms the memo (and may already
	// hit it on its cold retry), the second definitely replays cached
	// task sets. Both must decide exactly as the oracle; any attempt the
	// corruption touched must be marked degraded, never silently wrong.
	degraded := 0
	for attempt := 0; attempt < 2; attempt++ {
		rep := m.ProposeUpdate(heavy2)
		if rep.Accepted != want.Accepted || rep.RejectedAt != want.RejectedAt {
			t.Fatalf("attempt %d decided %v@%q, oracle %v@%q",
				attempt, rep.Accepted, rep.RejectedAt, want.Accepted, want.RejectedAt)
		}
		if rep.Degraded {
			degraded++
		}
	}
	if inj.TotalFired() == 0 {
		t.Fatal("corruption never fired (no cache hits?)")
	}
	if degraded == 0 {
		t.Fatal("corrupted attempts never marked degraded")
	}

	// The ladder quarantined the suspect state; the next accepted commit
	// rebuilds the caches and later proposals are clean again.
	rep := m.ProposeUpdate(fn("t0", model.QM, 100000, 2000, 64))
	if !rep.Accepted {
		t.Fatalf("post-corruption proposal rejected at %s: %v", rep.RejectedAt, rep.Findings)
	}
	rep = m.ProposeUpdate(fn("t1", model.QM, 120000, 1500, 64))
	if !rep.Accepted || rep.Degraded {
		t.Fatalf("controller did not recover: accepted %v, degraded %v", rep.Accepted, rep.Degraded)
	}
}

// Faults on the stream prefetch pool (errors and panics) taint their
// window: the scheduler replays it serially and every decision still
// matches the clean serial oracle, with the recovered panics surfaced in
// the stream stats.
func TestStreamPrefetchFaultsTaintWindowAndReplay(t *testing.T) {
	changes := []Change{
		upd(fn("t0", model.QM, 100000, 2000, 64)),
		upd(fn("t1", model.QM, 120000, 1500, 64)),
		upd(fn("t2", model.QM, 140000, 2500, 64)),
		upd(fn("heavy3", model.ASILD, 10000, 4000, 64)),
		upd(fn("t4", model.QM, 160000, 1800, 64)),
		upd(fn("t5", model.QM, 180000, 1200, 64)),
	}
	want := oracleDecide(t, changes)

	for _, mode := range []faultinject.Mode{faultinject.ModeError, faultinject.ModePanic} {
		t.Run(string(mode), func(t *testing.T) {
			inj := faultinject.New(11, faultinject.Rule{
				Stage: "stream.prefetch", Mode: mode, Every: 2, Count: 4,
			})
			m := robustMCC(t, WithFaultInjector(inj))
			sched := NewStreamScheduler(m, WithStreamWindow(8))
			got := sched.Run(changes)

			assertDecisionParity(t, changes, got, want)
			st := sched.Stats()
			if inj.TotalFired() == 0 {
				t.Fatal("prefetch fault never fired")
			}
			if st.Replays == 0 {
				t.Fatalf("tainted windows did not replay: %+v", st)
			}
			if mode == faultinject.ModePanic && st.PanicsRecovered == 0 {
				t.Fatalf("pool panics not surfaced in stream stats: %+v", st)
			}
		})
	}
}

// A failed keyed undo during window rollback purges the incremental
// state and quarantines the controller: decisions keep matching the
// serial oracle (pinned from-scratch path), the affected proposals are
// marked degraded, and the first accepted commit rebuilds the caches
// bit-identically to a fresh serial controller.
func TestJournalUndoFaultPurgesAndRecovers(t *testing.T) {
	changes := []Change{
		// One window of same-platform QM additions: their optimistic
		// commits overlap on the deployed cache keys of the processors
		// they share, so the rollback exercises overlapping keyed undo.
		upd(fn("t0", model.QM, 100000, 2000, 64)),
		upd(fn("t1", model.QM, 120000, 1500, 64)),
		upd(fn("t2", model.QM, 140000, 2500, 64)),
		upd(fn("t3", model.QM, 160000, 1800, 64)),
	}
	want := oracleDecide(t, changes)

	inj := faultinject.New(13,
		// Taint the first window so it rolls back...
		faultinject.Rule{Stage: "stream.prefetch", Mode: faultinject.ModeError, Count: 1},
		// ...and fail the keyed undo of that rollback.
		faultinject.Rule{Stage: "journal.undo", Mode: faultinject.ModeError, Count: 1},
	)
	m := robustMCC(t, WithFaultInjector(inj))
	sched := NewStreamScheduler(m, WithStreamWindow(8))
	got := sched.Run(changes)

	assertDecisionParity(t, changes, got, want)
	if fired := inj.Fired(); fired["journal.undo|error"] == 0 {
		t.Fatalf("journal undo fault never fired: %v", fired)
	}
	degraded := 0
	for _, rep := range got {
		if rep.Degraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("quarantined replay produced no degraded proposal")
	}
	if m.quarantined {
		t.Fatal("quarantine not lifted by an accepted from-scratch commit")
	}

	// After recovery the rebuilt caches must be bit-identical to a fresh
	// full-incremental controller that proposed the same stream serially
	// and then decided one more clean change.
	post := upd(fn("t9", model.QM, 180000, 1200, 64))
	rep := m.propose(post)
	if !rep.Accepted || rep.Degraded {
		t.Fatalf("post-recovery proposal = accepted %v, degraded %v", rep.Accepted, rep.Degraded)
	}
	fresh := robustMCC(t)
	for _, c := range append(slices.Clone(changes), post) {
		fresh.propose(c)
	}
	sf, ff := cacheFingerprint(m), cacheFingerprint(fresh)
	for key := range ff {
		if !reflect.DeepEqual(sf[key], ff[key]) {
			t.Errorf("cache %q diverges after quarantine recovery:\nfaulted %+v\nserial  %+v",
				key, sf[key], ff[key])
		}
	}
}

// Journal undo correctness under overlapping keyed writes: a window
// whose changes all land on the same processors commits overlapping
// cache keys optimistically; a mid-window deferred timing failure forces
// the rollback + serial replay, after which every cache must equal a
// fresh serial controller's. (The injected-fault variant of the same
// invariant is TestJournalUndoFaultPurgesAndRecovers.)
func TestJournalRollbackOverlappingKeyedWrites(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			changes := []Change{
				upd(fn("a0", model.QM, 100000, 2000+500*seed, 64)),
				upd(fn("a1", model.QM, 120000, 1500, 64)),
				// Near-capacity ASIL-D: its deferred busy-window verdict
				// fails next to the baseline load, tainting the window.
				upd(fn("heavy", model.ASILD, 10000, 4200+100*seed, 64)),
				upd(fn("a2", model.QM, 140000, 2500, 64)),
			}
			streamed := robustMCC(t)
			sched := NewStreamScheduler(streamed, WithStreamWindow(8))
			got := sched.Run(changes)

			fresh := robustMCC(t)
			want := make([]*Report, 0, len(changes))
			for _, c := range changes {
				want = append(want, fresh.propose(c))
			}
			assertDecisionParity(t, changes, got, want)
			for i := range want {
				if !reflect.DeepEqual(got[i].Findings, want[i].Findings) {
					t.Fatalf("change %d findings diverge:\nstream %v\nserial %v",
						i, got[i].Findings, want[i].Findings)
				}
			}
			sf, ff := cacheFingerprint(streamed), cacheFingerprint(fresh)
			for key := range ff {
				if !reflect.DeepEqual(sf[key], ff[key]) {
					t.Errorf("cache %q diverges after rollback:\nstream %+v\nserial %+v",
						key, sf[key], ff[key])
				}
			}
		})
	}
}

// Deadline behavior composes with the batch bisection: an expired
// context resolves every remaining change as a deterministic rejection
// instead of hanging the batch.
func TestBatchDeadlineResolvesAllChanges(t *testing.T) {
	inj := faultinject.New(17, faultinject.Rule{
		Stage: "stage.*", Mode: faultinject.ModeStall,
		StallUS: int64(time.Second / time.Microsecond),
	})
	m, err := New(testPlatform(), WithFaultInjector(inj), WithProposalDeadline(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	b := NewBatch()
	for i := 0; i < 4; i++ {
		b.Update(fn(fmt.Sprintf("b%d", i), model.QM, 100000+int64(i)*20000, 2000, 64))
	}
	start := time.Now()
	br := m.ProposeBatch(b)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("batch under stalls took %v", elapsed)
	}
	if got := len(br.Outcomes); got != b.Len() {
		t.Fatalf("batch resolved %d/%d changes", got, b.Len())
	}
}

// assertExpiredShape checks one short-circuited report against the shape
// the pipeline's own pre-stage deadline check produces: rejected before
// the first stage, one pass, degraded with the deterministic finding.
func assertExpiredShape(t *testing.T, rep *Report) {
	t.Helper()
	if rep.Accepted || rep.RejectedAt != StageValidate || rep.Passes != 1 {
		t.Fatalf("short-circuited report = accepted %v @%q, %d passes; want rejection at %q with 1 pass",
			rep.Accepted, rep.RejectedAt, rep.Passes, StageValidate)
	}
	if !rep.Degraded || !slices.Contains(rep.DegradedReasons, "deadline") {
		t.Fatalf("short-circuited report not marked deadline-degraded: %v %v",
			rep.Degraded, rep.DegradedReasons)
	}
	if len(rep.Findings) != 1 || !strings.HasPrefix(rep.Findings[0], "deadline: proposal deadline expired before stage validate") {
		t.Fatalf("short-circuited findings = %v", rep.Findings)
	}
}

// A context cancelled mid-replay must stop the serial replay promptly:
// at most the in-flight proposal runs a pipeline after cancellation, and
// every remaining change of the window resolves as a deterministic
// deadline rejection without any pipeline setup.
func TestStreamCancellationStopsReplayPromptly(t *testing.T) {
	changes := []Change{
		upd(fn("t0", model.QM, 100000, 2000, 64)),
		upd(fn("t1", model.QM, 120000, 1500, 64)),
		upd(fn("t2", model.QM, 140000, 2500, 64)),
		upd(fn("t3", model.QM, 160000, 1800, 64)),
		upd(fn("t4", model.QM, 180000, 1200, 64)),
		upd(fn("t5", model.QM, 200000, 1000, 64)),
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// A one-shot prefetch fault taints the only window, forcing the serial
	// replay; the witness stage cancels the context on the first replayed
	// proposal (Replays is incremented before the replay loop starts) and
	// counts how many pipelines still ran after the replay began.
	var sched *StreamScheduler
	runsAfterReplay := 0
	witness := pipeline.Func{
		StageName: "cancel-witness",
		RunFunc: func(*pipeline.Context) error {
			if sched != nil && sched.Stats().Replays > 0 {
				runsAfterReplay++
				cancel()
			}
			return nil
		},
	}
	inj := faultinject.New(23, faultinject.Rule{
		Stage: "stream.prefetch", Mode: faultinject.ModeError, Count: 1,
	})
	m := robustMCC(t, WithFaultInjector(inj), WithStage(witness))
	sched = NewStreamScheduler(m, WithStreamWindow(8))

	got := sched.RunContext(ctx, changes)
	if len(got) != len(changes) {
		t.Fatalf("stream resolved %d/%d changes", len(got), len(changes))
	}
	if st := sched.Stats(); st.Replays != 1 {
		t.Fatalf("prefetch fault did not force exactly one replay: %+v", st)
	}
	// Only the proposal that was in flight when the context died may have
	// run a pipeline; everything after it short-circuits.
	if runsAfterReplay != 1 {
		t.Fatalf("%d pipelines ran after cancellation mid-replay, want 1", runsAfterReplay)
	}
	if got[0].Accepted || !got[0].Degraded || !slices.Contains(got[0].DegradedReasons, "deadline") {
		t.Fatalf("in-flight replayed proposal = accepted %v, degraded %v %v; want deadline rejection",
			got[0].Accepted, got[0].Degraded, got[0].DegradedReasons)
	}
	for i, rep := range got[1:] {
		if rep == got[0] {
			t.Fatalf("change %d shares the in-flight report", i+1)
		}
		assertExpiredShape(t, rep)
	}

	// The rolled-back controller must stay fully usable under a live
	// context: the same feasible change is accepted cleanly.
	rep := m.propose(changes[0])
	if !rep.Accepted || rep.Degraded {
		t.Fatalf("post-cancellation proposal = accepted %v, degraded %v", rep.Accepted, rep.Degraded)
	}
}

// A context that is already dead when the batch bisection recurses must
// resolve the whole remaining group without cloning the deployed
// architecture: one shared deadline report, one accounted evaluation.
func TestBatchCancelledContextShortCircuitsBisection(t *testing.T) {
	m := robustMCC(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	b := NewBatch()
	for i := 0; i < 4; i++ {
		b.Update(fn(fmt.Sprintf("c%d", i), model.QM, 100000+int64(i)*20000, 2000, 64))
	}
	br := m.ProposeBatchContext(ctx, b)
	if len(br.Outcomes) != b.Len() || br.Rejected != b.Len() || br.Accepted != 0 {
		t.Fatalf("cancelled batch = %d outcomes, %d accepted, %d rejected; want all %d rejected",
			len(br.Outcomes), br.Accepted, br.Rejected, b.Len())
	}
	if br.Evaluations != 1 {
		t.Fatalf("cancelled batch spent %d evaluations, want 1 shared short-circuit", br.Evaluations)
	}
	shared := br.Outcomes[0].Report
	assertExpiredShape(t, shared)
	for i, o := range br.Outcomes {
		if o.Accepted || o.Report != shared {
			t.Fatalf("outcome %d = accepted %v, report shared %v; want one shared rejection report",
				i, o.Accepted, o.Report == shared)
		}
	}
}
