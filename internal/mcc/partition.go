package mcc

import "hash/fnv"

// This file derives the platform partition the sharded stream scheduler
// forms its per-shard window sequences over, and the function-level
// routing index that assigns each change to a shard.
//
// A partition is a connected component of processors over the CAN
// segments that join them. A network attached to every processor is a
// backbone: it connects everything by construction and carries the
// cross-partition traffic, so it contributes no partition edges —
// otherwise every fleet platform (segments plus a backbone) would
// collapse into one shard. A platform whose only networks are backbones
// has no isolated regions at all and stays a single partition (the
// scheduler then falls back to the single window sequence).
//
// The processor partition is static — the platform is immutable for the
// MCC's lifetime — and computed once, lazily. The function routing layer
// on top of it follows the committed topology: entries are resolved from
// the committed synthesis cache's instance placements, refreshed for the
// diff-touched functions on every keyed commit, and invalidated
// wholesale by from-scratch commits, cache purges, and window rollbacks
// (rebuilt lazily from the restored committed state). Routing is a
// scheduling heuristic only — it decides which shard's window a change
// groups into, never the decision itself, which a single mutator makes
// in stream order regardless.

// partGlobal routes a change that cannot be pinned to one partition
// (replicas spanning partitions, a processor outside every partition):
// the sharded scheduler drains every shard and decides it through the
// serialized global window.
const partGlobal = -1

// platformParts is the static processor partition of the platform.
type platformParts struct {
	// count is the number of partitions. A count of one (or zero, for an
	// empty platform) means the platform has no disjoint segments and
	// sharding degenerates to the single window sequence.
	count int
	// procPart maps each processor name to its partition id in [0,count).
	procPart map[string]int
}

// partitions returns the platform's processor partition, computing it on
// first use (the platform is immutable, so the result is cached for the
// MCC's lifetime).
func (m *MCC) partitions() *platformParts {
	if m.parts != nil {
		return m.parts
	}
	procs := m.platform.Processors
	// A platform with no partial-coverage segment at all — only
	// backbones, or no networks — has no isolated regions to shard over:
	// everything shares every communication resource (or nothing does),
	// and per-processor singletons would be a dishonest partition. It
	// stays a single partition and the scheduler falls back to the
	// single window sequence.
	hasSegment := false
	for _, net := range m.platform.Networks {
		if len(net.Attached) < len(procs) {
			hasSegment = true
			break
		}
	}
	if !hasSegment {
		p := &platformParts{procPart: make(map[string]int, len(procs))}
		if len(procs) > 0 {
			p.count = 1
			for i := range procs {
				p.procPart[procs[i].Name] = 0
			}
		}
		m.parts = p
		return p
	}
	// Union-find over processor positions.
	parent := make([]int, len(procs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, net := range m.platform.Networks {
		// A full-coverage network is a backbone: it joins everything and
		// would collapse the partition, so it contributes no edges.
		if len(net.Attached) >= len(procs) {
			continue
		}
		first := -1
		for _, pn := range net.Attached {
			i, ok := m.procIdx[pn]
			if !ok {
				continue
			}
			if first < 0 {
				first = i
				continue
			}
			union(first, i)
		}
	}
	// Dense partition ids in platform processor order, so the id
	// assignment is deterministic across runs.
	p := &platformParts{procPart: make(map[string]int, len(procs))}
	rootID := make(map[int]int)
	for i := range procs {
		r := find(i)
		id, ok := rootID[r]
		if !ok {
			id = p.count
			rootID[r] = id
			p.count++
		}
		p.procPart[procs[i].Name] = id
	}
	m.parts = p
	return p
}

// routeChange resolves the shard a non-global change groups into. A
// deployed function routes to the partition hosting its committed
// replicas — replicas spanning partitions (fail-operational spreads) are
// genuinely cross-partition and route to partGlobal, draining every
// shard. A function with no committed instances (a fresh addition, whose
// placement is not yet decided) routes by a deterministic name hash:
// where it groups only affects window formation, never its decision.
// Resolved entries are cached in m.fnParts (see partition invalidation
// notes above).
func (m *MCC) routeChange(c Change) int {
	name := c.Update.Name
	if sh, ok := m.fnParts[name]; ok {
		return sh
	}
	sh := m.computeRoute(name)
	if m.fnParts == nil {
		m.fnParts = make(map[string]int)
	}
	m.fnParts[name] = sh
	return sh
}

func (m *MCC) computeRoute(name string) int {
	parts := m.partitions()
	if m.deployedSynth != nil {
		if ins := m.deployedSynth.instancesOf[name]; len(ins) > 0 {
			sh, ok := parts.procPart[ins[0].Processor]
			if !ok {
				return partGlobal
			}
			for _, in := range ins[1:] {
				if other, ok := parts.procPart[in.Processor]; !ok || other != sh {
					return partGlobal
				}
			}
			return sh
		}
	}
	h := fnv.New64a()
	h.Write([]byte(name)) //nolint:errcheck // hash.Hash never errors
	return int(h.Sum64() % uint64(parts.count))
}

// invalidateRoutes drops the function routing cache wholesale; the next
// lookup rebuilds the queried entries from the (restored or rebuilt)
// committed synthesis cache. Called on from-scratch commits, cache
// purges, and window rollbacks — every path that replaces or rewinds the
// committed placements out from under the per-entry refresh the keyed
// commit performs.
func (m *MCC) invalidateRoutes() {
	m.fnParts = nil
}
