package pipeline

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/model"
)

func fa(fns ...model.Function) *model.FunctionalArchitecture {
	return &model.FunctionalArchitecture{Functions: fns}
}

func pfn(name string, wcetUS int64) model.Function {
	return model.Function{
		Name: name,
		Contract: model.Contract{
			RealTime: model.RealTimeContract{PeriodUS: 10000, WCETUS: wcetUS},
		},
	}
}

func TestPipelineRunsStagesInOrderAndRecordsTraces(t *testing.T) {
	var order []StageName
	mk := func(n StageName) Stage {
		return Func{StageName: n, RunFunc: func(ctx *Context) error {
			order = append(order, n)
			ctx.Note("ran %s", n)
			return nil
		}}
	}
	p := New(mk("a"), mk("b"), mk("c"))
	ctx := &Context{Report: &Report{}}
	p.Run(ctx)
	if !ctx.Report.Accepted {
		t.Fatalf("pipeline rejected: %+v", ctx.Report)
	}
	want := []StageName{"a", "b", "c"}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if len(ctx.Report.Stages) != 3 {
		t.Fatalf("traces = %d, want 3", len(ctx.Report.Stages))
	}
	for i, tr := range ctx.Report.Stages {
		if tr.Stage != want[i] {
			t.Fatalf("trace %d = %s, want %s", i, tr.Stage, want[i])
		}
		if tr.Note != "ran "+string(want[i]) {
			t.Fatalf("trace %d note = %q", i, tr.Note)
		}
		if tr.Wall < 0 {
			t.Fatalf("trace %d wall negative", i)
		}
	}
}

func TestPipelineStopsAtFirstRejection(t *testing.T) {
	var ran []StageName
	ok := func(n StageName) Stage {
		return Func{StageName: n, RunFunc: func(*Context) error { ran = append(ran, n); return nil }}
	}
	fail := Func{StageName: "gate", RunFunc: func(*Context) error {
		ran = append(ran, "gate")
		return &Reject{Findings: []string{"finding one", "finding two"}}
	}}
	p := New(ok("a"), fail, ok("c"))
	ctx := &Context{Report: &Report{}}
	p.Run(ctx)
	rep := ctx.Report
	if rep.Accepted {
		t.Fatal("rejected pipeline reported accepted")
	}
	if rep.RejectedAt != "gate" {
		t.Fatalf("rejected at %s, want gate", rep.RejectedAt)
	}
	if len(ran) != 2 {
		t.Fatalf("stages ran after rejection: %v", ran)
	}
	if len(rep.Findings) != 2 || rep.Findings[0] != "finding one" {
		t.Fatalf("findings = %v", rep.Findings)
	}
	// A trace is still recorded for the failing stage.
	if tr := rep.StageTraceFor("gate"); tr == nil {
		t.Fatal("no trace for rejecting stage")
	}
}

func TestPipelinePlainErrorBecomesSingleFinding(t *testing.T) {
	p := New(Func{StageName: "x", RunFunc: func(*Context) error { return errors.New("boom") }})
	ctx := &Context{Report: &Report{}}
	p.Run(ctx)
	if ctx.Report.RejectedAt != "x" || len(ctx.Report.Findings) != 1 || ctx.Report.Findings[0] != "boom" {
		t.Fatalf("report = %+v", ctx.Report)
	}
}

func TestPipelineInsert(t *testing.T) {
	mk := func(n StageName) Stage { return Func{StageName: n, RunFunc: func(*Context) error { return nil }} }
	p := New(mk("a"), mk("c"))
	p2 := p.Insert("c", mk("b1"), mk("b2"))
	got := p2.StageNames()
	want := []StageName{"a", "b1", "b2", "c"}
	if len(got) != len(want) {
		t.Fatalf("stages = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stages = %v, want %v", got, want)
		}
	}
	// Unknown anchor appends.
	p3 := p.Insert("nope", mk("z"))
	names := p3.StageNames()
	if names[len(names)-1] != "z" {
		t.Fatalf("stages = %v", names)
	}
	// Original untouched.
	if len(p.StageNames()) != 2 {
		t.Fatalf("insert mutated the original pipeline: %v", p.StageNames())
	}
}

func TestContextArtifacts(t *testing.T) {
	ctx := &Context{}
	if _, ok := ctx.Get("missing"); ok {
		t.Fatal("missing artifact found")
	}
	ctx.Put("k", 42)
	v, ok := ctx.Get("k")
	if !ok || v.(int) != 42 {
		t.Fatalf("artifact = %v, %v", v, ok)
	}
}

func TestComputeDiff(t *testing.T) {
	dep := fa(pfn("a", 100), pfn("b", 200), pfn("c", 300))
	dep.Flows = []model.Flow{}

	// Added + changed + removed.
	cand := fa(pfn("a", 100), pfn("b", 999), pfn("d", 400))
	d := ComputeDiff(dep, cand)
	if d.Full() {
		t.Fatal("partial diff reported full")
	}
	if len(d.Added) != 1 || d.Added[0] != "d" {
		t.Fatalf("added = %v", d.Added)
	}
	if len(d.Changed) != 1 || d.Changed[0] != "b" {
		t.Fatalf("changed = %v", d.Changed)
	}
	if len(d.Removed) != 1 || d.Removed[0] != "c" {
		t.Fatalf("removed = %v", d.Removed)
	}
	for _, name := range []string{"b", "c", "d"} {
		if !d.Touched(name) {
			t.Fatalf("%s not touched", name)
		}
	}
	if d.Touched("a") {
		t.Fatal("untouched function reported touched")
	}
	if d.TouchedCount() != 3 {
		t.Fatalf("touched count = %d", d.TouchedCount())
	}

	// Identical candidate: empty diff.
	d2 := ComputeDiff(dep, dep.Clone())
	if !d2.Empty() {
		t.Fatalf("identical clone not empty: %+v", d2)
	}

	// Empty deployed: full diff.
	d3 := ComputeDiff(&model.FunctionalArchitecture{}, cand)
	if !d3.Full() {
		t.Fatal("first deployment not a full diff")
	}
	if FullDiff().Empty() {
		t.Fatal("full diff reported empty")
	}
}

func TestComputeDiffFlows(t *testing.T) {
	src := pfn("src", 100)
	src.Provides = []string{"s"}
	dst := pfn("dst", 100)
	dst.Requires = []string{"s"}
	dep := fa(src, dst)
	dep.Flows = []model.Flow{{From: "src", To: "dst", Service: "s", PeriodUS: 10000}}

	same := dep.Clone()
	if d := ComputeDiff(dep, same); d.FlowsChanged {
		t.Fatal("identical flows reported changed")
	}
	noFlows := dep.Clone()
	noFlows.Flows = nil
	if d := ComputeDiff(dep, noFlows); !d.FlowsChanged {
		t.Fatal("dropped flow not detected")
	}
	extra := dep.Clone()
	extra.Flows = append(extra.Flows, model.Flow{From: "dst", To: "src", Service: "s", PeriodUS: 5000})
	if d := ComputeDiff(dep, extra); !d.FlowsChanged {
		t.Fatal("added flow not detected")
	}
}

func TestDiffNeighborhood(t *testing.T) {
	src := pfn("src", 100)
	src.Provides = []string{"s"}
	dst := pfn("dst", 100)
	dst.Requires = []string{"s"}
	other := pfn("other", 100)
	dep := fa(src, dst, other)
	cand := dep.Clone()
	cand.Functions[0].Contract.RealTime.WCETUS = 123 // change src
	cand.Flows = []model.Flow{{From: "src", To: "dst", Service: "s", PeriodUS: 10000}}
	// Flow set changed too, but the neighborhood must pull in flow peers
	// of touched functions regardless.
	d := ComputeDiff(dep, cand)
	nb := d.Neighborhood(cand)
	if !nb["src"] || !nb["dst"] {
		t.Fatalf("neighborhood = %v", nb)
	}
	if nb["other"] {
		t.Fatal("unrelated function in neighborhood")
	}
}

func TestRejectf(t *testing.T) {
	r := Rejectf("bad thing %d", 7)
	if len(r.Findings) != 1 || r.Findings[0] != "bad thing 7" {
		t.Fatalf("findings = %v", r.Findings)
	}
	if !strings.Contains(r.Error(), "bad thing 7") {
		t.Fatalf("error = %q", r.Error())
	}
}

func TestReportStageWall(t *testing.T) {
	rep := &Report{Stages: []StageTrace{
		{Stage: "a", Wall: 10},
		{Stage: "b", Wall: 20},
		{Stage: "a", Wall: 5},
	}}
	w := rep.StageWall()
	if w["a"] != 15 || w["b"] != 20 {
		t.Fatalf("wall = %v", w)
	}
	if tr := rep.StageTraceFor("a"); tr == nil || tr.Wall != 5 {
		t.Fatalf("last trace for a = %+v", tr)
	}
	if rep.StageTraceFor("zz") != nil {
		t.Fatal("trace for unknown stage")
	}
}

func TestRunCountsPasses(t *testing.T) {
	p := New(Func{StageName: "a", RunFunc: func(*Context) error { return nil }})
	ctx := &Context{Report: &Report{}}
	p.Run(ctx)
	if ctx.Report.Passes != 1 {
		t.Fatalf("passes = %d after one run", ctx.Report.Passes)
	}
	// A retry sharing the report (warm-start fallback) counts both passes.
	ctx2 := &Context{Report: ctx.Report}
	p.Run(ctx2)
	if ctx.Report.Passes != 2 {
		t.Fatalf("passes = %d after retry", ctx.Report.Passes)
	}
}
