package pipeline

import (
	"slices"
	"sort"

	"repro/internal/model"
)

// Diff is the function-level difference between the deployed and the
// candidate functional architecture, computed once per integration attempt
// and shared by every incremental stage: validation re-checks only touched
// functions and their flow neighborhoods, mapping re-places only touched
// functions, synthesis rebuilds only the artifacts of affected processors
// and services.
type Diff struct {
	// Added, Removed, Changed list function names, each sorted. A function
	// counts as changed when any part of it (version, contract, services,
	// replicas) differs from the deployed one.
	Added   []string
	Removed []string
	Changed []string
	// FlowsChanged reports that the candidate's flow set differs from the
	// deployed one.
	FlowsChanged bool
	// full marks a from-scratch diff (nothing deployed yet, or the caller
	// opted out of incremental integration).
	full bool

	touched map[string]bool
}

// ComputeDiff diffs the candidate against the deployed architecture. A nil
// or empty deployed architecture yields a full diff.
func ComputeDiff(deployed, cand *model.FunctionalArchitecture) Diff {
	d := Diff{touched: make(map[string]bool)}
	if deployed == nil || len(deployed.Functions) == 0 {
		d.full = true
	}
	var old map[string]*model.Function
	if deployed != nil {
		old = make(map[string]*model.Function, len(deployed.Functions))
		for i := range deployed.Functions {
			old[deployed.Functions[i].Name] = &deployed.Functions[i]
		}
	}
	seen := make(map[string]bool, len(cand.Functions))
	for i := range cand.Functions {
		f := &cand.Functions[i]
		seen[f.Name] = true
		prev, ok := old[f.Name]
		switch {
		case !ok:
			d.Added = append(d.Added, f.Name)
			d.touched[f.Name] = true
		case !prev.Equal(*f):
			d.Changed = append(d.Changed, f.Name)
			d.touched[f.Name] = true
		}
	}
	if deployed != nil {
		for i := range deployed.Functions {
			name := deployed.Functions[i].Name
			if !seen[name] {
				d.Removed = append(d.Removed, name)
				d.touched[name] = true
			}
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Strings(d.Changed)
	d.FlowsChanged = flowsDiffer(deployed, cand)
	return d
}

// FullDiff returns a diff that forces every stage to run from scratch.
func FullDiff() Diff { return Diff{full: true} }

// DiffFromChange builds the diff a single-function change induces without
// scanning either architecture: the change object already names the exact
// delta, and the committed value of that one function comes from the
// caller's O(1) deployed-function index. upd is the new function (nil for
// a removal of name), old is the committed function of the same name (nil
// when not deployed), and oldFlowTouched reports whether any deployed
// flow references the name — the only way a single-function change can
// alter the flow set is a removal dropping the flows that touch it.
//
// The result is equivalent to ComputeDiff(deployed,
// applyChange(deployed, c)) — TestDiffFromChangeEquivalence and
// FuzzDiffFromChange hold the two to that, over generated fleets — but
// costs O(1) plus one Function.Equal instead of two architecture walks.
func DiffFromChange(name string, upd, old *model.Function, oldFlowTouched bool) Diff {
	d := Diff{touched: make(map[string]bool, 1)}
	switch {
	case upd == nil && old == nil:
		// Removing an unknown function: the candidate equals the deployed
		// configuration (a valid architecture cannot have flows touching a
		// function that does not exist).
	case upd == nil:
		d.Removed = []string{name}
		d.touched[name] = true
		// WithoutFunction drops every flow touching the name, so the flow
		// set changes exactly when such a flow exists.
		d.FlowsChanged = oldFlowTouched
	case old == nil:
		d.Added = []string{name}
		d.touched[name] = true
	case !old.Equal(*upd):
		d.Changed = []string{name}
		d.touched[name] = true
	}
	// An update never touches the flow slice (WithFunction copies it
	// verbatim), so FlowsChanged stays false on the update arms.
	return d
}

func flowsDiffer(deployed, cand *model.FunctionalArchitecture) bool {
	var oldFlows []model.Flow
	if deployed != nil {
		oldFlows = deployed.Flows
	}
	if len(oldFlows) != len(cand.Flows) {
		return true
	}
	// Common case first: the candidate aliases or copies the deployed flow
	// slice verbatim (single-function updates never reorder flows), so an
	// element-wise scan settles it without building the counting map.
	if len(oldFlows) == 0 || &oldFlows[0] == &cand.Flows[0] || slices.Equal(oldFlows, cand.Flows) {
		return false
	}
	// Flow is a comparable struct; multiset comparison via counting.
	counts := make(map[model.Flow]int, len(oldFlows))
	for _, fl := range oldFlows {
		counts[fl]++
	}
	for _, fl := range cand.Flows {
		counts[fl]--
		if counts[fl] < 0 {
			return true
		}
	}
	return false
}

// Full reports whether the diff covers the whole architecture (first
// deployment or forced from-scratch run).
func (d Diff) Full() bool { return d.full }

// Empty reports whether the candidate is function- and flow-identical to
// the deployed configuration.
func (d Diff) Empty() bool {
	return !d.full && len(d.touched) == 0 && !d.FlowsChanged
}

// Touched reports whether the named function was added, removed, or
// changed by this diff.
func (d Diff) Touched(name string) bool { return d.touched[name] }

// TouchedCount returns the number of added+removed+changed functions.
func (d Diff) TouchedCount() int { return len(d.touched) }

// Neighborhood returns the touched functions plus every function connected
// to a touched one by a flow of the candidate architecture, as a membership
// set. This is the scope incremental validation re-checks: a change can
// only invalidate its own contract, its flow endpoints, and the service
// relationships it participates in (plus requirers of removed services,
// which the validation stage handles separately).
func (d Diff) Neighborhood(cand *model.FunctionalArchitecture) map[string]bool {
	out := make(map[string]bool, len(d.touched)*2)
	for name := range d.touched {
		out[name] = true
	}
	for _, fl := range cand.Flows {
		if d.touched[fl.From] || d.touched[fl.To] {
			out[fl.From] = true
			out[fl.To] = true
		}
	}
	return out
}
