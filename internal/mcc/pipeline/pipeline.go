// Package pipeline is the staged acceptance-test engine of the
// Multi-Change Controller. The paper's integration process (Section II.A)
// is a fixed sequence of viewpoint analyses — contract validation,
// mapping, synthesis, safety, security, timing — each acting as an
// acceptance test for an in-field change. This package makes that
// sequence first-class: a Stage is one viewpoint, a Pipeline is an
// ordered list of stages, and a Context carries the candidate
// configuration, the diff against the deployed configuration (computed
// once, shared by every incremental stage), intermediate artifacts, and
// the report under construction.
//
// The pipeline itself is policy-free: it runs stages in order, records
// per-stage wall-clock telemetry into the Report, and stops at the first
// stage that rejects. Which stages run — and whether they work
// incrementally from the deployed configuration or from scratch — is
// decided by the caller (package mcc) when it assembles the Pipeline.
// Custom viewpoints (thermal budgets, dependency checks, routing
// feasibility) plug in by implementing Stage; they need no changes here.
package pipeline

import (
	"fmt"
	"strings"
	"time"
)

// StageName identifies a pipeline stage in reports and telemetry.
type StageName string

// Built-in stage names, in pipeline order.
const (
	StageValidate StageName = "validate"
	StageMapping  StageName = "mapping"
	StageSynth    StageName = "synthesis"
	StageSafety   StageName = "safety"
	StageSecurity StageName = "security"
	StageTiming   StageName = "timing"
	StageMonitors StageName = "monitors"
	StageCommit   StageName = "commit"
)

// Stage is one acceptance-test stage of the integration pipeline. Run
// inspects and extends the Context; returning a non-nil error rejects the
// candidate at this stage. Return a *Reject to attach structured findings;
// any other error is reported verbatim as a single finding.
type Stage interface {
	// Name identifies the stage in reports, telemetry, and rejections.
	Name() StageName
	// Run executes the stage against the shared context.
	Run(*Context) error
}

// Reject is the error a stage returns to fail the acceptance test with
// one or more human-readable findings.
type Reject struct {
	// Findings lists the acceptance failures, one per line.
	Findings []string
}

// Rejectf builds a single-finding rejection.
func Rejectf(format string, args ...any) *Reject {
	return &Reject{Findings: []string{fmt.Sprintf(format, args...)}}
}

// Error implements the error interface.
func (r *Reject) Error() string { return strings.Join(r.Findings, "; ") }

// Func adapts a plain function into a Stage; useful for small custom
// viewpoints registered via mcc.WithStage.
type Func struct {
	// StageName is the name reported for this stage.
	StageName StageName
	// RunFunc is invoked as the stage body.
	RunFunc func(*Context) error
}

// Name implements Stage.
func (f Func) Name() StageName { return f.StageName }

// Run implements Stage.
func (f Func) Run(ctx *Context) error { return f.RunFunc(ctx) }

// Pipeline is an ordered sequence of stages.
type Pipeline struct {
	stages []Stage
}

// New builds a pipeline running the given stages in order.
func New(stages ...Stage) *Pipeline {
	return &Pipeline{stages: stages}
}

// Insert returns a new pipeline with extra stages spliced in immediately
// before the stage named at. If no stage has that name, the extras are
// appended at the end.
func (p *Pipeline) Insert(at StageName, extra ...Stage) *Pipeline {
	if len(extra) == 0 {
		return p
	}
	out := make([]Stage, 0, len(p.stages)+len(extra))
	inserted := false
	for _, s := range p.stages {
		if !inserted && s.Name() == at {
			out = append(out, extra...)
			inserted = true
		}
		out = append(out, s)
	}
	if !inserted {
		out = append(out, extra...)
	}
	return &Pipeline{stages: out}
}

// Wrap returns a new pipeline with every stage replaced by wrap(stage).
// The caller uses this to interpose cross-cutting concerns (fault
// injection hooks) without the stages knowing.
func (p *Pipeline) Wrap(wrap func(Stage) Stage) *Pipeline {
	out := make([]Stage, len(p.stages))
	for i, s := range p.stages {
		out[i] = wrap(s)
	}
	return &Pipeline{stages: out}
}

// StageNames lists the stages in execution order.
func (p *Pipeline) StageNames() []StageName {
	out := make([]StageName, len(p.stages))
	for i, s := range p.stages {
		out[i] = s.Name()
	}
	return out
}

// Run executes the stages in order against ctx, recording one StageTrace
// per executed stage into ctx.Report. The first stage returning an error
// marks the report rejected at that stage and stops the pipeline; if every
// stage passes, the report is marked accepted.
//
// Robustness: a panicking stage is recovered and converted into a
// rejection at that stage (counted in Report.PanicsRecovered and marked
// transient), and the proposal deadline (ctx.Ctx) is checked before
// every stage — expiry rejects deterministically with a finding naming
// the stage the pipeline stopped before, so a proposal can never hang
// or commit past its deadline.
func (p *Pipeline) Run(ctx *Context) {
	rep := ctx.Report
	rep.Passes++
	for _, s := range p.stages {
		if ctx.Expired() {
			rep.RejectedAt = s.Name()
			rep.Degraded = true
			rep.DegradedReasons = append(rep.DegradedReasons, "deadline")
			rep.Findings = append(rep.Findings,
				fmt.Sprintf("deadline: proposal deadline expired before stage %s (%v)", s.Name(), ctx.Ctx.Err()))
			return
		}
		start := time.Now()
		err := p.runStage(s, ctx)
		rep.Stages = append(rep.Stages, StageTrace{
			Stage: s.Name(),
			Wall:  time.Since(start),
			Note:  ctx.takeNote(),
		})
		if err != nil {
			rep.RejectedAt = s.Name()
			if rej, ok := err.(*Reject); ok {
				rep.Findings = append(rep.Findings, rej.Findings...)
			} else {
				rep.Findings = append(rep.Findings, err.Error())
			}
			return
		}
	}
	rep.Accepted = true
}

// runStage executes one stage, converting a panic into a rejection so a
// faulty viewpoint cannot take the controller down.
func (p *Pipeline) runStage(s Stage, ctx *Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			ctx.Report.PanicsRecovered++
			ctx.Report.TransientFault = true
			err = Rejectf("%s: recovered panic: %v", s.Name(), r)
		}
	}()
	return s.Run(ctx)
}
