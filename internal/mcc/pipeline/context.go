package pipeline

import (
	"context"
	"fmt"

	"repro/internal/model"
)

// Context is the shared state one integration attempt threads through the
// pipeline. Early stages fill in artifacts (technical architecture,
// implementation model) that later stages consume; incremental stages
// additionally read the deployed configuration and the precomputed Diff to
// restrict their work to what the change actually touches.
type Context struct {
	// Platform is the target platform the MCC manages.
	Platform *model.Platform
	// Candidate is the functional architecture under test.
	Candidate *model.FunctionalArchitecture
	// Deployed is the committed functional architecture (empty on first
	// deployment) the candidate is diffed against.
	Deployed *model.FunctionalArchitecture
	// DeployedImpl is the committed implementation model (nil until the
	// first successful integration); incremental mapping warm-starts from
	// its instance placement and incremental synthesis copies its
	// untouched tasks/messages/connections.
	DeployedImpl *model.ImplementationModel
	// Diff is the candidate-vs-deployed function diff, computed once by
	// the caller and shared by every incremental stage.
	Diff Diff
	// Incremental selects whether stages may work incrementally from the
	// deployed configuration. When false every stage runs from scratch
	// (the seed-equivalent baseline, and the cold retry after a rejected
	// warm-start attempt).
	Incremental bool

	// Tech is the mapping stage's artifact: every replica placed.
	Tech *model.TechnicalArchitecture
	// Impl is the synthesis stage's artifact: tasks, messages, sessions.
	Impl *model.ImplementationModel
	// WarmMapped reports that the mapping stage reused the deployed
	// placement and placed only the diff. The MCC re-runs a rejected
	// warm-started attempt cold so that rejection verdicts never depend
	// on the warm-start heuristic.
	WarmMapped bool
	// PartialSynth reports that the synthesis stage rebuilt only the
	// diff-affected artifacts and copied everything else from the deployed
	// implementation model. When set, AffectedProcs and MessagesRebuilt
	// describe exactly what changed, and later stages (timing-job
	// construction, monitor planning) may splice their own cached
	// artifacts for the untouched remainder.
	PartialSynth bool
	// AffectedProcs is the set of processors whose task sets the partial
	// synthesis rebuilt (a touched function's instances were or are
	// placed there). Only valid when PartialSynth is set.
	AffectedProcs map[string]bool
	// MessagesRebuilt reports that the partial synthesis re-derived the
	// network messages (the flow set or a flow endpoint changed); when
	// false the deployed message list was copied verbatim. Only valid
	// when PartialSynth is set.
	MessagesRebuilt bool
	// ConnectionsRebuilt reports that the partial synthesis re-derived
	// the client/server sessions (a touched function participates in the
	// service graph); when false the deployed connection list was copied
	// verbatim, so the committed per-connection security verdicts remain
	// keyed one-to-one. Only valid when PartialSynth is set.
	ConnectionsRebuilt bool
	// AffectedNets is the set of networks whose message list actually
	// changed under a rebuild (a rebuilt list equal to the deployed one
	// leaves its network clean, so untouched networks splice their cached
	// timing jobs even when MessagesRebuilt). Only valid when
	// MessagesRebuilt is set; nil conservatively means "every network".
	AffectedNets map[string]bool
	// TasksFn, when set by a partial synthesis, materializes the
	// candidate's flat task list on demand: the incremental path leaves
	// Impl.Tasks nil (the affected processors' rebuilt lists live in
	// stage-internal per-processor caches, everything else is committed
	// unchanged), so a stage that genuinely needs the whole flat list — a
	// custom viewpoint like the thermal budget — must read it through
	// Tasks() instead of Impl.Tasks.
	TasksFn func() []model.Task
	// DeferChecks asks the pure verdict stages (safety, security, timing)
	// to record their inputs instead of checking them: the timing stage
	// still constructs and digests the per-resource task sets but defers
	// the busy-window analyses of dirty resources, and the candidate is
	// committed optimistically with no findings raised. Only the
	// mcc.StreamScheduler sets this — it fans the deferred checks of a
	// whole proposal window out over the worker pool and re-validates
	// every verdict before the window is final.
	DeferChecks bool
	// TimingDigests is the timing stage's artifact: the per-resource
	// task-set digests the commit stage persists for dirty tracking.
	TimingDigests map[string]uint64

	// Ctx carries the proposal's cancellation/deadline signal. The
	// pipeline checks it between stages and long-running stages may
	// check it mid-work; expiry rejects the proposal deterministically
	// (never a hang). Nil means no deadline (context.Background()).
	Ctx context.Context

	// Report is the report under construction.
	Report *Report

	artifacts map[string]any
	note      string
}

// Tasks returns the candidate's flat task list, materializing it through
// TasksFn (and memoizing into Impl.Tasks) when the partial synthesis left
// it unmaterialized. Stages must use this accessor — not Impl.Tasks —
// whenever they iterate the whole task set: on the incremental path a
// direct read sees nil and silently checks nothing.
func (c *Context) Tasks() []model.Task {
	if c.Impl == nil {
		return nil
	}
	if c.Impl.Tasks == nil && c.TasksFn != nil {
		c.Impl.Tasks = c.TasksFn()
	}
	return c.Impl.Tasks
}

// Done returns the proposal context's done channel, or nil when no
// deadline/cancellation applies. Safe on a nil Ctx.
func (c *Context) Done() <-chan struct{} {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Done()
}

// Expired reports whether the proposal's deadline/cancellation fired.
func (c *Context) Expired() bool {
	return c.Ctx != nil && c.Ctx.Err() != nil
}

// Put stores a named artifact for later stages (or the caller) to pick up.
// Custom stages use this to pass results without widening Context.
func (c *Context) Put(key string, v any) {
	if c.artifacts == nil {
		c.artifacts = make(map[string]any)
	}
	c.artifacts[key] = v
}

// Get returns a named artifact stored by an earlier stage.
func (c *Context) Get(key string) (any, bool) {
	v, ok := c.artifacts[key]
	return v, ok
}

// Note attaches a short telemetry note to the currently running stage's
// trace (e.g. "warm-start: placed 1/41 instances", "5/6 resources clean").
// Each Run of a stage records at most one note; the last call wins.
func (c *Context) Note(format string, args ...any) {
	c.note = fmt.Sprintf(format, args...)
}

// takeNote returns and clears the pending stage note.
func (c *Context) takeNote() string {
	n := c.note
	c.note = ""
	return n
}
